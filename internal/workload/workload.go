// Package workload provides the deterministic workload generators the
// experiments share: key distributions (uniform, zipfian, sequential,
// hot/cold), open-loop arrival processes (Poisson, bursty on/off), and
// object streams with lifetime classes for the placement studies (§4.1).
//
// Every generator is seeded explicitly; the same seed reproduces the same
// sequence, which keeps all experiment outputs stable.
package workload

import (
	"math"
	"math/rand"

	"blockhead/internal/sim"
)

// Source is the deterministic randomness source generators share.
type Source struct {
	*rand.Rand
}

// NewSource returns a seeded source.
func NewSource(seed int64) *Source {
	return &Source{Rand: rand.New(rand.NewSource(seed))}
}

// KeyGen produces a stream of keys (logical pages, object IDs) in [0, N).
type KeyGen interface {
	Next() int64
	// N reports the key-space size.
	N() int64
}

// Uniform picks keys uniformly at random.
type Uniform struct {
	src *Source
	n   int64
}

// NewUniform returns a uniform key generator over [0, n).
func NewUniform(src *Source, n int64) *Uniform { return &Uniform{src: src, n: n} }

// Next implements KeyGen.
func (u *Uniform) Next() int64 { return u.src.Int63n(u.n) }

// N implements KeyGen.
func (u *Uniform) N() int64 { return u.n }

// Zipf picks keys with a zipfian popularity distribution, the standard
// skewed model for caches and key-value stores. Key 0 is the hottest.
type Zipf struct {
	z *rand.Zipf
	n int64
}

// NewZipf returns a zipfian generator over [0, n) with skew theta
// (typically 0.99 for YCSB-like workloads; must be > 1 per math/rand's
// parameterization, so theta <= 1 is mapped to 1.0001).
func NewZipf(src *Source, n int64, theta float64) *Zipf {
	if theta <= 1 {
		theta = 1.0001
	}
	return &Zipf{z: rand.NewZipf(src.Rand, theta, 1, uint64(n-1)), n: n}
}

// Next implements KeyGen.
func (z *Zipf) Next() int64 { return int64(z.z.Uint64()) }

// N implements KeyGen.
func (z *Zipf) N() int64 { return z.n }

// Sequential cycles through keys in order — the fill pattern.
type Sequential struct {
	next, n int64
}

// NewSequential returns a sequential generator over [0, n).
func NewSequential(n int64) *Sequential { return &Sequential{n: n} }

// Next implements KeyGen.
func (s *Sequential) Next() int64 {
	k := s.next
	s.next = (s.next + 1) % s.n
	return k
}

// N implements KeyGen.
func (s *Sequential) N() int64 { return s.n }

// HotCold picks from a hot set with probability hotProb and from the cold
// remainder otherwise — the classic skewed-write model for WA studies.
type HotCold struct {
	src     *Source
	n       int64
	hotKeys int64
	hotProb float64
}

// NewHotCold returns a generator where hotFrac of the keyspace receives
// hotProb of the accesses.
func NewHotCold(src *Source, n int64, hotFrac, hotProb float64) *HotCold {
	hot := int64(hotFrac * float64(n))
	if hot < 1 {
		hot = 1
	}
	return &HotCold{src: src, n: n, hotKeys: hot, hotProb: hotProb}
}

// Next implements KeyGen.
func (h *HotCold) Next() int64 {
	if h.src.Float64() < h.hotProb {
		return h.src.Int63n(h.hotKeys)
	}
	if h.hotKeys == h.n {
		return h.src.Int63n(h.n)
	}
	return h.hotKeys + h.src.Int63n(h.n-h.hotKeys)
}

// N implements KeyGen.
func (h *HotCold) N() int64 { return h.n }

// IsHot reports whether key falls in the hot set.
func (h *HotCold) IsHot(key int64) bool { return key < h.hotKeys }

// Poisson generates open-loop arrivals with exponential interarrival times.
type Poisson struct {
	src  *Source
	mean float64 // mean interarrival in ns
}

// NewPoisson returns an arrival process with the given rate in events per
// (virtual) second.
func NewPoisson(src *Source, ratePerSec float64) *Poisson {
	return &Poisson{src: src, mean: float64(sim.Second) / ratePerSec}
}

// Next returns the next arrival time strictly after now.
func (p *Poisson) Next(now sim.Time) sim.Time {
	d := sim.Time(p.src.ExpFloat64() * p.mean)
	if d < 1 {
		d = 1
	}
	return now + d
}

// OnOff models a bursty tenant (§4.2's "typical bursty workloads"):
// alternating exponentially-distributed on and off periods; during an on
// period arrivals are Poisson at burstRate. It reports, for each call, the
// next arrival time, skipping over off periods.
type OnOff struct {
	src       *Source
	burst     *Poisson
	meanOn    float64 // ns
	meanOff   float64 // ns
	periodEnd sim.Time
	inOn      bool
}

// NewOnOff returns a bursty arrival process. meanOn and meanOff are the
// average durations of on and off periods; burstRate is the arrival rate
// (events/second) while on.
func NewOnOff(src *Source, meanOn, meanOff sim.Time, burstRate float64) *OnOff {
	return &OnOff{
		src:     src,
		burst:   NewPoisson(src, burstRate),
		meanOn:  float64(meanOn),
		meanOff: float64(meanOff),
	}
}

// Next returns the next arrival time strictly after now.
func (o *OnOff) Next(now sim.Time) sim.Time {
	for {
		if !o.inOn {
			// Jump to the start of the next on period.
			off := sim.Time(o.src.ExpFloat64() * o.meanOff)
			start := sim.Max(now, o.periodEnd) + off
			o.periodEnd = start + sim.Time(o.src.ExpFloat64()*o.meanOn)
			o.inOn = true
			now = start
		}
		t := o.burst.Next(now)
		if t <= o.periodEnd {
			return t
		}
		now = o.periodEnd
		o.inOn = false
	}
}

// Object is one item in a lifetime-classed object stream (§4.1): data
// written together that dies at a predictable time.
type Object struct {
	ID    int64
	Pages int
	// Class is the lifetime class the *host* knows (the placement hint).
	Class int
	// Death is the actual expiry time, drawn from the class's distribution.
	Death sim.Time
}

// ObjectGen produces objects from a mixture of lifetime classes. Class i
// has mean lifetime Lifetimes[i]; classes are drawn uniformly.
//
// The per-object lifetime is exponential around the class mean by default
// (maximal intra-class variance: the hardest case for hint-based
// placement). A Spread in (0, 1] switches to a uniform multiplicative
// spread — lifetime = mean * U[1-Spread, 1+Spread] — modeling workloads
// whose expirations are predictable (TTL caches, log retention).
type ObjectGen struct {
	src       *Source
	lifetimes []sim.Time
	pages     int
	spread    float64
	nextID    int64
}

// NewObjectGen returns a generator of fixed-size objects with the given
// per-class mean lifetimes and exponential intra-class variance.
func NewObjectGen(src *Source, pages int, lifetimes []sim.Time) *ObjectGen {
	if len(lifetimes) == 0 {
		panic("workload: need at least one lifetime class")
	}
	return &ObjectGen{src: src, lifetimes: lifetimes, pages: pages}
}

// NewObjectGenSpread is NewObjectGen with uniform +-spread lifetimes
// (spread in (0, 1]).
func NewObjectGenSpread(src *Source, pages int, lifetimes []sim.Time, spread float64) *ObjectGen {
	g := NewObjectGen(src, pages, lifetimes)
	if spread <= 0 || spread > 1 {
		panic("workload: spread must be in (0, 1]")
	}
	g.spread = spread
	return g
}

// Classes reports the number of lifetime classes.
func (g *ObjectGen) Classes() int { return len(g.lifetimes) }

// Next produces the next object, created at now.
func (g *ObjectGen) Next(now sim.Time) Object {
	class := g.src.Intn(len(g.lifetimes))
	mean := float64(g.lifetimes[class])
	var life sim.Time
	if g.spread > 0 {
		life = sim.Time(mean * (1 - g.spread + 2*g.spread*g.src.Float64()))
	} else {
		life = sim.Time(g.src.ExpFloat64() * mean)
	}
	if life < 1 {
		life = 1
	}
	obj := Object{ID: g.nextID, Pages: g.pages, Class: class, Death: now + life}
	g.nextID++
	return obj
}

// ExpMean draws an exponential sample with the given mean — exposed for
// drivers that need ad-hoc service times.
func (s *Source) ExpMean(mean sim.Time) sim.Time {
	d := sim.Time(s.ExpFloat64() * float64(mean))
	if d < 1 {
		d = 1
	}
	return d
}

// LogNormal draws a log-normal sample with the given median and sigma —
// used for object-size distributions.
func (s *Source) LogNormal(median float64, sigma float64) float64 {
	return median * math.Exp(s.NormFloat64()*sigma)
}
