package workload

import (
	"testing"
	"testing/quick"

	"blockhead/internal/sim"
)

func TestDeterminism(t *testing.T) {
	a := NewUniform(NewSource(42), 1000)
	b := NewUniform(NewSource(42), 1000)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed must produce the same stream")
		}
	}
}

func TestUniformRange(t *testing.T) {
	g := NewUniform(NewSource(1), 50)
	if g.N() != 50 {
		t.Errorf("N = %d", g.N())
	}
	counts := make([]int, 50)
	for i := 0; i < 50000; i++ {
		k := g.Next()
		if k < 0 || k >= 50 {
			t.Fatalf("key %d out of range", k)
		}
		counts[k]++
	}
	for k, c := range counts {
		if c == 0 {
			t.Errorf("key %d never drawn in 50k samples", k)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	g := NewZipf(NewSource(2), 10000, 0.99)
	if g.N() != 10000 {
		t.Errorf("N = %d", g.N())
	}
	var low int
	for i := 0; i < 10000; i++ {
		k := g.Next()
		if k < 0 || k >= 10000 {
			t.Fatalf("key %d out of range", k)
		}
		if k < 100 {
			low++
		}
	}
	// Zipfian: the hottest 1% of keys should draw far more than 1% of
	// accesses.
	if low < 2000 {
		t.Errorf("hottest 100 keys drew only %d/10000 accesses; not skewed", low)
	}
}

func TestSequentialWraps(t *testing.T) {
	g := NewSequential(3)
	want := []int64{0, 1, 2, 0, 1}
	for i, w := range want {
		if got := g.Next(); got != w {
			t.Errorf("Next #%d = %d, want %d", i, got, w)
		}
	}
	if g.N() != 3 {
		t.Errorf("N = %d", g.N())
	}
}

func TestHotCold(t *testing.T) {
	g := NewHotCold(NewSource(3), 1000, 0.1, 0.9)
	if g.N() != 1000 {
		t.Errorf("N = %d", g.N())
	}
	var hot int
	n := 100000
	for i := 0; i < n; i++ {
		k := g.Next()
		if k < 0 || k >= 1000 {
			t.Fatalf("key %d out of range", k)
		}
		if g.IsHot(k) {
			hot++
		}
	}
	frac := float64(hot) / float64(n)
	if frac < 0.85 || frac > 0.95 {
		t.Errorf("hot fraction = %v, want ~0.9", frac)
	}
}

func TestHotColdDegenerate(t *testing.T) {
	// hotFrac 1.0: everything is hot; must not panic on the cold branch.
	g := NewHotCold(NewSource(4), 100, 1.0, 0.5)
	for i := 0; i < 1000; i++ {
		if k := g.Next(); k < 0 || k >= 100 {
			t.Fatalf("key %d out of range", k)
		}
	}
	// Tiny hotFrac still keeps >= 1 hot key.
	g = NewHotCold(NewSource(5), 100, 0.0001, 0.5)
	if g.hotKeys != 1 {
		t.Errorf("hotKeys = %d, want 1", g.hotKeys)
	}
}

func TestPoissonRate(t *testing.T) {
	p := NewPoisson(NewSource(6), 1000) // 1000/s -> mean gap 1ms
	var now sim.Time
	n := 10000
	for i := 0; i < n; i++ {
		next := p.Next(now)
		if next <= now {
			t.Fatal("arrivals must advance time")
		}
		now = next
	}
	mean := float64(now) / float64(n)
	want := float64(sim.Millisecond)
	if mean < 0.9*want || mean > 1.1*want {
		t.Errorf("mean interarrival = %v ns, want ~%v", mean, want)
	}
}

func TestOnOffBursts(t *testing.T) {
	o := NewOnOff(NewSource(7), 10*sim.Millisecond, 100*sim.Millisecond, 100000)
	var now sim.Time
	var gaps []sim.Time
	for i := 0; i < 2000; i++ {
		next := o.Next(now)
		if next <= now {
			t.Fatal("arrivals must advance time")
		}
		gaps = append(gaps, next-now)
		now = next
	}
	// Bursty: most gaps are tiny (in-burst, ~10us), some are huge (off
	// periods, ~100ms).
	var small, big int
	for _, g := range gaps {
		if g < sim.Millisecond {
			small++
		}
		if g > 20*sim.Millisecond {
			big++
		}
	}
	if small < len(gaps)/2 {
		t.Errorf("only %d/%d small gaps; not bursty", small, len(gaps))
	}
	if big == 0 {
		t.Error("no off-period gaps observed")
	}
}

func TestObjectGen(t *testing.T) {
	g := NewObjectGen(NewSource(8), 4, []sim.Time{sim.Millisecond, sim.Second})
	if g.Classes() != 2 {
		t.Errorf("Classes = %d", g.Classes())
	}
	seen := map[int]int{}
	now := sim.Time(1000)
	var prevID int64 = -1
	for i := 0; i < 1000; i++ {
		obj := g.Next(now)
		if obj.ID != prevID+1 {
			t.Fatal("IDs must be dense and increasing")
		}
		prevID = obj.ID
		if obj.Death <= now {
			t.Fatal("death must be after creation")
		}
		if obj.Pages != 4 {
			t.Errorf("Pages = %d", obj.Pages)
		}
		seen[obj.Class]++
	}
	if seen[0] == 0 || seen[1] == 0 {
		t.Errorf("class mix = %v, want both classes drawn", seen)
	}
}

func TestObjectGenPanicsWithoutClasses(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on empty lifetime list")
		}
	}()
	NewObjectGen(NewSource(9), 1, nil)
}

func TestExpMeanPositive(t *testing.T) {
	s := NewSource(10)
	var sum sim.Time
	for i := 0; i < 10000; i++ {
		d := s.ExpMean(100 * sim.Microsecond)
		if d < 1 {
			t.Fatal("ExpMean must be >= 1")
		}
		sum += d
	}
	mean := float64(sum) / 10000
	if mean < 0.9*float64(100*sim.Microsecond) || mean > 1.1*float64(100*sim.Microsecond) {
		t.Errorf("ExpMean average = %v", mean)
	}
}

func TestLogNormal(t *testing.T) {
	s := NewSource(11)
	var below int
	for i := 0; i < 10000; i++ {
		v := s.LogNormal(100, 0.5)
		if v <= 0 {
			t.Fatal("LogNormal must be positive")
		}
		if v < 100 {
			below++
		}
	}
	// Median 100: about half the samples below.
	if below < 4500 || below > 5500 {
		t.Errorf("below-median count = %d/10000, want ~5000", below)
	}
}

// Property: all generators stay in range for arbitrary seeds.
func TestKeyGenRangeProperty(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := int64(nRaw)%1000 + 2
		src := NewSource(seed)
		gens := []KeyGen{
			NewUniform(src, n),
			NewZipf(src, n, 0.99),
			NewSequential(n),
			NewHotCold(src, n, 0.2, 0.8),
		}
		for _, g := range gens {
			for i := 0; i < 50; i++ {
				k := g.Next()
				if k < 0 || k >= n {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
