// Package zcache implements the flash-cache designs behind the paper's
// §4.1 question "How can we best exploit transparent data placement?":
//
//   - SetAssoc: a set-associative cache that overwrites fixed slots in
//     place — small random writes that conventional FTLs amplify badly.
//     This is the design large-scale caches had to abandon.
//   - ConvBuffered: the RIPQ/CacheLib workaround on conventional SSDs —
//     "applications have evolved to use DRAM as a buffer to coalesce many
//     writes into one very large write". Write amplification is tamed, at
//     the cost of region-sized DRAM buffers per instance.
//   - ZNSCache: the zone-native design — objects append directly to open
//     zones and eviction is a zone reset. "With ZNS SSDs, these buffers
//     are no longer necessary," which is exactly what E-benchmarks measure
//     via DRAMBufferBytes.
//
// All three implement Cache, admit page-sized-to-region-sized objects, and
// evict FIFO (the common baseline policy for flash caches, which avoids
// fine-grained invalidation on flash).
package zcache

import (
	"errors"
	"fmt"

	"blockhead/internal/ftl"
	"blockhead/internal/sim"
	"blockhead/internal/stats"
	"blockhead/internal/zns"
)

// Stats counts cache activity.
type Stats struct {
	Inserts   uint64
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// HitRatio reports hits / lookups.
func (s Stats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Cache is a flash cache of page-granular objects.
type Cache interface {
	// Insert admits an object of the given size. Existing entries with the
	// same key are replaced logically (the old copy becomes dead).
	Insert(at sim.Time, key int64, pages int) (sim.Time, error)
	// Get probes the cache, reading the object from flash on a hit.
	Get(at sim.Time, key int64) (done sim.Time, hit bool, err error)
	// DRAMBufferBytes reports the write-buffer DRAM this design needs.
	DRAMBufferBytes() int64
	// Stats returns activity counters.
	Stats() Stats
	// Counters exposes device-level accounting (WA).
	Counters() *stats.Counters
	// Name identifies the design.
	Name() string
}

// Errors returned by caches.
var (
	ErrObjectTooLarge = errors.New("zcache: object exceeds region/zone size")
	ErrBadObjectSize  = errors.New("zcache: object size does not match slot size")
)

// ---------------------------------------------------------------------------
// Set-associative cache on a conventional SSD.

type setAssocEntry struct {
	key   int64
	valid bool
}

// SetAssoc maps each key to one of Ways slots in a set and overwrites slots
// in place. Every insert is a small random write.
type SetAssoc struct {
	dev      *ftl.Device
	objPages int
	ways     int
	sets     int64
	slots    []setAssocEntry // sets*ways
	fifoPtr  []int           // per-set round-robin victim pointer
	index    map[int64]int64 // key -> slot number
	stats    Stats
}

// NewSetAssoc builds a set-associative cache using the whole device.
func NewSetAssoc(dev *ftl.Device, objPages, ways int) (*SetAssoc, error) {
	if objPages < 1 || ways < 1 {
		return nil, fmt.Errorf("zcache: bad geometry objPages=%d ways=%d", objPages, ways)
	}
	slots := dev.CapacityPages() / int64(objPages)
	sets := slots / int64(ways)
	if sets < 1 {
		return nil, fmt.Errorf("zcache: device too small")
	}
	return &SetAssoc{
		dev:      dev,
		objPages: objPages,
		ways:     ways,
		sets:     sets,
		slots:    make([]setAssocEntry, sets*int64(ways)),
		fifoPtr:  make([]int, sets),
		index:    make(map[int64]int64),
	}, nil
}

// Name implements Cache.
func (c *SetAssoc) Name() string { return "conv-setassoc" }

// DRAMBufferBytes implements Cache: in-place writes need no write buffer.
func (c *SetAssoc) DRAMBufferBytes() int64 { return 0 }

// Stats implements Cache.
func (c *SetAssoc) Stats() Stats { return c.stats }

// Counters implements Cache.
func (c *SetAssoc) Counters() *stats.Counters { return c.dev.Counters() }

// Insert implements Cache.
func (c *SetAssoc) Insert(at sim.Time, key int64, pages int) (sim.Time, error) {
	if pages != c.objPages {
		return at, ErrBadObjectSize
	}
	set := key % c.sets
	way := c.fifoPtr[set]
	c.fifoPtr[set] = (way + 1) % c.ways
	slot := set*int64(c.ways) + int64(way)
	if old := c.slots[slot]; old.valid {
		delete(c.index, old.key)
		c.stats.Evictions++
	}
	if prev, ok := c.index[key]; ok {
		c.slots[prev].valid = false
		delete(c.index, key)
	}
	base := slot * int64(c.objPages)
	done := at
	for p := 0; p < c.objPages; p++ {
		d, err := c.dev.WritePage(at, base+int64(p), nil)
		if err != nil {
			return at, err
		}
		done = sim.Max(done, d)
	}
	c.slots[slot] = setAssocEntry{key: key, valid: true}
	c.index[key] = slot
	c.stats.Inserts++
	return done, nil
}

// Get implements Cache.
func (c *SetAssoc) Get(at sim.Time, key int64) (sim.Time, bool, error) {
	slot, ok := c.index[key]
	if !ok {
		c.stats.Misses++
		return at, false, nil
	}
	base := slot * int64(c.objPages)
	done := at
	for p := 0; p < c.objPages; p++ {
		d, _, err := c.dev.ReadPage(at, base+int64(p))
		if err != nil {
			return at, false, err
		}
		done = sim.Max(done, d)
	}
	c.stats.Hits++
	return done, true, nil
}

// ---------------------------------------------------------------------------
// Region-buffered cache on a conventional SSD (RIPQ/CacheLib style).

type loc struct {
	region int64
	off    int64
	pages  int
	inBuf  bool
}

// ConvBuffered coalesces inserts in a DRAM buffer and writes full regions
// sequentially; eviction recycles whole regions FIFO.
type ConvBuffered struct {
	dev         *ftl.Device
	regionPages int64
	numRegions  int64
	next        int64 // region to overwrite next
	bufFill     int64
	bufKeys     []int64
	index       map[int64]loc
	perRegion   [][]int64
	stats       Stats
}

// NewConvBuffered builds a region-buffered cache; regionPages is the DRAM
// coalescing buffer (and flash write) granularity.
func NewConvBuffered(dev *ftl.Device, regionPages int64) (*ConvBuffered, error) {
	n := dev.CapacityPages() / regionPages
	if n < 2 {
		return nil, fmt.Errorf("zcache: need >= 2 regions, have %d", n)
	}
	return &ConvBuffered{
		dev:         dev,
		regionPages: regionPages,
		numRegions:  n,
		index:       make(map[int64]loc),
		perRegion:   make([][]int64, n),
	}, nil
}

// Name implements Cache.
func (c *ConvBuffered) Name() string { return "conv-buffered" }

// DRAMBufferBytes implements Cache: one region buffer per instance — the
// DRAM the paper says ZNS reclaims.
func (c *ConvBuffered) DRAMBufferBytes() int64 {
	return c.regionPages * int64(c.dev.PageSize())
}

// Stats implements Cache.
func (c *ConvBuffered) Stats() Stats { return c.stats }

// Counters implements Cache.
func (c *ConvBuffered) Counters() *stats.Counters { return c.dev.Counters() }

// Insert implements Cache.
func (c *ConvBuffered) Insert(at sim.Time, key int64, pages int) (sim.Time, error) {
	if int64(pages) > c.regionPages {
		return at, ErrObjectTooLarge
	}
	if c.bufFill+int64(pages) > c.regionPages {
		var err error
		at, err = c.flush(at)
		if err != nil {
			return at, err
		}
	}
	if old, ok := c.index[key]; ok && old.inBuf {
		// Replacing a buffered entry: the old copy stays as dead buffer
		// space until the flush; simplest correct handling.
		delete(c.index, key)
	}
	c.index[key] = loc{off: c.bufFill, pages: pages, inBuf: true}
	c.bufKeys = append(c.bufKeys, key)
	c.bufFill += int64(pages)
	c.stats.Inserts++
	return at, nil
}

// flush writes the DRAM buffer to the next FIFO region, evicting that
// region's previous contents.
func (c *ConvBuffered) flush(at sim.Time) (sim.Time, error) {
	region := c.next
	c.next = (c.next + 1) % c.numRegions
	for _, k := range c.perRegion[region] {
		if l, ok := c.index[k]; ok && !l.inBuf && l.region == region {
			delete(c.index, k)
			c.stats.Evictions++
		}
	}
	c.perRegion[region] = c.perRegion[region][:0]
	base := region * c.regionPages
	done := at
	for p := int64(0); p < c.regionPages; p++ {
		d, err := c.dev.WritePage(at, base+p, nil)
		if err != nil {
			return at, err
		}
		done = sim.Max(done, d)
	}
	for _, k := range c.bufKeys {
		l, ok := c.index[k]
		if !ok || !l.inBuf {
			continue
		}
		c.index[k] = loc{region: region, off: l.off, pages: l.pages}
		c.perRegion[region] = append(c.perRegion[region], k)
	}
	c.bufKeys = c.bufKeys[:0]
	c.bufFill = 0
	return done, nil
}

// Get implements Cache.
func (c *ConvBuffered) Get(at sim.Time, key int64) (sim.Time, bool, error) {
	l, ok := c.index[key]
	if !ok {
		c.stats.Misses++
		return at, false, nil
	}
	if l.inBuf {
		c.stats.Hits++
		return at, true, nil // served from DRAM
	}
	base := l.region*c.regionPages + l.off
	done := at
	for p := 0; p < l.pages; p++ {
		d, _, err := c.dev.ReadPage(at, base+int64(p))
		if err != nil {
			return at, false, err
		}
		done = sim.Max(done, d)
	}
	c.stats.Hits++
	return done, true, nil
}

// ---------------------------------------------------------------------------
// Zone-native cache on a ZNS SSD.

// ZNSCache appends objects straight into open zones; eviction resets the
// oldest zone. No DRAM coalescing buffer exists — the zone write buffer
// lives on the device.
type ZNSCache struct {
	dev     *zns.Device
	order   []int // zones in fill order (FIFO)
	cur     int   // index into order of the zone being filled, -1 if none
	index   map[int64]loc
	perZone [][]int64
	stats   Stats
}

// NewZNSCache builds a zone-native cache using every zone of the device.
func NewZNSCache(dev *zns.Device) *ZNSCache {
	return &ZNSCache{
		dev:     dev,
		cur:     -1,
		index:   make(map[int64]loc),
		perZone: make([][]int64, dev.NumZones()),
	}
}

// Name implements Cache.
func (c *ZNSCache) Name() string { return "zns" }

// DRAMBufferBytes implements Cache: nothing to coalesce.
func (c *ZNSCache) DRAMBufferBytes() int64 { return 0 }

// Stats implements Cache.
func (c *ZNSCache) Stats() Stats { return c.stats }

// Counters implements Cache.
func (c *ZNSCache) Counters() *stats.Counters { return c.dev.Counters() }

// Insert implements Cache.
func (c *ZNSCache) Insert(at sim.Time, key int64, pages int) (sim.Time, error) {
	if int64(pages) > c.dev.ZonePages() {
		return at, ErrObjectTooLarge
	}
	zone, err := c.zoneWithRoom(at, pages)
	if err != nil {
		return at, err
	}
	if old, ok := c.index[key]; ok && !old.inBuf {
		delete(c.index, key) // old copy is dead space until its zone resets
	}
	off := c.dev.WP(zone)
	done := at
	for p := 0; p < pages; p++ {
		_, d, err := c.dev.Append(at, zone, nil)
		if err != nil {
			return at, err
		}
		done = sim.Max(done, d)
	}
	c.index[key] = loc{region: int64(zone), off: off, pages: pages}
	c.perZone[zone] = append(c.perZone[zone], key)
	c.stats.Inserts++
	return done, nil
}

// zoneWithRoom returns a zone that can fit the object, evicting the oldest
// zone when the device is full.
func (c *ZNSCache) zoneWithRoom(at sim.Time, pages int) (int, error) {
	if c.cur >= 0 {
		z := c.order[c.cur]
		if c.dev.WritableCap(z)-c.dev.WP(z) >= int64(pages) {
			return z, nil
		}
		c.dev.Finish(at, z)
	}
	// Find an empty zone, or evict the FIFO-oldest.
	for z := 0; z < c.dev.NumZones(); z++ {
		if c.dev.State(z) == zns.Empty && c.dev.WritableCap(z) > 0 {
			c.order = append(c.order, z)
			c.cur = len(c.order) - 1
			return z, nil
		}
	}
	victim := c.order[0]
	c.order = append(c.order[1:], victim)
	c.cur = len(c.order) - 1
	for _, k := range c.perZone[victim] {
		if l, ok := c.index[k]; ok && l.region == int64(victim) {
			delete(c.index, k)
			c.stats.Evictions++
		}
	}
	c.perZone[victim] = c.perZone[victim][:0]
	if _, err := c.dev.Reset(at, victim); err != nil {
		return -1, err
	}
	return victim, nil
}

// Get implements Cache.
func (c *ZNSCache) Get(at sim.Time, key int64) (sim.Time, bool, error) {
	l, ok := c.index[key]
	if !ok {
		c.stats.Misses++
		return at, false, nil
	}
	done := at
	for p := 0; p < l.pages; p++ {
		d, _, err := c.dev.Read(at, c.dev.LBA(int(l.region), l.off+int64(p)))
		if err != nil {
			return at, false, err
		}
		done = sim.Max(done, d)
	}
	c.stats.Hits++
	return done, true, nil
}
