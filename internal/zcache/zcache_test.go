package zcache

import (
	"errors"
	"testing"

	"blockhead/internal/flash"
	"blockhead/internal/ftl"
	"blockhead/internal/sim"
	"blockhead/internal/workload"
	"blockhead/internal/zns"
)

func geom() flash.Geometry {
	return flash.Geometry{Channels: 2, DiesPerChan: 2, PlanesPerDie: 1,
		BlocksPerLUN: 32, PagesPerBlock: 16, PageSize: 4096}
}

func convDev(t *testing.T) *ftl.Device {
	t.Helper()
	d, err := ftl.NewDefault(geom(), flash.LatenciesFor(flash.TLC), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func znsDev(t *testing.T) *zns.Device {
	t.Helper()
	d, err := zns.New(zns.Config{Geom: geom(), Lat: flash.LatenciesFor(flash.TLC), ZoneBlocks: 4})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func allCaches(t *testing.T) []Cache {
	sa, err := NewSetAssoc(convDev(t), 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := NewConvBuffered(convDev(t), 64)
	if err != nil {
		t.Fatal(err)
	}
	return []Cache{sa, cb, NewZNSCache(znsDev(t))}
}

func TestInsertGetHit(t *testing.T) {
	for _, c := range allCaches(t) {
		at, err := c.Insert(0, 42, 4)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		done, hit, err := c.Get(at, 42)
		if err != nil || !hit {
			t.Fatalf("%s: get = %v %v", c.Name(), hit, err)
		}
		if done < at {
			t.Errorf("%s: time went backward", c.Name())
		}
		_, hit, _ = c.Get(at, 999)
		if hit {
			t.Errorf("%s: phantom hit", c.Name())
		}
		s := c.Stats()
		if s.Inserts != 1 || s.Hits != 1 || s.Misses != 1 {
			t.Errorf("%s: stats %+v", c.Name(), s)
		}
	}
}

func TestEvictionUnderPressure(t *testing.T) {
	for _, c := range allCaches(t) {
		var at sim.Time
		n := int64(4000) // far beyond capacity (2048 pages / 4 = 512 objects)
		for k := int64(0); k < n; k++ {
			var err error
			at, err = c.Insert(at, k, 4)
			if err != nil {
				t.Fatalf("%s: insert %d: %v", c.Name(), k, err)
			}
		}
		if c.Stats().Evictions == 0 {
			t.Errorf("%s: no evictions despite 8x capacity inserted", c.Name())
		}
		// Recent keys should mostly be present; ancient keys gone.
		_, hit, _ := c.Get(at, n-2)
		if !hit {
			t.Errorf("%s: most recent key evicted", c.Name())
		}
		_, hit, _ = c.Get(at, 0)
		if hit && c.Name() != "conv-setassoc" { // set-assoc can retain by luck
			t.Errorf("%s: oldest key survived FIFO eviction", c.Name())
		}
	}
}

func TestDuplicateInsert(t *testing.T) {
	for _, c := range allCaches(t) {
		var at sim.Time
		at, _ = c.Insert(at, 7, 4)
		at, _ = c.Insert(at, 7, 4)
		_, hit, err := c.Get(at, 7)
		if err != nil || !hit {
			t.Fatalf("%s: reinserted key missing: %v %v", c.Name(), hit, err)
		}
	}
}

func TestSetAssocSizeValidation(t *testing.T) {
	sa, _ := NewSetAssoc(convDev(t), 4, 4)
	if _, err := sa.Insert(0, 1, 3); !errors.Is(err, ErrBadObjectSize) {
		t.Errorf("wrong-size insert: %v", err)
	}
	if _, err := NewSetAssoc(convDev(t), 0, 4); err == nil {
		t.Error("zero objPages accepted")
	}
}

func TestOversizeRejected(t *testing.T) {
	cb, _ := NewConvBuffered(convDev(t), 16)
	if _, err := cb.Insert(0, 1, 17); !errors.Is(err, ErrObjectTooLarge) {
		t.Errorf("oversized buffered insert: %v", err)
	}
	zc := NewZNSCache(znsDev(t))
	if _, err := zc.Insert(0, 1, int(znsDev(t).ZonePages())+1); !errors.Is(err, ErrObjectTooLarge) {
		t.Errorf("oversized zns insert: %v", err)
	}
}

// The §4.1 claim in miniature: the buffered conventional design needs a
// region of DRAM; set-assoc and ZNS need none — but set-assoc pays for it
// in write amplification, while ZNS does not.
func TestDRAMAndWATradeoff(t *testing.T) {
	sa, _ := NewSetAssoc(convDev(t), 4, 4)
	cb, _ := NewConvBuffered(convDev(t), 64)
	zc := NewZNSCache(znsDev(t))

	if cb.DRAMBufferBytes() != 64*4096 {
		t.Errorf("buffered DRAM = %d", cb.DRAMBufferBytes())
	}
	if sa.DRAMBufferBytes() != 0 || zc.DRAMBufferBytes() != 0 {
		t.Error("set-assoc and zns must need no coalescing DRAM")
	}

	src := workload.NewSource(1)
	keys := workload.NewZipf(src, 2000, 0.99)
	var atSA, atCB, atZC sim.Time
	for i := 0; i < 6000; i++ {
		k := keys.Next()
		var err error
		if atSA, err = sa.Insert(atSA, k, 4); err != nil {
			t.Fatal(err)
		}
		if atCB, err = cb.Insert(atCB, k, 4); err != nil {
			t.Fatal(err)
		}
		if atZC, err = zc.Insert(atZC, k, 4); err != nil {
			t.Fatal(err)
		}
	}
	waSA := sa.Counters().WriteAmp()
	waCB := cb.Counters().WriteAmp()
	waZC := zc.Counters().WriteAmp()
	t.Logf("WA: setassoc=%.2f buffered=%.2f zns=%.2f", waSA, waCB, waZC)
	if waSA <= waCB {
		t.Errorf("set-assoc WA (%.2f) must exceed buffered WA (%.2f)", waSA, waCB)
	}
	if waZC != 1.0 {
		t.Errorf("zns cache WA = %.2f, want exactly 1 (no device GC)", waZC)
	}
}

func TestHitRatioStat(t *testing.T) {
	s := Stats{Hits: 3, Misses: 1}
	if s.HitRatio() != 0.75 {
		t.Errorf("HitRatio = %v", s.HitRatio())
	}
	if (Stats{}).HitRatio() != 0 {
		t.Error("empty HitRatio must be 0")
	}
}

func TestZNSCacheWritableAfterManyCycles(t *testing.T) {
	zc := NewZNSCache(znsDev(t))
	var at sim.Time
	for k := int64(0); k < 10000; k++ {
		var err error
		at, err = zc.Insert(at, k, 4)
		if err != nil {
			t.Fatalf("insert %d: %v", k, err)
		}
	}
	if zc.Counters().WriteAmp() != 1.0 {
		t.Errorf("WA after many zone cycles = %v", zc.Counters().WriteAmp())
	}
	if zc.dev.Resets() == 0 {
		t.Error("no zone resets happened")
	}
}
