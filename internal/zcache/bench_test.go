package zcache

import (
	"testing"

	"blockhead/internal/flash"
	"blockhead/internal/ftl"
	"blockhead/internal/sim"
	"blockhead/internal/workload"
	"blockhead/internal/zns"
)

func benchGeom() flash.Geometry {
	return flash.Geometry{Channels: 4, DiesPerChan: 1, PlanesPerDie: 1,
		BlocksPerLUN: 32, PagesPerBlock: 64, PageSize: 4096}
}

func benchDrive(b *testing.B, c Cache) {
	b.Helper()
	src := workload.NewSource(1)
	keys := workload.NewZipf(src, 3000, 0.99)
	var at sim.Time
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys.Next()
		done, hit, err := c.Get(at, k)
		if err != nil {
			b.Fatal(err)
		}
		at = done
		if !hit {
			if at, err = c.Insert(at, k, 4); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkSetAssoc(b *testing.B) {
	dev, err := ftl.NewDefault(benchGeom(), flash.LatenciesFor(flash.TLC), 0.11)
	if err != nil {
		b.Fatal(err)
	}
	c, err := NewSetAssoc(dev, 4, 4)
	if err != nil {
		b.Fatal(err)
	}
	benchDrive(b, c)
	b.ReportMetric(c.Counters().WriteAmp(), "WA")
}

func BenchmarkConvBuffered(b *testing.B) {
	dev, err := ftl.NewDefault(benchGeom(), flash.LatenciesFor(flash.TLC), 0.11)
	if err != nil {
		b.Fatal(err)
	}
	c, err := NewConvBuffered(dev, 256)
	if err != nil {
		b.Fatal(err)
	}
	benchDrive(b, c)
	b.ReportMetric(float64(c.DRAMBufferBytes()), "DRAM-bytes")
}

func BenchmarkZNSCache(b *testing.B) {
	dev, err := zns.New(zns.Config{Geom: benchGeom(), Lat: flash.LatenciesFor(flash.TLC),
		ZoneBlocks: 4})
	if err != nil {
		b.Fatal(err)
	}
	c := NewZNSCache(dev)
	benchDrive(b, c)
	b.ReportMetric(c.Counters().WriteAmp(), "WA")
}
