// Package flash models NAND flash at the level the paper's §2.1 primer
// describes: pages grouped into erasure blocks, blocks grouped into planes,
// planes into dies, dies into channels. Reads happen at page granularity,
// pages within a block must be programmed sequentially, and a block must be
// erased before its pages can be programmed again. Erase takes several times
// longer than program (~6x for TLC, per the paper).
//
// Both device models in this repository — the conventional page-mapped FTL
// (internal/ftl) and the ZNS device (internal/zns) — are built on this one
// package, so comparisons between them isolate the interface, which is the
// paper's argument.
//
// Timing: each plane is an independent execution unit (LUN) with busy-until
// semantics; each channel is a shared bus that serializes page transfers.
// The model is the standard first-order contention model used by SSD
// simulators (FEMU, MQSim): completion time = queueing + cell time + bus
// time.
package flash

import (
	"errors"
	"fmt"

	"blockhead/internal/fault"
	"blockhead/internal/sim"
	"blockhead/internal/telemetry"
)

// CellType is the number of bits stored per NAND cell (§2.1).
type CellType int

const (
	SLC CellType = 1 // 1 bit/cell
	MLC CellType = 2
	TLC CellType = 3
	QLC CellType = 4
	PLC CellType = 5
)

// String implements fmt.Stringer.
func (c CellType) String() string {
	switch c {
	case SLC:
		return "SLC"
	case MLC:
		return "MLC"
	case TLC:
		return "TLC"
	case QLC:
		return "QLC"
	case PLC:
		return "PLC"
	default:
		return fmt.Sprintf("CellType(%d)", int(c))
	}
}

// Latencies holds the per-operation timing of a flash part.
type Latencies struct {
	ReadPage    sim.Time // cell sense time for one page
	ProgramPage sim.Time // cell program time for one page
	EraseBlock  sim.Time // erase time for one erasure block
	XferPage    sim.Time // channel bus time to move one page to/from the host
}

// LatenciesFor returns representative latencies for a cell type. The TLC
// profile is the repository default and satisfies the paper's §2.1 claim
// that erase takes ~6x as long as program.
func LatenciesFor(c CellType) Latencies {
	switch c {
	case SLC:
		return Latencies{ReadPage: 25 * sim.Microsecond, ProgramPage: 200 * sim.Microsecond,
			EraseBlock: 1500 * sim.Microsecond, XferPage: 3300 * sim.Nanosecond}
	case MLC:
		return Latencies{ReadPage: 50 * sim.Microsecond, ProgramPage: 600 * sim.Microsecond,
			EraseBlock: 3600 * sim.Microsecond, XferPage: 3300 * sim.Nanosecond}
	case QLC:
		return Latencies{ReadPage: 100 * sim.Microsecond, ProgramPage: 2200 * sim.Microsecond,
			EraseBlock: 11 * sim.Millisecond, XferPage: 3300 * sim.Nanosecond}
	case PLC:
		return Latencies{ReadPage: 150 * sim.Microsecond, ProgramPage: 3500 * sim.Microsecond,
			EraseBlock: 18 * sim.Millisecond, XferPage: 3300 * sim.Nanosecond}
	default: // TLC
		return Latencies{ReadPage: 60 * sim.Microsecond, ProgramPage: 700 * sim.Microsecond,
			EraseBlock: 4200 * sim.Microsecond, XferPage: 3300 * sim.Nanosecond}
	}
}

// Geometry describes the physical organization of a device.
//
// Block indices are interleaved across LUNs: consecutive block numbers live
// on consecutive LUNs, so a device layer that fills blocks round-robin gets
// die parallelism for free.
type Geometry struct {
	Channels      int // independent buses
	DiesPerChan   int // dies per channel
	PlanesPerDie  int // planes per die; each plane is an execution unit (LUN)
	BlocksPerLUN  int // erasure blocks per plane
	PagesPerBlock int // pages per erasure block
	PageSize      int // bytes per page (typically 4096, §2.1)
}

// DefaultGeometry is the repository's calibration geometry: 8 channels x 4
// dies x 1 plane, 4 KiB pages, 4096 pages/block = 16 MiB erasure blocks
// (matching the paper's §2.2 DRAM estimate), 8 GiB per LUN slice scaled by
// BlocksPerLUN.
func DefaultGeometry(blocksPerLUN int) Geometry {
	return Geometry{
		Channels:      8,
		DiesPerChan:   4,
		PlanesPerDie:  1,
		BlocksPerLUN:  blocksPerLUN,
		PagesPerBlock: 4096,
		PageSize:      4096,
	}
}

// Validate reports an error if any field is non-positive.
func (g Geometry) Validate() error {
	if g.Channels <= 0 || g.DiesPerChan <= 0 || g.PlanesPerDie <= 0 ||
		g.BlocksPerLUN <= 0 || g.PagesPerBlock <= 0 || g.PageSize <= 0 {
		return fmt.Errorf("flash: invalid geometry %+v", g)
	}
	return nil
}

// LUNs reports the number of independent execution units.
func (g Geometry) LUNs() int { return g.Channels * g.DiesPerChan * g.PlanesPerDie }

// TotalBlocks reports the number of erasure blocks on the device.
func (g Geometry) TotalBlocks() int { return g.LUNs() * g.BlocksPerLUN }

// TotalPages reports the number of pages on the device.
func (g Geometry) TotalPages() int64 {
	return int64(g.TotalBlocks()) * int64(g.PagesPerBlock)
}

// BlockBytes reports the size of one erasure block in bytes.
func (g Geometry) BlockBytes() int64 { return int64(g.PagesPerBlock) * int64(g.PageSize) }

// CapacityBytes reports the raw flash capacity in bytes.
func (g Geometry) CapacityBytes() int64 { return int64(g.TotalBlocks()) * g.BlockBytes() }

// LUNOfBlock maps a block index to its LUN.
func (g Geometry) LUNOfBlock(block int) int { return block % g.LUNs() }

// ChannelOfLUN maps a LUN index to its channel.
func (g Geometry) ChannelOfLUN(lun int) int {
	return lun / (g.DiesPerChan * g.PlanesPerDie)
}

// ChannelOfBlock maps a block index to its channel.
func (g Geometry) ChannelOfBlock(block int) int {
	return g.ChannelOfLUN(g.LUNOfBlock(block))
}

// Errors returned by Device operations. Device layers above flash are
// expected to treat all of them as programming errors except the media
// failures — ErrWornOut (end-of-endurance cell failure, §2.1),
// ErrUncorrectable (a read that exhausted the retry ladder),
// ErrProgramFailed, and ErrEraseFailed (injected hard failures that grow
// the bad-block set) — which must be handled by retiring the block
// (conventional) or transitioning the zone (ZNS).
var (
	ErrOutOfRange    = errors.New("flash: address out of range")
	ErrNotSequential = errors.New("flash: pages within an erasure block must be programmed sequentially")
	ErrNotErased     = errors.New("flash: block is full; erase before programming")
	ErrUnwritten     = errors.New("flash: read of unwritten page")
	ErrWornOut       = errors.New("flash: block exceeded erase endurance")
	ErrBadBlock      = errors.New("flash: block is marked bad")
	ErrUncorrectable = errors.New("flash: read uncorrectable after retry ladder")
	ErrProgramFailed = errors.New("flash: page program failed; block retired")
	ErrEraseFailed   = errors.New("flash: block erase failed; block retired")
)

// OpCounts tracks physical operations executed by the device.
type OpCounts struct {
	Reads    uint64
	Programs uint64
	Erases   uint64
}

type blockState struct {
	nextPage   int32 // next programmable page; == PagesPerBlock when full
	eraseCount uint32
	bad        bool
	sealed     bool // closed to further programs until erased (torn frontier)
}

// lunState is one LUN's complete mutable timing state: the busy-until
// execution unit, its accumulated utilization, and the attribution occupancy
// (last tenant and service phase, so a LUN-wait can blame what it queued
// behind). Keeping all of it in one struct is the shard boundary the
// channel-sharded scheduler (internal/sim/shard) relies on: a shard owns its
// channels' LUNs, so every write lands in d.luns[lun] and the affinity
// report classifies the whole unit per-lun.
type lunState struct {
	res   sim.Resource
	busy  sim.Time
	owner telemetry.TenantID
	op    telemetry.Phase // previous cell op's service phase; -1 before the first
}

// chanState is one channel bus's mutable timing state, the per-chan
// counterpart of lunState. The bus only ever transfers pages, so no service
// phase is tracked.
type chanState struct {
	res   sim.Resource
	busy  sim.Time
	owner telemetry.TenantID
}

// Device is a timed NAND flash array.
type Device struct {
	Geom Geometry
	Lat  Latencies

	// Endurance is the per-block erase budget; 0 means unlimited. When a
	// block's erase count reaches Endurance, the erase fails with ErrWornOut
	// and the block is marked bad.
	Endurance uint32

	luns   []lunState
	chans  []chanState
	blocks []blockState
	//simlint:shared commutative aggregate op totals: per-shard counts merge by summing at barriers
	counts OpCounts

	// Fault injection (nil = perfect media) and crash/recovery support.
	// The OOB arrays model the out-of-band area real NAND pages carry
	// (logical address + sequence stamp) and exist only when recovery is
	// armed, as does the per-page program-completion clock CrashAt uses to
	// find the durable prefix.
	inj      *fault.Injector
	recovery bool
	oobLPN   []int64
	oobSeq   []uint64
	progDone []sim.Time

	// owners arms the occupancy half of lunState/chanState: SetProbe sets it
	// when attribution attaches, and claimLUN/claimChan stamp the current
	// worker tenant (and, for LUNs, the service phase) so a wait charge can
	// blame the previous occupant — the tenant whose activity the arriving
	// op queued behind.
	owners bool

	// Telemetry handles; all nil (zero-cost no-ops) without SetProbe.
	tr                     *telemetry.Tracer
	attr                   *telemetry.AttrSink
	fl                     *telemetry.Flight
	mReads, mProgs, mErase *telemetry.Counter
}

// New returns a fresh, fully erased device. It panics on invalid geometry;
// geometry is always program-supplied, never user input.
func New(geom Geometry, lat Latencies) *Device {
	if err := geom.Validate(); err != nil {
		panic(err)
	}
	return &Device{
		Geom:   geom,
		Lat:    lat,
		luns:   make([]lunState, geom.LUNs()),
		chans:  make([]chanState, geom.Channels),
		blocks: make([]blockState, geom.TotalBlocks()),
	}
}

// SetProbe attaches (or, with nil, detaches) telemetry: physical-op
// counters, per-channel/per-LUN utilization gauges, and busy-interval spans
// on one trace track per channel and per LUN. Attach before driving I/O.
func (d *Device) SetProbe(p *telemetry.Probe) {
	reg := p.Registry()
	d.tr = p.Tracer()
	d.attr = p.Attribution()
	d.fl = p.Flight()
	if d.attr != nil && !d.owners {
		d.owners = true
		for i := range d.luns {
			d.luns[i].op = -1
		}
	}
	d.mReads = reg.Counter("flash/read_pages")
	d.mProgs = reg.Counter("flash/program_pages")
	d.mErase = reg.Counter("flash/block_erases")
	reg.Gauge("flash/wear/max_erase", func(sim.Time) float64 {
		return float64(d.Wear().MaxErase)
	})
	reg.Gauge("flash/wear/skew", func(sim.Time) float64 {
		return d.Wear().Skew
	})
	p.Heat().Register("flash", d.heatSection)
	d.tr.NameProcess(telemetry.ProcFlashChan, "flash channels")
	d.tr.NameProcess(telemetry.ProcFlashLUN, "flash LUNs (dies)")
	for c := 0; c < d.Geom.Channels; c++ {
		c := c
		d.tr.NameTrack(telemetry.ProcFlashChan, int32(c), fmt.Sprintf("chan %d", c))
		reg.Gauge(fmt.Sprintf("flash/chan/%d/util", c), func(at sim.Time) float64 {
			if at <= 0 {
				return 0
			}
			return float64(d.chans[c].busy) / float64(at)
		})
	}
	for l := 0; l < d.Geom.LUNs(); l++ {
		l := l
		die := l / d.Geom.PlanesPerDie % d.Geom.DiesPerChan
		d.tr.NameTrack(telemetry.ProcFlashLUN, int32(l),
			fmt.Sprintf("lun %d (chan %d die %d)", l, d.Geom.ChannelOfLUN(l), die))
		reg.Gauge(fmt.Sprintf("flash/lun/%d/util", l), func(at sim.Time) float64 {
			if at <= 0 {
				return 0
			}
			return float64(d.luns[l].busy) / float64(at)
		})
	}
}

// LUNBusy reports the accumulated busy time of a LUN (cell operations).
func (d *Device) LUNBusy(lun int) sim.Time { return d.luns[lun].busy }

// ChannelBusy reports the accumulated busy time of a channel bus.
func (d *Device) ChannelBusy(ch int) sim.Time { return d.chans[ch].busy }

// Counts returns a copy of the physical operation counters.
func (d *Device) Counts() OpCounts { return d.counts }

// EraseCount reports how many times a block has been erased.
func (d *Device) EraseCount(block int) uint32 { return d.blocks[block].eraseCount }

// IsBad reports whether a block has been retired.
func (d *Device) IsBad(block int) bool { return d.blocks[block].bad }

// WrittenPages reports how many pages of the block are programmed.
func (d *Device) WrittenPages(block int) int { return int(d.blocks[block].nextPage) }

// SetInjector attaches a fault injector; nil restores perfect media.
func (d *Device) SetInjector(inj *fault.Injector) { d.inj = inj }

// Injector returns the attached fault injector (possibly nil).
func (d *Device) Injector() *fault.Injector { return d.inj }

// refEndurance normalizes wear for the fault model when Endurance is
// unlimited: hard-failure probability still has to grow as blocks age, so an
// uncapped device wears against a representative TLC budget.
const refEndurance = 3000

func (d *Device) wearFrac(b *blockState) float64 {
	end := d.Endurance
	if end == 0 {
		end = refEndurance
	}
	return float64(b.eraseCount) / float64(end)
}

// EnableRecovery arms crash/recovery support: per-page out-of-band stamps
// (StampOOB/OOB) and the program-completion clock CrashAt needs. Costs
// O(total pages) memory, so it is opt-in per campaign rather than always-on.
func (d *Device) EnableRecovery() {
	if d.recovery {
		return
	}
	d.recovery = true
	n := d.Geom.TotalPages()
	d.oobLPN = make([]int64, n)
	for i := range d.oobLPN {
		d.oobLPN[i] = -1
	}
	d.oobSeq = make([]uint64, n)
	d.progDone = make([]sim.Time, n)
}

// RecoveryEnabled reports whether EnableRecovery was called.
func (d *Device) RecoveryEnabled() bool { return d.recovery }

func (d *Device) pageIndex(block, page int) int64 {
	return int64(block)*int64(d.Geom.PagesPerBlock) + int64(page)
}

// StampOOB records a page's out-of-band metadata — the logical page it holds
// and a monotone write sequence number — the way a real FTL journals its
// mapping into each page's spare area. No-op unless recovery is armed.
func (d *Device) StampOOB(block, page int, lpn int64, seq uint64) {
	if !d.recovery {
		return
	}
	i := d.pageIndex(block, page)
	d.oobLPN[i] = lpn
	d.oobSeq[i] = seq
}

// OOB returns a page's out-of-band stamp; (-1, 0) when never stamped or
// recovery is not armed. Reading OOB carries no timing — recovery scans pay
// for it with the ReadPage that fetches the page.
func (d *Device) OOB(block, page int) (lpn int64, seq uint64) {
	if !d.recovery {
		return -1, 0
	}
	i := d.pageIndex(block, page)
	return d.oobLPN[i], d.oobSeq[i]
}

// SealBlock closes a partially-written block to further programs until it is
// erased. Recovery seals torn write frontiers: the cells past the durable
// prefix are in an indeterminate state, so the safe policy is to treat the
// block as full, let GC drain it, and reclaim it with an erase.
func (d *Device) SealBlock(block int) { d.blocks[block].sealed = true }

// IsSealed reports whether a block was sealed (reads stay legal).
func (d *Device) IsSealed(block int) bool { return d.blocks[block].sealed }

// claimLUN stamps the current worker tenant and the new cell operation's
// service phase as the LUN's occupancy, and returns the previous occupant
// and phase — the culprit an arriving op's LUN-wait is blamed on and the
// cost it queued behind. Ownership updates even while attribution is
// suspended (reclamation fan-out is exactly the occupancy later victims
// wait behind). (SelfTenant, -1) when attribution is off.
func (d *Device) claimLUN(lun int, op telemetry.Phase) (telemetry.TenantID, telemetry.Phase) {
	if !d.owners {
		return telemetry.SelfTenant, -1
	}
	l := &d.luns[lun]
	prev, prevOp := l.owner, l.op
	l.owner = d.attr.Worker()
	l.op = op
	return prev, prevOp
}

// claimChan is claimLUN for a channel bus.
func (d *Device) claimChan(ch int) telemetry.TenantID {
	if !d.owners {
		return telemetry.SelfTenant
	}
	c := &d.chans[ch]
	prev := c.owner
	c.owner = d.attr.Worker()
	return prev
}

func (d *Device) checkAddr(block, page int) error {
	if block < 0 || block >= len(d.blocks) || page < 0 || page >= d.Geom.PagesPerBlock {
		return ErrOutOfRange
	}
	return nil
}

// ReadPage reads one page. The LUN senses the cells — possibly several
// times, if the fault injector makes senses fail transiently and the retry
// ladder re-reads with tuned thresholds — then the channel bus transfers the
// page out. Reading a page that was never programmed since the last erase
// returns ErrUnwritten; exhausting the retry ladder returns ErrUncorrectable
// with the sense time spent but nothing transferred. Grown-bad blocks refuse
// programs and erases but stay readable: pages programmed before the block
// was retired still hold data the layer above must be able to migrate off.
func (d *Device) ReadPage(at sim.Time, block, page int) (sim.Time, error) {
	if err := d.checkAddr(block, page); err != nil {
		return at, err
	}
	b := &d.blocks[block]
	if int32(page) >= b.nextPage {
		return at, ErrUnwritten
	}
	retries, uncorrectable := d.inj.ReadFaults(d.wearFrac(b))
	if retries > 0 {
		// Mark the active record so the exemplar reservoir always keeps
		// IOs that needed a media retry, however fast they completed.
		d.attr.FlagIO(telemetry.FlagFaultRetry)
	}
	sense := sim.Time(1+retries) * d.Lat.ReadPage
	lun := d.Geom.LUNOfBlock(block)
	ch := d.Geom.ChannelOfLUN(lun)
	prevLUN, lunBind := d.claimLUN(lun, telemetry.PhaseNANDRead)
	senseStart, senseEnd := d.luns[lun].res.Acquire(at, sense)
	d.luns[lun].busy += sense
	d.counts.Reads++
	d.mReads.Inc()
	if uncorrectable {
		// Error paths charge no attribution; the caller abandons or
		// re-places the op and accounts for the gap itself.
		d.fl.Record(at, telemetry.FlightFault, int32(block), "read_uncorrectable", int64(page))
		d.tr.SpanArg(telemetry.ProcFlashLUN, int32(lun), "flash", "read", senseStart, senseEnd, "block", int64(block))
		return senseEnd, ErrUncorrectable
	}
	prevCh := d.claimChan(ch)
	xferStart, done := d.chans[ch].res.Acquire(senseEnd, d.Lat.XferPage)
	d.chans[ch].busy += d.Lat.XferPage
	// Attribution: [at..senseStart) LUN queue, sense (incl. retries),
	// [senseEnd..xferStart) bus queue, transfer — contiguous intervals
	// covering at..done exactly. Waits blame the resource's previous
	// occupant.
	d.attr.ChargeWaitBlamed(telemetry.PhaseLUNWait, senseStart-at, prevLUN, lunBind)
	d.attr.Charge(telemetry.PhaseNANDRead, sense)
	d.attr.ChargeWaitBlamed(telemetry.PhaseChanWait, xferStart-senseEnd, prevCh, telemetry.PhaseXfer)
	d.attr.Charge(telemetry.PhaseXfer, d.Lat.XferPage)
	d.tr.SpanArg(telemetry.ProcFlashLUN, int32(lun), "flash", "read", senseStart, senseEnd, "block", int64(block))
	d.tr.Span(telemetry.ProcFlashChan, int32(ch), "flash", "xfer_out", xferStart, done)
	return done, nil
}

// ProgramPage programs one page. Pages within a block must be programmed in
// order (§2.1); out-of-order programming returns ErrNotSequential, and
// programming a full block returns ErrNotErased. The channel transfers the
// page in, then the LUN programs the cells.
func (d *Device) ProgramPage(at sim.Time, block, page int) (sim.Time, error) {
	if err := d.checkAddr(block, page); err != nil {
		return at, err
	}
	b := &d.blocks[block]
	if b.bad {
		return at, ErrBadBlock
	}
	if b.sealed {
		return at, ErrNotErased
	}
	if b.nextPage >= int32(d.Geom.PagesPerBlock) {
		return at, ErrNotErased
	}
	if int32(page) != b.nextPage {
		return at, ErrNotSequential
	}
	lun := d.Geom.LUNOfBlock(block)
	ch := d.Geom.ChannelOfLUN(lun)
	prevCh := d.claimChan(ch)
	xferStart, xferEnd := d.chans[ch].res.Acquire(at, d.Lat.XferPage)
	prevLUN, lunBind := d.claimLUN(lun, telemetry.PhaseNANDProgram)
	progStart, done := d.luns[lun].res.Acquire(xferEnd, d.Lat.ProgramPage)
	d.chans[ch].busy += d.Lat.XferPage
	d.luns[lun].busy += d.Lat.ProgramPage
	d.counts.Programs++
	d.mProgs.Inc()
	if d.inj.ProgramFails(d.wearFrac(b)) {
		// The program consumed bus and cell time, then reported failure.
		// The block is retired with its already-programmed pages intact
		// and readable; the failed page's cells are untrusted, so nextPage
		// does not advance and the block refuses further programs.
		b.bad = true
		d.fl.Record(at, telemetry.FlightFault, int32(block), "program_failed", int64(page))
		d.tr.Span(telemetry.ProcFlashChan, int32(ch), "flash", "xfer_in", xferStart, xferEnd)
		d.tr.SpanArg(telemetry.ProcFlashLUN, int32(lun), "flash", "program", progStart, done, "block", int64(block))
		return done, ErrProgramFailed
	}
	b.nextPage++
	if d.recovery {
		d.progDone[d.pageIndex(block, page)] = done
	}
	d.attr.ChargeWaitBlamed(telemetry.PhaseChanWait, xferStart-at, prevCh, telemetry.PhaseXfer)
	d.attr.Charge(telemetry.PhaseXfer, d.Lat.XferPage)
	d.attr.ChargeWaitBlamed(telemetry.PhaseLUNWait, progStart-xferEnd, prevLUN, lunBind)
	d.attr.Charge(telemetry.PhaseNANDProgram, d.Lat.ProgramPage)
	d.tr.Span(telemetry.ProcFlashChan, int32(ch), "flash", "xfer_in", xferStart, xferEnd)
	d.tr.SpanArg(telemetry.ProcFlashLUN, int32(lun), "flash", "program", progStart, done, "block", int64(block))
	return done, nil
}

// EraseBlock erases one block, making all its pages programmable again.
// If the block's erase count reaches the endurance budget the block is
// retired and ErrWornOut is returned.
func (d *Device) EraseBlock(at sim.Time, block int) (sim.Time, error) {
	if err := d.checkAddr(block, 0); err != nil {
		return at, err
	}
	b := &d.blocks[block]
	if b.bad {
		return at, ErrBadBlock
	}
	if d.Endurance != 0 && b.eraseCount >= d.Endurance {
		b.bad = true
		d.fl.Record(at, telemetry.FlightErase, int32(block), "worn_out", int64(b.eraseCount))
		return at, ErrWornOut
	}
	lun := d.Geom.LUNOfBlock(block)
	prevLUN, lunBind := d.claimLUN(lun, telemetry.PhaseNANDErase)
	eraseStart, done := d.luns[lun].res.Acquire(at, d.Lat.EraseBlock)
	d.luns[lun].busy += d.Lat.EraseBlock
	d.counts.Erases++
	d.mErase.Inc()
	if d.inj.EraseFails(d.wearFrac(b)) {
		// The erase ran and failed: the cells are indeterminate, so the
		// block is retired with nothing readable. Callers only erase
		// blocks holding no valid data, so no mapping is lost.
		b.bad = true
		b.nextPage = 0
		b.sealed = false
		d.fl.Record(at, telemetry.FlightFault, int32(block), "erase_failed", int64(b.eraseCount))
		d.tr.SpanArg(telemetry.ProcFlashLUN, int32(lun), "flash", "erase", eraseStart, done, "block", int64(block))
		return done, ErrEraseFailed
	}
	b.eraseCount++
	b.nextPage = 0
	b.sealed = false
	d.attr.ChargeWaitBlamed(telemetry.PhaseLUNWait, eraseStart-at, prevLUN, lunBind)
	d.attr.Charge(telemetry.PhaseNANDErase, d.Lat.EraseBlock)
	d.fl.Record(at, telemetry.FlightErase, int32(block), "", int64(b.eraseCount))
	d.tr.SpanArg(telemetry.ProcFlashLUN, int32(lun), "flash", "erase", eraseStart, done, "block", int64(block))
	return done, nil
}

// CopyPage performs a controller-internal copy of one page: a read on the
// source LUN followed by a program on the destination LUN, moving data over
// the channel bus but never over the host interface. This is the primitive
// behind conventional-FTL garbage collection and the NVMe simple-copy
// command (§2.3). The destination must be the block's next sequential page.
func (d *Device) CopyPage(at sim.Time, srcBlock, srcPage, dstBlock, dstPage int) (sim.Time, error) {
	readDone, err := d.ReadPage(at, srcBlock, srcPage)
	if err != nil {
		return at, err
	}
	done, err := d.ProgramPage(readDone, dstBlock, dstPage)
	if err != nil {
		return done, err
	}
	if d.recovery {
		// A device-internal copy moves the page's spare area with it, so
		// the destination inherits the source's OOB stamp.
		src := d.pageIndex(srcBlock, srcPage)
		d.StampOOB(dstBlock, dstPage, d.oobLPN[src], d.oobSeq[src])
	}
	return done, nil
}

// CrashStats summarizes a power-loss event: what truncating to the durable
// prefix cost, and which blocks need attention before reuse.
type CrashStats struct {
	At        sim.Time
	LostPages int64 // in-flight programs undone (completion after the cut)
	Torn      []int // blocks truncated to zero written pages; indeterminate cells, re-erase before reuse
}

// CrashAt models power loss at time t. Device state is truncated to what was
// durable then: a programmed page survives iff its program completed at or
// before t — within one block completions are monotone in page order (same
// LUN, sequential issue), so the survivors are a clean prefix — while an
// erase is durable at issue. In-flight LUN and channel reservations are
// abandoned. The volatile layers above (mapping tables, zone states) are the
// stacks' problem; their Recover methods rebuild from what this leaves.
// Requires EnableRecovery (the per-page completion clock).
func (d *Device) CrashAt(t sim.Time) CrashStats {
	if !d.recovery {
		panic("flash: CrashAt requires EnableRecovery")
	}
	st := CrashStats{At: t}
	for blk := range d.blocks {
		b := &d.blocks[blk]
		if b.nextPage == 0 {
			continue
		}
		base := int64(blk) * int64(d.Geom.PagesPerBlock)
		durable := int(b.nextPage)
		for durable > 0 && d.progDone[base+int64(durable-1)] > t {
			durable--
		}
		lost := int(b.nextPage) - durable
		if lost == 0 {
			continue
		}
		st.LostPages += int64(lost)
		for p := durable; p < int(b.nextPage); p++ {
			i := base + int64(p)
			d.progDone[i] = 0
			d.oobLPN[i] = -1
			d.oobSeq[i] = 0
		}
		b.nextPage = int32(durable)
		if durable == 0 {
			st.Torn = append(st.Torn, blk)
		}
	}
	for i := range d.luns {
		d.luns[i].res.Interrupt(t)
	}
	for i := range d.chans {
		d.chans[i].res.Interrupt(t)
	}
	d.fl.Record(t, telemetry.FlightCrash, -1, "power_loss", st.LostPages)
	return st
}

// LUNFreeAt reports when the LUN owning block becomes idle; device layers
// use it to schedule maintenance work (host-controlled GC, §4.1) around
// foreground I/O.
func (d *Device) LUNFreeAt(block int) sim.Time {
	return d.luns[d.Geom.LUNOfBlock(block)].res.FreeAt()
}

// BusyLUNs reports how many LUNs are still acquired past instant at — the
// die-occupancy component of the exemplar layer's device snapshot.
func (d *Device) BusyLUNs(at sim.Time) int {
	n := 0
	for i := range d.luns {
		if d.luns[i].res.FreeAt() > at {
			n++
		}
	}
	return n
}

// BusyChans reports how many channel buses are still acquired past instant
// at — the bus-occupancy component of the exemplar layer's device snapshot.
func (d *Device) BusyChans(at sim.Time) int {
	n := 0
	for i := range d.chans {
		if d.chans[i].res.FreeAt() > at {
			n++
		}
	}
	return n
}

// MaxEraseCount reports the highest per-block erase count — the wear-leveling
// figure of merit. Equivalent to Wear().MaxErase.
func (d *Device) MaxEraseCount() uint32 { return d.Wear().MaxErase }

// TotalEraseSpread reports max-min erase counts across non-bad blocks.
// Equivalent to Wear().Spread.
func (d *Device) TotalEraseSpread() uint32 { return d.Wear().Spread }
