package flash

import (
	"testing"

	"blockhead/internal/sim"
)

func benchDev() *Device {
	return New(DefaultGeometry(64), LatenciesFor(TLC))
}

func BenchmarkProgramPage(b *testing.B) {
	d := benchDev()
	blocks := d.Geom.TotalBlocks()
	pages := d.Geom.PagesPerBlock
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		block := i % blocks
		page := (i / blocks) % pages
		if page == 0 && i >= blocks*pages {
			d.EraseBlock(0, block)
		}
		if _, err := d.ProgramPage(0, block, page); err != nil {
			// Wrapped around a full device: erase and continue.
			d.EraseBlock(0, block)
			d.ProgramPage(0, block, 0)
		}
	}
}

func BenchmarkReadPage(b *testing.B) {
	d := benchDev()
	d.ProgramPage(0, 0, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.ReadPage(sim.Time(i), 0, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEraseBlock(b *testing.B) {
	d := benchDev()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.EraseBlock(sim.Time(i), i%d.Geom.TotalBlocks()); err != nil {
			b.Fatal(err)
		}
	}
}
