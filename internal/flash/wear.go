package flash

import (
	"blockhead/internal/sim"
	"blockhead/internal/telemetry"
)

// WearSummary aggregates per-block erase wear. It is the single source of
// truth for wear statistics: the endurance path (ErrWornOut), the wear
// telemetry gauges, and the heatmap dump all derive from the same per-block
// erase counts.
type WearSummary struct {
	Blocks      int     // total blocks
	BadBlocks   int     // retired blocks
	TotalErases uint64  // sum of per-block erase counts (incl. bad blocks)
	MaxErase    uint32  // highest per-block erase count
	MinErase    uint32  // lowest erase count across non-bad blocks
	MeanErase   float64 // mean erase count across all blocks
	Spread      uint32  // MaxErase - MinErase across non-bad blocks
	Skew        float64 // MaxErase / MeanErase; 0 before any erase
}

// Wear computes the wear summary from the per-block erase counts.
func (d *Device) Wear() WearSummary {
	w := WearSummary{Blocks: len(d.blocks), MinErase: ^uint32(0)}
	var hiGood uint32
	anyGood := false
	for i := range d.blocks {
		b := &d.blocks[i]
		c := b.eraseCount
		w.TotalErases += uint64(c)
		if c > w.MaxErase {
			w.MaxErase = c
		}
		if b.bad {
			w.BadBlocks++
			continue
		}
		anyGood = true
		if c < w.MinErase {
			w.MinErase = c
		}
		if c > hiGood {
			hiGood = c
		}
	}
	if !anyGood {
		w.MinErase = 0
	} else {
		w.Spread = hiGood - w.MinErase
	}
	if w.Blocks > 0 {
		w.MeanErase = float64(w.TotalErases) / float64(w.Blocks)
	}
	if w.MeanErase > 0 {
		w.Skew = float64(w.MaxErase) / w.MeanErase
	}
	return w
}

// EraseCounts appends every block's erase count to dst (allocating when dst
// lacks capacity) and returns the result, indexed by block.
func (d *Device) EraseCounts(dst []uint32) []uint32 {
	if cap(dst) < len(d.blocks) {
		dst = make([]uint32, 0, len(d.blocks))
	}
	dst = dst[:0]
	for i := range d.blocks {
		dst = append(dst, d.blocks[i].eraseCount)
	}
	return dst
}

// wearHistBuckets is the bucket budget of the wear histogram in heatmap
// dumps.
const wearHistBuckets = 16

// wearHist buckets the per-block erase counts into at most wearHistBuckets
// equal-width ranges; empty buckets are omitted.
func wearHist(counts []uint32, max uint32) []telemetry.WearBucket {
	width := max/wearHistBuckets + 1
	var filled [wearHistBuckets]int
	used := 0
	for _, c := range counts {
		i := int(c / width)
		if i >= wearHistBuckets {
			i = wearHistBuckets - 1
		}
		if filled[i] == 0 {
			used++
		}
		filled[i]++
	}
	hist := make([]telemetry.WearBucket, 0, used)
	for i, n := range filled {
		if n == 0 {
			continue
		}
		hist = append(hist, telemetry.WearBucket{
			Lo:     uint32(i) * width,
			Hi:     uint32(i+1)*width - 1,
			Blocks: n,
		})
	}
	return hist
}

// heatSection is the flash device's heatmap source: wear statistics with a
// downsampled per-block grid, plus per-channel and per-LUN busy occupancy.
func (d *Device) heatSection(at sim.Time) telemetry.DeviceHeat {
	w := d.Wear()
	counts := d.EraseCounts(nil)
	cells, stride := telemetry.HeatCellsU32(counts)
	wh := &telemetry.WearHeat{
		Blocks:     w.Blocks,
		BadBlocks:  w.BadBlocks,
		MaxErase:   w.MaxErase,
		MeanErase:  w.MeanErase,
		Spread:     w.Spread,
		Skew:       w.Skew,
		Hist:       wearHist(counts, w.MaxErase),
		Cells:      cells,
		CellBlocks: stride,
	}
	chans := make([]telemetry.UnitOcc, d.Geom.Channels)
	for c := range chans {
		chans[c] = telemetry.UnitOcc{ID: c, BusyFrac: busyFrac(d.chans[c].busy, at)}
	}
	luns := make([]telemetry.UnitOcc, d.Geom.LUNs())
	for l := range luns {
		luns[l] = telemetry.UnitOcc{ID: l, BusyFrac: busyFrac(d.luns[l].busy, at)}
	}
	return telemetry.DeviceHeat{Wear: wh, Channels: chans, LUNs: luns}
}

func busyFrac(busy, at sim.Time) float64 {
	if at <= 0 {
		return 0
	}
	return float64(busy) / float64(at)
}
