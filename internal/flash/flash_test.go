package flash

import (
	"errors"
	"testing"
	"testing/quick"

	"blockhead/internal/sim"
)

func smallGeom() Geometry {
	return Geometry{Channels: 2, DiesPerChan: 2, PlanesPerDie: 1,
		BlocksPerLUN: 4, PagesPerBlock: 8, PageSize: 4096}
}

func TestGeometryDerived(t *testing.T) {
	g := smallGeom()
	if g.LUNs() != 4 {
		t.Errorf("LUNs = %d, want 4", g.LUNs())
	}
	if g.TotalBlocks() != 16 {
		t.Errorf("TotalBlocks = %d, want 16", g.TotalBlocks())
	}
	if g.TotalPages() != 128 {
		t.Errorf("TotalPages = %d, want 128", g.TotalPages())
	}
	if g.BlockBytes() != 8*4096 {
		t.Errorf("BlockBytes = %d", g.BlockBytes())
	}
	if g.CapacityBytes() != 16*8*4096 {
		t.Errorf("CapacityBytes = %d", g.CapacityBytes())
	}
}

func TestGeometryBlockInterleave(t *testing.T) {
	g := smallGeom()
	// Consecutive blocks must land on consecutive LUNs (die parallelism).
	for b := 0; b < g.LUNs(); b++ {
		if g.LUNOfBlock(b) != b {
			t.Errorf("LUNOfBlock(%d) = %d, want %d", b, g.LUNOfBlock(b), b)
		}
	}
	if g.LUNOfBlock(g.LUNs()) != 0 {
		t.Error("block numbering must wrap around LUNs")
	}
	// Channel mapping: LUNs 0,1 -> channel 0; LUNs 2,3 -> channel 1.
	if g.ChannelOfLUN(0) != 0 || g.ChannelOfLUN(1) != 0 || g.ChannelOfLUN(2) != 1 {
		t.Error("ChannelOfLUN mapping wrong")
	}
	if g.ChannelOfBlock(2) != 1 {
		t.Errorf("ChannelOfBlock(2) = %d, want 1", g.ChannelOfBlock(2))
	}
}

func TestGeometryValidate(t *testing.T) {
	if err := smallGeom().Validate(); err != nil {
		t.Errorf("valid geometry rejected: %v", err)
	}
	bad := smallGeom()
	bad.Channels = 0
	if err := bad.Validate(); err == nil {
		t.Error("invalid geometry accepted")
	}
}

func TestDefaultGeometry(t *testing.T) {
	g := DefaultGeometry(8)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.BlockBytes() != 16<<20 {
		t.Errorf("default erasure block = %d bytes, want 16 MiB (paper's DRAM estimate)", g.BlockBytes())
	}
}

func TestCellTypeString(t *testing.T) {
	for c, want := range map[CellType]string{SLC: "SLC", MLC: "MLC", TLC: "TLC", QLC: "QLC", PLC: "PLC"} {
		if c.String() != want {
			t.Errorf("%d.String() = %q", int(c), c.String())
		}
	}
	if CellType(9).String() != "CellType(9)" {
		t.Error("unknown cell type String wrong")
	}
}

// The paper (§2.1): "Erasing takes several times longer than programming
// (~6x for TLC)". This is experiment E12's core calibration check.
func TestTLCEraseSixTimesProgram(t *testing.T) {
	lat := LatenciesFor(TLC)
	ratio := float64(lat.EraseBlock) / float64(lat.ProgramPage)
	if ratio < 5.5 || ratio > 6.5 {
		t.Errorf("TLC erase/program ratio = %.2f, want ~6 (paper §2.1)", ratio)
	}
}

func TestLatenciesOrdering(t *testing.T) {
	// Denser cells are slower in every dimension.
	prev := LatenciesFor(SLC)
	for _, c := range []CellType{MLC, TLC, QLC, PLC} {
		cur := LatenciesFor(c)
		if cur.ReadPage < prev.ReadPage || cur.ProgramPage < prev.ProgramPage || cur.EraseBlock < prev.EraseBlock {
			t.Errorf("%v latencies not monotonically slower than previous", c)
		}
		prev = cur
	}
}

func newDev() *Device { return New(smallGeom(), LatenciesFor(TLC)) }

func TestProgramReadRoundTrip(t *testing.T) {
	d := newDev()
	done, err := d.ProgramPage(0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := d.Lat.XferPage + d.Lat.ProgramPage
	if done != want {
		t.Errorf("program completion = %d, want %d", done, want)
	}
	rdone, err := d.ReadPage(done, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rdone != done+d.Lat.ReadPage+d.Lat.XferPage {
		t.Errorf("read completion = %d", rdone)
	}
	c := d.Counts()
	if c.Programs != 1 || c.Reads != 1 {
		t.Errorf("counts = %+v", c)
	}
}

func TestSequentialProgramEnforced(t *testing.T) {
	d := newDev()
	if _, err := d.ProgramPage(0, 0, 1); !errors.Is(err, ErrNotSequential) {
		t.Errorf("out-of-order program: err = %v, want ErrNotSequential", err)
	}
	if _, err := d.ProgramPage(0, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ProgramPage(0, 0, 0); !errors.Is(err, ErrNotSequential) {
		t.Errorf("re-program of page 0: err = %v, want ErrNotSequential", err)
	}
}

func TestFullBlockNeedsErase(t *testing.T) {
	d := newDev()
	var at sim.Time
	for p := 0; p < d.Geom.PagesPerBlock; p++ {
		var err error
		at, err = d.ProgramPage(at, 0, p)
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.ProgramPage(at, 0, 0); !errors.Is(err, ErrNotErased) {
		t.Errorf("program of full block: err = %v, want ErrNotErased", err)
	}
	at, err := d.EraseBlock(at, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.WrittenPages(0) != 0 {
		t.Error("erase must reset the write point")
	}
	if _, err := d.ProgramPage(at, 0, 0); err != nil {
		t.Errorf("program after erase failed: %v", err)
	}
	if d.EraseCount(0) != 1 {
		t.Errorf("EraseCount = %d, want 1", d.EraseCount(0))
	}
}

func TestReadUnwritten(t *testing.T) {
	d := newDev()
	if _, err := d.ReadPage(0, 0, 0); !errors.Is(err, ErrUnwritten) {
		t.Errorf("err = %v, want ErrUnwritten", err)
	}
	d.ProgramPage(0, 0, 0)
	if _, err := d.ReadPage(0, 0, 1); !errors.Is(err, ErrUnwritten) {
		t.Errorf("read past write point: err = %v, want ErrUnwritten", err)
	}
}

func TestOutOfRange(t *testing.T) {
	d := newDev()
	cases := []struct{ block, page int }{
		{-1, 0}, {d.Geom.TotalBlocks(), 0}, {0, -1}, {0, d.Geom.PagesPerBlock},
	}
	for _, c := range cases {
		if _, err := d.ProgramPage(0, c.block, c.page); !errors.Is(err, ErrOutOfRange) {
			t.Errorf("ProgramPage(%d,%d): err = %v, want ErrOutOfRange", c.block, c.page, err)
		}
		if _, err := d.ReadPage(0, c.block, c.page); !errors.Is(err, ErrOutOfRange) {
			t.Errorf("ReadPage(%d,%d): err = %v, want ErrOutOfRange", c.block, c.page, err)
		}
	}
	if _, err := d.EraseBlock(0, -1); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("EraseBlock(-1): err = %v", err)
	}
}

func TestEnduranceWearOut(t *testing.T) {
	d := newDev()
	d.Endurance = 3
	var at sim.Time
	for i := 0; i < 3; i++ {
		var err error
		at, err = d.EraseBlock(at, 5)
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.EraseBlock(at, 5); !errors.Is(err, ErrWornOut) {
		t.Errorf("4th erase: err = %v, want ErrWornOut", err)
	}
	if !d.IsBad(5) {
		t.Error("worn-out block must be retired")
	}
	if _, err := d.ProgramPage(at, 5, 0); !errors.Is(err, ErrBadBlock) {
		t.Errorf("program of bad block: err = %v, want ErrBadBlock", err)
	}
	if _, err := d.EraseBlock(at, 5); !errors.Is(err, ErrBadBlock) {
		t.Errorf("erase of bad block: err = %v, want ErrBadBlock", err)
	}
}

// Two programs to blocks on different LUNs overlap in time; two programs to
// the same LUN serialize. This is the parallelism that both device models
// inherit.
func TestLUNParallelism(t *testing.T) {
	d := newDev()
	// Blocks 0 and 1 are on different LUNs and different channels? Block 0 ->
	// LUN 0 (chan 0); block 2 -> LUN 2 (chan 1). Use 0 and 2 for full overlap.
	done0, _ := d.ProgramPage(0, 0, 0)
	done2, _ := d.ProgramPage(0, 2, 0)
	if done2 != done0 {
		t.Errorf("parallel programs on separate channels: %d vs %d, want equal", done0, done2)
	}
	// Same LUN: block 4 is LUN 0 again -> must serialize behind block 0.
	done4, _ := d.ProgramPage(0, 4, 0)
	if done4 <= done0 {
		t.Errorf("same-LUN programs must serialize: got %d <= %d", done4, done0)
	}
}

// Programs to two LUNs on the same channel share the bus: the second
// transfer waits for the first, but cell programming overlaps.
func TestChannelContention(t *testing.T) {
	d := newDev()
	done0, _ := d.ProgramPage(0, 0, 0) // LUN 0, chan 0
	done1, _ := d.ProgramPage(0, 1, 0) // LUN 1, chan 0
	if done1 != done0+d.Lat.XferPage {
		t.Errorf("channel-sharing program: done1 = %d, want %d", done1, done0+d.Lat.XferPage)
	}
}

func TestCopyPage(t *testing.T) {
	d := newDev()
	at, err := d.ProgramPage(0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	done, err := d.CopyPage(at, 0, 0, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if done <= at {
		t.Error("copy must take time")
	}
	if d.WrittenPages(2) != 1 {
		t.Error("copy must program the destination")
	}
	// Copy of an unwritten source fails.
	if _, err := d.CopyPage(done, 3, 0, 2, 1); !errors.Is(err, ErrUnwritten) {
		t.Errorf("copy of unwritten page: err = %v", err)
	}
}

func TestEraseParallelAcrossLUNs(t *testing.T) {
	d := newDev()
	done0, _ := d.EraseBlock(0, 0)
	done1, _ := d.EraseBlock(0, 1)
	if done0 != done1 {
		t.Errorf("erases on different LUNs must run in parallel: %d vs %d", done0, done1)
	}
}

func TestWearAccounting(t *testing.T) {
	d := newDev()
	d.EraseBlock(0, 0)
	d.EraseBlock(0, 0)
	d.EraseBlock(0, 1)
	if d.MaxEraseCount() != 2 {
		t.Errorf("MaxEraseCount = %d, want 2", d.MaxEraseCount())
	}
	if d.TotalEraseSpread() != 2 {
		t.Errorf("TotalEraseSpread = %d, want 2 (max 2, min 0)", d.TotalEraseSpread())
	}
}

func TestLUNFreeAt(t *testing.T) {
	d := newDev()
	done, _ := d.EraseBlock(0, 0)
	if d.LUNFreeAt(0) != done {
		t.Errorf("LUNFreeAt = %d, want %d", d.LUNFreeAt(0), done)
	}
	// Block 4 shares LUN 0.
	if d.LUNFreeAt(4) != done {
		t.Error("blocks on the same LUN share the busy state")
	}
}

func TestNewPanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with invalid geometry must panic")
		}
	}()
	New(Geometry{}, LatenciesFor(TLC))
}

// Property: any interleaving of valid sequential programs and erases keeps
// per-block write points within bounds and never lets counters go backward.
func TestDeviceInvariantProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		d := newDev()
		var at sim.Time
		for _, op := range ops {
			block := int(op) % d.Geom.TotalBlocks()
			if op%3 == 0 {
				done, err := d.EraseBlock(at, block)
				if err != nil {
					return false
				}
				at = done
			} else {
				next := d.WrittenPages(block)
				if next < d.Geom.PagesPerBlock {
					done, err := d.ProgramPage(at, block, next)
					if err != nil {
						return false
					}
					at = done
				}
			}
			if d.WrittenPages(block) < 0 || d.WrittenPages(block) > d.Geom.PagesPerBlock {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
