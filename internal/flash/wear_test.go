package flash

import (
	"errors"
	"testing"

	"blockhead/internal/sim"
)

func TestWearTracksErases(t *testing.T) {
	d := New(smallGeom(), LatenciesFor(SLC)) // 16 blocks
	w := d.Wear()
	if w.Blocks != 16 || w.TotalErases != 0 || w.MaxErase != 0 || w.Skew != 0 {
		t.Fatalf("fresh device wear = %+v", w)
	}
	var at sim.Time
	erase := func(block, times int) {
		t.Helper()
		for i := 0; i < times; i++ {
			var err error
			if at, err = d.EraseBlock(at, block); err != nil {
				t.Fatal(err)
			}
		}
	}
	erase(0, 4)
	erase(1, 1)
	w = d.Wear()
	if w.TotalErases != 5 || w.MaxErase != 4 || w.MinErase != 0 {
		t.Fatalf("wear = %+v", w)
	}
	if w.Spread != 4 {
		t.Errorf("Spread = %d, want 4", w.Spread)
	}
	wantMean := 5.0 / 16.0
	if w.MeanErase != wantMean {
		t.Errorf("MeanErase = %v, want %v", w.MeanErase, wantMean)
	}
	if w.Skew != 4/wantMean {
		t.Errorf("Skew = %v, want %v", w.Skew, 4/wantMean)
	}
	// The legacy accessors are views of the same summary.
	if d.MaxEraseCount() != 4 || d.TotalEraseSpread() != 4 {
		t.Errorf("MaxEraseCount=%d TotalEraseSpread=%d", d.MaxEraseCount(), d.TotalEraseSpread())
	}
}

func TestEraseCounts(t *testing.T) {
	d := New(smallGeom(), LatenciesFor(SLC))
	var at sim.Time
	for i := 0; i < 3; i++ {
		var err error
		if at, err = d.EraseBlock(at, 2); err != nil {
			t.Fatal(err)
		}
	}
	counts := d.EraseCounts(nil)
	if len(counts) != 16 || counts[2] != 3 || counts[0] != 0 {
		t.Fatalf("counts = %v", counts)
	}
	// A caller-provided buffer with capacity is reused, not reallocated.
	buf := make([]uint32, 0, 32)
	counts = d.EraseCounts(buf)
	if &counts[0] != &buf[:1][0] {
		t.Error("EraseCounts did not reuse the provided buffer")
	}
	if counts[2] != 3 {
		t.Errorf("reused buffer counts[2] = %d", counts[2])
	}
}

// Endurance, ErrWornOut, and the wear summary share one per-block counter:
// a block worn to retirement is excluded from Min/Spread but keeps its
// erases in the totals.
func TestWearEnduranceOneSourceOfTruth(t *testing.T) {
	d := New(smallGeom(), LatenciesFor(SLC))
	d.Endurance = 2
	var at sim.Time
	var err error
	for i := 0; i < 2; i++ {
		if at, err = d.EraseBlock(at, 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err = d.EraseBlock(at, 0); !errors.Is(err, ErrWornOut) {
		t.Fatalf("third erase: %v, want ErrWornOut", err)
	}
	if !d.IsBad(0) {
		t.Fatal("worn block not retired")
	}
	w := d.Wear()
	if w.BadBlocks != 1 || w.TotalErases != 2 || w.MaxErase != 2 {
		t.Fatalf("wear after wear-out = %+v", w)
	}
	// Min/Spread cover only the 15 surviving blocks (all at 0).
	if w.MinErase != 0 || w.Spread != 0 {
		t.Errorf("MinErase=%d Spread=%d, want 0/0 over good blocks", w.MinErase, w.Spread)
	}
}

func TestWearHist(t *testing.T) {
	counts := []uint32{0, 0, 1, 15, 31}
	hist := wearHist(counts, 31)
	// width = 31/16+1 = 2: buckets [0,1]=3, [14,15]=1, [30,31]=1.
	if len(hist) != 3 {
		t.Fatalf("hist = %+v", hist)
	}
	if hist[0].Lo != 0 || hist[0].Hi != 1 || hist[0].Blocks != 3 {
		t.Errorf("hist[0] = %+v", hist[0])
	}
	if hist[2].Lo != 30 || hist[2].Hi != 31 || hist[2].Blocks != 1 {
		t.Errorf("hist[2] = %+v", hist[2])
	}
	total := 0
	for _, b := range hist {
		total += b.Blocks
	}
	if total != len(counts) {
		t.Errorf("hist covers %d blocks, want %d", total, len(counts))
	}
}

func TestHeatSectionShape(t *testing.T) {
	d := New(smallGeom(), LatenciesFor(SLC))
	var at sim.Time
	at, _ = d.EraseBlock(at, 3)
	h := d.heatSection(at)
	if h.Wear == nil || h.Wear.Blocks != 16 || h.Wear.MaxErase != 1 {
		t.Fatalf("wear section = %+v", h.Wear)
	}
	if len(h.Wear.Cells) != 16 || h.Wear.CellBlocks != 1 || h.Wear.Cells[3] != 1 {
		t.Fatalf("wear cells = %v stride %d", h.Wear.Cells, h.Wear.CellBlocks)
	}
	if len(h.Channels) != 2 || len(h.LUNs) != 4 {
		t.Fatalf("occupancy: %d channels %d luns", len(h.Channels), len(h.LUNs))
	}
	// The erased block's LUN was busy for the whole erase, so its occupancy
	// is positive and no occupancy exceeds 1.
	lun := d.Geom.LUNOfBlock(3)
	if h.LUNs[lun].BusyFrac <= 0 {
		t.Error("erase left no busy time on its LUN")
	}
	for _, u := range append(h.Channels, h.LUNs...) {
		if u.BusyFrac < 0 || u.BusyFrac > 1 {
			t.Errorf("unit %d busy_frac %v out of range", u.ID, u.BusyFrac)
		}
	}
}
