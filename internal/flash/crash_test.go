package flash

import (
	"errors"
	"testing"

	"blockhead/internal/fault"
	"blockhead/internal/sim"
)

// recoveryDev builds a small device with the recovery machinery armed.
func recoveryDev() *Device {
	d := New(smallGeom(), LatenciesFor(TLC))
	d.EnableRecovery()
	return d
}

// TestOOBRoundTrip: stamps survive programming and propagate through
// CopyPage, so relocation never forges fresher versions.
func TestOOBRoundTrip(t *testing.T) {
	d := recoveryDev()
	var at sim.Time
	for p := 0; p < 3; p++ {
		done, err := d.ProgramPage(at, 0, p)
		if err != nil {
			t.Fatal(err)
		}
		d.StampOOB(0, p, int64(100+p), uint64(7+p))
		at = done
	}
	for p := 0; p < 3; p++ {
		lpn, seq := d.OOB(0, p)
		if lpn != int64(100+p) || seq != uint64(7+p) {
			t.Fatalf("OOB(0,%d) = (%d,%d), want (%d,%d)", p, lpn, seq, 100+p, 7+p)
		}
	}
	if lpn, _ := d.OOB(0, 5); lpn != -1 {
		t.Fatalf("unwritten page OOB lpn = %d, want -1", lpn)
	}
	if _, err := d.CopyPage(at, 0, 1, 1, 0); err != nil {
		t.Fatal(err)
	}
	if lpn, seq := d.OOB(1, 0); lpn != 101 || seq != 8 {
		t.Fatalf("CopyPage dropped OOB: got (%d,%d), want (101,8)", lpn, seq)
	}
}

// TestCrashTruncation: a crash keeps exactly the programs that completed by
// the cut — the durable prefix — and reports the rest as lost, with
// fully-truncated blocks flagged torn.
func TestCrashTruncation(t *testing.T) {
	d := recoveryDev()
	var at sim.Time
	var dones []sim.Time
	for p := 0; p < 4; p++ {
		done, err := d.ProgramPage(at, 0, p)
		if err != nil {
			t.Fatal(err)
		}
		d.StampOOB(0, p, int64(p), uint64(p+1))
		dones = append(dones, done)
		at = done
	}
	// Block 1 gets one program that will be entirely lost.
	lateDone, err := d.ProgramPage(at, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	_ = lateDone

	cut := dones[1] // pages 0,1 of block 0 durable; 2,3 and block 1's page lost
	st := d.CrashAt(cut)
	if st.LostPages != 3 {
		t.Fatalf("LostPages = %d, want 3", st.LostPages)
	}
	if len(st.Torn) != 1 || st.Torn[0] != 1 {
		t.Fatalf("Torn = %v, want [1]", st.Torn)
	}
	if got := d.WrittenPages(0); got != 2 {
		t.Fatalf("block 0 written pages after crash = %d, want 2", got)
	}
	if _, err := d.ReadPage(cut, 0, 2); !errors.Is(err, ErrUnwritten) {
		t.Fatalf("read of lost page: err = %v, want ErrUnwritten", err)
	}
	if lpn, _ := d.OOB(0, 2); lpn != -1 {
		t.Fatalf("lost page kept its OOB stamp (lpn %d)", lpn)
	}
	// Survivors keep their stamps, and the truncated block keeps strict
	// sequential programming at the new frontier.
	if lpn, seq := d.OOB(0, 1); lpn != 1 || seq != 2 {
		t.Fatalf("survivor OOB = (%d,%d), want (1,2)", lpn, seq)
	}
	if _, err := d.ProgramPage(cut, 0, 3); !errors.Is(err, ErrNotSequential) {
		t.Fatalf("program past the post-crash frontier: err = %v, want ErrNotSequential", err)
	}
	if done, err := d.ProgramPage(cut, 0, 2); err != nil || done <= cut {
		t.Fatalf("program at the post-crash frontier failed: %v", err)
	}
}

// TestCrashRequiresRecovery: CrashAt without EnableRecovery is a harness
// bug, not a silent no-op.
func TestCrashRequiresRecovery(t *testing.T) {
	d := New(smallGeom(), LatenciesFor(TLC))
	defer func() {
		if recover() == nil {
			t.Fatal("CrashAt without EnableRecovery did not panic")
		}
	}()
	d.CrashAt(0)
}

// TestSealedBlock: sealing closes a torn write frontier — reads still work,
// further programs are refused until the block is erased.
func TestSealedBlock(t *testing.T) {
	d := recoveryDev()
	done, err := d.ProgramPage(0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	d.SealBlock(0)
	if !d.IsSealed(0) {
		t.Fatal("IsSealed = false after SealBlock")
	}
	if _, err := d.ReadPage(done, 0, 0); err != nil {
		t.Fatalf("read from sealed block failed: %v", err)
	}
	if _, err := d.ProgramPage(done, 0, 1); err == nil {
		t.Fatal("program into sealed block succeeded")
	}
	eDone, err := d.EraseBlock(done, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.IsSealed(0) {
		t.Fatal("erase did not unseal the block")
	}
	if _, err := d.ProgramPage(eDone, 0, 0); err != nil {
		t.Fatalf("program after unsealing erase failed: %v", err)
	}
}

// TestInjectedProgramFail: with a certain-failure profile the program
// hard-fails, the block is retired but stays readable (bad != unreadable —
// the §2.1 contract the upper layers rely on for evacuation).
func TestInjectedProgramFail(t *testing.T) {
	d := recoveryDev()
	done, err := d.ProgramPage(0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	d.StampOOB(0, 0, 42, 1)
	d.SetInjector(fault.New(fault.Profile{Name: "certain", ProgramFailBase: 1}, 1))
	if _, err := d.ProgramPage(done, 0, 1); !errors.Is(err, ErrProgramFailed) {
		t.Fatalf("err = %v, want ErrProgramFailed", err)
	}
	if !d.IsBad(0) {
		t.Fatal("failed program did not retire the block")
	}
	if _, err := d.ReadPage(done, 0, 0); err != nil {
		t.Fatalf("read from grown-bad block failed: %v", err)
	}
	if lpn, _ := d.OOB(0, 0); lpn != 42 {
		t.Fatalf("grown-bad block lost its OOB stamp (lpn %d)", lpn)
	}
	if _, err := d.ProgramPage(done, 0, 1); !errors.Is(err, ErrBadBlock) {
		t.Fatalf("program into bad block: err = %v, want ErrBadBlock", err)
	}
	if _, err := d.EraseBlock(done, 0); !errors.Is(err, ErrBadBlock) {
		t.Fatalf("erase of bad block: err = %v, want ErrBadBlock", err)
	}
}

// TestInjectedEraseFail: a failed erase retires the block too.
func TestInjectedEraseFail(t *testing.T) {
	d := recoveryDev()
	d.SetInjector(fault.New(fault.Profile{Name: "certain", EraseFailBase: 1}, 1))
	if _, err := d.EraseBlock(0, 0); !errors.Is(err, ErrEraseFailed) {
		t.Fatalf("err = %v, want ErrEraseFailed", err)
	}
	if !d.IsBad(0) {
		t.Fatal("failed erase did not retire the block")
	}
}

// TestInjectedReadRetry: transient read faults extend the sense time;
// exhausting the ladder is ErrUncorrectable.
func TestInjectedReadRetry(t *testing.T) {
	d := recoveryDev()
	done, err := d.ProgramPage(0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := d.ReadPage(done, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Certain transient failure with a retry budget: every read exhausts the
	// ladder, takes longer than a clean read, and reports uncorrectable.
	d.SetInjector(fault.New(fault.Profile{Name: "certain",
		ReadTransientProb: 1, ReadRetries: 4}, 1))
	slow, err := d.ReadPage(clean, 0, 0)
	if !errors.Is(err, ErrUncorrectable) {
		t.Fatalf("err = %v, want ErrUncorrectable", err)
	}
	if slow-clean <= clean-done {
		t.Fatalf("retry ladder did not extend the sense: clean=%d retried=%d",
			clean-done, slow-clean)
	}
}
