// Package zonefile exposes each zone of a ZNS device as a file, following
// the ZoneFS model the paper cites among the interface options applications
// must choose between (§4.1): "ZoneFS treats zones as files with the same
// restrictions as zones themselves". Files are append-only, readable at any
// byte offset below the write pointer, and truncatable only to zero (which
// resets the zone).
//
// This is the thinnest of the interface tiers — above raw zones, below a
// full POSIX filesystem — and the examples use it to show the usability /
// control trade §4.1 asks about.
package zonefile

import (
	"errors"
	"fmt"

	"blockhead/internal/sim"
	"blockhead/internal/zns"
)

// Errors returned by the filesystem.
var (
	ErrReadPastEOF  = errors.New("zonefile: read beyond end of file")
	ErrBadTruncate  = errors.New("zonefile: zones only truncate to zero")
	ErrFileFull     = errors.New("zonefile: zone capacity exhausted")
	ErrBadFileIndex = errors.New("zonefile: no such file")
)

// FS is a zones-as-files view of a ZNS device.
type FS struct {
	dev *zns.Device
	// sizes tracks logical byte lengths, which may not be page-aligned.
	sizes []int64
}

// New builds a filesystem over dev. Like ZoneFS, it has a fixed file count
// (one per zone) and no directories, metadata, or create/delete.
func New(dev *zns.Device) *FS {
	return &FS{dev: dev, sizes: make([]int64, dev.NumZones())}
}

// NumFiles reports the file count (== zone count).
func (fs *FS) NumFiles() int { return fs.dev.NumZones() }

// Open returns the file for zone i.
func (fs *FS) Open(i int) (*File, error) {
	if i < 0 || i >= fs.dev.NumZones() {
		return nil, ErrBadFileIndex
	}
	return &File{fs: fs, zone: i}, nil
}

// File is one zone viewed as an append-only file.
type File struct {
	fs   *FS
	zone int
}

// Zone reports the underlying zone index.
func (f *File) Zone() int { return f.zone }

// Size reports the file's logical length in bytes.
func (f *File) Size() int64 { return f.fs.sizes[f.zone] }

// MaxSize reports the file's maximum length (the zone's writable capacity).
func (f *File) MaxSize() int64 {
	return f.fs.dev.WritableCap(f.zone) * int64(f.fs.dev.PageSize())
}

// Append writes data at the end of the file and returns the new size.
// Data is chunked into pages; the final partial page occupies a full flash
// page (the internal-fragmentation cost of the zone abstraction).
func (f *File) Append(at sim.Time, data []byte) (newSize int64, done sim.Time, err error) {
	ps := int64(f.fs.dev.PageSize())
	size := f.fs.sizes[f.zone]
	if size%ps != 0 {
		// The previous append ended mid-page; that page is already
		// programmed and flash cannot rewrite it. Like ZoneFS, we only
		// support block-aligned continuation: round the file up first.
		size = (size/ps + 1) * ps
	}
	needPages := (int64(len(data)) + ps - 1) / ps
	if size/ps+needPages > f.fs.dev.WritableCap(f.zone) {
		return f.fs.sizes[f.zone], at, ErrFileFull
	}
	done = at
	for p := int64(0); p < needPages; p++ {
		lo := p * ps
		hi := lo + ps
		if hi > int64(len(data)) {
			hi = int64(len(data))
		}
		_, d, err := f.fs.dev.Append(at, f.zone, data[lo:hi])
		if err != nil {
			return f.fs.sizes[f.zone], at, err
		}
		done = sim.Max(done, d)
	}
	f.fs.sizes[f.zone] = size + int64(len(data))
	return f.fs.sizes[f.zone], done, nil
}

// ReadAt reads len(buf) bytes at byte offset off. Short reads are errors,
// matching the strictness of the zone interface.
func (f *File) ReadAt(at sim.Time, buf []byte, off int64) (done sim.Time, err error) {
	if off < 0 || off+int64(len(buf)) > f.fs.sizes[f.zone] {
		return at, ErrReadPastEOF
	}
	ps := int64(f.fs.dev.PageSize())
	done = at
	for pos := int64(0); pos < int64(len(buf)); {
		page := (off + pos) / ps
		inPage := (off + pos) % ps
		d, data, err := f.fs.dev.Read(at, f.fs.dev.LBA(f.zone, page))
		if err != nil {
			return at, fmt.Errorf("zonefile: read page %d: %w", page, err)
		}
		n := copy(buf[pos:], padTo(data, int(ps))[inPage:])
		pos += int64(n)
		done = sim.Max(done, d)
	}
	return done, nil
}

// Truncate shrinks the file. Only size 0 is supported (zone reset), per
// the ZoneFS rule.
func (f *File) Truncate(at sim.Time, size int64) (sim.Time, error) {
	if size != 0 {
		return at, ErrBadTruncate
	}
	done, err := f.fs.dev.Reset(at, f.zone)
	if err != nil {
		return at, err
	}
	f.fs.sizes[f.zone] = 0
	return done, nil
}

// padTo right-pads data with zeros to n bytes (pages written through other
// interfaces, or with nil payloads, read back as zeros).
func padTo(data []byte, n int) []byte {
	if len(data) >= n {
		return data[:n]
	}
	out := make([]byte, n)
	copy(out, data)
	return out
}
