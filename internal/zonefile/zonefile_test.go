package zonefile

import (
	"bytes"
	"errors"
	"testing"

	"blockhead/internal/flash"
	"blockhead/internal/sim"
	"blockhead/internal/zns"
)

func testFS(t *testing.T) *FS {
	t.Helper()
	dev, err := zns.New(zns.Config{
		Geom: flash.Geometry{Channels: 2, DiesPerChan: 1, PlanesPerDie: 1,
			BlocksPerLUN: 4, PagesPerBlock: 8, PageSize: 64},
		Lat:        flash.LatenciesFor(flash.TLC),
		ZoneBlocks: 2, // 4 zones of 16 pages, 64-byte pages
		StoreData:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return New(dev)
}

func TestOpenBounds(t *testing.T) {
	fs := testFS(t)
	if fs.NumFiles() != 4 {
		t.Errorf("NumFiles = %d", fs.NumFiles())
	}
	if _, err := fs.Open(-1); !errors.Is(err, ErrBadFileIndex) {
		t.Error("negative index accepted")
	}
	if _, err := fs.Open(4); !errors.Is(err, ErrBadFileIndex) {
		t.Error("out-of-range index accepted")
	}
	f, err := fs.Open(2)
	if err != nil || f.Zone() != 2 {
		t.Errorf("Open(2): %v zone=%d", err, f.Zone())
	}
}

func TestAppendRead(t *testing.T) {
	fs := testFS(t)
	f, _ := fs.Open(0)
	msg := []byte("the quick brown fox jumps over the lazy dog")
	size, at, err := f.Append(0, msg)
	if err != nil {
		t.Fatal(err)
	}
	if size != int64(len(msg)) {
		t.Errorf("size = %d, want %d", size, len(msg))
	}
	buf := make([]byte, len(msg))
	if _, err := f.ReadAt(at, buf, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, msg) {
		t.Errorf("round trip: %q", buf)
	}
	// Sub-range read at an unaligned offset.
	part := make([]byte, 9)
	if _, err := f.ReadAt(at, part, 4); err != nil {
		t.Fatal(err)
	}
	if string(part) != "quick bro" {
		t.Errorf("partial read: %q", part)
	}
}

func TestReadPastEOF(t *testing.T) {
	fs := testFS(t)
	f, _ := fs.Open(0)
	f.Append(0, []byte("abc"))
	buf := make([]byte, 4)
	if _, err := f.ReadAt(0, buf, 0); !errors.Is(err, ErrReadPastEOF) {
		t.Errorf("read past EOF: %v", err)
	}
	if _, err := f.ReadAt(0, buf[:1], -1); !errors.Is(err, ErrReadPastEOF) {
		t.Errorf("negative offset: %v", err)
	}
}

func TestAppendSpansPages(t *testing.T) {
	fs := testFS(t)
	f, _ := fs.Open(1)
	big := bytes.Repeat([]byte("x"), 200) // > 3 pages of 64B
	_, at, err := f.Append(0, big)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 200)
	if _, err := f.ReadAt(at, buf, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, big) {
		t.Error("multi-page round trip failed")
	}
}

func TestUnalignedAppendRoundsUp(t *testing.T) {
	fs := testFS(t)
	f, _ := fs.Open(0)
	f.Append(0, []byte("abc"))
	size, at, err := f.Append(0, []byte("def"))
	if err != nil {
		t.Fatal(err)
	}
	// Second append starts on a fresh page: logical size = 64 + 3.
	if size != 67 {
		t.Errorf("size after unaligned appends = %d, want 67", size)
	}
	buf := make([]byte, 3)
	if _, err := f.ReadAt(at, buf, 64); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "def" {
		t.Errorf("second append content: %q", buf)
	}
}

func TestFileFull(t *testing.T) {
	fs := testFS(t)
	f, _ := fs.Open(0)
	if f.MaxSize() != 16*64 {
		t.Errorf("MaxSize = %d", f.MaxSize())
	}
	full := bytes.Repeat([]byte("y"), int(f.MaxSize()))
	if _, _, err := f.Append(0, full); err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.Append(0, []byte("z")); !errors.Is(err, ErrFileFull) {
		t.Errorf("append to full file: %v", err)
	}
}

func TestTruncate(t *testing.T) {
	fs := testFS(t)
	f, _ := fs.Open(0)
	_, at, _ := f.Append(0, []byte("data"))
	if _, err := f.Truncate(at, 2); !errors.Is(err, ErrBadTruncate) {
		t.Errorf("partial truncate: %v", err)
	}
	done, err := f.Truncate(at, 0)
	if err != nil {
		t.Fatal(err)
	}
	if f.Size() != 0 {
		t.Errorf("size after truncate = %d", f.Size())
	}
	// The zone is writable again from the start.
	if _, _, err := f.Append(done, []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	f.ReadAt(done, buf, 0)
	if string(buf) != "fresh" {
		t.Errorf("content after truncate+append: %q", buf)
	}
}

func TestPadTo(t *testing.T) {
	if got := padTo([]byte("ab"), 4); !bytes.Equal(got, []byte{'a', 'b', 0, 0}) {
		t.Errorf("padTo short = %v", got)
	}
	if got := padTo([]byte("abcd"), 2); !bytes.Equal(got, []byte("ab")) {
		t.Errorf("padTo long = %v", got)
	}
}

func TestTimingAdvances(t *testing.T) {
	fs := testFS(t)
	f, _ := fs.Open(0)
	_, done, err := f.Append(100, []byte("t"))
	if err != nil {
		t.Fatal(err)
	}
	if done <= 100 {
		t.Error("append must consume device time")
	}
	rdone, err := f.ReadAt(done, make([]byte, 1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if rdone <= done {
		t.Error("read must consume device time")
	}
	_ = sim.Time(0)
}
