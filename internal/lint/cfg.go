// A small hand-rolled path engine over the AST — the CFG substrate under the
// pairing rule (the build is offline; x/tools/go/cfg is unavailable). Rather
// than materializing basic blocks, the engine abstractly interprets Go's
// structured control flow directly: a statement maps a set of abstract
// bracket states to the set of states after it, loops run to a fixpoint over
// the (finite, small) state space, and return statements hand their states
// to an exit check. goto is not modeled — a function containing one is
// skipped, silently (none exist in sim-core).

package lint

import (
	"go/ast"
	"go/token"
)

// pstate is the abstract bracket state along one path: open-counter depths
// plus the closer effects registered by defer statements (applied at exit).
// The struct is comparable, so state sets dedupe via map keys and loop
// fixpoints terminate.
type pstate struct {
	begin, susp, work   int8 // open Begin/Suspend/PushWorker depths
	closed              bool // an End/Drop has executed (for charge-after-End)
	dEnd, dResume, dPop int8 // deferred End/Resume/PopWorker counts
}

// opKind classifies one call's effect on the bracket state.
type opKind int

const (
	opNone opKind = iota
	opBegin
	opEnd
	opSuspend
	opResume
	opPush
	opPop
	opCharge
	opTerminate // panic / os.Exit / log.Fatal: the path never returns
)

// stateCap bounds the per-function state-set size; past it the function is
// too gnarly for the path analysis and is skipped rather than half-checked.
const stateCap = 64

// pengine interprets one function body. Findings buffer until the end so a
// late bail (goto, state explosion) suppresses everything.
type pengine struct {
	pkg         *Package
	classify    func(*ast.CallExpr) opKind
	checkCharge bool // the body contains Begin: charges must be inside it
	bail        bool
	pending     []pendingFinding
}

type pendingFinding struct {
	pos token.Pos
	msg string
}

func (e *pengine) report(pos token.Pos, msg string) {
	e.pending = append(e.pending, pendingFinding{pos, msg})
}

func (e *pengine) flush(r *reporter) {
	if e.bail {
		return
	}
	for _, f := range e.pending {
		r.findf(f.pos, "pairing", "%s", f.msg)
	}
}

// frame is one enclosing breakable construct (loop/switch/select) during
// interpretation; break and continue deposit their states here.
type frame struct {
	up        *frame
	label     string
	isLoop    bool
	breaks    []pstate
	continues []pstate
}

func (f *frame) findBreak(label string) *frame {
	for fr := f; fr != nil; fr = fr.up {
		if label == "" || fr.label == label {
			return fr
		}
	}
	return nil
}

func (f *frame) findContinue(label string) *frame {
	for fr := f; fr != nil; fr = fr.up {
		if fr.isLoop && (label == "" || fr.label == label) {
			return fr
		}
	}
	return nil
}

func mergeStates(sets ...[]pstate) []pstate {
	seen := make(map[pstate]bool)
	var out []pstate
	for _, set := range sets {
		for _, st := range set {
			if !seen[st] {
				seen[st] = true
				out = append(out, st)
			}
		}
	}
	return out
}

// run interprets the body from a single empty state and returns the
// fall-off-the-end states (return paths were checked along the way).
func (e *pengine) run(body *ast.BlockStmt) []pstate {
	return e.exec(body, []pstate{{}}, nil, "")
}

// exec maps the states entering stmt to the states falling through it.
func (e *pengine) exec(stmt ast.Stmt, in []pstate, fr *frame, label string) []pstate {
	if e.bail || len(in) == 0 || stmt == nil {
		return in
	}
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		for _, st := range s.List {
			in = e.exec(st, in, fr, "")
			if e.bail || len(in) == 0 {
				return in
			}
		}
		return in

	case *ast.LabeledStmt:
		return e.exec(s.Stmt, in, fr, s.Label.Name)

	case *ast.ExprStmt:
		return e.eval(s.X, in)

	case *ast.AssignStmt:
		for _, x := range s.Rhs {
			in = e.eval(x, in)
		}
		for _, x := range s.Lhs {
			in = e.eval(x, in)
		}
		return in

	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, x := range vs.Values {
						in = e.eval(x, in)
					}
				}
			}
		}
		return in

	case *ast.IncDecStmt:
		return e.eval(s.X, in)

	case *ast.SendStmt:
		in = e.eval(s.Value, in)
		return e.eval(s.Chan, in)

	case *ast.GoStmt:
		return e.eval(s.Call, in)

	case *ast.DeferStmt:
		return e.deferCall(s.Call, in)

	case *ast.ReturnStmt:
		for _, x := range s.Results {
			in = e.eval(x, in)
		}
		e.checkExit(s.Pos(), in)
		return nil

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			lbl := ""
			if s.Label != nil {
				lbl = s.Label.Name
			}
			if target := fr.findBreak(lbl); target != nil {
				target.breaks = mergeStates(target.breaks, in)
			}
			return nil
		case token.CONTINUE:
			lbl := ""
			if s.Label != nil {
				lbl = s.Label.Name
			}
			if target := fr.findContinue(lbl); target != nil {
				target.continues = mergeStates(target.continues, in)
			}
			return nil
		case token.GOTO:
			e.bail = true
			return nil
		}
		return in // fallthrough: handled by the switch interpreter

	case *ast.IfStmt:
		in = e.exec(s.Init, in, fr, "")
		in = e.eval(s.Cond, in)
		thenOut := e.exec(s.Body, in, fr, "")
		elseOut := in
		if s.Else != nil {
			elseOut = e.exec(s.Else, in, fr, "")
		}
		return mergeStates(thenOut, elseOut)

	case *ast.ForStmt:
		in = e.exec(s.Init, in, fr, "")
		return e.loop(in, fr, label, s.Cond == nil, func(cur []pstate, myfr *frame) []pstate {
			cur = e.eval(s.Cond, cur)
			cur = e.exec(s.Body, cur, myfr, "")
			cur = mergeStates(cur, myfr.continues)
			myfr.continues = nil
			return e.exec(s.Post, cur, fr, "")
		})

	case *ast.RangeStmt:
		in = e.eval(s.X, in)
		return e.loop(in, fr, label, false, func(cur []pstate, myfr *frame) []pstate {
			cur = e.exec(s.Body, cur, myfr, "")
			cur = mergeStates(cur, myfr.continues)
			myfr.continues = nil
			return cur
		})

	case *ast.SwitchStmt:
		in = e.exec(s.Init, in, fr, "")
		in = e.eval(s.Tag, in)
		return e.switchBody(s.Body, in, fr, label, nil)

	case *ast.TypeSwitchStmt:
		in = e.exec(s.Init, in, fr, "")
		return e.switchBody(s.Body, in, fr, label, s.Assign)

	case *ast.SelectStmt:
		myfr := &frame{up: fr, label: label}
		var outs [][]pstate
		hasDefault := false
		for _, cl := range s.Body.List {
			cc, ok := cl.(*ast.CommClause)
			if !ok {
				continue
			}
			if cc.Comm == nil {
				hasDefault = true
			}
			cur := e.exec(cc.Comm, in, myfr, "")
			for _, st := range cc.Body {
				cur = e.exec(st, cur, myfr, "")
			}
			outs = append(outs, cur)
		}
		if !hasDefault && len(s.Body.List) == 0 {
			outs = append(outs, in)
		}
		outs = append(outs, myfr.breaks)
		return mergeStates(outs...)

	default:
		return in
	}
}

// loop runs body() to a fixpoint over the states reaching the loop head.
// infinite means there is no condition: the only exits are breaks.
func (e *pengine) loop(in []pstate, fr *frame, label string, infinite bool, body func([]pstate, *frame) []pstate) []pstate {
	myfr := &frame{up: fr, label: label, isLoop: true}
	seen := make(map[pstate]bool)
	var head []pstate
	for _, st := range in {
		if !seen[st] {
			seen[st] = true
			head = append(head, st)
		}
	}
	work := head
	for len(work) > 0 && !e.bail {
		out := body(work, myfr)
		work = nil
		for _, st := range out {
			if !seen[st] {
				seen[st] = true
				head = append(head, st)
				work = append(work, st)
			}
		}
		if len(seen) > stateCap {
			e.bail = true
		}
	}
	if infinite {
		return mergeStates(myfr.breaks)
	}
	return mergeStates(head, myfr.breaks)
}

// switchBody interprets expression/type switch clauses: each clause runs
// from the entry states; fallthrough chains into the next clause; without a
// default the whole switch may be skipped.
func (e *pengine) switchBody(body *ast.BlockStmt, in []pstate, fr *frame, label string, assign ast.Stmt) []pstate {
	myfr := &frame{up: fr, label: label}
	var outs [][]pstate
	hasDefault := false
	var carry []pstate // fallthrough states from the previous clause
	for _, cl := range body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		cur := in
		for _, x := range cc.List {
			cur = e.eval(x, cur)
		}
		cur = e.exec(assign, cur, myfr, "")
		cur = mergeStates(cur, carry)
		carry = nil
		stmts := cc.Body
		fallsThrough := false
		if n := len(stmts); n > 0 {
			if br, ok := stmts[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = true
				stmts = stmts[:n-1]
			}
		}
		for _, st := range stmts {
			cur = e.exec(st, cur, myfr, "")
		}
		if fallsThrough {
			carry = cur
		} else {
			outs = append(outs, cur)
		}
	}
	if !hasDefault {
		outs = append(outs, in)
	}
	outs = append(outs, myfr.breaks)
	return mergeStates(outs...)
}

// eval walks an expression in evaluation order, applying every call's op to
// the state set. Nested function literals are NOT entered — they run at some
// other time and are analyzed as functions in their own right.
func (e *pengine) eval(x ast.Expr, in []pstate) []pstate {
	if x == nil || e.bail || len(in) == 0 {
		return in
	}
	switch x := x.(type) {
	case *ast.CallExpr:
		if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
			in = e.eval(sel.X, in)
		}
		for _, a := range x.Args {
			in = e.eval(a, in)
		}
		return e.applyOp(e.classify(x), x.Pos(), in)
	case *ast.ParenExpr:
		return e.eval(x.X, in)
	case *ast.SelectorExpr:
		return e.eval(x.X, in)
	case *ast.StarExpr:
		return e.eval(x.X, in)
	case *ast.UnaryExpr:
		return e.eval(x.X, in)
	case *ast.BinaryExpr:
		in = e.eval(x.X, in)
		return e.eval(x.Y, in)
	case *ast.IndexExpr:
		in = e.eval(x.X, in)
		return e.eval(x.Index, in)
	case *ast.SliceExpr:
		in = e.eval(x.X, in)
		in = e.eval(x.Low, in)
		in = e.eval(x.High, in)
		return e.eval(x.Max, in)
	case *ast.TypeAssertExpr:
		return e.eval(x.X, in)
	case *ast.KeyValueExpr:
		return e.eval(x.Value, in)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			in = e.eval(el, in)
		}
		return in
	case *ast.FuncLit:
		return in // not entered
	}
	return in
}

// applyOp transitions every state through one bracket op, reporting the
// protocol violations that are local to the op itself.
func (e *pengine) applyOp(op opKind, pos token.Pos, in []pstate) []pstate {
	switch op {
	case opNone:
		return in
	case opTerminate:
		return nil
	}
	out := make([]pstate, 0, len(in))
	for _, st := range in {
		switch op {
		case opBegin:
			if st.begin > 0 {
				e.report(pos, "nested AttrSink Begin — close the open bracket with End/Drop first")
			}
			st.begin++
			st.closed = false
		case opEnd:
			if st.begin == 0 {
				e.report(pos, "AttrSink End/Drop without an open Begin on this path")
			} else {
				st.begin--
				if st.begin == 0 {
					st.closed = true
				}
			}
		case opSuspend:
			st.susp++
		case opResume:
			if st.susp == 0 {
				e.report(pos, "AttrSink Resume without a matching Suspend on this path")
			} else {
				st.susp--
			}
		case opPush:
			st.work++
		case opPop:
			if st.work == 0 {
				e.report(pos, "AttrSink PopWorker without a matching PushWorker on this path")
			} else {
				st.work--
			}
		case opCharge:
			if e.checkCharge && st.begin == 0 {
				if st.closed {
					e.report(pos, "AttrSink charge after the bracket was closed with End/Drop")
				} else {
					e.report(pos, "AttrSink charge before Begin opened the bracket on this path")
				}
			}
		}
		out = append(out, st)
	}
	return mergeStates(out)
}

// deferCall registers a defer statement's closer effects to be applied at
// every exit. Openers inside a defer put the function beyond this analysis.
func (e *pengine) deferCall(call *ast.CallExpr, in []pstate) []pstate {
	for _, a := range call.Args {
		in = e.eval(a, in)
	}
	var dEnd, dResume, dPop int8
	addOp := func(op opKind) {
		switch op {
		case opEnd:
			dEnd++
		case opResume:
			dResume++
		case opPop:
			dPop++
		case opBegin, opSuspend, opPush, opCharge:
			e.bail = true
		}
	}
	if fl, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		// A deferred closure: count every op call in its body. Conditional
		// closers inside it over-count — acceptably conservative, and the
		// module's deferred closers are unconditional.
		ast.Inspect(fl.Body, func(nd ast.Node) bool {
			if _, isLit := nd.(*ast.FuncLit); isLit && nd != ast.Node(fl) {
				return false
			}
			if c, ok := nd.(*ast.CallExpr); ok {
				addOp(e.classify(c))
			}
			return true
		})
	} else {
		addOp(e.classify(call))
	}
	if dEnd == 0 && dResume == 0 && dPop == 0 {
		return in
	}
	out := make([]pstate, 0, len(in))
	for _, st := range in {
		st.dEnd += dEnd
		st.dResume += dResume
		st.dPop += dPop
		out = append(out, st)
	}
	return mergeStates(out)
}

// checkExit verifies one exit point: with deferred closers applied, every
// opener must be balanced.
func (e *pengine) checkExit(pos token.Pos, states []pstate) {
	for _, st := range states {
		switch eb := int(st.begin) - int(st.dEnd); {
		case eb > 0:
			e.report(pos, "AttrSink Begin does not reach End/Drop on this path")
		case eb < 0:
			e.report(pos, "deferred AttrSink End/Drop without a matching Begin on this path")
		}
		switch es := int(st.susp) - int(st.dResume); {
		case es > 0:
			e.report(pos, "AttrSink Suspend is not balanced by Resume on this path")
		case es < 0:
			e.report(pos, "deferred AttrSink Resume without a matching Suspend on this path")
		}
		switch ew := int(st.work) - int(st.dPop); {
		case ew > 0:
			e.report(pos, "AttrSink PushWorker is not balanced by PopWorker on this path")
		case ew < 0:
			e.report(pos, "deferred AttrSink PopWorker without a matching PushWorker on this path")
		}
	}
}
