// The affinity report: the human-reviewed carve-out contract between
// today's single-threaded sim core and the planned channel-sharded parallel
// scheduler (ROADMAP). simlint -affinity renders the shardcheck
// classification of every piece of mutable state the loaded packages touch,
// so the scheduler PR can cite exactly which state is shard-local and which
// carve-outs (//simlint:shared) it must merge at barriers. The output is
// deterministic: two runs over the same tree are byte-identical.

package lint

import (
	"fmt"
	"sort"
	"strings"
)

// AffinityReport runs the full rule suite over pkgs and renders the state
// affinity classification.
func AffinityReport(pkgs []*Package) string {
	findings, res := checkAll(pkgs)
	crossShard := 0
	for _, f := range findings {
		if f.Rule == "shardcheck" {
			crossShard++
		}
	}

	var b strings.Builder
	b.WriteString("# simlint affinity report\n")
	var paths []string
	for _, p := range pkgs {
		paths = append(paths, p.Path)
	}
	sort.Strings(paths)
	fmt.Fprintf(&b, "# packages: %s\n", strings.Join(paths, " "))
	b.WriteString("# contract: per-chan/per-lun/per-block/config state is safe to touch from a\n")
	b.WriteString("# per-LUN code path under channel sharding; shared state carries a reviewed\n")
	b.WriteString("# //simlint:shared reason and must be merged at barriers; global state blocks\n")
	b.WriteString("# the parallel scheduler until it is keyed or carved out.\n")

	fmt.Fprintf(&b, "\n## per-LUN context functions (%d)\n", len(res.contexts))
	for _, k := range res.contexts {
		fmt.Fprintf(&b, "  %s\n", k)
	}

	refs := make([]stateRef, 0, len(res.classes))
	for r := range res.classes {
		refs = append(refs, r)
	}
	sort.Slice(refs, func(i, j int) bool { return refLess(refs[i], refs[j]) })
	fmt.Fprintf(&b, "\n## state affinity (%d refs)\n", len(refs))
	wide := 0
	for _, r := range refs {
		if n := len(r.String()); n > wide {
			wide = n
		}
	}
	for _, r := range refs {
		fmt.Fprintf(&b, "  %-9s %-*s %s\n", res.classes[r], wide, r, affinityNote(res, r))
	}

	counts := map[affinity]int{}
	for _, c := range res.classes {
		counts[c]++
	}
	b.WriteString("\n## summary\n")
	for _, c := range []affinity{affConfig, affInstance, affPerZone, affPerChan, affPerLUN, affPerBlock, affShared, affGlobal} {
		fmt.Fprintf(&b, "  %-9s %d\n", c, counts[c])
	}
	fmt.Fprintf(&b, "  unannotated cross-shard writes: %d\n", crossShard)
	return b.String()
}

func refLess(a, b stateRef) bool {
	if a.pkg != b.pkg {
		return a.pkg < b.pkg
	}
	if a.typ != b.typ {
		return a.typ < b.typ
	}
	return a.field < b.field
}

// affinityNote explains one row: the observed shard keys, the carve-out
// reason, or the write shape that forced the class.
func affinityNote(res *shardResult, r stateRef) string {
	if res.classes[r] == affShared {
		reason := res.reasons[r]
		if reason == "" {
			reason = "(missing)"
		}
		return "reason: " + reason
	}
	var keys []string
	for _, k := range []keyClass{keyBlock, keyLUN, keyChan, keyZone, keyRange} {
		if res.evidence[r][k] {
			keys = append(keys, k.String())
		}
	}
	if res.evidence[r][keyNone] {
		keys = append(keys, "unkeyed")
	}
	if len(keys) > 0 {
		return "keys: " + strings.Join(keys, ",")
	}
	switch res.whole[r] {
	case rootRecv:
		return "whole-object writes via owner"
	case rootGlobal:
		return "package-var writes"
	case rootPointee:
		return "writes through a shared pointer"
	}
	return "no writes outside setup"
}
