// Module call graph and per-function write summaries — the interprocedural
// substrate under the shardcheck rule. Cross-package function and field
// identity is symbolic (package path + type name + member name) because the
// loader type-checks each package against export data, so the same function
// seen from two packages is two distinct *types.Func objects.

package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// funcKey names one module function symbolically: package path, receiver
// type name ("" for free functions), function name.
type funcKey struct {
	pkg  string
	recv string
	name string
}

func (k funcKey) String() string {
	if k.recv != "" {
		return k.pkg + ".(*" + k.recv + ")." + k.name
	}
	return k.pkg + "." + k.name
}

// stateRef names one piece of module state symbolically: a struct field
// (pkg, typ, field) or, with typ == "", the package-level var `field`.
type stateRef struct {
	pkg   string
	typ   string
	field string
}

func (s stateRef) String() string {
	if s.typ == "" {
		return shortPkg(s.pkg) + "." + s.field
	}
	return shortPkg(s.pkg) + "." + s.typ + "." + s.field
}

// shortPkg trims the module prefix for findings: "blockhead/internal/flash"
// reads better as "flash".
func shortPkg(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

// summary is one function's write effects as seen by its callers, computed
// to a fixpoint over the call graph. The bool is "every write is indexed by
// a shard key" — true means the effect is shard-local whenever the object
// itself is.
type summary struct {
	// recv: receiver field name -> all writes to it shard-keyed.
	recv map[string]bool
	// globals: state beyond the receiver (package vars, fields reached
	// through pointer fields, cross-shard elements) -> all writes keyed.
	globals map[stateRef]bool
}

func newSummary() *summary {
	return &summary{recv: map[string]bool{}, globals: map[stateRef]bool{}}
}

func (s *summary) addRecv(field string, keyed bool) bool {
	old, ok := s.recv[field]
	if !ok {
		s.recv[field] = keyed
		return true
	}
	if old && !keyed {
		s.recv[field] = false
		return true
	}
	return false
}

func (s *summary) addGlobal(ref stateRef, keyed bool) bool {
	old, ok := s.globals[ref]
	if !ok {
		s.globals[ref] = keyed
		return true
	}
	if old && !keyed {
		s.globals[ref] = false
		return true
	}
	return false
}

// funcNode is one module function: its declaration, package, and summary.
type funcNode struct {
	key  funcKey
	pkg  *Package
	decl *ast.FuncDecl
	fn   *types.Func
	scan *fnScan
	sum  *summary
}

// module indexes every function declared in the loaded packages.
type module struct {
	pkgs  []*Package
	funcs map[funcKey]*funcNode
	order []funcKey // sorted, for deterministic fixpoint iteration
}

func buildModule(pkgs []*Package) *module {
	m := &module{pkgs: pkgs, funcs: map[funcKey]*funcNode{}}
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := p.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				k, ok := keyOfFunc(obj)
				if !ok {
					continue
				}
				m.funcs[k] = &funcNode{key: k, pkg: p, decl: fd, fn: obj, sum: newSummary()}
			}
		}
	}
	for k := range m.funcs {
		m.order = append(m.order, k)
	}
	sort.Slice(m.order, func(i, j int) bool {
		a, b := m.order[i], m.order[j]
		if a.pkg != b.pkg {
			return a.pkg < b.pkg
		}
		if a.recv != b.recv {
			return a.recv < b.recv
		}
		return a.name < b.name
	})
	return m
}

// keyOfFunc builds the symbolic key for a (possibly imported) function.
// Interface methods have no analyzable body and resolve to no key.
func keyOfFunc(fn *types.Func) (funcKey, bool) {
	if fn.Pkg() == nil {
		return funcKey{}, false
	}
	k := funcKey{pkg: fn.Pkg().Path(), name: fn.Name()}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return funcKey{}, false
	}
	if r := sig.Recv(); r != nil {
		n := namedOf(r.Type())
		if n == nil || n.Obj().Pkg() == nil {
			return funcKey{}, false
		}
		if _, isIface := n.Underlying().(*types.Interface); isIface {
			return funcKey{}, false
		}
		k.recv = n.Obj().Name()
		k.pkg = n.Obj().Pkg().Path()
	}
	return k, true
}

// namedOf unwraps pointers to the underlying named type, or nil.
func namedOf(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

// calleeOf resolves a call expression's static callee; nil for builtins,
// conversions, function values, and dynamic (interface) calls.
func calleeOf(p *Package, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := p.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := p.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// computeSummaries runs the write-effect fixpoint: each function's summary
// folds in its direct writes and the current summaries of its callees, until
// nothing changes. All merges are monotone (sets grow, keyed-flags only
// decay true->false), so the iteration terminates.
func computeSummaries(m *module) {
	for _, k := range m.order {
		n := m.funcs[k]
		n.scan = scanFunc(n)
	}
	for changed := true; changed; {
		changed = false
		for _, k := range m.order {
			if m.resummarize(m.funcs[k]) {
				changed = true
			}
		}
	}
}

// resummarize folds n's scan plus current callee summaries into n.sum,
// reporting whether the summary grew.
func (m *module) resummarize(n *funcNode) bool {
	changed := false
	for _, w := range n.scan.writes {
		switch w.root {
		case rootRecv:
			if n.sum.addRecv(w.ref.field, w.keyedSafe()) {
				changed = true
			}
		case rootGlobal, rootPointee:
			if n.sum.addGlobal(w.ref, w.keyedSafe()) {
				changed = true
			}
		}
	}
	for _, c := range n.scan.calls {
		callee, ok := m.funcs[c.callee]
		if !ok {
			continue // out-of-module: stdlib or unloaded package
		}
		// The callee's global effects happen regardless of the receiver.
		for ref, keyed := range callee.sum.globals {
			if n.sum.addGlobal(ref, keyed) {
				changed = true
			}
		}
		switch c.shape {
		case recvIsCallerRecv:
			for f, keyed := range callee.sum.recv {
				if n.sum.addRecv(f, keyed) {
					changed = true
				}
			}
		case recvIsShardElem:
			// The receiver is one shard's element (d.luns[lun]); every
			// receiver-side write stays inside the shard.
		case recvIsCrossElem:
			// The receiver is an element reached without a shard key: its
			// writes escape the shard via the container field.
			if len(callee.sum.recv) > 0 {
				if n.sum.addGlobal(c.elem, false) {
					changed = true
				}
			}
		case recvIsFieldPtr:
			// The receiver is an object shared through a pointer field
			// (d.attr): the callee's receiver writes land on the callee's
			// receiver type, reached from outside the shard key space.
			for f, keyed := range callee.sum.recv {
				if n.sum.addGlobal(stateRef{pkg: c.callee.pkg, typ: c.callee.recv, field: f}, keyed) {
					changed = true
				}
			}
		}
	}
	return changed
}
