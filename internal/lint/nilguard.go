package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// checkNilGuard enforces the telemetry no-op contract: a nil instrument
// handle is "telemetry off", so device hot paths call it unconditionally and
// the disabled path stays at 0 allocs/op. Every exported pointer-receiver
// method on a contracted type must therefore establish nil-safety as its
// first action, in one of three forms:
//
//  1. a leading guard statement:        if recv == nil { ... return }
//  2. a guarded expression return:      return recv != nil && ...
//  3. pure delegation — a single statement whose call chain starts at the
//     receiver and passes only through exported pointer-receiver methods of
//     contracted types (each of which is itself checked), e.g.
//     func (c *Counter) Inc() { c.Add(1) }
//
// Contracted types are the exported types of internal/telemetry plus any
// type carrying a //simlint:nilsafe directive (the zns zone-state auditor).
func checkNilGuard(p *Package, rep *reporter) {
	telemetryPkg := strings.HasSuffix(p.Path, "internal/telemetry")
	markers := markerTypes(p)
	if !telemetryPkg && len(markers) == 0 {
		return
	}
	contracted := func(tn *types.TypeName) bool {
		if markers[tn] {
			return true
		}
		return telemetryPkg && tn.Pkg() == p.Types && tn.Exported()
	}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) != 1 || fd.Body == nil {
				continue
			}
			if !ast.IsExported(fd.Name.Name) {
				continue
			}
			names := fd.Recv.List[0].Names
			if len(names) == 0 || names[0].Name == "_" {
				continue // no receiver name means no way to dereference it
			}
			recvObj := p.Info.Defs[names[0]]
			if recvObj == nil {
				continue
			}
			ptr, ok := recvObj.Type().(*types.Pointer)
			if !ok {
				continue // value receivers cannot be nil
			}
			named, ok := ptr.Elem().(*types.Named)
			if !ok || !contracted(named.Obj()) {
				continue
			}
			if guardOK(p, fd.Body, recvObj, markers) {
				continue
			}
			rep.findf(fd.Name.Pos(), "nilguard",
				"exported method (*%s).%s must start with a nil-receiver guard (`if %s == nil { ... return }`); the nil instrument is the disabled no-op path pinned at 0 allocs/op",
				named.Obj().Name(), fd.Name.Name, names[0].Name)
		}
	}
}

// markerTypes collects the types declared with a //simlint:nilsafe directive
// on their type declaration.
func markerTypes(p *Package) map[*types.TypeName]bool {
	out := make(map[*types.TypeName]bool)
	for _, f := range p.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, sp := range gd.Specs {
				ts, ok := sp.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if hasNilsafeDirective(gd.Doc) || hasNilsafeDirective(ts.Doc) || hasNilsafeDirective(ts.Comment) {
					if tn, ok := p.Info.Defs[ts.Name].(*types.TypeName); ok {
						out[tn] = true
					}
				}
			}
		}
	}
	return out
}

func hasNilsafeDirective(cg *ast.CommentGroup) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if !strings.HasPrefix(c.Text, "//simlint:") {
			continue
		}
		fields := strings.Fields(strings.TrimPrefix(c.Text, "//simlint:"))
		if len(fields) > 0 && fields[0] == "nilsafe" {
			return true
		}
	}
	return false
}

func guardOK(p *Package, body *ast.BlockStmt, recv types.Object, markers map[*types.TypeName]bool) bool {
	if len(body.List) == 0 {
		return true // empty body cannot dereference the receiver
	}
	switch first := body.List[0].(type) {
	case *ast.IfStmt:
		// Form 1: if recv == nil { ... return }  (possibly recv == nil || ...)
		if condTestsNil(p, first.Cond, recv, token.EQL) &&
			len(first.Body.List) > 0 && endsInReturn(first.Body) {
			return true
		}
	case *ast.ReturnStmt:
		// Form 2: return recv != nil && ...
		for _, res := range first.Results {
			if exprTestsNil(p, res, recv) {
				return true
			}
		}
	}
	// Form 3: single-statement delegation through contracted methods.
	if len(body.List) == 1 {
		var root ast.Expr
		switch st := body.List[0].(type) {
		case *ast.ExprStmt:
			root = st.X
		case *ast.ReturnStmt:
			if len(st.Results) == 1 {
				root = st.Results[0]
			}
		}
		if call, ok := root.(*ast.CallExpr); ok && delegationChainSafe(p, call, recv, markers) {
			return true
		}
	}
	return false
}

// condTestsNil reports whether cond contains `recv op nil` as a top-level
// disjunct (op == EQL) — e.g. `recv == nil` or `recv == nil || other`.
func condTestsNil(p *Package, cond ast.Expr, recv types.Object, op token.Token) bool {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	if be.Op == token.LOR {
		return condTestsNil(p, be.X, recv, op) || condTestsNil(p, be.Y, recv, op)
	}
	if be.Op != op {
		return false
	}
	return isRecvNilPair(p, be.X, be.Y, recv)
}

// exprTestsNil reports whether the expression contains a `recv == nil` or
// `recv != nil` comparison anywhere — good enough for form 2, where the
// method's entire body is one boolean expression over the receiver.
func exprTestsNil(p *Package, e ast.Expr, recv types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if be, ok := n.(*ast.BinaryExpr); ok && (be.Op == token.EQL || be.Op == token.NEQ) {
			if isRecvNilPair(p, be.X, be.Y, recv) {
				found = true
			}
		}
		return !found
	})
	return found
}

func isRecvNilPair(p *Package, a, b ast.Expr, recv types.Object) bool {
	isRecv := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && p.Info.ObjectOf(id) == recv
	}
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return false
		}
		_, isN := p.Info.ObjectOf(id).(*types.Nil)
		return isN
	}
	return (isRecv(a) && isNil(b)) || (isNil(a) && isRecv(b))
}

// endsInReturn reports whether the block's final statement is a return.
func endsInReturn(b *ast.BlockStmt) bool {
	_, ok := b.List[len(b.List)-1].(*ast.ReturnStmt)
	return ok
}

// delegationChainSafe verifies form 3: the call chain is rooted at the
// receiver identifier, and every link that can receive a nil pointer — the
// base link (which receives the actual receiver) and any pointer-receiver
// link on an intermediate result — is an exported method on a contracted
// type, so it carries its own (checked) nil guard. Value-receiver links on
// call results are safe unconditionally: a non-pointer operand cannot be
// nil. The arguments must not mention the receiver — `c.Add(c.v)` would
// dereference it before the callee's guard runs.
func delegationChainSafe(p *Package, call *ast.CallExpr, recv types.Object, markers map[*types.TypeName]bool) bool {
	for _, arg := range call.Args {
		mentions := false
		ast.Inspect(arg, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && p.Info.ObjectOf(id) == recv {
				mentions = true
			}
			return !mentions
		})
		if mentions {
			return false
		}
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	ptrRecv := false
	if _, ok := sig.Recv().Type().(*types.Pointer); !ok {
		// Value receiver: safe only when the operand is a value too — calling
		// a value-receiver method on a nil pointer operand auto-derefs.
		if _, operandIsPtr := p.Info.TypeOf(sel.X).(*types.Pointer); operandIsPtr {
			return false
		}
	}
	if ptr, ok := sig.Recv().Type().(*types.Pointer); ok {
		ptrRecv = true
		named, ok := ptr.Elem().(*types.Named)
		if !ok {
			return false
		}
		tn := named.Obj()
		if !fn.Exported() {
			return false
		}
		if !markers[tn] && !(tn.Exported() && tn.Pkg() != nil && strings.HasSuffix(tn.Pkg().Path(), "internal/telemetry")) {
			return false
		}
	}
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.Ident:
		// The base link receives the receiver itself, so it must be a
		// guarded (pointer-receiver, contracted) method.
		return ptrRecv && p.Info.ObjectOf(x) == recv
	case *ast.CallExpr:
		return delegationChainSafe(p, x, recv, markers)
	default:
		return false
	}
}
