// Package lint is simlint: a project-specific static analyzer that
// mechanically enforces the simulator's unwritten contracts. The repo's
// credibility rests on two properties that ordinary tests can only spot-check:
//
//   - Determinism. The sim core is a single-threaded virtual-time event loop;
//     every benchmark number must be bit-identical across runs from the same
//     seed (the bench-compare regression gate depends on it). Wall-clock
//     reads, the process-global rand source, and order-dependent map
//     iteration all silently break this.
//
//   - Nil-safe telemetry. Every probe/instrument handle is a valid no-op when
//     nil, so device hot paths call it unconditionally and the disabled path
//     is pinned at 0 allocs/op. A single unguarded exported method turns
//     "telemetry off" into a panic.
//
// The analyzer is built only on the stdlib go/parser, go/ast, and go/types
// (the build environment is offline, so golang.org/x/tools is unavailable).
// Packages load through `go list -export`, which works offline against the
// local build cache; see load.go.
//
// # Rules
//
//   - determinism: no wall-clock/entropy reads anywhere in the module
//     (time.Now, time.Since, the global math/rand source, crypto/rand,
//     os.Getpid, ...), and no order-dependent iteration over a map in the
//     sim-core packages.
//   - concurrency: no go statements, channels, select, or sync primitives
//     outside telemetry/httpserve, cmd/, and examples/ — the sim core is a
//     single-threaded virtual-time loop. The shard scheduler
//     (internal/sim/shard) is carved out with an inverted contract: it may
//     spawn goroutines, but writes to package-level state are findings.
//   - nilguard: every exported pointer-receiver method on an instrument type
//     (exported types in internal/telemetry, plus any type marked with a
//     `//simlint:nilsafe` directive) must start with a nil-receiver guard.
//   - tickunit: time.Duration must not leak into sim-core tick arithmetic,
//     and nothing may convert directly between time.Duration and sim.Time.
//   - shardcheck (interprocedural): every mutable field/package var written
//     from a per-LUN code path must be indexed by a shard key on all access
//     paths, or carry a //simlint:shared <reason> carve-out; the resulting
//     classification is the affinity report (simlint -affinity) — the
//     contract for the planned channel-sharded parallel scheduler.
//   - pairing (path-sensitive): AttrSink bracket discipline — Begin reaches
//     End/Drop on all paths, Suspend/Resume and PushWorker/PopWorker balance
//     on every path including early returns, charges only inside an open
//     bracket.
//   - exhaustive: switches on internal/zns enum types must cover every
//     declared state or carry a default; experiment registry IDs must be
//     string literals forming a unique, well-formed, hole-free ID space.
//
// Deliberate violations are silenced with an allow directive on the same
// line or the line above:
//
//	//simlint:allow <rule> <reason>
//
// The reason is mandatory and the directive must actually suppress a finding
// — the linter lints its own escape hatch (rule "allow").
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one rule violation at a source position.
type Finding struct {
	Pos  token.Position
	Rule string
	Msg  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Rule, f.Msg)
}

// RuleDoc describes one rule for -rules output and the docs.
type RuleDoc struct {
	Name string
	Doc  string
}

// Rules returns the rule set in display order.
func Rules() []RuleDoc {
	return []RuleDoc{
		{"determinism", "no wall-clock/entropy reads module-wide; no order-dependent map iteration in sim-core packages"},
		{"concurrency", "no goroutines, channels, select, or sync primitives outside telemetry/httpserve, cmd/, and examples/; the shard scheduler (internal/sim/shard) instead must not write package-level state"},
		{"nilguard", "exported pointer-receiver methods on instrument types must begin with a nil-receiver guard"},
		{"tickunit", "no time.Duration in sim-core tick arithmetic; no direct time.Duration<->sim.Time conversion"},
		{"shardcheck", "interprocedural: per-LUN code paths may only write shard-keyed state; cross-shard writes need a //simlint:shared <reason> carve-out (report: simlint -affinity)"},
		{"pairing", "AttrSink bracket discipline on every path: Begin reaches End/Drop, Suspend/Resume and PushWorker/PopWorker balance, charges land inside an open bracket"},
		{"exhaustive", "switches on internal/zns enum types cover every state or carry a default; experiment registry IDs are literal, unique, well-formed, and hole-free"},
		{"allow", "meta: every //simlint:allow must name a known rule, carry a reason, and suppress a real finding"},
	}
}

func knownRule(name string) bool {
	for _, r := range Rules() {
		if r.Name == name && r.Name != "allow" {
			return true
		}
	}
	return false
}

// simCoreSuffixes are the import-path suffixes of the packages that form the
// single-threaded virtual-time simulator core. The map-iteration and
// tick-unit rules apply only here; the concurrency rule applies here and to
// every other library package.
var simCoreSuffixes = []string{
	"internal/sim",
	"internal/fault",
	"internal/fault/oracle",
	"internal/flash",
	"internal/ftl",
	"internal/zns",
	"internal/hostftl",
	"internal/core",
	"internal/telemetry",
	"internal/telemetry/critpath",
	"internal/telemetry/exemplar",
	"internal/workload",
	"internal/placement",
	"internal/offload",
	"internal/zcache",
	"internal/zkv",
	"internal/zonefile",
}

func isSimCore(path string) bool {
	for _, s := range simCoreSuffixes {
		if strings.HasSuffix(path, s) {
			return true
		}
	}
	return false
}

// concurrencyExempt reports whether path is one of the places concurrency is
// legitimate: the HTTP telemetry server and the command/example binaries that
// wrap the simulator.
func concurrencyExempt(path string) bool {
	return strings.HasSuffix(path, "internal/telemetry/httpserve") ||
		strings.Contains(path, "/cmd/") ||
		strings.Contains(path, "/examples/")
}

// shardScheduler reports whether path is the parallel shard scheduler — the
// one library package allowed to hold goroutines and sync primitives, in
// exchange for the no-package-level-writes contract checkShardGlobals
// enforces (see docs/parallel-sim.md).
func shardScheduler(path string) bool {
	return strings.HasSuffix(path, "internal/sim/shard")
}

// reporter accumulates findings for one package, deduplicating by
// (file, line, rule) so two checks that trip over the same expression do not
// double-report.
type reporter struct {
	p        *Package
	seen     map[string]bool
	findings []Finding
}

func (r *reporter) findf(pos token.Pos, rule, format string, args ...interface{}) {
	r.findfAt(r.p.Fset.Position(pos), rule, format, args...)
}

func (r *reporter) findfAt(position token.Position, rule, format string, args ...interface{}) {
	key := fmt.Sprintf("%s:%d:%s", position.Filename, position.Line, rule)
	if r.seen == nil {
		r.seen = make(map[string]bool)
	}
	if r.seen[key] {
		return
	}
	r.seen[key] = true
	r.findings = append(r.findings, Finding{Pos: position, Rule: rule, Msg: fmt.Sprintf(format, args...)})
}

// Check runs every rule over the packages and returns the surviving findings
// (allow directives applied), sorted by position.
func Check(pkgs []*Package) []Finding {
	findings, _ := checkAll(pkgs)
	return findings
}

// checkAll is Check plus the shardcheck classification, which the affinity
// report renders.
func checkAll(pkgs []*Package) ([]Finding, *shardResult) {
	reps := make(map[string]*reporter, len(pkgs))
	rep := func(p *Package) *reporter {
		r := reps[p.Path]
		if r == nil {
			r = &reporter{p: p}
			reps[p.Path] = r
		}
		return r
	}
	for _, p := range pkgs {
		r := rep(p)
		checkDeterminism(p, r)
		checkConcurrency(p, r)
		checkNilGuard(p, r)
		checkTickUnit(p, r)
	}
	m := buildModule(pkgs)
	res := checkShard(m, rep)
	checkPairing(m, rep)
	checkExhaustive(pkgs, rep)
	var all []Finding
	for _, p := range pkgs {
		var found []Finding
		if r := reps[p.Path]; r != nil {
			found = r.findings
		}
		all = append(all, applyAllows(p, found)...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Msg < b.Msg
	})
	return all, res
}

type allowDirective struct {
	pos  token.Position
	rule string
	used bool
}

// applyAllows parses //simlint: directives, suppresses findings covered by a
// justified allow, and emits the meta-rule findings: unknown directive,
// unknown rule, missing reason, unused allow.
func applyAllows(p *Package, findings []Finding) []Finding {
	var allows []*allowDirective
	var meta []Finding
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, "//simlint:") {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				fields := strings.Fields(strings.TrimPrefix(c.Text, "//simlint:"))
				switch {
				case len(fields) == 0:
					meta = append(meta, Finding{pos, "allow", "bare //simlint: directive; expected //simlint:allow <rule> <reason> or //simlint:nilsafe"})
				case fields[0] == "nilsafe":
					// Type marker, consumed by the nilguard rule.
				case fields[0] == "shared":
					// Shard carve-out, consumed (and validated) by shardcheck.
				case fields[0] != "allow":
					meta = append(meta, Finding{pos, "allow", fmt.Sprintf("unknown //simlint: directive %q (directives: allow, nilsafe, shared)", fields[0])})
				case len(fields) == 1:
					meta = append(meta, Finding{pos, "allow", "//simlint:allow needs a rule and a reason: //simlint:allow <rule> <reason>"})
				case !knownRule(fields[1]):
					meta = append(meta, Finding{pos, "allow", fmt.Sprintf("unknown rule %q in //simlint:allow (rules: determinism, concurrency, nilguard, tickunit, shardcheck, pairing, exhaustive)", fields[1])})
				default:
					a := &allowDirective{pos: pos, rule: fields[1]}
					if len(fields) == 2 {
						// The escape hatch is itself linted: an exemption
						// without a written justification is a finding, but it
						// still suppresses so the only complaint is the
						// missing reason.
						meta = append(meta, Finding{pos, "allow", fmt.Sprintf("//simlint:allow %s is missing a reason — justify the exemption", fields[1])})
					}
					allows = append(allows, a)
				}
			}
		}
	}
	var out []Finding
	for _, f := range findings {
		suppressed := false
		for _, a := range allows {
			if a.rule == f.Rule && a.pos.Filename == f.Pos.Filename &&
				(a.pos.Line == f.Pos.Line || a.pos.Line == f.Pos.Line-1) {
				a.used = true
				suppressed = true
			}
		}
		if !suppressed {
			out = append(out, f)
		}
	}
	for _, a := range allows {
		if !a.used {
			meta = append(meta, Finding{a.pos, "allow", fmt.Sprintf("unused //simlint:allow %s — no %s finding on this line or the next", a.rule, a.rule)})
		}
	}
	return append(out, meta...)
}

// exprString renders an expression for a finding message.
func exprString(e ast.Expr) string { return types.ExprString(e) }
