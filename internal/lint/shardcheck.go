// The shardcheck rule: the static half of the ROADMAP's parallel-core plan.
// The future scheduler shards the simulator by flash channel (a shard owns
// its channel bus, the LUNs behind it, and their blocks), so every mutable
// field and package var reachable from sim-core must be provably shard-local
// — indexed by a shard key (lun/die, channel, block) on every write path —
// or explicitly carved out with //simlint:shared <reason>. Writes to
// anything else from a per-LUN code path are findings, and the resulting
// classification is emitted as the affinity report (simlint -affinity).
//
// The analysis is deliberately name-and-dataflow based rather than a full
// points-to analysis: shard keys are recognized lexically (lun, die, ch,
// channel, block, blk, victim, z, zone, plus suffix forms) and propagated
// through local assignments, arithmetic, and the geometry mapping calls
// (LUNOfBlock/ChannelOfLUN/ChannelOfBlock). Writes through pointer
// parameters and dynamic (interface) calls are out of scope; the affinity
// report documents both limits.

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// keyClass classifies an index expression by the shard key it carries.
// The order encodes specificity: block pins hardest (one block lives on
// exactly one LUN).
type keyClass int

const (
	keyNone  keyClass = iota // not a shard key
	keyRange                 // a range-statement index: a sweep over every element
	keyZone                  // zone id — a zone stripes across channels, so cross-shard
	keyChan                  // channel id
	keyLUN                   // LUN / die id
	keyBlock                 // block id
)

func (k keyClass) String() string {
	switch k {
	case keyRange:
		return "range"
	case keyZone:
		return "zone"
	case keyChan:
		return "chan"
	case keyLUN:
		return "lun"
	case keyBlock:
		return "block"
	}
	return "none"
}

// shardSafe reports whether an index of this class pins the access to one
// channel shard. Blocks and LUNs nest inside their channel; zones stripe
// across all channels.
func (k keyClass) shardSafe() bool {
	return k == keyLUN || k == keyChan || k == keyBlock
}

// nameClass is the shard-key lexicon. Exact names first, then suffix forms
// (srcBlock, dstLun, hotZone ...).
func nameClass(name string) keyClass {
	lower := strings.ToLower(name)
	switch lower {
	case "lun", "die":
		return keyLUN
	case "ch", "channel":
		return keyChan
	case "block", "blk", "victim":
		return keyBlock
	case "z", "zone", "zid":
		return keyZone
	}
	switch {
	case strings.HasSuffix(lower, "lun"):
		return keyLUN
	case strings.HasSuffix(lower, "block"):
		return keyBlock
	case strings.HasSuffix(lower, "channel"), strings.HasSuffix(lower, "chan"):
		return keyChan
	case strings.HasSuffix(lower, "zone"):
		return keyZone
	}
	return keyNone
}

// writeRoot says what a write effect is anchored to.
type writeRoot int

const (
	rootNone    writeRoot = iota
	rootRecv              // a field of the method's own receiver
	rootGlobal            // a package-level var
	rootPointee           // a field of an object shared through a pointer field
)

// writeEff is one resolved write effect.
type writeEff struct {
	pos     token.Pos
	ref     stateRef
	root    writeRoot
	indexed bool
	idx     keyClass
}

// keyedSafe reports whether this single write stays inside one shard.
func (w writeEff) keyedSafe() bool { return w.indexed && w.idx.shardSafe() }

// recvShape classifies a method call's receiver for effect mapping.
type recvShape int

const (
	recvNone         recvShape = iota
	recvIsCallerRecv           // called on the enclosing method's own receiver
	recvIsShardElem            // called on a shard-keyed element (d.luns[lun])
	recvIsCrossElem            // called on an element reached without a shard key
	recvIsFieldPtr             // called through a shared field or package var (d.attr)
	recvIsOther                // local, parameter, call result — unattributable
)

// callEff is one resolved call site.
type callEff struct {
	pos    token.Pos
	callee funcKey
	shape  recvShape
	elem   stateRef // container field (elem shapes); package var (field-ptr on a var)
	idx    keyClass // index class for the elem shapes
}

// fnScan is the single-pass intraprocedural scan of one function: shard-key
// classes of locals, aliases into container state, resolved write effects,
// and resolved call sites. Both the summary fixpoint and the per-LUN context
// check consume it.
type fnScan struct {
	node    *funcNode
	classOf map[types.Object]keyClass
	aliases map[types.Object]writeEff // local -> the location it aliases
	recvObj types.Object
	writes  []writeEff
	calls   []callEff
	// context: the function runs on a per-LUN code path — it has an integer
	// lun/channel parameter or derives one via the geometry mappers.
	context bool
}

func scanFunc(n *funcNode) *fnScan {
	s := &fnScan{node: n, classOf: map[types.Object]keyClass{}, aliases: map[types.Object]writeEff{}}
	if n.decl.Recv != nil && len(n.decl.Recv.List) > 0 && len(n.decl.Recv.List[0].Names) > 0 {
		s.recvObj = n.pkg.Info.Defs[n.decl.Recv.List[0].Names[0]]
	}
	if n.decl.Type.Params != nil {
		for _, f := range n.decl.Type.Params.List {
			for _, name := range f.Names {
				obj := n.pkg.Info.Defs[name]
				if obj == nil {
					continue
				}
				if c := nameClass(name.Name); (c == keyLUN || c == keyChan) && isIntLike(obj.Type()) {
					s.context = true
				}
			}
		}
	}
	s.walkBody(n.decl.Body)
	return s
}

func isIntLike(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// walkBody visits statements in source order; Go's declare-before-use rule
// means one pass suffices for local dataflow.
func (s *fnScan) walkBody(body ast.Node) {
	ast.Inspect(body, func(nd ast.Node) bool {
		switch st := nd.(type) {
		case *ast.AssignStmt:
			s.assign(st)
		case *ast.IncDecStmt:
			s.write(st.X, st.Pos())
		case *ast.RangeStmt:
			if id, ok := st.Key.(*ast.Ident); ok && id.Name != "_" {
				if obj := s.node.pkg.Info.Defs[id]; obj != nil {
					s.classOf[obj] = keyRange
				}
			}
		case *ast.CallExpr:
			s.call(st)
		}
		return true
	})
}

func (s *fnScan) assign(st *ast.AssignStmt) {
	aliasDef := map[ast.Expr]bool{}
	if len(st.Lhs) == len(st.Rhs) {
		for i, lhs := range st.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := s.node.pkg.Info.Defs[id]
			if obj == nil {
				obj = s.node.pkg.Info.Uses[id]
			}
			if obj == nil || !s.isLocal(obj) {
				continue
			}
			rhs := ast.Unparen(st.Rhs[i])
			// &d.blocks[block] or a slice/map header copy: the local aliases
			// the container; writes through it are container writes.
			target := rhs
			if un, isAddr := rhs.(*ast.UnaryExpr); isAddr && un.Op == token.AND {
				target = ast.Unparen(un.X)
			}
			if eff, ok := s.resolvePath(target); ok && eff.root != rootNone && aliasable(s.node.pkg, target, rhs) {
				s.aliases[obj] = eff
				aliasDef[lhs] = true
				continue
			}
			if c := s.classExpr(st.Rhs[i]); c != keyNone {
				s.classOf[obj] = c
			}
		}
	}
	for _, lhs := range st.Lhs {
		if !aliasDef[lhs] {
			s.write(lhs, st.Pos())
		}
	}
}

// aliasable reports whether assigning rhs creates a live alias into the
// resolved container: taking an element's address, or copying a slice, map,
// or pointer value (which shares the pointed-to store). Copying a plain
// struct value does not alias.
func aliasable(p *Package, target, rhs ast.Expr) bool {
	if un, ok := rhs.(*ast.UnaryExpr); ok && un.Op == token.AND {
		return true
	}
	tv, ok := p.Info.Types[target]
	if !ok || tv.Type == nil {
		return false
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice, *types.Map, *types.Pointer:
		return true
	}
	return false
}

func (s *fnScan) isLocal(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() || obj == s.recvObj {
		return false
	}
	return !isPkgVar(obj)
}

func isPkgVar(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return false
	}
	return obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope()
}

// classExpr computes the shard-key class an expression carries.
func (s *fnScan) classExpr(e ast.Expr) keyClass {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := s.node.pkg.Info.Uses[e]
		if obj == nil {
			obj = s.node.pkg.Info.Defs[e]
		}
		return s.classObj(obj)
	case *ast.BinaryExpr:
		return maxClass(s.classExpr(e.X), s.classExpr(e.Y))
	case *ast.UnaryExpr:
		return s.classExpr(e.X)
	case *ast.CallExpr:
		if fn := calleeOf(s.node.pkg, e); fn != nil {
			switch fn.Name() {
			case "LUNOfBlock":
				return keyLUN
			case "ChannelOfLUN", "ChannelOfBlock":
				return keyChan
			}
		}
		// Conversions and index-derivation helpers (pageIndex(block, page))
		// keep the strongest key among their operands.
		c := keyNone
		for _, a := range e.Args {
			c = maxClass(c, s.classExpr(a))
		}
		return c
	}
	return keyNone
}

func (s *fnScan) classObj(obj types.Object) keyClass {
	if obj == nil {
		return keyNone
	}
	if c, ok := s.classOf[obj]; ok {
		return c
	}
	if _, ok := obj.(*types.Var); ok {
		return nameClass(obj.Name())
	}
	return keyNone
}

// maxClass picks the more shard-specific of two classes.
func maxClass(a, b keyClass) keyClass {
	if a > b {
		return a
	}
	return b
}

// call records one call site's effect shape. A geometry-mapper call also
// marks the function as a per-LUN context.
func (s *fnScan) call(call *ast.CallExpr) {
	fn := calleeOf(s.node.pkg, call)
	if fn == nil {
		return
	}
	key, ok := keyOfFunc(fn)
	if !ok {
		return
	}
	if key.name == "LUNOfBlock" || key.name == "ChannelOfLUN" {
		s.context = true
	}
	eff := callEff{pos: call.Pos(), callee: key, shape: recvNone}
	if sig, _ := fn.Type().(*types.Signature); sig != nil && sig.Recv() != nil {
		eff.shape = recvIsOther
		if sel, okSel := ast.Unparen(call.Fun).(*ast.SelectorExpr); okSel {
			eff.shape, eff.elem, eff.idx = s.receiverShape(sel.X)
		}
	}
	s.calls = append(s.calls, eff)
}

// receiverShape classifies the receiver expression of a method call.
func (s *fnScan) receiverShape(x ast.Expr) (recvShape, stateRef, keyClass) {
	x = ast.Unparen(x)
	if id, ok := x.(*ast.Ident); ok {
		obj := s.node.pkg.Info.Uses[id]
		if obj == nil {
			obj = s.node.pkg.Info.Defs[id]
		}
		switch {
		case obj == nil:
			return recvIsOther, stateRef{}, keyNone
		case obj == s.recvObj:
			return recvIsCallerRecv, stateRef{}, keyNone
		case isPkgVar(obj):
			return recvIsFieldPtr, stateRef{pkg: obj.Pkg().Path(), field: obj.Name()}, keyNone
		}
		if eff, ok := s.aliases[obj]; ok {
			return shapeOfEff(eff), eff.ref, eff.idx
		}
		return recvIsOther, stateRef{}, keyNone
	}
	if eff, ok := s.resolvePath(x); ok && eff.root != rootNone {
		return shapeOfEff(eff), eff.ref, eff.idx
	}
	return recvIsOther, stateRef{}, keyNone
}

func shapeOfEff(eff writeEff) recvShape {
	if eff.indexed {
		if eff.idx.shardSafe() {
			return recvIsShardElem
		}
		return recvIsCrossElem
	}
	// Unindexed field (d.attr, d.counts): the callee's receiver writes land
	// on the field's named type, shared through the container.
	return recvIsFieldPtr
}

// write resolves one lvalue and records its effect.
func (s *fnScan) write(lv ast.Expr, pos token.Pos) {
	eff, ok := s.resolvePath(lv)
	if !ok || eff.root == rootNone {
		return
	}
	eff.pos = pos
	s.writes = append(s.writes, eff)
}

// resolvePath walks an access path (selectors, indexes, derefs) down to its
// root and maps it to a state reference:
//
//	d.blocks[block].sealed  -> (flash.Device, blocks) indexed by block
//	d.counts.Reads          -> (flash.Device, counts) whole
//	s.rec.seq               -> pointer-field hop: (AttrSink's pointee, seq)
//	registry                -> package var, rootGlobal
//	locals / param values   -> no effect
func (s *fnScan) resolvePath(e ast.Expr) (writeEff, bool) {
	type step struct {
		field *ast.SelectorExpr
		idx   ast.Expr // nil for a selector step
	}
	var path []step
walk:
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			path = append(path, step{field: x})
			e = x.X
		case *ast.IndexExpr:
			path = append(path, step{idx: x.Index})
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			e = x
			break walk
		}
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return writeEff{}, false
	}
	obj := s.node.pkg.Info.Uses[id]
	if obj == nil {
		obj = s.node.pkg.Info.Defs[id]
	}
	if obj == nil {
		return writeEff{}, false
	}
	// path was collected outside-in; reverse to walk from the root.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}

	var eff writeEff
	switch {
	case s.recvObj != nil && obj == s.recvObj:
		eff.root = rootRecv
	case isPkgVar(obj):
		eff.root = rootGlobal
		eff.ref = stateRef{pkg: obj.Pkg().Path(), field: obj.Name()}
		if len(path) > 0 && path[0].idx != nil {
			eff.indexed = true
			eff.idx = s.classExpr(path[0].idx)
		}
		return eff, true
	default:
		if a, ok := s.aliases[obj]; ok {
			eff = a
			if !eff.indexed && len(path) > 0 && path[0].idx != nil {
				eff.indexed = true
				eff.idx = s.classExpr(path[0].idx)
			}
			return eff, true
		}
		return writeEff{}, false // plain local or parameter value
	}

	// Receiver-rooted: the first selector picks the field.
	if len(path) == 0 || path[0].field == nil {
		return writeEff{}, false // the receiver itself, not module state
	}
	fieldSel := path[0].field
	recvNamed := namedOf(s.node.pkg.Info.Types[fieldSel.X].Type)
	if recvNamed == nil || recvNamed.Obj().Pkg() == nil {
		return writeEff{}, false
	}
	eff.ref = stateRef{pkg: recvNamed.Obj().Pkg().Path(), typ: recvNamed.Obj().Name(), field: fieldSel.Sel.Name}
	rest := path[1:]
	if len(rest) > 0 && rest[0].idx != nil {
		eff.indexed = true
		eff.idx = s.classExpr(rest[0].idx)
		return eff, true
	}
	if len(rest) > 0 && rest[0].field != nil {
		// A further selector without an index: a sub-field of a struct value
		// stays the receiver's memory; a hop through a pointer field escapes
		// to the pointee type.
		ft := s.node.pkg.Info.Types[fieldSel].Type
		if ft != nil {
			if _, isPtr := ft.Underlying().(*types.Pointer); isPtr {
				pn := namedOf(ft)
				if pn == nil || pn.Obj().Pkg() == nil {
					return writeEff{}, false
				}
				eff.root = rootPointee
				eff.ref = stateRef{pkg: pn.Obj().Pkg().Path(), typ: pn.Obj().Name(), field: rest[0].field.Sel.Name}
			}
		}
	}
	return eff, true
}

// ---------------------------------------------------------------------------
// Shared-state annotations: //simlint:shared <reason> on a struct field or a
// type declaration carves the state out of the shard model on purpose. The
// directive is linted like allow: the reason is mandatory and the annotation
// must cover state that is actually written.

type sharedAnn struct {
	pos    token.Position
	ref    stateRef // field == "*": the whole type
	reason string
	used   bool
}

func sharedDirective(cg *ast.CommentGroup) (*ast.Comment, string, bool) {
	if cg == nil {
		return nil, "", false
	}
	for _, c := range cg.List {
		if strings.HasPrefix(c.Text, "//simlint:shared") {
			return c, strings.TrimSpace(strings.TrimPrefix(c.Text, "//simlint:shared")), true
		}
	}
	return nil, "", false
}

// collectShared parses shared directives from type and field declarations.
func collectShared(p *Package) []*sharedAnn {
	var anns []*sharedAnn
	for _, f := range p.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				typeRef := stateRef{pkg: p.Path, typ: ts.Name.Name, field: "*"}
				for _, cg := range []*ast.CommentGroup{gd.Doc, ts.Doc, ts.Comment} {
					if c, reason, ok := sharedDirective(cg); ok {
						anns = append(anns, &sharedAnn{pos: p.Fset.Position(c.Pos()), ref: typeRef, reason: reason})
					}
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok || st.Fields == nil {
					continue
				}
				for _, fl := range st.Fields.List {
					for _, cg := range []*ast.CommentGroup{fl.Doc, fl.Comment} {
						c, reason, ok := sharedDirective(cg)
						if !ok {
							continue
						}
						if len(fl.Names) == 0 {
							anns = append(anns, &sharedAnn{pos: p.Fset.Position(c.Pos()), ref: typeRef, reason: reason})
							continue
						}
						for _, name := range fl.Names {
							anns = append(anns, &sharedAnn{
								pos: p.Fset.Position(c.Pos()), reason: reason,
								ref: stateRef{pkg: p.Path, typ: ts.Name.Name, field: name.Name},
							})
						}
					}
				}
			}
		}
	}
	return anns
}

// sharedSet indexes annotations for lookup during the check phase.
type sharedSet struct {
	byRef map[stateRef]*sharedAnn
	all   []*sharedAnn
}

func buildSharedSet(pkgs []*Package) *sharedSet {
	ss := &sharedSet{byRef: map[stateRef]*sharedAnn{}}
	for _, p := range pkgs {
		for _, a := range collectShared(p) {
			ss.all = append(ss.all, a)
			if _, dup := ss.byRef[a.ref]; !dup {
				ss.byRef[a.ref] = a
			}
		}
	}
	return ss
}

// lookup finds the annotation covering ref — the exact field, its container
// type, or the named type of the state itself — without marking it used.
func (ss *sharedSet) lookup(ref stateRef, stateType *types.Named) *sharedAnn {
	if a, ok := ss.byRef[ref]; ok {
		return a
	}
	if ref.typ != "" {
		if a, ok := ss.byRef[stateRef{pkg: ref.pkg, typ: ref.typ, field: "*"}]; ok {
			return a
		}
	}
	if stateType != nil && stateType.Obj().Pkg() != nil {
		if a, ok := ss.byRef[stateRef{pkg: stateType.Obj().Pkg().Path(), typ: stateType.Obj().Name(), field: "*"}]; ok {
			return a
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// The rule driver.

// shardResult carries the classification produced as a side effect of the
// rule, consumed by the affinity report.
type shardResult struct {
	mod      *module
	shared   *sharedSet
	classes  map[stateRef]affinity
	reasons  map[stateRef]string
	evidence map[stateRef]map[keyClass]bool
	whole    map[stateRef]writeRoot // strongest unkeyed-write root seen
	contexts []funcKey              // per-LUN context functions, sorted
}

// checkShard runs the shardcheck rule over the module. Findings go through
// rep (a per-package reporter factory); the returned classification feeds
// the affinity report.
func checkShard(m *module, rep func(*Package) *reporter) *shardResult {
	computeSummaries(m)
	res := &shardResult{
		mod: m, shared: buildSharedSet(m.pkgs),
		classes:  map[stateRef]affinity{},
		reasons:  map[stateRef]string{},
		evidence: map[stateRef]map[keyClass]bool{},
		whole:    map[stateRef]writeRoot{},
	}

	// Evidence pass: every write anywhere (setup functions excluded) feeds a
	// state ref's observed key classes.
	for _, k := range m.order {
		n := m.funcs[k]
		if exemptSetup(k) {
			continue
		}
		for _, w := range n.scan.writes {
			res.observe(w)
		}
		for _, c := range n.scan.calls {
			callee, ok := m.funcs[c.callee]
			if !ok || !writesRecv(callee.sum) {
				continue
			}
			if c.shape == recvIsShardElem || c.shape == recvIsCrossElem {
				// A writing method on a container element is element-write
				// evidence for the container field.
				res.observe(writeEff{ref: c.elem, root: rootRecv, indexed: true, idx: c.idx})
			}
		}
	}
	res.classify()

	// Check pass: per-LUN context functions in sim-core packages.
	for _, k := range m.order {
		n := m.funcs[k]
		if !n.scan.context || !isSimCore(n.pkg.Path) || exemptSetup(k) {
			continue
		}
		res.contexts = append(res.contexts, k)
		r := rep(n.pkg)
		for _, w := range n.scan.writes {
			res.judgeWrite(r, w)
		}
		for _, c := range n.scan.calls {
			res.judgeCall(r, c)
		}
	}

	// Annotation hygiene: a shared carve-out must carry a reason and must
	// cover state something writes.
	for _, a := range res.shared.all {
		p := pkgOf(m, a.ref.pkg)
		if p == nil {
			continue
		}
		r := rep(p)
		if a.reason == "" {
			r.findfAt(a.pos, "allow", "//simlint:shared is missing a reason — name why this state must stay cross-shard")
		}
		if !a.used && !res.written(a.ref) {
			r.findfAt(a.pos, "allow", "unused //simlint:shared on %s — nothing writes this state", a.ref)
		}
	}
	return res
}

func writesRecv(s *summary) bool { return len(s.recv) > 0 }

func pkgOf(m *module, path string) *Package {
	for _, p := range m.pkgs {
		if p.Path == path {
			return p
		}
	}
	return nil
}

// exemptSetup: constructors, init, and attach/configure entry points wire
// objects up outside the per-LUN hot path; their writes are neither
// affinity evidence nor findings.
func exemptSetup(k funcKey) bool {
	return k.name == "init" || strings.HasPrefix(k.name, "New") ||
		strings.HasPrefix(k.name, "Set") || strings.HasPrefix(k.name, "Enable") ||
		strings.HasPrefix(k.name, "Attach")
}

func (res *shardResult) observe(w writeEff) {
	if w.ref == (stateRef{}) {
		return
	}
	if w.indexed {
		ev := res.evidence[w.ref]
		if ev == nil {
			ev = map[keyClass]bool{}
			res.evidence[w.ref] = ev
		}
		ev[w.idx] = true
		return
	}
	if w.root > res.whole[w.ref] {
		res.whole[w.ref] = w.root
	}
}

// written reports whether any write evidence exists for ref (for a
// type-level "*" ref, for any field of the type).
func (res *shardResult) written(ref stateRef) bool {
	if ref.field != "*" {
		return len(res.evidence[ref]) > 0 || res.whole[ref] != rootNone
	}
	sameType := func(r stateRef) bool {
		return (r.pkg == ref.pkg && r.typ == ref.typ) || res.typeOfStateIs(r, ref)
	}
	for r := range res.evidence {
		if sameType(r) {
			return true
		}
	}
	for r := range res.whole {
		if sameType(r) {
			return true
		}
	}
	return false
}

// typeOfStateIs reports whether state ref r's own named type is the type
// named by typeRef (covers annotating telemetry.Counter while the writes
// land on flash.Device.mReads's pointee).
func (res *shardResult) typeOfStateIs(r, typeRef stateRef) bool {
	n := res.namedStateType(r)
	return n != nil && n.Obj().Pkg() != nil &&
		n.Obj().Pkg().Path() == typeRef.pkg && n.Obj().Name() == typeRef.typ
}

func (res *shardResult) classify() {
	refs := map[stateRef]bool{}
	for r := range res.evidence {
		refs[r] = true
	}
	for r := range res.whole {
		refs[r] = true
	}
	for r := range refs {
		res.classes[r] = res.deriveClass(r)
	}
}

func (res *shardResult) deriveClass(r stateRef) affinity {
	if a := res.shared.lookup(r, res.namedStateType(r)); a != nil {
		res.reasons[r] = a.reason
		return affShared
	}
	ev := res.evidence[r]
	keyed := affinity(0)
	sawKey := false
	for c := range ev {
		switch c {
		case keyNone:
			return affGlobal
		case keyRange:
			// Sweeps are barrier-time whole-structure maintenance; neutral.
		case keyZone:
			sawKey = true
			keyed = maxAff(keyed, affPerZone)
		case keyChan:
			sawKey = true
			keyed = maxAff(keyed, affPerChan)
		case keyLUN:
			sawKey = true
			keyed = maxAff(keyed, affPerLUN)
		case keyBlock:
			sawKey = true
			keyed = maxAff(keyed, affPerBlock)
		}
	}
	if sawKey {
		if keyed == affPerZone && (ev[keyChan] || ev[keyLUN] || ev[keyBlock]) {
			return affGlobal // incoherent key mix
		}
		return keyed
	}
	switch res.whole[r] {
	case rootRecv:
		return affInstance
	case rootGlobal, rootPointee:
		return affGlobal
	}
	return affConfig
}

// affinity is a state ref's classification in the shard model.
type affinity int

const (
	affConfig   affinity = iota // never written outside construction
	affInstance                 // written only whole-object through its owner
	affPerZone
	affPerChan
	affPerLUN
	affPerBlock
	affGlobal
	affShared
)

func maxAff(a, b affinity) affinity {
	if a > b {
		return a
	}
	return b
}

func (a affinity) String() string {
	switch a {
	case affConfig:
		return "config"
	case affInstance:
		return "instance"
	case affPerZone:
		return "per-zone"
	case affPerChan:
		return "per-chan"
	case affPerLUN:
		return "per-lun"
	case affPerBlock:
		return "per-block"
	case affShared:
		return "shared"
	}
	return "global"
}

// shardLocal reports whether state of this class may be touched freely from
// a per-LUN code path under channel sharding.
func (a affinity) shardLocal() bool {
	switch a {
	case affPerChan, affPerLUN, affPerBlock, affConfig:
		return true
	}
	return false
}

// covered checks (and consumes) a shared annotation for ref.
func (res *shardResult) covered(ref stateRef) bool {
	if a := res.shared.lookup(ref, res.namedStateType(ref)); a != nil {
		a.used = true
		return true
	}
	return false
}

// namedStateType finds the named type of the state ref itself — for a field,
// the field's (element) type; used for type-level annotation lookup
// (d.attr *telemetry.AttrSink -> AttrSink).
func (res *shardResult) namedStateType(ref stateRef) *types.Named {
	if ref.typ == "" {
		p := pkgOf(res.mod, ref.pkg)
		if p == nil {
			return nil
		}
		obj := p.Types.Scope().Lookup(ref.field)
		if obj == nil {
			return nil
		}
		return elemNamed(obj.Type())
	}
	p := pkgOf(res.mod, ref.pkg)
	var st *types.Struct
	if p != nil {
		if obj := p.Types.Scope().Lookup(ref.typ); obj != nil {
			st, _ = obj.Type().Underlying().(*types.Struct)
		}
	}
	if st == nil {
		// The type may live in a package seen only through export data.
		for _, q := range res.mod.pkgs {
			if obj := q.Types.Scope().Lookup(ref.typ); obj != nil && q.Path == ref.pkg {
				st, _ = obj.Type().Underlying().(*types.Struct)
				break
			}
		}
	}
	if st == nil {
		return nil
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == ref.field {
			return elemNamed(st.Field(i).Type())
		}
	}
	return nil
}

func elemNamed(t types.Type) *types.Named {
	if n := namedOf(t); n != nil {
		return n
	}
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return namedOf(u.Elem())
	case *types.Map:
		return namedOf(u.Elem())
	case *types.Array:
		return namedOf(u.Elem())
	}
	return nil
}

// judgeWrite flags a direct write in a per-LUN context that escapes the
// shard.
func (res *shardResult) judgeWrite(r *reporter, w writeEff) {
	if w.ref == (stateRef{}) {
		return
	}
	if w.indexed {
		if w.idx.shardSafe() {
			return
		}
		if res.covered(w.ref) {
			return
		}
		switch w.idx {
		case keyZone:
			r.findf(w.pos, "shardcheck", "zone-indexed write to %s from a per-LUN path — zones stripe across channel shards (annotate //simlint:shared <reason> if intended)", w.ref)
		case keyRange:
			r.findf(w.pos, "shardcheck", "write to %s sweeps every shard from a per-LUN path (annotate //simlint:shared <reason> if intended)", w.ref)
		default:
			r.findf(w.pos, "shardcheck", "write to %s is not indexed by a shard key (lun/channel/block) on this per-LUN path (annotate //simlint:shared <reason> if intended)", w.ref)
		}
		return
	}
	if res.covered(w.ref) {
		return
	}
	if res.classes[w.ref].shardLocal() {
		r.findf(w.pos, "shardcheck", "whole-object write to shard-partitioned %s from a per-LUN path (annotate //simlint:shared <reason> if intended)", w.ref)
		return
	}
	r.findf(w.pos, "shardcheck", "write to %s (class %s) from a per-LUN path (annotate //simlint:shared <reason> if intended)", w.ref, res.classes[w.ref])
}

// judgeCall maps a callee's summarized effects into the caller's per-LUN
// context.
func (res *shardResult) judgeCall(r *reporter, c callEff) {
	callee, ok := res.mod.funcs[c.callee]
	if !ok {
		return
	}
	for _, ref := range sortedRefs(callee.sum.globals) {
		if callee.sum.globals[ref] || res.covered(ref) {
			continue
		}
		r.findf(c.pos, "shardcheck", "call to %s writes %s (class %s) from a per-LUN path (annotate //simlint:shared <reason> if intended)", c.callee, ref, res.classes[ref])
	}
	judgeRecvEffects := func(refFor func(field string) stateRef) {
		for _, f := range sortedKeys(callee.sum.recv) {
			if callee.sum.recv[f] {
				continue // keyed inside the callee
			}
			ref := refFor(f)
			if res.classes[ref].shardLocal() || res.covered(ref) {
				continue
			}
			r.findf(c.pos, "shardcheck", "call to %s writes %s (class %s) from a per-LUN path (annotate //simlint:shared <reason> if intended)", c.callee, ref, res.classes[ref])
		}
	}
	switch c.shape {
	case recvIsCallerRecv, recvIsFieldPtr:
		judgeRecvEffects(func(f string) stateRef {
			return stateRef{pkg: c.callee.pkg, typ: c.callee.recv, field: f}
		})
	case recvIsCrossElem:
		if writesRecv(callee.sum) && !res.covered(c.elem) {
			r.findf(c.pos, "shardcheck", "call to %s mutates an element of %s reached without a shard key (annotate //simlint:shared <reason> if intended)", c.callee, c.elem)
		}
	}
}

func sortedRefs(m map[stateRef]bool) []stateRef {
	out := make([]stateRef, 0, len(m))
	for r := range m {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.pkg != b.pkg {
			return a.pkg < b.pkg
		}
		if a.typ != b.typ {
			return a.typ < b.typ
		}
		return a.field < b.field
	})
	return out
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
