// The exhaustive rule, in two halves.
//
// Zone-state switches: the ZNS zone state machine (internal/zns) is the
// spec-mandated core of the whole comparison; a switch over a zns enum type
// that silently ignores a state is exactly how an Offline zone ends up
// counted as writable. Any switch anywhere in the module whose tag is a
// named integer type declared in internal/zns must either list every
// declared constant of that type or carry a default clause.
//
// Experiment registry: every registered Experiment ID must be a string
// literal, so duplicates, malformed IDs, and series holes (E9 gone missing)
// are lint findings rather than a startup panic — statically subsuming the
// runtime core.CheckRegistry.

package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

func checkExhaustive(pkgs []*Package, rep func(*Package) *reporter) {
	for _, p := range pkgs {
		checkZoneSwitches(p, rep(p))
	}
	checkRegistryLiterals(pkgs, rep)
}

// ---------------------------------------------------------------------------
// Zone-state switch coverage.

// enumInfo is one checkable enum type: its display name and declared
// constants in value order.
type enumInfo struct {
	display string
	consts  []enumConst
}

type enumConst struct {
	name string
	val  constant.Value
}

// znsEnum resolves a switch tag type to a checkable zns enum, or nil. The
// defining package's scope is enumerated for constants of exactly this named
// type — this works identically whether the package was loaded from source
// or from export data.
func znsEnum(t types.Type) *enumInfo {
	n := namedOf(t)
	if n == nil || n.Obj().Pkg() == nil || !strings.HasSuffix(n.Obj().Pkg().Path(), "internal/zns") {
		return nil
	}
	b, ok := n.Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsInteger == 0 {
		return nil
	}
	info := &enumInfo{display: shortPkg(n.Obj().Pkg().Path()) + "." + n.Obj().Name()}
	scope := n.Obj().Pkg().Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok {
			continue
		}
		cn := namedOf(c.Type())
		if cn == nil || cn.Obj() != n.Obj() {
			continue
		}
		info.consts = append(info.consts, enumConst{name: name, val: c.Val()})
	}
	if len(info.consts) == 0 {
		return nil
	}
	sort.Slice(info.consts, func(i, j int) bool {
		if constant.Compare(info.consts[i].val, token.LSS, info.consts[j].val) {
			return true
		}
		if constant.Compare(info.consts[i].val, token.GTR, info.consts[j].val) {
			return false
		}
		return info.consts[i].name < info.consts[j].name
	})
	return info
}

func checkZoneSwitches(p *Package, r *reporter) {
	for _, f := range p.Files {
		ast.Inspect(f, func(nd ast.Node) bool {
			sw, ok := nd.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			tv, ok := p.Info.Types[sw.Tag]
			if !ok || tv.Type == nil {
				return true
			}
			enum := znsEnum(tv.Type)
			if enum == nil {
				return true
			}
			covered := make(map[string]bool)
			for _, cl := range sw.Body.List {
				cc, ok := cl.(*ast.CaseClause)
				if !ok {
					continue
				}
				if cc.List == nil {
					return true // default clause: exhaustive by construction
				}
				for _, x := range cc.List {
					v := p.Info.Types[x].Value
					if v == nil {
						return true // dynamic case expression: not checkable
					}
					for _, c := range enum.consts {
						if constant.Compare(v, token.EQL, c.val) {
							covered[c.name] = true
						}
					}
				}
			}
			var missing []string
			for _, c := range enum.consts {
				if !covered[c.name] {
					missing = append(missing, c.name)
				}
			}
			if len(missing) > 0 {
				r.findf(sw.Pos(), "exhaustive", "switch on %s does not cover %s — add the missing cases or a default",
					enum.display, strings.Join(missing, ", "))
			}
			return true
		})
	}
}

// ---------------------------------------------------------------------------
// Experiment-registry literal checks.

type regEntry struct {
	id  string
	pos token.Pos
	p   *Package
}

// checkRegistryLiterals finds every register(Experiment{...}) call and
// validates the ID space the way the runtime CheckRegistry does — but at
// lint time, against the literals.
func checkRegistryLiterals(pkgs []*Package, rep func(*Package) *reporter) {
	var entries []regEntry
	for _, p := range pkgs {
		for _, f := range p.Files {
			ast.Inspect(f, func(nd ast.Node) bool {
				call, ok := nd.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				fn := calleeOf(p, call)
				if fn == nil || !strings.EqualFold(fn.Name(), "register") {
					return true
				}
				lit := experimentLiteral(p, call.Args[0])
				if lit == nil {
					return true
				}
				idExpr := experimentIDExpr(p, lit)
				bl, isLit := idExpr.(*ast.BasicLit)
				if idExpr == nil || !isLit || bl.Kind != token.STRING {
					rep(p).findf(lit.Pos(), "exhaustive", "experiment ID in register(...) must be a string literal so the registry is statically checkable")
					return true
				}
				id, err := strconv.Unquote(bl.Value)
				if err != nil {
					return true
				}
				entries = append(entries, regEntry{id: id, pos: bl.Pos(), p: p})
				return true
			})
		}
	}
	if len(entries) == 0 {
		return
	}
	// Deterministic order: by source position.
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i].p.Fset.Position(entries[i].pos), entries[j].p.Fset.Position(entries[j].pos)
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	seen := make(map[string]regEntry)
	series := make(map[string][]seriesNum)
	for _, e := range entries {
		id := strings.ToUpper(e.id)
		if first, dup := seen[id]; dup {
			rep(e.p).findf(e.pos, "exhaustive", "duplicate experiment ID %q (first registered at %s)",
				e.id, relPos(first.p, first.pos))
			continue
		}
		seen[id] = e
		i := 0
		for i < len(id) && (id[i] < '0' || id[i] > '9') {
			i++
		}
		n, err := strconv.Atoi(id[i:])
		if err != nil || i == 0 || n <= 0 {
			rep(e.p).findf(e.pos, "exhaustive", "malformed experiment ID %q — want <series><number>, e.g. E4", e.id)
			continue
		}
		series[id[:i]] = append(series[id[:i]], seriesNum{n: n, e: e})
	}
	var names []string
	for s := range series {
		names = append(names, s)
	}
	sort.Strings(names)
	for _, s := range names {
		nums := series[s]
		sort.Slice(nums, func(i, j int) bool { return nums[i].n < nums[j].n })
		for i, sn := range nums {
			if sn.n != i+1 {
				rep(sn.e.p).findf(sn.e.pos, "exhaustive", "experiment series %s has a hole: %s%d is missing (have %s%d..%s%d)",
					s, s, i+1, s, nums[0].n, s, nums[len(nums)-1].n)
				break
			}
		}
	}
}

type seriesNum struct {
	n int
	e regEntry
}

func relPos(p *Package, pos token.Pos) string {
	position := p.Fset.Position(pos)
	name := position.Filename
	if i := strings.LastIndex(name, "/"); i >= 0 {
		name = name[i+1:]
	}
	return name + ":" + strconv.Itoa(position.Line)
}

// experimentLiteral unwraps arg to a composite literal of a struct type
// named Experiment, or nil.
func experimentLiteral(p *Package, arg ast.Expr) *ast.CompositeLit {
	arg = ast.Unparen(arg)
	if un, ok := arg.(*ast.UnaryExpr); ok && un.Op == token.AND {
		arg = ast.Unparen(un.X)
	}
	lit, ok := arg.(*ast.CompositeLit)
	if !ok {
		return nil
	}
	tv, ok := p.Info.Types[lit]
	if !ok || tv.Type == nil {
		return nil
	}
	n := namedOf(tv.Type)
	if n == nil || n.Obj().Name() != "Experiment" {
		return nil
	}
	if _, isStruct := n.Underlying().(*types.Struct); !isStruct {
		return nil
	}
	return lit
}

// experimentIDExpr extracts the ID field's value from the literal, keyed or
// positional.
func experimentIDExpr(p *Package, lit *ast.CompositeLit) ast.Expr {
	tv := p.Info.Types[lit]
	st, _ := namedOf(tv.Type).Underlying().(*types.Struct)
	keyed := false
	for _, el := range lit.Elts {
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			keyed = true
			if id, ok := kv.Key.(*ast.Ident); ok && id.Name == "ID" {
				return ast.Unparen(kv.Value)
			}
		}
	}
	if keyed || st == nil {
		return nil
	}
	for i := 0; i < st.NumFields() && i < len(lit.Elts); i++ {
		if st.Field(i).Name() == "ID" {
			return ast.Unparen(lit.Elts[i])
		}
	}
	return nil
}
