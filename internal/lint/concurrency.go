package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// checkConcurrency flags goroutines, channels, select, and sync primitives.
// The simulator is a single-threaded virtual-time event loop: concurrency in
// a model package would both break run-to-run determinism and invalidate the
// busy-until resource model. The only legitimate homes for goroutines are
// the HTTP telemetry server and the command/example binaries, which are
// scope-exempt (see concurrencyExempt).
func checkConcurrency(p *Package, rep *reporter) {
	if concurrencyExempt(p.Path) {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.GoStmt:
				rep.findf(e.Pos(), "concurrency",
					"go statement spawns a goroutine; the sim core is a single-threaded virtual-time loop (concurrency belongs in telemetry/httpserve and cmd/)")
			case *ast.SelectStmt:
				rep.findf(e.Pos(), "concurrency",
					"select statement implies channel concurrency; schedule virtual-time events on the sim loop instead")
			case *ast.SendStmt:
				rep.findf(e.Pos(), "concurrency",
					"channel send; the sim core communicates through direct calls in virtual-time order")
			case *ast.UnaryExpr:
				if e.Op == token.ARROW {
					rep.findf(e.Pos(), "concurrency",
						"channel receive; the sim core communicates through direct calls in virtual-time order")
				}
			case *ast.ChanType:
				rep.findf(e.Pos(), "concurrency",
					"channel type; the sim core is single-threaded and must not hold channels")
			case *ast.SelectorExpr:
				x, ok := e.X.(*ast.Ident)
				if !ok {
					return true
				}
				if pn, ok := p.Info.Uses[x].(*types.PkgName); ok {
					if pp := pn.Imported().Path(); pp == "sync" || pp == "sync/atomic" {
						rep.findf(e.Pos(), "concurrency",
							"%s.%s: the sim core is single-threaded and needs no synchronization", pp, e.Sel.Name)
					}
				}
			}
			return true
		})
	}
}
