package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// checkConcurrency flags goroutines, channels, select, and sync primitives.
// The simulator is a single-threaded virtual-time event loop: concurrency in
// a model package would both break run-to-run determinism and invalidate the
// busy-until resource model. The only legitimate homes for goroutines are
// the HTTP telemetry server and the command/example binaries, which are
// scope-exempt (see concurrencyExempt), and the shard scheduler
// (internal/sim/shard), which exists to run plain sim.Loops on goroutines
// and is held to a different contract instead: because its lanes do run
// concurrently, no function in the package may write package-level state —
// mutable state belongs on a lane or on the coordinator's merge path, where
// the deterministic-replay argument covers it.
func checkConcurrency(p *Package, rep *reporter) {
	if concurrencyExempt(p.Path) {
		return
	}
	if shardScheduler(p.Path) {
		checkShardGlobals(p, rep)
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.GoStmt:
				rep.findf(e.Pos(), "concurrency",
					"go statement spawns a goroutine; the sim core is a single-threaded virtual-time loop (concurrency belongs in telemetry/httpserve and cmd/)")
			case *ast.SelectStmt:
				rep.findf(e.Pos(), "concurrency",
					"select statement implies channel concurrency; schedule virtual-time events on the sim loop instead")
			case *ast.SendStmt:
				rep.findf(e.Pos(), "concurrency",
					"channel send; the sim core communicates through direct calls in virtual-time order")
			case *ast.UnaryExpr:
				if e.Op == token.ARROW {
					rep.findf(e.Pos(), "concurrency",
						"channel receive; the sim core communicates through direct calls in virtual-time order")
				}
			case *ast.ChanType:
				rep.findf(e.Pos(), "concurrency",
					"channel type; the sim core is single-threaded and must not hold channels")
			case *ast.SelectorExpr:
				x, ok := e.X.(*ast.Ident)
				if !ok {
					return true
				}
				if pn, ok := p.Info.Uses[x].(*types.PkgName); ok {
					if pp := pn.Imported().Path(); pp == "sync" || pp == "sync/atomic" {
						rep.findf(e.Pos(), "concurrency",
							"%s.%s: the sim core is single-threaded and needs no synchronization", pp, e.Sel.Name)
					}
				}
			}
			return true
		})
	}
}

// checkShardGlobals is the shard scheduler's side of the concurrency
// bargain: the package may spawn goroutines, but every write must land on
// lane- or coordinator-owned memory. A write whose access path roots in a
// package-level var is shared across lanes by construction and is a finding
// — the barrier-merge determinism proof only covers state threaded through
// the Loop and Lane structs.
func checkShardGlobals(p *Package, rep *reporter) {
	flag := func(lv ast.Expr, pos token.Pos) {
		if obj := rootPkgVar(p, lv); obj != nil {
			rep.findf(pos, "concurrency",
				"write to package-level %s from the shard scheduler; lanes run concurrently — state must live on the lane or the coordinator", obj.Name())
		}
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range st.Lhs {
					flag(lhs, st.Pos())
				}
			case *ast.IncDecStmt:
				flag(st.X, st.Pos())
			}
			return true
		})
	}
}

// rootPkgVar resolves an lvalue's access path (selectors, indexes, derefs)
// to its root identifier and returns that object if it is a package-level
// var — of this package or any other.
func rootPkgVar(p *Package, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			obj := p.Info.Uses[x]
			if obj == nil {
				obj = p.Info.Defs[x]
			}
			if obj != nil && isPkgVar(obj) {
				return obj
			}
			return nil
		default:
			return nil
		}
	}
}
