package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// wallFuncs lists, per package, the functions whose results depend on the
// wall clock or process identity. Referencing any of them (call or value)
// anywhere in the module is a determinism finding: every simulator quantity
// is virtual time, and legitimate wall-clock uses (the HTTP dashboard's
// publish throttle) carry an explicit //simlint:allow.
var wallFuncs = map[string]map[string]bool{
	"time": {
		"Now": true, "Since": true, "Until": true, "Sleep": true,
		"After": true, "AfterFunc": true, "Tick": true,
		"NewTimer": true, "NewTicker": true,
	},
	"os": {"Getpid": true, "Getppid": true},
}

// randCtors are the math/rand package-level functions that construct a
// seeded generator rather than reading the process-global source.
var randCtors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func checkDeterminism(p *Package, rep *reporter) {
	for _, f := range p.Files {
		checkEntropy(p, rep, f)
	}
	if isSimCore(p.Path) {
		checkMapRanges(p, rep)
	}
}

// checkEntropy flags wall-clock and entropy reads: selector references into
// the banned package-level surface of time, os, math/rand, and crypto/rand.
func checkEntropy(p *Package, rep *reporter, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		x, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := p.Info.Uses[x].(*types.PkgName)
		if !ok {
			return true
		}
		pkgPath := pn.Imported().Path()
		name := sel.Sel.Name
		switch {
		case wallFuncs[pkgPath][name]:
			what := "reads the wall clock"
			if pkgPath == "os" {
				what = "reads process identity"
			}
			rep.findf(sel.Pos(), "determinism",
				"%s.%s %s; the simulator runs in virtual time (sim.Time) and must be bit-identical across runs", pkgPath, name, what)
		case pkgPath == "crypto/rand":
			rep.findf(sel.Pos(), "determinism",
				"crypto/rand is nondeterministic entropy; use a seeded *math/rand.Rand")
		case pkgPath == "math/rand" || pkgPath == "math/rand/v2":
			// Methods on a seeded *rand.Rand are fine; only the package-level
			// functions backed by the shared global source are banned. Type
			// names (rand.Rand, rand.Zipf, ...) are fine too.
			if fn, ok := p.Info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && !randCtors[name] {
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil {
					rep.findf(sel.Pos(), "determinism",
						"%s.%s draws from the process-global random source; use a seeded *rand.Rand (rand.New(rand.NewSource(seed)))", pkgPath, name)
				}
			}
		}
		return true
	})
}

// checkMapRanges flags `range` over a map whose loop body has
// order-dependent effects. Go randomizes map iteration order per run, so any
// such loop in the sim core feeds nondeterminism straight into reports and
// victim selection. Loops whose bodies are order-insensitive — commutative
// accumulation, keyed writes, deletes, or the collect-keys-then-sort idiom —
// pass.
func checkMapRanges(p *Package, rep *reporter) {
	for _, f := range p.Files {
		// Function bodies, innermost located by span, give the scope in
		// which a collected slice must later be sorted.
		var bodies []*ast.BlockStmt
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					bodies = append(bodies, fn.Body)
				}
			case *ast.FuncLit:
				bodies = append(bodies, fn.Body)
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := p.Info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			encl := enclosingBody(bodies, rs)
			if !mapRangeOrderSafe(p, rs, encl) {
				rep.findf(rs.Pos(), "determinism",
					"iteration over map %s has order-dependent effects and map order is randomized per run; collect the keys, sort them, and iterate the sorted slice", exprString(rs.X))
			}
			return true
		})
	}
}

// enclosingBody returns the smallest function body containing rs.
func enclosingBody(bodies []*ast.BlockStmt, rs *ast.RangeStmt) *ast.BlockStmt {
	var best *ast.BlockStmt
	for _, b := range bodies {
		if b.Pos() <= rs.Pos() && rs.End() <= b.End() {
			if best == nil || (best.Pos() <= b.Pos() && b.End() <= best.End()) {
				best = b
			}
		}
	}
	return best
}

// mapRangeOrderSafe implements the order-insensitivity heuristic for one
// map-range loop.
func mapRangeOrderSafe(p *Package, rs *ast.RangeStmt, encl *ast.BlockStmt) bool {
	// Everything declared inside the loop (including the key/value
	// variables) is per-iteration state; writes to it are order-free.
	locals := make(map[types.Object]bool)
	ast.Inspect(rs, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := p.Info.Defs[id]; obj != nil {
				locals[obj] = true
			}
		}
		return true
	})
	c := &orderCheck{p: p, rs: rs, encl: encl, locals: locals}
	return c.blockSafe(rs.Body)
}

type orderCheck struct {
	p      *Package
	rs     *ast.RangeStmt
	encl   *ast.BlockStmt
	locals map[types.Object]bool
}

func (c *orderCheck) blockSafe(b *ast.BlockStmt) bool {
	for _, s := range b.List {
		if !c.stmtSafe(s) {
			return false
		}
	}
	return true
}

func (c *orderCheck) stmtSafe(s ast.Stmt) bool {
	switch st := s.(type) {
	case *ast.AssignStmt:
		return c.assignSafe(st)
	case *ast.IncDecStmt:
		return true // x++ is commutative wherever x lives
	case *ast.DeclStmt:
		return true
	case *ast.ExprStmt:
		// delete(m, k) commutes across distinct keys; any other
		// statement-level call may have order-dependent effects.
		if call, ok := st.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok {
				if b, ok := c.p.Info.Uses[id].(*types.Builtin); ok && b.Name() == "delete" {
					return true
				}
			}
		}
		return false
	case *ast.IfStmt:
		if st.Init != nil && !c.stmtSafe(st.Init) {
			return false
		}
		if !c.blockSafe(st.Body) {
			return false
		}
		if st.Else != nil {
			return c.stmtSafe(st.Else)
		}
		return true
	case *ast.BlockStmt:
		return c.blockSafe(st)
	case *ast.SwitchStmt:
		for _, cl := range st.Body.List {
			for _, cs := range cl.(*ast.CaseClause).Body {
				if !c.stmtSafe(cs) {
					return false
				}
			}
		}
		return true
	case *ast.TypeSwitchStmt:
		for _, cl := range st.Body.List {
			for _, cs := range cl.(*ast.CaseClause).Body {
				if !c.stmtSafe(cs) {
					return false
				}
			}
		}
		return true
	case *ast.ForStmt:
		if st.Init != nil && !c.stmtSafe(st.Init) {
			return false
		}
		if st.Post != nil && !c.stmtSafe(st.Post) {
			return false
		}
		return c.blockSafe(st.Body)
	case *ast.RangeStmt:
		// A nested map range is checked on its own; for the outer loop only
		// its body's effects matter.
		return c.blockSafe(st.Body)
	case *ast.BranchStmt:
		return st.Tok == token.BREAK || st.Tok == token.CONTINUE
	case *ast.ReturnStmt:
		// Returning a value chosen by map order (find-any) is
		// nondeterministic; a bare return is not.
		return len(st.Results) == 0
	case *ast.LabeledStmt:
		return c.stmtSafe(st.Stmt)
	default:
		return false
	}
}

func (c *orderCheck) assignSafe(as *ast.AssignStmt) bool {
	switch as.Tok {
	case token.DEFINE:
		return true
	case token.ADD_ASSIGN:
		// += commutes for numbers but concatenates for strings.
		if t := c.p.Info.TypeOf(as.Lhs[0]); t != nil {
			if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
				return false
			}
		}
		return true
	case token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN,
		token.MUL_ASSIGN, token.AND_NOT_ASSIGN:
		return true
	case token.ASSIGN:
		if c.isCollectAppend(as) {
			return true
		}
		for _, lhs := range as.Lhs {
			if !c.lvalueSafe(lhs) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// lvalueSafe reports whether a plain `=` write target is order-free: a
// per-iteration local, the blank identifier, an element keyed by
// per-iteration state (m2[k] = ..., arr[k] = ...), or a field of a local.
func (c *orderCheck) lvalueSafe(lhs ast.Expr) bool {
	switch l := lhs.(type) {
	case *ast.Ident:
		if l.Name == "_" {
			return true
		}
		return c.locals[c.p.Info.ObjectOf(l)]
	case *ast.IndexExpr:
		return c.mentionsLocal(l.Index)
	case *ast.SelectorExpr:
		if base, ok := l.X.(*ast.Ident); ok {
			return c.locals[c.p.Info.ObjectOf(base)]
		}
		return false
	default:
		return false
	}
}

func (c *orderCheck) mentionsLocal(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && c.locals[c.p.Info.ObjectOf(id)] {
			found = true
		}
		return !found
	})
	return found
}

// isCollectAppend recognizes `s = append(s, ...)` where s is sorted after
// the loop in the same function — the canonical deterministic-iteration fix.
func (c *orderCheck) isCollectAppend(as *ast.AssignStmt) bool {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	lhs, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	if b, ok := c.p.Info.Uses[fn].(*types.Builtin); !ok || b.Name() != "append" {
		return false
	}
	if len(call.Args) < 1 {
		return false
	}
	firstArg, ok := call.Args[0].(*ast.Ident)
	if !ok || c.p.Info.ObjectOf(firstArg) != c.p.Info.ObjectOf(lhs) {
		return false
	}
	return c.sortedAfterLoop(c.p.Info.ObjectOf(lhs))
}

// sortedAfterLoop looks for a sort.* or slices.* call mentioning obj after
// the loop within the enclosing function body.
func (c *orderCheck) sortedAfterLoop(obj types.Object) bool {
	if c.encl == nil || obj == nil {
		return false
	}
	found := false
	ast.Inspect(c.encl, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < c.rs.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		x, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := c.p.Info.Uses[x].(*types.PkgName)
		if !ok {
			return true
		}
		if pp := pn.Imported().Path(); pp != "sort" && pp != "slices" {
			return true
		}
		for _, a := range call.Args {
			if id, ok := a.(*ast.Ident); ok && c.p.Info.ObjectOf(id) == obj {
				found = true
			}
		}
		return !found
	})
	return found
}
