// simlint -fix-dryrun: list the findings the tool knows how to fix
// mechanically, with the fix it would apply. No file is modified — the
// project's fixes go through review like everything else; the dry run exists
// so a wall of nilguard/exhaustive findings can be triaged as "mechanical"
// vs "think about it".

package lint

import (
	"fmt"
	"regexp"
)

var (
	nilGuardMsgRe  = regexp.MustCompile("exported method \\(\\*([A-Za-z0-9_]+)\\)\\.([A-Za-z0-9_]+) must start with a nil-receiver guard \\(`if ([A-Za-z0-9_]+) == nil")
	missingCasesRe = regexp.MustCompile("switch on ([A-Za-z0-9_.]+) does not cover ([A-Za-z0-9_, ]+) —")
)

// FixDryRun renders the auto-fixable subset of findings as the edits a fixer
// would make: guard-first nil checks and missing switch cases.
func FixDryRun(findings []Finding, root string) []string {
	var out []string
	for _, f := range findings {
		loc := fmt.Sprintf("%s:%d", relFile(f.Pos.Filename, root), f.Pos.Line)
		switch f.Rule {
		case "nilguard":
			if m := nilGuardMsgRe.FindStringSubmatch(f.Msg); m != nil {
				out = append(out, fmt.Sprintf("%s: [nilguard] would insert guard-first `if %s == nil { return ... }` at the top of (*%s).%s", loc, m[3], m[1], m[2]))
			}
		case "exhaustive":
			if m := missingCasesRe.FindStringSubmatch(f.Msg); m != nil {
				out = append(out, fmt.Sprintf("%s: [exhaustive] would add `case %s:` to the switch on %s", loc, m[2], m[1]))
			}
		}
	}
	return out
}
