// The pairing rule: AttrSink bracket discipline as a path property. The
// attribution engine's runtime invariants (sum(phases) == latency,
// sum(blame) == sum(stalls)) hold only if every Begin reaches End/Drop on
// every path, Suspend/Resume and PushWorker/PopWorker balance on every path
// including early returns, and charges land inside an open bracket. The
// runtime panics when they don't — this rule moves the check to lint time by
// running the cfg.go path engine over every sim-core function that touches
// the bracket protocol.

package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// attrSinkOp classifies a call as a bracket op when its static callee is a
// method of the telemetry AttrSink type.
func attrSinkOp(p *Package, call *ast.CallExpr) opKind {
	fn := calleeOf(p, call)
	if fn == nil {
		return builtinTerminator(p, call)
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return funcTerminator(fn)
	}
	n := namedOf(sig.Recv().Type())
	if n == nil || n.Obj().Name() != "AttrSink" || n.Obj().Pkg() == nil ||
		!strings.HasSuffix(n.Obj().Pkg().Path(), "telemetry") {
		return opNone
	}
	switch fn.Name() {
	case "Begin", "BeginTenant":
		return opBegin
	case "End", "Drop":
		return opEnd
	case "Suspend":
		return opSuspend
	case "Resume":
		return opResume
	case "PushWorker":
		return opPush
	case "PopWorker":
		return opPop
	case "Charge", "ChargeBlamed", "ChargeWaitBlamed", "Reclassify", "Refund":
		return opCharge
	}
	return opNone
}

// builtinTerminator recognizes panic: a path that panics is not required to
// close its brackets (the run is over).
func builtinTerminator(p *Package, call *ast.CallExpr) opKind {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return opNone
	}
	if b, ok := p.Info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
		return opTerminate
	}
	return opNone
}

// funcTerminator recognizes the non-returning stdlib exits.
func funcTerminator(fn *types.Func) opKind {
	if fn.Pkg() == nil {
		return opNone
	}
	switch fn.Pkg().Path() {
	case "os":
		if fn.Name() == "Exit" {
			return opTerminate
		}
	case "log":
		if strings.HasPrefix(fn.Name(), "Fatal") || strings.HasPrefix(fn.Name(), "Panic") {
			return opTerminate
		}
	case "runtime":
		if fn.Name() == "Goexit" {
			return opTerminate
		}
	}
	return opNone
}

// declaresAttrSink reports whether the package defines the AttrSink type
// itself — its method bodies implement the protocol rather than follow it.
func declaresAttrSink(p *Package) bool {
	obj := p.Types.Scope().Lookup("AttrSink")
	_, ok := obj.(*types.TypeName)
	return ok
}

// bodyOps summarizes which bracket ops a body contains, not counting nested
// function literals (they are analyzed as functions of their own).
type bodyOps struct {
	bracket bool // any Begin/End/Suspend/Resume/Push/Pop
	opener  bool // any Begin/BeginTenant/Suspend/PushWorker
	begin   bool // any Begin/BeginTenant
}

func scanOps(p *Package, body *ast.BlockStmt) bodyOps {
	var ops bodyOps
	ast.Inspect(body, func(nd ast.Node) bool {
		if _, isLit := nd.(*ast.FuncLit); isLit {
			return false
		}
		call, ok := nd.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch attrSinkOp(p, call) {
		case opBegin:
			ops.bracket, ops.opener, ops.begin = true, true, true
		case opSuspend, opPush:
			ops.bracket, ops.opener = true, true
		case opEnd, opResume, opPop:
			ops.bracket = true
		}
		return true
	})
	return ops
}

// checkPairing runs the path analysis over every sim-core function (and
// function literal) that participates in the bracket protocol. Functions
// containing only charges are skipped: they charge inside a bracket their
// caller opened, which is the protocol working as designed.
func checkPairing(m *module, rep func(*Package) *reporter) {
	for _, k := range m.order {
		n := m.funcs[k]
		if !isSimCore(n.pkg.Path) || declaresAttrSink(n.pkg) {
			continue
		}
		pairBody(n.pkg, rep, n.decl.Body)
		// Nested literals with openers are their own protocol scopes. A
		// closer-only literal is a deferred/callback fragment of the
		// enclosing protocol and is covered there (via defer effects).
		ast.Inspect(n.decl.Body, func(nd ast.Node) bool {
			if fl, ok := nd.(*ast.FuncLit); ok {
				if scanOps(n.pkg, fl.Body).opener {
					pairBody(n.pkg, rep, fl.Body)
				}
			}
			return true
		})
	}
}

func pairBody(p *Package, rep func(*Package) *reporter, body *ast.BlockStmt) {
	ops := scanOps(p, body)
	if !ops.bracket {
		return
	}
	e := &pengine{
		pkg:         p,
		classify:    func(c *ast.CallExpr) opKind { return attrSinkOp(p, c) },
		checkCharge: ops.begin,
	}
	out := e.run(body)
	e.checkExit(body.Rbrace, out)
	e.flush(rep(p))
}
