// Tests for the v2 interprocedural suite: the affinity-report contract the
// parallel core will build on, the findings baseline, and the dry-run fixer.
package lint

import (
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestPairingModuleClean pins the result of the bracket-discipline sweep
// over the real module: the AttrSink call sites in internal/core,
// internal/ftl, and internal/hostftl all close their brackets on every
// path. A future leak fails here with only the pairing findings, instead
// of drowning in the whole-module wall of TestModuleIsClean.
func TestPairingModuleClean(t *testing.T) {
	pkgs, err := LoadModule("../..", []string{"./..."})
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	for _, f := range Check(pkgs) {
		if f.Rule == "pairing" {
			t.Errorf("%s", f)
		}
	}
}

// TestAffinityReportDeterministic is the affinity report's acceptance bar:
// two fresh loads render byte-identical reports (the parallel-core
// carve-out contract is stable), the FEMU-style per-LUN timing state is
// classified shard-local, and nothing crosses shards unannotated.
func TestAffinityReportDeterministic(t *testing.T) {
	run := func() string {
		pkgs, err := LoadModule("../..", []string{"./internal/sim", "./internal/flash"})
		if err != nil {
			t.Fatalf("loading module: %v", err)
		}
		return AffinityReport(pkgs)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("affinity report is not deterministic across two runs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
	}
	for _, re := range []string{
		`(?m)^\s*per-lun\s+flash\.Device\.luns\b`,
		`(?m)^\s*per-block\s+flash\.Device\.blocks\b`,
		`(?m)^\s*per-chan\s+flash\.Device\.chans\b`,
		`(?m)^\s*unannotated cross-shard writes: 0$`,
	} {
		if !regexp.MustCompile(re).MatchString(a) {
			t.Errorf("affinity report does not match %s; report:\n%s", re, a)
		}
	}
}

// TestBaselineDiff checks the diff semantics the lint gate relies on:
// matching is line-insensitive (edits that shift a baselined finding do not
// churn), multiset (a second identical finding is still new), and stale
// entries surface so the baseline can only shrink deliberately.
func TestBaselineDiff(t *testing.T) {
	cur := []JSONFinding{
		{File: "a.go", Line: 10, Rule: "determinism", Msg: "wall clock"},
		{File: "a.go", Line: 44, Rule: "determinism", Msg: "wall clock"},
		{File: "b.go", Line: 5, Rule: "pairing", Msg: "leaked bracket"},
	}
	base := &BaselineFile{Version: BaselineVersion, Findings: []JSONFinding{
		{File: "a.go", Line: 99, Rule: "determinism", Msg: "wall clock"},
		{File: "c.go", Line: 1, Rule: "tickunit", Msg: "gone now"},
	}}
	fresh, stale := DiffBaseline(cur, base)
	if len(fresh) != 2 {
		t.Fatalf("fresh = %v, want the second a.go finding and the b.go finding", fresh)
	}
	if fresh[0].File != "a.go" || fresh[0].Line != 44 || fresh[1].File != "b.go" {
		t.Errorf("fresh = %v, want [a.go:44 b.go:5]", fresh)
	}
	if len(stale) != 1 || stale[0].File != "c.go" {
		t.Fatalf("stale = %v, want the c.go entry", stale)
	}
}

// TestBaselineRoundTrip writes a baseline, loads it back, and diffs it
// against the same findings: no churn. It also checks the version gate and
// that an empty baseline encodes findings as [] rather than null.
func TestBaselineRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "baseline.json")
	cur := []JSONFinding{
		{File: "internal/x/x.go", Line: 7, Rule: "shardcheck", Msg: "cross-shard write"},
	}
	if err := os.WriteFile(path, EncodeJSON(cur), 0o644); err != nil {
		t.Fatal(err)
	}
	base, err := LoadBaseline(path)
	if err != nil {
		t.Fatalf("loading baseline back: %v", err)
	}
	if fresh, stale := DiffBaseline(cur, base); len(fresh) != 0 || len(stale) != 0 {
		t.Errorf("round trip churned: fresh=%v stale=%v", fresh, stale)
	}

	if got := string(EncodeJSON(nil)); !strings.Contains(got, `"findings": []`) {
		t.Errorf("empty baseline encodes findings as null, want []:\n%s", got)
	}

	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"version":"simlint/v0","findings":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBaseline(bad); err == nil {
		t.Error("LoadBaseline accepted a wrong-version document")
	}
}

// TestFixDryRun checks the dry-run fixer renders the mechanical subset —
// nilguard inserts and missing switch cases — and passes over everything
// it cannot fix.
func TestFixDryRun(t *testing.T) {
	findings := []Finding{
		{
			Pos:  token.Position{Filename: "/mod/internal/telemetry/t.go", Line: 3},
			Rule: "nilguard",
			Msg:  "exported method (*Counter).Add must start with a nil-receiver guard (`if c == nil { return }`) so a nil instrument stays a no-op",
		},
		{
			Pos:  token.Position{Filename: "/mod/internal/zns/z.go", Line: 9},
			Rule: "exhaustive",
			Msg:  "switch on zns.ZoneState does not cover Closed, Full — add the missing cases or a default",
		},
		{
			Pos:  token.Position{Filename: "/mod/internal/sim/s.go", Line: 1},
			Rule: "shardcheck",
			Msg:  "write to sim.Loop.now (class instance) from a per-LUN path",
		},
	}
	got := FixDryRun(findings, "/mod")
	want := []string{
		"internal/telemetry/t.go:3: [nilguard] would insert guard-first `if c == nil { return ... }` at the top of (*Counter).Add",
		"internal/zns/z.go:9: [exhaustive] would add `case Closed, Full:` to the switch on zns.ZoneState",
	}
	if len(got) != len(want) {
		t.Fatalf("FixDryRun = %q, want %q", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("line %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestSimlintJSONGolden pins the committed baseline: `simlint -json ./...`
// over the clean module must reproduce LINT_BASELINE.json byte-for-byte,
// so the machine-readable format and the zero-findings state are both
// golden-filed.
func TestSimlintJSONGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("execs the go toolchain")
	}
	cmd := exec.Command("go", "run", "./cmd/simlint", "-json", "./...")
	cmd.Dir = "../.."
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("go run ./cmd/simlint -json ./... failed: %v\n%s", err, out)
	}
	golden, err := os.ReadFile("../../LINT_BASELINE.json")
	if err != nil {
		t.Fatalf("reading committed baseline: %v", err)
	}
	if string(out) != string(golden) {
		t.Errorf("simlint -json drifted from LINT_BASELINE.json:\n--- got ---\n%s--- want ---\n%s", out, golden)
	}
}
