package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// checkTickUnit enforces tick hygiene. Sim quantities are sim.Time ticks
// (virtual nanoseconds); time.Duration is a wall-clock unit. Mixing the two
// compiles — Go happily converts between the named int64 types — but a
// Duration smuggled into tick arithmetic couples the model to wall-clock
// constants and invites ns/ms unit confusion. Two sub-checks:
//
//   - module-wide: no direct conversion between time.Duration and sim.Time
//     in either direction. Boundary code (flag parsing in cmd/) converts
//     explicitly through integer nanoseconds: sim.Time(d.Nanoseconds()).
//   - sim-core: no time.Duration values or declarations at all.
func checkTickUnit(p *Package, rep *reporter) {
	core := isSimCore(p.Path)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			tv, ok := p.Info.Types[call.Fun]
			if !ok || !tv.IsType() {
				return true
			}
			dst := tv.Type
			src := p.Info.TypeOf(call.Args[0])
			if src == nil {
				return true
			}
			if isSimTime(dst) && isDuration(src) {
				rep.findf(call.Pos(), "tickunit",
					"direct conversion %s from time.Duration; convert explicitly through integer nanoseconds (sim.Time(d.Nanoseconds())) at the boundary", exprString(call))
			}
			if isDuration(dst) && isSimTime(src) {
				rep.findf(call.Pos(), "tickunit",
					"direct conversion %s from sim.Time ticks to time.Duration; ticks are virtual time, not wall time", exprString(call))
			}
			return true
		})
		if !core {
			continue
		}
		// Flag the outermost Duration-typed expression (or type expression)
		// so `5 * time.Millisecond` reports once, not three times.
		ast.Inspect(f, func(n ast.Node) bool {
			e, ok := n.(ast.Expr)
			if !ok {
				return true
			}
			if t := p.Info.TypeOf(e); t != nil && isDuration(t) {
				rep.findf(e.Pos(), "tickunit",
					"time.Duration in a sim-core package; durations here are sim.Time ticks — keep wall-duration types at the cmd/telemetry boundary")
				return false
			}
			return true
		})
	}
}

func isDuration(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "time" && obj.Name() == "Duration"
}

func isSimTime(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && strings.HasSuffix(obj.Pkg().Path(), "internal/sim") && obj.Name() == "Time"
}
