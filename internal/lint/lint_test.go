package lint

import (
	"fmt"
	"os/exec"
	"regexp"
	"testing"
)

// wantRe matches an expectation comment: `// want "..."` with one or more
// backquoted regexps, optionally offset to a following line (`// want +1`)
// for findings that land on a directive comment's own line.
var (
	wantRe = regexp.MustCompile("//\\s*want(?:\\s+\\+(\\d+))?((?:\\s+`[^`]*`)+)")
	patRe  = regexp.MustCompile("`([^`]*)`")
)

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// TestFixtures runs the full rule suite over the testdata tree and checks
// the findings against the `// want` expectations embedded in the fixtures:
// every expectation must be produced, and every finding must be expected.
func TestFixtures(t *testing.T) {
	pkgs, err := LoadTree("testdata/src")
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	if len(pkgs) < 9 {
		t.Fatalf("loaded %d fixture packages, want >= 9", len(pkgs))
	}
	var wants []*expectation
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := p.Fset.Position(c.Pos())
					line := pos.Line
					if m[1] != "" {
						var off int
						fmt.Sscanf(m[1], "%d", &off)
						line += off
					}
					for _, pm := range patRe.FindAllStringSubmatch(m[2], -1) {
						wants = append(wants, &expectation{
							file: pos.Filename,
							line: line,
							re:   regexp.MustCompile(pm[1]),
						})
					}
				}
			}
		}
	}
	if len(wants) == 0 {
		t.Fatal("no // want expectations found in testdata")
	}
	findings := Check(pkgs)
	for _, f := range findings {
		rendered := fmt.Sprintf("[%s] %s", f.Rule, f.Msg)
		matched := false
		for _, w := range wants {
			if w.file == f.Pos.Filename && w.line == f.Pos.Line && w.re.MatchString(rendered) {
				w.matched = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected finding matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// TestFixturesCoverEveryRule guards the acceptance criterion that each rule
// class has at least one positive fixture.
func TestFixturesCoverEveryRule(t *testing.T) {
	pkgs, err := LoadTree("testdata/src")
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	got := map[string]int{}
	for _, f := range Check(pkgs) {
		got[f.Rule]++
	}
	for _, r := range Rules() {
		if got[r.Name] == 0 {
			t.Errorf("rule %s has no positive fixture finding", r.Name)
		}
	}
}

// TestModuleIsClean is the static half of the determinism pin: the real
// module must produce zero findings — every deliberate exemption is
// annotated and justified.
func TestModuleIsClean(t *testing.T) {
	pkgs, err := LoadModule("../..", []string{"./..."})
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded %d packages, want the whole module", len(pkgs))
	}
	for _, f := range Check(pkgs) {
		t.Errorf("%s", f)
	}
}

// TestSimlintCLIExitsZero runs the actual CLI the Makefile runs.
func TestSimlintCLIExitsZero(t *testing.T) {
	if testing.Short() {
		t.Skip("execs the go toolchain")
	}
	cmd := exec.Command("go", "run", "./cmd/simlint", "./...")
	cmd.Dir = "../.."
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run ./cmd/simlint ./... failed: %v\n%s", err, out)
	}
}
