// Machine-readable output and the findings baseline. The baseline makes
// suppression debt explicit: LINT_BASELINE.json holds the accepted findings
// (ideally none), `simlint -baseline` fails on anything new AND on stale
// entries, so the file can only shrink deliberately — regenerate it with
// -write-baseline and review the diff.

package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// BaselineVersion identifies the JSON schema.
const BaselineVersion = "simlint/v1"

// JSONFinding is one finding in -json / baseline form. File is
// module-relative so the baseline is stable across checkouts.
type JSONFinding struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Rule string `json:"rule"`
	Msg  string `json:"msg"`
}

// BaselineFile is the -json document and the committed baseline format.
type BaselineFile struct {
	Version  string        `json:"version"`
	Findings []JSONFinding `json:"findings"`
}

// ToJSONFindings converts findings to the relative-path JSON form.
func ToJSONFindings(findings []Finding, root string) []JSONFinding {
	out := make([]JSONFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, JSONFinding{
			File: relFile(f.Pos.Filename, root),
			Line: f.Pos.Line,
			Rule: f.Rule,
			Msg:  f.Msg,
		})
	}
	return out
}

func relFile(name, root string) string {
	if root == "" {
		return name
	}
	if rel, err := filepath.Rel(root, name); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return name
}

// EncodeJSON renders the simlint/v1 document, indented, newline-terminated.
func EncodeJSON(findings []JSONFinding) []byte {
	if findings == nil {
		findings = []JSONFinding{}
	}
	doc := BaselineFile{Version: BaselineVersion, Findings: findings}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		panic(err) // plain structs cannot fail to marshal
	}
	return append(b, '\n')
}

// LoadBaseline reads and validates a baseline file.
func LoadBaseline(path string) (*BaselineFile, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc BaselineFile
	if err := json.Unmarshal(b, &doc); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if doc.Version != BaselineVersion {
		return nil, fmt.Errorf("%s: version %q, want %q", path, doc.Version, BaselineVersion)
	}
	return &doc, nil
}

// DiffBaseline compares current findings against the baseline. Matching is
// by (file, rule, msg) — line-insensitive, so unrelated edits that shift a
// baselined finding do not churn the diff — and multiset, so a second
// identical finding in the same file still counts as new. It returns the
// findings not covered by the baseline and the baseline entries no longer
// produced; both fail the lint gate.
func DiffBaseline(cur []JSONFinding, base *BaselineFile) (fresh, stale []JSONFinding) {
	type key struct{ file, rule, msg string }
	budget := make(map[key]int)
	for _, f := range base.Findings {
		budget[key{f.File, f.Rule, f.Msg}]++
	}
	for _, f := range cur {
		k := key{f.File, f.Rule, f.Msg}
		if budget[k] > 0 {
			budget[k]--
			continue
		}
		fresh = append(fresh, f)
	}
	// Whatever budget remains was baselined but not produced: stale entries.
	for _, f := range base.Findings {
		k := key{f.File, f.Rule, f.Msg}
		if budget[k] > 0 {
			budget[k]--
			stale = append(stale, f)
		}
	}
	return fresh, stale
}
