// Positive pairing fixtures: each function breaks the AttrSink bracket
// discipline on some path.
package ftl

import "pairfix/internal/telemetry"

type Dev struct {
	attr *telemetry.AttrSink
}

// ReadMiss leaks the bracket on the early-error return.
func (d *Dev) ReadMiss(n int) int {
	d.attr.Begin(1)
	if n < 0 {
		return -1 // want `\[pairing\] AttrSink Begin does not reach End/Drop on this path`
	}
	d.attr.End()
	return n
}

// SuspendLeak returns early without resuming.
func (d *Dev) SuspendLeak(n int) {
	d.attr.Suspend()
	if n > 0 {
		return // want `\[pairing\] AttrSink Suspend is not balanced by Resume on this path`
	}
	d.attr.Resume()
}

// PopTwice pops a worker identity it never pushed.
func (d *Dev) PopTwice() {
	d.attr.PushWorker(1)
	d.attr.PopWorker()
	d.attr.PopWorker() // want `\[pairing\] AttrSink PopWorker without a matching PushWorker`
}

// ChargeEarly charges before the bracket opens.
func (d *Dev) ChargeEarly() {
	d.attr.Charge(0, 5) // want `\[pairing\] AttrSink charge before Begin opened the bracket`
	d.attr.Begin(2)
	d.attr.End()
}

// Nested opens a second bracket inside the first and charges after the
// close.
func (d *Dev) Nested() {
	d.attr.Begin(3)
	d.attr.Begin(4) // want `\[pairing\] nested AttrSink Begin`
	d.attr.End()
	d.attr.End()
	d.attr.Charge(0, 1) // want `\[pairing\] AttrSink charge after the bracket was closed`
}
