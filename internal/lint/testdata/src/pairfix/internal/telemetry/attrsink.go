// Package telemetry mirrors the real attribution sink's bracket protocol
// surface. The pairing rule exempts the package that declares AttrSink —
// these method bodies implement the protocol rather than follow it.
package telemetry

// TenantID mirrors the real tenant identity.
type TenantID uint16

// Phase mirrors the real latency phase enum.
type Phase uint8

// AttrSink is the mini bracket-protocol sink the pairing fixtures call.
type AttrSink struct {
	depth, susp, work int
}

// Begin opens a per-IO bracket.
func (s *AttrSink) Begin(seq uint64) {
	if s == nil {
		return
	}
	s.depth++
}

// BeginTenant opens a per-IO bracket tagged with a tenant.
func (s *AttrSink) BeginTenant(seq uint64, t TenantID) {
	if s == nil {
		return
	}
	s.depth++
}

// End closes the bracket.
func (s *AttrSink) End() {
	if s == nil {
		return
	}
	s.depth--
}

// Drop abandons the bracket.
func (s *AttrSink) Drop() {
	if s == nil {
		return
	}
	s.depth--
}

// Charge attributes ticks to a phase.
func (s *AttrSink) Charge(p Phase, ticks int64) {
	if s == nil {
		return
	}
	_ = p
}

// ChargeBlamed attributes ticks to a phase, blaming a culprit.
func (s *AttrSink) ChargeBlamed(p Phase, ticks int64, t TenantID) {
	if s == nil {
		return
	}
	_ = p
}

// Suspend pauses per-IO attribution.
func (s *AttrSink) Suspend() {
	if s == nil {
		return
	}
	s.susp++
}

// Resume resumes per-IO attribution.
func (s *AttrSink) Resume() {
	if s == nil {
		return
	}
	s.susp--
}

// PushWorker stamps reclamation fan-out with a worker identity.
func (s *AttrSink) PushWorker(t TenantID) {
	if s == nil {
		return
	}
	s.work++
}

// PopWorker pops the worker identity.
func (s *AttrSink) PopWorker() {
	if s == nil {
		return
	}
	s.work--
}
