// Positive exhaustive fixtures for the experiment registry: duplicate,
// malformed, holed, and non-literal IDs.
package core

// Experiment mirrors the real registry entry.
type Experiment struct {
	ID    string
	Title string
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

var idFromVar = "X9"

func init() {
	register(Experiment{ID: "X1", Title: "first"})
	register(Experiment{ID: "x1", Title: "case-insensitive dup"}) // want `\[exhaustive\] duplicate experiment ID "x1"`
	register(Experiment{ID: "bad", Title: "no number"})           // want `\[exhaustive\] malformed experiment ID "bad"`
	register(Experiment{ID: "Q2", Title: "series hole"})          // want `\[exhaustive\] experiment series Q has a hole: Q1 is missing`
	register(Experiment{ID: idFromVar, Title: "not a literal"})   // want `\[exhaustive\] experiment ID in register\(\.\.\.\) must be a string literal`
}
