// Positive exhaustive fixture: a switch over the zone-state enum that
// silently ignores states.
package zns

// ZoneState mirrors the real zone state machine enum.
type ZoneState int

// The mirrored state table.
const (
	Empty ZoneState = iota
	Open
	Closed
	Full
)

// Writable forgets the Closed and Full states.
func Writable(s ZoneState) bool {
	switch s { // want `\[exhaustive\] switch on zns\.ZoneState does not cover Closed, Full`
	case Empty:
		return true
	case Open:
		return true
	}
	return false
}
