// Negative pairing fixtures: bracket discipline held on every path — defer
// closing, early returns, loops re-opening per iteration, helper functions
// that only balance Suspend/Resume around fan-out.
package ftl

import "pairfix/internal/telemetry"

type Dev struct {
	attr *telemetry.AttrSink
}

// Read brackets with a deferred End so the early return stays balanced.
func (d *Dev) Read(n int) int {
	d.attr.Begin(uint64(n))
	defer d.attr.End()
	if n < 0 {
		return -1
	}
	d.attr.Charge(0, int64(n))
	return n
}

// Reclaim balances worker identity and suspension around fan-out; its
// charges land in the bracket its caller opened.
func (d *Dev) Reclaim(parts []int) {
	d.attr.PushWorker(1)
	d.attr.Suspend()
	for _, p := range parts {
		if p == 0 {
			continue
		}
		d.attr.ChargeBlamed(1, int64(p), 1)
	}
	d.attr.Resume()
	d.attr.PopWorker()
}

// Retry opens and closes a fresh bracket every iteration.
func (d *Dev) Retry(n int) {
	for i := 0; i < n; i++ {
		d.attr.Begin(uint64(i))
		switch {
		case i%2 == 0:
			d.attr.Charge(0, 1)
		default:
		}
		d.attr.End()
	}
}

// Abort drops the bracket on the failure path and ends it on success.
func (d *Dev) Abort(fail bool) {
	d.attr.Begin(9)
	if fail {
		d.attr.Drop()
		return
	}
	d.attr.Charge(2, 7)
	d.attr.End()
}
