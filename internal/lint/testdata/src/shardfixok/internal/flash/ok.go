// Negative shardcheck fixtures: per-LUN context functions whose every write
// is shard-keyed (directly, through an element alias, or via a derived
// index), with the one aggregate carved out by an annotated reason, and a
// constructor whose whole-object setup writes are exempt.
package flash

type Geometry struct{ Channels, DiesPerChan int }

func (g Geometry) LUNOfBlock(block int) int { return block % (g.Channels * g.DiesPerChan) }
func (g Geometry) ChannelOfLUN(lun int) int { return lun % g.Channels }

type blockState struct {
	erases uint32
	sealed bool
}

type Dev struct {
	geom     Geometry
	lunBusy  []int64
	chanBusy []int64
	blocks   []blockState

	//simlint:shared commutative op total: per-shard counts merge by summing at barriers
	totalOps int64
}

// New's whole-object writes are construction, not hot-path evidence.
func New(g Geometry, blocks int) *Dev {
	d := &Dev{geom: g}
	d.lunBusy = make([]int64, g.Channels*g.DiesPerChan)
	d.chanBusy = make([]int64, g.Channels)
	d.blocks = make([]blockState, blocks)
	return d
}

// Program touches only state keyed by the lun, channel, or block in hand.
func (d *Dev) Program(block int) {
	lun := d.geom.LUNOfBlock(block)
	ch := d.geom.ChannelOfLUN(lun)
	b := &d.blocks[block]
	b.erases++
	b.sealed = false
	d.lunBusy[lun]++
	d.chanBusy[ch]++
	d.totalOps++
}
