// Package flash fixtures: the tickunit rule inside a sim-core package —
// wall-duration types and direct Duration<->Time conversions are findings;
// pure tick arithmetic passes.
package flash

import (
	"time"

	"blockhead/internal/sim"
)

const pageRead sim.Time = 25_000

// ticksPerOp is pure tick arithmetic — no finding.
func ticksPerOp(n int64) sim.Time {
	return pageRead * sim.Time(n)
}

func fromWall(d time.Duration) sim.Time { // want `\[tickunit\] time\.Duration in a sim-core package`
	return sim.Time(d) // want `\[tickunit\] direct conversion`
}

func toWall(t sim.Time) time.Duration { // want `\[tickunit\] time\.Duration in a sim-core package`
	return time.Duration(t) // want `\[tickunit\] direct conversion`
}
