// Package ftl fixtures: the determinism rule inside a sim-core package —
// wall-clock reads, the global rand source, and order-dependent map
// iteration are findings; seeded rand and order-insensitive iteration pass.
package ftl

import (
	"math/rand"
	"sort"
	"time"
)

func wallClock() int64 {
	return time.Now().UnixNano() // want `\[determinism\] time\.Now reads the wall clock`
}

func globalRand() int {
	return rand.Intn(8) // want `\[determinism\] math/rand\.Intn draws from the process-global random source`
}

// seeded uses an explicitly seeded generator — reproducible, no finding.
func seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(8)
}

// leakOrder feeds map iteration order straight into its output slice.
func leakOrder(m map[int]int) []int {
	var out []int
	for k := range m { // want `\[determinism\] iteration over map m`
		out = append(out, k)
	}
	return out
}

// sortedKeys is the canonical fix: collect, sort, then use — no finding.
func sortedKeys(m map[int]int) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// total only accumulates commutatively — order-insensitive, no finding.
func total(m map[int]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// findAny returns a value chosen by map order — nondeterministic.
func findAny(m map[int]int) int {
	for _, v := range m { // want `\[determinism\] iteration over map m`
		if v > 0 {
			return v
		}
	}
	return 0
}
