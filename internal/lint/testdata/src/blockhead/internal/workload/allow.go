// Package workload fixtures: the allow meta-rule — the linter lints its own
// escape hatch. A justified allow silences its finding; a reason-less,
// unknown-rule, or unused allow is itself a finding.
package workload

import "time"

// justified names a rule and carries a reason: the wall-clock read below is
// silenced and the directive counts as used — no finding.
func justified() int64 {
	return time.Now().UnixNano() //simlint:allow determinism fixture: justified exemption with a reason
}

// want +2 `\[allow\] //simlint:allow determinism is missing a reason`
//
//simlint:allow determinism
func unjustified() int64 { return time.Now().UnixNano() }

// want +2 `\[allow\] unknown rule "walltime"`
//
//simlint:allow walltime not a real rule
func unknownRule() int64 {
	return time.Now().UnixNano() // want `\[determinism\] time\.Now reads the wall clock`
}

// want +2 `\[allow\] unused //simlint:allow concurrency`
//
//simlint:allow concurrency nothing concurrent happens here
func unused() int {
	return 1
}
