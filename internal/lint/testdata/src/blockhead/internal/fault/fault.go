// Package fault fixtures: the injector is part of the simulator core, so the
// nilguard contract (//simlint:nilsafe) and the map-iteration rule both
// apply. The nil *Injector must behave as "no faults" on every method.
package fault

// Injector mirrors the real fault injector's nil-safe contract.
//
//simlint:nilsafe
type Injector struct {
	reads  uint64
	counts map[string]uint64
}

// Reads is guarded — compliant.
func (i *Injector) Reads() uint64 {
	if i == nil {
		return 0
	}
	return i.reads
}

// Bump dereferences the receiver with no guard.
func (i *Injector) Bump() { // want `\[nilguard\] exported method \(\*Injector\)\.Bump`
	i.reads++
}

// Names leaks map iteration order into its output — nondeterministic
// inside the sim core.
func (i *Injector) Names() []string {
	if i == nil {
		return nil
	}
	var out []string
	for k := range i.counts { // want `\[determinism\] iteration over map i\.counts`
		out = append(out, k)
	}
	return out
}

// Total only accumulates commutatively — order-insensitive, no finding.
func (i *Injector) Total() uint64 {
	if i == nil {
		return 0
	}
	var sum uint64
	for _, v := range i.counts {
		sum += v
	}
	return sum
}
