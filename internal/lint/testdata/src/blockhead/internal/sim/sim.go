// Package sim is a minimal stub of the real virtual-time substrate, just
// enough for the fixtures to exercise the tickunit rule's sim.Time
// detection.
package sim

// Time is a point in virtual time, in nanoseconds.
type Time int64
