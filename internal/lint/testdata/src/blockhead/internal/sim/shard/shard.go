// Package shard fixtures: the shard scheduler's inverted concurrency
// contract. Goroutines, WaitGroups, and atomics are legal here — the package
// exists to run sim loops on lanes — but any write rooted in a package-level
// var escapes the lane-local-state model and is a finding.
package shard

import "sync"

// totalSteps is cross-lane shared memory: writing it from lane code is the
// exact race the lane/coordinator split exists to prevent.
var totalSteps int

var laneStats = map[int]int{}

// runLanes spawns worker goroutines — no concurrency findings in this
// package.
func runLanes(n int) []int {
	out := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[i] = step(i)
		}()
	}
	wg.Wait()
	return out
}

// step does lane-local work but leaks a tally into package state.
func step(lane int) int {
	totalSteps++        // want `\[concurrency\] write to package-level totalSteps`
	laneStats[lane] = 1 // want `\[concurrency\] write to package-level laneStats`
	return lane * 2
}

// merge is coordinator-side and still may not write globals.
func merge(parts []int) int {
	total := 0
	for _, p := range parts {
		total += p
	}
	totalSteps = total // want `\[concurrency\] write to package-level totalSteps`
	return total
}
