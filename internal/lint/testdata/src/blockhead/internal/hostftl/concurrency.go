// Package hostftl fixtures: the concurrency rule inside a sim-core package —
// goroutines, channels, and sync primitives are findings; straight-line code
// passes.
package hostftl

import "sync"

func fanOut(work []int) int {
	var mu sync.Mutex // want `\[concurrency\] sync\.Mutex`
	total := 0
	var wg sync.WaitGroup // want `\[concurrency\] sync\.WaitGroup`
	for _, w := range work {
		w := w
		wg.Add(1)
		go func() { // want `\[concurrency\] go statement`
			defer wg.Done()
			mu.Lock()
			total += w
			mu.Unlock()
		}()
	}
	wg.Wait()
	return total
}

func pipe() int {
	ch := make(chan int, 1) // want `\[concurrency\] channel type`
	ch <- 41                // want `\[concurrency\] channel send`
	return <-ch             // want `\[concurrency\] channel receive`
}

// serial does the same work on the event loop's thread — no finding.
func serial(work []int) int {
	total := 0
	for _, w := range work {
		total += w
	}
	return total
}
