// Package exemplar fixtures: the tail-exemplar reservoir's contracts. The
// package is sim-core (simCoreSuffixes), so the determinism and tickunit
// rules apply here; the Reservoir type carries //simlint:nilsafe, so its
// exported pointer-receiver methods are nilguard-contracted exactly like
// the real reservoir's.
package exemplar

import (
	"sort"
	"time"
)

// Reservoir mirrors the worst-K exemplar reservoir: the nil *Reservoir is
// a valid no-op on every method — experiments arm it unconditionally and
// a detached probe must cost nothing.
//
//simlint:nilsafe
type Reservoir struct {
	ios   uint64
	heaps map[int][]int64
}

// IOs is guarded — the per-IO hot path on a detached reservoir is a no-op.
func (r *Reservoir) IOs() uint64 {
	if r == nil {
		return 0
	}
	return r.ios
}

// Active tests the receiver in its return expression — compliant.
func (r *Reservoir) Active() bool { return r != nil && r.ios > 0 }

// FlagSeen dereferences the receiver with no guard.
func (r *Reservoir) FlagSeen() uint64 { // want `\[nilguard\] exported method \(\*Reservoir\)\.FlagSeen`
	return r.ios
}

// worstOrderLeak merges per-tenant worst-K sets in map order — the
// "slowest IOs" section and /exemplars.json must never do this: the
// report is compared byte for byte across runs.
func worstOrderLeak(heaps map[int][]int64) []int64 {
	var out []int64
	for _, h := range heaps { // want `\[determinism\] iteration over map heaps`
		out = append(out, h...)
	}
	return out
}

// worstSorted is the canonical fix: collect the tenant keys, sort them,
// then merge in sorted-tenant order.
func worstSorted(heaps map[int][]int64) []int64 {
	tenants := make([]int, 0, len(heaps))
	for t := range heaps {
		tenants = append(tenants, t)
	}
	sort.Ints(tenants)
	var out []int64
	for _, t := range tenants {
		out = append(out, heaps[t]...)
	}
	return out
}

// admitDeadline smuggles a wall-clock duration into the latency admission
// threshold — exemplar latencies are virtual-time ticks.
func admitDeadline(total int64) bool {
	return total > int64(time.Millisecond) // want `\[tickunit\] time.Duration in a sim-core package`
}
