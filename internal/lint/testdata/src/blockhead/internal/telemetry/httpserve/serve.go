// Package httpserve fixtures: the concurrency rule's scope exemption. This
// path mirrors the real HTTP telemetry server, where goroutines, channels,
// and wall-duration throttles are legitimate — none of them may be flagged.
// The wall-clock read is still a determinism finding and needs its allow.
package httpserve

import "time"

type server struct {
	events chan string
	every  time.Duration
}

func start() *server {
	s := &server{events: make(chan string, 4), every: 250 * time.Millisecond}
	go func() {
		s.events <- "ready"
	}()
	return s
}

func (s *server) stamp() int64 {
	return time.Now().UnixNano() //simlint:allow determinism fixture: wall-clock throttle mirrors the real dashboard server
}
