// Package telemetry fixtures: the nilguard rule. Every exported type in a
// package at internal/telemetry is contracted — its exported
// pointer-receiver methods must establish nil-safety as their first action.
package telemetry

// Probe is a contracted instrument handle.
type Probe struct {
	n int
}

// Add is guarded — compliant form 1.
func (p *Probe) Add(n int) {
	if p == nil {
		return
	}
	p.n += n
}

// Inc delegates to a guarded contracted method — compliant form 3.
func (p *Probe) Inc() { p.Add(1) }

// Active tests the receiver in its return expression — compliant form 2.
func (p *Probe) Active() bool { return p != nil && p.n > 0 }

// Value dereferences the receiver with no guard.
func (p *Probe) Value() int { // want `\[nilguard\] exported method \(\*Probe\)\.Value`
	return p.n
}

// Bump delegates, but the argument dereferences the receiver before the
// callee's guard can run.
func (p *Probe) Bump() { p.Add(p.n) } // want `\[nilguard\] exported method \(\*Probe\)\.Bump`

// Snapshot has a value receiver; it cannot be nil — no finding.
func (p Probe) Snapshot() int { return p.n }

// ring is unexported, so its methods are outside the contract — no finding.
type ring struct{ n int }

func (r *ring) Grow() { r.n++ }
