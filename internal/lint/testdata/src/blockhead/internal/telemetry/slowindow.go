// Windowed-SLO fixtures: the shapes internal/telemetry/window.go and
// slo.go must keep. Exported instrument types are nilguard-contracted
// (disabled telemetry is a nil no-op), and verdict rendering must not leak
// map iteration order into its output.
package telemetry

import "sort"

// WindowSet mirrors the per-tenant window ring.
type WindowSet struct {
	width int64
	late  uint64
}

// Observe is guarded — the hot path on a disabled set is a no-op.
func (w *WindowSet) Observe(tenant int, total int64) {
	if w == nil {
		return
	}
	w.late++
}

// Width is guarded, returning the disabled zero — compliant.
func (w *WindowSet) Width() int64 {
	if w == nil {
		return 0
	}
	return w.width
}

// Active tests the receiver in its return expression — compliant.
func (w *WindowSet) Active() bool { return w != nil && w.late > 0 }

// Late dereferences the receiver with no guard.
func (w *WindowSet) Late() uint64 { // want `\[nilguard\] exported method \(\*WindowSet\)\.Late`
	return w.late
}

// SLOEngine mirrors the objective evaluator.
type SLOEngine struct {
	objectives []int
}

// Add is guarded — registering objectives on a nil engine is a no-op.
func (e *SLOEngine) Add(o int) {
	if e == nil {
		return
	}
	e.objectives = append(e.objectives, o)
}

// Objectives is guarded — compliant.
func (e *SLOEngine) Objectives() int {
	if e == nil {
		return 0
	}
	return len(e.objectives)
}

// Evaluate delegates to a guarded contracted method — compliant.
func (e *SLOEngine) Evaluate() int { return e.Objectives() }

// BurnRate dereferences the receiver with no guard.
func (e *SLOEngine) BurnRate() int { // want `\[nilguard\] exported method \(\*SLOEngine\)\.BurnRate`
	return len(e.objectives) * 2
}

// verdictOrderLeak renders named verdicts in map order — the report and
// the JSON dumps must never do this.
func verdictOrderLeak(verdicts map[string]bool) []string {
	var out []string
	for name := range verdicts { // want `\[determinism\] iteration over map verdicts`
		out = append(out, name)
	}
	return out
}

// verdictsSorted is the canonical fix: collect, sort, then render.
func verdictsSorted(verdicts map[string]bool) []string {
	names := make([]string, 0, len(verdicts))
	for name := range verdicts {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
