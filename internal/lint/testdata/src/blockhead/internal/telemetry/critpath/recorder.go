// Package critpath fixtures: the critical-path recorder's contracts. The
// package is sim-core (simCoreSuffixes), so the determinism and tickunit
// rules apply here; the Recorder type carries //simlint:nilsafe, so its
// exported pointer-receiver methods are nilguard-contracted exactly like
// the real recorder's.
package critpath

import (
	"sort"
	"time"
)

// Recorder mirrors the per-IO path recorder: the nil *Recorder is a valid
// no-op on every method.
//
//simlint:nilsafe
type Recorder struct {
	ios   uint64
	paths map[string]int64
}

// IOs is guarded — the hot path on a detached recorder is a no-op.
func (r *Recorder) IOs() uint64 {
	if r == nil {
		return 0
	}
	return r.ios
}

// Active tests the receiver in its return expression — compliant.
func (r *Recorder) Active() bool { return r != nil && r.ios > 0 }

// Violations dereferences the receiver with no guard.
func (r *Recorder) Violations() uint64 { // want `\[nilguard\] exported method \(\*Recorder\)\.Violations`
	return r.ios
}

// dumpOrderLeak renders the per-phase path table in map order — the
// report section and /critpath.json must never do this.
func dumpOrderLeak(paths map[string]int64) []string {
	var out []string
	for name := range paths { // want `\[determinism\] iteration over map paths`
		out = append(out, name)
	}
	return out
}

// dumpSorted is the canonical fix: collect, sort, then render.
func dumpSorted(paths map[string]int64) []string {
	names := make([]string, 0, len(paths))
	for name := range paths {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// wallDeadline smuggles a wall-clock duration into tick arithmetic.
func wallDeadline(ticks int64) int64 {
	return ticks + int64(5*time.Millisecond) // want `\[tickunit\] time.Duration in a sim-core package`
}
