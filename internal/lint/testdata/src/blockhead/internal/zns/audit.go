// Package zns fixtures: the nilguard rule's //simlint:nilsafe marker. Only
// the marked type is contracted; other types in the package keep their
// ordinary (non-nil-safe) methods.
package zns

// Auditor mirrors the real zone state-machine auditor contract.
//
//simlint:nilsafe
type Auditor struct {
	violations int
}

// Violations is guarded — compliant.
func (a *Auditor) Violations() int {
	if a == nil {
		return 0
	}
	return a.violations
}

// Flag dereferences the receiver with no guard.
func (a *Auditor) Flag() { // want `\[nilguard\] exported method \(\*Auditor\)\.Flag`
	a.violations++
}

// Device is not marked nilsafe: its methods are not contracted — no finding.
type Device struct {
	wp int
}

func (d *Device) Advance() { d.wp++ }
