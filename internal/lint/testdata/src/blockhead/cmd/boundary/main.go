// Command boundary fixtures: cmd/ is the sanctioned wall-clock boundary.
// Concurrency and time.Duration are legal here, and a Duration flag converts
// to ticks explicitly through integer nanoseconds — but a direct
// Duration->Time conversion is a tickunit finding even here.
package main

import (
	"time"

	"blockhead/internal/sim"
)

func main() {
	every := 10 * time.Millisecond
	_ = sim.Time(every.Nanoseconds()) // explicit ns conversion — no finding
	_ = sim.Time(every)               // want `\[tickunit\] direct conversion`
	done := make(chan struct{})       // concurrency is legal in cmd/
	go func() { close(done) }()
	<-done
}
