// Positive shardcheck fixtures: a per-LUN context function writing
// unkeyed and zone-keyed state, plus the shared-annotation hygiene
// findings (missing reason, unused carve-out).
package flash

// Geometry mirrors the real mapper so LUNOfBlock marks callers as per-LUN
// contexts.
type Geometry struct{ Channels, DiesPerChan int }

func (g Geometry) LUNOfBlock(block int) int { return block % (g.Channels * g.DiesPerChan) }

type Dev struct {
	geom       Geometry
	lunBusy    []int64
	zoneCredit []int64
	total      int64

	// want +1 `\[allow\] //simlint:shared is missing a reason`
	//simlint:shared
	scratch []int64

	// want +1 `\[allow\] unused //simlint:shared on flash\.Dev\.dormant`
	//simlint:shared annotated but never written, so the carve-out is dead
	dormant int64
}

// Read runs on a per-LUN path: the keyed writes are fine, the whole-object
// counter write escapes the shard.
func (d *Dev) Read(block int) {
	lun := d.geom.LUNOfBlock(block)
	d.lunBusy[lun]++
	d.scratch[lun] = 0
	d.total++ // want `\[shardcheck\] write to flash\.Dev\.total \(class instance\) from a per-LUN path`
}

// Stripe writes zone-striped state from a per-LUN path: zones cross
// channel shards.
func (d *Dev) Stripe(lun, zone int) {
	d.lunBusy[lun]++
	d.zoneCredit[zone]++ // want `\[shardcheck\] zone-indexed write to flash\.Dev\.zoneCredit`
}
