// Negative exhaustive fixtures: full state coverage, and a default clause
// standing in for it.
package zns

// ZoneState mirrors the real zone state machine enum.
type ZoneState int

// The mirrored state table.
const (
	Empty ZoneState = iota
	Open
	Full
)

// Writable covers every declared state explicitly.
func Writable(s ZoneState) bool {
	switch s {
	case Empty, Open:
		return true
	case Full:
		return false
	}
	return false
}

// Name leans on a default clause instead.
func Name(s ZoneState) string {
	switch s {
	case Empty:
		return "empty"
	default:
		return "other"
	}
}
