// Negative exhaustive fixture: a clean literal registry — unique IDs, one
// contiguous series.
package core

// Experiment mirrors the real registry entry.
type Experiment struct {
	ID    string
	Title string
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

func init() {
	register(Experiment{ID: "K1", Title: "baseline"})
	register(Experiment{ID: "K2", Title: "variant"})
}
