package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"io/fs"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	Path  string // import path
	Fset  *token.FileSet
	Files []*ast.File // non-test files only
	Types *types.Package
	Info  *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// goListExport runs `go list -export -deps -json` on the given patterns and
// returns the decoded package records plus an ImportPath -> export-data-file
// map covering every dependency. This is the one place the analyzer shells
// out; everything downstream is pure go/parser + go/types. -export works
// fully offline: the toolchain populates the local build cache.
func goListExport(dir string, patterns []string) ([]listPkg, map[string]string, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	if err := cmd.Run(); err != nil {
		return nil, nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, errb.String())
	}
	var pkgs []listPkg
	exports := make(map[string]string)
	dec := json.NewDecoder(&out)
	for dec.More() {
		var p listPkg
		if err := dec.Decode(&p); err != nil {
			return nil, nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, nil, fmt.Errorf("%s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, exports, nil
}

// exportImporter resolves imports from compiler export data, the same way go
// vet does. Only paths present in the map can be imported; "unsafe" is
// special-cased by the gc importer itself.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
}

// LoadModule loads and type-checks the non-test files of every module package
// matched by patterns (e.g. "./...") relative to dir. Dependencies — both
// stdlib and intra-module — resolve through export data, so each package is
// checked independently without a topological from-source pass.
func LoadModule(dir string, patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	raw, exports, err := goListExport(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var pkgs []*Package
	for _, lp := range raw {
		// Lint the packages the pattern named (DepOnly marks pure
		// dependencies); skip stdlib and test-only directories.
		if lp.Standard || lp.DepOnly || len(lp.GoFiles) == 0 {
			continue
		}
		p, err := typeCheck(fset, imp, lp.ImportPath, lp.Dir, lp.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

func typeCheck(fset *token.FileSet, imp types.Importer, path, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", path, err)
	}
	return &Package{Path: path, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// LoadTree loads a GOPATH-style source tree rooted at root: every directory
// containing .go files becomes a package whose import path is its relative
// path. Imports inside the tree resolve recursively from source; anything
// else (stdlib) resolves from export data. This is how the testdata fixtures
// load — they mirror real module paths like blockhead/internal/ftl so the
// path-scoped rules fire exactly as they do on the real module.
func LoadTree(root string) ([]*Package, error) {
	fset := token.NewFileSet()
	parsed := make(map[string][]*ast.File)
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		f, perr := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if perr != nil {
			return perr
		}
		rel, rerr := filepath.Rel(root, filepath.Dir(path))
		if rerr != nil {
			return rerr
		}
		ip := filepath.ToSlash(rel)
		parsed[ip] = append(parsed[ip], f)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(parsed) == 0 {
		return nil, fmt.Errorf("no Go files under %s", root)
	}
	// Collect the external (stdlib) imports so one go list call can provide
	// export data for all of them.
	extSet := make(map[string]bool)
	for _, files := range parsed {
		for _, f := range files {
			for _, im := range f.Imports {
				ip, _ := strconv.Unquote(im.Path.Value)
				if _, inTree := parsed[ip]; !inTree && ip != "unsafe" {
					extSet[ip] = true
				}
			}
		}
	}
	var ext []string
	for ip := range extSet {
		ext = append(ext, ip)
	}
	sort.Strings(ext)
	var std types.Importer
	if len(ext) > 0 {
		_, exports, err := goListExport(root, ext)
		if err != nil {
			return nil, err
		}
		std = exportImporter(fset, exports)
	}
	ti := &treeImporter{fset: fset, parsed: parsed, std: std, done: make(map[string]*Package), loading: make(map[string]bool)}
	var paths []string
	for ip := range parsed {
		paths = append(paths, ip)
	}
	sort.Strings(paths)
	var pkgs []*Package
	for _, ip := range paths {
		p, err := ti.load(ip)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

type treeImporter struct {
	fset    *token.FileSet
	parsed  map[string][]*ast.File
	std     types.Importer
	done    map[string]*Package
	loading map[string]bool
}

func (t *treeImporter) Import(path string) (*types.Package, error) {
	if _, ok := t.parsed[path]; ok {
		p, err := t.load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	if t.std == nil {
		return nil, fmt.Errorf("no importer for %q", path)
	}
	return t.std.Import(path)
}

func (t *treeImporter) load(path string) (*Package, error) {
	if p, ok := t.done[path]; ok {
		return p, nil
	}
	if t.loading[path] {
		return nil, fmt.Errorf("import cycle through %q", path)
	}
	t.loading[path] = true
	defer delete(t.loading, path)
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{Importer: t}
	tpkg, err := conf.Check(path, t.fset, t.parsed[path], info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", path, err)
	}
	p := &Package{Path: path, Fset: t.fset, Files: t.parsed[path], Types: tpkg, Info: info}
	t.done[path] = p
	return p, nil
}
