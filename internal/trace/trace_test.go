package trace

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"blockhead/internal/flash"
	"blockhead/internal/ftl"
	"blockhead/internal/sim"
)

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{OpRead: "read", OpWrite: "write", OpTrim: "trim",
		OpAppend: "append", OpReset: "reset", OpFinish: "finish"}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
	if Kind(99).String() != "Kind(99)" {
		t.Error("unknown kind String wrong")
	}
}

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	recs := []Record{
		{At: 0, Kind: OpWrite, LBA: 100, Pages: 8},
		{At: 1500, Kind: OpRead, LBA: -1, Pages: 1}, // negative LBA survives
		{At: 1500, Kind: OpReset, Zone: 42},
		{At: 2000, Kind: OpAppend, Zone: 7, Pages: 4},
		{At: 1 << 40, Kind: OpTrim, LBA: 1 << 50, Pages: 1 << 20},
	}
	for _, rec := range recs {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if w.Len() != uint64(len(recs)) {
		t.Errorf("Len = %d", w.Len())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	for i, want := range recs {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("rec %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("rec %d: got %+v want %+v", i, got, want)
		}
	}
	if _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Errorf("trailing Next: %v, want EOF", err)
	}
}

func TestWriterRejectsBadRecords(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Append(Record{At: 100}); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(Record{At: 50}); err == nil {
		t.Error("time regression accepted")
	}
	if err := w.Append(Record{At: 200, Kind: numKinds}); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("NOTATRACE"))).Next(); !errors.Is(err, ErrBadMagic) {
		t.Errorf("bad magic: %v", err)
	}
	// Truncated record after a valid header.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Append(Record{At: 5, Kind: OpWrite, LBA: 1, Pages: 1})
	w.Flush()
	trunc := buf.Bytes()[:buf.Len()-2]
	r := NewReader(bytes.NewReader(trunc))
	if _, err := r.Next(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("truncated record: %v", err)
	}
	// A record with an invalid kind byte.
	bad := append([]byte{}, []byte("ZTRC\x01")...)
	bad = append(bad, 0 /* dt */, 200 /* kind */, 0, 0, 0)
	if _, err := NewReader(bytes.NewReader(bad)).Next(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("bad kind: %v", err)
	}
}

func TestEmptyTraceIsEOF(t *testing.T) {
	r := NewReader(bytes.NewReader(nil))
	if _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Errorf("empty trace: %v, want EOF", err)
	}
}

// Property: arbitrary monotone record sequences survive the round trip.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%64 + 1
		var recs []Record
		var at sim.Time
		for i := 0; i < n; i++ {
			at += sim.Time(rng.Intn(1 << 30))
			recs = append(recs, Record{
				At:    at,
				Kind:  Kind(rng.Intn(int(numKinds))),
				LBA:   rng.Int63() - rng.Int63(),
				Pages: int64(rng.Intn(1 << 16)),
				Zone:  int32(rng.Intn(1 << 16)),
			})
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, rec := range recs {
			if err := w.Append(rec); err != nil {
				return false
			}
		}
		w.Flush()
		r := NewReader(&buf)
		for _, want := range recs {
			got, err := r.Next()
			if err != nil || got != want {
				return false
			}
		}
		_, err := r.Next()
		return errors.Is(err, io.EOF)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// End to end: record a workload, replay it against a conventional device.
func TestReplayAgainstFTL(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	rng := rand.New(rand.NewSource(1))
	var at sim.Time
	for i := 0; i < 500; i++ {
		at += sim.Time(rng.Intn(int(sim.Millisecond)))
		kind := OpWrite
		if i%3 == 0 {
			kind = OpRead
		}
		w.Append(Record{At: at, Kind: kind, LBA: int64(rng.Intn(200)), Pages: 1})
	}
	w.Flush()

	dev, err := ftl.NewDefault(flash.Geometry{Channels: 2, DiesPerChan: 2, PlanesPerDie: 1,
		BlocksPerLUN: 16, PagesPerBlock: 32, PageSize: 4096},
		flash.LatenciesFor(flash.TLC), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	written := map[int64]bool{}
	n, err := Replay(NewReader(&buf), func(rec Record) error {
		switch rec.Kind {
		case OpWrite:
			_, err := dev.WritePage(rec.At, rec.LBA, nil)
			written[rec.LBA] = true
			return err
		case OpRead:
			if !written[rec.LBA] {
				return nil // cold read; nothing to verify
			}
			_, _, err := dev.ReadPage(rec.At, rec.LBA)
			return err
		default:
			return nil
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 500 {
		t.Errorf("replayed %d records, want 500", n)
	}
	if dev.Counters().HostWritePages == 0 {
		t.Error("replay drove no writes")
	}
}

func TestReplayStopsOnError(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < 10; i++ {
		w.Append(Record{At: sim.Time(i), Kind: OpWrite, LBA: int64(i), Pages: 1})
	}
	w.Flush()
	boom := errors.New("boom")
	n, err := Replay(NewReader(&buf), func(rec Record) error {
		if rec.LBA == 5 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if n != 5 {
		t.Errorf("applied %d before error, want 5", n)
	}
}
