package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// everyKindRecords has one record per Kind, exercising the fields each kind
// actually uses (block ops: LBA/Pages; zone ops: Zone, plus Pages for append).
func everyKindRecords() []Record {
	return []Record{
		{At: 0, Kind: OpRead, LBA: 7, Pages: 2},
		{At: 10, Kind: OpWrite, LBA: 1 << 33, Pages: 16},
		{At: 10, Kind: OpTrim, LBA: 512, Pages: 128},
		{At: 25, Kind: OpAppend, Zone: 3, Pages: 4},
		{At: 1 << 35, Kind: OpReset, Zone: 511},
		{At: 1 << 36, Kind: OpFinish, Zone: 0},
	}
}

// Every kind — including the zone-management ops OpReset and OpFinish —
// survives a write/read round trip bit-for-bit.
func TestRoundTripEveryKind(t *testing.T) {
	recs := everyKindRecords()
	if len(recs) != int(numKinds) {
		t.Fatalf("test covers %d kinds, package defines %d", len(recs), numKinds)
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, rec := range recs {
		if err := w.Append(rec); err != nil {
			t.Fatalf("append %v: %v", rec.Kind, err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	for _, want := range recs {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("read %v: %v", want.Kind, err)
		}
		if got != want {
			t.Fatalf("round trip: got %+v want %+v", got, want)
		}
	}
	if _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("trailing Next: %v, want EOF", err)
	}
}

// Truncating a valid trace at every possible byte offset must yield a clean
// error (EOF before any record, ErrBadMagic inside the header, ErrCorrupt
// inside a record) — never a panic or a silently wrong record.
func TestTruncatedStreamEveryOffset(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	recs := everyKindRecords()
	for _, rec := range recs {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()
	full := buf.Bytes()

	for cut := 0; cut < len(full); cut++ {
		r := NewReader(bytes.NewReader(full[:cut]))
		var got []Record
		var err error
		for {
			var rec Record
			rec, err = r.Next()
			if err != nil {
				break
			}
			got = append(got, rec)
		}
		switch {
		case cut == 0:
			if !errors.Is(err, io.EOF) {
				t.Errorf("cut=0: err = %v, want EOF", err)
			}
		case cut < len(magic):
			if !errors.Is(err, ErrBadMagic) {
				t.Errorf("cut=%d (inside header): err = %v, want ErrBadMagic", cut, err)
			}
		default:
			// Whole records decoded before the cut must match the originals;
			// the partial record at the cut must be EOF (cut on a record
			// boundary) or ErrCorrupt (cut mid-record).
			if !errors.Is(err, io.EOF) && !errors.Is(err, ErrCorrupt) {
				t.Errorf("cut=%d: err = %v, want EOF or ErrCorrupt", cut, err)
			}
			if len(got) > len(recs) {
				t.Fatalf("cut=%d: decoded %d records from a %d-record prefix", cut, len(got), len(recs))
			}
			for i, rec := range got {
				if rec != recs[i] {
					t.Errorf("cut=%d: record %d = %+v, want %+v", cut, i, rec, recs[i])
				}
			}
		}
	}
}

// FuzzDecode feeds arbitrary bytes to the reader: decoding must terminate
// with a record, EOF, or one of the package's sentinel errors — and any
// records that do decode must re-encode to a decodable stream.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("ZTRC\x01"))
	f.Add([]byte("NOTATRACE"))
	var seedBuf bytes.Buffer
	w := NewWriter(&seedBuf)
	for _, rec := range everyKindRecords() {
		w.Append(rec)
	}
	w.Flush()
	f.Add(seedBuf.Bytes())
	f.Add(append(seedBuf.Bytes(), 0xff, 0xff, 0xff))

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		var recs []Record
		for {
			rec, err := r.Next()
			if err != nil {
				if !errors.Is(err, io.EOF) && !errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrCorrupt) {
					t.Fatalf("unexpected error class: %v", err)
				}
				break
			}
			if rec.Kind >= numKinds {
				t.Fatalf("decoded invalid kind %d", rec.Kind)
			}
			recs = append(recs, rec)
			if len(recs) > len(data) {
				t.Fatalf("decoded %d records from %d bytes", len(recs), len(data))
			}
		}
		// Whatever decoded is a valid monotone trace: it must re-encode and
		// decode back identically.
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, rec := range recs {
			if err := w.Append(rec); err != nil {
				t.Fatalf("re-encode %+v: %v", rec, err)
			}
		}
		w.Flush()
		r2 := NewReader(&buf)
		for i, want := range recs {
			got, err := r2.Next()
			if err != nil {
				t.Fatalf("re-decode record %d: %v", i, err)
			}
			if got != want {
				t.Fatalf("re-decode record %d: got %+v want %+v", i, got, want)
			}
		}
	})
}

// The delta encoding keeps long quiet gaps cheap; make sure huge deltas
// survive (At is int64 nanoseconds, so simulations can span years).
func TestHugeTimeDeltas(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	recs := []Record{
		{At: 0, Kind: OpWrite, LBA: 1, Pages: 1},
		{At: 1<<62 - 1, Kind: OpFinish, Zone: 9},
	}
	for _, rec := range recs {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()
	r := NewReader(&buf)
	for _, want := range recs {
		got, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("got %+v want %+v", got, want)
		}
	}
}
