// Package trace records and replays device-level I/O traces in a compact
// binary format. The paper's §4.2 asks whether we "can systematically test
// representative and synthetic workloads to discover if any perform worse
// over ZNS"; a trace format is the mechanism: capture a workload once,
// replay it against every device model and configuration.
//
// Format (all integers varint-encoded, times delta-encoded):
//
//	header:  "ZTRC" 0x01
//	record:  uvarint dt | byte kind | varint lba | uvarint pages | varint zone
//
// The format is append-friendly and streams in both directions.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"blockhead/internal/sim"
)

// Kind is the operation type of a record.
type Kind uint8

// Operation kinds.
const (
	OpRead Kind = iota
	OpWrite
	OpTrim
	OpAppend
	OpReset
	OpFinish
	numKinds
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpTrim:
		return "trim"
	case OpAppend:
		return "append"
	case OpReset:
		return "reset"
	case OpFinish:
		return "finish"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Record is one traced operation. Block-interface ops use LBA/Pages; zone
// ops use Zone (and Pages for appends).
type Record struct {
	At    sim.Time
	Kind  Kind
	LBA   int64
	Pages int64
	Zone  int32
}

var magic = []byte{'Z', 'T', 'R', 'C', 0x01}

// Errors returned by the reader.
var (
	ErrBadMagic = errors.New("trace: bad magic")
	ErrCorrupt  = errors.New("trace: corrupt record")
)

// Writer streams records to w.
type Writer struct {
	w      *bufio.Writer
	lastAt sim.Time
	n      uint64
	wrote  bool
}

// NewWriter returns a Writer that emits the header on the first record.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// Append writes one record. Records must be in nondecreasing time order.
func (tw *Writer) Append(rec Record) error {
	if !tw.wrote {
		if _, err := tw.w.Write(magic); err != nil {
			return err
		}
		tw.wrote = true
	}
	if rec.At < tw.lastAt {
		return fmt.Errorf("trace: record at %d before previous %d", rec.At, tw.lastAt)
	}
	if rec.Kind >= numKinds {
		return fmt.Errorf("trace: unknown kind %d", rec.Kind)
	}
	var buf [5 * binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(rec.At-tw.lastAt))
	buf[n] = byte(rec.Kind)
	n++
	n += binary.PutVarint(buf[n:], rec.LBA)
	n += binary.PutUvarint(buf[n:], uint64(rec.Pages))
	n += binary.PutVarint(buf[n:], int64(rec.Zone))
	if _, err := tw.w.Write(buf[:n]); err != nil {
		return err
	}
	tw.lastAt = rec.At
	tw.n++
	return nil
}

// Len reports how many records have been appended.
func (tw *Writer) Len() uint64 { return tw.n }

// Flush flushes buffered output.
func (tw *Writer) Flush() error { return tw.w.Flush() }

// Reader streams records from r.
type Reader struct {
	r       *bufio.Reader
	lastAt  sim.Time
	started bool
}

// NewReader returns a Reader; the header is validated on the first Next.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

// Next returns the next record, or io.EOF at end of trace.
func (tr *Reader) Next() (Record, error) {
	if !tr.started {
		var hdr [5]byte
		if _, err := io.ReadFull(tr.r, hdr[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return Record{}, io.EOF
			}
			return Record{}, ErrBadMagic
		}
		for i := range magic {
			if hdr[i] != magic[i] {
				return Record{}, ErrBadMagic
			}
		}
		tr.started = true
	}
	dt, err := binary.ReadUvarint(tr.r)
	if err != nil {
		if errors.Is(err, io.EOF) {
			return Record{}, io.EOF
		}
		return Record{}, ErrCorrupt
	}
	if dt > uint64(math.MaxInt64)-uint64(tr.lastAt) {
		// A delta that would overflow the int64 timeline cannot have been
		// produced by the writer.
		return Record{}, ErrCorrupt
	}
	kb, err := tr.r.ReadByte()
	if err != nil {
		return Record{}, ErrCorrupt
	}
	if Kind(kb) >= numKinds {
		return Record{}, ErrCorrupt
	}
	lba, err := binary.ReadVarint(tr.r)
	if err != nil {
		return Record{}, ErrCorrupt
	}
	pages, err := binary.ReadUvarint(tr.r)
	if err != nil {
		return Record{}, ErrCorrupt
	}
	zone, err := binary.ReadVarint(tr.r)
	if err != nil {
		return Record{}, ErrCorrupt
	}
	tr.lastAt += sim.Time(dt)
	return Record{
		At:    tr.lastAt,
		Kind:  Kind(kb),
		LBA:   lba,
		Pages: int64(pages),
		Zone:  int32(zone),
	}, nil
}

// Replay streams every record through apply, stopping at the first error.
// It returns the number of records applied.
func Replay(tr *Reader, apply func(Record) error) (uint64, error) {
	var n uint64
	for {
		rec, err := tr.Next()
		if errors.Is(err, io.EOF) {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		if err := apply(rec); err != nil {
			return n, fmt.Errorf("trace: record %d (%v at %d): %w", n, rec.Kind, rec.At, err)
		}
		n++
	}
}
