// Package cost reproduces the paper's §2.2/§2.3 resource arithmetic: the
// on-board DRAM needed for address translation, the flash capacity consumed
// by overprovisioning, and the resulting per-device cost comparison —
// "ZNS costs less per gigabyte".
//
// The headline numbers it regenerates (E3, E11):
//
//   - A conventional SSD needs ~4 bytes of mapping DRAM per 4 KB page:
//     ~1 GB of DRAM per TB of flash.
//   - A ZNS SSD maps zones to erasure blocks: with 16 MB blocks, ~256 KB
//     per TB — a ~4000x reduction.
//   - Overprovisioning (7-28% of usable capacity) is pure flash cost the
//     host cannot use; ZNS devices expose nearly all of it.
//   - Footnote 2: small embedded DRAM chips cost >= 2x as much per GB as
//     large host DIMMs, so moving translation to the host is cheaper even
//     before the capacity win.
package cost

import "fmt"

// Bytes per mapping entry, per the paper's §2.2 ("about 4 bytes per page",
// "assuming a similar 4-byte overhead per block").
const BytesPerMapEntry = 4

// ConvMappingBytes reports the conventional FTL's mapping-table DRAM for a
// device of the given capacity and page size.
func ConvMappingBytes(capacityBytes int64, pageSize int64) int64 {
	if pageSize <= 0 {
		return 0
	}
	return capacityBytes / pageSize * BytesPerMapEntry
}

// ZNSMappingBytes reports the ZNS FTL's mapping DRAM: one entry per erasure
// block.
func ZNSMappingBytes(capacityBytes int64, blockBytes int64) int64 {
	if blockBytes <= 0 {
		return 0
	}
	return capacityBytes / blockBytes * BytesPerMapEntry
}

// Params are the unit prices of the cost model. Defaults reflect the
// paper's stated relationships rather than any particular quarter's spot
// prices; every experiment reports ratios alongside absolute dollars.
type Params struct {
	// FlashUSDPerGB is the cost of raw NAND capacity.
	FlashUSDPerGB float64
	// EmbeddedDRAMUSDPerGB is the cost of small on-board DRAM chips.
	EmbeddedDRAMUSDPerGB float64
	// HostDRAMUSDPerGB is the cost of large host DIMMs. Footnote 2: a small
	// DIMM costs "more than twice as much per GB" as 16-32 GB DIMMs, so
	// EmbeddedDRAMUSDPerGB >= 2 * HostDRAMUSDPerGB.
	HostDRAMUSDPerGB float64
}

// DefaultParams returns the calibration prices (2021-era enterprise TLC).
func DefaultParams() Params {
	return Params{
		FlashUSDPerGB:        0.08,
		EmbeddedDRAMUSDPerGB: 9.0,
		HostDRAMUSDPerGB:     4.0,
	}
}

// Validate checks the footnote-2 relationship.
func (p Params) Validate() error {
	if p.FlashUSDPerGB <= 0 || p.EmbeddedDRAMUSDPerGB <= 0 || p.HostDRAMUSDPerGB <= 0 {
		return fmt.Errorf("cost: non-positive price in %+v", p)
	}
	if p.EmbeddedDRAMUSDPerGB < 2*p.HostDRAMUSDPerGB {
		return fmt.Errorf("cost: embedded DRAM (%.2f) must be >= 2x host DRAM (%.2f) per footnote 2",
			p.EmbeddedDRAMUSDPerGB, p.HostDRAMUSDPerGB)
	}
	return nil
}

// Device summarizes one configuration's bill of materials.
type Device struct {
	Kind           string
	UsableGB       float64
	RawFlashGB     float64 // usable + overprovisioning
	OnboardDRAMGB  float64
	HostDRAMGB     float64 // host-side mapping memory (ZNS with host FTL)
	FlashUSD       float64
	OnboardDRAMUSD float64
	HostDRAMUSD    float64
}

// TotalUSD reports the configuration's full cost including host resources.
func (d Device) TotalUSD() float64 { return d.FlashUSD + d.OnboardDRAMUSD + d.HostDRAMUSD }

// USDPerUsableGB reports the paper's comparison metric.
func (d Device) USDPerUsableGB() float64 {
	if d.UsableGB == 0 {
		return 0
	}
	return d.TotalUSD() / d.UsableGB
}

const (
	gb       = float64(1 << 30)
	pageSize = 4096
)

// Conventional prices a conventional SSD with the given usable capacity and
// overprovisioning fraction (of usable capacity, per §2.2).
func Conventional(usableGB float64, opFraction float64, p Params) Device {
	raw := usableGB * (1 + opFraction)
	mapBytes := ConvMappingBytes(int64(usableGB*gb), pageSize)
	dramGB := float64(mapBytes) / gb
	return Device{
		Kind:           fmt.Sprintf("conventional (OP %.0f%%)", opFraction*100),
		UsableGB:       usableGB,
		RawFlashGB:     raw,
		OnboardDRAMGB:  dramGB,
		FlashUSD:       raw * p.FlashUSDPerGB,
		OnboardDRAMUSD: dramGB * p.EmbeddedDRAMUSDPerGB,
	}
}

// ZNS prices a ZNS SSD with the given usable capacity and erasure-block
// size. hostMappingBytesPerPage adds host DRAM for a host-side translation
// layer (0 for applications using zones natively).
func ZNS(usableGB float64, blockBytes int64, hostMappingBytesPerPage float64, p Params) Device {
	mapBytes := ZNSMappingBytes(int64(usableGB*gb), blockBytes)
	onboardGB := float64(mapBytes) / gb
	hostGB := usableGB * gb / pageSize * hostMappingBytesPerPage / gb
	return Device{
		Kind:           "zns",
		UsableGB:       usableGB,
		RawFlashGB:     usableGB, // no GC overprovisioning (§2.2)
		OnboardDRAMGB:  onboardGB,
		HostDRAMGB:     hostGB,
		FlashUSD:       usableGB * p.FlashUSDPerGB,
		OnboardDRAMUSD: onboardGB * p.EmbeddedDRAMUSDPerGB,
		HostDRAMUSD:    hostGB * p.HostDRAMUSDPerGB,
	}
}

// Savings reports the fractional $/GB saving of b relative to a.
func Savings(a, b Device) float64 {
	if a.USDPerUsableGB() == 0 {
		return 0
	}
	return 1 - b.USDPerUsableGB()/a.USDPerUsableGB()
}
