package cost

import (
	"math"
	"testing"
)

const tb = int64(1) << 40

// §2.2: "around 1 GB of on-board DRAM per TB of flash".
func TestConvMappingOneGBPerTB(t *testing.T) {
	got := ConvMappingBytes(tb, 4096)
	if got != 1<<30 {
		t.Errorf("conventional mapping for 1 TB = %d bytes, want 1 GiB", got)
	}
	if ConvMappingBytes(tb, 0) != 0 {
		t.Error("zero page size must yield 0")
	}
}

// §2.2: "assuming a similar 4-byte overhead per block and 16 MB erasure
// blocks, it requires only ~256 KB".
func TestZNSMapping256KBPerTB(t *testing.T) {
	got := ZNSMappingBytes(tb, 16<<20)
	if got != 256<<10 {
		t.Errorf("ZNS mapping for 1 TB = %d bytes, want 256 KiB", got)
	}
	if ZNSMappingBytes(tb, 0) != 0 {
		t.Error("zero block size must yield 0")
	}
}

func TestMappingRatio(t *testing.T) {
	conv := ConvMappingBytes(tb, 4096)
	zns := ZNSMappingBytes(tb, 16<<20)
	if conv/zns != 4096 {
		t.Errorf("mapping ratio = %d, want 4096x", conv/zns)
	}
}

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultParams()
	bad.EmbeddedDRAMUSDPerGB = bad.HostDRAMUSDPerGB // violates footnote 2
	if err := bad.Validate(); err == nil {
		t.Error("footnote-2 violation accepted")
	}
	bad = DefaultParams()
	bad.FlashUSDPerGB = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero price accepted")
	}
}

func TestConventionalBOM(t *testing.T) {
	p := DefaultParams()
	d := Conventional(1024, 0.28, p)
	if math.Abs(d.RawFlashGB-1024*1.28) > 1e-9 {
		t.Errorf("raw flash = %v", d.RawFlashGB)
	}
	if math.Abs(d.OnboardDRAMGB-1.0) > 1e-9 {
		t.Errorf("onboard DRAM = %v GB, want 1", d.OnboardDRAMGB)
	}
	if d.TotalUSD() <= 0 || d.USDPerUsableGB() <= 0 {
		t.Error("costs must be positive")
	}
}

func TestZNSBOM(t *testing.T) {
	p := DefaultParams()
	d := ZNS(1024, 16<<20, 0, p)
	if d.RawFlashGB != 1024 {
		t.Errorf("zns raw flash = %v, want no OP", d.RawFlashGB)
	}
	if math.Abs(d.OnboardDRAMGB-256.0/(1<<20)) > 1e-12 {
		t.Errorf("zns onboard DRAM = %v GB, want 256 KiB", d.OnboardDRAMGB)
	}
	if d.HostDRAMGB != 0 || d.HostDRAMUSD != 0 {
		t.Error("native zns must need no host mapping DRAM")
	}
	// With a host FTL at 8 B/page, host DRAM = 2 GB for 1 TB.
	h := ZNS(1024, 16<<20, 8, p)
	if math.Abs(h.HostDRAMGB-2.0) > 1e-9 {
		t.Errorf("host DRAM = %v GB, want 2", h.HostDRAMGB)
	}
}

// The paper's claim: ZNS dominates on cost. Even a ZNS deployment that
// rebuilds the block interface on the host (paying for host DRAM at host
// prices) undercuts the conventional device.
func TestZNSCheaperPerGB(t *testing.T) {
	p := DefaultParams()
	for _, op := range []float64{0.07, 0.28} {
		conv := Conventional(1024, op, p)
		znsNative := ZNS(1024, 16<<20, 0, p)
		znsHostFTL := ZNS(1024, 16<<20, 8, p)
		if Savings(conv, znsNative) <= 0 {
			t.Errorf("OP %.2f: native ZNS not cheaper (conv %.4f vs zns %.4f $/GB)",
				op, conv.USDPerUsableGB(), znsNative.USDPerUsableGB())
		}
		if Savings(conv, znsHostFTL) <= 0 {
			t.Errorf("OP %.2f: host-FTL ZNS not cheaper (conv %.4f vs zns %.4f $/GB)",
				op, conv.USDPerUsableGB(), znsHostFTL.USDPerUsableGB())
		}
		// Savings grow with OP.
		if op == 0.28 && Savings(conv, znsNative) < Savings(Conventional(1024, 0.07, p), znsNative) {
			t.Error("savings must grow with overprovisioning")
		}
	}
}

func TestSavingsDegenerate(t *testing.T) {
	if Savings(Device{}, Device{}) != 0 {
		t.Error("Savings on empty devices must be 0")
	}
	if (Device{}).USDPerUsableGB() != 0 {
		t.Error("USDPerUsableGB on empty device must be 0")
	}
}
