// Package sim provides the deterministic virtual-time substrate used by every
// device model and experiment in this repository.
//
// All latency and throughput numbers in the benchmarks are computed in
// virtual time: operations are timestamped with a sim.Time, hardware units
// (flash dies, channel buses) are modeled as Resources with busy-until
// semantics, and drivers are built on an event Loop that executes callbacks
// in strict time order. Nothing depends on the wall clock, so every
// experiment is reproducible bit-for-bit from its seed.
package sim

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation. Durations are also expressed as Time values.
type Time int64

// Common durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
	Minute      Time = 60 * Second
	Hour        Time = 60 * Minute
)

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros converts t to floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis converts t to floating-point milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// MaxTime is the largest representable Time.
const MaxTime = Time(1<<63 - 1)

// Max returns the later of a and b.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// Min returns the earlier of a and b.
func Min(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

// Resource models a hardware unit that executes one operation at a time
// (a flash die, a channel bus, a controller core). Operations acquire the
// resource for a duration; if the resource is busy the operation queues
// behind the current occupant. This busy-until model is the standard
// first-order contention model used by SSD simulators.
type Resource struct {
	busyUntil Time
}

// Acquire reserves the resource for dur starting no earlier than at.
// It returns the actual start and end times of the reservation.
func (r *Resource) Acquire(at, dur Time) (start, end Time) {
	start = Max(at, r.busyUntil)
	end = start + dur
	r.busyUntil = end
	return start, end
}

// FreeAt reports the earliest time the resource is available.
func (r *Resource) FreeAt() Time { return r.busyUntil }

// Reset makes the resource immediately available.
func (r *Resource) Reset() { r.busyUntil = 0 }

// Interrupt cancels any reservation extending past t, making the resource
// free at t. Power loss uses it: in-flight work is abandoned, so the
// resource must not stay "busy" into a future that never happened.
func (r *Resource) Interrupt(t Time) {
	if r.busyUntil > t {
		r.busyUntil = t
	}
}

// AcquireAll reserves every resource for dur starting no earlier than at and
// no earlier than the moment all of them are free. It is used for operations
// that need several units at once (e.g. a multi-plane erase).
func AcquireAll(at, dur Time, rs ...*Resource) (start, end Time) {
	start = at
	for _, r := range rs {
		start = Max(start, r.FreeAt())
	}
	end = start + dur
	for _, r := range rs {
		r.busyUntil = end
	}
	return start, end
}
