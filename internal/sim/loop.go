package sim

import "container/heap"

// event is a scheduled callback.
type event struct {
	at  Time
	seq uint64 // tie-break so same-time events run in scheduling order
	fn  func(now Time)
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Loop executes scheduled callbacks in strict virtual-time order.
// Callbacks may schedule further callbacks; the loop runs until the event
// queue is empty or Stop is called. Two events scheduled for the same time
// run in the order they were scheduled.
//
// A closed-loop worker is expressed as a callback that performs one
// operation and reschedules itself at the operation's completion time;
// an open-loop arrival process schedules one callback per arrival.
type Loop struct {
	h       eventHeap
	now     Time
	seq     uint64
	stopped bool
	steps   uint64

	// OnEvent, if set, runs after every executed event with the loop's
	// current time. It is the hook telemetry uses to drive its virtual-time
	// sampler from the event loop (telemetry.Probe.Tick is nil-safe and fits
	// directly); keep it cheap, it runs once per event.
	OnEvent func(now Time)
}

// NewLoop returns an empty event loop positioned at time 0.
func NewLoop() *Loop { return &Loop{} }

// Now reports the loop's current virtual time: the timestamp of the event
// being executed, or of the last event executed.
func (l *Loop) Now() Time { return l.now }

// At schedules fn to run at time t. Scheduling an event in the past
// (t < Now) is a programming error and panics: it would violate causality
// and silently corrupt latency measurements.
func (l *Loop) At(t Time, fn func(now Time)) {
	if t < l.now {
		panic("sim: event scheduled in the past")
	}
	l.seq++
	heap.Push(&l.h, event{at: t, seq: l.seq, fn: fn})
}

// After schedules fn to run d after the loop's current time.
func (l *Loop) After(d Time, fn func(now Time)) { l.At(l.now+d, fn) }

// NextAt reports the timestamp of the earliest queued event, or false if the
// queue is empty. The shard scheduler uses it to compute conservative
// horizons without disturbing the queue.
func (l *Loop) NextAt() (Time, bool) {
	if len(l.h) == 0 {
		return 0, false
	}
	return l.h[0].at, true
}

// Pending reports how many events are queued.
func (l *Loop) Pending() int { return len(l.h) }

// Stop makes the in-progress Run or RunUntil return after the current event
// completes. The flag is scoped to one run: the next Run/RunUntil call clears
// it and resumes from the queue, so a Stop issued while no run is in progress
// has no effect. Remaining events stay queued.
func (l *Loop) Stop() { l.stopped = true }

// Steps reports how many events have been executed.
func (l *Loop) Steps() uint64 { return l.steps }

// Run executes events until the queue is empty or Stop is called.
// It returns the virtual time of the last event executed.
func (l *Loop) Run() Time {
	l.stopped = false
	for len(l.h) > 0 && !l.stopped {
		e := heap.Pop(&l.h).(event)
		l.now = e.at
		l.steps++
		e.fn(e.at)
		if l.OnEvent != nil {
			l.OnEvent(e.at)
		}
	}
	return l.now
}

// RunUntil executes events with timestamps <= deadline, leaving later events
// queued, and advances the clock to the deadline (so a subsequent At(t) with
// t in (lastEvent, deadline] is legal and immediate work lands after the
// window, matching a real device that sat idle until the deadline). If Stop
// fires mid-run the clock stays at the stopping event instead: events <=
// deadline may still be queued, and jumping past them would run them with a
// time already beyond their timestamps on resume.
func (l *Loop) RunUntil(deadline Time) Time {
	l.stopped = false
	for len(l.h) > 0 && !l.stopped && l.h[0].at <= deadline {
		e := heap.Pop(&l.h).(event)
		l.now = e.at
		l.steps++
		e.fn(e.at)
		if l.OnEvent != nil {
			l.OnEvent(e.at)
		}
	}
	if !l.stopped && l.now < deadline {
		l.now = deadline
	}
	return l.now
}
