package sim

import (
	"testing"
	"testing/quick"
)

func TestTimeConversions(t *testing.T) {
	if Second.Seconds() != 1.0 {
		t.Errorf("Second.Seconds() = %v, want 1", Second.Seconds())
	}
	if Millisecond.Micros() != 1000 {
		t.Errorf("Millisecond.Micros() = %v, want 1000", Millisecond.Micros())
	}
	if (2 * Second).Millis() != 2000 {
		t.Errorf("(2s).Millis() = %v, want 2000", (2 * Second).Millis())
	}
}

func TestMaxMin(t *testing.T) {
	if Max(1, 2) != 2 || Max(2, 1) != 2 {
		t.Error("Max wrong")
	}
	if Min(1, 2) != 1 || Min(2, 1) != 1 {
		t.Error("Min wrong")
	}
}

func TestResourceIdle(t *testing.T) {
	var r Resource
	start, end := r.Acquire(100, 50)
	if start != 100 || end != 150 {
		t.Errorf("Acquire on idle resource: got (%d,%d), want (100,150)", start, end)
	}
}

func TestResourceQueueing(t *testing.T) {
	var r Resource
	r.Acquire(0, 100)
	// Second op arrives while the first is in flight: it must queue.
	start, end := r.Acquire(10, 50)
	if start != 100 || end != 150 {
		t.Errorf("queued op: got (%d,%d), want (100,150)", start, end)
	}
	// Third op arrives after the resource went idle: no queueing.
	start, end = r.Acquire(1000, 5)
	if start != 1000 || end != 1005 {
		t.Errorf("idle op: got (%d,%d), want (1000,1005)", start, end)
	}
}

func TestResourceReset(t *testing.T) {
	var r Resource
	r.Acquire(0, 100)
	r.Reset()
	if r.FreeAt() != 0 {
		t.Errorf("FreeAt after Reset = %d, want 0", r.FreeAt())
	}
}

func TestAcquireAll(t *testing.T) {
	var a, b Resource
	a.Acquire(0, 100)
	b.Acquire(0, 30)
	start, end := AcquireAll(50, 10, &a, &b)
	if start != 100 || end != 110 {
		t.Errorf("AcquireAll: got (%d,%d), want (100,110)", start, end)
	}
	if a.FreeAt() != 110 || b.FreeAt() != 110 {
		t.Errorf("AcquireAll must reserve all resources: a=%d b=%d", a.FreeAt(), b.FreeAt())
	}
}

// Property: a sequence of acquisitions never overlaps and never starts before
// its request time.
func TestResourceNoOverlapProperty(t *testing.T) {
	f := func(durs []uint16, gaps []uint16) bool {
		var r Resource
		var at, prevEnd Time
		n := len(durs)
		if len(gaps) < n {
			n = len(gaps)
		}
		for i := 0; i < n; i++ {
			at += Time(gaps[i])
			start, end := r.Acquire(at, Time(durs[i]))
			if start < at || start < prevEnd || end != start+Time(durs[i]) {
				return false
			}
			prevEnd = end
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLoopOrdering(t *testing.T) {
	l := NewLoop()
	var got []int
	l.At(30, func(Time) { got = append(got, 3) })
	l.At(10, func(Time) { got = append(got, 1) })
	l.At(20, func(Time) { got = append(got, 2) })
	end := l.Run()
	if end != 30 {
		t.Errorf("Run returned %d, want 30", end)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("events out of order: %v", got)
	}
}

func TestLoopSameTimeFIFO(t *testing.T) {
	l := NewLoop()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		l.At(5, func(Time) { got = append(got, i) })
	}
	l.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestLoopReschedule(t *testing.T) {
	l := NewLoop()
	count := 0
	var step func(now Time)
	step = func(now Time) {
		count++
		if count < 5 {
			l.At(now+10, step)
		}
	}
	l.At(0, step)
	end := l.Run()
	if count != 5 {
		t.Errorf("count = %d, want 5", count)
	}
	if end != 40 {
		t.Errorf("end = %d, want 40", end)
	}
}

func TestLoopPastEventPanics(t *testing.T) {
	l := NewLoop()
	l.At(100, func(now Time) {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		l.At(50, func(Time) {})
	})
	l.Run()
}

func TestLoopStop(t *testing.T) {
	l := NewLoop()
	ran := 0
	l.At(1, func(Time) { ran++; l.Stop() })
	l.At(2, func(Time) { ran++ })
	l.Run()
	if ran != 1 {
		t.Errorf("ran = %d, want 1 (Stop must halt the loop)", ran)
	}
	// The remaining event is still queued and runs on the next Run.
	l.Run()
	if ran != 2 {
		t.Errorf("ran = %d, want 2 after resuming", ran)
	}
}

// Stop is scoped to the in-progress run: a Stop issued while no run is in
// progress is cleared by the next Run call, which executes normally. The
// shard scheduler mirrors this exactly (lanes are plain Loops).
func TestLoopStopBeforeRunIsCleared(t *testing.T) {
	l := NewLoop()
	ran := 0
	l.At(1, func(Time) { ran++ })
	l.Stop()
	l.Run()
	if ran != 1 {
		t.Errorf("ran = %d, want 1 (Stop outside a run must not stick)", ran)
	}
}

// Stop during an event halts before the next event even when that event
// shares the stopping event's timestamp: "after the current event" means
// exactly one more callback never runs early.
func TestLoopStopSkipsSameTimeSuccessors(t *testing.T) {
	l := NewLoop()
	var got []int
	l.At(5, func(Time) { got = append(got, 1); l.Stop() })
	l.At(5, func(Time) { got = append(got, 2) })
	end := l.Run()
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("Stop did not halt before same-time successor: %v", got)
	}
	if end != 5 || l.Now() != 5 {
		t.Errorf("stopped at time %d (Now=%d), want 5", end, l.Now())
	}
	l.Run()
	if len(got) != 2 || got[1] != 2 {
		t.Errorf("resume did not run the deferred same-time event: %v", got)
	}
}

// Stop during RunUntil must leave the clock at the stopping event, not at
// the deadline: events <= deadline can still be queued, and advancing past
// them would hand their callbacks a non-monotonic clock on resume (and make
// legal At() calls panic as "in the past").
func TestLoopStopDuringRunUntilKeepsClock(t *testing.T) {
	l := NewLoop()
	var ran []Time
	l.At(10, func(now Time) { ran = append(ran, now); l.Stop() })
	l.At(20, func(now Time) { ran = append(ran, now) })
	end := l.RunUntil(25)
	if end != 10 || l.Now() != 10 {
		t.Fatalf("RunUntil stopped at %d (Now=%d), want clock held at 10", end, l.Now())
	}
	// The held clock keeps causality intact: scheduling between the stop
	// point and the deadline is legal, and resume runs everything in order.
	l.At(15, func(now Time) { ran = append(ran, now) })
	l.Run()
	want := []Time{10, 15, 20}
	if len(ran) != len(want) {
		t.Fatalf("resume ran %v, want %v", ran, want)
	}
	for i := range want {
		if ran[i] != want[i] {
			t.Fatalf("resume ran %v, want %v", ran, want)
		}
	}
}

// An event scheduled exactly at the deadline is inside the window.
func TestLoopRunUntilExactDeadline(t *testing.T) {
	l := NewLoop()
	ran := 0
	l.At(25, func(Time) { ran++ })
	end := l.RunUntil(25)
	if ran != 1 {
		t.Errorf("event at the exact deadline did not run")
	}
	if end != 25 || l.Now() != 25 {
		t.Errorf("RunUntil(25) returned %d (Now=%d), want 25", end, l.Now())
	}
}

// RunUntil with an empty window still advances the clock to the deadline.
func TestLoopRunUntilIdleAdvancesClock(t *testing.T) {
	l := NewLoop()
	l.At(100, func(Time) {})
	if end := l.RunUntil(40); end != 40 {
		t.Errorf("idle RunUntil(40) returned %d, want 40", end)
	}
	if l.Now() != 40 {
		t.Errorf("Now() = %d, want 40", l.Now())
	}
}

// The panic message is part of the contract: the shard scheduler re-raises
// it verbatim for lane-local causality violations.
func TestLoopPastEventPanicMessage(t *testing.T) {
	l := NewLoop()
	l.At(100, func(now Time) {
		defer func() {
			r := recover()
			msg, ok := r.(string)
			if !ok || msg != "sim: event scheduled in the past" {
				t.Errorf("panic = %v, want %q", r, "sim: event scheduled in the past")
			}
		}()
		l.At(50, func(Time) {})
	})
	l.Run()
}

func TestLoopRunUntil(t *testing.T) {
	l := NewLoop()
	var got []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		l.At(at, func(now Time) { got = append(got, now) })
	}
	l.RunUntil(25)
	if len(got) != 2 {
		t.Fatalf("RunUntil(25) ran %d events, want 2", len(got))
	}
	if l.Now() != 25 {
		t.Errorf("Now() = %d, want 25", l.Now())
	}
	l.Run()
	if len(got) != 4 {
		t.Errorf("resume ran %d events total, want 4", len(got))
	}
}

func TestLoopAfter(t *testing.T) {
	l := NewLoop()
	var at Time
	l.At(100, func(now Time) {
		l.After(50, func(now Time) { at = now })
	})
	l.Run()
	if at != 150 {
		t.Errorf("After fired at %d, want 150", at)
	}
}

// Property: Loop executes events in nondecreasing time order regardless of
// scheduling order.
func TestLoopTimeOrderProperty(t *testing.T) {
	f := func(times []uint32) bool {
		l := NewLoop()
		var seen []Time
		for _, tt := range times {
			tt := Time(tt)
			l.At(tt, func(now Time) { seen = append(seen, now) })
		}
		l.Run()
		for i := 1; i < len(seen); i++ {
			if seen[i] < seen[i-1] {
				return false
			}
		}
		return len(seen) == len(times)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
