package shard

import (
	"fmt"
	"strings"
	"testing"

	"blockhead/internal/sim"
)

// runTrace executes a fixed logical workload — nTasks self-rescheduling
// workers, task i on lane i%lanes, aggregating into a per-task result slot,
// with a barrier at the end that renders the merged output — and returns
// (rendered output, Steps, final time). The workload is identical for every
// lane count, so everything returned must be too.
func runTrace(lanes, nTasks, hops int, skew func(task int) int) (string, uint64, sim.Time) {
	l := New(lanes)
	results := make([]sim.Time, nTasks)
	for i := 0; i < nTasks; i++ {
		i := i
		h := l.Lane(i % lanes)
		var step func(now sim.Time)
		remaining := hops
		step = func(now sim.Time) {
			// Lane-local state only; the skew burns CPU to vary real-time
			// interleaving without touching virtual time.
			if skew != nil {
				x := 0
				for k := 0; k < skew(i); k++ {
					x += k
				}
				_ = x
			}
			results[i] = now // slot i is written only by task i's lane
			remaining--
			if remaining > 0 {
				h.After(sim.Time(10*(i+1)), step)
			}
		}
		h.At(sim.Time(i), step)
	}
	var out strings.Builder
	var end sim.Time
	l.AtBarrier(1_000_000, func(now sim.Time) {
		for i, r := range results {
			fmt.Fprintf(&out, "task%d=%d ", i, r)
		}
		end = now
	})
	final := l.Run()
	_ = end
	return out.String(), l.Steps(), final
}

// The equivalence battery in miniature: the same seeded workload must
// produce byte-identical merged output, the same step count, and the same
// final virtual time for every lane count.
func TestShardDeterministicAcrossLaneCounts(t *testing.T) {
	refOut, refSteps, refEnd := runTrace(1, 12, 5, nil)
	for _, lanes := range []int{2, 3, 4, 8} {
		out, steps, end := runTrace(lanes, 12, 5, nil)
		if out != refOut {
			t.Errorf("lanes=%d merged output differs:\n  got  %s\n  want %s", lanes, out, refOut)
		}
		if steps != refSteps {
			t.Errorf("lanes=%d Steps() = %d, want %d", lanes, steps, refSteps)
		}
		if end != refEnd {
			t.Errorf("lanes=%d final time = %d, want %d", lanes, end, refEnd)
		}
	}
}

// Adversarial barrier ordering: two lanes reach the same barrier in both
// real-time orders (lane 0 slow then lane 1 slow), injected via CPU skew.
// The merge output must be identical — virtual time, not arrival order,
// decides everything.
func TestShardAdversarialBarrierOrdering(t *testing.T) {
	heavy := func(task int) int {
		if task%2 == 0 {
			return 200_000
		}
		return 0
	}
	light := func(task int) int {
		if task%2 == 1 {
			return 200_000
		}
		return 0
	}
	outA, stepsA, endA := runTrace(2, 8, 4, heavy)
	outB, stepsB, endB := runTrace(2, 8, 4, light)
	if outA != outB {
		t.Errorf("barrier arrival order changed the merge:\n  A %s\n  B %s", outA, outB)
	}
	if stepsA != stepsB || endA != endB {
		t.Errorf("barrier arrival order changed bookkeeping: steps %d vs %d, end %d vs %d",
			stepsA, stepsB, endA, endB)
	}
}

// A single-lane shard loop executes the exact serial schedule: same event
// order, same Steps, same final time as a plain sim.Loop.
func TestShardSingleLaneMatchesSerial(t *testing.T) {
	build := func(at func(sim.Time, func(sim.Time)), after func(sim.Time, func(sim.Time)), got *[]sim.Time) {
		var step func(now sim.Time)
		n := 0
		step = func(now sim.Time) {
			*got = append(*got, now)
			n++
			if n < 6 {
				after(7, step)
			}
		}
		at(3, step)
		at(3, func(now sim.Time) { *got = append(*got, now+1000) })
	}
	ref := sim.NewLoop()
	var refGot []sim.Time
	build(ref.At, ref.After, &refGot)
	refEnd := ref.Run()

	l := New(1)
	h := l.Lane(0)
	var got []sim.Time
	build(h.At, h.After, &got)
	end := l.Run()

	if fmt.Sprint(got) != fmt.Sprint(refGot) {
		t.Errorf("single-lane schedule differs: got %v, want %v", got, refGot)
	}
	if end != refEnd {
		t.Errorf("final time = %d, want %d", end, refEnd)
	}
	if l.Steps() != ref.Steps() {
		t.Errorf("Steps() = %d, want %d", l.Steps(), ref.Steps())
	}
}

// A barrier observes every lane quiesced at or past its timestamp with all
// earlier lane events executed.
func TestShardBarrierQuiescence(t *testing.T) {
	l := New(4)
	executed := make([]int, 4)
	for i := 0; i < 4; i++ {
		i := i
		for k := 0; k < 3; k++ {
			l.At(i, sim.Time(10*(k+1)), func(sim.Time) { executed[i]++ })
		}
		l.At(i, 500, func(sim.Time) { executed[i] += 100 })
	}
	var seen []int
	var lanesAt []sim.Time
	l.AtBarrier(100, func(now sim.Time) {
		seen = append([]int(nil), executed...)
		for i := 0; i < 4; i++ {
			lanesAt = append(lanesAt, l.Lane(i).Now())
		}
	})
	l.Run()
	for i, n := range seen {
		if n != 3 {
			t.Errorf("lane %d had run %d pre-barrier events at the barrier, want 3", i, n)
		}
		if lanesAt[i] < 100 {
			t.Errorf("lane %d clock at the barrier = %d, want >= 100", i, lanesAt[i])
		}
	}
	for i, n := range executed {
		if n != 103 {
			t.Errorf("lane %d final count = %d, want 103", i, n)
		}
	}
}

// Cross-lane events stage during the round and deliver in (time, origin
// lane, origin order) — ties broken by origin, never by goroutine timing.
func TestShardCrossLaneDeliveryOrder(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		l := New(3)
		var got []string
		for origin := 0; origin < 2; origin++ {
			origin := origin
			h := l.Lane(origin)
			h.At(10, func(now sim.Time) {
				h.AtLane(2, 50, func(now sim.Time) {
					got = append(got, fmt.Sprintf("from%d@%d", origin, now))
				})
			})
		}
		l.Run()
		want := "[from0@50 from1@50]"
		if fmt.Sprint(got) != want {
			t.Fatalf("trial %d: delivery order %v, want %s", trial, got, want)
		}
	}
}

// Stop halts at the next quiescent point (the end of the current round);
// later rounds' events stay queued and the next Run resumes them. Barriers
// split the schedule into rounds, so an event in a later round is a clean
// probe for "did not run before resume".
func TestShardStopAndResume(t *testing.T) {
	l := New(2)
	preBarrier, postBarrier := 0, 0
	h := l.Lane(0)
	h.At(1, func(sim.Time) { preBarrier++; l.Stop() })
	l.AtBarrier(500, func(sim.Time) {})
	l.At(1, 1000, func(sim.Time) { postBarrier++ })
	l.Run()
	if preBarrier != 1 || postBarrier != 0 {
		t.Errorf("after Stop: preBarrier=%d postBarrier=%d, want 1/0 (stop at round end)",
			preBarrier, postBarrier)
	}
	l.Run()
	if postBarrier != 1 {
		t.Errorf("postBarrier = %d after resume, want 1", postBarrier)
	}
}

// A causality violation inside a lane surfaces with the serial loop's
// panic, re-raised on the coordinator.
func TestShardPastEventPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if msg, ok := r.(string); !ok || msg != "sim: event scheduled in the past" {
			t.Errorf("panic = %v, want the serial past-event message", r)
		}
	}()
	l := New(2)
	h := l.Lane(0)
	h.At(100, func(sim.Time) { h.At(50, func(sim.Time) {}) })
	l.Run()
}

// Loop-level scheduling from inside a running lane is a data race; the
// scheduler rejects it loudly instead of corrupting a heap.
func TestShardLoopAtDuringParallelPanics(t *testing.T) {
	defer func() {
		r := recover()
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "use Lane.At") {
			t.Errorf("panic = %v, want the Loop.At misuse message", r)
		}
	}()
	l := New(2)
	l.At(0, 10, func(sim.Time) { l.At(1, 20, func(sim.Time) {}) })
	l.Run()
}

// A barrier staged behind the horizon the lanes already ran to is a
// protocol violation, not a silent reordering.
func TestShardBarrierBehindHorizonPanics(t *testing.T) {
	defer func() {
		r := recover()
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "before the horizon") {
			t.Errorf("panic = %v, want the horizon violation message", r)
		}
	}()
	l := New(2)
	l.AtBarrier(100, func(sim.Time) {})
	h := l.Lane(0)
	h.At(10, func(sim.Time) { h.AtBarrier(20, func(sim.Time) {}) })
	l.Run()
}

// Barrier callbacks run on the coordinator and may schedule lane work
// directly; the next round executes it. Results land in lane-local slots
// (lanes run concurrently; a shared append would race).
func TestShardBarrierSchedulesLaneWork(t *testing.T) {
	l := New(3)
	slots := make([]string, 3)
	l.AtBarrier(100, func(now sim.Time) {
		for i := 0; i < 3; i++ {
			i := i
			l.At(i, now+sim.Time(i), func(at sim.Time) {
				slots[i] = fmt.Sprintf("lane%d@%d", i, at)
			})
		}
	})
	l.Run()
	want := []string{"lane0@100", "lane1@101", "lane2@102"}
	for i := range want {
		if slots[i] != want[i] {
			t.Errorf("slot %d = %q, want %q", i, slots[i], want[i])
		}
	}
}
