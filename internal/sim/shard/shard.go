// Package shard is the repo's conservative-lookahead parallel
// discrete-event scheduler. It partitions a simulation into lanes — one per
// flash channel/LUN group, or one per independent device stack — runs each
// lane's event heap (a plain sim.Loop) on its own goroutine, and
// synchronizes at barrier events for cross-lane operations.
//
// The design target is determinism first, speedup second: a seeded run must
// produce byte-identical results regardless of the lane count, so every
// source of scheduling freedom is removed:
//
//   - Lane-local events execute on the lane's own sim.Loop in strict
//     (time, scheduling-order) order, exactly as the serial reference.
//   - Cross-lane and barrier events scheduled from inside a running lane
//     are STAGED, not delivered: each lane appends to a private buffer
//     (no locks, no contention) and the coordinator merges all buffers at
//     the next quiescent point in (time, origin lane, origin order) —
//     a total order independent of goroutine interleaving.
//   - Barrier callbacks run single-threaded on the coordinator while every
//     lane is parked at or past the barrier's timestamp (the conservative
//     lookahead: lanes never run beyond the earliest pending barrier).
//
// Mutable state must be lane-local or touched only inside barrier
// callbacks; simlint's shardcheck affinity map is the contract for which is
// which, and the concurrency carve-out admits goroutines only in this
// package. Commutative aggregates (counters, histograms, blame matrices)
// merge at barriers per their //simlint:shared strategies; per-lane
// AttrSinks merge at End.
package shard

import (
	"sync"
	"sync/atomic"

	"blockhead/internal/sim"
)

// staged is a cross-lane or barrier event captured during parallel
// execution, delivered by the coordinator at the next quiescent point.
type staged struct {
	at     sim.Time
	origin int    // staging lane
	seq    uint64 // per-origin staging order
	lane   int    // target lane, or barrierLane
	fn     func(now sim.Time)
}

const barrierLane = -1

// lane is one shard: a serial event loop plus the staging buffer its
// callbacks fill. Only the lane's own goroutine touches either during a
// round; the coordinator touches them only while the lane is parked.
type lane struct {
	loop     *sim.Loop
	id       int
	staged   []staged
	stageSeq uint64
	panicked interface{} // recovered lane panic, re-raised by the coordinator
}

// Loop is the parallel scheduler. Zero value is not usable; call New.
type Loop struct {
	lanes    []*lane
	global   *sim.Loop // barrier events; runs only on the coordinator
	parallel atomic.Bool
	stopped  atomic.Bool
}

// New returns a scheduler with n lanes (n >= 1) positioned at time 0.
func New(n int) *Loop {
	if n < 1 {
		panic("shard: lane count must be >= 1")
	}
	l := &Loop{global: sim.NewLoop()}
	for i := 0; i < n; i++ {
		l.lanes = append(l.lanes, &lane{loop: sim.NewLoop(), id: i})
	}
	return l
}

// Lanes reports the lane count.
func (l *Loop) Lanes() int { return len(l.lanes) }

// Lane returns lane i's scheduling handle. Lane callbacks must schedule
// through their own lane's handle; the coordinator (setup code and barrier
// callbacks) may use any handle or the Loop-level methods.
func (l *Loop) Lane(i int) *Lane { return &Lane{l: l, ln: l.lanes[i]} }

// At schedules fn on lane i at time t. Coordinator context only (setup or a
// barrier callback): calling it while lanes are running is a data race on
// the target heap, so it panics instead.
func (l *Loop) At(i int, t sim.Time, fn func(now sim.Time)) {
	if l.parallel.Load() {
		panic("shard: Loop.At called during parallel execution; use Lane.At")
	}
	l.lanes[i].loop.At(t, fn)
}

// AtBarrier schedules fn as a barrier event at time t: it runs
// single-threaded once every lane has quiesced to >= t. Coordinator context
// only; lane callbacks stage through Lane.AtBarrier.
func (l *Loop) AtBarrier(t sim.Time, fn func(now sim.Time)) {
	if l.parallel.Load() {
		panic("shard: Loop.AtBarrier called during parallel execution; use Lane.AtBarrier")
	}
	l.global.At(t, fn)
}

// Stop makes the in-progress Run return at the next quiescent point (the
// end of the current round). Like sim.Loop.Stop it is scoped to one run:
// the next Run call clears it and resumes from the queues.
func (l *Loop) Stop() { l.stopped.Store(true) }

// Steps reports how many events have been executed across all lanes and
// the barrier loop. Call only while quiescent (not from lane callbacks).
func (l *Loop) Steps() uint64 {
	var s uint64
	for _, ln := range l.lanes {
		s += ln.loop.Steps()
	}
	return s + l.global.Steps()
}

// Now reports the scheduler's quiescent virtual time: the maximum time any
// lane or barrier has reached. Call only while quiescent.
func (l *Loop) Now() sim.Time {
	now := l.global.Now()
	for _, ln := range l.lanes {
		if t := ln.loop.Now(); t > now {
			now = t
		}
	}
	return now
}

// Run executes events until every lane and the barrier queue is empty or
// Stop is called. It returns the final quiescent virtual time (the maximum
// across lanes, mirroring the serial loop's "time of the last event").
//
// Each round: compute the horizon H (the earliest pending barrier), run
// every lane concurrently up to H (or to empty if no barrier is pending),
// then — single-threaded — merge staged cross-lane events in (time, origin
// lane, origin order) and execute the barrier events at H. Determinism
// follows because every step of the round is a pure function of the queues'
// contents, never of goroutine timing.
func (l *Loop) Run() sim.Time {
	l.stopped.Store(false)
	for !l.stopped.Load() {
		horizon, hasBarrier := l.global.NextAt()
		if !hasBarrier && !l.anyLanePending() {
			break
		}
		l.runLanes(horizon, hasBarrier)
		l.mergeStaged(horizon, hasBarrier)
		if l.stopped.Load() {
			break
		}
		if t, ok := l.global.NextAt(); ok {
			// Execute exactly the barrier events at the head timestamp
			// (FIFO within the timestamp, like the serial loop); later
			// barriers define the next round's horizon.
			l.global.RunUntil(t)
		}
	}
	return l.Now()
}

// anyLanePending reports whether any lane has queued events.
func (l *Loop) anyLanePending() bool {
	for _, ln := range l.lanes {
		if ln.loop.Pending() > 0 {
			return true
		}
	}
	return false
}

// runLanes runs every lane concurrently up to the horizon (or to empty when
// no barrier is pending) and waits for all of them. Lane panics are
// captured and re-raised here so causality violations inside a lane surface
// with the same message as in the serial loop.
func (l *Loop) runLanes(horizon sim.Time, hasBarrier bool) {
	l.parallel.Store(true)
	var wg sync.WaitGroup
	for _, ln := range l.lanes {
		wg.Add(1)
		go func(ln *lane) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					ln.panicked = r
				}
			}()
			if hasBarrier {
				ln.loop.RunUntil(horizon)
			} else {
				ln.loop.Run()
			}
		}(ln)
	}
	wg.Wait()
	l.parallel.Store(false)
	for _, ln := range l.lanes {
		if r := ln.panicked; r != nil {
			ln.panicked = nil
			panic(r)
		}
	}
}

// mergeStaged delivers every event staged during the round in (time, origin
// lane, origin order) — a total order independent of goroutine timing, so
// same-heap tie-break sequence numbers are assigned deterministically.
func (l *Loop) mergeStaged(horizon sim.Time, hasBarrier bool) {
	var all []staged
	for _, ln := range l.lanes {
		all = append(all, ln.staged...)
		ln.staged = ln.staged[:0]
	}
	if len(all) == 0 {
		return
	}
	// Insertion sort keeps the package free of sort.Slice's less-func
	// allocations; staging buffers are short-lived and small.
	for i := 1; i < len(all); i++ {
		for j := i; j > 0 && stagedBefore(all[j], all[j-1]); j-- {
			all[j], all[j-1] = all[j-1], all[j]
		}
	}
	for _, s := range all {
		if s.lane == barrierLane {
			if hasBarrier && s.at < horizon {
				// The lanes already ran past s.at; executing the barrier
				// now would hand it a world beyond its timestamp.
				panic("shard: barrier event scheduled before the horizon")
			}
			l.global.At(s.at, s.fn)
			continue
		}
		// Cross-lane delivery: the target's own clock enforces causality
		// (sim.Loop.At panics on t < now with the standard message).
		l.lanes[s.lane].loop.At(s.at, s.fn)
	}
}

func stagedBefore(a, b staged) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.origin != b.origin {
		return a.origin < b.origin
	}
	return a.seq < b.seq
}

// Lane is the scheduling handle lane callbacks use. Methods on the lane's
// own state are direct; anything that crosses the lane boundary is staged
// for the coordinator's deterministic merge.
type Lane struct {
	l  *Loop
	ln *lane
}

// ID reports the lane's index.
func (h *Lane) ID() int { return h.ln.id }

// Now reports the lane's current virtual time.
func (h *Lane) Now() sim.Time { return h.ln.loop.Now() }

// Loop exposes the lane's underlying serial loop, so code written against
// *sim.Loop (workers, arrival processes) runs on a lane unchanged.
func (h *Lane) Loop() *sim.Loop { return h.ln.loop }

// At schedules fn on this lane at time t: lane-local, immediate, exactly
// sim.Loop.At (including the past-event panic).
func (h *Lane) At(t sim.Time, fn func(now sim.Time)) { h.ln.loop.At(t, fn) }

// After schedules fn on this lane d after the lane's current time.
func (h *Lane) After(d sim.Time, fn func(now sim.Time)) { h.ln.loop.After(d, fn) }

// AtLane schedules fn on another lane. Delivered at the next quiescent
// point; t must be >= the target's clock then (the merge enforces it with
// the serial loop's past-event panic). Scheduling on one's own lane
// degenerates to At.
func (h *Lane) AtLane(target int, t sim.Time, fn func(now sim.Time)) {
	if target == h.ln.id {
		h.At(t, fn)
		return
	}
	h.stage(staged{at: t, lane: target, fn: fn})
}

// AtBarrier schedules fn as a barrier event at time t >= the current
// horizon. Delivered at the next quiescent point; the coordinator rejects
// barriers behind the horizon the lanes already ran to.
func (h *Lane) AtBarrier(t sim.Time, fn func(now sim.Time)) {
	h.stage(staged{at: t, lane: barrierLane, fn: fn})
}

func (h *Lane) stage(s staged) {
	s.origin = h.ln.id
	h.ln.stageSeq++
	s.seq = h.ln.stageSeq
	h.ln.staged = append(h.ln.staged, s)
}
