// Package stats provides the measurement primitives shared by all
// experiments: latency distributions with exact percentiles, log-bucketed
// histograms for long runs, and counter groups for byte/operation
// accounting.
//
// Percentile reporting follows the convention of the storage literature:
// P50/P90/P99/P999 computed by the nearest-rank method over the recorded
// samples.
package stats

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"blockhead/internal/sim"
)

// Dist records a distribution of latency samples and computes summary
// statistics. The zero value is ready to use.
type Dist struct {
	samples []sim.Time
	sum     sim.Time
	max     sim.Time
	min     sim.Time
	sorted  bool
}

// NewDist returns an empty distribution with capacity hint n.
func NewDist(n int) *Dist {
	return &Dist{samples: make([]sim.Time, 0, n)}
}

// Add records one sample.
func (d *Dist) Add(v sim.Time) {
	if len(d.samples) == 0 || v < d.min {
		d.min = v
	}
	if v > d.max {
		d.max = v
	}
	d.sum += v
	d.samples = append(d.samples, v)
	d.sorted = false
}

// Count reports the number of recorded samples.
func (d *Dist) Count() int { return len(d.samples) }

// Mean reports the arithmetic mean, or 0 with no samples.
func (d *Dist) Mean() sim.Time {
	if len(d.samples) == 0 {
		return 0
	}
	return d.sum / sim.Time(len(d.samples))
}

// Max reports the largest sample, or 0 with no samples.
func (d *Dist) Max() sim.Time { return d.max }

// Min reports the smallest sample, or 0 with no samples.
func (d *Dist) Min() sim.Time {
	if len(d.samples) == 0 {
		return 0
	}
	return d.min
}

// Percentile reports the p-th percentile (0 < p <= 100) by nearest rank.
// It returns 0 with no samples.
func (d *Dist) Percentile(p float64) sim.Time {
	n := len(d.samples)
	if n == 0 {
		return 0
	}
	if !d.sorted {
		sort.Slice(d.samples, func(i, j int) bool { return d.samples[i] < d.samples[j] })
		d.sorted = true
	}
	rank := int(math.Ceil(p * float64(n) / 100))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return d.samples[rank-1]
}

// Summary bundles the statistics reported in experiment tables.
type Summary struct {
	Count int
	Mean  sim.Time
	P50   sim.Time
	P90   sim.Time
	P99   sim.Time
	P999  sim.Time
	Max   sim.Time
}

// Summary computes the full summary.
func (d *Dist) Summary() Summary {
	return Summary{
		Count: d.Count(),
		Mean:  d.Mean(),
		P50:   d.Percentile(50),
		P90:   d.Percentile(90),
		P99:   d.Percentile(99),
		P999:  d.Percentile(99.9),
		Max:   d.Max(),
	}
}

// String formats the summary with microsecond precision.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.1fus p50=%.1fus p90=%.1fus p99=%.1fus p999=%.1fus max=%.1fus",
		s.Count, s.Mean.Micros(), s.P50.Micros(), s.P90.Micros(), s.P99.Micros(), s.P999.Micros(), s.Max.Micros())
}

// Reset discards all samples.
func (d *Dist) Reset() {
	d.samples = d.samples[:0]
	d.sum, d.max, d.min = 0, 0, 0
	d.sorted = false
}

// Histogram is a log2-bucketed latency histogram for runs too long to keep
// exact samples. Bucket i covers [2^i, 2^(i+1)) nanoseconds.
//
//simlint:shared commutative aggregate: log2 bucket counts merge by summing at barriers
type Histogram struct {
	buckets [64]uint64
	count   uint64
	sum     sim.Time
	max     sim.Time
}

// Add records one sample (negative samples count into bucket 0).
func (h *Histogram) Add(v sim.Time) {
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
	h.buckets[bucketOf(v)]++
}

func bucketOf(v sim.Time) int {
	if v <= 0 {
		return 0
	}
	return 63 - bits.LeadingZeros64(uint64(v))
}

// Count reports the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.count }

// Mean reports the arithmetic mean, or 0 with no samples.
func (h *Histogram) Mean() sim.Time {
	if h.count == 0 {
		return 0
	}
	return h.sum / sim.Time(h.count)
}

// Max reports the largest sample.
func (h *Histogram) Max() sim.Time { return h.max }

// Percentile reports an upper bound on the p-th percentile: the upper edge
// of the bucket holding the nearest-rank sample.
func (h *Histogram) Percentile(p float64) sim.Time {
	if h.count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(p * float64(h.count) / 100))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i, c := range h.buckets {
		seen += c
		if seen >= rank {
			return sim.Time(1) << uint(i+1)
		}
	}
	return h.max
}

// Delta returns the histogram of samples recorded since prev was captured.
// All fields but max are monotonic, so the subtraction is exact; max cannot
// be recovered from a cumulative pair, so the delta's max is the upper edge
// of its highest non-empty bucket (an upper bound), or the cumulative max
// when that bucket is the cumulative max's own bucket.
func (h Histogram) Delta(prev Histogram) Histogram {
	d := Histogram{count: h.count - prev.count, sum: h.sum - prev.sum}
	top := -1
	for i := range h.buckets {
		d.buckets[i] = h.buckets[i] - prev.buckets[i]
		if d.buckets[i] > 0 {
			top = i
		}
	}
	if top >= 0 {
		if bucketOf(h.max) == top {
			d.max = h.max
		} else {
			d.max = sim.Time(1) << uint(top+1)
		}
	}
	return d
}

// Merge folds other's samples into h. Bucket counts, count, and sum are
// commutative aggregates and add exactly; max takes the larger side. This
// is the histogram's //simlint:shared merge strategy, applied at barriers
// when the parallel scheduler combines per-shard histograms.
func (h *Histogram) Merge(other Histogram) {
	h.count += other.count
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
	for i := range h.buckets {
		h.buckets[i] += other.buckets[i]
	}
}

// Counters tracks the byte- and operation-level accounting every device
// model exposes. Write amplification, PCIe traffic, and DRAM footprints in
// the experiment tables are all derived from these fields.
type Counters struct {
	// Host-visible traffic (what the application asked for).
	HostWritePages uint64
	HostReadPages  uint64

	// Flash-level traffic (what physically happened).
	FlashProgramPages uint64
	FlashReadPages    uint64
	BlockErases       uint64

	// GC work attributable to reclamation (subset of the flash counters).
	GCCopyPages uint64

	// Bytes crossing the host interface (PCIe). Simple-copy operations move
	// data without contributing here; that is the point of E10.
	PCIeBytes uint64
}

// WriteAmp reports flash programs per host write. Returns +Inf if data was
// programmed with no host writes, and 1.0 for an idle device.
func (c *Counters) WriteAmp() float64 {
	if c.HostWritePages == 0 {
		if c.FlashProgramPages == 0 {
			return 1.0
		}
		return math.Inf(1)
	}
	return float64(c.FlashProgramPages) / float64(c.HostWritePages)
}

// Add accumulates other into c.
func (c *Counters) Add(other Counters) {
	c.HostWritePages += other.HostWritePages
	c.HostReadPages += other.HostReadPages
	c.FlashProgramPages += other.FlashProgramPages
	c.FlashReadPages += other.FlashReadPages
	c.BlockErases += other.BlockErases
	c.GCCopyPages += other.GCCopyPages
	c.PCIeBytes += other.PCIeBytes
}

// Rate is a throughput helper: ops (or bytes) per virtual second.
func Rate(n uint64, elapsed sim.Time) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(n) / elapsed.Seconds()
}

// MiB converts bytes to MiB.
func MiB(b uint64) float64 { return float64(b) / (1 << 20) }
