package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"blockhead/internal/sim"
)

func TestDistEmpty(t *testing.T) {
	var d Dist
	if d.Count() != 0 || d.Mean() != 0 || d.Max() != 0 || d.Min() != 0 {
		t.Error("empty Dist must report zeros")
	}
	if d.Percentile(99) != 0 {
		t.Error("empty Dist percentile must be 0")
	}
}

func TestDistBasic(t *testing.T) {
	d := NewDist(8)
	for _, v := range []sim.Time{30, 10, 20, 40} {
		d.Add(v)
	}
	if d.Count() != 4 {
		t.Errorf("Count = %d, want 4", d.Count())
	}
	if d.Mean() != 25 {
		t.Errorf("Mean = %d, want 25", d.Mean())
	}
	if d.Min() != 10 || d.Max() != 40 {
		t.Errorf("Min/Max = %d/%d, want 10/40", d.Min(), d.Max())
	}
	if p := d.Percentile(50); p != 20 {
		t.Errorf("P50 = %d, want 20", p)
	}
	if p := d.Percentile(100); p != 40 {
		t.Errorf("P100 = %d, want 40", p)
	}
	if p := d.Percentile(1); p != 10 {
		t.Errorf("P1 = %d, want 10", p)
	}
}

func TestDistAddAfterPercentile(t *testing.T) {
	var d Dist
	d.Add(3)
	d.Add(1)
	_ = d.Percentile(50) // sorts
	d.Add(2)             // must re-sort on next query
	if p := d.Percentile(100); p != 3 {
		t.Errorf("P100 after interleaved Add = %d, want 3", p)
	}
	if p := d.Percentile(50); p != 2 {
		t.Errorf("P50 after interleaved Add = %d, want 2", p)
	}
}

func TestDistSummary(t *testing.T) {
	var d Dist
	for i := 1; i <= 1000; i++ {
		d.Add(sim.Time(i))
	}
	s := d.Summary()
	if s.Count != 1000 || s.P50 != 500 || s.P99 != 990 || s.P999 != 999 || s.Max != 1000 {
		t.Errorf("Summary = %+v", s)
	}
	if s.String() == "" {
		t.Error("Summary.String empty")
	}
}

func TestDistReset(t *testing.T) {
	var d Dist
	d.Add(5)
	d.Reset()
	if d.Count() != 0 || d.Mean() != 0 {
		t.Error("Reset did not clear the distribution")
	}
}

// Property: Percentile is monotone in p and bounded by Min/Max.
func TestDistPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		var d Dist
		for _, v := range raw {
			d.Add(sim.Time(v))
		}
		prev := sim.Time(-1)
		for p := 1.0; p <= 100; p += 7 {
			v := d.Percentile(p)
			if v < prev || v < d.Min() || v > d.Max() {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: nearest-rank P100 is exactly the max and P50 matches a direct
// computation on the sorted data.
func TestDistNearestRankProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		var d Dist
		vals := make([]int, len(raw))
		for i, v := range raw {
			d.Add(sim.Time(v))
			vals[i] = int(v)
		}
		sort.Ints(vals)
		if d.Percentile(100) != sim.Time(vals[len(vals)-1]) {
			return false
		}
		rank := int(math.Ceil(50 * float64(len(vals)) / 100))
		return d.Percentile(50) == sim.Time(vals[rank-1])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	if h.Percentile(99) != 0 || h.Mean() != 0 {
		t.Error("empty histogram must report zeros")
	}
	for i := 0; i < 100; i++ {
		h.Add(1000) // bucket [512, 1024) -> upper edge 1024
	}
	if h.Count() != 100 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Mean() != 1000 {
		t.Errorf("Mean = %d, want 1000", h.Mean())
	}
	if p := h.Percentile(50); p != 1024 {
		t.Errorf("P50 = %d, want 1024 (bucket upper edge)", p)
	}
	if h.Max() != 1000 {
		t.Errorf("Max = %d, want 1000", h.Max())
	}
}

func TestHistogramNonPositive(t *testing.T) {
	var h Histogram
	h.Add(0)
	h.Add(-5)
	if h.Count() != 2 {
		t.Errorf("Count = %d, want 2", h.Count())
	}
	if p := h.Percentile(100); p != 2 {
		t.Errorf("P100 = %d, want 2 (bucket 0 upper edge)", p)
	}
}

// Property: histogram percentile upper bound is >= the true nearest-rank
// percentile of the samples.
func TestHistogramUpperBoundProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		var h Histogram
		var d Dist
		for _, v := range raw {
			h.Add(sim.Time(v))
			d.Add(sim.Time(v))
		}
		for _, p := range []float64{50, 90, 99} {
			if h.Percentile(p) < d.Percentile(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCountersWriteAmp(t *testing.T) {
	c := Counters{HostWritePages: 100, FlashProgramPages: 250}
	if got := c.WriteAmp(); got != 2.5 {
		t.Errorf("WriteAmp = %v, want 2.5", got)
	}
	idle := Counters{}
	if got := idle.WriteAmp(); got != 1.0 {
		t.Errorf("idle WriteAmp = %v, want 1", got)
	}
	weird := Counters{FlashProgramPages: 10}
	if !math.IsInf(weird.WriteAmp(), 1) {
		t.Error("WriteAmp with zero host writes must be +Inf")
	}
}

func TestCountersAdd(t *testing.T) {
	a := Counters{HostWritePages: 1, HostReadPages: 2, FlashProgramPages: 3,
		FlashReadPages: 4, BlockErases: 5, GCCopyPages: 6, PCIeBytes: 7}
	b := a
	a.Add(b)
	if a.HostWritePages != 2 || a.PCIeBytes != 14 || a.GCCopyPages != 12 {
		t.Errorf("Add wrong: %+v", a)
	}
}

func TestRate(t *testing.T) {
	if r := Rate(1000, sim.Second); r != 1000 {
		t.Errorf("Rate = %v, want 1000", r)
	}
	if r := Rate(10, 0); r != 0 {
		t.Errorf("Rate with zero elapsed = %v, want 0", r)
	}
}

func TestMiB(t *testing.T) {
	if MiB(1<<20) != 1 {
		t.Error("MiB(1MiB) != 1")
	}
}
