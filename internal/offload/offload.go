// Package offload models the paper's final research question (§4.2): ZNS
// moves FTL work onto host CPUs at the same moment hyperscalers are moving
// I/O processing off them (AWS Nitro ASICs, Microsoft ARM SoCs, Alibaba
// FPGAs). "This apparent contradiction in system design philosophies calls
// for academic scrutiny... we envision research on how to decide which
// parts of the hardware stack should be responsible for which
// functionality."
//
// The model is Accelerometer-style arithmetic [Sriraman & Dhanotia,
// ASPLOS'20]: take the host-FTL's *measured* per-request work (mapping
// updates, relocation copies orchestrated, maintenance ticks — all counted
// by internal/hostftl during a simulated run), multiply by per-operation
// CPU costs, and price the resulting cores on a host x86 against a
// dedicated SoC. The output is the throughput threshold where offloading
// the ZNS translation layer pays for itself.
package offload

import "fmt"

// Work is the host-side FTL work per host I/O request, measured by a
// device-model run (counts are per 4 KiB request).
type Work struct {
	// MapOps is mapping-table reads+updates per request.
	MapOps float64
	// RelocPages is relocation pages orchestrated per request (the host
	// issues simple-copy or read+write commands and remaps).
	RelocPages float64
	// MaintTicks is scheduler/maintenance invocations per request.
	MaintTicks float64
}

// CostModel prices CPU work on the host and on a dedicated SoC.
type CostModel struct {
	// Cycles per unit of work.
	CyclesPerMapOp     float64
	CyclesPerRelocPage float64
	CyclesPerMaintTick float64

	// HostCoreHz and SoCCoreHz are effective core frequencies.
	HostCoreHz float64
	SoCCoreHz  float64

	// HostCoreUSD and SoCCoreUSD are amortized per-core prices. Dedicated
	// SoC cores are slower but far cheaper per core (the Nitro/LeapIO
	// premise); the SoC also carries a fixed board cost.
	HostCoreUSD float64
	SoCCoreUSD  float64
	SoCFixedUSD float64
}

// DefaultCostModel returns calibration constants: a 2.1 GHz host core at
// server pricing vs. a 1.2 GHz SoC core at embedded pricing plus a fixed
// card cost.
func DefaultCostModel() CostModel {
	return CostModel{
		CyclesPerMapOp:     300,  // hash/array lookup + update, cache-missy
		CyclesPerRelocPage: 1500, // command setup + completion + remap
		CyclesPerMaintTick: 800,  // victim scan step + bookkeeping
		HostCoreHz:         2.1e9,
		SoCCoreHz:          1.2e9,
		HostCoreUSD:        60,
		SoCCoreUSD:         8,
		SoCFixedUSD:        25,
	}
}

// Validate rejects non-positive constants.
func (m CostModel) Validate() error {
	if m.CyclesPerMapOp <= 0 || m.CyclesPerRelocPage <= 0 || m.CyclesPerMaintTick <= 0 ||
		m.HostCoreHz <= 0 || m.SoCCoreHz <= 0 || m.HostCoreUSD <= 0 || m.SoCCoreUSD <= 0 {
		return fmt.Errorf("offload: non-positive constant in %+v", m)
	}
	return nil
}

// CyclesPerRequest converts measured work into CPU cycles per request.
func (m CostModel) CyclesPerRequest(w Work) float64 {
	return w.MapOps*m.CyclesPerMapOp + w.RelocPages*m.CyclesPerRelocPage +
		w.MaintTicks*m.CyclesPerMaintTick
}

// HostCores reports host cores consumed running the translation layer at
// the given request rate.
func (m CostModel) HostCores(w Work, reqPerSec float64) float64 {
	return m.CyclesPerRequest(w) * reqPerSec / m.HostCoreHz
}

// SoCCores reports SoC cores needed for the same work.
func (m CostModel) SoCCores(w Work, reqPerSec float64) float64 {
	return m.CyclesPerRequest(w) * reqPerSec / m.SoCCoreHz
}

// HostUSD prices the host-resident translation layer at a request rate.
func (m CostModel) HostUSD(w Work, reqPerSec float64) float64 {
	return m.HostCores(w, reqPerSec) * m.HostCoreUSD
}

// SoCUSD prices the offloaded translation layer at a request rate.
func (m CostModel) SoCUSD(w Work, reqPerSec float64) float64 {
	return m.SoCFixedUSD + m.SoCCores(w, reqPerSec)*m.SoCCoreUSD
}

// BreakEvenReqPerSec reports the request rate above which offloading to
// the SoC is cheaper than host cores, or +Inf-like negative if never.
func (m CostModel) BreakEvenReqPerSec(w Work) float64 {
	perReqHost := m.CyclesPerRequest(w) / m.HostCoreHz * m.HostCoreUSD
	perReqSoC := m.CyclesPerRequest(w) / m.SoCCoreHz * m.SoCCoreUSD
	if perReqHost <= perReqSoC {
		return -1 // host is always cheaper per marginal request
	}
	return m.SoCFixedUSD / (perReqHost - perReqSoC)
}
