package offload

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultModelValid(t *testing.T) {
	if err := DefaultCostModel().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultCostModel()
	bad.HostCoreHz = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero frequency accepted")
	}
}

func TestCyclesPerRequest(t *testing.T) {
	m := CostModel{CyclesPerMapOp: 100, CyclesPerRelocPage: 1000, CyclesPerMaintTick: 10,
		HostCoreHz: 1e9, SoCCoreHz: 5e8, HostCoreUSD: 10, SoCCoreUSD: 1, SoCFixedUSD: 5}
	w := Work{MapOps: 2, RelocPages: 0.5, MaintTicks: 1}
	want := 2*100 + 0.5*1000 + 1*10.0
	if got := m.CyclesPerRequest(w); got != want {
		t.Errorf("CyclesPerRequest = %v, want %v", got, want)
	}
}

func TestCoreAndDollarAccounting(t *testing.T) {
	m := CostModel{CyclesPerMapOp: 1000, CyclesPerRelocPage: 1, CyclesPerMaintTick: 1,
		HostCoreHz: 1e9, SoCCoreHz: 5e8, HostCoreUSD: 100, SoCCoreUSD: 10, SoCFixedUSD: 20}
	w := Work{MapOps: 1}
	// 1e6 req/s * 1000 cycles = 1e9 cycles/s = 1 host core = $100.
	if got := m.HostCores(w, 1e6); math.Abs(got-1) > 1e-9 {
		t.Errorf("HostCores = %v, want 1", got)
	}
	if got := m.HostUSD(w, 1e6); math.Abs(got-100) > 1e-9 {
		t.Errorf("HostUSD = %v, want 100", got)
	}
	// SoC needs 2 cores (half the clock): $20 fixed + $20.
	if got := m.SoCCores(w, 1e6); math.Abs(got-2) > 1e-9 {
		t.Errorf("SoCCores = %v, want 2", got)
	}
	if got := m.SoCUSD(w, 1e6); math.Abs(got-40) > 1e-9 {
		t.Errorf("SoCUSD = %v, want 40", got)
	}
}

func TestBreakEven(t *testing.T) {
	m := CostModel{CyclesPerMapOp: 1000, CyclesPerRelocPage: 1, CyclesPerMaintTick: 1,
		HostCoreHz: 1e9, SoCCoreHz: 5e8, HostCoreUSD: 100, SoCCoreUSD: 10, SoCFixedUSD: 20}
	w := Work{MapOps: 1}
	// Per-request: host 1000/1e9*100 = 1e-4 $, soc 1000/5e8*10 = 2e-5 $.
	// Break-even: 20 / (1e-4 - 2e-5) = 250000 req/s.
	be := m.BreakEvenReqPerSec(w)
	if math.Abs(be-250000) > 1 {
		t.Errorf("BreakEven = %v, want 250000", be)
	}
	// At the break-even rate the two prices agree.
	if math.Abs(m.HostUSD(w, be)-m.SoCUSD(w, be)) > 1e-6 {
		t.Error("prices disagree at break-even")
	}
	// A SoC that is pricier per cycle never breaks even.
	never := m
	never.SoCCoreUSD = 1000
	if never.BreakEvenReqPerSec(w) >= 0 {
		t.Error("expected no break-even when SoC cycles cost more")
	}
}

// Property: prices are monotone in request rate and in work.
func TestMonotoneProperty(t *testing.T) {
	m := DefaultCostModel()
	f := func(mapOps, reloc uint16, rate uint32) bool {
		w := Work{MapOps: float64(mapOps%100) + 1, RelocPages: float64(reloc % 100)}
		r1 := float64(rate%1000000) + 1
		r2 := r1 * 2
		if m.HostUSD(w, r2) < m.HostUSD(w, r1) || m.SoCUSD(w, r2) < m.SoCUSD(w, r1) {
			return false
		}
		w2 := w
		w2.RelocPages++
		return m.HostUSD(w2, r1) >= m.HostUSD(w, r1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
