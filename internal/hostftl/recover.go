package hostftl

import (
	"errors"

	"blockhead/internal/fault"
	"blockhead/internal/flash"
	"blockhead/internal/sim"
	"blockhead/internal/telemetry"
	"blockhead/internal/zns"
)

// Recover models a power loss at crashAt followed by a restart of the whole
// ZNS stack. The device rediscovers its write pointers first
// (zns.Device.Recover, O(blocks)); then the host rebuilds its own mapping
// table by scanning the out-of-band stamps below each recovered write
// pointer, newest sequence number winning — the host-side analogue of the
// conventional FTL's recovery scan, except the host chooses the policy: a
// production dm-zoned-style layer would checkpoint its map and replay a
// tail, but the simulator models the worst-case full scan so the two stacks
// are compared on equal (pessimal) footing. Holes below a write pointer —
// programs that were in flight at the crash — read as flash.ErrUnwritten
// and are skipped; fully-dead Full zones are reset back into the free pool.
//
// The returned report is the device's, extended with the host scan's pages
// and rebuilt mapping count. Requires the device to have been built with
// zns.Config.Recovery.
func (f *FTL) Recover(crashAt sim.Time) (fault.RecoveryReport, error) {
	rep, err := f.dev.Recover(crashAt)
	if err != nil {
		return rep, err
	}

	// Wipe volatile host state: the mapping, valid counts, open-zone slots,
	// reclamation cursors, and the free pool are all host DRAM.
	for i := range f.l2p {
		f.l2p[i] = unmapped
	}
	for i := range f.p2l {
		f.p2l[i] = unmapped
	}
	for i := range f.valid {
		f.valid[i] = 0
	}
	f.freeZones = f.freeZones[:0]
	for s := range f.streamZone {
		for j := range f.streamZone[s] {
			f.streamZone[s][j] = -1
		}
	}
	f.gcZone, f.gcVictim, f.gcCursor = -1, -1, 0

	// Recovery reads are maintenance traffic, not attributable host IO.
	f.attr.Suspend()
	defer f.attr.Resume()

	at := rep.RecoveredAt
	var maxSeq uint64
	for z := 0; z < f.dev.NumZones(); z++ {
		switch f.dev.State(z) {
		case zns.Offline:
			continue
		case zns.Empty:
			f.freeZones = append(f.freeZones, z)
			continue
		case zns.Open, zns.Closed, zns.Full, zns.ReadOnly:
			// Holds data: rediscover its write pointer below.
		}
		wp := f.dev.WP(z)
		for o := int64(0); o < wp; o++ {
			lba := f.dev.LBA(z, o)
			done, lpn, seq, err := f.dev.ReadMeta(at, lba)
			rep.ScannedPages++
			if errors.Is(err, flash.ErrUnwritten) {
				continue // hole: an in-flight program the crash erased
			}
			if err != nil {
				rep.UnreadablePages++
				continue
			}
			at = done
			if lpn < 0 || lpn >= f.logicalPages {
				continue // never stamped: relocation orphan or pre-recovery garbage
			}
			if seq > maxSeq {
				maxSeq = seq
			}
			if old := f.l2p[lpn]; old != unmapped {
				_, oldSeq := f.dev.OOB(old)
				if seq <= oldSeq {
					continue // equal seqs are identical copies; first wins
				}
				oz, _ := f.dev.ZoneOf(old)
				f.p2l[old] = unmapped
				f.valid[oz]--
			}
			f.l2p[lpn] = lba
			f.p2l[lba] = lpn
			f.valid[z]++
		}
	}
	f.nextSeq = maxSeq + 1

	// Zones the scan proved fully dead (every surviving page superseded or
	// orphaned) go straight back to the pool.
	for z := 0; z < f.dev.NumZones(); z++ {
		if f.dev.State(z) != zns.Full || f.valid[z] != 0 {
			continue
		}
		done, err := f.dev.Reset(at, z)
		if err != nil {
			continue
		}
		at = done
		if f.dev.State(z) == zns.Empty {
			f.freeZones = append(f.freeZones, z)
		}
	}

	for _, lba := range f.l2p {
		if lba != unmapped {
			rep.RecoveredMappings++
		}
	}
	rep.RecoveredAt = at
	f.fl.Record(at, telemetry.FlightRecover, -1, "hostftl", rep.RecoveredMappings)
	return rep, nil
}

// ReadMeta reads a logical page and returns the (lpn, seq) stamp of the
// physical page that served it — the integrity oracle's verification hook.
// Requires recovery to be armed.
func (f *FTL) ReadMeta(at sim.Time, lpn int64) (done sim.Time, gotLPN int64, seq uint64, err error) {
	if lpn < 0 || lpn >= f.logicalPages {
		return at, -1, 0, ErrOutOfRange
	}
	lba := f.l2p[lpn]
	if lba == unmapped {
		return at, -1, 0, ErrUnmapped
	}
	done, gotLPN, seq, err = f.dev.ReadMeta(at, lba)
	if err != nil {
		return done, -1, 0, err
	}
	f.hostReads++
	return done, gotLPN, seq, nil
}
