// Package hostftl implements a block interface on top of a ZNS device —
// the host-side translation layer the paper says was "straightforward to
// implement" (§2.3, dm-zoned; §2.4's IBM SALSA). It is the piece that moves
// the conventional FTL's responsibilities to the host, where they can be
// scheduled around application I/O (§4.1) and fed with application
// information the on-board FTL never had.
//
// The layer is log-structured: logical pages are appended to per-stream
// open zones, a logical-to-device mapping is kept in host DRAM, and
// reclamation resets zones after relocating their live pages. Three knobs
// correspond directly to the paper's claims:
//
//   - UseSimpleCopy: relocate via the NVMe simple-copy command, consuming
//     no PCIe bandwidth (§2.3), instead of host read+write.
//   - GCIncremental: spread relocation into small chunks interleaved with
//     host I/O instead of stop-the-world victim relocation — the
//     host-scheduled GC of §4.1/§2.4 that crushes tail latency.
//   - Streams: direct writes tagged with different lifetime hints to
//     different open zones, the application-aware placement of §4.1.
package hostftl

import (
	"errors"
	"fmt"

	"blockhead/internal/sim"
	"blockhead/internal/stats"
	"blockhead/internal/telemetry"
	"blockhead/internal/zns"
)

// GCMode selects how reclamation is scheduled.
type GCMode int

const (
	// GCInline mimics a conventional FTL's behavior: when free zones run
	// low, the triggering write stalls behind a full victim relocation.
	GCInline GCMode = iota
	// GCIncremental starts earlier and relocates a bounded chunk per host
	// write, so no single request waits behind a whole zone's relocation.
	GCIncremental
)

// String implements fmt.Stringer.
func (m GCMode) String() string {
	if m == GCIncremental {
		return "incremental"
	}
	return "inline"
}

// Errors returned by the translation layer.
var (
	ErrOutOfRange = errors.New("hostftl: logical page out of range")
	ErrUnmapped   = errors.New("hostftl: read of unmapped logical page")
	ErrOutOfSpace = errors.New("hostftl: no free zones")
	ErrBadStream  = errors.New("hostftl: stream out of range")
)

const unmapped = int64(-1)

// Config parameterizes the layer.
type Config struct {
	// OPFraction reserves this fraction of zones as relocation headroom,
	// the host-side analogue of conventional overprovisioning — except the
	// host chooses it per application (§2.2). Default 0.1.
	OPFraction float64

	// Streams is the number of write streams (lifetime classes) with their
	// own open zones. Default 1.
	Streams int

	// ZonesPerStream is how many zones each stream keeps open and stripes
	// writes across — the host's lever for write parallelism when zones
	// are narrow. Default 1.
	ZonesPerStream int

	// UseSimpleCopy relocates with the device's simple-copy command.
	UseSimpleCopy bool

	// GCMode selects inline or incremental reclamation.
	GCMode GCMode

	// GCChunkPages bounds relocation work per host write in incremental
	// mode. Default 8.
	GCChunkPages int
}

// FTL is a host-side block-on-ZNS translation layer.
type FTL struct {
	dev *zns.Device
	cfg Config

	logicalPages int64
	zonePages    int64

	l2p []int64 // logical page -> device LBA
	p2l []int64 // device LBA -> logical page
	// valid counts live pages per zone.
	valid []int64

	freeZones  []int
	streamZone [][]int // open data zones per stream (ZonesPerStream wide)
	streamRR   []int   // per-stream round-robin cursor
	gcZone     int     // open relocation destination, -1 if none

	// Incremental GC cursor.
	gcVictim int
	gcCursor int64
	// gcRelocDone is the completion high-water mark of incremental
	// relocation copies — the crash-consistency barrier for the victim's
	// reset when recovery is armed.
	gcRelocDone sim.Time

	// recovery mirrors the device's crash-recovery arming (zns.Config
	// .Recovery): when set, every host append is stamped with (lpn, seq)
	// out-of-band so Recover can rebuild the mapping, newest seq winning.
	recovery bool
	nextSeq  uint64

	hostWrites  uint64
	hostReads   uint64
	gcResets    uint64
	emergencies uint64
	remaps      uint64
	maintTicks  uint64
	evacuations uint64
	// lastStall is the host-visible stall of the most recent write due to
	// reclamation work.
	lastStall sim.Time

	// Tenant blame bookkeeping (allocated by SetProbe when attribution is
	// armed, nil otherwise): slotOwner stamps each device LBA with the
	// tenant that wrote it; deadBy counts, per zone, how many of its dead
	// pages each tenant killed by overwrite/trim — the evidence reclamation
	// uses to name a victim zone's dominant polluter. lastCulprit is the
	// tenant blamed for the most recent write's reclamation stall;
	// gcTopAdv tracks the largest single-victim advance inside it.
	slotOwner   []telemetry.TenantID
	deadBy      [][telemetry.MaxTenants]int32
	lastCulprit telemetry.TenantID
	gcTopAdv    sim.Time

	// Telemetry handles; all nil (zero-cost no-ops) without SetProbe.
	reg          *telemetry.Registry
	tr           *telemetry.Tracer
	attr         *telemetry.AttrSink
	fl           *telemetry.Flight
	mRelocPages  *telemetry.Counter
	mGCResets    *telemetry.Counter
	mEmergencies *telemetry.Counter
	hStall       *telemetry.Hist
}

// New wraps a ZNS device. The device must allow at least Streams+1 active
// zones (one relocation destination plus one open zone per stream).
func New(dev *zns.Device, cfg Config) (*FTL, error) {
	if cfg.OPFraction <= 0 {
		cfg.OPFraction = 0.1
	}
	if cfg.Streams <= 0 {
		cfg.Streams = 1
	}
	if cfg.GCChunkPages <= 0 {
		cfg.GCChunkPages = 8
	}
	if cfg.ZonesPerStream <= 0 {
		cfg.ZonesPerStream = 1
	}
	need := cfg.Streams*cfg.ZonesPerStream + 1
	if dev.MaxActive() != 0 && dev.MaxActive() < need {
		return nil, fmt.Errorf("hostftl: device allows %d active zones; need %d (streams*zones+1)",
			dev.MaxActive(), need)
	}
	nz := dev.NumZones()
	reserve := int(cfg.OPFraction * float64(nz))
	if reserve < need+2 {
		reserve = need + 2
	}
	if nz-reserve < 1 {
		return nil, fmt.Errorf("hostftl: %d zones too few for reserve %d", nz, reserve)
	}
	zp := dev.ZonePages()
	f := &FTL{
		dev:          dev,
		cfg:          cfg,
		logicalPages: int64(nz-reserve) * zp,
		zonePages:    zp,
		l2p:          make([]int64, int64(nz-reserve)*zp),
		p2l:          make([]int64, int64(nz)*zp),
		valid:        make([]int64, nz),
		streamZone:   make([][]int, cfg.Streams),
		streamRR:     make([]int, cfg.Streams),
		gcZone:       -1,
		gcVictim:     -1,
	}
	if dev.Flash().RecoveryEnabled() {
		f.recovery = true
		f.nextSeq = 1
	}
	for i := range f.l2p {
		f.l2p[i] = unmapped
	}
	for i := range f.p2l {
		f.p2l[i] = unmapped
	}
	for z := 0; z < nz; z++ {
		f.freeZones = append(f.freeZones, z)
	}
	for i := range f.streamZone {
		f.streamZone[i] = make([]int, cfg.ZonesPerStream)
		for j := range f.streamZone[i] {
			f.streamZone[i][j] = -1
		}
	}
	return f, nil
}

// SetProbe attaches telemetry to the translation layer and, through it, the
// underlying ZNS device and flash chip: reclamation counters, a write-stall
// histogram, end-to-end write-amp and free-zone gauges, and reclamation
// phase spans on the host-FTL trace track. Attach before driving I/O.
func (f *FTL) SetProbe(p *telemetry.Probe) {
	f.dev.SetProbe(p)
	reg := p.Registry()
	f.reg = reg
	f.tr = p.Tracer()
	f.attr = p.Attribution()
	if f.attr != nil && f.slotOwner == nil {
		f.slotOwner = make([]telemetry.TenantID, len(f.p2l))
		f.deadBy = make([][telemetry.MaxTenants]int32, f.dev.NumZones())
		f.lastCulprit = telemetry.SelfTenant
	}
	f.mRelocPages = reg.Counter("hostftl/reclaim/copy_pages")
	f.mGCResets = reg.Counter("hostftl/reclaim/zone_resets")
	f.mEmergencies = reg.Counter("hostftl/reclaim/emergencies")
	f.hStall = reg.Histogram("hostftl/write_stall")
	f.tr.NameProcess(telemetry.ProcHostFTL, "host FTL")
	f.tr.NameTrack(telemetry.ProcHostFTL, 0, "reclaim")
	reg.Gauge("hostftl/write_amp", func(sim.Time) float64 { return f.WriteAmp() })
	reg.Gauge("hostftl/free_zones", func(sim.Time) float64 { return float64(len(f.freeZones)) })
	f.fl = p.Flight()
	p.Heat().Register("hostftl", f.heatSection)
}

// heatSection is the host FTL's heatmap source: per-zone snapshots carrying
// the host's true valid-page fraction (valid pages / written pages) — the
// liveness picture the raw device cannot see.
func (f *FTL) heatSection(sim.Time) telemetry.DeviceHeat {
	zones := make([]telemetry.ZoneHeat, f.dev.NumZones())
	for z := range zones {
		wp := f.dev.WP(z)
		valid := float64(0)
		if wp > 0 {
			valid = float64(f.valid[z]) / float64(wp)
		}
		zones[z] = telemetry.ZoneHeat{
			Zone:  z,
			State: f.dev.State(z).String(),
			WP:    wp,
			Cap:   f.dev.WritableCap(z),
			Valid: valid,
		}
	}
	return telemetry.DeviceHeat{Zones: zones}
}

// CapacityPages reports the logical capacity in pages.
func (f *FTL) CapacityPages() int64 { return f.logicalPages }

// PageSize reports the page size in bytes.
func (f *FTL) PageSize() int { return f.dev.PageSize() }

// Device exposes the underlying ZNS device (for counters and reports).
func (f *FTL) Device() *zns.Device { return f.dev }

// HostWrites reports logical pages written by callers (the WA denominator).
func (f *FTL) HostWrites() uint64 { return f.hostWrites }

// GCResets reports how many zones reclamation has recycled.
func (f *FTL) GCResets() uint64 { return f.gcResets }

// Emergencies reports how often incremental mode fell back to a blocking
// reclamation pass because the pool ran dry — each one is a tail-latency
// spike, so well-paced maintenance keeps this at zero.
func (f *FTL) Emergencies() uint64 { return f.emergencies }

// WorkStats reports the host-side CPU work the translation layer performed:
// mapping operations (one per host I/O plus one per relocation remap),
// relocation pages orchestrated, and maintenance scheduler invocations.
// These feed the offload cost model (§4.2's host-vs-SoC question).
func (f *FTL) WorkStats() (mapOps, relocPages, maintTicks uint64) {
	return f.hostWrites + f.hostReads + f.remaps, f.remaps, f.maintTicks
}

// LastStall reports the reclamation stall charged to the most recent write.
func (f *FTL) LastStall() sim.Time { return f.lastStall }

// WriteAmp reports end-to-end write amplification: flash pages programmed
// (appends + relocation copies) per logical page written.
func (f *FTL) WriteAmp() float64 {
	if f.hostWrites == 0 {
		return 1
	}
	return float64(f.dev.Counters().FlashProgramPages) / float64(f.hostWrites)
}

// Counters exposes the device counters (PCIe bytes, flash ops).
func (f *FTL) Counters() *stats.Counters { return f.dev.Counters() }

// DRAMFootprintBytes reports host DRAM for the mapping: 8 bytes per logical
// page (host DIMMs are cheap and byte-granular; §2.3 footnote 2 is about
// exactly this trade).
func (f *FTL) DRAMFootprintBytes() int64 {
	return 8*f.logicalPages + 8*int64(len(f.p2l))
}

func (f *FTL) takeFreeZone() (int, bool) {
	for len(f.freeZones) > 0 {
		z := f.freeZones[0]
		f.freeZones = f.freeZones[1:]
		if f.dev.State(z) == zns.Offline || f.dev.WritableCap(z) == 0 {
			continue // lost to wear
		}
		return z, true
	}
	return -1, false
}

// appendTo appends one page into the given open zone, rolling to a fresh
// zone when full. Returns the device LBA. zoneSlot points at the stream's
// (or GC's) current-zone variable. A zone that goes ReadOnly under the
// append (a grown-bad stripe block, zns.ErrZoneReadOnly) is evacuated and
// replaced; the retry budget bounds how many media failures one logical
// write will absorb before surfacing the error.
func (f *FTL) appendTo(at sim.Time, zoneSlot *int, data []byte) (int64, sim.Time, error) {
	for attempt := 0; attempt < 4; attempt++ {
		if *zoneSlot < 0 {
			z, ok := f.takeFreeZone()
			if !ok {
				return 0, at, ErrOutOfSpace
			}
			*zoneSlot = z
		}
		lba, done, err := f.dev.Append(at, *zoneSlot, data)
		if err == nil {
			return lba, done, nil
		}
		if errors.Is(err, zns.ErrZoneFull) {
			*zoneSlot = -1
			continue
		}
		if errors.Is(err, zns.ErrZoneReadOnly) {
			ro := *zoneSlot
			*zoneSlot = -1
			retryFrom := at
			at = f.evacuateZone(at, ro)
			// Charged as reclamation stall; no-op when the caller is
			// already inside suspended maintenance work.
			f.attr.Charge(telemetry.PhaseGCStall, at-retryFrom)
			continue
		}
		return 0, at, err
	}
	return 0, at, ErrOutOfSpace
}

// evacuateZone relocates every live page off a zone that transitioned to
// ReadOnly, so the stranded zone holds no mappings the next crash or wear
// event could threaten. The host can do this precisely because it owns the
// mapping (§2.3); a conventional SSD hides the equivalent remapping inside
// its FTL. Pages that cannot be moved (pool exhausted) stay mapped on the
// read-only zone — still readable, just not reclaimable.
func (f *FTL) evacuateZone(at sim.Time, z int) sim.Time {
	f.attr.Suspend()
	defer f.attr.Resume()
	f.evacuations++
	f.fl.Record(at, telemetry.FlightFault, int32(z), "hostftl_evacuate", f.valid[z])
	done, _ := f.relocateRange(at, z, 0, f.dev.WP(z))
	return sim.Max(at, done)
}

// Evacuations reports how many read-only zone evacuations have run.
func (f *FTL) Evacuations() uint64 { return f.evacuations }

func (f *FTL) invalidate(devLBA int64) {
	if devLBA == unmapped {
		return
	}
	z, _ := f.dev.ZoneOf(devLBA)
	f.p2l[devLBA] = unmapped
	f.valid[z]--
	if f.deadBy != nil {
		// The page died by host overwrite or trim; the worker doing that is
		// the polluter reclamation will later blame for recycling this zone.
		f.deadBy[z][clampOwner(f.attr.Worker())]++
	}
}

// clampOwner maps a worker tenant into the deadBy index space.
func clampOwner(t telemetry.TenantID) telemetry.TenantID {
	if t < 0 || t >= telemetry.MaxTenants {
		return 0
	}
	return t
}

// dominantPolluter names the tenant that killed the most pages in zone z —
// the culprit a reclamation of that zone blames. SelfTenant when nothing
// died there or blame tracking is off. Ties break toward the lower tenant
// ID (deterministic).
func (f *FTL) dominantPolluter(z int) telemetry.TenantID {
	if f.deadBy == nil {
		return telemetry.SelfTenant
	}
	best, bestN := telemetry.SelfTenant, int32(0)
	for t := 0; t < telemetry.MaxTenants; t++ {
		if n := f.deadBy[z][t]; n > bestN {
			best, bestN = telemetry.TenantID(t), n
		}
	}
	return best
}

// clearDeadBy resets a zone's per-tenant death counts once the zone is
// recycled.
func (f *FTL) clearDeadBy(z int) {
	if f.deadBy != nil {
		f.deadBy[z] = [telemetry.MaxTenants]int32{}
	}
}

// Write writes one logical page on stream 0.
func (f *FTL) Write(at sim.Time, lpn int64, data []byte) (sim.Time, error) {
	return f.WriteStream(at, lpn, 0, data)
}

// WriteStream writes one logical page with a lifetime-stream hint. Streams
// segregate data into different zones so data that dies together is erased
// together (§4.1).
func (f *FTL) WriteStream(at sim.Time, lpn int64, stream int, data []byte) (sim.Time, error) {
	if lpn < 0 || lpn >= f.logicalPages {
		return at, ErrOutOfRange
	}
	if stream < 0 || stream >= f.cfg.Streams {
		return at, ErrBadStream
	}
	start := at
	f.reg.Tick(at)
	at = f.reclaim(at)

	slot := f.streamRR[stream] % len(f.streamZone[stream])
	f.streamRR[stream]++
	lba, done, err := f.appendTo(at, &f.streamZone[stream][slot], data)
	if err != nil {
		return at, err
	}
	if f.recovery {
		f.dev.StampOOB(lba, lpn, f.nextSeq)
		f.nextSeq++
	}
	f.invalidate(f.l2p[lpn])
	f.l2p[lpn] = lba
	f.p2l[lba] = lpn
	z, _ := f.dev.ZoneOf(lba)
	f.valid[z]++
	if f.slotOwner != nil {
		f.slotOwner[lba] = clampOwner(f.attr.Worker())
	}
	f.hostWrites++
	f.lastStall = at - start
	if f.lastStall > 0 {
		f.hStall.Observe(f.lastStall)
	}
	// reclaim() suspended per-op attribution; the write is charged the
	// host-visible stall it caused, keeping phases summing to done-start.
	// The stall blames the dominant polluter of the victim that dominated
	// the reclamation round.
	f.attr.ChargeBlamed(telemetry.PhaseGCStall, f.lastStall, f.lastCulprit)
	return done, nil
}

// Read reads one logical page.
func (f *FTL) Read(at sim.Time, lpn int64) (sim.Time, []byte, error) {
	if lpn < 0 || lpn >= f.logicalPages {
		return at, nil, ErrOutOfRange
	}
	lba := f.l2p[lpn]
	if lba == unmapped {
		return at, nil, ErrUnmapped
	}
	done, data, err := f.dev.Read(at, lba)
	if err != nil {
		return at, nil, err
	}
	f.hostReads++
	return done, data, nil
}

// Trim unmaps n logical pages starting at lpn — free for the host, since
// it owns the mapping.
func (f *FTL) Trim(lpn, n int64) error {
	if lpn < 0 || lpn+n > f.logicalPages {
		return ErrOutOfRange
	}
	for i := lpn; i < lpn+n; i++ {
		if f.l2p[i] != unmapped {
			f.invalidate(f.l2p[i])
			f.l2p[i] = unmapped
		}
	}
	return nil
}

// FreeZones reports the number of zones in the free pool.
func (f *FTL) FreeZones() int { return len(f.freeZones) }

// NextSeq reports the sequence number the next stamped write will carry —
// the integrity oracle resyncs to it after recovery.
func (f *FTL) NextSeq() uint64 { return f.nextSeq }
