package hostftl

import (
	"encoding/binary"
	"errors"
	"math/rand"
	"testing"

	"blockhead/internal/flash"
	"blockhead/internal/sim"
	"blockhead/internal/zns"
)

func testDev(t *testing.T, storeData bool) *zns.Device {
	t.Helper()
	dev, err := zns.New(zns.Config{
		Geom: flash.Geometry{Channels: 2, DiesPerChan: 2, PlanesPerDie: 1,
			BlocksPerLUN: 16, PagesPerBlock: 16, PageSize: 4096},
		Lat:        flash.LatenciesFor(flash.TLC),
		ZoneBlocks: 4,
		StoreData:  storeData,
	})
	if err != nil {
		t.Fatal(err)
	}
	return dev
}

func mustNew(t *testing.T, dev *zns.Device, cfg Config) *FTL {
	t.Helper()
	f, err := New(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNewValidation(t *testing.T) {
	// Device with too few active zones for the stream count.
	dev, err := zns.New(zns.Config{
		Geom: flash.Geometry{Channels: 2, DiesPerChan: 2, PlanesPerDie: 1,
			BlocksPerLUN: 16, PagesPerBlock: 16, PageSize: 4096},
		Lat: flash.LatenciesFor(flash.TLC), ZoneBlocks: 4, MaxActive: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(dev, Config{Streams: 4}); err == nil {
		t.Error("stream count exceeding MaxActive accepted")
	}
}

func TestCapacityBelowDevice(t *testing.T) {
	dev := testDev(t, false)
	f := mustNew(t, dev, Config{})
	devPages := int64(dev.NumZones()) * dev.ZonePages()
	if f.CapacityPages() >= devPages {
		t.Errorf("logical capacity %d must be below device %d (reserve)", f.CapacityPages(), devPages)
	}
	if f.PageSize() != 4096 {
		t.Errorf("PageSize = %d", f.PageSize())
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	dev := testDev(t, true)
	f := mustNew(t, dev, Config{})
	at, err := f.Write(0, 10, []byte("block-on-zns"))
	if err != nil {
		t.Fatal(err)
	}
	done, data, err := f.Read(at, 10)
	if err != nil || done <= at {
		t.Fatalf("read: %v done=%d", err, done)
	}
	if string(data) != "block-on-zns" {
		t.Errorf("data = %q", data)
	}
	if _, _, err := f.Read(at, 11); !errors.Is(err, ErrUnmapped) {
		t.Errorf("unmapped read: %v", err)
	}
	if _, err := f.Write(at, f.CapacityPages(), nil); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("out-of-range write: %v", err)
	}
	if _, err := f.WriteStream(at, 0, 5, nil); !errors.Is(err, ErrBadStream) {
		t.Errorf("bad stream: %v", err)
	}
}

// The block interface on ZNS must allow unrestricted random overwrites —
// that is the whole point of the layer (§2.3).
func TestRandomOverwritesSurviveReclaim(t *testing.T) {
	dev := testDev(t, true)
	f := mustNew(t, dev, Config{})
	rng := rand.New(rand.NewSource(1))
	model := map[int64]uint64{}
	var at sim.Time
	buf := func(v uint64) []byte {
		b := make([]byte, 8)
		binary.LittleEndian.PutUint64(b, v)
		return b
	}
	// Write 4x the logical capacity randomly: forces many zone reclaims.
	n := 4 * f.CapacityPages()
	for i := int64(0); i < n; i++ {
		lpn := rng.Int63n(f.CapacityPages())
		v := rng.Uint64()
		var err error
		at, err = f.Write(at, lpn, buf(v))
		if err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		model[lpn] = v
	}
	if f.GCResets() == 0 {
		t.Error("no zones were reclaimed despite 4x capacity written")
	}
	for lpn, v := range model {
		_, data, err := f.Read(at, lpn)
		if err != nil {
			t.Fatalf("read %d: %v", lpn, err)
		}
		if binary.LittleEndian.Uint64(data) != v {
			t.Fatalf("lpn %d: got %d want %d", lpn, binary.LittleEndian.Uint64(data), v)
		}
	}
}

func TestSimpleCopySavesPCIe(t *testing.T) {
	run := func(simpleCopy bool) (pcie uint64, wa float64) {
		dev := testDev(t, false)
		f := mustNew(t, dev, Config{UseSimpleCopy: simpleCopy})
		rng := rand.New(rand.NewSource(2))
		var at sim.Time
		for i := int64(0); i < 4*f.CapacityPages(); i++ {
			var err error
			at, err = f.Write(at, rng.Int63n(f.CapacityPages()), nil)
			if err != nil {
				panic(err)
			}
		}
		return f.Counters().PCIeBytes, f.WriteAmp()
	}
	pcieWith, waWith := run(true)
	pcieWithout, waWithout := run(false)
	if pcieWith >= pcieWithout {
		t.Errorf("simple copy must cut PCIe traffic: with=%d without=%d", pcieWith, pcieWithout)
	}
	// Both modes do the same logical relocation work.
	if waWith < 1 || waWithout < 1 {
		t.Errorf("WA must be >= 1: with=%v without=%v", waWith, waWithout)
	}
}

func TestTrimFreesLiveData(t *testing.T) {
	dev := testDev(t, false)
	f := mustNew(t, dev, Config{})
	var at sim.Time
	for i := int64(0); i < 20; i++ {
		at, _ = f.Write(at, i, nil)
	}
	if err := f.Trim(0, 10); err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.Read(at, 5); !errors.Is(err, ErrUnmapped) {
		t.Error("trimmed page still mapped")
	}
	if err := f.Trim(f.CapacityPages()-1, 5); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("out-of-range trim: %v", err)
	}
}

func TestIncrementalModeBoundsStalls(t *testing.T) {
	run := func(mode GCMode) (maxStall sim.Time) {
		dev := testDev(t, false)
		f := mustNew(t, dev, Config{GCMode: mode, GCChunkPages: 4})
		rng := rand.New(rand.NewSource(3))
		var at sim.Time
		for i := int64(0); i < 4*f.CapacityPages(); i++ {
			var err error
			at, err = f.Write(at, rng.Int63n(f.CapacityPages()), nil)
			if err != nil {
				panic(err)
			}
			if f.LastStall() > maxStall {
				maxStall = f.LastStall()
			}
		}
		return maxStall
	}
	inline := run(GCInline)
	incr := run(GCIncremental)
	if inline == 0 {
		t.Fatal("inline mode never stalled; test not exercising reclaim")
	}
	if incr >= inline {
		t.Errorf("incremental stall %v must be below inline stall %v", incr, inline)
	}
}

func TestStreamsSeparateZones(t *testing.T) {
	dev := testDev(t, false)
	f := mustNew(t, dev, Config{Streams: 2})
	at, err := f.WriteStream(0, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err = f.WriteStream(at, 1, 1, nil); err != nil {
		t.Fatal(err)
	}
	z0, _ := dev.ZoneOf(f.l2p[0])
	z1, _ := dev.ZoneOf(f.l2p[1])
	if z0 == z1 {
		t.Error("different streams must write to different zones")
	}
}

func TestWriteAmpAboveOneUnderChurn(t *testing.T) {
	dev := testDev(t, false)
	f := mustNew(t, dev, Config{})
	rng := rand.New(rand.NewSource(4))
	var at sim.Time
	for i := int64(0); i < 5*f.CapacityPages(); i++ {
		var err error
		at, err = f.Write(at, rng.Int63n(f.CapacityPages()), nil)
		if err != nil {
			t.Fatal(err)
		}
	}
	wa := f.WriteAmp()
	if wa <= 1.0 {
		t.Errorf("WA = %v, want > 1 under random churn", wa)
	}
	if wa > 20 {
		t.Errorf("WA = %v, implausibly high", wa)
	}
	if f.HostWrites() != uint64(5*f.CapacityPages()) {
		t.Errorf("HostWrites = %d", f.HostWrites())
	}
}

func TestDRAMFootprint(t *testing.T) {
	dev := testDev(t, false)
	f := mustNew(t, dev, Config{})
	want := 8*f.CapacityPages() + 8*int64(dev.NumZones())*dev.ZonePages()
	if f.DRAMFootprintBytes() != want {
		t.Errorf("DRAMFootprintBytes = %d, want %d", f.DRAMFootprintBytes(), want)
	}
}

func TestGCModeString(t *testing.T) {
	if GCInline.String() != "inline" || GCIncremental.String() != "incremental" {
		t.Error("GCMode.String wrong")
	}
}

// Mapping invariants after heavy churn with both copy paths.
func TestMappingInvariants(t *testing.T) {
	for _, sc := range []bool{false, true} {
		dev := testDev(t, false)
		f := mustNew(t, dev, Config{UseSimpleCopy: sc, GCMode: GCIncremental})
		rng := rand.New(rand.NewSource(5))
		var at sim.Time
		for i := int64(0); i < 3*f.CapacityPages(); i++ {
			var err error
			at, err = f.Write(at, rng.Int63n(f.CapacityPages()), nil)
			if err != nil {
				t.Fatal(err)
			}
			if i%7 == 0 {
				f.Trim(rng.Int63n(f.CapacityPages()), 1)
			}
		}
		for lpn, lba := range f.l2p {
			if lba == unmapped {
				continue
			}
			if f.p2l[lba] != int64(lpn) {
				t.Fatalf("simpleCopy=%v: l2p[%d]=%d but p2l=%d", sc, lpn, lba, f.p2l[lba])
			}
		}
		perZone := make([]int64, dev.NumZones())
		for lba, lpn := range f.p2l {
			if lpn != unmapped {
				z, _ := dev.ZoneOf(int64(lba))
				perZone[z]++
			}
		}
		for z, v := range perZone {
			if f.valid[z] != v {
				t.Fatalf("simpleCopy=%v: valid[%d]=%d but p2l says %d", sc, z, f.valid[z], v)
			}
		}
	}
}
