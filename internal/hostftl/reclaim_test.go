package hostftl

import (
	"math/rand"
	"testing"

	"blockhead/internal/flash"
	"blockhead/internal/sim"
	"blockhead/internal/zns"
)

func testDevGeom(t *testing.T, geom flash.Geometry, zoneBlocks int, endurance uint32) *zns.Device {
	t.Helper()
	dev, err := zns.New(zns.Config{
		Geom: geom, Lat: flash.LatenciesFor(flash.TLC),
		ZoneBlocks: zoneBlocks, Endurance: endurance,
	})
	if err != nil {
		t.Fatal(err)
	}
	return dev
}

func TestZonesPerStreamParallelism(t *testing.T) {
	geom := flash.Geometry{Channels: 4, DiesPerChan: 1, PlanesPerDie: 1,
		BlocksPerLUN: 16, PagesPerBlock: 32, PageSize: 4096}
	run := func(zps int) sim.Time {
		f, err := New(testDevGeom(t, geom, 1, 0), Config{ZonesPerStream: zps})
		if err != nil {
			t.Fatal(err)
		}
		// Issue 32 writes (one zone's worth) all at t=0 and report when the
		// last completes: striping across more open zones means more LUNs
		// work in parallel.
		var last sim.Time
		for i := int64(0); i < 32; i++ {
			done, err := f.Write(0, i, nil)
			if err != nil {
				t.Fatal(err)
			}
			last = sim.Max(last, done)
		}
		return last
	}
	one := run(1)
	four := run(4)
	if four >= one {
		t.Errorf("4 zones/stream (%v) must finish faster than 1 (%v)", four, one)
	}
	if one < 3*four {
		t.Errorf("expected ~4x overlap: 1-zone %v vs 4-zone %v", one, four)
	}
}

func TestMaintenanceStepPacing(t *testing.T) {
	geom := flash.Geometry{Channels: 2, DiesPerChan: 2, PlanesPerDie: 1,
		BlocksPerLUN: 16, PagesPerBlock: 16, PageSize: 4096}
	f, err := New(testDevGeom(t, geom, 1, 0), Config{GCMode: GCIncremental, OPFraction: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	// Above target: a step must be a no-op.
	if f.MaintenanceStep(0, 8, 2) {
		t.Error("maintenance ran with a full pool")
	}
	// Create pressure: fill the logical space, then churn.
	rng := rand.New(rand.NewSource(1))
	var at sim.Time
	for lpn := int64(0); lpn < f.CapacityPages(); lpn++ {
		if at, err = f.Write(at, lpn, nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(0); i < f.CapacityPages(); i++ {
		if at, err = f.Write(at, rng.Int63n(f.CapacityPages()), nil); err != nil {
			t.Fatal(err)
		}
	}
	// Now drive maintenance with a generous target: it must reclaim, one
	// bounded nibble per call, and eventually raise the pool.
	before := len(f.freeZones)
	resetsBefore := f.GCResets()
	for i := 0; i < 500 && len(f.freeZones) <= before+3; i++ {
		f.MaintenanceStep(at, 4, before+4)
	}
	if f.GCResets() == resetsBefore {
		t.Error("maintenance never reclaimed a zone")
	}
	if len(f.freeZones) <= before {
		t.Errorf("pool did not grow: %d -> %d", before, len(f.freeZones))
	}
}

func TestMaintenanceSingleResetPerStep(t *testing.T) {
	geom := flash.Geometry{Channels: 2, DiesPerChan: 2, PlanesPerDie: 1,
		BlocksPerLUN: 16, PagesPerBlock: 16, PageSize: 4096}
	f, err := New(testDevGeom(t, geom, 1, 0), Config{GCMode: GCIncremental})
	if err != nil {
		t.Fatal(err)
	}
	// Build several fully-dead sealed zones: write, then trim everything.
	var at sim.Time
	for lpn := int64(0); lpn < f.CapacityPages(); lpn++ {
		if at, err = f.Write(at, lpn, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Trim(0, f.CapacityPages()); err != nil {
		t.Fatal(err)
	}
	// Each step may reset at most one zone, no matter how many are dead.
	for i := 0; i < 3; i++ {
		before := f.GCResets()
		f.MaintenanceStep(at, 4, f.dev.NumZones())
		if got := f.GCResets() - before; got > 1 {
			t.Fatalf("step %d reset %d zones; the cap is 1", i, got)
		}
	}
}

func TestEmergencyCounterAndRecovery(t *testing.T) {
	geom := flash.Geometry{Channels: 2, DiesPerChan: 1, PlanesPerDie: 1,
		BlocksPerLUN: 16, PagesPerBlock: 16, PageSize: 4096}
	f, err := New(testDevGeom(t, geom, 1, 0), Config{GCMode: GCIncremental, GCChunkPages: 1})
	if err != nil {
		t.Fatal(err)
	}
	// A tiny chunk budget with heavy churn eventually drains the pool and
	// forces the emergency path; correctness must survive it.
	rng := rand.New(rand.NewSource(2))
	var at sim.Time
	for i := int64(0); i < 6*f.CapacityPages(); i++ {
		if at, err = f.Write(at, rng.Int63n(f.CapacityPages()), nil); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if f.Emergencies() == 0 {
		t.Skip("churn never hit the emergency path on this configuration")
	}
	// Mappings still consistent after emergencies.
	for lpn, lba := range f.l2p {
		if lba != unmapped && f.p2l[lba] != int64(lpn) {
			t.Fatalf("mapping broken after emergency: l2p[%d]=%d", lpn, lba)
		}
	}
}

// Wear: zones shrink and go offline; the translation layer must keep
// serving writes by skipping dead zones.
func TestWearShrinksPoolGracefully(t *testing.T) {
	geom := flash.Geometry{Channels: 2, DiesPerChan: 2, PlanesPerDie: 1,
		BlocksPerLUN: 16, PagesPerBlock: 16, PageSize: 4096}
	f, err := New(testDevGeom(t, geom, 1, 200), Config{OPFraction: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	var at sim.Time
	wrote := int64(0)
	for i := int64(0); i < 60*f.CapacityPages(); i++ {
		var werr error
		at, werr = f.Write(at, rng.Int63n(f.CapacityPages()), nil)
		if werr != nil {
			break // wear-out is legitimate; what matters is graceful decline
		}
		wrote++
	}
	if wrote < 10*f.CapacityPages() {
		t.Errorf("device died after only %d writes (capacity %d)", wrote, f.CapacityPages())
	}
}
