package hostftl

import (
	"errors"

	"blockhead/internal/sim"
	"blockhead/internal/telemetry"
	"blockhead/internal/zns"
)

// Reclamation thresholds, in free zones. Inline mode waits until the pool
// is nearly dry and then stalls the triggering write for a full victim;
// incremental mode starts earlier and spreads the work.
const (
	inlineLowWater        = 2
	incrementalStartWater = 4
)

// MaintenanceStep lets the host schedule reclamation entirely on its own
// clock (§4.1: "the host is in full control and can precisely schedule
// zone erasures and maintenance operations"). It relocates at most budget
// valid pages (plus any free zone resets) if the free pool is at or below
// targetFree, and reports whether it did anything. Driving this from a
// paced maintenance loop decouples reclamation from write bursts — the
// mechanism behind the paper's §2.4 tail-latency results.
func (f *FTL) MaintenanceStep(at sim.Time, budget, targetFree int) bool {
	f.maintTicks++
	f.reg.Tick(at)
	// Maintenance is background work: never attribute its device ops to
	// whatever host IO record happens to be open.
	f.attr.Suspend()
	defer f.attr.Resume()
	if len(f.freeZones) > targetFree {
		return false
	}
	before := f.gcResets
	beforeFree := len(f.freeZones)
	f.reclaimChunk(at, budget, targetFree)
	return f.gcResets != before || len(f.freeZones) != beforeFree || f.gcVictim >= 0
}

// reclaim makes free space per the configured policy and returns the time
// at which the triggering host write may proceed. In incremental mode the
// relocation chunk is issued concurrently with the write (the host owns
// scheduling, §4.1), so the returned time equals at; the cost surfaces only
// as device-resource contention.
func (f *FTL) reclaim(at sim.Time) sim.Time {
	// Relocation fans out across zones/LUNs; the caller charges the
	// host-visible stall (how far `at` advanced) as one phase instead.
	f.attr.Suspend()
	defer f.attr.Resume()
	// Blame bookkeeping for the triggering write's gc_stall charge: the
	// culprit is the dominant polluter of the victim whose reclamation
	// advanced time the most in this round.
	f.lastCulprit = telemetry.SelfTenant
	f.gcTopAdv = 0
	switch f.cfg.GCMode {
	case GCIncremental:
		if len(f.freeZones) <= 1 {
			// Emergency: the pool is dry; fall back to a blocking pass.
			f.emergencies++
			f.mEmergencies.Inc()
			f.tr.Instant(telemetry.ProcHostFTL, 0, "hostftl", "emergency", at)
			return f.reclaimInline(at)
		}
		if len(f.freeZones) <= incrementalStartWater {
			f.reclaimChunk(at, f.cfg.GCChunkPages, incrementalStartWater)
		}
		return at
	default:
		if len(f.freeZones) > inlineLowWater {
			return at
		}
		return f.reclaimInline(at)
	}
}

// reclaimInline relocates whole victims until the pool recovers, returning
// the completion time of the last reset — the conventional-style stall.
func (f *FTL) reclaimInline(at sim.Time) sim.Time {
	// Finish any in-flight incremental victim first: it is excluded from
	// victim selection, so its dead space is otherwise unreachable here.
	if f.gcVictim >= 0 {
		victim, from := f.gcVictim, f.gcCursor
		f.gcVictim = -1
		done, ok := f.reclaimVictim(at, victim, from)
		if ok {
			at = sim.Max(at, done)
		}
	}
	for len(f.freeZones) <= inlineLowWater {
		victim := f.pickVictim()
		if victim < 0 {
			break
		}
		done, ok := f.reclaimVictim(at, victim, 0)
		if !ok {
			break
		}
		at = sim.Max(at, done)
	}
	return at
}

// reclaimVictim relocates and resets one victim under its dominant
// polluter's worker identity — the relocation and reset traffic's LUN and
// channel occupancy is owned by the culprit, so later arrivals' waits
// blame it — and records the culprit of the round's largest time advance
// for the triggering write's gc_stall blame charge.
func (f *FTL) reclaimVictim(at sim.Time, victim int, from int64) (sim.Time, bool) {
	c := f.dominantPolluter(victim)
	f.attr.PushWorker(c)
	done, ok := f.finishVictim(at, victim, from)
	f.attr.PopWorker()
	if ok {
		if adv := done - at; adv > f.gcTopAdv {
			f.gcTopAdv, f.lastCulprit = adv, c
		}
	}
	return done, ok
}

// pickVictim selects the non-open zone with the most dead (reclaimable)
// pages, or -1 if no zone has any. Requiring dead > 0 guarantees every
// relocation cycle makes net space progress, so reclamation terminates.
func (f *FTL) pickVictim() int {
	best := -1
	var bestDead int64
	for z := 0; z < f.dev.NumZones(); z++ {
		if f.isOpenForWriting(z) {
			continue
		}
		st := f.dev.State(z)
		if st == zns.Offline || st == zns.Empty || st == zns.ReadOnly {
			// ReadOnly zones cannot be reset; their capacity is stranded
			// until the zone is taken offline, so relocation would make no
			// space progress.
			continue
		}
		dead := f.dev.WP(z) - f.valid[z]
		if dead <= 0 {
			continue
		}
		if best < 0 || dead > bestDead {
			best, bestDead = z, dead
		}
	}
	return best
}

func (f *FTL) isOpenForWriting(z int) bool {
	if z == f.gcZone || z == f.gcVictim {
		return true
	}
	for _, zones := range f.streamZone {
		for _, sz := range zones {
			if sz == z {
				return true
			}
		}
	}
	return false
}

// relocateAll moves every valid page out of victim and resets it.
func (f *FTL) relocateAll(at sim.Time, victim int) (sim.Time, bool) {
	return f.finishVictim(at, victim, 0)
}

// finishVictim relocates the valid pages in [from, WP) of victim and resets
// it, returning the reset completion time.
func (f *FTL) finishVictim(at sim.Time, victim int, from int64) (sim.Time, bool) {
	wp := f.dev.WP(victim)
	done, ok := f.relocateRange(at, victim, from, wp)
	if !ok {
		return at, false
	}
	resetDone, err := f.dev.Reset(done, victim)
	if err != nil {
		return done, false
	}
	f.valid[victim] = 0
	f.clearDeadBy(victim)
	if f.dev.State(victim) == zns.Empty {
		f.freeZones = append(f.freeZones, victim)
	}
	f.gcResets++
	f.mGCResets.Inc()
	f.fl.Record(at, telemetry.FlightReclaim, int32(victim), "", wp)
	f.tr.SpanArg(telemetry.ProcHostFTL, 0, "hostftl", "reclaim_victim", at, resetDone,
		"zone", int64(victim))
	return resetDone, true
}

// relocateRange moves the valid pages in [from, to) of victim into the GC
// zone, via simple copy or host read+write. It returns the completion time
// of the last relocation op.
func (f *FTL) relocateRange(at sim.Time, victim int, from, to int64) (sim.Time, bool) {
	done := at
	if f.cfg.UseSimpleCopy {
		// Batch the valid LBAs and let the controller move them; no PCIe.
		var batch []int64
		flush := func() bool {
			for len(batch) > 0 {
				if f.gcZone < 0 {
					z, ok := f.takeFreeZone()
					if !ok {
						return false
					}
					f.gcZone = z
				}
				room := f.dev.WritableCap(f.gcZone) - f.dev.WP(f.gcZone)
				n := int64(len(batch))
				if n > room {
					n = room
				}
				if n == 0 {
					f.gcZone = -1
					continue
				}
				first, cDone, err := f.dev.SimpleCopy(at, batch[:n], f.gcZone)
				if errors.Is(err, zns.ErrZoneReadOnly) {
					// The destination grew a bad block mid-copy; pages it
					// already absorbed are orphans (never remapped). Retry
					// the whole batch into a fresh zone.
					f.gcZone = -1
					continue
				}
				if err != nil {
					return false
				}
				for i := int64(0); i < n; i++ {
					f.remap(batch[i], first+i)
				}
				batch = batch[n:]
				done = sim.Max(done, cDone)
			}
			return true
		}
		for o := from; o < to; o++ {
			src := f.dev.LBA(victim, o)
			if f.p2l[src] != unmapped {
				batch = append(batch, src)
			}
		}
		if !flush() {
			return at, false
		}
		return done, true
	}

	// Host path: read each valid page over PCIe and append it back.
	for o := from; o < to; o++ {
		src := f.dev.LBA(victim, o)
		if f.p2l[src] == unmapped {
			continue
		}
		rDone, data, err := f.dev.Read(at, src)
		if err != nil {
			return at, false
		}
		dst, wDone, err := f.appendTo(rDone, &f.gcZone, data)
		if err != nil {
			return at, false
		}
		if f.recovery {
			// Relocation must carry the original stamp: the copy is the
			// same logical version, and recovery's newest-seq-wins scan
			// would otherwise resurrect stale data.
			lpn, seq := f.dev.OOB(src)
			f.dev.StampOOB(dst, lpn, seq)
		}
		f.remap(src, dst)
		done = sim.Max(done, wDone)
	}
	return done, true
}

// remap moves a live mapping from src to dst.
func (f *FTL) remap(src, dst int64) {
	lpn := f.p2l[src]
	if lpn == unmapped {
		return
	}
	if f.slotOwner != nil {
		// A relocated page keeps its writer: moving data does not launder
		// who polluted the zone it lands in next.
		f.slotOwner[dst] = f.slotOwner[src]
	}
	f.mRelocPages.Inc()
	sz, _ := f.dev.ZoneOf(src)
	dz, _ := f.dev.ZoneOf(dst)
	f.p2l[src] = unmapped
	f.valid[sz]--
	f.l2p[lpn] = dst
	f.p2l[dst] = lpn
	f.valid[dz]++
	f.remaps++
}

// reclaimChunk advances incremental reclamation by at most budget copied
// pages and at most one zone reset: it works through the current victim a
// chunk at a time and resets it when done. The work is issued at time at
// but never blocks the caller. The single-reset cap matters as much as the
// copy budget: a backlog of fully-dead zones costs no copies, and erasing
// them all in one call would park tens of milliseconds of erase work on
// the LUNs — exactly the tail spike this mode exists to avoid.
func (f *FTL) reclaimChunk(at sim.Time, budget, water int) {
	resets := 0
	for budget > 0 && resets == 0 && len(f.freeZones) <= water {
		if f.gcVictim < 0 {
			v := f.pickVictim()
			if v < 0 {
				return
			}
			f.gcVictim, f.gcCursor = v, 0
			f.fl.Record(at, telemetry.FlightReclaim, int32(v), "incremental", f.valid[v])
		}
		wp := f.dev.WP(f.gcVictim)
		end := f.gcCursor + int64(budget)
		if end > wp {
			end = wp
		}
		// Count only valid pages against the budget.
		var validInRange int
		for o := f.gcCursor; o < end; o++ {
			if f.p2l[f.dev.LBA(f.gcVictim, o)] != unmapped {
				validInRange++
			}
		}
		// The chunk's relocation (and eventual reset) occupies LUNs on the
		// victim's dominant polluter's behalf.
		f.attr.PushWorker(f.dominantPolluter(f.gcVictim))
		rDone, ok := f.relocateRange(at, f.gcVictim, f.gcCursor, end)
		if !ok {
			f.attr.PopWorker()
			return
		}
		f.gcRelocDone = sim.Max(f.gcRelocDone, rDone)
		f.gcCursor = end
		budget -= validInRange
		if f.gcCursor >= wp {
			victim := f.gcVictim
			f.gcVictim = -1
			resetAt := at
			if f.recovery {
				// Crash-consistency barrier: the reset's erases must not be
				// issued before the relocated copies are durable, or a crash
				// in between destroys the only surviving version.
				resetAt = sim.Max(resetAt, f.gcRelocDone)
			}
			if _, err := f.dev.Reset(resetAt, victim); err == nil {
				f.valid[victim] = 0
				f.clearDeadBy(victim)
				if f.dev.State(victim) == zns.Empty {
					f.freeZones = append(f.freeZones, victim)
				}
				f.gcResets++
				resets++
			}
		}
		f.attr.PopWorker()
	}
}
