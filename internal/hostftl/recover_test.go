package hostftl

import (
	"testing"

	"blockhead/internal/fault"
	"blockhead/internal/flash"
	"blockhead/internal/sim"
	"blockhead/internal/zns"
)

// recoveryStack builds a small host FTL on a recovery-armed ZNS device.
func recoveryStack(t *testing.T) (*FTL, *zns.Device) {
	t.Helper()
	dev, err := zns.New(zns.Config{
		Geom: flash.Geometry{Channels: 2, DiesPerChan: 2, PlanesPerDie: 1,
			BlocksPerLUN: 8, PagesPerBlock: 16, PageSize: 4096},
		Lat:        flash.LatenciesFor(flash.TLC),
		ZoneBlocks: 2,
		Recovery:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(dev, Config{
		OPFraction:    0.25,
		Streams:       2,
		UseSimpleCopy: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return f, dev
}

// TestRecoverRebuildsHostMap: after a crash the host rescans every written
// zone page and rebuilds its map, newest stamp winning — including across
// the garbage collector's relocations, which preserve the original stamps.
func TestRecoverRebuildsHostMap(t *testing.T) {
	f, dev := recoveryStack(t)
	aud := dev.AttachAuditor()
	n := f.CapacityPages()
	var at sim.Time
	var writes uint64
	wantSeq := make(map[int64]uint64)
	write := func(lpn int64) {
		done, err := f.Write(at, lpn, nil)
		if err != nil {
			t.Fatalf("write lpn %d: %v", lpn, err)
		}
		at = done
		writes++
		wantSeq[lpn] = writes
	}
	for lpn := int64(0); lpn < n; lpn++ {
		write(lpn)
	}
	// Churn to force zone reclaim: stale copies and relocated pages must not
	// confuse the scan.
	for k := int64(0); k < 2*n; k++ {
		write(k % (n / 2))
	}

	rep, err := f.Recover(at)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RecoveredMappings != n {
		t.Fatalf("recovered %d mappings, want %d", rep.RecoveredMappings, n)
	}
	for lpn := int64(0); lpn < n; lpn++ {
		_, gotLPN, seq, err := f.ReadMeta(rep.RecoveredAt, lpn)
		if err != nil {
			t.Fatalf("ReadMeta(%d) after recovery: %v", lpn, err)
		}
		if gotLPN != lpn || seq != wantSeq[lpn] {
			t.Fatalf("lpn %d recovered to (lpn %d, seq %d), want seq %d",
				lpn, gotLPN, seq, wantSeq[lpn])
		}
	}
	if got := f.NextSeq(); got != writes+1 {
		t.Fatalf("NextSeq after recovery = %d, want %d", got, writes+1)
	}
	// Writable again, and the zone state machine stayed legal throughout.
	done, err := f.Write(rep.RecoveredAt, 0, nil)
	if err != nil {
		t.Fatalf("write after recovery: %v", err)
	}
	if _, _, seq, err := f.ReadMeta(done, 0); err != nil || seq != writes+1 {
		t.Fatalf("post-recovery write has seq %d (err %v), want %d", seq, err, writes+1)
	}
	if err := aud.Check(); err != nil {
		t.Fatalf("auditor: %v", err)
	}
}

// TestRecoverDropsInFlight: a host write still in flight at the cut falls
// back to its durable predecessor.
func TestRecoverDropsInFlight(t *testing.T) {
	f, _ := recoveryStack(t)
	d1, err := f.Write(0, 0, nil) // seq 1, durable
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(d1, 0, nil); err != nil { // seq 2, in flight at d1
		t.Fatal(err)
	}
	rep, err := f.Recover(d1)
	if err != nil {
		t.Fatal(err)
	}
	_, _, seq, err := f.ReadMeta(rep.RecoveredAt, 0)
	if err != nil || seq != 1 {
		t.Fatalf("lpn 0 recovered to seq %d (err %v), want durable seq 1", seq, err)
	}
}

// TestReadOnlyZoneEvacuation: a hard program failure strands a zone
// ReadOnly; the host FTL evacuates its live data to healthy zones and
// retries, so the write is eventually acknowledged and every page stays
// readable — §2.1's "shrink or take the zone offline", host-side.
func TestReadOnlyZoneEvacuation(t *testing.T) {
	f, dev := recoveryStack(t)
	aud := dev.AttachAuditor()
	n := f.CapacityPages()
	var at sim.Time
	for lpn := int64(0); lpn < n/2; lpn++ {
		done, err := f.Write(at, lpn, nil)
		if err != nil {
			t.Fatal(err)
		}
		at = done
	}
	// Exactly the next program hard-fails: seed 746's first Float64 draw
	// (0.00033) is the only one below 5e-4 among its first 1001 draws, so
	// the failing attempt's draw fails and every evacuation/retry program
	// after it succeeds. The open zone goes ReadOnly, evacuation re-places
	// its data, and the retried append is acknowledged.
	inj := fault.New(fault.Profile{Name: "one-shot", ProgramFailBase: 5e-4}, 746)
	dev.SetInjector(inj)
	done, err := f.Write(at, n/2, nil)
	if err != nil {
		t.Fatalf("write during zone failure: %v", err)
	}
	at = done
	if inj.Counts().ProgramFails == 0 {
		t.Fatal("injector never fired")
	}
	if f.Evacuations() == 0 {
		t.Fatal("ReadOnly zone was not evacuated")
	}
	ro := 0
	for z := 0; z < dev.NumZones(); z++ {
		if dev.State(z) == zns.ReadOnly {
			ro++
		}
	}
	if ro == 0 {
		t.Fatal("no zone ended ReadOnly after a hard program failure")
	}
	for lpn := int64(0); lpn <= n/2; lpn++ {
		if _, gotLPN, _, err := f.ReadMeta(at, lpn); err != nil || gotLPN != lpn {
			t.Fatalf("lpn %d after evacuation: lpn %d, err %v", lpn, gotLPN, err)
		}
	}
	if err := aud.Check(); err != nil {
		t.Fatalf("auditor: %v", err)
	}
}
