package placement

import (
	"errors"
	"testing"

	"blockhead/internal/flash"
	"blockhead/internal/sim"
	"blockhead/internal/workload"
	"blockhead/internal/zns"
)

func testDev(t *testing.T) *zns.Device {
	t.Helper()
	dev, err := zns.New(zns.Config{
		Geom: flash.Geometry{Channels: 2, DiesPerChan: 2, PlanesPerDie: 1,
			BlocksPerLUN: 16, PagesPerBlock: 16, PageSize: 4096},
		Lat:        flash.LatenciesFor(flash.TLC),
		ZoneBlocks: 2, // 32 zones of 32 pages
	})
	if err != nil {
		t.Fatal(err)
	}
	return dev
}

func obj(id int64, pages, class int, death sim.Time) workload.Object {
	return workload.Object{ID: id, Pages: pages, Class: class, Death: death}
}

func TestPolicies(t *testing.T) {
	now := sim.Time(0)
	o := obj(1, 4, 3, 100*sim.Millisecond)

	if (SingleStream{}).Streams() != 1 || (SingleStream{}).StreamOf(now, o) != 0 {
		t.Error("SingleStream wrong")
	}
	if (SingleStream{}).Name() == "" {
		t.Error("empty name")
	}

	rr := &RoundRobin{K: 3}
	got := []int{rr.StreamOf(now, o), rr.StreamOf(now, o), rr.StreamOf(now, o), rr.StreamOf(now, o)}
	if got[0] != 0 || got[1] != 1 || got[2] != 2 || got[3] != 0 {
		t.Errorf("RoundRobin sequence = %v", got)
	}

	bc := ByClass{K: 2, Classes: 4}
	// Classes 0,1 -> stream 0; classes 2,3 -> stream 1.
	if bc.StreamOf(now, obj(1, 1, 0, 1)) != 0 || bc.StreamOf(now, obj(1, 1, 3, 1)) != 1 {
		t.Error("ByClass quantization wrong")
	}
	bcWide := ByClass{K: 4, Classes: 2}
	if s := bcWide.StreamOf(now, obj(1, 1, 1, 1)); s != 1 {
		t.Errorf("ByClass with K > Classes: stream = %d", s)
	}

	or := Oracle{K: 3, Base: sim.Millisecond}
	// ttl <= 1ms -> 0; <= 2ms -> 1; rest -> 2.
	if or.StreamOf(0, obj(1, 1, 0, sim.Millisecond)) != 0 {
		t.Error("oracle bucket 0 wrong")
	}
	if or.StreamOf(0, obj(1, 1, 0, 2*sim.Millisecond)) != 1 {
		t.Error("oracle bucket 1 wrong")
	}
	if or.StreamOf(0, obj(1, 1, 0, sim.Second)) != 2 {
		t.Error("oracle top bucket wrong")
	}
}

func TestPutExpireDelete(t *testing.T) {
	s, err := NewStore(testDev(t), SingleStream{})
	if err != nil {
		t.Fatal(err)
	}
	at, err := s.Put(0, obj(1, 4, 0, 50))
	if err != nil {
		t.Fatal(err)
	}
	if !s.Live(1) {
		t.Error("object not live after Put")
	}
	if s.HostPages() != 4 {
		t.Errorf("HostPages = %d", s.HostPages())
	}
	if n := s.ExpireUpTo(49); n != 0 {
		t.Errorf("early expiry count = %d", n)
	}
	if n := s.ExpireUpTo(50); n != 1 {
		t.Errorf("expiry count = %d", n)
	}
	if s.Live(1) {
		t.Error("object live after expiry")
	}
	// Delete of a dead object fails.
	if err := s.Delete(1); !errors.Is(err, ErrNotFound) {
		t.Errorf("delete dead: %v", err)
	}
	// Fresh object can be deleted early.
	if _, err := s.Put(at, obj(2, 2, 0, sim.Second)); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(2); err != nil {
		t.Fatal(err)
	}
	if s.Live(2) {
		t.Error("object live after delete")
	}
}

func TestObjectTooLarge(t *testing.T) {
	s, _ := NewStore(testDev(t), SingleStream{})
	if _, err := s.Put(0, obj(1, 33, 0, 1)); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized put: %v", err)
	}
}

func TestStoreValidation(t *testing.T) {
	dev, err := zns.New(zns.Config{
		Geom: flash.Geometry{Channels: 2, DiesPerChan: 2, PlanesPerDie: 1,
			BlocksPerLUN: 16, PagesPerBlock: 16, PageSize: 4096},
		Lat: flash.LatenciesFor(flash.TLC), ZoneBlocks: 2, MaxActive: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewStore(dev, &RoundRobin{K: 4}); err == nil {
		t.Error("policy needing more active zones than device allows accepted")
	}
}

// churn writes objects at a steady rate with mixed lifetimes and returns
// the store's WA. Short-lived objects die almost immediately; long-lived
// ones survive many reclamation rounds.
func churn(t *testing.T, policy Policy, writes int) float64 {
	t.Helper()
	s, err := NewStore(testDev(t), policy)
	if err != nil {
		t.Fatal(err)
	}
	// Steady-state live data: ~0.5*(20ms/100us)*4 pages = 400 pages, ~40%
	// of the 1024-page device — mixed lifetimes without overload.
	gen := workload.NewObjectGen(workload.NewSource(77), 4,
		[]sim.Time{sim.Millisecond, 20 * sim.Millisecond})
	var at sim.Time
	for i := 0; i < writes; i++ {
		at += 100 * sim.Microsecond
		s.ExpireUpTo(at)
		o := gen.Next(at)
		var err error
		if _, err = s.Put(at, o); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	return s.WriteAmp()
}

func TestLifetimePlacementReducesWA(t *testing.T) {
	single := churn(t, SingleStream{}, 4000)
	byClass := churn(t, ByClass{K: 2, Classes: 2}, 4000)
	if byClass >= single {
		t.Errorf("class placement must beat single stream: by-class=%v single=%v", byClass, single)
	}
	if single <= 1.0 {
		t.Errorf("single-stream WA = %v, expected > 1 with mixed lifetimes", single)
	}
}

func TestRoundRobinIsNoBetterThanSingle(t *testing.T) {
	single := churn(t, SingleStream{}, 3000)
	rr := churn(t, &RoundRobin{K: 2}, 3000)
	// Round-robin ignores lifetimes: allow 15% slack either way, but it
	// must not approach the by-class improvement.
	if rr < 0.7*single {
		t.Errorf("round-robin (%v) improbably better than single (%v)", rr, single)
	}
}

func TestReclaimKeepsStoreWritable(t *testing.T) {
	// With short lifetimes everywhere, the store must sustain writes far
	// beyond device capacity.
	s, err := NewStore(testDev(t), SingleStream{})
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewObjectGen(workload.NewSource(1), 4, []sim.Time{sim.Millisecond})
	var at sim.Time
	devicePages := int64(32 * 32)
	writes := int(4 * devicePages / 4)
	for i := 0; i < writes; i++ {
		at += 50 * sim.Microsecond
		s.ExpireUpTo(at)
		if _, err := s.Put(at, gen.Next(at)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	if s.GCResets() == 0 {
		t.Error("no zones recycled")
	}
	occ := s.ZoneOccupancy()
	if len(occ) != 32 {
		t.Errorf("occupancy rows = %d", len(occ))
	}
	for i := 1; i < len(occ); i++ {
		if occ[i] > occ[i-1] {
			t.Error("occupancy must be sorted descending")
		}
	}
}
