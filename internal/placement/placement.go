// Package placement studies the paper's central §4.1 question — "How can
// application-level information improve zone management?" — with an
// append-only object store over a ZNS device and pluggable data-placement
// policies.
//
// Objects carry lifetime information (a class hint the application knows,
// and an actual death time). A placement policy maps each object to a write
// stream; each stream owns an open zone. When data that dies together is
// placed together, zones become wholly dead before reclamation needs them
// and can be reset without copying — write amplification approaches 1. When
// lifetimes are mixed in a zone (the single-stream baseline, which is all a
// conventional FTL could do), live data must be copied forward first.
//
// Policies:
//
//   - SingleStream: no information used (the conventional-FTL stand-in).
//   - RoundRobin: spreads load but ignores lifetimes (a placebo control).
//   - ByClass: uses the application's lifetime-class hint, quantized to k
//     streams — "software can often make educated guesses" (§4.1).
//   - Oracle: uses the actual death time — the upper bound on what
//     information can buy, for the "theoretically optimal" question in §4.1.
package placement

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"

	"blockhead/internal/sim"
	"blockhead/internal/workload"
	"blockhead/internal/zns"
)

// Policy maps an object to a write stream.
type Policy interface {
	Name() string
	Streams() int
	StreamOf(now sim.Time, obj workload.Object) int
}

// SingleStream sends everything to one stream.
type SingleStream struct{}

// Name implements Policy.
func (SingleStream) Name() string { return "single-stream" }

// Streams implements Policy.
func (SingleStream) Streams() int { return 1 }

// StreamOf implements Policy.
func (SingleStream) StreamOf(sim.Time, workload.Object) int { return 0 }

// RoundRobin cycles objects across k streams regardless of lifetime.
type RoundRobin struct {
	K    int
	next int
}

// Name implements Policy.
func (r *RoundRobin) Name() string { return fmt.Sprintf("round-robin-%d", r.K) }

// Streams implements Policy.
func (r *RoundRobin) Streams() int { return r.K }

// StreamOf implements Policy.
func (r *RoundRobin) StreamOf(sim.Time, workload.Object) int {
	s := r.next
	r.next = (r.next + 1) % r.K
	return s
}

// ByClass uses the application's lifetime-class hint, quantizing Classes
// application classes onto K streams.
type ByClass struct {
	K       int
	Classes int
}

// Name implements Policy.
func (b ByClass) Name() string { return fmt.Sprintf("by-class-%d", b.K) }

// Streams implements Policy.
func (b ByClass) Streams() int { return b.K }

// StreamOf implements Policy.
func (b ByClass) StreamOf(_ sim.Time, obj workload.Object) int {
	if b.Classes <= b.K {
		return obj.Class % b.K
	}
	return obj.Class * b.K / b.Classes
}

// Oracle buckets objects by their actual remaining lifetime into K
// log-spaced buckets starting at Base (objects living < Base share
// stream 0).
type Oracle struct {
	K    int
	Base sim.Time
}

// Name implements Policy.
func (o Oracle) Name() string { return fmt.Sprintf("oracle-%d", o.K) }

// Streams implements Policy.
func (o Oracle) Streams() int { return o.K }

// StreamOf implements Policy.
func (o Oracle) StreamOf(now sim.Time, obj workload.Object) int {
	ttl := obj.Death - now
	s := 0
	for b := o.Base; ttl > b && s < o.K-1; b *= 2 {
		s++
	}
	return s
}

// Errors returned by the store.
var (
	ErrOutOfSpace = errors.New("placement: no free zones")
	ErrTooLarge   = errors.New("placement: object larger than a zone")
	ErrNotFound   = errors.New("placement: unknown object")
)

type objState struct {
	obj   workload.Object
	zone  int
	off   int64 // first page offset within the zone
	alive bool
}

type seg struct {
	id    int64
	off   int64
	pages int
}

// expiry heap, ordered by death time.
type expHeap []*objState

func (h expHeap) Len() int            { return len(h) }
func (h expHeap) Less(i, j int) bool  { return h[i].obj.Death < h[j].obj.Death }
func (h expHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *expHeap) Push(x interface{}) { *h = append(*h, x.(*objState)) }
func (h *expHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Store is an append-only object store over a ZNS device.
type Store struct {
	dev    *zns.Device
	policy Policy

	streamZone []int // open zone per stream, -1 = none
	relocZone  int   // destination for GC survivors
	freeZones  []int

	objects map[int64]*objState
	segs    [][]seg // per zone
	live    []int64 // live pages per zone
	exp     expHeap

	hostPages uint64
	gcResets  uint64
	gcCopies  uint64
}

// NewStore builds a store. The device must allow at least
// policy.Streams()+1 active zones.
func NewStore(dev *zns.Device, policy Policy) (*Store, error) {
	need := policy.Streams() + 1
	if dev.MaxActive() != 0 && dev.MaxActive() < need {
		return nil, fmt.Errorf("placement: device allows %d active zones; policy needs %d",
			dev.MaxActive(), need)
	}
	if dev.NumZones() < need+2 {
		return nil, fmt.Errorf("placement: %d zones too few for %d streams", dev.NumZones(), policy.Streams())
	}
	s := &Store{
		dev:        dev,
		policy:     policy,
		streamZone: make([]int, policy.Streams()),
		relocZone:  -1,
		objects:    make(map[int64]*objState),
		segs:       make([][]seg, dev.NumZones()),
		live:       make([]int64, dev.NumZones()),
	}
	for i := range s.streamZone {
		s.streamZone[i] = -1
	}
	for z := 0; z < dev.NumZones(); z++ {
		s.freeZones = append(s.freeZones, z)
	}
	return s, nil
}

// Policy returns the store's placement policy.
func (s *Store) Policy() Policy { return s.policy }

// HostPages reports pages of object data written by callers.
func (s *Store) HostPages() uint64 { return s.hostPages }

// GCResets reports zones recycled by reclamation.
func (s *Store) GCResets() uint64 { return s.gcResets }

// GCCopies reports pages copied forward by reclamation.
func (s *Store) GCCopies() uint64 { return s.gcCopies }

// Live reports whether an object is currently stored.
func (s *Store) Live(id int64) bool {
	o, ok := s.objects[id]
	return ok && o.alive
}

// WriteAmp reports flash pages programmed per host object page.
func (s *Store) WriteAmp() float64 {
	if s.hostPages == 0 {
		return 1
	}
	return float64(s.dev.Counters().FlashProgramPages) / float64(s.hostPages)
}

func (s *Store) takeFreeZone() (int, bool) {
	for len(s.freeZones) > 0 {
		z := s.freeZones[0]
		s.freeZones = s.freeZones[1:]
		if s.dev.State(z) == zns.Offline || s.dev.WritableCap(z) == 0 {
			continue
		}
		return z, true
	}
	return -1, false
}

// openWithRoom returns a zone bound to *slot with at least pages of room,
// finishing the current one if it cannot fit the object.
func (s *Store) openWithRoom(at sim.Time, slot *int, pages int) (int, error) {
	for attempt := 0; attempt < 2; attempt++ {
		if *slot < 0 {
			z, ok := s.takeFreeZone()
			if !ok {
				return -1, ErrOutOfSpace
			}
			*slot = z
		}
		z := *slot
		if s.dev.WritableCap(z)-s.dev.WP(z) >= int64(pages) {
			return z, nil
		}
		// Objects never span zones: finish this one and roll.
		if err := s.dev.Finish(at, z); err != nil && !errors.Is(err, zns.ErrBadState) {
			return -1, err
		}
		*slot = -1
	}
	return -1, ErrOutOfSpace
}

// Put appends an object to the zone of its policy-assigned stream and
// registers its expiry. Expired objects must be collected via ExpireUpTo.
func (s *Store) Put(at sim.Time, obj workload.Object) (sim.Time, error) {
	if int64(obj.Pages) > s.dev.ZonePages() {
		return at, ErrTooLarge
	}
	s.reclaim(at)
	stream := s.policy.StreamOf(at, obj)
	if stream < 0 || stream >= len(s.streamZone) {
		return at, fmt.Errorf("placement: policy %s returned stream %d of %d",
			s.policy.Name(), stream, len(s.streamZone))
	}
	z, err := s.openWithRoom(at, &s.streamZone[stream], obj.Pages)
	if err != nil {
		return at, err
	}
	off := s.dev.WP(z)
	done := at
	for p := 0; p < obj.Pages; p++ {
		_, d, err := s.dev.Append(at, z, nil)
		if err != nil {
			return at, err
		}
		done = sim.Max(done, d)
	}
	st := &objState{obj: obj, zone: z, off: off, alive: true}
	s.objects[obj.ID] = st
	s.segs[z] = append(s.segs[z], seg{id: obj.ID, off: off, pages: obj.Pages})
	s.live[z] += int64(obj.Pages)
	s.hostPages += uint64(obj.Pages)
	heap.Push(&s.exp, st)
	return done, nil
}

// Delete drops an object immediately (before its natural death).
func (s *Store) Delete(id int64) error {
	st, ok := s.objects[id]
	if !ok || !st.alive {
		return ErrNotFound
	}
	s.kill(st)
	return nil
}

func (s *Store) kill(st *objState) {
	if !st.alive {
		return
	}
	st.alive = false
	s.live[st.zone] -= int64(st.obj.Pages)
	delete(s.objects, st.obj.ID)
}

// ExpireUpTo marks every object with Death <= now as dead and returns how
// many expired.
func (s *Store) ExpireUpTo(now sim.Time) int {
	n := 0
	for len(s.exp) > 0 && s.exp[0].obj.Death <= now {
		st := heap.Pop(&s.exp).(*objState)
		if st.alive {
			s.kill(st)
			n++
		}
	}
	return n
}

// reclaim recycles the deadest zones while the free pool is low, copying
// surviving objects (via simple copy) to the relocation zone. Work per call
// is bounded so one Put never absorbs a whole-device compaction.
func (s *Store) reclaim(at sim.Time) {
	const maxVictims = 4
	for v := 0; v < maxVictims && len(s.freeZones) <= 2; v++ {
		victim := s.pickVictim()
		if victim < 0 {
			return
		}
		if !s.relocate(at, victim) {
			return
		}
	}
}

func (s *Store) pickVictim() int {
	best := -1
	var bestDead int64
	for z := 0; z < s.dev.NumZones(); z++ {
		if s.isOpen(z) || s.dev.State(z) == zns.Offline || s.dev.State(z) == zns.Empty {
			continue
		}
		if s.dev.WP(z) == 0 {
			continue
		}
		dead := s.dev.WP(z) - s.live[z]
		if dead <= 0 {
			continue
		}
		if best < 0 || dead > bestDead {
			best, bestDead = z, dead
		}
	}
	return best
}

func (s *Store) isOpen(z int) bool {
	if z == s.relocZone {
		return true
	}
	for _, sz := range s.streamZone {
		if sz == z {
			return true
		}
	}
	return false
}

// relocate copies each live object out of victim whole (objects never
// fragment) and resets the zone.
func (s *Store) relocate(at sim.Time, victim int) bool {
	for _, sg := range s.segs[victim] {
		st, ok := s.objects[sg.id]
		if !ok || !st.alive || st.zone != victim {
			continue
		}
		dz, err := s.openWithRoom(at, &s.relocZone, sg.pages)
		if err != nil {
			return false
		}
		srcs := make([]int64, sg.pages)
		for p := range srcs {
			srcs[p] = s.dev.LBA(victim, sg.off+int64(p))
		}
		newOff := s.dev.WP(dz)
		if _, _, err := s.dev.SimpleCopy(at, srcs, dz); err != nil {
			return false
		}
		s.live[victim] -= int64(sg.pages)
		s.live[dz] += int64(sg.pages)
		st.zone, st.off = dz, newOff
		s.segs[dz] = append(s.segs[dz], seg{id: sg.id, off: newOff, pages: sg.pages})
		s.gcCopies += uint64(sg.pages)
	}
	s.segs[victim] = nil
	if _, err := s.dev.Reset(at, victim); err != nil {
		return false
	}
	s.live[victim] = 0
	if s.dev.State(victim) == zns.Empty {
		s.freeZones = append(s.freeZones, victim)
	}
	s.gcResets++
	return true
}

// ZoneOccupancy returns live-page counts per zone, sorted descending —
// a diagnostic for how well a policy clusters deaths.
func (s *Store) ZoneOccupancy() []int64 {
	out := append([]int64(nil), s.live...)
	sort.Slice(out, func(i, j int) bool { return out[i] > out[j] })
	return out
}
