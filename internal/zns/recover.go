package zns

import (
	"errors"

	"blockhead/internal/fault"
	"blockhead/internal/sim"
	"blockhead/internal/telemetry"
)

// Recover models a power loss at crashAt followed by a restart of the zoned
// device. The flash layer is truncated to its durable prefix
// (flash.Device.CrashAt) and each zone's write pointer is rediscovered from
// the per-block program counts the flash array itself persists — one
// confirming read per written block, O(blocks) total. That constant-per-zone
// cost is the structural asymmetry against the conventional FTL's O(written
// pages) out-of-band mapping scan (§2.2): the zone abstraction makes the
// write pointer the only mapping state there is.
//
// Per-zone outcome:
//
//   - Offline and ReadOnly zones are sticky (the stripe still has a
//     grown-bad block); ReadOnly write pointers are re-derived so surviving
//     data stays readable.
//   - Zones with no durable pages return to Empty. Blocks whose in-flight
//     programs were truncated to nothing have indeterminate cells and are
//     re-erased first.
//   - Zones with any durable data freeze Full at the maximal written extent.
//     Programs that were in flight at the crash leave holes below the write
//     pointer; reading a hole reports flash.ErrUnwritten, and ZNS offers no
//     way to resume writing mid-zone, so the host must treat the zone as
//     sealed and reclaim it by reset.
//
// Open/Closed zones cannot survive: the active/open write-buffer resources
// are volatile. Payloads kept by StoreData are DRAM-resident in this model
// and do not survive; integrity under crashes is checked via ReadMeta and
// the host FTL's OOB stamps instead. Requires Config.Recovery.
func (d *Device) Recover(crashAt sim.Time) (fault.RecoveryReport, error) {
	if !d.chip.RecoveryEnabled() {
		return fault.RecoveryReport{}, errors.New("zns: recovery not armed (Config.Recovery)")
	}
	cs := d.chip.CrashAt(crashAt)
	rep := fault.RecoveryReport{
		Stack:      "zns",
		CrashAt:    crashAt,
		LostPages:  cs.LostPages,
		TornBlocks: len(cs.Torn),
	}
	if d.data != nil {
		d.data = make(map[int64][]byte)
	}

	// Recovery traffic is maintenance, not attributable host IO.
	d.attr.Suspend()
	defer d.attr.Resume()

	at := crashAt
	for _, b := range cs.Torn {
		// Truncated to zero durable pages: the cells are indeterminate, so
		// erase before trusting the block again. A failed erase grows the
		// block bad; its zone discovers that at the next program or reset.
		if done, err := d.chip.EraseBlock(at, b); err == nil {
			at = done
			rep.ErasedBlocks++
			d.counters.BlockErases++
		}
	}

	for z := range d.zones {
		zn := &d.zones[z]
		if zn.state == Offline {
			rep.ZonesOffline++
			continue
		}
		// Write-pointer rediscovery: the maximal extent covered by the
		// stripe's durable per-block prefixes.
		w := int64(len(zn.blocks))
		var extent int64
		for j, b := range zn.blocks {
			c := int64(d.chip.WrittenPages(b))
			if c == 0 {
				continue
			}
			rep.ScannedBlocks++
			rep.ScannedPages++
			if done, err := d.chip.ReadPage(at, b, 0); err != nil {
				rep.UnreadablePages++
			} else {
				at = done
			}
			if e := (c-1)*w + int64(j) + 1; e > extent {
				extent = e
			}
		}
		wasReadOnly := zn.state == ReadOnly
		d.release(zn)
		zn.wp = extent
		switch {
		case wasReadOnly:
			rep.ZonesReadOnly++
		case extent == 0:
			d.transition(at, z, Empty)
			rep.ZonesEmpty++
		default:
			d.transition(at, z, Full)
			rep.ZonesFull++
		}
	}
	rep.RecoveredAt = at
	d.fl.Record(at, telemetry.FlightRecover, -1, "zns", int64(rep.ZonesFull))
	return rep, nil
}
