package zns

import (
	"bytes"
	"strings"
	"testing"

	"blockhead/internal/sim"
	"blockhead/internal/telemetry"
)

// auditProbe returns a full probe whose flight recorder auto-dumps into buf
// instead of stderr, so tests can assert on the dump.
func auditProbe(buf *bytes.Buffer) *telemetry.Probe {
	p := telemetry.NewProbe(telemetry.Options{})
	p.FlightRec.DumpTo = buf
	return p
}

// A correct device produces zero violations over a full lifecycle churn:
// open, close, implicit reopen, fill to full, finish, reset.
func TestAuditorCleanLifecycle(t *testing.T) {
	d := mustNew(t, testCfg())
	aud := d.AttachAuditor()
	var at sim.Time
	if err := d.Open(at, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(at, 0); err != nil {
		t.Fatal(err)
	}
	// Writing to the closed zone implicitly reopens it; filling it makes it
	// Full; the reset returns it to Empty.
	for o := int64(0); o < d.ZonePages(); o++ {
		var err error
		if at, err = d.Write(at, d.LBA(0, o), nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.Reset(at, 0); err != nil {
		t.Fatal(err)
	}
	// Finish from Open and from Empty are both legal.
	if err := d.Open(at, 1); err != nil {
		t.Fatal(err)
	}
	if err := d.Finish(at, 1); err != nil {
		t.Fatal(err)
	}
	if err := d.Finish(at, 2); err != nil {
		t.Fatal(err)
	}
	if v := aud.Violations(); v != 0 {
		t.Fatalf("clean lifecycle produced %d violations", v)
	}
	if err := aud.Check(); err != nil {
		t.Fatal(err)
	}
}

// An illegal transition forced past the public API is caught, counted by
// kind, and triggers an automatic flight-recorder dump naming the pair.
func TestAuditorCatchesIllegalTransition(t *testing.T) {
	var buf bytes.Buffer
	d := mustNew(t, testCfg())
	d.SetProbe(auditProbe(&buf))
	aud := d.AttachAuditor()
	// Record some legitimate history first so the dump has context.
	at, err := d.Write(0, d.LBA(1, 0), nil)
	if err != nil {
		t.Fatal(err)
	}
	d.transition(at, 0, Closed) // Empty->Closed: not in the spec's table
	if v := aud.Violations(); v != 1 {
		t.Fatalf("Violations = %d, want 1", v)
	}
	if v := aud.ViolationsByKind(AuditIllegalTransition); v != 1 {
		t.Fatalf("ViolationsByKind(illegal_transition) = %d, want 1", v)
	}
	dump := buf.String()
	if !strings.Contains(dump, "flight recorder") {
		t.Errorf("violation did not auto-dump the flight recorder:\n%s", dump)
	}
	if !strings.Contains(dump, "empty->closed") {
		t.Errorf("dump does not name the illegal pair:\n%s", dump)
	}
	if !strings.Contains(dump, "audit_violation") {
		t.Errorf("dump does not carry the violation event:\n%s", dump)
	}
	// The forged transition also desynced the device's own active-zone
	// bookkeeping; the quiescent Check must refuse it too.
	if err := aud.Check(); err == nil {
		t.Error("Check accepted a device with forged state")
	}
}

// A state change that bypasses transition entirely shows up as a mismatch on
// the next observed transition, after which the mirror resynchronizes.
func TestAuditorStateMismatch(t *testing.T) {
	var buf bytes.Buffer
	d := mustNew(t, testCfg())
	d.SetProbe(auditProbe(&buf))
	aud := d.AttachAuditor()
	// Corrupt zone 1 behind the auditor's back, keeping the device's own
	// bookkeeping consistent so only the bypass itself is the defect.
	d.zones[1].state = Closed
	d.active++
	if err := d.Open(0, 1); err != nil { // Closed->Open, but mirror says Empty
		t.Fatal(err)
	}
	if v := aud.ViolationsByKind(AuditStateMismatch); v != 1 {
		t.Fatalf("ViolationsByKind(state_mismatch) = %d, want 1", v)
	}
	if v := aud.ViolationsByKind(AuditIllegalTransition); v != 0 {
		t.Fatalf("legal Closed->Open flagged as illegal (%d)", v)
	}
	// The mismatch resynchronized the mirror and its derived counts.
	if err := aud.Check(); err != nil {
		t.Fatalf("auditor did not resync after mismatch: %v", err)
	}
}

// The auditor's per-transition hook and the flight recorder's disabled path
// are allocation-free — the contract that lets transition call them
// unconditionally.
func TestDisabledAuditZeroAllocs(t *testing.T) {
	var a *Auditor
	var fl *telemetry.Flight
	allocs := testing.AllocsPerRun(1000, func() {
		a.observe(0, 0, Empty, Open)
		fl.Record(0, telemetry.FlightTransition, 0, transPair[Empty][Open], 0)
		fl.Violation(0, telemetry.FlightAuditViolation, 0, "", 0)
	})
	if allocs != 0 {
		t.Fatalf("disabled audit path allocates %.1f allocs/op, want 0", allocs)
	}
}

// The enabled no-violation observe path is allocation-free too.
func TestEnabledAuditObserveZeroAllocs(t *testing.T) {
	d := mustNew(t, testCfg())
	aud := d.AttachAuditor()
	allocs := testing.AllocsPerRun(1000, func() {
		aud.observe(0, 0, Empty, Open)
		aud.observe(0, 0, Open, Empty)
	})
	if allocs != 0 {
		t.Fatalf("enabled observe allocates %.1f allocs/op, want 0", allocs)
	}
	if v := aud.Violations(); v != 0 {
		t.Fatalf("legal open/release cycles flagged: %d violations", v)
	}
}

func TestStateCensus(t *testing.T) {
	d := mustNew(t, testCfg()) // 8 zones
	var at sim.Time
	d.Open(at, 0)
	d.Open(at, 1)
	d.Close(at, 1)
	d.Finish(at, 2)
	c := d.StateCensus()
	if c[Empty] != 5 || c[Open] != 1 || c[Closed] != 1 || c[Full] != 1 {
		t.Fatalf("census = %v", c)
	}
	want := "empty=5 open=1 closed=1 full=1 read-only=0 offline=0"
	if c.String() != want {
		t.Fatalf("census string = %q, want %q", c.String(), want)
	}
}
