package zns

import (
	"errors"
	"testing"

	"blockhead/internal/fault"
	"blockhead/internal/flash"
	"blockhead/internal/sim"
)

// recoveryDev builds a small multi-block-stripe device with the recovery
// machinery armed.
func recoveryDev(t *testing.T) *Device {
	t.Helper()
	d, err := New(Config{
		Geom: flash.Geometry{Channels: 2, DiesPerChan: 1, PlanesPerDie: 1,
			BlocksPerLUN: 8, PagesPerBlock: 8, PageSize: 4096},
		Lat:        flash.LatenciesFor(flash.TLC),
		ZoneBlocks: 2,
		Recovery:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// fillZone appends n pages to zone z, stamping each with its LBA as lpn.
func fillZone(t *testing.T, d *Device, z int, n int64) sim.Time {
	t.Helper()
	var at sim.Time
	for k := int64(0); k < n; k++ {
		lba, done, err := d.Append(at, z, nil)
		if err != nil {
			t.Fatalf("append %d to zone %d: %v", k, z, err)
		}
		d.StampOOB(lba, lba, uint64(k+1))
		at = done
	}
	return at
}

// TestRecoverWritePointerRediscovery: after a crash the device freezes
// written zones Full at the maximum durable extent, keeps empty zones empty,
// and every durable page stays readable.
func TestRecoverWritePointerRediscovery(t *testing.T) {
	d := recoveryDev(t)
	at := fillZone(t, d, 0, 5)
	at2 := fillZone(t, d, 1, d.ZonePages())
	if at2 > at {
		at = at2
	}

	rep, err := d.Recover(at)
	if err != nil {
		t.Fatal(err)
	}
	if d.State(0) != Full || d.WP(0) != 5 {
		t.Fatalf("zone 0 = %v wp=%d, want Full wp=5", d.State(0), d.WP(0))
	}
	if d.State(1) != Full || d.WP(1) != d.ZonePages() {
		t.Fatalf("zone 1 = %v wp=%d, want Full wp=%d", d.State(1), d.WP(1), d.ZonePages())
	}
	if d.State(2) != Empty {
		t.Fatalf("untouched zone 2 = %v, want Empty", d.State(2))
	}
	if rep.ZonesFull != 2 || rep.ZonesEmpty < 1 {
		t.Fatalf("census full=%d empty=%d, want 2 and >=1", rep.ZonesFull, rep.ZonesEmpty)
	}
	// The rediscovery scan is O(blocks), not O(written pages).
	if rep.ScannedPages >= 5+d.ZonePages() {
		t.Fatalf("scanned %d pages; want one confirming read per written block", rep.ScannedPages)
	}
	// All durable data readable with stamps intact; holes below wp error.
	for _, lba := range []int64{0, 4, d.ZonePages(), 2*d.ZonePages() - 1} {
		if _, lpn, _, err := d.ReadMeta(rep.RecoveredAt, lba); err != nil || lpn != lba {
			t.Fatalf("ReadMeta(%d) = lpn %d, err %v", lba, lpn, err)
		}
	}
	if _, _, err := d.Read(rep.RecoveredAt, 5); err == nil {
		t.Fatal("read beyond the frozen write pointer succeeded")
	}
	// A frozen-Full zone resets back into service.
	if _, err := d.Reset(rep.RecoveredAt, 0); err != nil {
		t.Fatalf("reset of recovered zone: %v", err)
	}
	if d.State(0) != Empty {
		t.Fatalf("zone 0 after reset = %v, want Empty", d.State(0))
	}
}

// TestRecoverHoleBelowWP: the max-extent rule freezes the write pointer high
// enough that no durable page is masked, which can leave holes below it when
// stripe blocks completed out of offset order. Holes read as ErrUnwritten;
// every durable page stays reachable.
func TestRecoverHoleBelowWP(t *testing.T) {
	d := recoveryDev(t)
	// Zone 1's first stripe block shares a LUN with zone 0's, so this append
	// delays zone 0's even offsets by one program relative to the odd ones.
	lba, _, err := d.Append(0, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	d.StampOOB(lba, lba, 1)
	// Five appends to zone 0, all issued at t=0: offsets 1 and 3 (other LUN)
	// complete before offsets 2 and 4.
	dones := make([]sim.Time, 5)
	for k := int64(0); k < 5; k++ {
		lba, done, err := d.Append(0, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		d.StampOOB(lba, lba, uint64(k+2))
		dones[k] = done
	}
	if dones[3] >= dones[2] {
		t.Fatalf("test premise broken: offset 3 (done %d) should beat offset 2 (done %d)",
			dones[3], dones[2])
	}

	rep, err := d.Recover(dones[3])
	if err != nil {
		t.Fatal(err)
	}
	if d.State(0) != Full || d.WP(0) != 4 {
		t.Fatalf("zone 0 = %v wp=%d, want Full wp=4 (max extent)", d.State(0), d.WP(0))
	}
	for _, o := range []int64{0, 1, 3} {
		if _, lpn, _, err := d.ReadMeta(rep.RecoveredAt, o); err != nil || lpn != o {
			t.Fatalf("durable offset %d: lpn %d, err %v", o, lpn, err)
		}
	}
	if _, _, err := d.Read(rep.RecoveredAt, 2); !errors.Is(err, flash.ErrUnwritten) {
		t.Fatalf("hole below wp: err = %v, want ErrUnwritten", err)
	}
	if _, _, err := d.Read(rep.RecoveredAt, 4); err == nil {
		t.Fatal("read beyond the frozen write pointer succeeded")
	}
}

// TestRecoverTornZone: a zone whose only programs were in flight at the cut
// comes back Empty, its torn blocks re-erased.
func TestRecoverTornZone(t *testing.T) {
	d := recoveryDev(t)
	lba, done, err := d.Append(0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	d.StampOOB(lba, lba, 1)
	// Crash before the program completed: the zone's data never became
	// durable.
	rep, err := d.Recover(done - 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.LostPages != 1 || rep.TornBlocks != 1 {
		t.Fatalf("lost=%d torn=%d, want 1 and 1", rep.LostPages, rep.TornBlocks)
	}
	if d.State(0) != Empty || d.WP(0) != 0 {
		t.Fatalf("torn zone = %v wp=%d, want Empty wp=0", d.State(0), d.WP(0))
	}
	if rep.ErasedBlocks != 1 {
		t.Fatalf("erased %d torn blocks, want 1", rep.ErasedBlocks)
	}
	// The re-erased zone accepts appends again.
	if _, _, err := d.Append(rep.RecoveredAt, 0, nil); err != nil {
		t.Fatalf("append to recovered torn zone: %v", err)
	}
}

// TestProgramFailTransitionsReadOnly: a hard program failure strands the
// zone ReadOnly — durable pages stay readable, appends are refused, Reset is
// invalid (the spec's terminal-ish state), and recovery keeps it ReadOnly.
func TestProgramFailTransitionsReadOnly(t *testing.T) {
	d := recoveryDev(t)
	aud := d.AttachAuditor()
	at := fillZone(t, d, 0, 3)

	d.SetInjector(fault.New(fault.Profile{Name: "certain", ProgramFailBase: 1}, 1))
	_, _, err := d.Append(at, 0, nil)
	if !errors.Is(err, ErrZoneReadOnly) {
		t.Fatalf("append under certain program failure: err = %v, want ErrZoneReadOnly", err)
	}
	d.SetInjector(nil)
	if d.State(0) != ReadOnly {
		t.Fatalf("zone state = %v, want ReadOnly", d.State(0))
	}
	for lba := int64(0); lba < 3; lba++ {
		if _, lpn, _, err := d.ReadMeta(at, lba); err != nil || lpn != lba {
			t.Fatalf("ReadMeta(%d) in ReadOnly zone = lpn %d, err %v", lba, lpn, err)
		}
	}
	if _, _, err := d.Append(at, 0, nil); !errors.Is(err, ErrBadState) {
		t.Fatalf("append to ReadOnly zone: err = %v, want ErrBadState", err)
	}
	if _, err := d.Reset(at, 0); !errors.Is(err, ErrBadState) {
		t.Fatalf("reset of ReadOnly zone: err = %v, want ErrBadState", err)
	}

	rep, err := d.Recover(at)
	if err != nil {
		t.Fatal(err)
	}
	if d.State(0) != ReadOnly || rep.ZonesReadOnly != 1 {
		t.Fatalf("after recovery: state=%v census RO=%d, want ReadOnly/1", d.State(0), rep.ZonesReadOnly)
	}
	if _, lpn, _, err := d.ReadMeta(rep.RecoveredAt, 1); err != nil || lpn != 1 {
		t.Fatalf("ReadMeta in recovered ReadOnly zone = lpn %d, err %v", lpn, err)
	}
	if err := aud.Check(); err != nil {
		t.Fatalf("auditor: %v", err)
	}
}

// TestRecoverRequiresRecoveryConfig: Recover on a device built without
// Recovery is refused, not silently wrong.
func TestRecoverRequiresRecoveryConfig(t *testing.T) {
	d, err := New(Config{
		Geom: flash.Geometry{Channels: 2, DiesPerChan: 1, PlanesPerDie: 1,
			BlocksPerLUN: 8, PagesPerBlock: 8, PageSize: 4096},
		Lat:        flash.LatenciesFor(flash.TLC),
		ZoneBlocks: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Recover(0); err == nil {
		t.Fatal("Recover without Config.Recovery succeeded")
	}
}
