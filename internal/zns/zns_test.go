package zns

import (
	"errors"
	"testing"
	"testing/quick"

	"blockhead/internal/flash"
	"blockhead/internal/sim"
)

func testGeom() flash.Geometry {
	return flash.Geometry{Channels: 2, DiesPerChan: 2, PlanesPerDie: 1,
		BlocksPerLUN: 8, PagesPerBlock: 16, PageSize: 4096}
}

func testCfg() Config {
	return Config{Geom: testGeom(), Lat: flash.LatenciesFor(flash.TLC),
		ZoneBlocks: 4, MaxActive: 4, MaxOpen: 2, StoreData: true}
}

func mustNew(t *testing.T, cfg Config) *Device {
	t.Helper()
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	cfg := testCfg()
	cfg.ZoneBlocks = testGeom().TotalBlocks() + 1
	if _, err := New(cfg); err == nil {
		t.Error("oversized ZoneBlocks accepted")
	}
	cfg = testCfg()
	cfg.MaxOpen = 10 // > MaxActive
	if _, err := New(cfg); err == nil {
		t.Error("MaxOpen > MaxActive accepted")
	}
}

func TestLayout(t *testing.T) {
	d := mustNew(t, testCfg())
	// 32 blocks / 4 per zone = 8 zones of 64 pages.
	if d.NumZones() != 8 {
		t.Errorf("NumZones = %d, want 8", d.NumZones())
	}
	if d.ZonePages() != 64 {
		t.Errorf("ZonePages = %d, want 64", d.ZonePages())
	}
	lba := d.LBA(3, 10)
	z, o := d.ZoneOf(lba)
	if z != 3 || o != 10 {
		t.Errorf("ZoneOf(LBA(3,10)) = (%d,%d)", z, o)
	}
}

func TestStateStrings(t *testing.T) {
	for s, want := range map[ZoneState]string{Empty: "empty", Open: "open",
		Closed: "closed", Full: "full", ReadOnly: "read-only", Offline: "offline"} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", int(s), s.String())
		}
	}
	if ZoneState(42).String() != "ZoneState(42)" {
		t.Error("unknown state String wrong")
	}
}

func TestSequentialWriteLifecycle(t *testing.T) {
	d := mustNew(t, testCfg())
	var at sim.Time
	// Zones start empty.
	if d.State(0) != Empty {
		t.Fatal("zone 0 not empty")
	}
	// Write the whole zone at the write pointer.
	for o := int64(0); o < d.ZonePages(); o++ {
		var err error
		at, err = d.Write(at, d.LBA(0, o), nil)
		if err != nil {
			t.Fatalf("write offset %d: %v", o, err)
		}
	}
	if d.State(0) != Full {
		t.Errorf("state after filling = %v, want full", d.State(0))
	}
	if d.WP(0) != d.ZonePages() {
		t.Errorf("WP = %d", d.WP(0))
	}
	// A full zone rejects writes.
	if _, err := d.Write(at, d.LBA(0, 0), nil); !errors.Is(err, ErrNotWritePtr) {
		t.Errorf("write to full zone at offset 0: %v", err)
	}
	// Reset returns it to empty and erases the blocks.
	done, err := d.Reset(at, 0)
	if err != nil {
		t.Fatal(err)
	}
	if done <= at {
		t.Error("reset must take time (erases)")
	}
	if d.State(0) != Empty || d.WP(0) != 0 {
		t.Errorf("after reset: state=%v wp=%d", d.State(0), d.WP(0))
	}
	if d.Resets() != 1 {
		t.Errorf("Resets = %d", d.Resets())
	}
}

func TestWriteMustMatchWP(t *testing.T) {
	d := mustNew(t, testCfg())
	if _, err := d.Write(0, d.LBA(0, 5), nil); !errors.Is(err, ErrNotWritePtr) {
		t.Errorf("out-of-order write: %v, want ErrNotWritePtr", err)
	}
	at, _ := d.Write(0, d.LBA(0, 0), nil)
	// Writing offset 0 again must now fail: WP moved.
	if _, err := d.Write(at, d.LBA(0, 0), nil); !errors.Is(err, ErrNotWritePtr) {
		t.Errorf("stale-WP write: %v, want ErrNotWritePtr", err)
	}
}

func TestAppendAssignsLBAs(t *testing.T) {
	d := mustNew(t, testCfg())
	var at sim.Time
	for i := int64(0); i < 5; i++ {
		lba, done, err := d.Append(at, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		if lba != d.LBA(1, i) {
			t.Errorf("append %d: lba = %d, want %d", i, lba, d.LBA(1, i))
		}
		at = done
	}
	if d.Appends() != 5 {
		t.Errorf("Appends = %d", d.Appends())
	}
}

func TestReadAfterWrite(t *testing.T) {
	d := mustNew(t, testCfg())
	lba, at, err := d.Append(0, 0, []byte("zoned"))
	if err != nil {
		t.Fatal(err)
	}
	done, data, err := d.Read(at, lba)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "zoned" || done <= at {
		t.Errorf("read: data=%q done=%d", data, done)
	}
	// Reads beyond WP fail.
	if _, _, err := d.Read(at, lba+1); !errors.Is(err, ErrUnwritten) {
		t.Errorf("read beyond WP: %v", err)
	}
	if _, _, err := d.Read(at, -1); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("negative lba: %v", err)
	}
}

func TestOpenCloseStateMachine(t *testing.T) {
	d := mustNew(t, testCfg())
	if err := d.Open(0, 0); err != nil {
		t.Fatal(err)
	}
	if d.State(0) != Open || d.OpenZones() != 1 || d.ActiveZones() != 1 {
		t.Fatalf("after open: %v open=%d active=%d", d.State(0), d.OpenZones(), d.ActiveZones())
	}
	if err := d.Close(0, 0); err != nil {
		t.Fatal(err)
	}
	if d.State(0) != Closed || d.OpenZones() != 0 || d.ActiveZones() != 1 {
		t.Fatalf("after close: %v open=%d active=%d", d.State(0), d.OpenZones(), d.ActiveZones())
	}
	// Closing a closed zone is invalid.
	if err := d.Close(0, 0); !errors.Is(err, ErrBadState) {
		t.Errorf("double close: %v", err)
	}
	// Writing to a closed zone implicitly reopens it.
	if _, err := d.Write(0, d.LBA(0, 0), nil); err != nil {
		t.Fatal(err)
	}
	if d.State(0) != Open {
		t.Error("write must reopen a closed zone")
	}
}

func TestOpenLimit(t *testing.T) {
	d := mustNew(t, testCfg()) // MaxOpen=2, MaxActive=4
	if err := d.Open(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Open(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := d.Open(0, 2); !errors.Is(err, ErrTooManyOpen) {
		t.Errorf("third open: %v, want ErrTooManyOpen", err)
	}
	// Closing one frees an open slot but not an active slot.
	d.Close(0, 0)
	if err := d.Open(0, 2); err != nil {
		t.Fatal(err)
	}
	d.Close(0, 1)
	if err := d.Open(0, 3); err != nil {
		t.Fatal(err)
	}
	// Now 4 active (2 open + 2 closed): a 5th zone cannot be activated.
	d.Close(0, 2)
	if err := d.Open(0, 4); !errors.Is(err, ErrTooManyActive) {
		t.Errorf("fifth activation: %v, want ErrTooManyActive", err)
	}
	// Reset releases active resources.
	if _, err := d.Reset(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Open(0, 4); err != nil {
		t.Errorf("open after reset freed resources: %v", err)
	}
}

func TestFullZoneReleasesResources(t *testing.T) {
	d := mustNew(t, testCfg())
	var at sim.Time
	for o := int64(0); o < d.ZonePages(); o++ {
		var err error
		at, err = d.Write(at, d.LBA(0, o), nil)
		if err != nil {
			t.Fatal(err)
		}
	}
	if d.ActiveZones() != 0 || d.OpenZones() != 0 {
		t.Errorf("full zone must release resources: active=%d open=%d",
			d.ActiveZones(), d.OpenZones())
	}
}

func TestFinish(t *testing.T) {
	d := mustNew(t, testCfg())
	at, _ := d.Write(0, d.LBA(0, 0), nil)
	if err := d.Finish(at, 0); err != nil {
		t.Fatal(err)
	}
	if d.State(0) != Full || d.WP(0) != d.WritableCap(0) {
		t.Errorf("after finish: state=%v wp=%d", d.State(0), d.WP(0))
	}
	if d.ActiveZones() != 0 {
		t.Error("finish must release active resources")
	}
	// Finish of an empty zone is legal.
	if err := d.Finish(at, 1); err != nil {
		t.Fatal(err)
	}
	if d.State(1) != Full {
		t.Error("finished empty zone must be full")
	}
	// Finish of a full zone is invalid.
	if err := d.Finish(at, 0); !errors.Is(err, ErrBadState) {
		t.Errorf("finish full zone: %v", err)
	}
}

func TestZoneStriping(t *testing.T) {
	d := mustNew(t, testCfg())
	// Writes to one zone stripe across 4 LUNs: 4 sequential writes issued at
	// t=0 through the same zone must overlap on distinct LUNs. Use appends
	// issued at the same instant.
	var dones []sim.Time
	for i := 0; i < 4; i++ {
		_, done, err := d.Append(0, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		dones = append(dones, done)
	}
	// All four appends target distinct LUNs (blocks 0..3); channel-bus
	// serialization staggers them slightly, but program times overlap, so
	// the last completes well before 4 sequential program latencies.
	serial := 4 * d.chip.Lat.ProgramPage
	if dones[3] >= serial {
		t.Errorf("striped appends did not overlap: last done at %v, serial bound %v",
			dones[3], serial)
	}
}

func TestSimpleCopy(t *testing.T) {
	d := mustNew(t, testCfg())
	var at sim.Time
	var srcs []int64
	for i := 0; i < 3; i++ {
		lba, done, err := d.Append(at, 0, []byte{byte('a' + i)})
		if err != nil {
			t.Fatal(err)
		}
		srcs = append(srcs, lba)
		at = done
	}
	pcieBefore := d.Counters().PCIeBytes
	first, done, err := d.SimpleCopy(at, srcs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.Counters().PCIeBytes != pcieBefore {
		t.Error("simple copy must not consume PCIe bandwidth (§2.3)")
	}
	if first != d.LBA(1, 0) {
		t.Errorf("first dst lba = %d", first)
	}
	if d.WP(1) != 3 {
		t.Errorf("dst WP = %d, want 3", d.WP(1))
	}
	// Payloads moved.
	_, data, err := d.Read(done, d.LBA(1, 1))
	if err != nil || string(data) != "b" {
		t.Errorf("copied payload: %q err=%v", data, err)
	}
	if d.Counters().GCCopyPages != 3 {
		t.Errorf("GCCopyPages = %d", d.Counters().GCCopyPages)
	}
	// Copy of unwritten source fails.
	if _, _, err := d.SimpleCopy(done, []int64{d.LBA(2, 0)}, 1); !errors.Is(err, ErrUnwritten) {
		t.Errorf("copy unwritten: %v", err)
	}
	// Copy overflowing the destination fails up front.
	big := make([]int64, d.ZonePages()+1)
	if _, _, err := d.SimpleCopy(done, big, 1); !errors.Is(err, ErrZoneFull) {
		t.Errorf("oversized copy: %v", err)
	}
}

func TestResetWearShrinksZone(t *testing.T) {
	cfg := testCfg()
	cfg.Endurance = 2
	d := mustNew(t, cfg)
	var at sim.Time
	// Two full write+reset cycles exhaust endurance; the third reset after
	// writing retires all 4 blocks -> zone offline.
	for cycle := 0; cycle < 3; cycle++ {
		for o := int64(0); o < d.WritableCap(0); o++ {
			var err error
			at, err = d.Write(at, d.LBA(0, o), nil)
			if err != nil {
				t.Fatalf("cycle %d write: %v", cycle, err)
			}
		}
		var err error
		at, err = d.Reset(at, 0)
		if cycle < 2 {
			if err != nil {
				t.Fatalf("cycle %d reset: %v", cycle, err)
			}
			continue
		}
		// Third reset: every block hits the endurance wall.
		if d.State(0) != Offline {
			t.Errorf("state after wear-out = %v, want offline", d.State(0))
		}
		if d.WritableCap(0) != 0 {
			t.Errorf("cap = %d, want 0", d.WritableCap(0))
		}
	}
	// Offline zones reject everything.
	if _, err := d.Reset(at, 0); !errors.Is(err, ErrOffline) {
		t.Errorf("reset offline: %v", err)
	}
	if err := d.Open(at, 0); !errors.Is(err, ErrOffline) {
		t.Errorf("open offline: %v", err)
	}
	if _, _, err := d.Read(at, d.LBA(0, 0)); !errors.Is(err, ErrOffline) {
		t.Errorf("read offline: %v", err)
	}
}

func TestDRAMFootprintTiny(t *testing.T) {
	d := mustNew(t, testCfg())
	// 4 B per block + 16 B per zone: far below the conventional 4 B/page.
	want := int64(4*32 + 16*8)
	if d.DRAMFootprintBytes() != want {
		t.Errorf("DRAMFootprintBytes = %d, want %d", d.DRAMFootprintBytes(), want)
	}
}

func TestZoneReport(t *testing.T) {
	d := mustNew(t, testCfg())
	d.Append(0, 2, nil)
	rep := d.ZoneReport()
	if len(rep) != 8 {
		t.Fatalf("report rows = %d", len(rep))
	}
	if rep[2].State != Open || rep[2].WP != 1 || rep[2].Zone != 2 {
		t.Errorf("report[2] = %+v", rep[2])
	}
}

func TestNoDeviceGC(t *testing.T) {
	// The ZNS FTL never moves data on its own: flash programs == host
	// writes + explicit simple copies, always.
	d := mustNew(t, testCfg())
	var at sim.Time
	for z := 0; z < 2; z++ {
		for o := int64(0); o < d.ZonePages(); o++ {
			var err error
			at, err = d.Write(at, d.LBA(z, o), nil)
			if err != nil {
				t.Fatal(err)
			}
		}
		at, _ = d.Reset(at, z)
	}
	c := d.Counters()
	if c.FlashProgramPages != c.HostWritePages {
		t.Errorf("device moved data on its own: programs=%d host=%d",
			c.FlashProgramPages, c.HostWritePages)
	}
	if got := c.WriteAmp(); got != 1.0 {
		t.Errorf("ZNS device WA = %v, want exactly 1.0", got)
	}
}

// Property: for any interleaving of appends and resets on one zone, the WP
// never exceeds capacity, state remains consistent with WP, and assigned
// LBAs are strictly increasing between resets.
func TestZoneInvariantProperty(t *testing.T) {
	f := func(ops []bool) bool {
		cfg := testCfg()
		cfg.MaxActive, cfg.MaxOpen = 0, 0
		d, err := New(cfg)
		if err != nil {
			return false
		}
		var at sim.Time
		lastLBA := int64(-1)
		for _, isReset := range ops {
			if isReset {
				if _, err := d.Reset(at, 0); err != nil {
					return false
				}
				lastLBA = -1
				continue
			}
			lba, done, err := d.Append(at, 0, nil)
			if errors.Is(err, ErrZoneFull) {
				continue
			}
			if err != nil {
				return false
			}
			if lba <= lastLBA {
				return false
			}
			lastLBA = lba
			at = done
			if d.WP(0) > d.WritableCap(0) {
				return false
			}
			if d.WP(0) == d.WritableCap(0) && d.State(0) != Full {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: the device's active/open accounting always equals the counts
// derived from zone states, under arbitrary op sequences and limits.
func TestActiveAccountingProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		cfg := testCfg()
		cfg.MaxActive, cfg.MaxOpen = 5, 3
		d, err := New(cfg)
		if err != nil {
			return false
		}
		var at sim.Time
		for _, op := range ops {
			z := int(op) % d.NumZones()
			switch op % 5 {
			case 0:
				d.Open(at, z)
			case 1:
				d.Close(at, z)
			case 2:
				d.Finish(at, z)
			case 3:
				if done, err := d.Reset(at, z); err == nil {
					at = done
				}
			case 4:
				if _, done, err := d.Append(at, z, nil); err == nil {
					at = done
				}
			}
			open, closed := 0, 0
			for i := 0; i < d.NumZones(); i++ {
				switch d.State(i) {
				case Open:
					open++
				case Closed:
					closed++
				}
			}
			if d.OpenZones() != open || d.ActiveZones() != open+closed {
				return false
			}
			if d.OpenZones() > cfg.MaxOpen || d.ActiveZones() > cfg.MaxActive {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: flash programs never exceed (erases+1) * pages per block, and
// the ZNS device's counters never drift from the chip's.
func TestCounterConsistencyProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		cfg := testCfg()
		cfg.MaxActive, cfg.MaxOpen = 0, 0
		d, err := New(cfg)
		if err != nil {
			return false
		}
		var at sim.Time
		for _, op := range ops {
			z := int(op) % d.NumZones()
			if op%7 == 0 {
				if done, err := d.Reset(at, z); err == nil {
					at = done
				}
				continue
			}
			if _, done, err := d.Append(at, z, nil); err == nil {
				at = done
			}
		}
		c := d.Counters()
		chip := d.Flash().Counts()
		return c.FlashProgramPages == chip.Programs && c.BlockErases <= chip.Erases
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
