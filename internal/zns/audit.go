// Zone state-machine auditor: an allocation-free shadow of the ZNS-spec
// zone state machine. Every state change routed through (*Device).transition
// is validated against the spec's legal-transition table, and the auditor
// maintains its own derived active/open counts so a bookkeeping bug in the
// device cannot hide itself. zns-tools-style conformance checking, run
// in-process at simulation speed.

package zns

import (
	"fmt"

	"blockhead/internal/sim"
	"blockhead/internal/telemetry"
)

// legalTransitions is the ZNS-spec zone state machine, with implicitly and
// explicitly opened states merged into Open (this model does not distinguish
// them). Rows are the source state, columns the target.
var legalTransitions [numZoneStates][numZoneStates]bool

// transPair holds preallocated "from->to" labels so recording a transition
// in the flight recorder never allocates.
var transPair [numZoneStates][numZoneStates]string

func init() {
	allow := func(from ZoneState, tos ...ZoneState) {
		for _, to := range tos {
			legalTransitions[from][to] = true
		}
	}
	allow(Empty, Open, Full, Offline)
	allow(Open, Closed, Full, Empty, ReadOnly, Offline)
	allow(Closed, Open, Full, Empty, ReadOnly, Offline)
	allow(Full, Empty, ReadOnly, Offline)
	allow(ReadOnly, Offline)
	// ReadOnly is entered only from states that can hold readable data
	// (Open/Closed/Full): a media failure in an Empty zone has nothing to
	// preserve and takes the zone straight Offline. ReadOnly's only exit is
	// Offline, and Offline is terminal — a zone that grew a bad stripe
	// block never returns to service, which is exactly the stranded-capacity
	// cost the fault campaign (E13) measures.

	for f := 0; f < numZoneStates; f++ {
		for t := 0; t < numZoneStates; t++ {
			transPair[f][t] = ZoneState(f).String() + "->" + ZoneState(t).String()
		}
	}
}

// AuditKind classifies one auditor violation.
type AuditKind int

const (
	// AuditIllegalTransition is a state change the ZNS spec does not allow.
	AuditIllegalTransition AuditKind = iota
	// AuditStateMismatch means the device's zone state diverged from the
	// auditor's mirror — a state change bypassed transition.
	AuditStateMismatch
	// AuditActiveLimit means open+closed zones exceeded MaxActive.
	AuditActiveLimit
	// AuditOpenLimit means open zones exceeded MaxOpen.
	AuditOpenLimit

	numAuditKinds = int(AuditOpenLimit) + 1
)

var auditKindNames = [numAuditKinds]string{
	"illegal_transition", "state_mismatch", "active_limit", "open_limit",
}

// String returns the kind's stable name.
func (k AuditKind) String() string {
	if int(k) >= numAuditKinds {
		return "unknown"
	}
	return auditKindNames[k]
}

// Auditor shadows a Device's zone state machine. It observes every
// transition (allocation-free), counts violations by kind, and maintains
// independently derived active/open-zone counts checked against the
// configured limits on every observation and against the device's own
// bookkeeping by Check. The nil *Auditor no-ops.
//
// Violations feed the device's flight recorder (when a probe is attached),
// so the first illegal transition dumps the recent event history.
//
//simlint:nilsafe
type Auditor struct {
	d      *Device
	mirror []ZoneState
	active int
	open   int

	violations uint64
	byKind     [numAuditKinds]uint64
}

// AttachAuditor attaches a fresh auditor to the device, seeded from the
// current zone states. All subsequent transitions are validated.
func (d *Device) AttachAuditor() *Auditor {
	a := &Auditor{d: d, mirror: make([]ZoneState, len(d.zones))}
	for z := range d.zones {
		s := d.zones[z].state
		a.mirror[z] = s
		switch s {
		case Open:
			a.open++
			a.active++
		case Closed:
			a.active++
		case Empty, Full, ReadOnly, Offline:
			// Not active: holds no open/active resources.
		}
	}
	d.audit = a
	return a
}

// observe validates one transition. Called from (*Device).transition with
// from != to; allocation-free on the no-violation path.
func (a *Auditor) observe(at sim.Time, z int, from, to ZoneState) {
	if a == nil {
		return
	}
	if a.mirror[z] != from {
		a.flag(at, z, AuditStateMismatch, transPair[a.mirror[z]][from])
		a.uncount(a.mirror[z])
		a.count(from)
	}
	if !legalTransitions[from][to] {
		a.flag(at, z, AuditIllegalTransition, transPair[from][to])
	}
	a.uncount(from)
	a.count(to)
	a.mirror[z] = to
	if m := a.d.cfg.MaxActive; m != 0 && a.active > m {
		a.flag(at, z, AuditActiveLimit, auditKindNames[AuditActiveLimit])
	}
	if m := a.d.cfg.MaxOpen; m != 0 && a.open > m {
		a.flag(at, z, AuditOpenLimit, auditKindNames[AuditOpenLimit])
	}
}

func (a *Auditor) count(s ZoneState) {
	switch s {
	case Open:
		a.open++
		a.active++
	case Closed:
		a.active++
	case Empty, Full, ReadOnly, Offline:
		// Not active: holds no open/active resources.
	}
}

func (a *Auditor) uncount(s ZoneState) {
	switch s {
	case Open:
		a.open--
		a.active--
	case Closed:
		a.active--
	case Empty, Full, ReadOnly, Offline:
		// Not active: held no open/active resources.
	}
}

func (a *Auditor) flag(at sim.Time, z int, kind AuditKind, detail string) {
	a.violations++
	a.byKind[kind]++
	a.d.fl.Violation(at, telemetry.FlightAuditViolation, int32(z), detail, int64(kind))
	// Mark the measured IO whose state change tripped the auditor, so the
	// exemplar reservoir always keeps it for forensics (no-op when no
	// record is open — e.g. prefill or maintenance transitions).
	a.d.attr.FlagIO(telemetry.FlagAuditViolation)
}

// Violations reports the total violation count; nil-safe.
func (a *Auditor) Violations() uint64 {
	if a == nil {
		return 0
	}
	return a.violations
}

// ViolationsByKind reports the violation count of one kind; nil-safe.
func (a *Auditor) ViolationsByKind(k AuditKind) uint64 {
	if a == nil {
		return 0
	}
	return a.byKind[k]
}

// Check does a full consistency pass at a quiescent point: the mirror must
// match every zone's state, the incrementally derived active/open counts
// must match both a fresh census and the device's own bookkeeping, and the
// configured limits must hold. Nil-safe (no auditor, nothing to check).
func (a *Auditor) Check() error {
	if a == nil {
		return nil
	}
	d := a.d
	active, open := 0, 0
	for z := range d.zones {
		s := d.zones[z].state
		if a.mirror[z] != s {
			return fmt.Errorf("zns audit: zone %d is %v but mirror says %v", z, s, a.mirror[z])
		}
		switch s {
		case Open:
			open++
			active++
		case Closed:
			active++
		case Empty, Full, ReadOnly, Offline:
			// Not active: contributes to neither census.
		}
	}
	if active != d.active || open != d.open {
		return fmt.Errorf("zns audit: census active/open %d/%d, device bookkeeping %d/%d",
			active, open, d.active, d.open)
	}
	if a.active != active || a.open != open {
		return fmt.Errorf("zns audit: incremental active/open %d/%d, census %d/%d",
			a.active, a.open, active, open)
	}
	if m := d.cfg.MaxActive; m != 0 && active > m {
		return fmt.Errorf("zns audit: %d active zones exceed MaxActive %d", active, m)
	}
	if m := d.cfg.MaxOpen; m != 0 && open > m {
		return fmt.Errorf("zns audit: %d open zones exceed MaxOpen %d", open, m)
	}
	return nil
}

// StateCounts is a census of zones by state, indexed by ZoneState.
type StateCounts [numZoneStates]int

// String formats the census as "empty=N open=N ... offline=N".
func (c StateCounts) String() string {
	s := ""
	for i, n := range c {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s=%d", ZoneState(i), n)
	}
	return s
}

// StateCensus counts the device's zones by state.
func (d *Device) StateCensus() StateCounts {
	var c StateCounts
	for z := range d.zones {
		c[d.zones[z].state]++
	}
	return c
}

// heatSection is the ZNS device's heatmap source: one snapshot per zone.
// The raw device does not track host-level page liveness, so Valid is -1;
// the host FTL's own section carries true valid fractions.
func (d *Device) heatSection(sim.Time) telemetry.DeviceHeat {
	zones := make([]telemetry.ZoneHeat, len(d.zones))
	for z := range d.zones {
		zn := &d.zones[z]
		zones[z] = telemetry.ZoneHeat{
			Zone: z, State: zn.state.String(), WP: zn.wp, Cap: zn.cap, Valid: -1,
		}
	}
	return telemetry.DeviceHeat{Zones: zones}
}
