// Package zns implements a Zoned Namespaces SSD as the paper describes it
// (§2.1, "Zoned Namespaces SSDs"): the address space is partitioned into
// zones that behave like erasure blocks — writable only sequentially at a
// per-zone write pointer, erased wholesale by a zone reset. Zones move
// through six states (empty, open, closed, full, read-only, offline), only a
// limited number may be active at once, and flash cell failures are handled
// by shrinking a zone after reset or taking it offline.
//
// The device-side FTL is deliberately thin: it maps zones to erasure blocks
// (coarse-grained translation, needing ~4 bytes of DRAM per block instead of
// per page, §2.2) and does no garbage collection — reclamation is the
// host's job, which is precisely the paper's point.
//
// Two commands beyond classic zoned writes are modeled because the paper
// leans on them:
//
//   - Zone append (§4.2): the device serializes concurrent appends to one
//     zone, eliminating host-side write-pointer lock contention.
//   - Simple copy (§2.3): controller-managed copy of valid data into a
//     destination zone without consuming PCIe bandwidth.
package zns

import (
	"errors"
	"fmt"

	"blockhead/internal/fault"
	"blockhead/internal/flash"
	"blockhead/internal/sim"
	"blockhead/internal/stats"
	"blockhead/internal/telemetry"
)

// ZoneState is the state machine from the ZNS specification (§2.1).
type ZoneState int

const (
	Empty  ZoneState = iota
	Open             // implicitly or explicitly opened; consumes open + active resources
	Closed           // writable after reopen; consumes active resources only
	Full
	ReadOnly
	Offline
)

// String implements fmt.Stringer.
func (s ZoneState) String() string {
	switch s {
	case Empty:
		return "empty"
	case Open:
		return "open"
	case Closed:
		return "closed"
	case Full:
		return "full"
	case ReadOnly:
		return "read-only"
	case Offline:
		return "offline"
	default:
		return fmt.Sprintf("ZoneState(%d)", int(s))
	}
}

// Errors returned by the device.
var (
	ErrTooManyActive = errors.New("zns: active zone limit reached")
	ErrTooManyOpen   = errors.New("zns: open zone limit reached")
	ErrNotWritePtr   = errors.New("zns: write LBA does not match the zone write pointer")
	ErrZoneFull      = errors.New("zns: zone is full")
	ErrBadState      = errors.New("zns: operation invalid in current zone state")
	ErrUnwritten     = errors.New("zns: read beyond the write pointer")
	ErrOutOfRange    = errors.New("zns: address out of range")
	ErrOffline       = errors.New("zns: zone is offline")
	// ErrZoneReadOnly reports that a media failure transitioned the zone to
	// ReadOnly mid-command: data below the write pointer stays readable, but
	// the host must re-place the failed write — and, eventually, the zone's
	// live data — elsewhere (§2.1's cell-failure handling).
	ErrZoneReadOnly = errors.New("zns: zone is read-only")
)

// Config parameterizes the device.
type Config struct {
	Geom flash.Geometry
	Lat  flash.Latencies

	// ZoneBlocks is the number of erasure blocks striped into one zone.
	// Blocks are interleaved across LUNs, so a zone with ZoneBlocks = W has
	// W-way internal write parallelism. Zones are "at least as large as
	// erasure blocks" (§2.1); default 4.
	ZoneBlocks int

	// MaxActive bounds open+closed zones, the scarce per-zone write-buffer
	// resource §2.1 describes (the paper's example device supports 14).
	// 0 = unlimited.
	MaxActive int

	// MaxOpen bounds open zones; 0 = same as MaxActive.
	MaxOpen int

	// StoreData keeps written payloads so reads can return them.
	StoreData bool

	// Endurance is the per-block erase budget; 0 = unlimited. Worn-out
	// blocks shrink their zone at the next reset (§2.1).
	Endurance uint32

	// Recovery arms crash recovery: the chip keeps out-of-band page stamps
	// and per-page durability clocks so Recover can rediscover write
	// pointers after a power loss. Costs O(total pages) of flash-side
	// bookkeeping; leave off for pure performance runs.
	Recovery bool

	// ScaleWPSerial arms the write-pointer early-ack counterfactual: the
	// host observes only WPSerialScale of each write's serialization
	// behind the same block's previous program (0 = serialization-free,
	// as if the device buffered appends; 1 = unchanged). The flash
	// schedule itself is untouched — cells stay busy to their real
	// completion — only the host-visible ack moves earlier, which is the
	// ground truth the critpath what-if engine's "wp_serial removed"
	// prediction is validated against. Deliberately independent of
	// telemetry: the cut is computed from device state alone, so a run
	// produces identical timings with or without a probe attached.
	ScaleWPSerial bool
	WPSerialScale float64
}

type zone struct {
	state  ZoneState
	blocks []int // stripe of erasure blocks; shrinks as blocks wear out
	wp     int64 // pages written, in [0, cap]
	cap    int64 // writable capacity in pages (shrinks with lost blocks)
}

// Device is a ZNS SSD.
type Device struct {
	cfg       Config
	chip      *flash.Device
	zones     []zone
	zonePages int64 // nominal zone size (fixed LBA stride)

	active int
	open   int

	data map[int64][]byte // lba -> payload

	counters stats.Counters
	resets   uint64
	appends  uint64

	// audit, when attached, shadows the zone state machine and validates
	// every transition (audit.go). Nil (no-op) without AttachAuditor.
	audit *Auditor

	// Telemetry handles; all nil (zero-cost no-ops) without SetProbe.
	reg     *telemetry.Registry
	tr      *telemetry.Tracer
	attr    *telemetry.AttrSink
	fl      *telemetry.Flight
	mTrans  [numZoneStates]*telemetry.Counter
	mResets *telemetry.Counter
	mAppend *telemetry.Counter

	// blockDone records, per flash block, when its last program completed —
	// the reference point for classifying LUN wait as write-pointer
	// serialization (waiting behind this zone's own previous program) versus
	// cross-traffic die contention. Allocated lazily by SetProbe.
	blockDone []sim.Time

	// writtenBy counts, per zone, how many programs each tenant issued since
	// the zone's last reset. A Reset's erase cost is blamed on the dominant
	// writer — whoever filled the zone caused the need to wipe it. Allocated
	// lazily by SetProbe alongside blockDone.
	writtenBy [][telemetry.MaxTenants]int32

	// wpDone is blockDone's telemetry-free twin, allocated by New only when
	// ScaleWPSerial is armed: the early-ack cut must not depend on whether
	// a probe is attached, so it keeps its own per-block completion clock.
	wpDone []sim.Time
}

// numZoneStates sizes the per-target-state transition counter array.
const numZoneStates = int(Offline) + 1

// transNames are precomputed so recording a transition never allocates.
var transNames = [numZoneStates]string{
	"->empty", "->open", "->closed", "->full", "->read-only", "->offline",
}

// New builds a device. ZoneBlocks defaults to 4; MaxOpen defaults to
// MaxActive.
func New(cfg Config) (*Device, error) {
	if err := cfg.Geom.Validate(); err != nil {
		return nil, err
	}
	if cfg.ZoneBlocks == 0 {
		cfg.ZoneBlocks = 4
	}
	if cfg.ZoneBlocks < 1 || cfg.ZoneBlocks > cfg.Geom.TotalBlocks() {
		return nil, fmt.Errorf("zns: ZoneBlocks %d out of range", cfg.ZoneBlocks)
	}
	if cfg.MaxOpen == 0 {
		cfg.MaxOpen = cfg.MaxActive
	}
	if cfg.MaxActive != 0 && cfg.MaxOpen > cfg.MaxActive {
		return nil, fmt.Errorf("zns: MaxOpen %d exceeds MaxActive %d", cfg.MaxOpen, cfg.MaxActive)
	}
	nz := cfg.Geom.TotalBlocks() / cfg.ZoneBlocks
	if nz == 0 {
		return nil, fmt.Errorf("zns: geometry too small for %d-block zones", cfg.ZoneBlocks)
	}
	chip := flash.New(cfg.Geom, cfg.Lat)
	chip.Endurance = cfg.Endurance
	if cfg.Recovery {
		chip.EnableRecovery()
	}

	d := &Device{
		cfg:       cfg,
		chip:      chip,
		zones:     make([]zone, nz),
		zonePages: int64(cfg.ZoneBlocks) * int64(cfg.Geom.PagesPerBlock),
	}
	for z := range d.zones {
		blocks := make([]int, cfg.ZoneBlocks)
		for i := range blocks {
			blocks[i] = z*cfg.ZoneBlocks + i
		}
		d.zones[z] = zone{state: Empty, blocks: blocks, cap: d.zonePages}
	}
	if cfg.StoreData {
		d.data = make(map[int64][]byte)
	}
	if cfg.ScaleWPSerial {
		if cfg.WPSerialScale < 0 || cfg.WPSerialScale > 1 {
			return nil, fmt.Errorf("zns: WPSerialScale %v out of [0,1]", cfg.WPSerialScale)
		}
		if cfg.WPSerialScale != 1 {
			d.wpDone = make([]sim.Time, cfg.Geom.TotalBlocks())
		}
	}
	return d, nil
}

// SetProbe attaches telemetry to the device and its flash chip: zone
// state-transition counters (one per target state), active/open-zone
// gauges, reset/append counters, and per-zone trace tracks carrying write,
// append, reset, and state-transition events. Attach before driving I/O.
func (d *Device) SetProbe(p *telemetry.Probe) {
	d.chip.SetProbe(p)
	reg := p.Registry()
	d.reg = reg
	d.tr = p.Tracer()
	d.attr = p.Attribution()
	if d.attr != nil && d.blockDone == nil {
		d.blockDone = make([]sim.Time, d.cfg.Geom.TotalBlocks())
		d.writtenBy = make([][telemetry.MaxTenants]int32, len(d.zones))
	}
	for s := range d.mTrans {
		d.mTrans[s] = reg.Counter("zns/zone/state_transitions{to=" + ZoneState(s).String() + "}")
	}
	d.mResets = reg.Counter("zns/zone/resets")
	d.mAppend = reg.Counter("zns/zone/appends")
	d.tr.NameProcess(telemetry.ProcZone, "zns zones")
	for z := range d.zones {
		d.tr.NameTrack(telemetry.ProcZone, int32(z), fmt.Sprintf("zone %d", z))
	}
	reg.Gauge("zns/active_zones", func(sim.Time) float64 { return float64(d.active) })
	reg.Gauge("zns/open_zones", func(sim.Time) float64 { return float64(d.open) })
	reg.Gauge("zns/write_amp", func(sim.Time) float64 { return d.counters.WriteAmp() })
	reg.Gauge("zns/audit/violations", func(sim.Time) float64 { return float64(d.audit.Violations()) })
	d.fl = p.Flight()
	p.Heat().Register("zns", d.heatSection)
}

// transition moves a zone to a new state, recording the telemetry event.
// All zone state changes must route through here so the transition counters,
// the per-zone trace track, the flight recorder, and the state-machine
// auditor stay complete.
func (d *Device) transition(at sim.Time, z int, to ZoneState) {
	zn := &d.zones[z]
	from := zn.state
	if from == to {
		return
	}
	zn.state = to
	d.audit.observe(at, z, from, to)
	d.fl.Record(at, telemetry.FlightTransition, int32(z), transPair[from][to], zn.wp)
	d.mTrans[to].Inc()
	d.tr.Instant(telemetry.ProcZone, int32(z), "zns", transNames[to], at)
}

// NumZones reports the number of zones.
func (d *Device) NumZones() int { return len(d.zones) }

// ZonePages reports the nominal zone size in pages (the LBA stride between
// zone starts). Individual zones may have a smaller writable capacity after
// cell failures; see WritableCap.
func (d *Device) ZonePages() int64 { return d.zonePages }

// PageSize reports the page size in bytes.
func (d *Device) PageSize() int { return d.cfg.Geom.PageSize }

// MaxActive reports the active-zone limit (0 = unlimited).
func (d *Device) MaxActive() int { return d.cfg.MaxActive }

// MaxOpen reports the open-zone limit (0 = unlimited).
func (d *Device) MaxOpen() int { return d.cfg.MaxOpen }

// ActiveZones reports the current number of open+closed zones.
func (d *Device) ActiveZones() int { return d.active }

// OpenZones reports the current number of open zones.
func (d *Device) OpenZones() int { return d.open }

// State reports a zone's state.
func (d *Device) State(z int) ZoneState { return d.zones[z].state }

// WP reports a zone's write pointer as a zone-relative page offset.
func (d *Device) WP(z int) int64 { return d.zones[z].wp }

// WritableCap reports a zone's current writable capacity in pages.
func (d *Device) WritableCap(z int) int64 { return d.zones[z].cap }

// Counters returns the accounting counters.
func (d *Device) Counters() *stats.Counters { return &d.counters }

// Resets reports how many zone resets have completed.
func (d *Device) Resets() uint64 { return d.resets }

// Appends reports how many zone-append commands have completed.
func (d *Device) Appends() uint64 { return d.appends }

// Flash exposes the underlying chip for wear inspection.
func (d *Device) Flash() *flash.Device { return d.chip }

// SetInjector attaches a fault injector to the underlying chip. Attach
// before driving I/O; nil detaches.
func (d *Device) SetInjector(inj *fault.Injector) { d.chip.SetInjector(inj) }

// StampOOB records host metadata (a logical page number and a write
// sequence number) into the out-of-band area of the physical page backing
// lba. The host FTL stamps every append so its mapping table can be rebuilt
// after a crash. Requires Config.Recovery; the page must be written.
func (d *Device) StampOOB(lba int64, lpn int64, seq uint64) {
	z, offset := d.ZoneOf(lba)
	block, page := d.addr(z, offset)
	d.chip.StampOOB(block, page, lpn, seq)
}

// OOB peeks at the out-of-band stamp of the page backing lba without a
// timed read — for callers that already hold the page's data (relocation
// re-stamping, newest-wins comparisons during recovery).
func (d *Device) OOB(lba int64) (lpn int64, seq uint64) {
	z, offset := d.ZoneOf(lba)
	block, page := d.addr(z, offset)
	return d.chip.OOB(block, page)
}

// ReadMeta reads the page at lba and returns its out-of-band stamp along
// with the timed read. Recovery scans and the integrity oracle use it; the
// stamp is (-1, 0) for pages never stamped. Requires Config.Recovery.
func (d *Device) ReadMeta(at sim.Time, lba int64) (done sim.Time, lpn int64, seq uint64, err error) {
	done, _, err = d.Read(at, lba)
	if err != nil {
		return done, -1, 0, err
	}
	z, offset := d.ZoneOf(lba)
	block, page := d.addr(z, offset)
	lpn, seq = d.chip.OOB(block, page)
	return done, lpn, seq, nil
}

// LBA composes a global LBA from zone and zone-relative offset.
func (d *Device) LBA(z int, offset int64) int64 { return int64(z)*d.zonePages + offset }

// ZoneOf decomposes a global LBA.
func (d *Device) ZoneOf(lba int64) (z int, offset int64) {
	return int(lba / d.zonePages), lba % d.zonePages
}

// DRAMFootprintBytes reports the on-board DRAM of the thin zone FTL:
// 4 bytes per erasure block for the zone-to-block map (§2.2's estimate)
// plus 16 bytes of state per zone.
func (d *Device) DRAMFootprintBytes() int64 {
	return 4*int64(d.cfg.Geom.TotalBlocks()) + 16*int64(len(d.zones))
}

// addr maps a zone-relative page offset to flash. Offsets stripe round-robin
// across the zone's blocks, so sequential zone writes exploit the stripe's
// LUN parallelism while each block is still programmed sequentially.
func (d *Device) addr(z int, offset int64) (block, page int) {
	zn := &d.zones[z]
	w := int64(len(zn.blocks))
	return zn.blocks[offset%w], int(offset / w)
}

// checkZone validates a zone index.
func (d *Device) checkZone(z int) error {
	if z < 0 || z >= len(d.zones) {
		return ErrOutOfRange
	}
	return nil
}

// activate transitions a zone toward Open, enforcing the open/active limits.
func (d *Device) activate(at sim.Time, z int) error {
	zn := &d.zones[z]
	switch zn.state {
	case Open:
		return nil
	case Closed:
		if d.cfg.MaxOpen != 0 && d.open >= d.cfg.MaxOpen {
			return ErrTooManyOpen
		}
		d.open++
		d.transition(at, z, Open)
		return nil
	case Empty:
		if d.cfg.MaxActive != 0 && d.active >= d.cfg.MaxActive {
			return ErrTooManyActive
		}
		if d.cfg.MaxOpen != 0 && d.open >= d.cfg.MaxOpen {
			return ErrTooManyOpen
		}
		d.active++
		d.open++
		d.transition(at, z, Open)
		return nil
	case Offline:
		return ErrOffline
	default:
		return ErrBadState
	}
}

// deactivate releases resources when a zone leaves Open/Closed.
func (d *Device) release(zn *zone) {
	switch zn.state {
	case Open:
		d.open--
		d.active--
	case Closed:
		d.active--
	case Empty, Full, ReadOnly, Offline:
		// Not active: nothing to release.
	}
}

// Open explicitly opens a zone.
func (d *Device) Open(at sim.Time, z int) error {
	if err := d.checkZone(z); err != nil {
		return err
	}
	return d.activate(at, z)
}

// Close transitions an open zone to Closed, releasing its open-zone slot
// but keeping its active (write-buffer) resources.
func (d *Device) Close(at sim.Time, z int) error {
	if err := d.checkZone(z); err != nil {
		return err
	}
	zn := &d.zones[z]
	if zn.state != Open {
		return ErrBadState
	}
	d.transition(at, z, Closed)
	d.open--
	return nil
}

// Finish moves the write pointer to the end of the zone and marks it Full,
// releasing all its active resources. No flash work is modeled (real
// devices may pad the remainder; we track only the state change).
func (d *Device) Finish(at sim.Time, z int) error {
	if err := d.checkZone(z); err != nil {
		return err
	}
	zn := &d.zones[z]
	switch zn.state {
	case Open, Closed, Empty:
		if zn.state == Empty {
			// Finishing an empty zone is legal per spec; it becomes Full
			// without ever consuming active resources.
			d.transition(at, z, Full)
			zn.wp = zn.cap
			return nil
		}
		d.release(zn)
		d.transition(at, z, Full)
		zn.wp = zn.cap
		return nil
	default:
		return ErrBadState
	}
}

// Reset erases the zone's blocks and returns it to Empty. Blocks that
// exceed their erase endurance are dropped from the stripe, shrinking the
// zone's writable capacity (§2.1); if no blocks survive, the zone goes
// Offline. Erases on distinct LUNs proceed in parallel.
func (d *Device) Reset(at sim.Time, z int) (sim.Time, error) {
	if err := d.checkZone(z); err != nil {
		return at, err
	}
	zn := &d.zones[z]
	switch zn.state {
	case Offline:
		return at, ErrOffline
	case ReadOnly:
		return at, ErrBadState
	case Empty, Open, Closed, Full:
		// Resettable (§2.1: reset is legal from any non-degraded state).
	}
	d.release(zn)

	// The zone's erase cost is blamed on whoever filled it: the dominant
	// writer since the last reset. Its worker identity also owns the
	// stripe-erase LUN occupancy, so later arrivals' waits blame it too.
	culprit := d.dominantWriter(z)

	// The stripe's erases run in parallel across LUNs: suspend per-erase
	// attribution and charge the reset's wall-clock time as one phase.
	d.attr.PushWorker(culprit)
	d.attr.Suspend()
	done := at
	survivors := zn.blocks[:0]
	for _, b := range zn.blocks {
		if d.chip.WrittenPages(b) == 0 && !d.chip.IsBad(b) {
			survivors = append(survivors, b)
			continue // never programmed since last erase; nothing to do
		}
		eDone, err := d.chip.EraseBlock(at, b)
		if err != nil {
			continue // worn out: drop from the stripe
		}
		d.counters.BlockErases++
		survivors = append(survivors, b)
		if eDone > done {
			done = eDone
		}
	}
	d.attr.Resume()
	d.attr.PopWorker()
	d.attr.ChargeBlamed(telemetry.PhaseZoneReset, done-at, culprit)
	if d.writtenBy != nil {
		d.writtenBy[z] = [telemetry.MaxTenants]int32{}
	}
	zn.blocks = survivors
	if d.data != nil {
		base := d.LBA(z, 0)
		for o := int64(0); o < zn.wp; o++ {
			delete(d.data, base+o)
		}
	}
	zn.wp = 0
	zn.cap = int64(len(zn.blocks)) * int64(d.cfg.Geom.PagesPerBlock)
	if len(zn.blocks) == 0 {
		d.transition(at, z, Offline)
		return done, nil
	}
	d.tr.SpanArg(telemetry.ProcZone, int32(z), "zns", "reset", at, done, "blocks", int64(len(zn.blocks)))
	d.transition(at, z, Empty)
	d.fl.Record(at, telemetry.FlightReset, int32(z), "", int64(len(zn.blocks)))
	d.resets++
	d.mResets.Inc()
	return done, nil
}

// clampOwner maps a worker identity into the blame-table range.
func clampOwner(t telemetry.TenantID) telemetry.TenantID {
	if t < 0 || t >= telemetry.MaxTenants {
		return 0
	}
	return t
}

// dominantWriter returns the tenant with the most programs into zone z
// since its last reset (ties break toward the lower ID), or SelfTenant
// when nothing was recorded — the reset then self-blames.
func (d *Device) dominantWriter(z int) telemetry.TenantID {
	if d.writtenBy == nil {
		return telemetry.SelfTenant
	}
	best, bestN := telemetry.SelfTenant, int32(0)
	for t, n := range d.writtenBy[z] {
		if n > bestN {
			best, bestN = telemetry.TenantID(t), n
		}
	}
	return best
}

// write programs one page at the zone's write pointer.
func (d *Device) write(at sim.Time, z int, data []byte) (lba int64, done sim.Time, err error) {
	zn := &d.zones[z]
	if zn.wp >= zn.cap {
		return 0, at, ErrZoneFull
	}
	if err := d.activate(at, z); err != nil {
		return 0, at, err
	}
	d.reg.Tick(at)
	offset := zn.wp
	block, page := d.addr(z, offset)
	lunWait0 := d.attr.Value(telemetry.PhaseLUNWait)
	done, err = d.chip.ProgramPage(at, block, page)
	if err == flash.ErrProgramFailed {
		// A grown-bad block retired one of the zone's stripes mid-write.
		// Per the spec state machine the zone goes ReadOnly: everything
		// below the write pointer stays readable, nothing more is accepted,
		// and the host must re-place both this write and the zone's live
		// data (§2.1's cell-failure handling).
		d.release(zn)
		d.transition(at, z, ReadOnly)
		return 0, done, ErrZoneReadOnly
	}
	if err != nil {
		return 0, at, err
	}
	if d.blockDone != nil {
		// The part of the LUN wait spent behind this block's own previous
		// program is write-pointer serialization (the per-zone sequential
		// write pipeline), not cross-traffic contention: relabel it, capped
		// at what the chip actually charged.
		if serial := d.blockDone[block] - at; serial > 0 {
			if w := d.attr.Value(telemetry.PhaseLUNWait) - lunWait0; serial > w {
				serial = w
			}
			d.attr.Reclassify(telemetry.PhaseLUNWait, telemetry.PhaseWPSerial, serial)
		}
		d.blockDone[block] = done
	}
	if d.writtenBy != nil {
		d.writtenBy[z][clampOwner(d.attr.Worker())]++
	}
	if d.wpDone != nil {
		// Early-ack counterfactual (ScaleWPSerial): the host sees only
		// WPSerialScale of the wait behind this block's previous program.
		// The cut is bounded by the op's total queueing delay (everything
		// except the transfer and the program itself) and computed purely
		// from device state — no telemetry reads — so timing is identical
		// with and without a probe. The flash schedule keeps the real
		// completion; only the returned ack moves.
		realDone := done
		if serial := d.wpDone[block] - at; serial > 0 {
			if wait := realDone - at - d.cfg.Lat.XferPage - d.cfg.Lat.ProgramPage; serial > wait {
				serial = wait
			}
			if cut := serial - sim.Time(float64(serial)*d.cfg.WPSerialScale); cut > 0 {
				// Keep attribution in step with the earlier host-visible
				// completion: remove the same ticks from the record,
				// serialization first, then the waits it was carved from.
				rem := cut
				rem -= d.attr.Refund(telemetry.PhaseWPSerial, rem)
				if rem > 0 {
					rem -= d.attr.Refund(telemetry.PhaseLUNWait, rem)
				}
				if rem > 0 {
					d.attr.Refund(telemetry.PhaseChanWait, rem)
				}
				done = realDone - cut
			}
		}
		d.wpDone[block] = realDone
	}
	d.tr.Span(telemetry.ProcZone, int32(z), "zns", "write", at, done)
	zn.wp++
	if zn.wp == zn.cap {
		d.release(zn)
		d.transition(at, z, Full)
	}
	lba = d.LBA(z, offset)
	if d.data != nil && data != nil {
		d.data[lba] = data
	}
	d.counters.HostWritePages++
	d.counters.FlashProgramPages++
	d.counters.PCIeBytes += uint64(d.cfg.Geom.PageSize)
	return lba, done, nil
}

// Write writes one page at lba, which must equal the zone's write pointer —
// the spec rule that forces multi-writer hosts to serialize (§4.2). data
// may be nil for timing-only use.
func (d *Device) Write(at sim.Time, lba int64, data []byte) (sim.Time, error) {
	if lba < 0 || lba >= int64(len(d.zones))*d.zonePages {
		return at, ErrOutOfRange
	}
	z, offset := d.ZoneOf(lba)
	if offset != d.zones[z].wp {
		// The §4.2 contention signal: a host writer lost the race for the
		// write pointer and must retry — exactly the serialization cost zone
		// append eliminates.
		d.reg.Counter("zns/write/wp_conflicts").Inc()
		d.tr.Instant(telemetry.ProcZone, int32(z), "zns", "wp_conflict", at)
		d.fl.Record(at, telemetry.FlightWPConflict, int32(z), "", offset)
		return at, ErrNotWritePtr
	}
	_, done, err := d.write(at, z, data)
	return done, err
}

// Append writes one page at the zone's current write pointer, wherever that
// is, and returns the assigned LBA. The device serializes concurrent
// appends (§4.2's fix for write-pointer lock contention), so callers need
// no coordination.
func (d *Device) Append(at sim.Time, z int, data []byte) (lba int64, done sim.Time, err error) {
	if err := d.checkZone(z); err != nil {
		return 0, at, err
	}
	lba, done, err = d.write(at, z, data)
	if err == nil {
		d.appends++
		d.mAppend.Inc()
	}
	return lba, done, err
}

// Read reads one page at lba, which must be below the zone's write pointer.
func (d *Device) Read(at sim.Time, lba int64) (done sim.Time, data []byte, err error) {
	if lba < 0 || lba >= int64(len(d.zones))*d.zonePages {
		return at, nil, ErrOutOfRange
	}
	z, offset := d.ZoneOf(lba)
	zn := &d.zones[z]
	if zn.state == Offline {
		return at, nil, ErrOffline
	}
	if offset >= zn.wp {
		return at, nil, ErrUnwritten
	}
	d.reg.Tick(at)
	block, page := d.addr(z, offset)
	done, err = d.chip.ReadPage(at, block, page)
	if err != nil {
		return at, nil, err
	}
	d.counters.HostReadPages++
	d.counters.FlashReadPages++
	d.counters.PCIeBytes += uint64(d.cfg.Geom.PageSize)
	if d.data != nil {
		data = d.data[lba]
	}
	return done, data, nil
}

// SimpleCopy copies the pages at srcLBAs to the write pointer of dstZone
// entirely inside the device (§2.3): flash reads and programs happen, data
// crosses the channel buses, but no bytes cross the host interface. It
// returns the first destination LBA.
func (d *Device) SimpleCopy(at sim.Time, srcLBAs []int64, dstZone int) (firstLBA int64, done sim.Time, err error) {
	if err := d.checkZone(dstZone); err != nil {
		return 0, at, err
	}
	zn := &d.zones[dstZone]
	if zn.cap-zn.wp < int64(len(srcLBAs)) {
		return 0, at, ErrZoneFull
	}
	d.reg.Tick(at)
	// Copies are issued concurrently (they serialize only through the flash
	// resources): suspend per-page attribution and charge wall-clock once.
	d.attr.Suspend()
	done = at
	firstLBA = -1
	for _, src := range srcLBAs {
		if src < 0 || src >= int64(len(d.zones))*d.zonePages {
			d.attr.Resume()
			return 0, at, ErrOutOfRange
		}
		sz, so := d.ZoneOf(src)
		if so >= d.zones[sz].wp {
			d.attr.Resume()
			return 0, at, ErrUnwritten
		}
		if err := d.activate(at, dstZone); err != nil {
			d.attr.Resume()
			return 0, at, err
		}
		sb, sp := d.addr(sz, so)
		db, dp := d.addr(dstZone, zn.wp)
		cDone, cErr := d.chip.CopyPage(at, sb, sp, db, dp)
		if cErr == flash.ErrProgramFailed {
			// The destination stripe grew a bad block: the destination zone
			// goes ReadOnly and the caller must restart the copy into a
			// different zone. Pages already copied stay below the write
			// pointer (readable, but unmapped by the host — dead on arrival).
			d.release(zn)
			d.transition(at, dstZone, ReadOnly)
			d.attr.Resume()
			return 0, cDone, ErrZoneReadOnly
		}
		if cErr != nil {
			d.attr.Resume()
			return 0, at, cErr
		}
		dst := d.LBA(dstZone, zn.wp)
		if firstLBA < 0 {
			firstLBA = dst
		}
		if d.writtenBy != nil {
			// The copy fills the destination on the current worker's behalf
			// (reclamation pushes the victim's dominant polluter), so the
			// destination zone's eventual reset blames the right tenant.
			d.writtenBy[dstZone][clampOwner(d.attr.Worker())]++
		}
		zn.wp++
		if zn.wp == zn.cap {
			d.release(zn)
			d.transition(at, dstZone, Full)
		}
		if d.data != nil {
			if payload, ok := d.data[src]; ok {
				d.data[dst] = payload
			}
		}
		d.counters.FlashReadPages++
		d.counters.FlashProgramPages++
		d.counters.GCCopyPages++
		if cDone > done {
			done = cDone
		}
	}
	d.attr.Resume()
	d.attr.Charge(telemetry.PhaseDevCopy, done-at)
	d.tr.SpanArg(telemetry.ProcZone, int32(dstZone), "zns", "simple_copy", at, done,
		"pages", int64(len(srcLBAs)))
	return firstLBA, done, nil
}

// ZoneInfo is one row of a zone report (the blkzone-style dump).
type ZoneInfo struct {
	Zone  int
	State ZoneState
	WP    int64
	Cap   int64
}

// ZoneReport lists the state of every zone.
func (d *Device) ZoneReport() []ZoneInfo {
	out := make([]ZoneInfo, len(d.zones))
	for i := range d.zones {
		out[i] = ZoneInfo{Zone: i, State: d.zones[i].state, WP: d.zones[i].wp, Cap: d.zones[i].cap}
	}
	return out
}
