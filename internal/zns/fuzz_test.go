package zns

import (
	"errors"
	"io"
	"testing"

	"blockhead/internal/sim"
	"blockhead/internal/telemetry"
)

// wantActivate derives, from the pre-op state and the current open/active
// counts, the error the spec requires from an operation that needs the zone
// Open (explicit Open, Write, Append).
func wantActivate(cfg Config, pre ZoneState, open, active int) error {
	switch pre {
	case Open:
		return nil
	case Closed:
		if cfg.MaxOpen != 0 && open >= cfg.MaxOpen {
			return ErrTooManyOpen
		}
		return nil
	case Empty:
		if cfg.MaxActive != 0 && active >= cfg.MaxActive {
			return ErrTooManyActive
		}
		if cfg.MaxOpen != 0 && open >= cfg.MaxOpen {
			return ErrTooManyOpen
		}
		return nil
	case Offline:
		return ErrOffline
	default:
		return ErrBadState
	}
}

// FuzzZoneStateMachine drives random zone-management sequences against the
// device with the auditor attached. Every returned error must match the one
// derived from the ZNS spec for the observed pre-op state, and the auditor
// must see zero violations — the state machine may never take an illegal
// path no matter the op order.
func FuzzZoneStateMachine(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4})
	f.Add([]byte{4, 4, 4, 4, 4, 0, 0, 0, 2, 3, 1})
	f.Add([]byte{20, 41, 62, 83, 104, 125, 146, 167, 188, 209, 230, 251})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, ops []byte) {
		cfg := testCfg() // MaxActive 4, MaxOpen 2, unlimited endurance
		d, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		probe := telemetry.NewProbe(telemetry.Options{})
		probe.FlightRec.DumpTo = io.Discard
		d.SetProbe(probe)
		aud := d.AttachAuditor()
		check := func(op string, z int, pre ZoneState, got, want error) {
			t.Helper()
			if want == nil {
				if got != nil {
					t.Fatalf("%s zone %d (pre %v): unexpected error %v", op, z, pre, got)
				}
				return
			}
			if !errors.Is(got, want) {
				t.Fatalf("%s zone %d (pre %v): error %v, want %v", op, z, pre, got, want)
			}
		}
		var at sim.Time
		for _, b := range ops {
			z := int(b/5) % d.NumZones()
			pre := d.State(z)
			open, active := d.OpenZones(), d.ActiveZones()
			switch b % 5 {
			case 0:
				check("open", z, pre, d.Open(at, z), wantActivate(cfg, pre, open, active))
			case 1:
				var want error
				if pre != Open {
					want = ErrBadState
				}
				check("close", z, pre, d.Close(at, z), want)
			case 2:
				var want error
				if pre == Full || pre == ReadOnly || pre == Offline {
					want = ErrBadState
				}
				check("finish", z, pre, d.Finish(at, z), want)
			case 3:
				var want error
				switch pre {
				case Offline:
					want = ErrOffline
				case ReadOnly:
					want = ErrBadState
				}
				done, err := d.Reset(at, z)
				check("reset", z, pre, err, want)
				if err == nil {
					at = done
				}
			case 4:
				want := wantActivate(cfg, pre, open, active)
				if pre == Full {
					want = ErrZoneFull
				}
				_, done, err := d.Append(at, z, nil)
				check("append", z, pre, err, want)
				if err == nil {
					at = done
				}
			}
			// With unlimited endurance the fuzz can never degrade a zone.
			if s := d.State(z); s == ReadOnly || s == Offline {
				t.Fatalf("zone %d degraded to %v without wear", z, s)
			}
		}
		if v := aud.Violations(); v != 0 {
			t.Fatalf("auditor saw %d violations over %d ops", v, len(ops))
		}
		if err := aud.Check(); err != nil {
			t.Fatal(err)
		}
	})
}
