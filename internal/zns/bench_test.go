package zns

import (
	"testing"

	"blockhead/internal/flash"
	"blockhead/internal/sim"
	"blockhead/internal/telemetry"
)

func benchDev(b *testing.B) *Device {
	b.Helper()
	d, err := New(Config{
		Geom: flash.Geometry{Channels: 8, DiesPerChan: 1, PlanesPerDie: 1,
			BlocksPerLUN: 64, PagesPerBlock: 256, PageSize: 4096},
		Lat:        flash.LatenciesFor(flash.TLC),
		ZoneBlocks: 8,
	})
	if err != nil {
		b.Fatal(err)
	}
	return d
}

// BenchmarkAppend measures the zone-append hot path including zone resets
// when the log wraps.
func BenchmarkAppend(b *testing.B) {
	d := benchDev(b)
	var at sim.Time
	zone := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if d.WP(zone) >= d.WritableCap(zone) {
			done, err := d.Reset(at, zone)
			if err != nil {
				b.Fatal(err)
			}
			at = done
			zone = (zone + 1) % d.NumZones()
		}
		_, done, err := d.Append(at, zone, nil)
		if err != nil {
			b.Fatal(err)
		}
		at = done
	}
}

func BenchmarkRead(b *testing.B) {
	d := benchDev(b)
	lba, at, err := d.Append(0, 0, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at, _, err = d.Read(at, lba)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProbeDisabledAudit pins that the auditor and flight-recorder
// hooks on the transition path are free when absent: nil receivers, zero
// allocations — the same contract BenchmarkProbeDisabled pins for the rest
// of the telemetry surface.
func BenchmarkProbeDisabledAudit(b *testing.B) {
	var a *Auditor
	var fl *telemetry.Flight
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		at := sim.Time(i)
		a.observe(at, 0, Empty, Open)
		a.observe(at, 0, Open, Full)
		fl.Record(at, telemetry.FlightTransition, 0, transPair[Empty][Open], 0)
		fl.Violation(at, telemetry.FlightAuditViolation, 0, "", 0)
	}
	if a.Violations() != 0 || fl.Total() != 0 {
		b.Fatal("nil receivers recorded state")
	}
}

func BenchmarkZoneReport(b *testing.B) {
	d := benchDev(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(d.ZoneReport()) == 0 {
			b.Fatal("empty report")
		}
	}
}
