package zkv

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
)

// SSTable blob layout:
//
//	entries:  (uvarint klen | uvarint vlen+1 | key | value)*   vlen+1==0 -> tombstone
//	index:    (uvarint klen | key | uvarint byteOff)*           one per checkpoint
//	filter:   uvarint k | bloom bit array
//	footer:   uint32 indexOff | uint32 filterOff | uint32 entryCount | uint32 magic
//
// A sparse in-memory index (one checkpoint per ~indexInterval bytes of
// entries, always at an entry boundary) and a Bloom filter are kept per
// table for point lookups; the serialized copies make the blob
// self-describing.
const (
	tableMagic    = 0x5a4b5632 // "ZKV2"
	indexInterval = 4096
	footerSize    = 16
)

// ErrCorrupt reports a malformed table blob.
var ErrCorrupt = errors.New("zkv: corrupt sstable")

type indexEntry struct {
	key []byte
	off int
}

// tableMeta is the in-memory handle to one SSTable.
type tableMeta struct {
	handle   TableHandle
	level    int
	sizeB    int
	entries  int
	firstKey []byte
	lastKey  []byte
	index    []indexEntry // sparse, ascending
	indexOff int          // byte offset where entries end
	filter   *bloom       // per-table Bloom filter (may be nil)
	seq      uint64       // creation sequence; larger = newer (L0 ordering)
}

// tableBuilder accumulates sorted entries into a blob.
type tableBuilder struct {
	buf     bytes.Buffer
	index   []indexEntry
	keys    [][]byte // copies for the Bloom filter
	first   []byte
	last    []byte
	count   int
	nextIdx int
	scratch [2 * binary.MaxVarintLen64]byte
}

func newTableBuilder() *tableBuilder { return &tableBuilder{} }

// add appends an entry; keys must arrive in strictly increasing order.
func (b *tableBuilder) add(key, value []byte) {
	if b.count > 0 && bytes.Compare(key, b.last) <= 0 {
		panic("zkv: tableBuilder keys out of order")
	}
	if b.buf.Len() >= b.nextIdx {
		k := append([]byte(nil), key...)
		b.index = append(b.index, indexEntry{key: k, off: b.buf.Len()})
		b.nextIdx = b.buf.Len() + indexInterval
	}
	n := binary.PutUvarint(b.scratch[:], uint64(len(key)))
	vlen := uint64(0)
	if value != nil {
		vlen = uint64(len(value)) + 1
	}
	n += binary.PutUvarint(b.scratch[n:], vlen)
	b.buf.Write(b.scratch[:n])
	b.buf.Write(key)
	b.buf.Write(value)
	if b.count == 0 {
		b.first = append([]byte(nil), key...)
	}
	b.last = append([]byte(nil), key...)
	b.keys = append(b.keys, b.last)
	b.count++
}

// empty reports whether nothing has been added.
func (b *tableBuilder) empty() bool { return b.count == 0 }

// sizeEstimate reports the current entry-region size.
func (b *tableBuilder) sizeEstimate() int { return b.buf.Len() }

// finish serializes the blob and returns it with the table's metadata
// (handle and level are filled in by the caller after the backend write).
func (b *tableBuilder) finish() ([]byte, *tableMeta) {
	indexOff := b.buf.Len()
	var scratch [binary.MaxVarintLen64]byte
	for _, ie := range b.index {
		n := binary.PutUvarint(scratch[:], uint64(len(ie.key)))
		b.buf.Write(scratch[:n])
		b.buf.Write(ie.key)
		n = binary.PutUvarint(scratch[:], uint64(ie.off))
		b.buf.Write(scratch[:n])
	}
	filterOff := b.buf.Len()
	filter := newBloom(b.count)
	for _, k := range b.keys {
		filter.add(k)
	}
	b.buf.Write(filter.marshal())
	var footer [footerSize]byte
	binary.LittleEndian.PutUint32(footer[0:], uint32(indexOff))
	binary.LittleEndian.PutUint32(footer[4:], uint32(filterOff))
	binary.LittleEndian.PutUint32(footer[8:], uint32(b.count))
	binary.LittleEndian.PutUint32(footer[12:], tableMagic)
	b.buf.Write(footer[:])
	blob := b.buf.Bytes()
	meta := &tableMeta{
		sizeB:    len(blob),
		entries:  b.count,
		firstKey: b.first,
		lastKey:  b.last,
		index:    b.index,
		indexOff: indexOff,
		filter:   filter,
	}
	return blob, meta
}

// parseTable reconstructs metadata from a blob — used on "open" and in
// tests to prove the format is self-describing.
func parseTable(blob []byte) (*tableMeta, error) {
	if len(blob) < footerSize {
		return nil, ErrCorrupt
	}
	f := blob[len(blob)-footerSize:]
	if binary.LittleEndian.Uint32(f[12:]) != tableMagic {
		return nil, ErrCorrupt
	}
	indexOff := int(binary.LittleEndian.Uint32(f[0:]))
	filterOff := int(binary.LittleEndian.Uint32(f[4:]))
	count := int(binary.LittleEndian.Uint32(f[8:]))
	if indexOff > filterOff || filterOff > len(blob)-footerSize {
		return nil, ErrCorrupt
	}
	meta := &tableMeta{sizeB: len(blob), entries: count, indexOff: indexOff}
	filter, err := unmarshalBloom(blob[filterOff : len(blob)-footerSize])
	if err != nil {
		return nil, err
	}
	meta.filter = filter
	// Index region.
	idx := blob[indexOff:filterOff]
	for len(idx) > 0 {
		klen, n := binary.Uvarint(idx)
		if n <= 0 || int(klen) > len(idx)-n {
			return nil, ErrCorrupt
		}
		key := append([]byte(nil), idx[n:n+int(klen)]...)
		idx = idx[n+int(klen):]
		off, n := binary.Uvarint(idx)
		if n <= 0 {
			return nil, ErrCorrupt
		}
		idx = idx[n:]
		meta.index = append(meta.index, indexEntry{key: key, off: int(off)})
	}
	// First/last keys from the entry region.
	it := newBlobIter(blob[:indexOff])
	for it.next() {
		if meta.firstKey == nil {
			meta.firstKey = append([]byte(nil), it.key...)
		}
		meta.lastKey = append(meta.lastKey[:0], it.key...)
	}
	if it.err != nil {
		return nil, it.err
	}
	return meta, nil
}

// blobIter walks the entry region of a blob sequentially.
type blobIter struct {
	data  []byte
	key   []byte
	value []byte // nil for tombstones
	err   error
}

func newBlobIter(entryRegion []byte) *blobIter { return &blobIter{data: entryRegion} }

func (it *blobIter) next() bool {
	if len(it.data) == 0 || it.err != nil {
		return false
	}
	klen, n := binary.Uvarint(it.data)
	if n <= 0 {
		it.err = ErrCorrupt
		return false
	}
	it.data = it.data[n:]
	vlenPlus, n := binary.Uvarint(it.data)
	if n <= 0 {
		it.err = ErrCorrupt
		return false
	}
	it.data = it.data[n:]
	if int(klen) > len(it.data) {
		it.err = ErrCorrupt
		return false
	}
	it.key = it.data[:klen]
	it.data = it.data[klen:]
	if vlenPlus == 0 {
		it.value = nil
		return true
	}
	vlen := int(vlenPlus - 1)
	if vlen > len(it.data) {
		it.err = ErrCorrupt
		return false
	}
	it.value = it.data[:vlen]
	it.data = it.data[vlen:]
	return true
}

// chunkFor returns the byte range [lo, hi) of the entry region that can
// contain key, based on the sparse index.
func (t *tableMeta) chunkFor(key []byte) (lo, hi int) {
	if len(t.index) == 0 {
		return 0, t.indexOff
	}
	// Greatest checkpoint with index key <= key.
	i := sort.Search(len(t.index), func(i int) bool {
		return bytes.Compare(t.index[i].key, key) > 0
	}) - 1
	if i < 0 {
		return 0, 0 // key precedes the table
	}
	lo = t.index[i].off
	if i+1 < len(t.index) {
		hi = t.index[i+1].off
	} else {
		hi = t.indexOff
	}
	return lo, hi
}

// mayContain is the cheap range test used before any I/O.
func (t *tableMeta) mayContain(key []byte) bool {
	return bytes.Compare(key, t.firstKey) >= 0 && bytes.Compare(key, t.lastKey) <= 0
}

// String implements fmt.Stringer.
func (t *tableMeta) String() string {
	return fmt.Sprintf("table{L%d %dB %d entries [%q..%q]}",
		t.level, t.sizeB, t.entries, t.firstKey, t.lastKey)
}
