package zkv

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMemtableBasic(t *testing.T) {
	m := newMemtable(1)
	if m.len() != 0 || m.sizeBytes() != 0 {
		t.Error("fresh memtable not empty")
	}
	m.put([]byte("b"), []byte("2"))
	m.put([]byte("a"), []byte("1"))
	m.put([]byte("c"), []byte("3"))
	if m.len() != 3 {
		t.Errorf("len = %d", m.len())
	}
	v, ok := m.get([]byte("b"))
	if !ok || string(v) != "2" {
		t.Errorf("get b = %q, %v", v, ok)
	}
	if _, ok := m.get([]byte("zz")); ok {
		t.Error("phantom key")
	}
}

func TestMemtableOverwrite(t *testing.T) {
	m := newMemtable(2)
	m.put([]byte("k"), []byte("v1"))
	m.put([]byte("k"), []byte("v2longer"))
	if m.len() != 1 {
		t.Errorf("len after overwrite = %d", m.len())
	}
	v, _ := m.get([]byte("k"))
	if string(v) != "v2longer" {
		t.Errorf("overwrite lost: %q", v)
	}
}

func TestMemtableTombstone(t *testing.T) {
	m := newMemtable(3)
	m.put([]byte("k"), nil)
	v, ok := m.get([]byte("k"))
	if !ok || v != nil {
		t.Errorf("tombstone: v=%v ok=%v", v, ok)
	}
}

func TestMemtableIterSorted(t *testing.T) {
	m := newMemtable(4)
	rng := rand.New(rand.NewSource(5))
	keys := map[string]bool{}
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("key%06d", rng.Intn(10000))
		keys[k] = true
		m.put([]byte(k), []byte("v"))
	}
	it := m.iter()
	var prev []byte
	n := 0
	for it.next() {
		if prev != nil && bytes.Compare(it.key(), prev) <= 0 {
			t.Fatal("iterator out of order")
		}
		prev = append(prev[:0], it.key()...)
		n++
	}
	if n != len(keys) {
		t.Errorf("iterated %d, want %d", n, len(keys))
	}
}

// Property: memtable behaves like a map.
func TestMemtableModelProperty(t *testing.T) {
	f := func(ops [][2]uint8) bool {
		m := newMemtable(6)
		model := map[string]string{}
		for i, op := range ops {
			k := fmt.Sprintf("k%d", op[0]%32)
			v := fmt.Sprintf("v%d-%d", op[1], i)
			m.put([]byte(k), []byte(v))
			model[k] = v
		}
		for k, v := range model {
			got, ok := m.get([]byte(k))
			if !ok || string(got) != v {
				return false
			}
		}
		return m.len() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSSTableRoundTrip(t *testing.T) {
	b := newTableBuilder()
	var keys []string
	for i := 0; i < 300; i++ {
		keys = append(keys, fmt.Sprintf("key%06d", i*7))
	}
	sort.Strings(keys)
	for i, k := range keys {
		if i%10 == 3 {
			b.add([]byte(k), nil) // tombstone
		} else {
			b.add([]byte(k), []byte("value-"+k))
		}
	}
	blob, meta := b.finish()
	if meta.entries != 300 {
		t.Errorf("entries = %d", meta.entries)
	}
	if string(meta.firstKey) != keys[0] || string(meta.lastKey) != keys[len(keys)-1] {
		t.Errorf("key range = %q..%q", meta.firstKey, meta.lastKey)
	}

	// The blob is self-describing.
	parsed, err := parseTable(blob)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.entries != meta.entries || !bytes.Equal(parsed.firstKey, meta.firstKey) ||
		!bytes.Equal(parsed.lastKey, meta.lastKey) || parsed.indexOff != meta.indexOff {
		t.Errorf("parsed meta mismatch: %+v vs %+v", parsed, meta)
	}
	if len(parsed.index) != len(meta.index) {
		t.Errorf("index length: parsed %d vs built %d", len(parsed.index), len(meta.index))
	}

	// Every key is findable through the sparse index.
	for i, k := range keys {
		lo, hi := meta.chunkFor([]byte(k))
		if lo >= hi {
			t.Fatalf("chunkFor(%q) empty", k)
		}
		it := newBlobIter(blob[lo:hi])
		found := false
		for it.next() {
			if string(it.key) == k {
				found = true
				if i%10 == 3 {
					if it.value != nil {
						t.Fatalf("%q should be a tombstone", k)
					}
				} else if string(it.value) != "value-"+k {
					t.Fatalf("%q value = %q", k, it.value)
				}
				break
			}
		}
		if !found {
			t.Fatalf("key %q not found via index", k)
		}
	}

	// Keys outside the range produce empty or missing chunks.
	if lo, hi := meta.chunkFor([]byte("a")); lo != hi {
		t.Error("chunk for key before table should be empty")
	}
	if !meta.mayContain([]byte(keys[5])) || meta.mayContain([]byte("zzz")) {
		t.Error("mayContain wrong")
	}
	if meta.String() == "" {
		t.Error("String empty")
	}
}

func TestSSTableCorruptDetection(t *testing.T) {
	if _, err := parseTable(nil); err == nil {
		t.Error("nil blob accepted")
	}
	if _, err := parseTable(make([]byte, 20)); err == nil {
		t.Error("zero blob accepted")
	}
	b := newTableBuilder()
	b.add([]byte("k"), []byte("v"))
	blob, _ := b.finish()
	// Corrupt the magic.
	bad := append([]byte(nil), blob...)
	bad[len(bad)-1] ^= 0xff
	if _, err := parseTable(bad); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestTableBuilderOrderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out-of-order add did not panic")
		}
	}()
	b := newTableBuilder()
	b.add([]byte("b"), nil)
	b.add([]byte("a"), nil)
}

func TestEmptyValueVsTombstone(t *testing.T) {
	b := newTableBuilder()
	b.add([]byte("empty"), []byte{})
	b.add([]byte("tomb"), nil)
	blob, meta := b.finish()
	it := newBlobIter(blob[:meta.indexOff])
	if !it.next() || it.value == nil {
		t.Error("empty value decoded as tombstone")
	}
	if !it.next() || it.value != nil {
		t.Error("tombstone decoded as value")
	}
}
