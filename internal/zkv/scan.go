package zkv

import (
	"bytes"

	"blockhead/internal/sim"
)

// scanSource is one ordered input to a merged range scan. Lower prio wins
// for equal keys (the memtable is newest, then L0 newest-first, then each
// deeper level).
type scanSource struct {
	prio int
	// next advances to the next entry at or after the scan start; ok
	// reports whether one exists.
	key, value []byte
	ok         bool
	advance    func() ([]byte, []byte, bool)
}

func (s *scanSource) step() {
	s.key, s.value, s.ok = s.advance()
}

// Scan visits every live key in [start, limit) in ascending order, calling
// fn with each key/value; fn returning false stops early. A nil limit means
// "to the end". Tombstones and shadowed versions are skipped. The returned
// time includes all table reads the scan needed.
func (db *DB) Scan(at sim.Time, start, limit []byte, fn func(key, value []byte) bool) (sim.Time, error) {
	var sources []*scanSource

	// Memtable (priority 0: newest).
	mit := db.mem.iter()
	sources = append(sources, &scanSource{
		prio: 0,
		advance: func() ([]byte, []byte, bool) {
			for mit.next() {
				if bytes.Compare(mit.key(), start) < 0 {
					continue
				}
				return mit.key(), mit.value(), true
			}
			return nil, nil, false
		},
	})

	// Table sources: read each candidate table's entry region once.
	addTable := func(t *tableMeta, prio int) error {
		if limit != nil && bytes.Compare(t.firstKey, limit) >= 0 {
			return nil
		}
		if bytes.Compare(t.lastKey, start) < 0 {
			return nil
		}
		lo, _ := t.chunkFor(start)
		done, chunk, err := db.backend.ReadAt(at, t.handle, lo, t.indexOff-lo)
		if err != nil {
			return err
		}
		if done > at {
			at = done
		}
		it := newBlobIter(chunk)
		sources = append(sources, &scanSource{
			prio: prio,
			advance: func() ([]byte, []byte, bool) {
				for it.next() {
					if bytes.Compare(it.key, start) < 0 {
						continue
					}
					return it.key, it.value, true
				}
				return nil, nil, false
			},
		})
		return nil
	}

	// L0, newest table first (priority 1..k).
	prio := 1
	for i := len(db.levels[0]) - 1; i >= 0; i-- {
		if err := addTable(db.levels[0][i], prio); err != nil {
			return at, err
		}
		prio++
	}
	// Deeper levels: disjoint within a level, so one priority per level.
	for l := 1; l < len(db.levels); l++ {
		for _, t := range db.levels[l] {
			if err := addTable(t, prio); err != nil {
				return at, err
			}
		}
		prio++
	}

	for _, s := range sources {
		s.step()
	}
	for {
		best := -1
		for i, s := range sources {
			if !s.ok {
				continue
			}
			if best < 0 {
				best = i
				continue
			}
			c := bytes.Compare(s.key, sources[best].key)
			if c < 0 || (c == 0 && s.prio < sources[best].prio) {
				best = i
			}
		}
		if best < 0 {
			return at, nil
		}
		key := append([]byte(nil), sources[best].key...)
		if limit != nil && bytes.Compare(key, limit) >= 0 {
			return at, nil
		}
		value := sources[best].value
		live := value != nil
		cloned := cloneOrNil(value)
		// Skip shadowed versions everywhere.
		for _, s := range sources {
			for s.ok && bytes.Equal(s.key, key) {
				s.step()
			}
		}
		if live && !fn(key, cloned) {
			return at, nil
		}
	}
}
