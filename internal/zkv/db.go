package zkv

import (
	"bytes"
	"sort"

	"blockhead/internal/sim"
)

// Options tune the LSM tree. Zero values get defaults suitable for the
// simulated device sizes in this repository.
type Options struct {
	// MemtableBytes triggers a flush when the memtable reaches this size.
	// Default 128 KiB.
	MemtableBytes int64
	// L0CompactAt triggers an L0->L1 compaction at this many L0 tables.
	// Default 4.
	L0CompactAt int
	// BaseLevelBytes is L1's size budget; level L holds LevelRatio^(L-1)
	// times more. Default 512 KiB.
	BaseLevelBytes int64
	// LevelRatio is the per-level growth factor. Default 10.
	LevelRatio int
	// MaxLevels bounds the tree depth. Default 6.
	MaxLevels int
	// TableTargetBytes caps individual SSTable size. Default 64 KiB.
	TableTargetBytes int
	// Seed drives the skiplist's level coin flips.
	Seed int64
	// DisableWAL skips write-ahead logging (for ablations).
	DisableWAL bool
}

func (o Options) withDefaults() Options {
	if o.MemtableBytes == 0 {
		o.MemtableBytes = 128 << 10
	}
	if o.L0CompactAt == 0 {
		o.L0CompactAt = 4
	}
	if o.BaseLevelBytes == 0 {
		o.BaseLevelBytes = 512 << 10
	}
	if o.LevelRatio == 0 {
		o.LevelRatio = 10
	}
	if o.MaxLevels == 0 {
		o.MaxLevels = 6
	}
	if o.TableTargetBytes == 0 {
		o.TableTargetBytes = 64 << 10
	}
	return o
}

// Stats summarizes LSM activity.
type Stats struct {
	Puts        uint64
	Gets        uint64
	Flushes     uint64
	Compactions uint64
	TablesNow   int
	// CompactionRead/WrittenBytes measure LSM-level (application) write
	// amplification; the device adds its own on top.
	CompactionReadBytes    uint64
	CompactionWrittenBytes uint64
	FlushedBytes           uint64
	UserWrittenBytes       uint64
}

// AppWriteAmp reports application-level WA: bytes written to storage
// (flushes + compaction output) per user byte.
func (s Stats) AppWriteAmp() float64 {
	if s.UserWrittenBytes == 0 {
		return 1
	}
	return float64(s.FlushedBytes+s.CompactionWrittenBytes) / float64(s.UserWrittenBytes)
}

// DB is the LSM-tree key-value store.
type DB struct {
	opts    Options
	backend Backend

	mem    *memtable
	levels [][]*tableMeta // levels[0] unsorted (newest last); 1+ sorted, disjoint
	seq    uint64
	cursor [][]byte // per-level compaction cursor (last victim's lastKey)

	stats Stats
	// lastStallNs records how long the most recent Put waited on flush +
	// compaction — the LSM analogue of the device GC stall.
	lastStall sim.Time
}

// Open creates an empty store over backend.
func Open(backend Backend, opts Options) *DB {
	o := opts.withDefaults()
	return &DB{
		opts:    o,
		backend: backend,
		mem:     newMemtable(o.Seed),
		levels:  make([][]*tableMeta, o.MaxLevels),
	}
}

// Stats returns a snapshot of LSM activity.
func (db *DB) Stats() Stats {
	s := db.stats
	for _, lvl := range db.levels {
		s.TablesNow += len(lvl)
	}
	return s
}

// Backend returns the storage backend.
func (db *DB) Backend() Backend { return db.backend }

// LastStall reports the flush/compaction stall charged to the latest Put.
func (db *DB) LastStall() sim.Time { return db.lastStall }

// Put inserts or overwrites a key.
func (db *DB) Put(at sim.Time, key, value []byte) (sim.Time, error) {
	if value == nil {
		value = []byte{}
	}
	return db.write(at, key, value)
}

// Delete removes a key (writes a tombstone).
func (db *DB) Delete(at sim.Time, key []byte) (sim.Time, error) {
	return db.write(at, key, nil)
}

func (db *DB) write(at sim.Time, key, value []byte) (sim.Time, error) {
	start := at
	db.stats.Puts++
	db.stats.UserWrittenBytes += uint64(len(key) + len(value))
	if !db.opts.DisableWAL {
		var err error
		at, err = db.backend.AppendWAL(at, len(key)+len(value)+8)
		if err != nil {
			return at, err
		}
	}
	db.mem.put(append([]byte(nil), key...), cloneOrNil(value))
	if db.mem.sizeBytes() >= db.opts.MemtableBytes {
		var err error
		at, err = db.Flush(at)
		if err != nil {
			return at, err
		}
	}
	db.lastStall = at - start
	return at, nil
}

// cloneOrNil copies v, preserving the nil-means-tombstone distinction:
// a non-nil empty slice must stay non-nil (an empty value, not a delete).
func cloneOrNil(v []byte) []byte {
	if v == nil {
		return nil
	}
	out := make([]byte, len(v))
	copy(out, v)
	return out
}

// Get looks a key up through memtable, L0 (newest first), then each deeper
// level. The returned time includes every page read the probe needed.
func (db *DB) Get(at sim.Time, key []byte) (done sim.Time, value []byte, found bool, err error) {
	db.stats.Gets++
	if v, ok := db.mem.get(key); ok {
		return at, cloneOrNil(v), v != nil, nil
	}
	// L0: newest table wins.
	for i := len(db.levels[0]) - 1; i >= 0; i-- {
		t := db.levels[0][i]
		if !t.mayContain(key) {
			continue
		}
		at, value, found, err = db.searchTable(at, t, key)
		if err != nil || found || value != nil {
			break
		}
	}
	if err == nil && !found && value == nil {
		for l := 1; l < len(db.levels); l++ {
			t := db.findInLevel(l, key)
			if t == nil {
				continue
			}
			at, value, found, err = db.searchTable(at, t, key)
			if err != nil || found || value != nil {
				break
			}
		}
	}
	if err != nil || !found {
		return at, nil, false, err // miss or tombstone
	}
	return at, value, true, nil
}

// searchTable probes one table. Outcomes:
//   - live value: (value, found=true)
//   - tombstone:  (tombstoneMark, found=false) — definitive miss
//   - absent:     (nil, found=false) — keep descending
func (db *DB) searchTable(at sim.Time, t *tableMeta, key []byte) (sim.Time, []byte, bool, error) {
	if !t.filter.mayContain(key) {
		return at, nil, false, nil // Bloom-negative: no I/O at all
	}
	lo, hi := t.chunkFor(key)
	if lo >= hi {
		return at, nil, false, nil
	}
	done, chunk, err := db.backend.ReadAt(at, t.handle, lo, hi-lo)
	if err != nil {
		return at, nil, false, err
	}
	it := newBlobIter(chunk)
	for it.next() {
		c := bytes.Compare(it.key, key)
		if c > 0 {
			break
		}
		if c == 0 {
			if it.value == nil {
				return done, tombstoneMark, false, nil
			}
			return done, cloneOrNil(it.value), true, nil
		}
	}
	if it.err != nil {
		return done, nil, false, it.err
	}
	return done, nil, false, nil
}

// tombstoneMark is a non-nil, zero-length sentinel distinguishing "found a
// tombstone, stop searching" from "not in this table". It never escapes
// Get: callers receive found=false and must treat value as absent.
var tombstoneMark = make([]byte, 0)

// findInLevel binary-searches a sorted level for the table covering key.
func (db *DB) findInLevel(l int, key []byte) *tableMeta {
	lvl := db.levels[l]
	i := sort.Search(len(lvl), func(i int) bool {
		return bytes.Compare(lvl[i].lastKey, key) >= 0
	})
	if i < len(lvl) && lvl[i].mayContain(key) {
		return lvl[i]
	}
	return nil
}

// Flush writes the memtable to an L0 table (or several, if it exceeds the
// table size target), resets the WAL, and runs any compactions that the
// flush makes necessary.
func (db *DB) Flush(at sim.Time) (sim.Time, error) {
	if db.mem.len() == 0 {
		return at, nil
	}
	it := db.mem.iter()
	b := newTableBuilder()
	emit := func() error {
		blob, meta := b.finish()
		h, done, err := db.backend.WriteTable(at, blob, 0)
		if err != nil {
			return err
		}
		at = sim.Max(at, done)
		meta.handle = h
		meta.level = 0
		db.seq++
		meta.seq = db.seq
		db.levels[0] = append(db.levels[0], meta)
		db.stats.FlushedBytes += uint64(len(blob))
		return nil
	}
	for it.next() {
		b.add(it.key(), it.value())
		if b.sizeEstimate() >= db.opts.TableTargetBytes {
			if err := emit(); err != nil {
				return at, err
			}
			b = newTableBuilder()
		}
	}
	if !b.empty() {
		if err := emit(); err != nil {
			return at, err
		}
	}
	db.mem = newMemtable(db.opts.Seed + int64(db.seq))
	if !db.opts.DisableWAL {
		if err := db.backend.ResetWAL(at); err != nil {
			return at, err
		}
	}
	db.stats.Flushes++
	return db.maybeCompact(at)
}

// maxBytes is level L's size budget.
func (db *DB) maxBytes(l int) int64 {
	b := db.opts.BaseLevelBytes
	for i := 1; i < l; i++ {
		b *= int64(db.opts.LevelRatio)
	}
	return b
}

func levelBytes(lvl []*tableMeta) int64 {
	var n int64
	for _, t := range lvl {
		n += int64(t.sizeB)
	}
	return n
}

// maybeCompact runs compactions until every level fits its budget.
func (db *DB) maybeCompact(at sim.Time) (sim.Time, error) {
	for {
		if len(db.levels[0]) >= db.opts.L0CompactAt {
			var err error
			at, err = db.compactL0(at)
			if err != nil {
				return at, err
			}
			continue
		}
		progressed := false
		for l := 1; l < db.opts.MaxLevels-1; l++ {
			if levelBytes(db.levels[l]) > db.maxBytes(l) {
				var err error
				at, err = db.compactLevel(at, l)
				if err != nil {
					return at, err
				}
				progressed = true
				break
			}
		}
		if !progressed {
			return at, nil
		}
	}
}
