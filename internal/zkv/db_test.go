package zkv

import (
	"fmt"
	"math/rand"
	"testing"

	"blockhead/internal/flash"
	"blockhead/internal/ftl"
	"blockhead/internal/sim"
	"blockhead/internal/zns"
)

// bigConvBackend / bigZNSBackend give the DB a few MB to work with.
func bigConvBackend(t *testing.T) *ConvBackend {
	t.Helper()
	dev, err := ftl.New(ftl.Config{
		Geom: flash.Geometry{Channels: 4, DiesPerChan: 2, PlanesPerDie: 1,
			BlocksPerLUN: 24, PagesPerBlock: 64, PageSize: 4096},
		Lat:               flash.LatenciesFor(flash.TLC),
		OPFraction:        0.15,
		HotColdSeparation: true,
		TrimSupported:     true,
		StoreData:         true,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewConvBackend(dev, 32)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func bigZNSBackend(t *testing.T) *ZNSBackend {
	t.Helper()
	dev, err := zns.New(zns.Config{
		Geom: flash.Geometry{Channels: 4, DiesPerChan: 2, PlanesPerDie: 1,
			BlocksPerLUN: 24, PagesPerBlock: 64, PageSize: 4096},
		Lat:        flash.LatenciesFor(flash.TLC),
		ZoneBlocks: 8, // 24 zones x 512 pages x 4K = 2 MiB zones
		StoreData:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewZNSBackend(dev, 4)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func testOpts() Options {
	return Options{
		MemtableBytes:    32 << 10,
		BaseLevelBytes:   128 << 10,
		TableTargetBytes: 16 << 10,
		Seed:             1,
	}
}

func dbBackends(t *testing.T) map[string]Backend {
	return map[string]Backend{"conv": bigConvBackend(t), "zns": bigZNSBackend(t)}
}

func key(i int) []byte      { return []byte(fmt.Sprintf("key%08d", i)) }
func value(s string) []byte { return []byte(s) }

func TestPutGetSimple(t *testing.T) {
	for name, b := range dbBackends(t) {
		db := Open(b, testOpts())
		at, err := db.Put(0, key(1), value("one"))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		_, v, found, err := db.Get(at, key(1))
		if err != nil || !found || string(v) != "one" {
			t.Fatalf("%s: get = %q %v %v", name, v, found, err)
		}
		_, _, found, _ = db.Get(at, key(2))
		if found {
			t.Errorf("%s: phantom key", name)
		}
	}
}

func TestGetFromTables(t *testing.T) {
	for name, b := range dbBackends(t) {
		db := Open(b, testOpts())
		var at sim.Time
		for i := 0; i < 2000; i++ {
			var err error
			at, err = db.Put(at, key(i), value(fmt.Sprintf("v%d", i)))
			if err != nil {
				t.Fatalf("%s: put %d: %v", name, i, err)
			}
		}
		if db.Stats().Flushes == 0 {
			t.Fatalf("%s: no flush happened; keys all in memtable", name)
		}
		// Spot-check across the whole range (most now live in SSTables).
		for i := 0; i < 2000; i += 97 {
			done, v, found, err := db.Get(at, key(i))
			if err != nil || !found || string(v) != fmt.Sprintf("v%d", i) {
				t.Fatalf("%s: get %d = %q %v %v", name, i, v, found, err)
			}
			if done < at {
				t.Fatalf("%s: time went backward", name)
			}
		}
	}
}

func TestOverwriteAndTombstone(t *testing.T) {
	for name, b := range dbBackends(t) {
		db := Open(b, testOpts())
		var at sim.Time
		// Write, flush, overwrite, flush, delete, flush: the final state
		// must win through all levels.
		at, _ = db.Put(at, key(5), value("v1"))
		at, _ = db.Flush(at)
		at, _ = db.Put(at, key(5), value("v2"))
		at, _ = db.Flush(at)
		_, v, found, _ := db.Get(at, key(5))
		if !found || string(v) != "v2" {
			t.Fatalf("%s: overwrite lost: %q %v", name, v, found)
		}
		at, _ = db.Delete(at, key(5))
		at, _ = db.Flush(at)
		_, _, found, _ = db.Get(at, key(5))
		if found {
			t.Fatalf("%s: tombstone did not shadow older versions", name)
		}
	}
}

func TestEmptyValue(t *testing.T) {
	db := Open(bigZNSBackend(t), testOpts())
	at, _ := db.Put(0, key(9), []byte{})
	at, _ = db.Flush(at)
	_, v, found, err := db.Get(at, key(9))
	if err != nil || !found || len(v) != 0 {
		t.Fatalf("empty value: %q %v %v", v, found, err)
	}
}

func TestCompactionTriggersAndLevels(t *testing.T) {
	for name, b := range dbBackends(t) {
		db := Open(b, testOpts())
		rng := rand.New(rand.NewSource(2))
		var at sim.Time
		for i := 0; i < 6000; i++ {
			var err error
			at, err = db.Put(at, key(rng.Intn(3000)), value(fmt.Sprintf("val-%d", i)))
			if err != nil {
				t.Fatalf("%s: put %d: %v", name, i, err)
			}
		}
		st := db.Stats()
		if st.Compactions == 0 {
			t.Fatalf("%s: no compaction in 6000 puts", name)
		}
		if st.AppWriteAmp() <= 1 {
			t.Errorf("%s: app WA = %v, want > 1 with compactions", name, st.AppWriteAmp())
		}
		// Levels 1+ must be sorted and disjoint.
		for l := 1; l < len(db.levels); l++ {
			lvl := db.levels[l]
			for i := 1; i < len(lvl); i++ {
				if string(lvl[i].firstKey) <= string(lvl[i-1].lastKey) {
					t.Fatalf("%s: L%d tables overlap: %v then %v", name, l, lvl[i-1], lvl[i])
				}
			}
		}
	}
}

// Model check: the DB must agree with a map under heavy random
// put/delete/get traffic, across flushes and compactions, on both backends.
func TestModelCheck(t *testing.T) {
	for name, b := range dbBackends(t) {
		db := Open(b, testOpts())
		model := map[string]string{}
		rng := rand.New(rand.NewSource(3))
		var at sim.Time
		for i := 0; i < 8000; i++ {
			k := key(rng.Intn(1500))
			switch rng.Intn(10) {
			case 0: // delete
				var err error
				at, err = db.Delete(at, k)
				if err != nil {
					t.Fatalf("%s: delete: %v", name, err)
				}
				delete(model, string(k))
			default:
				v := fmt.Sprintf("v-%d", i)
				var err error
				at, err = db.Put(at, k, value(v))
				if err != nil {
					t.Fatalf("%s: put: %v", name, err)
				}
				model[string(k)] = v
			}
		}
		// Verify every key and a sample of absent keys.
		for k, v := range model {
			_, got, found, err := db.Get(at, []byte(k))
			if err != nil {
				t.Fatalf("%s: get %q: %v", name, k, err)
			}
			if !found || string(got) != v {
				t.Fatalf("%s: get %q = %q,%v want %q", name, k, got, found, v)
			}
		}
		for i := 0; i < 1500; i++ {
			k := key(i)
			if _, ok := model[string(k)]; ok {
				continue
			}
			_, _, found, err := db.Get(at, k)
			if err != nil {
				t.Fatalf("%s: get absent: %v", name, err)
			}
			if found {
				t.Fatalf("%s: deleted key %q resurrected", name, k)
			}
		}
		t.Logf("%s: stats %+v deviceWA=%.2f", name, db.Stats(), b.Counters().WriteAmp())
	}
}

// The headline E5 mechanism at test scale: under identical LSM traffic on a
// mostly-full device, the ZNS backend's device-level WA must sit well below
// the conventional one's. (Write amplification only bites at high space
// utilization: a near-empty FTL collects only dead blocks for free.)
func TestDeviceWAConvVsZNS(t *testing.T) {
	// Few LUNs keep the FTL's fixed reserve floor small, so the spare space
	// is realistic (~13%) and utilization is high enough for GC to hurt.
	geom := flash.Geometry{Channels: 2, DiesPerChan: 1, PlanesPerDie: 1,
		BlocksPerLUN: 112, PagesPerBlock: 64, PageSize: 1024}
	opts := Options{MemtableBytes: 64 << 10, BaseLevelBytes: 256 << 10,
		TableTargetBytes: 32 << 10, Seed: 1}
	const keys = 13000 // ~7.8 MB live at ~600 B/entry: with level duplicates
	// and transients the logical space runs essentially full — the regime
	// where the paper's RocksDB numbers were measured
	run := func(b Backend) float64 {
		db := Open(b, opts)
		rng := rand.New(rand.NewSource(4))
		var at sim.Time
		put := func(k int) {
			var err error
			at, err = db.Put(at, key(k), make([]byte, 580))
			if err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < keys; i++ { // fill
			put(i)
		}
		for i := 0; i < keys; i++ { // churn
			put(rng.Intn(keys))
		}
		return b.Counters().WriteAmp()
	}

	// Trim-less deployment (the common production default at the block
	// layer) with filesystem-style scattered allocation: the configuration
	// the paper's conventional-SSD RocksDB numbers come from.
	convDev, err := ftl.New(ftl.Config{Geom: geom, Lat: flash.LatenciesFor(flash.TLC),
		OPFraction: 0.03, HotColdSeparation: true, TrimSupported: false, StoreData: true})
	if err != nil {
		t.Fatal(err)
	}
	cb, err := NewConvBackend(convDev, 64)
	if err != nil {
		t.Fatal(err)
	}
	cb.SetAllocPolicy(ScatterFit)
	znsDev, err := zns.New(zns.Config{Geom: geom, Lat: flash.LatenciesFor(flash.TLC),
		ZoneBlocks: 2, StoreData: true})
	if err != nil {
		t.Fatal(err)
	}
	zb, err := NewZNSBackend(znsDev, 4)
	if err != nil {
		t.Fatal(err)
	}

	conv := run(cb)
	z := run(zb)
	t.Logf("device WA: conv=%.2f zns=%.2f", conv, z)
	if z >= conv {
		t.Errorf("device WA: zns=%.2f must be below conv=%.2f", z, conv)
	}
	if z > 1.3 {
		t.Errorf("zns device WA = %.2f, want near 1 (paper: 1.2x)", z)
	}
	if conv < 1.5 {
		t.Errorf("conv device WA = %.2f, too low: the device never felt GC pressure", conv)
	}
}

func TestFlushEmptyIsNoop(t *testing.T) {
	db := Open(bigZNSBackend(t), testOpts())
	at, err := db.Flush(100)
	if err != nil || at != 100 {
		t.Errorf("empty flush: at=%d err=%v", at, err)
	}
}

func TestDisableWAL(t *testing.T) {
	b := bigZNSBackend(t)
	opts := testOpts()
	opts.DisableWAL = true
	db := Open(b, opts)
	var at sim.Time
	for i := 0; i < 500; i++ {
		at, _ = db.Put(at, key(i), value("x"))
	}
	at, _ = db.Flush(at)
	// All device writes must be table writes; no WAL pages.
	if b.walZone != -1 {
		t.Error("WAL zone allocated despite DisableWAL")
	}
	_, _, found, _ := db.Get(at, key(100))
	if !found {
		t.Error("data lost without WAL")
	}
}

func TestStatsAccounting(t *testing.T) {
	db := Open(bigZNSBackend(t), testOpts())
	var at sim.Time
	for i := 0; i < 3000; i++ {
		at, _ = db.Put(at, key(i), make([]byte, 32))
	}
	st := db.Stats()
	if st.Puts != 3000 {
		t.Errorf("Puts = %d", st.Puts)
	}
	if st.TablesNow == 0 || st.Flushes == 0 || st.FlushedBytes == 0 {
		t.Errorf("stats empty: %+v", st)
	}
	db.Get(at, key(1))
	if db.Stats().Gets != 1 {
		t.Errorf("Gets = %d", db.Stats().Gets)
	}
}
