package zkv

import (
	"bytes"
	"sort"

	"blockhead/internal/sim"
)

// mergeSource is one input stream to a compaction merge. Lower prio wins
// on equal keys (upper levels and newer L0 tables shadow older data).
type mergeSource struct {
	it   *blobIter
	prio int
	ok   bool
}

func (s *mergeSource) advance() { s.ok = s.it.next() }

// compactL0 merges every L0 table with the overlapping part of L1.
func (db *DB) compactL0(at sim.Time) (sim.Time, error) {
	inputs := append([]*tableMeta(nil), db.levels[0]...)
	if len(inputs) == 0 {
		return at, nil
	}
	lo, hi := keyRange(inputs)
	overlap, rest := splitOverlap(db.levels[1], lo, hi)

	// Newest L0 table gets the best priority; all (disjoint) L1 tables
	// share the worst.
	sort.Slice(inputs, func(i, j int) bool { return inputs[i].seq > inputs[j].seq })
	var sources []*tableMeta
	prios := make([]int, 0, len(inputs)+len(overlap))
	for i, t := range inputs {
		sources = append(sources, t)
		prios = append(prios, i)
	}
	for _, t := range overlap {
		sources = append(sources, t)
		prios = append(prios, len(inputs))
	}

	outs, done, err := db.merge(at, sources, prios, 1)
	if err != nil {
		return at, err
	}
	db.levels[0] = db.levels[0][:0]
	db.levels[1] = insertSorted(rest, outs)
	if err := db.dropTables(done, append(inputs, overlap...)); err != nil {
		return done, err
	}
	db.stats.Compactions++
	return done, nil
}

// compactLevel pushes one table from level l into l+1 (picked round-robin
// by key order via a per-level cursor key).
func (db *DB) compactLevel(at sim.Time, l int) (sim.Time, error) {
	lvl := db.levels[l]
	if len(lvl) == 0 {
		return at, nil
	}
	victim := db.pickCompactionVictim(l)
	overlap, rest := splitOverlap(db.levels[l+1], victim.firstKey, victim.lastKey)

	sources := append([]*tableMeta{victim}, overlap...)
	prios := make([]int, len(sources))
	for i := 1; i < len(prios); i++ {
		prios[i] = 1
	}
	outs, done, err := db.merge(at, sources, prios, l+1)
	if err != nil {
		return at, err
	}
	// Remove the victim from level l.
	cur := db.levels[l]
	for i, t := range cur {
		if t == victim {
			db.levels[l] = append(cur[:i], cur[i+1:]...)
			break
		}
	}
	db.levels[l+1] = insertSorted(rest, outs)
	if err := db.dropTables(done, append([]*tableMeta{victim}, overlap...)); err != nil {
		return done, err
	}
	db.stats.Compactions++
	return done, nil
}

// pickCompactionVictim rotates through a level's key space using the
// per-level cursor (the classic LevelDB strategy), so compaction pressure
// spreads instead of hammering one key range.
func (db *DB) pickCompactionVictim(l int) *tableMeta {
	lvl := db.levels[l]
	if db.cursor == nil {
		db.cursor = make([][]byte, db.opts.MaxLevels)
	}
	after := db.cursor[l]
	for _, t := range lvl {
		if after == nil || bytes.Compare(t.firstKey, after) > 0 {
			db.cursor[l] = t.lastKey
			return t
		}
	}
	db.cursor[l] = lvl[0].lastKey
	return lvl[0]
}

// merge reads all sources, merges them newest-wins, and writes output
// tables to outLevel. Tombstones are dropped only when outLevel is the
// bottom level (nothing deeper could hold an older version).
func (db *DB) merge(at sim.Time, tables []*tableMeta, prios []int, outLevel int) ([]*tableMeta, sim.Time, error) {
	bottom := outLevel == db.opts.MaxLevels-1
	done := at
	srcs := make([]*mergeSource, len(tables))
	for i, t := range tables {
		d, blob, err := db.backend.ReadAt(at, t.handle, 0, t.sizeB)
		if err != nil {
			return nil, at, err
		}
		done = sim.Max(done, d)
		db.stats.CompactionReadBytes += uint64(t.sizeB)
		srcs[i] = &mergeSource{it: newBlobIter(blob[:t.indexOff]), prio: prios[i]}
		srcs[i].advance()
	}

	var outs []*tableMeta
	b := newTableBuilder()
	emit := func() error {
		blob, meta := b.finish()
		h, wDone, err := db.backend.WriteTable(done, blob, outLevel)
		if err != nil {
			return err
		}
		done = sim.Max(done, wDone)
		meta.handle = h
		meta.level = outLevel
		db.seq++
		meta.seq = db.seq
		outs = append(outs, meta)
		db.stats.CompactionWrittenBytes += uint64(len(blob))
		return nil
	}

	for {
		// Find the smallest key; among equals, the best (lowest) priority.
		best := -1
		for i, s := range srcs {
			if !s.ok {
				continue
			}
			if best < 0 {
				best = i
				continue
			}
			c := bytes.Compare(s.it.key, srcs[best].it.key)
			if c < 0 || (c == 0 && s.prio < srcs[best].prio) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		key, value := srcs[best].it.key, srcs[best].it.value
		if !(value == nil && bottom) { // drop tombstones at the bottom
			b.add(key, value)
		}
		// Skip shadowed versions of the same key in every source.
		for _, s := range srcs {
			for s.ok && bytes.Equal(s.it.key, key) {
				s.advance()
			}
		}
		if b.sizeEstimate() >= db.opts.TableTargetBytes {
			if err := emit(); err != nil {
				return nil, done, err
			}
			b = newTableBuilder()
		}
	}
	for _, s := range srcs {
		if s.it.err != nil {
			return nil, done, s.it.err
		}
	}
	if !b.empty() {
		if err := emit(); err != nil {
			return nil, done, err
		}
	}
	return outs, done, nil
}

// dropTables deletes input tables from the backend after a compaction.
func (db *DB) dropTables(at sim.Time, tables []*tableMeta) error {
	for _, t := range tables {
		if err := db.backend.Delete(at, t.handle); err != nil {
			return err
		}
	}
	return nil
}

// keyRange returns the smallest and largest keys across tables.
func keyRange(tables []*tableMeta) (lo, hi []byte) {
	for _, t := range tables {
		if lo == nil || bytes.Compare(t.firstKey, lo) < 0 {
			lo = t.firstKey
		}
		if hi == nil || bytes.Compare(t.lastKey, hi) > 0 {
			hi = t.lastKey
		}
	}
	return lo, hi
}

// splitOverlap partitions a sorted level into tables overlapping [lo, hi]
// and the rest.
func splitOverlap(lvl []*tableMeta, lo, hi []byte) (overlap, rest []*tableMeta) {
	for _, t := range lvl {
		if bytes.Compare(t.lastKey, lo) < 0 || bytes.Compare(t.firstKey, hi) > 0 {
			rest = append(rest, t)
		} else {
			overlap = append(overlap, t)
		}
	}
	return overlap, rest
}

// insertSorted merges new tables into a (disjoint) sorted level.
func insertSorted(lvl, outs []*tableMeta) []*tableMeta {
	lvl = append(lvl, outs...)
	sort.Slice(lvl, func(i, j int) bool {
		return bytes.Compare(lvl[i].firstKey, lvl[j].firstKey) < 0
	})
	return lvl
}
