package zkv

import (
	"fmt"
	"testing"
	"testing/quick"

	"blockhead/internal/sim"
)

func TestBloomNoFalseNegatives(t *testing.T) {
	b := newBloom(1000)
	for i := 0; i < 1000; i++ {
		b.add([]byte(fmt.Sprintf("key%06d", i)))
	}
	for i := 0; i < 1000; i++ {
		if !b.mayContain([]byte(fmt.Sprintf("key%06d", i))) {
			t.Fatalf("false negative for key%06d", i)
		}
	}
}

func TestBloomFalsePositiveRate(t *testing.T) {
	b := newBloom(2000)
	for i := 0; i < 2000; i++ {
		b.add([]byte(fmt.Sprintf("key%06d", i)))
	}
	fp := 0
	probes := 10000
	for i := 0; i < probes; i++ {
		if b.mayContain([]byte(fmt.Sprintf("absent%06d", i))) {
			fp++
		}
	}
	rate := float64(fp) / float64(probes)
	if rate > 0.03 {
		t.Errorf("false-positive rate = %.3f, want ~0.01 at 10 bits/key", rate)
	}
}

func TestBloomMarshalRoundTrip(t *testing.T) {
	b := newBloom(100)
	for i := 0; i < 100; i++ {
		b.add([]byte(fmt.Sprintf("k%d", i)))
	}
	b2, err := unmarshalBloom(b.marshal())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if !b2.mayContain([]byte(fmt.Sprintf("k%d", i))) {
			t.Fatalf("round-tripped filter lost k%d", i)
		}
	}
	// Nil and corrupt inputs.
	if f, err := unmarshalBloom(nil); err != nil || f != nil {
		t.Error("nil buffer must yield nil filter")
	}
	if _, err := unmarshalBloom([]byte{0}); err == nil {
		t.Error("k=0 filter accepted")
	}
	// A nil filter never excludes.
	var nilFilter *bloom
	if !nilFilter.mayContain([]byte("x")) {
		t.Error("nil filter must not exclude")
	}
}

// Property: no false negatives for arbitrary key sets.
func TestBloomProperty(t *testing.T) {
	f := func(keys [][]byte) bool {
		b := newBloom(len(keys))
		for _, k := range keys {
			b.add(k)
		}
		for _, k := range keys {
			if !b.mayContain(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// The point of the filter: probing absent keys must cost (almost) no
// device reads once the data lives in SSTables.
func TestBloomSavesIO(t *testing.T) {
	b := bigZNSBackend(t)
	db := Open(b, testOpts())
	var at sim.Time
	for i := 0; i < 3000; i++ {
		at, _ = db.Put(at, key(i), make([]byte, 64))
	}
	at, _ = db.Flush(at)
	before := b.Counters().FlashReadPages
	misses := 2000
	for i := 0; i < misses; i++ {
		// Absent keys *inside* the stored key range, so the min/max range
		// check cannot exclude them — only the Bloom filter can.
		_, _, found, err := db.Get(at, []byte(fmt.Sprintf("key%08d-absent", i)))
		if err != nil {
			t.Fatal(err)
		}
		if found {
			t.Fatal("phantom key")
		}
	}
	reads := b.Counters().FlashReadPages - before
	// Without filters every miss would probe >= 1 table chunk (~4 pages of
	// 4K). With them, only range-misses-but-bloom-positives read: ~1%.
	if reads > uint64(misses) {
		t.Errorf("%d flash reads for %d absent-key probes; bloom filters not effective", reads, misses)
	}
}
