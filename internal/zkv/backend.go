package zkv

import (
	"errors"
	"fmt"
	"sort"

	"blockhead/internal/ftl"
	"blockhead/internal/sim"
	"blockhead/internal/stats"
)

// TableHandle identifies a stored SSTable blob.
type TableHandle int64

// Backend is the storage layer under the LSM tree. Implementations place
// table blobs and the write-ahead log on a device; the LSM logic above is
// identical for both, so E5's comparison isolates placement and the device
// interface.
type Backend interface {
	// PageSize reports the device page size in bytes.
	PageSize() int
	// WriteTable stores blob as a new table. level is a lifetime hint
	// (LSM level): short-lived L0 data and long-lived deep-level data may
	// be placed differently.
	WriteTable(at sim.Time, blob []byte, level int) (TableHandle, sim.Time, error)
	// ReadAt reads bytes [off, off+n) of a table, page-granular underneath.
	ReadAt(at sim.Time, h TableHandle, off, n int) (sim.Time, []byte, error)
	// Delete drops a table, releasing its space.
	Delete(at sim.Time, h TableHandle) error
	// AppendWAL persists n bytes of log; ResetWAL truncates the log after
	// a flush.
	AppendWAL(at sim.Time, n int) (sim.Time, error)
	ResetWAL(at sim.Time) error
	// Counters exposes device-level accounting (write amplification for E5
	// is Counters().WriteAmp()).
	Counters() *stats.Counters
	// Name identifies the backend in reports.
	Name() string
}

// Errors shared by backends.
var (
	ErrNoSpace     = errors.New("zkv: backend out of space")
	ErrBadHandle   = errors.New("zkv: unknown table handle")
	ErrBadReadSpan = errors.New("zkv: read beyond table")
)

// ---------------------------------------------------------------------------
// Conventional backend: a flat LBA space on a block SSD.

type extent struct {
	start int64
	pages int64
}

type convTable struct {
	ext  extent
	size int
}

// AllocPolicy selects how the conventional backend places table extents.
type AllocPolicy int

const (
	// FirstFit packs tables tightly — an idealized, fragmentation-free
	// filesystem (the kindest case for the conventional device).
	FirstFit AllocPolicy = iota
	// ScatterFit spreads allocations across the free space the way general
	// filesystems (ext4/XFS) do to leave room for file growth. Unrelated
	// tables end up sharing erasure blocks, which is what drives the
	// paper's 5x device write amplification for RocksDB on conventional
	// SSDs (§2.4).
	ScatterFit
)

// ConvBackend places tables on a conventional FTL device with an extent
// allocator, exactly as a filesystem over a block SSD would. Deleted
// tables are trimmed (if the device supports it), but their pages still
// force device GC to relocate neighbors — the "block interface tax" of the
// paper's title argument.
type ConvBackend struct {
	dev      *ftl.Device
	policy   AllocPolicy
	rngState uint64
	tables   map[TableHandle]convTable
	free     []extent // sorted by start
	next     TableHandle
	walBase  int64
	walPages int64
	walOff   int64 // bytes appended since last reset
}

// NewConvBackend wraps a conventional device, reserving walPages pages at
// the top of the LBA space as the WAL ring.
func NewConvBackend(dev *ftl.Device, walPages int64) (*ConvBackend, error) {
	if walPages < 1 || walPages >= dev.CapacityPages() {
		return nil, fmt.Errorf("zkv: walPages %d out of range", walPages)
	}
	dataPages := dev.CapacityPages() - walPages
	return &ConvBackend{
		dev:      dev,
		rngState: 0x9e3779b97f4a7c15,
		tables:   make(map[TableHandle]convTable),
		free:     []extent{{start: 0, pages: dataPages}},
		walBase:  dataPages,
		walPages: walPages,
	}, nil
}

// SetAllocPolicy switches the extent allocation policy (default FirstFit).
func (b *ConvBackend) SetAllocPolicy(p AllocPolicy) { b.policy = p }

// Name implements Backend.
func (b *ConvBackend) Name() string { return "conventional" }

// PageSize implements Backend.
func (b *ConvBackend) PageSize() int { return b.dev.PageSize() }

// Counters implements Backend.
func (b *ConvBackend) Counters() *stats.Counters { return b.dev.Counters() }

// Device exposes the underlying FTL device.
func (b *ConvBackend) Device() *ftl.Device { return b.dev }

func (b *ConvBackend) alloc(pages int64) (int64, bool) {
	fits := func(i int) bool { return b.free[i].pages >= pages }
	take := func(i int) int64 {
		start := b.free[i].start
		b.free[i].start += pages
		b.free[i].pages -= pages
		if b.free[i].pages == 0 {
			b.free = append(b.free[:i], b.free[i+1:]...)
		}
		return start
	}
	if b.policy == ScatterFit {
		// Pick uniformly among fitting extents (xorshift, deterministic).
		var candidates []int
		for i := range b.free {
			if fits(i) {
				candidates = append(candidates, i)
			}
		}
		if len(candidates) == 0 {
			return 0, false
		}
		b.rngState ^= b.rngState << 13
		b.rngState ^= b.rngState >> 7
		b.rngState ^= b.rngState << 17
		return take(candidates[b.rngState%uint64(len(candidates))]), true
	}
	for i := range b.free {
		if fits(i) {
			return take(i), true
		}
	}
	return 0, false
}

func (b *ConvBackend) freeExtent(e extent) {
	i := sort.Search(len(b.free), func(i int) bool { return b.free[i].start >= e.start })
	b.free = append(b.free, extent{})
	copy(b.free[i+1:], b.free[i:])
	b.free[i] = e
	// Merge with neighbors.
	if i+1 < len(b.free) && b.free[i].start+b.free[i].pages == b.free[i+1].start {
		b.free[i].pages += b.free[i+1].pages
		b.free = append(b.free[:i+1], b.free[i+2:]...)
	}
	if i > 0 && b.free[i-1].start+b.free[i-1].pages == b.free[i].start {
		b.free[i-1].pages += b.free[i].pages
		b.free = append(b.free[:i], b.free[i+1:]...)
	}
}

// WriteTable implements Backend. The level hint is ignored: a block device
// has no way to use it (§4.1's information barrier).
func (b *ConvBackend) WriteTable(at sim.Time, blob []byte, level int) (TableHandle, sim.Time, error) {
	ps := int64(b.PageSize())
	pages := (int64(len(blob)) + ps - 1) / ps
	start, ok := b.alloc(pages)
	if !ok {
		return 0, at, ErrNoSpace
	}
	done := at
	for p := int64(0); p < pages; p++ {
		lo := p * ps
		hi := lo + ps
		if hi > int64(len(blob)) {
			hi = int64(len(blob))
		}
		d, err := b.dev.WritePage(at, start+p, blob[lo:hi])
		if err != nil {
			return 0, at, err
		}
		done = sim.Max(done, d)
	}
	h := b.next
	b.next++
	b.tables[h] = convTable{ext: extent{start: start, pages: pages}, size: len(blob)}
	return h, done, nil
}

// ReadAt implements Backend.
func (b *ConvBackend) ReadAt(at sim.Time, h TableHandle, off, n int) (sim.Time, []byte, error) {
	t, ok := b.tables[h]
	if !ok {
		return at, nil, ErrBadHandle
	}
	if off < 0 || n < 0 || off+n > t.size {
		return at, nil, ErrBadReadSpan
	}
	ps := int64(b.PageSize())
	out := make([]byte, 0, n)
	done := at
	for pos := int64(off); pos < int64(off+n); {
		page := pos / ps
		inPage := pos % ps
		d, data, err := b.dev.ReadPage(at, t.ext.start+page)
		if err != nil {
			return at, nil, err
		}
		chunk := padTo(data, int(ps))
		take := ps - inPage
		if rem := int64(off+n) - pos; take > rem {
			take = rem
		}
		out = append(out, chunk[inPage:inPage+take]...)
		pos += take
		done = sim.Max(done, d)
	}
	return done, out, nil
}

// Delete implements Backend: trim the extent and return it to the free
// list.
func (b *ConvBackend) Delete(at sim.Time, h TableHandle) error {
	t, ok := b.tables[h]
	if !ok {
		return ErrBadHandle
	}
	if err := b.dev.Trim(at, t.ext.start, t.ext.pages); err != nil {
		return err
	}
	delete(b.tables, h)
	b.freeExtent(t.ext)
	return nil
}

// AppendWAL implements Backend: commits rewrite the WAL tail page in place
// (a random overwrite the FTL absorbs), advancing through a ring of
// walPages.
func (b *ConvBackend) AppendWAL(at sim.Time, n int) (sim.Time, error) {
	if n <= 0 {
		return at, nil
	}
	ps := int64(b.PageSize())
	first := b.walOff / ps
	last := (b.walOff + int64(n) - 1) / ps
	done := at
	for p := first; p <= last; p++ {
		d, err := b.dev.WritePage(at, b.walBase+p%b.walPages, nil)
		if err != nil {
			return at, err
		}
		done = sim.Max(done, d)
	}
	b.walOff += int64(n)
	return done, nil
}

// ResetWAL implements Backend.
func (b *ConvBackend) ResetWAL(at sim.Time) error {
	b.walOff = 0
	return b.dev.Trim(at, b.walBase, b.walPages)
}

// padTo right-pads data with zeros to n bytes.
func padTo(data []byte, n int) []byte {
	if len(data) >= n {
		return data[:n]
	}
	out := make([]byte, n)
	copy(out, data)
	return out
}
