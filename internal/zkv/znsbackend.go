package zkv

import (
	"errors"
	"fmt"

	"blockhead/internal/sim"
	"blockhead/internal/stats"
	"blockhead/internal/zns"
)

// ZNSBackend places tables on a ZNS device the way ZenFS does: each LSM
// level is a write stream with its own open zone, so tables that die
// together (same level, similar age) share zones and most reclamation is a
// bare zone reset with no data movement. This is the mechanism behind the
// paper's §2.4 claim that RocksDB's write amplification drops to ~1.2x on
// ZNS, and a concrete instance of §4.1's lifetime-aware placement.
type ZNSBackend struct {
	dev *zns.Device

	streams   int
	levelZone []int // open zone per stream
	relocZone int
	walZone   int
	freeZones []int

	tables     map[TableHandle]*znsTable
	zoneTables map[int][]TableHandle
	livePages  []int64
	next       TableHandle

	walOff int64 // bytes appended to the WAL zone since reset

	relocatedPages uint64
}

type znsTable struct {
	zone  int
	off   int64
	pages int64
	size  int
	level int
	dead  bool
}

// NewZNSBackend wraps a ZNS device with the given number of level streams
// (levels deeper than streams-1 share the last stream). The device must
// allow streams+2 active zones (streams + relocation + WAL).
func NewZNSBackend(dev *zns.Device, streams int) (*ZNSBackend, error) {
	if streams < 1 {
		streams = 1
	}
	need := streams + 2
	if dev.MaxActive() != 0 && dev.MaxActive() < need {
		return nil, fmt.Errorf("zkv: device allows %d active zones; need %d", dev.MaxActive(), need)
	}
	if dev.NumZones() < need+2 {
		return nil, fmt.Errorf("zkv: %d zones too few for %d streams", dev.NumZones(), streams)
	}
	b := &ZNSBackend{
		dev:        dev,
		streams:    streams,
		levelZone:  make([]int, streams),
		relocZone:  -1,
		walZone:    -1,
		tables:     make(map[TableHandle]*znsTable),
		zoneTables: make(map[int][]TableHandle),
		livePages:  make([]int64, dev.NumZones()),
	}
	for i := range b.levelZone {
		b.levelZone[i] = -1
	}
	for z := 0; z < dev.NumZones(); z++ {
		b.freeZones = append(b.freeZones, z)
	}
	return b, nil
}

// Name implements Backend.
func (b *ZNSBackend) Name() string { return "zns" }

// PageSize implements Backend.
func (b *ZNSBackend) PageSize() int { return b.dev.PageSize() }

// Counters implements Backend.
func (b *ZNSBackend) Counters() *stats.Counters { return b.dev.Counters() }

// Device exposes the underlying ZNS device.
func (b *ZNSBackend) Device() *zns.Device { return b.dev }

// RelocatedPages reports pages moved by zone reclamation — the (small)
// host-side WA source on this backend.
func (b *ZNSBackend) RelocatedPages() uint64 { return b.relocatedPages }

func (b *ZNSBackend) takeFreeZone() (int, bool) {
	for len(b.freeZones) > 0 {
		z := b.freeZones[0]
		b.freeZones = b.freeZones[1:]
		if b.dev.State(z) == zns.Offline || b.dev.WritableCap(z) == 0 {
			continue
		}
		return z, true
	}
	return -1, false
}

// openWithRoom binds *slot to a zone with room for pages, sealing the
// current zone if it cannot fit.
func (b *ZNSBackend) openWithRoom(at sim.Time, slot *int, pages int64) (int, error) {
	for attempt := 0; attempt < 2; attempt++ {
		if *slot < 0 {
			z, ok := b.takeFreeZone()
			if !ok {
				return -1, ErrNoSpace
			}
			*slot = z
		}
		z := *slot
		if b.dev.WritableCap(z)-b.dev.WP(z) >= pages {
			return z, nil
		}
		if err := b.dev.Finish(at, z); err != nil && !errors.Is(err, zns.ErrBadState) {
			return -1, err
		}
		sealed := z
		*slot = -1
		// A sealed zone whose tables are all dead can be reset right away.
		b.maybeRecycle(at, sealed)
	}
	return -1, ErrNoSpace
}

func (b *ZNSBackend) isOpenSlot(z int) bool {
	if z == b.relocZone || z == b.walZone {
		return true
	}
	for _, lz := range b.levelZone {
		if lz == z {
			return true
		}
	}
	return false
}

// maybeRecycle resets a sealed, fully-dead zone.
func (b *ZNSBackend) maybeRecycle(at sim.Time, z int) {
	if b.isOpenSlot(z) || b.livePages[z] != 0 || b.dev.WP(z) == 0 {
		return
	}
	if b.dev.State(z) == zns.Empty || b.dev.State(z) == zns.Offline {
		return
	}
	if _, err := b.dev.Reset(at, z); err != nil {
		return
	}
	delete(b.zoneTables, z)
	b.freeZones = append(b.freeZones, z)
}

// WriteTable implements Backend: the blob is appended to the zone of the
// level's stream.
func (b *ZNSBackend) WriteTable(at sim.Time, blob []byte, level int) (TableHandle, sim.Time, error) {
	ps := int64(b.PageSize())
	pages := (int64(len(blob)) + ps - 1) / ps
	if pages > b.dev.ZonePages() {
		return 0, at, fmt.Errorf("zkv: table of %d pages exceeds zone size %d", pages, b.dev.ZonePages())
	}
	b.reclaim(at)
	stream := level
	if stream >= b.streams {
		stream = b.streams - 1
	}
	z, err := b.openWithRoom(at, &b.levelZone[stream], pages)
	if err != nil {
		return 0, at, err
	}
	off := b.dev.WP(z)
	done := at
	for p := int64(0); p < pages; p++ {
		lo := p * ps
		hi := lo + ps
		if hi > int64(len(blob)) {
			hi = int64(len(blob))
		}
		_, d, err := b.dev.Append(at, z, blob[lo:hi])
		if err != nil {
			return 0, at, err
		}
		done = sim.Max(done, d)
	}
	h := b.next
	b.next++
	b.tables[h] = &znsTable{zone: z, off: off, pages: pages, size: len(blob), level: level}
	b.zoneTables[z] = append(b.zoneTables[z], h)
	b.livePages[z] += pages
	return h, done, nil
}

// ReadAt implements Backend.
func (b *ZNSBackend) ReadAt(at sim.Time, h TableHandle, off, n int) (sim.Time, []byte, error) {
	t, ok := b.tables[h]
	if !ok {
		return at, nil, ErrBadHandle
	}
	if off < 0 || n < 0 || off+n > t.size {
		return at, nil, ErrBadReadSpan
	}
	ps := int64(b.PageSize())
	out := make([]byte, 0, n)
	done := at
	for pos := int64(off); pos < int64(off+n); {
		page := pos / ps
		inPage := pos % ps
		d, data, err := b.dev.Read(at, b.dev.LBA(t.zone, t.off+page))
		if err != nil {
			return at, nil, err
		}
		chunk := padTo(data, int(ps))
		take := ps - inPage
		if rem := int64(off+n) - pos; take > rem {
			take = rem
		}
		out = append(out, chunk[inPage:inPage+take]...)
		pos += take
		done = sim.Max(done, d)
	}
	return done, out, nil
}

// Delete implements Backend: mark the table dead; a sealed zone whose
// tables are all dead is reset immediately — the no-copy reclamation that
// keeps this backend's WA near 1.
func (b *ZNSBackend) Delete(at sim.Time, h TableHandle) error {
	t, ok := b.tables[h]
	if !ok {
		return ErrBadHandle
	}
	t.dead = true
	b.livePages[t.zone] -= t.pages
	delete(b.tables, h)
	b.maybeRecycle(at, t.zone)
	return nil
}

// reclaim frees zones when the pool runs low by relocating the live tables
// of the deadest sealed zone (via simple copy) and resetting it. Work per
// call is bounded: at most a few victims, so one WriteTable never absorbs
// an unbounded compaction of the whole device — remaining pressure is
// spread across subsequent writes.
func (b *ZNSBackend) reclaim(at sim.Time) {
	const maxVictims = 4
	for v := 0; v < maxVictims && len(b.freeZones) <= 2; v++ {
		victim := -1
		var bestDead int64
		for z := 0; z < b.dev.NumZones(); z++ {
			if b.isOpenSlot(z) {
				continue
			}
			st := b.dev.State(z)
			if st == zns.Empty || st == zns.Offline || b.dev.WP(z) == 0 {
				continue
			}
			dead := b.dev.WP(z) - b.livePages[z]
			if dead <= 0 {
				continue
			}
			if victim < 0 || dead > bestDead {
				victim, bestDead = z, dead
			}
		}
		if victim < 0 {
			return
		}
		if !b.relocateZone(at, victim) {
			return
		}
	}
}

func (b *ZNSBackend) relocateZone(at sim.Time, victim int) bool {
	for _, h := range b.zoneTables[victim] {
		t, ok := b.tables[h]
		if !ok || t.dead || t.zone != victim {
			continue
		}
		dz, err := b.openWithRoom(at, &b.relocZone, t.pages)
		if err != nil {
			return false
		}
		srcs := make([]int64, t.pages)
		for p := range srcs {
			srcs[p] = b.dev.LBA(victim, t.off+int64(p))
		}
		newOff := b.dev.WP(dz)
		if _, _, err := b.dev.SimpleCopy(at, srcs, dz); err != nil {
			return false
		}
		b.livePages[victim] -= t.pages
		b.livePages[dz] += t.pages
		t.zone, t.off = dz, newOff
		b.zoneTables[dz] = append(b.zoneTables[dz], h)
		b.relocatedPages += uint64(t.pages)
	}
	delete(b.zoneTables, victim)
	if _, err := b.dev.Reset(at, victim); err != nil {
		return false
	}
	b.livePages[victim] = 0
	b.freeZones = append(b.freeZones, victim)
	return true
}

// AppendWAL implements Backend: commits append to a dedicated WAL zone (no
// in-place tail rewrite exists on zones; each commit appends the pages it
// touches, matching the conventional backend's page count).
func (b *ZNSBackend) AppendWAL(at sim.Time, n int) (sim.Time, error) {
	if n <= 0 {
		return at, nil
	}
	ps := int64(b.PageSize())
	first := b.walOff / ps
	last := (b.walOff + int64(n) - 1) / ps
	pages := last - first + 1
	done := at
	for p := int64(0); p < pages; p++ {
		z, err := b.openWithRoom(at, &b.walZone, 1)
		if err != nil {
			return at, err
		}
		_, d, err := b.dev.Append(at, z, nil)
		if err != nil {
			return at, err
		}
		done = sim.Max(done, d)
	}
	b.walOff += int64(n)
	return done, nil
}

// ResetWAL implements Backend: the WAL zone is reset wholesale.
func (b *ZNSBackend) ResetWAL(at sim.Time) error {
	b.walOff = 0
	if b.walZone < 0 {
		return nil
	}
	z := b.walZone
	b.walZone = -1
	if _, err := b.dev.Reset(at, z); err != nil {
		return err
	}
	b.freeZones = append(b.freeZones, z)
	return nil
}
