package zkv

import (
	"bytes"
	"errors"
	"testing"

	"blockhead/internal/flash"
	"blockhead/internal/ftl"
	"blockhead/internal/sim"
	"blockhead/internal/zns"
)

func convBackend(t *testing.T) *ConvBackend {
	t.Helper()
	dev, err := ftl.New(ftl.Config{
		Geom: flash.Geometry{Channels: 2, DiesPerChan: 2, PlanesPerDie: 1,
			BlocksPerLUN: 32, PagesPerBlock: 16, PageSize: 512},
		Lat:               flash.LatenciesFor(flash.TLC),
		OPFraction:        0.1,
		HotColdSeparation: true,
		TrimSupported:     true,
		StoreData:         true,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewConvBackend(dev, 8)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func znsBackend(t *testing.T) *ZNSBackend {
	t.Helper()
	dev, err := zns.New(zns.Config{
		Geom: flash.Geometry{Channels: 2, DiesPerChan: 2, PlanesPerDie: 1,
			BlocksPerLUN: 32, PagesPerBlock: 16, PageSize: 512},
		Lat:        flash.LatenciesFor(flash.TLC),
		ZoneBlocks: 4, // 32 zones x 64 pages x 512B = 32 KiB zones
		StoreData:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewZNSBackend(dev, 3)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func backends(t *testing.T) map[string]Backend {
	return map[string]Backend{"conv": convBackend(t), "zns": znsBackend(t)}
}

func TestBackendTableRoundTrip(t *testing.T) {
	for name, b := range backends(t) {
		blob := bytes.Repeat([]byte("0123456789abcdef"), 100) // 1600 B, >3 pages
		h, done, err := b.WriteTable(0, blob, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if done <= 0 {
			t.Errorf("%s: write took no time", name)
		}
		// Full read.
		_, got, err := b.ReadAt(done, h, 0, len(blob))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !bytes.Equal(got, blob) {
			t.Errorf("%s: full round trip failed", name)
		}
		// Unaligned sub-range.
		_, got, err = b.ReadAt(done, h, 513, 700)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !bytes.Equal(got, blob[513:1213]) {
			t.Errorf("%s: sub-range read wrong", name)
		}
		// Span errors.
		if _, _, err = b.ReadAt(done, h, 0, len(blob)+1); !errors.Is(err, ErrBadReadSpan) {
			t.Errorf("%s: over-read: %v", name, err)
		}
		if _, _, err = b.ReadAt(done, TableHandle(999), 0, 1); !errors.Is(err, ErrBadHandle) {
			t.Errorf("%s: bad handle: %v", name, err)
		}
		// Delete, then the handle is gone.
		if err := b.Delete(done, h); err != nil {
			t.Fatalf("%s: delete: %v", name, err)
		}
		if err := b.Delete(done, h); !errors.Is(err, ErrBadHandle) {
			t.Errorf("%s: double delete: %v", name, err)
		}
	}
}

func TestBackendWAL(t *testing.T) {
	for name, b := range backends(t) {
		var at sim.Time
		before := b.Counters().HostWritePages
		for i := 0; i < 20; i++ {
			var err error
			at, err = b.AppendWAL(at, 100)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
		if b.Counters().HostWritePages == before {
			t.Errorf("%s: WAL wrote no pages", name)
		}
		if err := b.ResetWAL(at); err != nil {
			t.Fatalf("%s: reset: %v", name, err)
		}
		// WAL continues after reset.
		if _, err := b.AppendWAL(at, 100); err != nil {
			t.Fatalf("%s: append after reset: %v", name, err)
		}
		// Zero-byte appends are free.
		c := b.Counters().HostWritePages
		b.AppendWAL(at, 0)
		if b.Counters().HostWritePages != c {
			t.Errorf("%s: empty append wrote pages", name)
		}
	}
}

func TestConvExtentReuse(t *testing.T) {
	b := convBackend(t)
	blob := make([]byte, 4*512)
	var hs []TableHandle
	var at sim.Time
	// Fill most of the data area, delete everything, fill again: the
	// allocator must reuse freed extents.
	cap := b.dev.CapacityPages() - b.walPages
	n := int(cap / 4)
	for i := 0; i < n; i++ {
		h, done, err := b.WriteTable(at, blob, 0)
		if err != nil {
			t.Fatalf("fill %d/%d: %v", i, n, err)
		}
		at = done
		hs = append(hs, h)
	}
	if _, _, err := b.WriteTable(at, blob, 0); !errors.Is(err, ErrNoSpace) {
		t.Errorf("overfull write: %v", err)
	}
	for _, h := range hs {
		if err := b.Delete(at, h); err != nil {
			t.Fatal(err)
		}
	}
	// Free list must have coalesced back to one extent.
	if len(b.free) != 1 || b.free[0].pages != cap {
		t.Errorf("free list after full delete: %+v (cap %d)", b.free, cap)
	}
	for i := 0; i < n; i++ {
		var err error
		_, at, err = b.WriteTable(at, blob, 0)
		if err != nil {
			t.Fatalf("refill %d: %v", i, err)
		}
	}
}

func TestZNSLevelSeparation(t *testing.T) {
	b := znsBackend(t)
	blob := make([]byte, 2*512)
	h0, _, err := b.WriteTable(0, blob, 0)
	if err != nil {
		t.Fatal(err)
	}
	h2, _, err := b.WriteTable(0, blob, 2)
	if err != nil {
		t.Fatal(err)
	}
	if b.tables[h0].zone == b.tables[h2].zone {
		t.Error("different levels share a zone")
	}
	// Levels beyond the stream count share the last stream's zone.
	h5, _, err := b.WriteTable(0, blob, 5)
	if err != nil {
		t.Fatal(err)
	}
	if b.tables[h5].zone != b.tables[h2].zone {
		t.Error("deep level did not fold into the last stream")
	}
}

func TestZNSDeadZoneResetWithoutCopy(t *testing.T) {
	b := znsBackend(t)
	// Fill one zone with tables, seal it by rolling, delete all: the zone
	// must come back without any simple copy.
	blob := make([]byte, 16*512) // 16 pages; zone = 64 pages
	var hs []TableHandle
	var at sim.Time
	for i := 0; i < 8; i++ { // spills into a second zone, sealing the first
		h, done, err := b.WriteTable(at, blob, 0)
		if err != nil {
			t.Fatal(err)
		}
		at = done
		hs = append(hs, h)
	}
	for _, h := range hs[:4] { // all tables of the first (sealed) zone
		if err := b.Delete(at, h); err != nil {
			t.Fatal(err)
		}
	}
	if b.Counters().GCCopyPages != 0 {
		t.Errorf("reclaiming a dead zone copied %d pages; want 0", b.Counters().GCCopyPages)
	}
	if b.Device().Resets() == 0 {
		t.Error("dead zone was not reset")
	}
}

func TestZNSReclaimRelocatesSurvivors(t *testing.T) {
	b := znsBackend(t)
	blob := make([]byte, 8*512)
	var at sim.Time
	var live []TableHandle
	del := func(i int) {
		// Pseudo-random victim so survivors scatter across zones and
		// reclamation cannot always find a fully-dead zone.
		j := (i * 13) % len(live)
		victim := live[j]
		live = append(live[:j], live[j+1:]...)
		if err := b.Delete(at, victim); err != nil {
			t.Fatal(err)
		}
	}
	// Churn tables, deleting ~7/8 of them; the slowly-growing survivor set
	// fragments across zones until the free pool dries up and reclamation
	// must relocate.
	for i := 0; i < 1200; i++ {
		h, done, err := b.WriteTable(at, blob, 0)
		if err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		at = done
		live = append(live, h)
		if i%8 != 0 && len(live) > 1 {
			del(i)
		}
		for len(live) > 140 {
			del(i + 7)
		}
	}
	// Survivors must still read back.
	for _, h := range live {
		if _, _, err := b.ReadAt(at, h, 0, 8*512); err != nil {
			t.Fatalf("survivor read: %v", err)
		}
	}
	if b.RelocatedPages() == 0 {
		t.Error("expected some relocation under this churn")
	}
}

func TestBackendNames(t *testing.T) {
	if convBackend(t).Name() != "conventional" || znsBackend(t).Name() != "zns" {
		t.Error("backend names wrong")
	}
}
