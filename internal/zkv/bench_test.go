package zkv

import (
	"fmt"
	"testing"

	"blockhead/internal/flash"
	"blockhead/internal/sim"
	"blockhead/internal/workload"
	"blockhead/internal/zns"
)

func BenchmarkMemtablePut(b *testing.B) {
	m := newMemtable(1)
	keys := make([][]byte, 1024)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key%08d", i*7919%100000))
	}
	val := make([]byte, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.put(keys[i%len(keys)], val)
	}
}

func BenchmarkMemtableGet(b *testing.B) {
	m := newMemtable(1)
	for i := 0; i < 10000; i++ {
		m.put([]byte(fmt.Sprintf("key%08d", i)), []byte("v"))
	}
	probe := []byte("key00005000")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := m.get(probe); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkTableBuilder(b *testing.B) {
	keys := make([][]byte, 1000)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key%08d", i))
	}
	val := make([]byte, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb := newTableBuilder()
		for _, k := range keys {
			tb.add(k, val)
		}
		blob, _ := tb.finish()
		if len(blob) == 0 {
			b.Fatal("empty blob")
		}
	}
}

func benchZNSDB(b *testing.B) *DB {
	b.Helper()
	dev, err := zns.New(zns.Config{
		Geom: flash.Geometry{Channels: 4, DiesPerChan: 2, PlanesPerDie: 1,
			BlocksPerLUN: 24, PagesPerBlock: 64, PageSize: 4096},
		Lat: flash.LatenciesFor(flash.TLC), ZoneBlocks: 4, StoreData: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	backend, err := NewZNSBackend(dev, 4)
	if err != nil {
		b.Fatal(err)
	}
	return Open(backend, Options{MemtableBytes: 64 << 10, BaseLevelBytes: 256 << 10,
		TableTargetBytes: 32 << 10, Seed: 1})
}

// BenchmarkDBPut measures the full LSM write path (WAL + memtable +
// amortized flush/compaction) on the ZNS backend.
func BenchmarkDBPut(b *testing.B) {
	db := benchZNSDB(b)
	keys := workload.NewUniform(workload.NewSource(1), 5000)
	val := make([]byte, 128)
	var at sim.Time
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		at, err = db.Put(at, []byte(fmt.Sprintf("key%08d", keys.Next())), val)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDBGet measures point lookups against a populated tree.
func BenchmarkDBGet(b *testing.B) {
	db := benchZNSDB(b)
	var at sim.Time
	for i := 0; i < 5000; i++ {
		at, _ = db.Put(at, []byte(fmt.Sprintf("key%08d", i)), make([]byte, 128))
	}
	keys := workload.NewUniform(workload.NewSource(2), 5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, found, err := db.Get(at, []byte(fmt.Sprintf("key%08d", keys.Next())))
		if err != nil || !found {
			b.Fatalf("get: %v found=%v", err, found)
		}
	}
}
