package zkv

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"blockhead/internal/sim"
)

func TestScanBasic(t *testing.T) {
	db := Open(bigZNSBackend(t), testOpts())
	var at sim.Time
	for i := 0; i < 100; i++ {
		at, _ = db.Put(at, key(i), value(fmt.Sprintf("v%d", i)))
	}
	at, _ = db.Flush(at)
	// Range [20, 30).
	var got []string
	_, err := db.Scan(at, key(20), key(30), func(k, v []byte) bool {
		got = append(got, string(v))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 || got[0] != "v20" || got[9] != "v29" {
		t.Fatalf("scan [20,30) = %v", got)
	}
	// Open-ended scan covers everything from start.
	n := 0
	db.Scan(at, key(90), nil, func(k, v []byte) bool { n++; return true })
	if n != 10 {
		t.Errorf("open-ended scan from 90: %d entries, want 10", n)
	}
	// Early stop.
	n = 0
	db.Scan(at, key(0), nil, func(k, v []byte) bool { n++; return n < 5 })
	if n != 5 {
		t.Errorf("early-stop scan: %d entries, want 5", n)
	}
}

func TestScanNewestWinsAndTombstones(t *testing.T) {
	db := Open(bigZNSBackend(t), testOpts())
	var at sim.Time
	at, _ = db.Put(at, key(1), value("old"))
	at, _ = db.Put(at, key(2), value("dead"))
	at, _ = db.Flush(at) // both now in a table
	at, _ = db.Put(at, key(1), value("new"))
	at, _ = db.Delete(at, key(2)) // tombstone in memtable shadows the table
	got := map[string]string{}
	_, err := db.Scan(at, key(0), key(10), func(k, v []byte) bool {
		got[string(k)] = string(v)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[string(key(1))] != "new" {
		t.Fatalf("scan = %v; want only key 1 -> new", got)
	}
}

// Model check: Scan must agree with a sorted map across heavy churn on
// both backends.
func TestScanModelCheck(t *testing.T) {
	for name, b := range dbBackends(t) {
		db := Open(b, testOpts())
		model := map[string]string{}
		rng := rand.New(rand.NewSource(11))
		var at sim.Time
		for i := 0; i < 6000; i++ {
			k := key(rng.Intn(800))
			if rng.Intn(8) == 0 {
				at, _ = db.Delete(at, k)
				delete(model, string(k))
			} else {
				v := fmt.Sprintf("v%d", i)
				at, _ = db.Put(at, k, value(v))
				model[string(k)] = v
			}
		}
		// Full scan.
		var keys []string
		got := map[string]string{}
		_, err := db.Scan(at, key(0), nil, func(k, v []byte) bool {
			keys = append(keys, string(k))
			got[string(k)] = string(v)
			return true
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !sort.StringsAreSorted(keys) {
			t.Fatalf("%s: scan out of order", name)
		}
		if len(got) != len(model) {
			t.Fatalf("%s: scan saw %d keys, model has %d", name, len(got), len(model))
		}
		for k, v := range model {
			if got[k] != v {
				t.Fatalf("%s: key %q = %q, want %q", name, k, got[k], v)
			}
		}
		// Sub-range scan agrees with a filtered model.
		lo, hi := key(200), key(400)
		want := 0
		for k := range model {
			if k >= string(lo) && k < string(hi) {
				want++
			}
		}
		n := 0
		db.Scan(at, lo, hi, func(k, v []byte) bool { n++; return true })
		if n != want {
			t.Fatalf("%s: range scan saw %d, want %d", name, n, want)
		}
	}
}

func TestScanEmptyDB(t *testing.T) {
	db := Open(bigZNSBackend(t), testOpts())
	n := 0
	_, err := db.Scan(0, key(0), nil, func(k, v []byte) bool { n++; return true })
	if err != nil || n != 0 {
		t.Errorf("empty scan: n=%d err=%v", n, err)
	}
}
