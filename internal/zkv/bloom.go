package zkv

import (
	"encoding/binary"
	"hash/fnv"
)

// bloom is a split-free Bloom filter with double hashing (the
// Kirsch-Mitzenmacher construction LevelDB uses). It keeps point lookups
// for absent keys from touching flash at all: a probe that fails the
// filter skips the table without any I/O.
type bloom struct {
	bits []byte
	k    uint32 // hash functions
}

// bloomBitsPerKey trades memory for false-positive rate; 10 bits/key gives
// ~1% FPR with k = 7, the classic LSM configuration.
const bloomBitsPerKey = 10

// newBloom sizes a filter for n keys.
func newBloom(n int) *bloom {
	if n < 1 {
		n = 1
	}
	bits := n * bloomBitsPerKey
	if bits < 64 {
		bits = 64
	}
	kf := float64(bloomBitsPerKey) * 0.69 // ln 2
	k := uint32(kf)
	if k < 1 {
		k = 1
	}
	if k > 30 {
		k = 30
	}
	return &bloom{bits: make([]byte, (bits+7)/8), k: k}
}

func bloomHash(key []byte) uint64 {
	h := fnv.New64a()
	h.Write(key)
	return h.Sum64()
}

func (b *bloom) add(key []byte) {
	h := bloomHash(key)
	h1, h2 := uint32(h), uint32(h>>32)
	n := uint32(len(b.bits) * 8)
	for i := uint32(0); i < b.k; i++ {
		bit := (h1 + i*h2) % n
		b.bits[bit/8] |= 1 << (bit % 8)
	}
}

func (b *bloom) mayContain(key []byte) bool {
	if b == nil || len(b.bits) == 0 {
		return true // no filter: cannot exclude
	}
	h := bloomHash(key)
	h1, h2 := uint32(h), uint32(h>>32)
	n := uint32(len(b.bits) * 8)
	for i := uint32(0); i < b.k; i++ {
		bit := (h1 + i*h2) % n
		if b.bits[bit/8]&(1<<(bit%8)) == 0 {
			return false
		}
	}
	return true
}

// marshal serializes the filter as k (uvarint) followed by the bit array.
func (b *bloom) marshal() []byte {
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(b.k))
	out := make([]byte, 0, n+len(b.bits))
	out = append(out, hdr[:n]...)
	return append(out, b.bits...)
}

// unmarshalBloom parses a marshaled filter; a nil/empty buffer yields nil
// (no filter).
func unmarshalBloom(buf []byte) (*bloom, error) {
	if len(buf) == 0 {
		return nil, nil
	}
	k, n := binary.Uvarint(buf)
	if n <= 0 || k == 0 || k > 64 {
		return nil, ErrCorrupt
	}
	return &bloom{bits: append([]byte(nil), buf[n:]...), k: uint32(k)}, nil
}
