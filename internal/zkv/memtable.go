// Package zkv is a from-scratch log-structured merge-tree key-value store
// with two storage backends: a conventional block SSD and a zone-native ZNS
// layout. It stands in for RocksDB in the paper's §2.4 evidence — "RocksDB's
// write amplification drops from 5x to 1.2x on ZNS SSDs", "2-4x lower read
// tail latency, 2x higher write throughput" — and for the §4.1 observation
// that LSM levels are natural lifetime classes.
//
// The store has the standard shape: a write-ahead log, a skiplist memtable,
// sorted-string tables flushed to L0, and leveled compaction with a 10x
// size ratio. What differs per backend is only placement: the conventional
// backend scatters tables over a flat LBA space (leaving garbage collection
// to the device FTL), while the ZNS backend groups tables into zones by
// level, so whole zones die together and are reset rather than collected.
package zkv

import (
	"bytes"
	"math/rand"
)

const maxSkipLevel = 12

type skipNode struct {
	key   []byte
	value []byte // nil means tombstone
	next  [maxSkipLevel]*skipNode
}

// memtable is a skiplist-backed sorted map. Values of nil are tombstones.
type memtable struct {
	head  *skipNode
	rng   *rand.Rand
	level int
	n     int
	bytes int64
}

func newMemtable(seed int64) *memtable {
	return &memtable{
		head:  &skipNode{},
		rng:   rand.New(rand.NewSource(seed)),
		level: 1,
	}
}

func (m *memtable) randomLevel() int {
	lvl := 1
	for lvl < maxSkipLevel && m.rng.Intn(4) == 0 {
		lvl++
	}
	return lvl
}

// put inserts or replaces key. value == nil records a tombstone.
func (m *memtable) put(key, value []byte) {
	var update [maxSkipLevel]*skipNode
	x := m.head
	for i := m.level - 1; i >= 0; i-- {
		for x.next[i] != nil && bytes.Compare(x.next[i].key, key) < 0 {
			x = x.next[i]
		}
		update[i] = x
	}
	if nxt := x.next[0]; nxt != nil && bytes.Equal(nxt.key, key) {
		m.bytes += int64(len(value) - len(nxt.value))
		nxt.value = value
		return
	}
	lvl := m.randomLevel()
	if lvl > m.level {
		for i := m.level; i < lvl; i++ {
			update[i] = m.head
		}
		m.level = lvl
	}
	node := &skipNode{key: key, value: value}
	for i := 0; i < lvl; i++ {
		node.next[i] = update[i].next[i]
		update[i].next[i] = node
	}
	m.n++
	m.bytes += int64(len(key) + len(value) + 24)
}

// get returns the stored value and whether the key is present. A present
// key with nil value is a tombstone (found=true, value=nil).
func (m *memtable) get(key []byte) (value []byte, found bool) {
	x := m.head
	for i := m.level - 1; i >= 0; i-- {
		for x.next[i] != nil && bytes.Compare(x.next[i].key, key) < 0 {
			x = x.next[i]
		}
	}
	if nxt := x.next[0]; nxt != nil && bytes.Equal(nxt.key, key) {
		return nxt.value, true
	}
	return nil, false
}

// len reports the number of entries (including tombstones).
func (m *memtable) len() int { return m.n }

// sizeBytes reports the approximate memory footprint.
func (m *memtable) sizeBytes() int64 { return m.bytes }

// iter returns an in-order iterator positioned before the first entry.
func (m *memtable) iter() *memIter { return &memIter{node: m.head} }

type memIter struct {
	node *skipNode
}

// next advances and reports whether an entry is available.
func (it *memIter) next() bool {
	it.node = it.node.next[0]
	return it.node != nil
}

func (it *memIter) key() []byte   { return it.node.key }
func (it *memIter) value() []byte { return it.node.value }
