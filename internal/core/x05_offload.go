package core

import (
	"fmt"

	"blockhead/internal/flash"
	"blockhead/internal/hostftl"
	"blockhead/internal/offload"
	"blockhead/internal/sim"
	"blockhead/internal/workload"
	"blockhead/internal/zns"
)

func init() {
	register(Experiment{
		ID:         "X5",
		Title:      "Extension: host CPUs vs dedicated offload hardware for the ZNS stack (§4.2)",
		PaperClaim: "\"hyperscalers are embracing ZNS, which shifts responsibilities to the host... [while] offloading I/O processing from host CPUs to dedicated hardware. This apparent contradiction calls for academic scrutiny.\"",
		Run:        runX5,
	})
}

// X5MeasureWork runs the host translation layer under steady random churn
// with paced maintenance and returns its measured per-request CPU work.
func X5MeasureWork(cfg Config) (offload.Work, error) {
	dev, err := zns.New(zns.Config{
		Geom: flash.Geometry{Channels: 4, DiesPerChan: 1, PlanesPerDie: 1,
			BlocksPerLUN: 64, PagesPerBlock: 64, PageSize: 4096},
		Lat:        flash.LatenciesFor(flash.TLC),
		ZoneBlocks: 1,
	})
	if err != nil {
		return offload.Work{}, err
	}
	f, err := hostftl.New(dev, hostftl.Config{
		OPFraction: 0.15, ZonesPerStream: 4,
		UseSimpleCopy: true, GCMode: hostftl.GCIncremental,
	})
	if err != nil {
		return offload.Work{}, err
	}
	var at sim.Time
	for lpn := int64(0); lpn < f.CapacityPages(); lpn++ {
		if at, err = f.Write(at, lpn, nil); err != nil {
			return offload.Work{}, err
		}
	}
	churn := 3 * f.CapacityPages()
	if cfg.Quick {
		churn = f.CapacityPages()
	}
	keys := workload.NewUniform(workload.NewSource(cfg.Seed), f.CapacityPages())
	m0, r0, t0 := f.WorkStats()
	w0 := f.HostWrites()
	for i := int64(0); i < churn; i++ {
		if at, err = f.Write(at, keys.Next(), nil); err != nil {
			return offload.Work{}, err
		}
		if i%4 == 0 { // paced maintenance, as in E6
			f.MaintenanceStep(at, 2, 12)
		}
	}
	m1, r1, t1 := f.WorkStats()
	reqs := float64(f.HostWrites() - w0)
	return offload.Work{
		MapOps:     float64(m1-m0) / reqs,
		RelocPages: float64(r1-r0) / reqs,
		MaintTicks: float64(t1-t0) / reqs,
	}, nil
}

func runX5(cfg Config) (Report, error) {
	r := Report{
		ID:         "X5",
		Title:      "Pricing the host-resident ZNS stack against a dedicated SoC",
		PaperClaim: "decide per deployment: below a throughput threshold, host cores are cheaper; above it, the offload card wins",
		Header:     []string{"Request rate", "Host cores", "Host $", "SoC cores", "SoC $", "Cheaper"},
	}
	w, err := X5MeasureWork(cfg)
	if err != nil {
		return r, err
	}
	m := offload.DefaultCostModel()
	if err := m.Validate(); err != nil {
		return r, err
	}
	for _, rate := range []float64{50e3, 200e3, 500e3, 1e6, 2e6} {
		host := m.HostUSD(w, rate)
		soc := m.SoCUSD(w, rate)
		cheaper := "host"
		if soc < host {
			cheaper = "SoC"
		}
		r.AddRow(fmt.Sprintf("%.0fk req/s", rate/1e3),
			fmt.Sprintf("%.3f", m.HostCores(w, rate)),
			fmt.Sprintf("$%.2f", host),
			fmt.Sprintf("%.3f", m.SoCCores(w, rate)),
			fmt.Sprintf("$%.2f", soc),
			cheaper)
	}
	r.AddNote("measured host work per 4K request: %.2f map ops, %.3f relocation pages, %.3f maintenance ticks",
		w.MapOps, w.RelocPages, w.MaintTicks)
	if be := m.BreakEvenReqPerSec(w); be > 0 {
		r.AddNote("break-even: offload pays for itself above %.0fk req/s per device", be/1e3)
	}
	r.AddNote("Accelerometer-style model (cycles and prices in internal/offload); the work")
	r.AddNote("counts are measured from the simulated translation layer, not assumed")
	return r, nil
}
