package core

import (
	"strings"
	"testing"

	"blockhead/internal/sim"
	"blockhead/internal/telemetry"
	"blockhead/internal/telemetry/critpath"
)

// assertExactPaths checks the critical-path recorder's hard invariant on
// one stack's snapshot: zero violations over the whole run, and — as an
// independent re-check, not trusting the recorder's own counter — every
// sampled path's per-phase ticks summing exactly to its end-to-end total.
func assertExactPaths(t *testing.T, seed int64, name string, crit critpath.Snapshot) {
	t.Helper()
	if crit.IOs == 0 {
		t.Fatalf("seed %d %s: no paths recorded", seed, name)
	}
	if crit.Violations != 0 {
		t.Fatalf("seed %d %s: %d path invariant violations over %d IOs",
			seed, name, crit.Violations, crit.IOs)
	}
	if len(crit.Paths) == 0 {
		t.Fatalf("seed %d %s: empty path reservoir (%d IOs)", seed, name, crit.IOs)
	}
	for i := range crit.Paths {
		rec := &crit.Paths[i]
		var sum sim.Time
		for p := 0; p < telemetry.NumPhases; p++ {
			sum += rec.Path[p]
		}
		if sum != rec.Total {
			t.Fatalf("seed %d %s: sampled path %d (%s): phase sum %d != total %d ns",
				seed, name, i, rec.Op, sum, rec.Total)
		}
	}
}

// TestCritPathExactnessProperty is the recorder's property test: across
// three seeds and both E4 stacks (conventional FTL under device GC; ZNS
// under host-scheduled resets), every recorded critical path sums exactly
// — zero-tick slack — to its IO's end-to-end latency. `make test` runs
// this under -race, so the single-threaded recorder contract is checked
// too.
func TestCritPathExactnessProperty(t *testing.T) {
	for _, seed := range []int64{3, 17, 101} {
		cfg := Config{Quick: true, Seed: seed}
		conv, err := E4Conventional(cfg)
		if err != nil {
			t.Fatal(err)
		}
		assertExactPaths(t, seed, conv.Name, conv.Crit)
		zres, err := E4ZNS(cfg)
		if err != nil {
			t.Fatal(err)
		}
		assertExactPaths(t, seed, zres.Name, zres.Crit)
	}
}

// TestCritPathAllExperiments sweeps every registered experiment and fails
// if any critical-path section it produced recorded a violation: the
// invariant must hold exactly across the whole registry, not just the
// stacks the property test drives directly.
func TestCritPathAllExperiments(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			rep, err := e.Run(quickCfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, cs := range rep.Crit {
				if cs.Snap.Violations != 0 {
					t.Errorf("%s %s: %d path invariant violations",
						e.ID, cs.Name, cs.Snap.Violations)
				}
			}
		})
	}
}

// whatIfRun reduces either experiment result type to what the ground-truth
// comparison needs.
type whatIfRun struct {
	readMean sim.Time
	readP99  sim.Time
	writeP99 sim.Time
	crit     critpath.Snapshot
	opts     critpath.PredictOpts
}

// whatIfCheck is one validated prediction: under `scenario`, the replayed
// ratio for `metric` must match the ground-truth re-run within `tol`
// (absolute gap between the two ratios).
//
// The validated set is the replay model's accuracy envelope, calibrated
// against quick-mode reruns and documented in docs/observability.md:
// direct-effect metrics (the scaled phase sits on the measured op's own
// path) hold within a few points, and null counterfactuals (the phase
// never occurs on the stack) are exact. Metrics dominated by closed-loop
// queueing feedback — where speeding one op class changes the offered
// load on another — are NOT in this set; the static replay keeps the
// recorded schedule frozen and cannot see that feedback, which the doc
// spells out with measured examples.
type whatIfCheck struct {
	scenario string
	metric   string // "read_mean", "read_p99", "write_p99"
	tol      float64
}

// measured extracts one metric's ground-truth ratio (counterfactual over
// factual) and the matching prediction ratio.
func (c whatIfCheck) measured(t *testing.T, name string, factual, counter whatIfRun, preds []critpath.Prediction) (pred, meas float64) {
	t.Helper()
	op := "read"
	if c.metric == "write_p99" {
		op = "write"
	}
	for _, p := range preds {
		if p.Op != op || p.Tenant != -1 {
			continue
		}
		switch c.metric {
		case "read_mean":
			return p.MeanRatio, ratioOf(t, name, counter.readMean, factual.readMean)
		case "read_p99":
			return p.P99Ratio, ratioOf(t, name, counter.readP99, factual.readP99)
		case "write_p99":
			return p.P99Ratio, ratioOf(t, name, counter.writeP99, factual.writeP99)
		}
	}
	t.Fatalf("%s: no %s prediction for %s", name, op, c.scenario)
	return 0, 0
}

func ratioOf(t *testing.T, name string, counter, factual sim.Time) float64 {
	t.Helper()
	if factual <= 0 {
		t.Fatalf("%s: factual metric is zero", name)
	}
	return float64(counter) / float64(factual)
}

// assertWhatIf validates one (runner, scenario) pair end to end: predict
// from the factual run's recorded paths, re-run the same experiment with
// the scenario's scalings applied to the actual timing parameters
// (cfg.Scenario — the same path `znsbench -whatif` drives), compare.
func assertWhatIf(t *testing.T, name string, run func(Config) (whatIfRun, error), checks []whatIfCheck) {
	t.Helper()
	factual, err := run(Config{Quick: true, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	byScenario := map[string]whatIfRun{}
	for _, c := range checks {
		sc := critpath.MustScenario(c.scenario)
		counter, ok := byScenario[c.scenario]
		if !ok {
			if counter, err = run(Config{Quick: true, Seed: 42, Scenario: &sc}); err != nil {
				t.Fatal(err)
			}
			byScenario[c.scenario] = counter
		}
		pred, meas := c.measured(t, name, factual, counter, factual.crit.Predict(sc, factual.opts))
		gap := pred - meas
		t.Logf("%s %s %s: predicted x%.3f, ground truth x%.3f (gap %+.3f, tol %.3f)",
			name, c.scenario, c.metric, pred, meas, gap, c.tol)
		if gap > c.tol || gap < -c.tol {
			t.Errorf("%s %s %s: predicted %.3f, ground truth %.3f (|gap| > %.3f)",
				name, c.scenario, c.metric, pred, meas, c.tol)
		}
	}
}

func e4ConvRun(cfg Config) (whatIfRun, error) {
	r, err := E4Conventional(cfg)
	return whatIfRun{r.ReadMean, r.ReadP99, r.WriteP99, r.Crit, r.CritOpts}, err
}

func e4ZNSRun(cfg Config) (whatIfRun, error) {
	r, err := E4ZNS(cfg)
	return whatIfRun{r.ReadMean, r.ReadP99, r.WriteP99, r.Crit, r.CritOpts}, err
}

func e6ConvRun(cfg Config) (whatIfRun, error) {
	r, err := E6Conventional(cfg)
	return whatIfRun{r.ReadMean, r.ReadP99, r.WriteP99, r.Crit, r.CritOpts}, err
}

func e6HostRun(cfg Config) (whatIfRun, error) {
	r, err := E6HostFTL(cfg)
	return whatIfRun{r.ReadMean, r.ReadP99, r.WriteP99, r.Crit, r.CritOpts}, err
}

// TestWhatIfMatchesGroundTruthE4 validates the what-if engine against
// reality on both E4 stacks. The headline prediction: with zone resets
// free, the ZNS write tail collapses ~5x — and the replayed ratio lands
// within 0.05 of the re-run's. Null counterfactuals on the conventional
// stack (it has no resets and no write pointer) must predict "no change"
// exactly.
func TestWhatIfMatchesGroundTruthE4(t *testing.T) {
	if testing.Short() {
		t.Skip("re-runs experiments; skipped in -short")
	}
	assertWhatIf(t, "E4/conventional", e4ConvRun, []whatIfCheck{
		{"zone_reset:0", "read_mean", 0.01},
		{"zone_reset:0", "read_p99", 0.01},
		{"wp_serial:0", "read_mean", 0.01},
	})
	assertWhatIf(t, "E4/zns", e4ZNSRun, []whatIfCheck{
		{"zone_reset:0", "write_p99", 0.05},
		{"zone_reset:0.5", "write_p99", 0.05},
		{"nand_program:0.5", "write_p99", 0.05},
		{"nand_read:0.5", "read_p99", 0.10},
	})
}

// TestWhatIfMatchesGroundTruthE6 validates the engine on the E6 drives:
// a direct read-service scaling on the conventional stack, and the
// host-FTL stack where composite stalls (paced reclaim, simple-copy
// batches) put the one-level composition model under the most stress.
func TestWhatIfMatchesGroundTruthE6(t *testing.T) {
	if testing.Short() {
		t.Skip("re-runs experiments; skipped in -short")
	}
	assertWhatIf(t, "E6/conventional", e6ConvRun, []whatIfCheck{
		{"nand_read:0.5", "read_mean", 0.10},
		{"nand_read:0.5", "read_p99", 0.10},
	})
	assertWhatIf(t, "E6/hostftl", e6HostRun, []whatIfCheck{
		{"bus_xfer:0.5", "read_mean", 0.05},
		{"bus_xfer:0.5", "read_p99", 0.05},
	})
}

// TestE4ReportHasCritSection keeps the byte-identical determinism gate
// honest: TestE4ReportByteIdentical pins the whole report, but only if the
// critical-path section is actually in it. Both stacks must render one,
// with the exactness line.
func TestE4ReportHasCritSection(t *testing.T) {
	e, ok := ByID("E4")
	if !ok {
		t.Fatal("E4 not registered")
	}
	rep, err := e.Run(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	out := rep.Format()
	if n := strings.Count(out, "critical path & what-if"); n != 2 {
		t.Fatalf("report has %d critical-path sections, want 2 (both stacks):\n%s", n, out)
	}
	if !strings.Contains(out, "(0 violations)") {
		t.Fatal("report critical-path section missing the exactness line")
	}
	if !strings.Contains(out, "what-if") || !strings.Contains(out, "nand_program:0.5") {
		t.Fatal("report missing canonical what-if predictions")
	}
}
