package core

import (
	"blockhead/internal/sim"
	"blockhead/internal/sim/shard"
)

// This file is the experiment harness's side of the parallel core: it runs
// an experiment's independent sub-simulations ("parts") either serially —
// the reference implementation, byte-for-byte today's behavior — or as
// lane events on an internal/sim/shard scheduler, then merges results
// deterministically in part order.
//
// A part is one device stack with its own flash chip, workload source, and
// telemetry session: the flash channel/LUN isolation the ISSUE's shard key
// names is what makes parts independent (no part ever touches another's
// LUNs, free-block pool, or L2P map — shardcheck's affinity report proves
// the per-LUN paths write only shard-keyed state). The only cross-part
// coupling in the serial path is the session's shared AttrSink, which
// numbers measured IOs consecutively across parts so `-explain <exp>:<seq>`
// is unambiguous. The parallel path gives each part a private sink
// (numbering from 1) and restores the serial numbering at the final
// barrier: part k's exemplar sequence numbers are rebased by the total
// measured-IO count of parts 0..k-1. Aggregates need no correction — the
// serial path already snapshot-deltas them per part, and a from-zero
// private sink yields the same delta.
//
// The fault RNG needs no correction either: each part owns its injector,
// seeded from cfg.Seed, consumed in the part's own virtual-time order —
// a single virtual-time-ordered stream per part under both schedulers.

// partTask is one schedulable part: run executes it under a part-scoped
// Config; rebase, if non-nil, shifts the result's measured-IO sequence
// numbers after a parallel run (delta = measured IOs in preceding parts).
type partTask struct {
	run    func(cfg Config) error
	rebase func(delta uint64)
}

// seqRebaser is implemented by part results that expose measured-IO
// sequence numbers (exemplar sections and their -explain hints).
type seqRebaser interface {
	rebaseSeqs(delta uint64)
}

// part adapts a typed stack function (e.g. E4Conventional) into a partTask
// that stores its result in *out and knows how to rebase it.
func part[T any](out *T, f func(Config) (T, error)) partTask {
	return partTask{
		run: func(cfg Config) error {
			r, err := f(cfg)
			if err != nil {
				return err
			}
			*out = r
			return nil
		},
		rebase: func(delta uint64) {
			if r, ok := any(out).(seqRebaser); ok {
				r.rebaseSeqs(delta)
			}
		},
	}
}

// runParts executes the parts in order (serial reference) or on the shard
// scheduler (cfg.Shards > 1), returning the first failed part's error in
// part order. Probe and explain runs always take the serial path: a live
// probe hangs one metric registry and flight recorder off the run, and the
// explain narrator must see the whole run's numbering on one sink.
func runParts(cfg Config, parts ...partTask) error {
	if cfg.Shards <= 1 || cfg.Probe != nil || cfg.ExplainSeq != 0 || len(parts) < 2 {
		for _, p := range parts {
			if err := p.run(cfg); err != nil {
				return err
			}
		}
		return nil
	}
	lanes := cfg.Shards
	if lanes > len(parts) {
		lanes = len(parts)
	}
	l := shard.New(lanes)
	sessions := make([]*session, len(parts))
	errs := make([]error, len(parts))
	for i := range parts {
		i := i
		pcfg := cfg
		pcfg.session = newSession()
		sessions[i] = pcfg.session
		// One lane event per part at t=0: parts are independent
		// sub-simulations, so the meta-schedule needs no barriers until
		// the merge below (which runs after Run, i.e. at the implicit
		// final barrier — every lane quiesced).
		l.At(i%lanes, 0, func(sim.Time) { errs[i] = parts[i].run(pcfg) })
	}
	l.Run()
	var offset uint64
	for i, p := range parts {
		if errs[i] != nil {
			return errs[i]
		}
		if p.rebase != nil {
			p.rebase(offset)
		}
		if s := sessions[i].sink; s != nil {
			offset += s.Seq()
		}
	}
	return nil
}
