package core

import (
	"fmt"

	"blockhead/internal/cost"
)

func init() {
	register(Experiment{
		ID:         "E11",
		Title:      "Per-gigabyte device cost (§2.2, §2.3 footnote 2)",
		PaperClaim: "ZNS costs less per GB: no GC overprovisioning, ~4000x less on-board DRAM; host DRAM (if any) is bought at large-DIMM prices, less than half the per-GB price of embedded chips",
		Run:        runE11,
	})
}

func runE11(cfg Config) (Report, error) {
	r := Report{
		ID:         "E11",
		Title:      "Bill of materials: 1 TB usable",
		PaperClaim: "overprovisioning (7-28%) and mapping DRAM make conventional devices dearer per usable GB",
		Header: []string{"Device", "Raw flash GB", "On-board DRAM", "Host DRAM",
			"$ total", "$/usable GB", "Saving vs conv"},
	}
	p := cost.DefaultParams()
	if err := p.Validate(); err != nil {
		return r, err
	}
	const usable = 1024.0
	const blockBytes = 16 << 20
	conv7 := cost.Conventional(usable, 0.07, p)
	conv28 := cost.Conventional(usable, 0.28, p)
	znsNative := cost.ZNS(usable, blockBytes, 0, p)
	znsHost := cost.ZNS(usable, blockBytes, 8, p)

	row := func(d cost.Device, baseline cost.Device, isBaseline bool) {
		saving := "-"
		if !isBaseline {
			saving = fmt.Sprintf("%.1f%%", cost.Savings(baseline, d)*100)
		}
		r.AddRow(d.Kind,
			fmt.Sprintf("%.0f", d.RawFlashGB),
			fmt.Sprintf("%.3f GB", d.OnboardDRAMGB),
			fmt.Sprintf("%.1f GB", d.HostDRAMGB),
			fmt.Sprintf("$%.2f", d.TotalUSD()),
			fmt.Sprintf("$%.4f", d.USDPerUsableGB()),
			saving)
	}
	row(conv7, conv7, true)
	row(conv28, conv7, false)
	row(znsNative, conv7, false)
	row(znsHost, conv7, false)
	r.AddNote("prices: flash $%.2f/GB, embedded DRAM $%.1f/GB, host DRAM $%.1f/GB (footnote 2: embedded >= 2x host)",
		p.FlashUSDPerGB, p.EmbeddedDRAMUSDPerGB, p.HostDRAMUSDPerGB)
	r.AddNote("zns host-FTL row carries 8 B/page of host mapping DRAM (dm-zoned-style block emulation)")
	return r, nil
}
