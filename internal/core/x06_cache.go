package core

import (
	"fmt"

	"blockhead/internal/flash"
	"blockhead/internal/ftl"
	"blockhead/internal/sim"
	"blockhead/internal/workload"
	"blockhead/internal/zcache"
	"blockhead/internal/zns"
)

func init() {
	register(Experiment{
		ID:         "X6",
		Title:      "Extension: reclaiming the flash cache's DRAM buffer (§4.1)",
		PaperClaim: "\"applications have evolved to use DRAM as a buffer to coalesce many writes into one very large write. With ZNS SSDs, these buffers are no longer necessary.\"",
		Run:        runX6,
	})
}

func x6Geometry() flash.Geometry {
	return flash.Geometry{Channels: 4, DiesPerChan: 1, PlanesPerDie: 1,
		BlocksPerLUN: 32, PagesPerBlock: 64, PageSize: 4096}
}

const (
	x6ObjPages = 4
	x6Keys     = 4000
)

// X6Drive runs a zipfian get-or-insert workload through one cache design
// and reports its hit ratio, device WA, and coalescing DRAM.
func X6Drive(c zcache.Cache, ops int, seed int64) (hit, wa float64, dramKiB float64, err error) {
	src := workload.NewSource(seed)
	keys := workload.NewZipf(src, x6Keys, 0.99)
	var at sim.Time
	for i := 0; i < ops; i++ {
		k := keys.Next()
		done, isHit, gerr := c.Get(at, k)
		if gerr != nil {
			return 0, 0, 0, gerr
		}
		at = done
		if !isHit {
			if at, err = c.Insert(at, k, x6ObjPages); err != nil {
				return 0, 0, 0, err
			}
		}
	}
	return c.Stats().HitRatio(), c.Counters().WriteAmp(),
		float64(c.DRAMBufferBytes()) / 1024, nil
}

func runX6(cfg Config) (Report, error) {
	r := Report{
		ID:         "X6",
		Title:      "Flash cache designs: DRAM buffer vs write amplification",
		PaperClaim: "set-assoc: no DRAM but amplified writes; region-buffered: tame WA bought with DRAM; zone-native: both for free",
		Header:     []string{"Design", "Hit ratio", "Device WA", "Coalescing DRAM (KiB)"},
	}
	ops := 60000
	if cfg.Quick {
		ops = 20000
	}
	lat := flash.LatenciesFor(flash.TLC)

	mkConv := func() (*ftl.Device, error) {
		return ftl.NewDefault(x6Geometry(), lat, 0.11)
	}

	convSA, err := mkConv()
	if err != nil {
		return r, err
	}
	sa, err := zcache.NewSetAssoc(convSA, x6ObjPages, 4)
	if err != nil {
		return r, err
	}
	convCB, err := mkConv()
	if err != nil {
		return r, err
	}
	cb, err := zcache.NewConvBuffered(convCB, 256) // 1 MiB region buffer
	if err != nil {
		return r, err
	}
	zdev, err := zns.New(zns.Config{Geom: x6Geometry(), Lat: lat, ZoneBlocks: 4})
	if err != nil {
		return r, err
	}
	zc := zcache.NewZNSCache(zdev)

	for _, c := range []zcache.Cache{sa, cb, zc} {
		hit, wa, dram, err := X6Drive(c, ops, cfg.Seed)
		if err != nil {
			return r, fmt.Errorf("%s: %w", c.Name(), err)
		}
		r.AddRow(c.Name(), fmt.Sprintf("%.3f", hit), fmt.Sprintf("%.2f", wa),
			fmt.Sprintf("%.0f", dram))
	}
	r.AddNote("zipfian get-or-insert, %d-page objects, identical flash under all three", x6ObjPages)
	r.AddNote("at fleet scale the region buffer is per cache instance: the DRAM §4.1 says ZNS reclaims")
	return r, nil
}
