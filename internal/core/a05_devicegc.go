package core

import (
	"fmt"

	"blockhead/internal/flash"
	"blockhead/internal/ftl"
	"blockhead/internal/sim"
	"blockhead/internal/workload"
)

func init() {
	register(Experiment{
		ID:         "A5",
		Title:      "Ablation: how much of the tail argument survives a smarter device?",
		PaperClaim: "even a device that paces its own GC cannot use application information — the tail gap narrows, the WA/cost gaps do not",
		Run:        runA5,
	})
}

// E6ConventionalIncremental is E6's baseline device upgraded with
// device-side incremental GC — the strongest conventional controller our
// model supports.
func E6ConventionalIncremental(cfg Config) (E6Result, error) {
	dev, err := ftl.New(ftl.Config{
		Geom:              e6Geometry(),
		Lat:               flash.LatenciesFor(flash.TLC),
		OPFraction:        0.11,
		GCMode:            ftl.GCDeviceIncremental,
		GCChunkPages:      8,
		HotColdSeparation: true,
		TrimSupported:     true,
	})
	if err != nil {
		return E6Result{}, err
	}
	var at sim.Time
	for lpn := int64(0); lpn < dev.CapacityPages(); lpn++ {
		if at, err = dev.WritePage(at, lpn, nil); err != nil {
			return E6Result{}, err
		}
	}
	src := workload.NewSource(cfg.Seed)
	hc := workload.NewHotCold(src, dev.CapacityPages(), 0.1, 0.9)
	for i := int64(0); i < dev.CapacityPages(); i++ { // age to steady state
		if at, err = dev.WritePage(at, hc.Next(), nil); err != nil {
			return E6Result{}, err
		}
	}
	rKeys := workload.NewUniform(src, dev.CapacityPages())
	return e6Measure(e6Stack{
		name:  "conventional (device-incremental GC)",
		write: func(t sim.Time) (sim.Time, error) { return dev.WritePage(t, hc.Next(), nil) },
		read: func(t sim.Time) (sim.Time, error) {
			done, _, err := dev.ReadPage(t, rKeys.Next())
			return done, err
		},
		counters: func() (uint64, uint64) {
			c := dev.Counters()
			return c.HostWritePages, c.FlashProgramPages
		},
		at:  at,
		src: src,
	}, cfg)
}

func runA5(cfg Config) (Report, error) {
	r := Report{
		ID:         "A5",
		Title:      "Foreground vs device-incremental vs host-scheduled GC",
		PaperClaim: "pacing helps any controller; application information helps only the host",
		Header: []string{"Configuration", "Write pages/s", "WA",
			"Read mean (us)", "Read p99 (us)", "Read p999 (us)"},
	}
	fg, err := E6Conventional(cfg)
	if err != nil {
		return r, err
	}
	inc, err := E6ConventionalIncremental(cfg)
	if err != nil {
		return r, err
	}
	host, err := E6HostFTL(cfg)
	if err != nil {
		return r, err
	}
	for _, e := range []E6Result{fg, inc, host} {
		r.AddRow(e.Name, fmt.Sprintf("%.0f", e.WritePagesPS), fmt.Sprintf("%.2f", e.WA),
			fmt.Sprintf("%.0f", e.ReadMean.Micros()),
			fmt.Sprintf("%.0f", e.ReadP99.Micros()),
			fmt.Sprintf("%.0f", e.ReadP999.Micros()))
	}
	r.AddNote("pacing buys the device only a modest p999 improvement (%.1fx) and costs it",
		float64(fg.ReadP999)/float64(inc.ReadP999))
	r.AddNote("write amplification (earlier triggers pick poorer victims); the host still")
	r.AddNote("wins tails by %.0fx and WA by %.1fx — controller smarts cannot substitute",
		float64(fg.ReadP999)/float64(host.ReadP999), inc.WA/host.WA)
	r.AddNote("for application information (§4.1) or remove the DRAM/OP costs (E3/E11)")
	return r, nil
}
