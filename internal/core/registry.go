package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// CheckRegistry validates the experiment registry's ID space: every ID must
// be a letter series plus a positive number ("E4", "X2", "A1"), unique
// case-insensitively, and each series must be contiguous from 1 — a hole
// (say E9 gone missing) means a stale -run list or docs reference would
// fail silently. znsbench runs it at startup; the core tests pin it.
func CheckRegistry() error {
	seen := make(map[string]string, len(registry))
	series := make(map[string][]int)
	for _, e := range registry {
		id := strings.ToUpper(e.ID)
		if prev, dup := seen[id]; dup {
			return fmt.Errorf("experiment registry: duplicate ID %q (%q and %q)", e.ID, prev, e.Title)
		}
		seen[id] = e.Title
		i := 0
		for i < len(id) && (id[i] < '0' || id[i] > '9') {
			i++
		}
		n, err := strconv.Atoi(id[i:])
		if err != nil || i == 0 || n <= 0 {
			return fmt.Errorf("experiment registry: malformed ID %q (want <series><number>, e.g. E4)", e.ID)
		}
		series[id[:i]] = append(series[id[:i]], n)
	}
	// Sorted series order so the first-reported hole is deterministic when
	// more than one series is broken.
	names := make([]string, 0, len(series))
	for s := range series {
		names = append(names, s)
	}
	sort.Strings(names)
	for _, s := range names {
		nums := series[s]
		sort.Ints(nums)
		for i, n := range nums {
			if n != i+1 {
				return fmt.Errorf("experiment registry: series %s has a hole: %s%d missing (have %s%d..%s%d)",
					s, s, i+1, s, nums[0], s, nums[len(nums)-1])
			}
		}
	}
	return nil
}
