package core

import (
	"fmt"

	"blockhead/internal/flash"
	"blockhead/internal/sim"
	"blockhead/internal/stats"
	"blockhead/internal/workload"
	"blockhead/internal/zns"
)

func init() {
	register(Experiment{
		ID:         "E8",
		Title:      "Active-zone limits: static partitioning vs dynamic multiplexing (§4.2)",
		PaperClaim: "a fixed active-zone budget per application does not scale for bursty workloads; dynamic assignment multiplexes the scarce resource",
		Run:        runE8,
	})
}

// ZonePolicy decides how many zones a tenant's burst may open.
type ZonePolicy int

const (
	// StaticZones gives every tenant maxActive/tenants zones, always.
	StaticZones ZonePolicy = iota
	// DynamicZones grants up to the burst's desired parallelism from
	// whatever the shared budget has free right now.
	DynamicZones
)

// String implements fmt.Stringer.
func (p ZonePolicy) String() string {
	if p == DynamicZones {
		return "dynamic"
	}
	return "static"
}

const (
	e8Tenants    = 7
	e8MaxActive  = 14  // the paper's example device supports 14 active zones
	e8WantZones  = 8   // parallelism a burst would like
	e8BurstPages = 256 // <= one zone, so even a 1-zone grant can hold a burst
	e8MeanGapMs  = 180 // mean idle gap between a tenant's bursts
)

// E8Result is one policy's measurement.
type E8Result struct {
	Policy     ZonePolicy
	Bursts     uint64
	BurstP50   sim.Time
	BurstP99   sim.Time
	PagesPerSS float64
	// Device is the end-of-run device snapshot (wear, zone census, audit).
	Device DeviceState
}

// E8Run simulates bursty tenants sharing one device under a zone-grant
// policy and measures burst completion times.
func E8Run(policy ZonePolicy, cfg Config) (E8Result, error) {
	dev, err := zns.New(zns.Config{
		Geom: flash.Geometry{Channels: 8, DiesPerChan: 2, PlanesPerDie: 1,
			BlocksPerLUN: 32, PagesPerBlock: 256, PageSize: 4096},
		Lat:        flash.LatenciesFor(flash.TLC),
		ZoneBlocks: 1, // 512 zones, one LUN each
		MaxActive:  e8MaxActive,
	})
	if err != nil {
		return E8Result{}, err
	}
	// The auditor runs under both policies: E8 exercises the state machine
	// hardest (hundreds of zones cycling open->full->reset under an active
	// limit), so every transition is validated regardless of telemetry.
	aud := dev.AttachAuditor()
	loop := sim.NewLoop()
	if cfg.Probe != nil {
		// Attach telemetry to the dynamic-policy run only (the interesting
		// one) and drive the sampler from the event loop, so active-zone
		// occupancy is sampled even across idle gaps between bursts.
		if policy == DynamicZones {
			dev.SetProbe(cfg.Probe)
			loop.OnEvent = cfg.Probe.Tick
		}
	}
	src := workload.NewSource(cfg.Seed)
	lat := stats.NewDist(256)
	var bursts, pages uint64
	var opErr error
	fail := func(err error) {
		if opErr == nil {
			opErr = err
		}
		loop.Stop()
	}

	duration := 6 * sim.Second
	if cfg.Quick {
		duration = 1500 * sim.Millisecond
	}

	// Free-zone pool shared by all tenants.
	var freeZones []int
	for z := 0; z < dev.NumZones(); z++ {
		freeZones = append(freeZones, z)
	}
	takeZone := func(at sim.Time) (int, bool) {
		for len(freeZones) > 0 {
			z := freeZones[0]
			freeZones = freeZones[1:]
			if dev.State(z) != zns.Empty {
				if _, err := dev.Reset(at, z); err != nil {
					continue
				}
			}
			return z, true
		}
		return -1, false
	}

	grant := func() int {
		if policy == StaticZones {
			return e8MaxActive / e8Tenants
		}
		avail := e8MaxActive - dev.ActiveZones()
		if avail > e8WantZones {
			avail = e8WantZones
		}
		return avail
	}

	// Each tenant: wait exp(gap) -> burst of e8BurstPages striped over its
	// granted zones -> finish zones -> repeat.
	for tn := 0; tn < e8Tenants; tn++ {
		var startBurst func(now sim.Time)
		startBurst = func(now sim.Time) {
			if now >= duration {
				return
			}
			k := grant()
			if k < 1 {
				// Budget exhausted right now: retry shortly.
				loop.At(now+sim.Millisecond, startBurst)
				return
			}
			var zones []int
			for i := 0; i < k; i++ {
				z, ok := takeZone(now)
				if !ok {
					fail(fmt.Errorf("e8: out of zones"))
					return
				}
				if err := dev.Open(now, z); err != nil {
					// Lost a race for the last active slot: put it back and
					// go with what we have.
					freeZones = append(freeZones, z)
					break
				}
				zones = append(zones, z)
			}
			if len(zones) == 0 {
				loop.At(now+sim.Millisecond, startBurst)
				return
			}
			burstStart := now
			perZone := e8BurstPages / len(zones)
			finished := 0
			var burstEnd sim.Time
			for _, z := range zones {
				z := z
				remaining := perZone
				var writeNext func(t sim.Time)
				writeNext = func(t sim.Time) {
					if remaining == 0 {
						// A zone that filled exactly is already Full (its
						// resources are released); Finish then reports
						// ErrBadState, which is fine.
						if err := dev.Finish(t, z); err != nil && dev.State(z) != zns.Full {
							fail(err)
							return
						}
						if t > burstEnd {
							burstEnd = t
						}
						// Return the zone to the shared pool; it is reset
						// lazily on its next draw.
						freeZones = append(freeZones, z)
						finished++
						if finished == len(zones) {
							bursts++
							pages += uint64(e8BurstPages)
							lat.Add(burstEnd - burstStart)
							gap := src.ExpMean(e8MeanGapMs * sim.Millisecond)
							loop.At(burstEnd+gap, startBurst)
						}
						return
					}
					_, done, err := dev.Append(t, z, nil)
					if err != nil {
						fail(fmt.Errorf("e8 append: %w", err))
						return
					}
					remaining--
					loop.At(done, writeNext)
				}
				loop.At(now, writeNext)
			}
		}
		loop.At(sim.Time(tn)*sim.Millisecond, startBurst)
	}
	loop.Run()
	if opErr != nil {
		return E8Result{}, opErr
	}
	if err := aud.Check(); err != nil {
		return E8Result{}, err
	}
	s := lat.Summary()
	return E8Result{
		Policy:     policy,
		Bursts:     bursts,
		BurstP50:   s.P50,
		BurstP99:   s.P99,
		PagesPerSS: stats.Rate(pages, duration),
		Device:     deviceState(policy.String(), dev, aud),
	}, nil
}

func runE8(cfg Config) (Report, error) {
	r := Report{
		ID:         "E8",
		Title:      "Bursty tenants under the active-zone limit",
		PaperClaim: "fixed per-tenant budgets throttle bursts; on-demand assignment multiplexes the limit",
		Header:     []string{"Policy", "Bursts", "Burst p50 (ms)", "Burst p99 (ms)", "Pages/s"},
	}
	policies := []ZonePolicy{StaticZones, DynamicZones}
	results := make([]E8Result, len(policies))
	var tasks []partTask
	for i, p := range policies {
		p := p
		tasks = append(tasks, part(&results[i], func(c Config) (E8Result, error) {
			return E8Run(p, c)
		}))
	}
	if err := runParts(cfg, tasks...); err != nil {
		return r, err
	}
	for i, res := range results {
		r.AddRow(policies[i].String(), fmt.Sprint(res.Bursts),
			fmt.Sprintf("%.1f", res.BurstP50.Millis()),
			fmt.Sprintf("%.1f", res.BurstP99.Millis()),
			fmt.Sprintf("%.0f", res.PagesPerSS))
		r.AddDeviceState(res.Device)
	}
	r.AddNote("%d tenants, %d max active zones, bursts want %d-way parallelism",
		e8Tenants, e8MaxActive, e8WantZones)
	if len(results) == 2 && results[1].BurstP50 > 0 {
		r.AddNote("burst p50 speedup from multiplexing: %.2fx",
			float64(results[0].BurstP50)/float64(results[1].BurstP50))
	}
	return r, nil
}
