package core

import (
	"fmt"
	"strings"
	"testing"

	"blockhead/internal/offload"
	"blockhead/internal/placement"
	"blockhead/internal/sim"
	"blockhead/internal/workload"
)

var quickCfg = Config{Quick: true, Seed: 42}

func offloadDefault() offload.CostModel { return offload.DefaultCostModel() }

func singleStream() placement.Policy { return placement.SingleStream{} }
func byClass8() placement.Policy     { return placement.ByClass{K: 8, Classes: 8} }
func oracle8() placement.Policy      { return placement.Oracle{K: 8, Base: 8 * sim.Millisecond} }

func TestRegistryCompleteAndOrdered(t *testing.T) {
	all := All()
	want := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12"}
	if len(all) < len(want) {
		t.Fatalf("registered %d experiments, want >= %d", len(all), len(want))
	}
	for i, id := range want {
		if all[i].ID != id {
			t.Errorf("All()[%d].ID = %s, want %s", i, all[i].ID, id)
		}
		if all[i].Title == "" || all[i].PaperClaim == "" || all[i].Run == nil {
			t.Errorf("%s: incomplete registration", id)
		}
	}
	if _, ok := ByID("e5"); !ok {
		t.Error("ByID must be case-insensitive")
	}
	if _, ok := ByID("E99"); ok {
		t.Error("phantom experiment found")
	}
}

func TestReportFormat(t *testing.T) {
	r := Report{ID: "X", Title: "t", PaperClaim: "c", Header: []string{"a", "bb"}}
	r.AddRow("1", "2")
	r.AddNote("n %d", 5)
	out := r.Format()
	for _, needle := range []string{"=== X: t ===", "paper: c", "a", "bb", "n 5"} {
		if !strings.Contains(out, needle) {
			t.Errorf("Format missing %q in:\n%s", needle, out)
		}
	}
}

// Every experiment must run cleanly in quick mode.
func TestAllExperimentsRunQuick(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			rep, err := e.Run(quickCfg)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(rep.Rows) == 0 {
				t.Fatalf("%s: empty report", e.ID)
			}
			if rep.Format() == "" {
				t.Fatalf("%s: empty format", e.ID)
			}
		})
	}
}

// E2: the paper's §2.2 shape — ~15x at no OP falling to ~2.5x at 25%.
func TestE2Shape(t *testing.T) {
	wa0, _, err := E2Point(0, 2, 42)
	if err != nil {
		t.Fatal(err)
	}
	wa25, _, err := E2Point(0.25, 2, 42)
	if err != nil {
		t.Fatal(err)
	}
	if wa0 < 10 || wa0 > 20 {
		t.Errorf("WA at 0%% OP = %.2f, want ~15 (paper)", wa0)
	}
	if wa25 < 1.7 || wa25 > 3.2 {
		t.Errorf("WA at 25%% OP = %.2f, want ~2.5 (paper)", wa25)
	}
	if wa25 >= wa0 {
		t.Error("WA must fall with OP")
	}
}

// E4: ZNS wins on latency and throughput (paper: 60% lower mean, ~3x tput).
func TestE4Shape(t *testing.T) {
	conv, err := E4Conventional(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	z, err := E4ZNS(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if z.WritePagesPS <= 2*conv.WritePagesPS {
		t.Errorf("zns tput %.0f must be well above conv %.0f", z.WritePagesPS, conv.WritePagesPS)
	}
	if float64(z.ReadMean) >= 0.5*float64(conv.ReadMean) {
		t.Errorf("zns read mean %v must be under half of conv %v", z.ReadMean, conv.ReadMean)
	}
	if z.ReadP99 >= conv.ReadP99 {
		t.Error("zns read p99 must beat conv")
	}
}

// E5: device WA gap (paper: 5x -> 1.2x).
func TestE5Shape(t *testing.T) {
	cb, zb, err := E5Backends(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	conv, err := E5Run("conv", cb, quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	z, err := E5Run("zns", zb, quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if z.DeviceWA >= conv.DeviceWA {
		t.Errorf("zns WA %.2f must be below conv %.2f", z.DeviceWA, conv.DeviceWA)
	}
	if z.DeviceWA > 1.3 {
		t.Errorf("zns WA = %.2f, want near the paper's 1.2", z.DeviceWA)
	}
	if z.WriteBytesPS <= conv.WriteBytesPS {
		t.Error("zns write throughput must beat conv")
	}
}

// E6: host-scheduled GC wins on tails and throughput (paper: 22x, +65%).
func TestE6Shape(t *testing.T) {
	conv, err := E6Conventional(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	host, err := E6HostFTL(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if float64(host.ReadP999) >= 0.5*float64(conv.ReadP999) {
		t.Errorf("host p999 %v must be well below conv %v", host.ReadP999, conv.ReadP999)
	}
	if host.WritePagesPS <= conv.WritePagesPS {
		t.Errorf("host tput %.0f must beat conv %.0f", host.WritePagesPS, conv.WritePagesPS)
	}
	if host.WA >= conv.WA {
		t.Errorf("host WA %.2f must be below conv %.2f", host.WA, conv.WA)
	}
}

// E7: writes serialize; appends scale toward the 8-LUN stripe limit.
func TestE7Shape(t *testing.T) {
	dur := 500 * 1000 * 1000 // 500ms in sim.Time units
	w1, err := E7Throughput(1, false, 500000000)
	if err != nil {
		t.Fatal(err)
	}
	w16, err := E7Throughput(16, false, 500000000)
	if err != nil {
		t.Fatal(err)
	}
	a16, err := E7Throughput(16, true, 500000000)
	if err != nil {
		t.Fatal(err)
	}
	_ = dur
	if w16 > 1.2*w1 {
		t.Errorf("16 writers with WP lock (%.0f) must not scale past 1 writer (%.0f)", w16, w1)
	}
	if a16 < 6*w1 {
		t.Errorf("16 appenders (%.0f) must approach 8x one writer (%.0f)", a16, w1)
	}
}

// E8: dynamic zone assignment multiplexes bursts.
func TestE8Shape(t *testing.T) {
	static, err := E8Run(StaticZones, quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	dynamic, err := E8Run(DynamicZones, quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if dynamic.BurstP50 >= static.BurstP50 {
		t.Errorf("dynamic burst p50 %v must beat static %v", dynamic.BurstP50, static.BurstP50)
	}
	if dynamic.PagesPerSS <= static.PagesPerSS {
		t.Errorf("dynamic throughput %.0f must beat static %.0f", dynamic.PagesPerSS, static.PagesPerSS)
	}
}

// E9: more lifetime information means less copying; the oracle is best.
func TestE9Shape(t *testing.T) {
	single, err := E9Run(singleStream(), 0.3, quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	byClass, err := E9Run(byClass8(), 0.3, quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := E9Run(oracle8(), 0.3, quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if byClass >= single {
		t.Errorf("by-class WA %.3f must beat single-stream %.3f", byClass, single)
	}
	if oracle > byClass+0.01 {
		t.Errorf("oracle WA %.3f must not lose to by-class %.3f", oracle, byClass)
	}
	if oracle > 1.05 {
		t.Errorf("oracle WA = %.3f, want ~1.0", oracle)
	}
}

// E10: simple copy removes PCIe relocation traffic at equal performance.
func TestE10Shape(t *testing.T) {
	conv, err := E10Conv(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	hostCopy, err := E10HostFTL(false, quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := E10HostFTL(true, quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if sc.PCIePerHostKB >= hostCopy.PCIePerHostKB {
		t.Error("simple copy must reduce PCIe bytes")
	}
	if sc.PCIePerHostKB > 1.01 {
		t.Errorf("simple-copy PCIe per host byte = %.2f, want ~1 (only host data moves)", sc.PCIePerHostKB)
	}
	// "Performance comparable to conventional SSDs" (§2.3).
	ratio := sc.WritePagesPS / conv.WritePagesPS
	if ratio < 0.6 || ratio > 1.8 {
		t.Errorf("block-on-ZNS throughput ratio vs conventional = %.2f, want comparable", ratio)
	}
}

// E12: the §2.1 physics and parallel scaling.
func TestE12Shape(t *testing.T) {
	r := E12EraseProgramRatio(3) // TLC
	if r < 5.5 || r > 6.5 {
		t.Errorf("TLC erase/program ratio = %.2f, want ~6", r)
	}
	t1, err := E12SequentialThroughput(1)
	if err != nil {
		t.Fatal(err)
	}
	t8, err := E12SequentialThroughput(8)
	if err != nil {
		t.Fatal(err)
	}
	if t8 < 6*t1 {
		t.Errorf("8-LUN throughput %.0f must approach 8x 1-LUN %.0f", t8, t1)
	}
}

// X1: on the same endurance-limited flash, the zone log must outlive the
// conventional device substantially.
func TestX1Shape(t *testing.T) {
	conv, err := X1Conventional(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	z, err := X1ZNS(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(z) / float64(conv)
	if ratio < 1.5 {
		t.Errorf("lifetime ratio = %.2f, want well above 1 (paper: WA burns endurance)", ratio)
	}
}

// X2: streams must reduce conventional WA; ZNS must not lose to the
// streamed conventional device at matched spare.
func TestX2Shape(t *testing.T) {
	e, ok := ByID("X2")
	if !ok {
		t.Fatal("X2 not registered")
	}
	rep, err := e.Run(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 3 {
		t.Fatalf("X2 rows = %d", len(rep.Rows))
	}
	parse := func(s string) float64 {
		var f float64
		fmt.Sscanf(s, "%f", &f)
		return f
	}
	noStream, streamed, zns := parse(rep.Rows[0][1]), parse(rep.Rows[1][1]), parse(rep.Rows[2][1])
	if streamed >= noStream {
		t.Errorf("streams must reduce WA: %.2f vs %.2f", streamed, noStream)
	}
	if zns > streamed*1.15 {
		t.Errorf("zns WA %.2f must not lose to streamed conventional %.2f", zns, streamed)
	}
}

// X5: the offload break-even exists and sits between the low- and
// high-rate regimes.
func TestX5Shape(t *testing.T) {
	w, err := X5MeasureWork(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if w.MapOps < 1 {
		t.Errorf("map ops per request = %.2f, want >= 1 (every write updates the map)", w.MapOps)
	}
	m := offloadDefault()
	be := m.BreakEvenReqPerSec(w)
	if be <= 0 {
		t.Fatal("no break-even found with the default cost model")
	}
	if m.HostUSD(w, be/4) >= m.SoCUSD(w, be/4) {
		t.Error("host must be cheaper well below break-even")
	}
	if m.HostUSD(w, be*4) <= m.SoCUSD(w, be*4) {
		t.Error("SoC must be cheaper well above break-even")
	}
}

// X2's workload generator: the group weights must fall off geometrically
// and every LBA must land inside its group's region.
func TestX2KeyDistribution(t *testing.T) {
	src := workload.NewSource(3)
	const capacity = 80000
	counts := make([]int, x2Groups)
	for i := 0; i < 200000; i++ {
		lpn, g := x2Key(src, capacity)
		if g < 0 || g >= x2Groups {
			t.Fatalf("group %d out of range", g)
		}
		region := int64(capacity / x2Groups)
		if lpn < int64(g)*region || lpn >= int64(g+1)*region {
			t.Fatalf("lpn %d outside group %d's region", lpn, g)
		}
		counts[g]++
	}
	// Group g should get roughly twice the traffic of group g+1.
	for g := 0; g+1 < 4; g++ { // tails are noisy; check the hot groups
		ratio := float64(counts[g]) / float64(counts[g+1])
		if ratio < 1.6 || ratio > 2.4 {
			t.Errorf("group %d/%d traffic ratio = %.2f, want ~2", g, g+1, ratio)
		}
	}
}
