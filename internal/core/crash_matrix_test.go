package core

import (
	"testing"

	"blockhead/internal/fault"
)

// TestCrashRecoveryMatrix sweeps the power-loss point across a 10k-op mixed
// workload — every event index congruent to the stride — for both stacks
// under the default fault profile. At each point the stack crashes
// mid-program, recovers, and the oracle differentially verifies that every
// logical page recovered to its durable winner (or a legal in-flight
// outcome), then the run resumes to the end and is verified live. The zone
// state machine is audited across every crash.
func TestCrashRecoveryMatrix(t *testing.T) {
	cfg := Config{Quick: true, Seed: 42}
	prof, _ := fault.ProfileByName("default")
	const (
		total  = 10000
		stride = 1999 // prime, so crash points drift across GC/reclaim phase
	)
	for _, sb := range faultStackBuilders {
		sb := sb
		t.Run(sb.name, func(t *testing.T) {
			for crashIdx := int64(stride); crashIdx < total; crashIdx += stride {
				s, err := sb.build(cfg, prof)
				if err != nil {
					t.Fatal(err)
				}
				oc, err := runFaultSchedule(s, cfg.Seed, total, crashIdx)
				if err != nil {
					t.Fatalf("crash@%d: %v", crashIdx, err)
				}
				if v := oc.Violations(); v != 0 {
					t.Fatalf("crash@%d: %d integrity violations:\n%v",
						crashIdx, v, oc.Details())
				}
			}
		})
	}
}
