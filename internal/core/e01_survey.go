package core

import (
	"fmt"

	"blockhead/internal/survey"
)

func init() {
	register(Experiment{
		ID:         "E1",
		Title:      "Table 1: impact of ZNS adoption on existing flash-SSD work",
		PaperClaim: "23% of SSD papers simplified/solved, 59% affected, 18% orthogonal (104 of 465 classified)",
		Run:        runE1,
	})
}

func runE1(cfg Config) (Report, error) {
	r := Report{
		ID:         "E1",
		Title:      "Survey taxonomy (Table 1)",
		PaperClaim: "FAST 9/8/23/8, OSDI 3/0/4/0, SOSP 2/2/2/0, MSST 10/7/16/10; totals 24/17/45/18",
		Header:     []string{"Venue", "#Pubs.", "Simpl", "Appr", "Res", "Orth"},
	}
	tbl := survey.Table1()
	for _, row := range tbl.Rows {
		r.AddRow(string(row.Venue), fmt.Sprint(row.Pubs),
			fmt.Sprint(row.Counts[0]), fmt.Sprint(row.Counts[1]),
			fmt.Sprint(row.Counts[2]), fmt.Sprint(row.Counts[3]))
	}
	r.AddRow("Total", fmt.Sprint(tbl.Total.Pubs),
		fmt.Sprint(tbl.Total.Counts[0]), fmt.Sprint(tbl.Total.Counts[1]),
		fmt.Sprint(tbl.Total.Counts[2]), fmt.Sprint(tbl.Total.Counts[3]))
	s, a, o := tbl.Shares()
	r.AddNote("classified: %d; shares: simplified %.0f%%, affected %.0f%%, orthogonal %.0f%%",
		tbl.Classified(), s*100, a*100, o*100)
	nSynth := 0
	for _, p := range survey.Corpus() {
		if p.Synthetic {
			nSynth++
		}
	}
	r.AddNote("corpus: %d cited papers + %d synthetic stand-ins (authors' corpus unpublished)",
		tbl.Classified()-nSynth, nSynth)
	return r, nil
}
