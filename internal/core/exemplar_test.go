package core

import (
	"strings"
	"testing"
)

// TestE6ReportByteIdentical pins the determinism contract for the E6
// host-GC experiment now that its report carries "slowest IOs" sections:
// the worst-K exemplar sets — phase timelines, blame, queued-behind
// identities, device snapshots, and counterfactual verdicts — must
// reproduce bit for bit from one seed, for both stacks.
func TestE6ReportByteIdentical(t *testing.T) {
	assertReportByteIdentical(t, "E6")
}

// TestExemplarPhaseSumsExact is the capture layer's acceptance bar: for a
// seeded E6 run, every report-listed exemplar's phase timeline sums
// exactly to its end-to-end latency — in both stacks' sections, the
// flagged ring included. An inexact sum means the reservoir copied a live
// record instead of the completed one.
func TestExemplarPhaseSumsExact(t *testing.T) {
	e, ok := ByID("E6")
	if !ok {
		t.Fatal("E6 not registered")
	}
	rep, err := e.Run(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Exemplars) != 2 {
		t.Fatalf("E6 report has %d exemplar sections, want one per stack", len(rep.Exemplars))
	}
	for _, es := range rep.Exemplars {
		if es.Snap.Captured() == 0 {
			t.Fatalf("section %q captured no exemplars", es.Name)
		}
		for _, exs := range es.Snap.Tenants {
			for _, ex := range exs {
				if got := phaseSum(ex); got != ex.Total {
					t.Errorf("%s seq=%d: phases sum to %v, end-to-end is %v", es.Name, ex.Seq, got, ex.Total)
				}
			}
		}
		for _, ex := range es.Snap.Flagged {
			if got := phaseSum(ex); got != ex.Total {
				t.Errorf("%s flagged seq=%d: phases sum to %v, end-to-end is %v", es.Name, ex.Seq, got, ex.Total)
			}
		}
	}
	text := rep.Format()
	if strings.Contains(text, "WARNING") {
		t.Errorf("report flags inexact phase sums:\n%s", text)
	}
}

// TestExplainByteIdentical pins the forensic replay's determinism: the
// annotated narrative for one measured IO is a pure function of
// (seed, experiment, sequence number), byte for byte across runs. One
// target lands in each stack — the conventional device and the host FTL
// on ZNS resolve sequence numbers from the same per-run counter.
func TestExplainByteIdentical(t *testing.T) {
	for _, tc := range []struct {
		seq   uint64
		stack string
	}{
		{926, "conventional (opaque device GC)"},
		{2640, "host FTL on ZNS (paced GC + streams)"},
	} {
		a, err := Explain(quickCfg, "E6", tc.seq)
		if err != nil {
			t.Fatalf("E6:%d: %v", tc.seq, err)
		}
		b, err := Explain(quickCfg, "E6", tc.seq)
		if err != nil {
			t.Fatalf("E6:%d second run: %v", tc.seq, err)
		}
		if a != b {
			t.Errorf("E6:%d transcript differs between runs:\nrun1:\n%s\nrun2:\n%s", tc.seq, a, b)
		}
		if !strings.Contains(a, tc.stack) {
			t.Errorf("E6:%d transcript names stack %q, want %q:\n%s", tc.seq, "?", tc.stack, a)
		}
		if !strings.Contains(a, "sum==end-to-end: exact") {
			t.Errorf("E6:%d transcript does not prove its phase sum:\n%s", tc.seq, a)
		}
	}
}

// TestExplainRejectsBadTargets pins the error paths: unknown experiments
// and the never-matching sequence number 0 fail up front instead of
// running a full simulation to no effect.
func TestExplainRejectsBadTargets(t *testing.T) {
	if _, err := Explain(quickCfg, "E99", 1); err == nil {
		t.Error("Explain(E99) succeeded, want unknown-experiment error")
	}
	if _, err := Explain(quickCfg, "E6", 0); err == nil {
		t.Error("Explain(E6:0) succeeded, want 1-based-sequence error")
	}
}
