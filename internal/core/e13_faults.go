package core

import (
	"fmt"

	"blockhead/internal/fault"
	"blockhead/internal/fault/oracle"
	"blockhead/internal/flash"
	"blockhead/internal/ftl"
	"blockhead/internal/hostftl"
	"blockhead/internal/sim"
	"blockhead/internal/workload"
	"blockhead/internal/zns"
)

func init() {
	register(Experiment{
		ID:    "E13",
		Title: "Degradation under NAND faults + power loss (differential harness)",
		PaperClaim: "flash cell failures are handled by shrinking a zone or taking it " +
			"offline (§2.1); the thin zone FTL recovers by write-pointer rediscovery " +
			"while a page-mapped FTL must rescan its mapping (§2.2)",
		Run: runE13,
	})
}

// The campaign note in EXPERIMENTS.md calls this experiment out: the issue
// that introduced it labeled it "E9", but E9 was already taken by
// lifetime-aware placement, so the fault campaign registers as E13.

func e13Geometry() flash.Geometry {
	return flash.Geometry{Channels: 4, DiesPerChan: 1, PlanesPerDie: 1,
		BlocksPerLUN: 48, PagesPerBlock: 64, PageSize: 4096}
}

// e13Endurance keeps the wear fraction meaningful over a short campaign, so
// the wear-coupled failure terms of the profiles actually engage.
const e13Endurance = 150

// e13Stack abstracts the two FTL stacks for the shared campaign drive:
// fill, churn with live integrity checks, power loss mid-churn, recovery,
// full differential verification, resumed churn, final verification.
type e13Stack struct {
	name     string
	capacity int64
	inj      *fault.Injector
	write    func(at sim.Time, lpn int64) (sim.Time, error)
	readMeta func(at sim.Time, lpn int64) (sim.Time, int64, uint64, error)
	recover  func(at sim.Time) (fault.RecoveryReport, error)
	nextSeq  func() uint64
	programs func() uint64
	device   func() (DeviceState, error)
}

// e13Result is one stack-under-one-profile campaign outcome.
type e13Result struct {
	stack       string
	profile     string
	hostWrites  uint64
	writeErrors uint64
	counts      fault.Counts
	rep         fault.RecoveryReport
	wa          float64
	violations  uint64
	lostReads   uint64
	details     []string
	device      DeviceState
}

// e13Campaign drives one stack through the full fault campaign. Every
// acknowledged write is mirrored into the oracle; every ReadMeta result is
// checked against it, live and across the crash.
func e13Campaign(s e13Stack, cfg Config, profileName string) (e13Result, error) {
	res := e13Result{stack: s.name, profile: profileName}
	oc := oracle.New(s.capacity)
	src := workload.NewSource(cfg.Seed)
	hc := workload.NewHotCold(src, s.capacity, 0.2, 0.8)
	rd := workload.NewUniform(src, s.capacity)

	var at sim.Time
	writeOne := func(lpn int64) {
		issued := at
		done, err := s.write(at, lpn)
		if err != nil {
			res.writeErrors++
			return
		}
		at = done
		oc.RecordWrite(lpn, issued, done)
		res.hostWrites++
	}
	verifyAll := func(recovered bool) {
		for lpn := int64(0); lpn < s.capacity; lpn++ {
			done, gotLPN, seq, err := s.readMeta(at, lpn)
			if err == nil {
				at = done
			}
			if recovered {
				oc.CheckRecovered(lpn, gotLPN, seq, err)
			} else {
				oc.CheckLive(lpn, gotLPN, seq, err)
			}
		}
	}

	for lpn := int64(0); lpn < s.capacity; lpn++ {
		writeOne(lpn)
	}
	churn := 2 * s.capacity
	if cfg.Quick {
		churn = s.capacity
	}
	churnPhase := func(n int64) {
		for i := int64(0); i < n; i++ {
			if i%4 == 3 {
				lpn := rd.Next()
				done, gotLPN, seq, err := s.readMeta(at, lpn)
				if err == nil {
					at = done
				}
				oc.CheckLive(lpn, gotLPN, seq, err)
				continue
			}
			writeOne(hc.Next())
		}
	}
	churnPhase(churn / 2)

	// Pull the plug with a write still in flight: issue one more write and
	// crash halfway between its issue and its acknowledged completion, so
	// recovery must handle an acknowledged-but-possibly-torn program on top
	// of whatever relocations the GC had outstanding.
	crashT := at
	for try := 0; try < 8; try++ {
		lpn := hc.Next()
		issued := at
		done, err := s.write(at, lpn)
		if err != nil {
			res.writeErrors++
			continue
		}
		oc.RecordWrite(lpn, issued, done)
		res.hostWrites++
		at = done
		crashT = issued + (done-issued)/2
		break
	}
	oc.Crash(crashT)
	rep, err := s.recover(crashT)
	if err != nil {
		return res, err
	}
	res.rep = rep
	at = rep.RecoveredAt
	verifyAll(true)
	oc.Resync(s.nextSeq())

	churnPhase(churn - churn/2)
	verifyAll(false)

	res.counts = s.inj.Counts()
	res.violations = oc.Violations()
	res.lostReads = oc.LostReads()
	res.details = oc.Details()
	if res.hostWrites > 0 {
		res.wa = float64(s.programs()) / float64(res.hostWrites)
	}
	if res.device, err = s.device(); err != nil {
		return res, err
	}
	return res, nil
}

// e13Conventional builds the page-mapped baseline with recovery armed.
func e13Conventional(cfg Config, prof fault.Profile) (e13Stack, error) {
	dev, err := ftl.New(ftl.Config{
		Geom:              e13Geometry(),
		Lat:               flash.LatenciesFor(flash.TLC),
		OPFraction:        0.11,
		HotColdSeparation: true,
		TrimSupported:     true,
		Endurance:         e13Endurance,
		Recovery:          true,
	})
	if err != nil {
		return e13Stack{}, err
	}
	probe := attrProbe(cfg)
	dev.SetProbe(probe)
	inj := fault.New(prof, cfg.Seed*31+1)
	inj.SetProbe(probe)
	dev.SetInjector(inj)
	name := "conventional (page-mapped FTL)"
	return e13Stack{
		name:     name,
		capacity: dev.CapacityPages(),
		inj:      inj,
		write: func(at sim.Time, lpn int64) (sim.Time, error) {
			return dev.WritePage(at, lpn, nil)
		},
		readMeta: dev.ReadMeta,
		recover: func(at sim.Time) (fault.RecoveryReport, error) {
			return dev.Recover(at)
		},
		nextSeq:  dev.NextSeq,
		programs: func() uint64 { return dev.Counters().FlashProgramPages },
		device: func() (DeviceState, error) {
			return DeviceState{Name: name, Wear: dev.Flash().Wear()}, nil
		},
	}, nil
}

// e13Host builds the ZNS + host-FTL stack with recovery armed and the zone
// state machine audited throughout (including across the crash).
func e13Host(cfg Config, prof fault.Profile) (e13Stack, error) {
	zdev, err := zns.New(zns.Config{
		Geom:       e13Geometry(),
		Lat:        flash.LatenciesFor(flash.TLC),
		ZoneBlocks: 4,
		Endurance:  e13Endurance,
		Recovery:   true,
	})
	if err != nil {
		return e13Stack{}, err
	}
	f, err := hostftl.New(zdev, hostftl.Config{
		OPFraction:     0.20,
		Streams:        2,
		ZonesPerStream: 2,
		UseSimpleCopy:  true,
		GCMode:         hostftl.GCIncremental,
		GCChunkPages:   8,
	})
	if err != nil {
		return e13Stack{}, err
	}
	probe := attrProbe(cfg)
	f.SetProbe(probe)
	inj := fault.New(prof, cfg.Seed*31+2)
	inj.SetProbe(probe)
	zdev.SetInjector(inj)
	aud := zdev.AttachAuditor()
	name := "host FTL on ZNS"
	return e13Stack{
		name:     name,
		capacity: f.CapacityPages(),
		inj:      inj,
		write: func(at sim.Time, lpn int64) (sim.Time, error) {
			return f.Write(at, lpn, nil)
		},
		readMeta: f.ReadMeta,
		recover:  f.Recover,
		nextSeq:  f.NextSeq,
		programs: func() uint64 { return f.Counters().FlashProgramPages },
		device: func() (DeviceState, error) {
			if err := aud.Check(); err != nil {
				return DeviceState{}, err
			}
			return deviceState(name, zdev, aud), nil
		},
	}, nil
}

func runE13(cfg Config) (Report, error) {
	r := Report{
		ID:    "E13",
		Title: "Degradation under NAND faults + power loss",
		PaperClaim: "both stacks must survive grown-bad blocks and power loss; " +
			"the zone FTL pays O(blocks) write-pointer rediscovery where the " +
			"page-mapped FTL pays an O(written pages) mapping scan (§2.1-§2.2)",
		Header: []string{"Configuration", "Profile", "Writes", "WA",
			"ProgFail", "EraseFail", "RetryRds", "Bad", "CrashLost",
			"ScanPg", "RecMaps", "Viol", "Lost"},
	}
	profileName := cfg.FaultProfile
	if profileName == "" {
		// Standalone default: visible degradation without being asked.
		profileName = "aggressive"
	}
	prof, ok := fault.ProfileByName(profileName)
	if !ok {
		return r, fmt.Errorf("E13: unknown fault profile %q (valid: %v)",
			profileName, fault.ProfileNames())
	}
	profiles := []fault.Profile{prof}
	if prof.Name != "none" {
		// The faults-off control always runs first: it proves the harness
		// itself is clean, and its recovery numbers isolate the pure
		// crash-recovery cost from the fault-handling cost.
		none, _ := fault.ProfileByName("none")
		profiles = []fault.Profile{none, prof}
	}
	builders := []func(Config, fault.Profile) (e13Stack, error){e13Conventional, e13Host}
	// Each (profile, stack) campaign is one part: its own device, injector
	// (seeded from cfg.Seed, consumed in the part's virtual-time order),
	// and oracle, so the crash matrix parallelizes without sharing state.
	type spec struct {
		prof  fault.Profile
		build func(Config, fault.Profile) (e13Stack, error)
	}
	var specs []spec
	for _, p := range profiles {
		for _, build := range builders {
			specs = append(specs, spec{prof: p, build: build})
		}
	}
	results := make([]e13Result, len(specs))
	var tasks []partTask
	for i, sp := range specs {
		sp := sp
		tasks = append(tasks, part(&results[i], func(c Config) (e13Result, error) {
			s, err := sp.build(c, sp.prof)
			if err != nil {
				return e13Result{}, err
			}
			res, err := e13Campaign(s, c, sp.prof.Name)
			if err != nil {
				return e13Result{}, fmt.Errorf("E13 %s/%s: %w", s.name, sp.prof.Name, err)
			}
			return res, nil
		}))
	}
	if err := runParts(cfg, tasks...); err != nil {
		return r, err
	}
	for _, res := range results {
		c := res.counts
		r.AddRow(res.stack, res.profile,
			fmt.Sprintf("%d", res.hostWrites), fmt.Sprintf("%.2f", res.wa),
			fmt.Sprintf("%d", c.ProgramFails), fmt.Sprintf("%d", c.EraseFails),
			fmt.Sprintf("%d", c.ReadRetryOps), fmt.Sprintf("%d", res.device.Wear.BadBlocks),
			fmt.Sprintf("%d", res.rep.LostPages), fmt.Sprintf("%d", res.rep.ScannedPages),
			fmt.Sprintf("%d", res.rep.RecoveredMappings),
			fmt.Sprintf("%d", res.violations), fmt.Sprintf("%d", res.lostReads))
		r.AddDeviceState(res.device)
		r.AddNote("%s/%s: %s", res.stack, res.profile, res.rep.String())
		if res.writeErrors > 0 {
			r.AddNote("%s/%s: %d writes failed (capacity lost to faults)",
				res.stack, res.profile, res.writeErrors)
		}
		for _, d := range res.details {
			r.AddNote("%s/%s: ORACLE VIOLATION: %s", res.stack, res.profile, d)
		}
		if res.violations > 0 {
			return r, fmt.Errorf("E13 %s/%s: %d integrity violations",
				res.stack, res.profile, res.violations)
		}
	}
	r.AddNote("recovery asymmetry: the conventional scan reads every written page; " +
		"the zone stack reads one page per written block, then the host rebuilds " +
		"its map on its own schedule (a real deployment would checkpoint it)")
	r.AddNote("fault campaign registered as E13; the introducing issue's \"E9\" label " +
		"was already taken by lifetime-aware placement")
	return r, nil
}
