package core

import (
	"fmt"

	"blockhead/internal/flash"
	"blockhead/internal/ftl"
	"blockhead/internal/sim"
	"blockhead/internal/telemetry"
	"blockhead/internal/telemetry/critpath"
	"blockhead/internal/telemetry/exemplar"
	"blockhead/internal/workload"
	"blockhead/internal/zns"
)

func init() {
	register(Experiment{
		ID:         "E4",
		Title:      "Read latency and write throughput: conventional GC vs ZNS (WD benchmark, §2.4)",
		PaperClaim: "ZNS: 60% lower average read latency, ~3x higher write throughput",
		Run:        runE4,
	})
}

func e4Geometry() flash.Geometry {
	return flash.Geometry{Channels: 4, DiesPerChan: 1, PlanesPerDie: 1,
		BlocksPerLUN: 64, PagesPerBlock: 64, PageSize: 4096}
}

// E4Result is one device's measurement, exposed for benches and tests.
type E4Result struct {
	Name         string
	WritePagesPS float64
	ReadMean     sim.Time
	ReadP50      sim.Time
	ReadP90      sim.Time
	ReadP99      sim.Time
	ReadP999     sim.Time
	WriteP99     sim.Time
	// Attr is the per-phase latency attribution accumulated over the
	// measured window of this configuration's drive.
	Attr telemetry.AttrSnapshot
	// Crit is the critical-path recording over the same window; CritOpts
	// selects the stack's replay model (zoned: erases are resets).
	Crit     critpath.Snapshot
	CritOpts critpath.PredictOpts
	// Exem is the drained exemplar reservoir over the same window (the
	// slowest IOs with full forensics); ExemNames are the tenant labels.
	Exem      exemplar.Snapshot
	ExemNames [telemetry.MaxTenants]string
	// Device is the end-of-run device snapshot (wear, zone census, audit).
	Device DeviceState
}

// rebaseSeqs shifts the result's exemplar sequence numbers after a
// parallel run, restoring the serial reference's cross-stack numbering.
func (e *E4Result) rebaseSeqs(delta uint64) { e.Exem.Rebase(delta) }

// E4Conventional drives a steady-state conventional SSD: the device is
// pre-filled and the writers sustain uniform random overwrites, so the FTL
// garbage-collects continuously while Poisson reads arrive.
func E4Conventional(cfg Config) (E4Result, error) {
	dev, err := ftl.NewDefault(e4Geometry(), scaledLatencies(cfg, flash.LatenciesFor(flash.TLC), false), 0.07)
	if err != nil {
		return E4Result{}, err
	}
	probe := attrProbe(cfg)
	dev.SetProbe(probe)
	exemplarArm(cfg, probe, "conventional (OP 7%)", critpath.PredictOpts{},
		convDevSnap(dev, e4Geometry()))
	var at sim.Time
	for lpn := int64(0); lpn < dev.CapacityPages(); lpn++ {
		if at, err = dev.WritePage(at, lpn, nil); err != nil {
			return E4Result{}, err
		}
	}
	src := workload.NewSource(cfg.Seed)
	wKeys := workload.NewUniform(src, dev.CapacityPages())
	// Age the device to GC steady state: overwrite 1.5x the logical space
	// so the measurement sees the sustained-GC regime, not a fresh drive.
	for i := int64(0); i < dev.CapacityPages()*3/2; i++ {
		if at, err = dev.WritePage(at, wKeys.Next(), nil); err != nil {
			return E4Result{}, err
		}
	}
	rKeys := workload.NewUniform(src, dev.CapacityPages())
	dur, warm := e4Duration(cfg)
	before := probe.Attr.Snapshot()
	critDrain(probe)     // discard prefill/aging paths
	exemplarDrain(probe) // likewise for exemplars
	res := RunMixed(MixedCfg{
		Writers: 4,
		Write: func(t sim.Time) (sim.Time, error) {
			return dev.WritePage(sim.Max(t, at), wKeys.Next(), nil)
		},
		ReadRate: e4ReadRate,
		Read: func(t sim.Time) (sim.Time, error) {
			done, _, err := dev.ReadPage(sim.Max(t, at), rKeys.Next())
			return done, err
		},
		Start:    at,
		Duration: dur,
		Warmup:   warm,
		Src:      src,
		Probe:    probe,
	})
	if res.Err != nil {
		return E4Result{}, res.Err
	}
	return E4Result{
		Name:         "conventional (OP 7%)",
		WritePagesPS: res.WriteScale,
		ReadMean:     res.ReadLat.Mean,
		ReadP50:      res.ReadLat.P50,
		ReadP90:      res.ReadLat.P90,
		ReadP99:      res.ReadLat.P99,
		ReadP999:     res.ReadLat.P999,
		WriteP99:     res.WriteLat.P99,
		Attr:         probe.Attr.Snapshot().Delta(before),
		Crit:         critDrain(probe),
		CritOpts:     critpath.PredictOpts{},
		Exem:         exemplarDrain(probe),
		ExemNames:    exemplarNames(probe),
		Device:       DeviceState{Name: "conventional (OP 7%)", Wear: dev.Flash().Wear()},
	}, nil
}

// E4ZNS drives the zone-native equivalent: writers append through zones in
// a circular log, resetting each wholly-invalidated zone before reuse —
// the host schedules all reclamation, and no data is ever copied.
func E4ZNS(cfg Config) (E4Result, error) {
	scaleWP, wpScale := wpSerialScale(cfg)
	dev, err := zns.New(zns.Config{
		Geom: e4Geometry(), Lat: scaledLatencies(cfg, flash.LatenciesFor(flash.TLC), true),
		ZoneBlocks: 4, ScaleWPSerial: scaleWP, WPSerialScale: wpScale})
	if err != nil {
		return E4Result{}, err
	}
	probe := attrProbe(cfg)
	dev.SetProbe(probe)
	exemplarArm(cfg, probe, "zns (host-scheduled resets)",
		critpath.PredictOpts{ErasesAreResets: true},
		znsDevSnap(dev, e4Geometry(), rawReclaim(dev)))
	aud := dev.AttachAuditor()
	nz := dev.NumZones()
	// Pre-fill every zone so reads have targets and reuse requires resets.
	var at sim.Time
	for z := 0; z < nz; z++ {
		for o := int64(0); o < dev.ZonePages(); o++ {
			if _, at, err = dev.Append(at, z, nil); err != nil {
				return E4Result{}, err
			}
		}
	}
	src := workload.NewSource(cfg.Seed)
	rSrc := workload.NewUniform(src, int64(nz)*dev.ZonePages())
	nextZone := 0
	var cur = -1
	writeOne := func(t sim.Time) (sim.Time, error) {
		if cur < 0 || dev.WP(cur) >= dev.WritableCap(cur) {
			// Recycle the next zone in FIFO order: reset (erasing its now
			// stale data) and continue appending. The reset is the only
			// "GC" and the host chose its moment.
			z := nextZone
			nextZone = (nextZone + 1) % nz
			done, err := dev.Reset(t, z)
			if err != nil {
				return t, err
			}
			cur = z
			t = done
		}
		_, done, err := dev.Append(t, cur, nil)
		return done, err
	}
	dur, warm := e4Duration(cfg)
	before := probe.Attr.Snapshot()
	critDrain(probe)     // discard prefill paths
	exemplarDrain(probe) // likewise for exemplars
	res := RunMixed(MixedCfg{
		Writers:  4,
		Write:    func(t sim.Time) (sim.Time, error) { return writeOne(sim.Max(t, at)) },
		ReadRate: e4ReadRate,
		Read: func(t sim.Time) (sim.Time, error) {
			// Read only below the target zone's write pointer.
			lba := rSrc.Next()
			z, off := dev.ZoneOf(lba)
			if wp := dev.WP(z); wp == 0 {
				z, off = 0, 0
				if dev.WP(0) == 0 {
					return t, nil
				}
			} else if off >= wp {
				off = off % wp
			}
			done, _, err := dev.Read(sim.Max(t, at), dev.LBA(z, off))
			return done, err
		},
		Start:    at,
		Duration: dur,
		Warmup:   warm,
		Src:      src,
		Probe:    probe,
	})
	if res.Err != nil {
		return E4Result{}, res.Err
	}
	if err := aud.Check(); err != nil {
		return E4Result{}, err
	}
	return E4Result{
		Name:         "zns (host-scheduled resets)",
		WritePagesPS: res.WriteScale,
		ReadMean:     res.ReadLat.Mean,
		ReadP50:      res.ReadLat.P50,
		ReadP90:      res.ReadLat.P90,
		ReadP99:      res.ReadLat.P99,
		ReadP999:     res.ReadLat.P999,
		WriteP99:     res.WriteLat.P99,
		Attr:         probe.Attr.Snapshot().Delta(before),
		Crit:         critDrain(probe),
		CritOpts:     critpath.PredictOpts{ErasesAreResets: true},
		Exem:         exemplarDrain(probe),
		ExemNames:    exemplarNames(probe),
		Device:       deviceState("zns (host-scheduled resets)", dev, aud),
	}, nil
}

const e4ReadRate = 3000 // reads per virtual second

func e4Duration(cfg Config) (dur, warm sim.Time) {
	if cfg.Quick {
		return 400 * sim.Millisecond, 100 * sim.Millisecond
	}
	return 2 * sim.Second, 500 * sim.Millisecond
}

func runE4(cfg Config) (Report, error) {
	r := Report{
		ID:         "E4",
		Title:      "Mixed read/write: conventional vs ZNS",
		PaperClaim: "60% lower average read latency, ~3x higher throughput on ZNS",
		Header: []string{"Device", "Write pages/s", "Read mean (us)", "Read p99 (us)",
			"Read p999 (us)", "Write p99 (us)"},
	}
	var conv, z E4Result
	if err := runParts(cfg, part(&conv, E4Conventional), part(&z, E4ZNS)); err != nil {
		return r, err
	}
	for _, e := range []E4Result{conv, z} {
		r.AddRow(e.Name, fmt.Sprintf("%.0f", e.WritePagesPS),
			fmt.Sprintf("%.0f", e.ReadMean.Micros()),
			fmt.Sprintf("%.0f", e.ReadP99.Micros()),
			fmt.Sprintf("%.0f", e.ReadP999.Micros()),
			fmt.Sprintf("%.0f", e.WriteP99.Micros()))
		r.AddBreakdown(e.Name, e.Attr)
		r.AddCrit(cfg, e.Name, e.Crit, e.CritOpts, e.Attr)
		r.AddExemplars(cfg, e.Name, e.Exem, e.CritOpts, e.ExemNames)
		r.AddDeviceState(e.Device)
		r.Bench = append(r.Bench, BenchEntry{
			Experiment: "E4", Name: e.Name,
			WritePPS:    e.WritePagesPS,
			ReadMeanUs:  e.ReadMean.Micros(),
			ReadP50Us:   e.ReadP50.Micros(),
			ReadP90Us:   e.ReadP90.Micros(),
			ReadP99Us:   e.ReadP99.Micros(),
			ReadP999Us:  e.ReadP999.Micros(),
			WriteP99Us:  e.WriteP99.Micros(),
			Attribution: e.Attr.Dump(),
			CritPath:    critBench(e.Crit, e.CritOpts),
			Exemplars:   e.Exem.Bench(),
		})
	}
	r.AddNote("throughput ratio (zns/conv): %.2fx; read-mean reduction: %.0f%%; read-p99 ratio: %.2fx",
		z.WritePagesPS/conv.WritePagesPS,
		(1-float64(z.ReadMean)/float64(conv.ReadMean))*100,
		float64(conv.ReadP99)/float64(z.ReadP99))
	if w, rd := conv.Attr.Ops[telemetry.OpWrite], conv.Attr.Ops[telemetry.OpRead]; w.Count > 0 && rd.Count > 0 {
		r.AddNote("conventional tails decomposed: write p99=%.0fus of which gc_stall p99=%.0fus; read p99=%.0fus of which lun_wait (GC traffic) p99=%.0fus",
			w.Total.Percentile(99).Micros(),
			w.Phase[telemetry.PhaseGCStall].Percentile(99).Micros(),
			rd.Total.Percentile(99).Micros(),
			rd.Phase[telemetry.PhaseLUNWait].Percentile(99).Micros())
	}
	return r, nil
}
