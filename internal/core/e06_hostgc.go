package core

import (
	"fmt"

	"blockhead/internal/flash"
	"blockhead/internal/ftl"
	"blockhead/internal/hostftl"
	"blockhead/internal/sim"
	"blockhead/internal/telemetry"
	"blockhead/internal/telemetry/critpath"
	"blockhead/internal/telemetry/exemplar"
	"blockhead/internal/workload"
	"blockhead/internal/zns"
)

func init() {
	register(Experiment{
		ID:         "E6",
		Title:      "Host-scheduled reclamation (IBM SALSA on ZNS, §2.4)",
		PaperClaim: "22x lower tail latencies, 65% higher application throughput",
		Run:        runE6,
	})
}

func e6Geometry() flash.Geometry {
	return flash.Geometry{Channels: 4, DiesPerChan: 1, PlanesPerDie: 1,
		BlocksPerLUN: 64, PagesPerBlock: 64, PageSize: 4096}
}

// E6Result is one configuration's measurement: closed-loop write throughput
// (phase A) and read tail latency under a fixed offered load (phase B).
type E6Result struct {
	Name         string
	WritePagesPS float64
	WA           float64
	ReadMean     sim.Time
	ReadP50      sim.Time
	ReadP90      sim.Time
	ReadP99      sim.Time
	ReadP999     sim.Time
	WriteP99     sim.Time
	WriteMax     sim.Time
	// Attr is the per-phase latency attribution over the tail-latency phase
	// (phase B) of the drive.
	Attr telemetry.AttrSnapshot
	// Crit is the critical-path recording over phase B; CritOpts selects
	// the stack's replay model (zoned: erases are resets).
	Crit     critpath.Snapshot
	CritOpts critpath.PredictOpts
	// Exem is the drained exemplar reservoir over phase B (the slowest IOs
	// with full forensics); ExemNames are the tenant labels.
	Exem      exemplar.Snapshot
	ExemNames [telemetry.MaxTenants]string
	// Device is the end-of-run device snapshot (wear, zone census, audit).
	Device DeviceState
}

// rebaseSeqs shifts the result's exemplar sequence numbers after a
// parallel run, restoring the serial reference's cross-stack numbering.
func (e *E6Result) rebaseSeqs(delta uint64) { e.Exem.Rebase(delta) }

// e6Stack abstracts the two configurations for the shared two-phase drive.
type e6Stack struct {
	name     string
	write    OpFunc
	read     OpFunc
	maintain OpFunc // optional paced maintenance (host-scheduled GC)
	counters func() (hostWrites, flashPrograms uint64)
	at       sim.Time // virtual time after pre-fill and aging
	src      *workload.Source
	probe    *telemetry.Probe // per-stack attribution probe
	critOpts critpath.PredictOpts
	// device snapshots the end-of-run device state (wear/census/audit).
	device func() (DeviceState, error)
}

// The fixed offered load for the tail phase: ~55% of the conventional
// configuration's measured write capacity, so both stacks are stable and
// tails reflect reclamation interference rather than saturation.
const (
	e6ReadRate  = 2000.0
	e6WriteRate = 700.0
	// Maintenance ticks: paced so the worst case (budget copies + one
	// erase per tick) injects well under the device's spare bandwidth —
	// ~800 copies/s against a ~175 copies/s requirement at the offered
	// load. Pacing is the whole point: reclamation must never arrive in
	// bursts the reads can feel (§4.1).
	e6MaintTickRate = 400.0
)

func e6MaintRate(m OpFunc) float64 {
	if m == nil {
		return 0
	}
	return e6MaintTickRate
}

func e6Measure(s e6Stack, cfg Config) (E6Result, error) {
	durA, durB, warm := 1*sim.Second, 2*sim.Second, 250*sim.Millisecond
	if cfg.Quick {
		durA, durB, warm = 300*sim.Millisecond, 500*sim.Millisecond, 100*sim.Millisecond
	}
	h0, p0 := s.counters()
	// Phase A: closed-loop throughput.
	resA := RunMixed(MixedCfg{
		Writers: 2, Write: s.write,
		Start: s.at, Duration: durA, Warmup: warm, Src: s.src,
		Probe: s.probe,
	})
	if resA.Err != nil {
		return E6Result{}, resA.Err
	}
	// Phase B: fixed offered load, measure read tails. The host stack runs
	// its reclamation as a separate paced stream. The attribution breakdown
	// covers this phase only — it is the one the tail claims are about.
	beforeB := s.probe.Attribution().Snapshot()
	critDrain(s.probe)     // discard prefill/phase-A paths
	exemplarDrain(s.probe) // likewise for exemplars
	resB := RunMixed(MixedCfg{
		WriteRate: e6WriteRate, Write: s.write,
		ReadRate: e6ReadRate, Read: s.read,
		AuxRate: e6MaintRate(s.maintain), Aux: s.maintain,
		Start: s.at + durA, Duration: durB, Warmup: warm, Src: s.src,
		Probe: s.probe,
	})
	if resB.Err != nil {
		return E6Result{}, resB.Err
	}
	attr := s.probe.Attribution().Snapshot().Delta(beforeB)
	crit := critDrain(s.probe)
	exem := exemplarDrain(s.probe)
	h1, p1 := s.counters()
	wa := float64(p1-p0) / float64(h1-h0)
	var ds DeviceState
	if s.device != nil {
		var err error
		if ds, err = s.device(); err != nil {
			return E6Result{}, err
		}
	}
	return E6Result{
		Attr:         attr,
		Crit:         crit,
		CritOpts:     s.critOpts,
		Exem:         exem,
		ExemNames:    exemplarNames(s.probe),
		Device:       ds,
		Name:         s.name,
		WritePagesPS: resA.WriteScale,
		WA:           wa,
		ReadMean:     resB.ReadLat.Mean,
		ReadP50:      resB.ReadLat.P50,
		ReadP90:      resB.ReadLat.P90,
		ReadP99:      resB.ReadLat.P99,
		ReadP999:     resB.ReadLat.P999,
		WriteP99:     resB.WriteLat.P99,
		WriteMax:     resB.WriteLat.Max,
	}, nil
}

// E6Conventional is the baseline: a skewed block workload on a conventional
// SSD whose opaque FTL does foreground GC.
func E6Conventional(cfg Config) (E6Result, error) {
	dev, err := ftl.NewDefault(e6Geometry(), scaledLatencies(cfg, flash.LatenciesFor(flash.TLC), false), 0.11)
	if err != nil {
		return E6Result{}, err
	}
	probe := attrProbe(cfg)
	dev.SetProbe(probe)
	exemplarArm(cfg, probe, "conventional (opaque device GC)", critpath.PredictOpts{},
		convDevSnap(dev, e6Geometry()))
	var at sim.Time
	for lpn := int64(0); lpn < dev.CapacityPages(); lpn++ {
		if at, err = dev.WritePage(at, lpn, nil); err != nil {
			return E6Result{}, err
		}
	}
	src := workload.NewSource(cfg.Seed)
	hc := workload.NewHotCold(src, dev.CapacityPages(), 0.1, 0.9)
	for i := int64(0); i < dev.CapacityPages(); i++ { // age to steady state
		if at, err = dev.WritePage(at, hc.Next(), nil); err != nil {
			return E6Result{}, err
		}
	}
	rKeys := workload.NewUniform(src, dev.CapacityPages())
	return e6Measure(e6Stack{
		name:  "conventional (opaque device GC)",
		write: func(t sim.Time) (sim.Time, error) { return dev.WritePage(t, hc.Next(), nil) },
		read: func(t sim.Time) (sim.Time, error) {
			done, _, err := dev.ReadPage(t, rKeys.Next())
			return done, err
		},
		counters: func() (uint64, uint64) {
			c := dev.Counters()
			return c.HostWritePages, c.FlashProgramPages
		},
		at:    at,
		src:   src,
		probe: probe,
		device: func() (DeviceState, error) {
			return DeviceState{Name: "conventional (opaque device GC)",
				Wear: dev.Flash().Wear()}, nil
		},
	}, cfg)
}

// e6ZonedCritOpts is the replay model for the host-FTL-on-ZNS stacks:
// every erase is a zone reset, so zone_reset counterfactuals reach
// erase-bound waits.
var e6ZonedCritOpts = critpath.PredictOpts{ErasesAreResets: true}

// E6HostFTL is the SALSA-style configuration: a host log-structured
// translation layer over ZNS with incremental reclamation spread across
// writes, simple-copy relocation, and hot/cold stream separation from
// application knowledge the device never had (§4.1).
func E6HostFTL(cfg Config) (E6Result, error) {
	// Narrow zones (one erasure block each) give the host the same
	// reclamation granularity the conventional FTL enjoys; four open zones
	// per stream restore write parallelism across LUNs. OPFraction 0.20
	// matches the conventional baseline's *effective* spare (its 11% OP
	// plus its fixed reserve floor and frontier headroom).
	scaleWP, wpScale := wpSerialScale(cfg)
	dev, err := zns.New(zns.Config{Geom: e6Geometry(),
		Lat:        scaledLatencies(cfg, flash.LatenciesFor(flash.TLC), true),
		ZoneBlocks: 1, ScaleWPSerial: scaleWP, WPSerialScale: wpScale})
	if err != nil {
		return E6Result{}, err
	}
	f, err := hostftl.New(dev, hostftl.Config{
		OPFraction:     0.20,
		Streams:        2,
		ZonesPerStream: 4,
		UseSimpleCopy:  true,
		GCMode:         hostftl.GCIncremental,
		GCChunkPages:   8,
	})
	if err != nil {
		return E6Result{}, err
	}
	probe := attrProbe(cfg)
	f.SetProbe(probe)
	exemplarArm(cfg, probe, "host FTL on ZNS (paced GC + streams)", e6ZonedCritOpts,
		znsDevSnap(dev, e6Geometry(), hostReclaim(f)))
	aud := dev.AttachAuditor()
	var at sim.Time
	src := workload.NewSource(cfg.Seed)
	hc := workload.NewHotCold(src, f.CapacityPages(), 0.1, 0.9)
	writeOne := func(t sim.Time) (sim.Time, error) {
		k := hc.Next()
		stream := 1
		if hc.IsHot(k) {
			stream = 0
		}
		return f.WriteStream(t, k, stream, nil)
	}
	for lpn := int64(0); lpn < f.CapacityPages(); lpn++ {
		if at, err = f.Write(at, lpn, nil); err != nil {
			return E6Result{}, err
		}
	}
	for i := int64(0); i < f.CapacityPages(); i++ { // age to steady state
		if at, err = writeOne(at); err != nil {
			return E6Result{}, err
		}
	}
	rKeys := workload.NewUniform(src, f.CapacityPages())
	return e6Measure(e6Stack{
		name:  "host FTL on ZNS (paced GC + streams)",
		write: writeOne,
		read: func(t sim.Time) (sim.Time, error) {
			done, _, err := f.Read(t, rKeys.Next())
			return done, err
		},
		maintain: func(t sim.Time) (sim.Time, error) {
			// A few pages of relocation per tick, on the host's own clock,
			// keeping the pool comfortably above the inline thresholds.
			f.MaintenanceStep(t, 2, 12)
			return t, nil
		},
		counters: func() (uint64, uint64) {
			return f.HostWrites(), f.Counters().FlashProgramPages
		},
		at:       at,
		src:      src,
		probe:    probe,
		critOpts: e6ZonedCritOpts,
		device: func() (DeviceState, error) {
			if err := aud.Check(); err != nil {
				return DeviceState{}, err
			}
			return deviceState("host FTL on ZNS (paced GC + streams)", dev, aud), nil
		},
	}, cfg)
}

func runE6(cfg Config) (Report, error) {
	r := Report{
		ID:         "E6",
		Title:      "Host-scheduled GC vs device-opaque GC",
		PaperClaim: "host stack: 22x lower tail latency, 65% higher throughput (IBM SALSA)",
		Header: []string{"Configuration", "Write pages/s", "WA",
			"Read mean (us)", "Read p99 (us)", "Read p999 (us)"},
	}
	var conv, host E6Result
	if err := runParts(cfg, part(&conv, E6Conventional), part(&host, E6HostFTL)); err != nil {
		return r, err
	}
	for _, e := range []E6Result{conv, host} {
		r.AddRow(e.Name, fmt.Sprintf("%.0f", e.WritePagesPS), fmt.Sprintf("%.2f", e.WA),
			fmt.Sprintf("%.0f", e.ReadMean.Micros()),
			fmt.Sprintf("%.0f", e.ReadP99.Micros()),
			fmt.Sprintf("%.0f", e.ReadP999.Micros()))
		r.AddBreakdown(e.Name, e.Attr)
		r.AddCrit(cfg, e.Name, e.Crit, e.CritOpts, e.Attr)
		r.AddExemplars(cfg, e.Name, e.Exem, e.CritOpts, e.ExemNames)
		r.AddDeviceState(e.Device)
		r.Bench = append(r.Bench, BenchEntry{
			Experiment: "E6", Name: e.Name,
			WritePPS:    e.WritePagesPS,
			WriteAmp:    e.WA,
			ReadMeanUs:  e.ReadMean.Micros(),
			ReadP50Us:   e.ReadP50.Micros(),
			ReadP90Us:   e.ReadP90.Micros(),
			ReadP99Us:   e.ReadP99.Micros(),
			ReadP999Us:  e.ReadP999.Micros(),
			WriteP99Us:  e.WriteP99.Micros(),
			Attribution: e.Attr.Dump(),
			CritPath:    critBench(e.Crit, e.CritOpts),
			Exemplars:   e.Exem.Bench(),
		})
	}
	r.AddNote("tail ratio (p999 conv/host): %.1fx; throughput gain: %.0f%%",
		float64(conv.ReadP999)/float64(host.ReadP999),
		(host.WritePagesPS/conv.WritePagesPS-1)*100)
	return r, nil
}
