package core

import (
	"fmt"

	"blockhead/internal/cost"
	"blockhead/internal/flash"
	"blockhead/internal/ftl"
	"blockhead/internal/hostftl"
	"blockhead/internal/sim"
	"blockhead/internal/workload"
	"blockhead/internal/zns"
)

func init() {
	register(Experiment{
		ID:         "X2",
		Title:      "Extension: multi-stream writes vs ZNS (§2.3)",
		PaperClaim: "\"multi-streams are a workaround to hosts' limited control over data placement in conventional SSDs; the high hardware costs of conventional devices remain\"",
		Run:        runX2,
	})
}

const x2Groups = 8

func x2Geometry() flash.Geometry {
	return flash.Geometry{Channels: 2, DiesPerChan: 1, PlanesPerDie: 1,
		BlocksPerLUN: 112, PagesPerBlock: 64, PageSize: 4096}
}

// x2Key draws an LBA from one of x2Groups equal-size regions whose update
// rates fall off geometrically — eight distinct data lifetimes sharing one
// device.
func x2Key(src *workload.Source, capacity int64) (lpn int64, group int) {
	// Group g has weight 2^-(g) (normalized): group 0 is hottest.
	r := src.Float64() * (2 - 2/float64(int64(1)<<x2Groups))
	w := 1.0
	for g := 0; g < x2Groups; g++ {
		if r < w || g == x2Groups-1 {
			region := capacity / x2Groups
			return int64(g)*region + src.Int63n(region), g
		}
		r -= w
		w /= 2
	}
	panic("unreachable")
}

// x2Churn drives fill + churn through write, returning steady-state WA.
func x2Churn(capacity int64, seed int64, quick bool,
	write func(at sim.Time, lpn int64, group int) (sim.Time, error),
	counters func() (host, programs uint64)) (float64, error) {
	src := workload.NewSource(seed)
	var at sim.Time
	var err error
	for lpn := int64(0); lpn < capacity; lpn++ {
		if at, err = write(at, lpn, int(lpn*x2Groups/capacity)); err != nil {
			return 0, err
		}
	}
	churn := capacity * 2
	if quick {
		churn = capacity
	}
	h0, p0 := counters()
	for i := int64(0); i < churn; i++ {
		lpn, g := x2Key(src, capacity)
		if at, err = write(at, lpn, g); err != nil {
			return 0, err
		}
	}
	h1, p1 := counters()
	return float64(p1-p0) / float64(h1-h0), nil
}

func runX2(cfg Config) (Report, error) {
	r := Report{
		ID:         "X2",
		Title:      "Multi-stream conventional vs ZNS under mixed lifetimes",
		PaperClaim: "streams recover most of the placement benefit, but the device still pays page-map DRAM and GC overprovisioning",
		Header:     []string{"Configuration", "WriteAmp", "On-board DRAM (1 TB scale)", "GC overprovisioning"},
	}
	lat := flash.LatenciesFor(flash.TLC)
	const tb = int64(1) << 40
	convDRAM := fmt.Sprintf("%.0f MiB", float64(cost.ConvMappingBytes(tb, 4096))/(1<<20))
	znsDRAM := fmt.Sprintf("%.0f KiB", float64(cost.ZNSMappingBytes(tb, 16<<20))/(1<<10))

	// Conventional, 1 stream and 8 streams.
	for _, streams := range []int{1, x2Groups} {
		dev, err := ftl.New(ftl.Config{Geom: x2Geometry(), Lat: lat,
			OPFraction: 0.07, Streams: streams,
			HotColdSeparation: true, TrimSupported: true})
		if err != nil {
			return r, err
		}
		wa, err := x2Churn(dev.CapacityPages(), cfg.Seed, cfg.Quick,
			func(at sim.Time, lpn int64, group int) (sim.Time, error) {
				return dev.WritePageStream(at, lpn, group%streams, nil)
			},
			func() (uint64, uint64) {
				c := dev.Counters()
				return c.HostWritePages, c.FlashProgramPages
			})
		if err != nil {
			return r, err
		}
		name := "conventional, no streams"
		if streams > 1 {
			name = fmt.Sprintf("conventional, %d streams", streams)
		}
		r.AddRow(name, fmt.Sprintf("%.2f", wa), convDRAM, "7-28% flash")
	}

	// ZNS with a host FTL using the same 8 lifetime streams.
	dev, err := zns.New(zns.Config{Geom: x2Geometry(), Lat: lat, ZoneBlocks: 1})
	if err != nil {
		return r, err
	}
	f, err := hostftl.New(dev, hostftl.Config{
		OPFraction: 0.22, Streams: x2Groups, ZonesPerStream: 1,
		UseSimpleCopy: true, GCMode: hostftl.GCIncremental,
	})
	if err != nil {
		return r, err
	}
	wa, err := x2Churn(f.CapacityPages(), cfg.Seed, cfg.Quick,
		func(at sim.Time, lpn int64, group int) (sim.Time, error) {
			return f.WriteStream(at, lpn, group, nil)
		},
		func() (uint64, uint64) {
			return f.HostWrites(), f.Counters().FlashProgramPages
		})
	if err != nil {
		return r, err
	}
	r.AddRow(fmt.Sprintf("zns host FTL, %d streams", x2Groups),
		fmt.Sprintf("%.2f", wa), znsDRAM, "none (host-chosen)")
	r.AddNote("8 LBA regions with geometrically decaying update rates (8 data lifetimes)")
	r.AddNote("streams close most of the WA gap on conventional hardware — but the")
	r.AddNote("page-map DRAM and fixed overprovisioning remain, which is §2.3's point")
	return r, nil
}
