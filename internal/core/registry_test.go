package core

import (
	"strings"
	"testing"
)

// TestRegistryIsClean pins the real registry: unique IDs, no numbering
// holes in any series.
func TestRegistryIsClean(t *testing.T) {
	if err := CheckRegistry(); err != nil {
		t.Fatal(err)
	}
}

// TestCheckRegistryCatches proves the checker actually fires on the defect
// classes it documents, using a scratch registry.
func TestCheckRegistryCatches(t *testing.T) {
	saved := registry
	defer func() { registry = saved }()

	cases := []struct {
		name string
		ids  []string
		want string // substring of the error, "" for clean
	}{
		{"clean", []string{"E1", "E2", "X1"}, ""},
		{"duplicate", []string{"E1", "e1"}, "duplicate"},
		{"hole", []string{"E1", "E3"}, "hole"},
		{"malformed", []string{"E1", "bogus"}, "malformed"},
		{"zero", []string{"E0"}, "malformed"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			registry = nil
			for _, id := range tc.ids {
				registry = append(registry, Experiment{ID: id, Title: id})
			}
			err := CheckRegistry()
			if tc.want == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error containing %q, got %v", tc.want, err)
			}
		})
	}
}
