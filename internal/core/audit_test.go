package core

import (
	"io"
	"strings"
	"testing"

	"blockhead/internal/flash"
	"blockhead/internal/hostftl"
	"blockhead/internal/sim"
	"blockhead/internal/telemetry"
	"blockhead/internal/workload"
	"blockhead/internal/zns"
)

// E8 cycles hundreds of zones through open->full->reset under an active-zone
// limit with seven concurrent tenants — the hardest state-machine workout in
// the suite. Both policies must audit clean.
func TestAuditE8BothPolicies(t *testing.T) {
	for _, p := range []ZonePolicy{StaticZones, DynamicZones} {
		res, err := E8Run(p, Config{Quick: true, Seed: 5})
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if !res.Device.Audited {
			t.Fatalf("%v: device state not audited", p)
		}
		if res.Device.AuditViolations != 0 {
			t.Fatalf("%v: %d audit violations", p, res.Device.AuditViolations)
		}
		if res.Device.ZoneMap == "" {
			t.Fatalf("%v: empty zone census", p)
		}
	}
}

// The churn property test: a deterministic random mix of every zone-management
// verb against a raw ZNS device, with the auditor shadowing each transition.
// Run under -race via `make check` (go test -race).
func TestAuditZoneChurnProperty(t *testing.T) {
	dev, err := zns.New(zns.Config{
		Geom: flash.Geometry{Channels: 2, DiesPerChan: 2, PlanesPerDie: 1,
			BlocksPerLUN: 8, PagesPerBlock: 8, PageSize: 4096},
		Lat:        flash.LatenciesFor(flash.TLC),
		ZoneBlocks: 2, // 16 zones of 16 pages
		MaxActive:  6,
		MaxOpen:    3,
	})
	if err != nil {
		t.Fatal(err)
	}
	probe := telemetry.NewProbe(telemetry.Options{})
	probe.FlightRec.DumpTo = io.Discard
	dev.SetProbe(probe)
	aud := dev.AttachAuditor()
	src := workload.NewSource(17)
	var at sim.Time
	iters := 20000
	if testing.Short() {
		iters = 4000
	}
	for i := 0; i < iters; i++ {
		z := src.Intn(dev.NumZones())
		switch src.Intn(8) {
		case 0:
			dev.Open(at, z) //nolint:errcheck // limit errors are the workload
		case 1:
			dev.Close(at, z) //nolint:errcheck
		case 2:
			dev.Finish(at, z) //nolint:errcheck
		case 3:
			if done, err := dev.Reset(at, z); err == nil {
				at = done
			}
		default: // appends dominate, like a real log
			if _, done, err := dev.Append(at, z, nil); err == nil {
				at = done
			}
		}
	}
	if v := aud.Violations(); v != 0 {
		t.Fatalf("churn produced %d auditor violations", v)
	}
	if err := aud.Check(); err != nil {
		t.Fatal(err)
	}
	if probe.FlightRec.Total() == 0 {
		t.Fatal("churn recorded no flight events")
	}
}

// The same property through the host FTL: its allocation, stream, and
// reclamation logic must drive the device through legal transitions only.
func TestAuditHostFTLChurn(t *testing.T) {
	dev, err := zns.New(zns.Config{
		Geom: flash.Geometry{Channels: 2, DiesPerChan: 2, PlanesPerDie: 1,
			BlocksPerLUN: 16, PagesPerBlock: 16, PageSize: 4096},
		Lat:        flash.LatenciesFor(flash.TLC),
		ZoneBlocks: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := hostftl.New(dev, hostftl.Config{
		OPFraction:     0.20,
		Streams:        2,
		ZonesPerStream: 2,
		UseSimpleCopy:  true,
		GCMode:         hostftl.GCIncremental,
		GCChunkPages:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	probe := telemetry.NewProbe(telemetry.Options{})
	probe.FlightRec.DumpTo = io.Discard
	f.SetProbe(probe)
	aud := dev.AttachAuditor()
	src := workload.NewSource(23)
	keys := workload.NewUniform(src, f.CapacityPages())
	var at sim.Time
	for lpn := int64(0); lpn < f.CapacityPages(); lpn++ {
		if at, err = f.Write(at, lpn, nil); err != nil {
			t.Fatal(err)
		}
	}
	churn := f.CapacityPages() * 3
	if testing.Short() {
		churn = f.CapacityPages()
	}
	for i := int64(0); i < churn; i++ {
		if at, err = f.WriteStream(at, keys.Next(), int(i%2), nil); err != nil {
			t.Fatal(err)
		}
	}
	if v := aud.Violations(); v != 0 {
		t.Fatalf("host-FTL churn produced %d auditor violations", v)
	}
	if err := aud.Check(); err != nil {
		t.Fatal(err)
	}
}

// The report renders wear, zone census, and audit verdicts for each stack.
func TestReportDeviceStateSections(t *testing.T) {
	var r Report
	r.AddDeviceState(DeviceState{
		Name: "stack-a",
		Wear: flash.WearSummary{Blocks: 8, TotalErases: 12, MaxErase: 3, MeanErase: 1.5, Spread: 2, Skew: 2},
	})
	r.AddDeviceState(DeviceState{
		Name: "stack-b", ZoneMap: "empty=3 open=1 closed=0 full=4 read-only=0 offline=0",
		Audited: true,
	})
	r.AddDeviceState(DeviceState{Name: "stack-c", Audited: true, AuditViolations: 2})
	out := r.Format()
	for _, want := range []string{
		"device state — stack-a: wear blocks=8",
		"zone map: empty=3 open=1",
		"zone state-machine audit: clean",
		"WARNING: 2 zone state-machine audit violations",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
