package core

import "testing"

// TestE4ReportByteIdentical pins the determinism contract end to end: two
// runs of the E4 latency experiment from the same seed must render
// byte-identical reports. simlint (cmd/simlint) enforces the contract
// statically — no wall clock, no global rand, no map-order leaks — and this
// test enforces it dynamically, so a nondeterminism regression fails even if
// it slips past the static rules.
func TestE4ReportByteIdentical(t *testing.T) {
	e, ok := ByID("E4")
	if !ok {
		t.Fatal("E4 not registered")
	}
	r1, err := e.Run(quickCfg)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	r2, err := e.Run(quickCfg)
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	a, b := r1.Format(), r2.Format()
	if a == b {
		return
	}
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			lo := i - 60
			if lo < 0 {
				lo = 0
			}
			t.Fatalf("reports diverge at byte %d:\n run1: ...%q\n run2: ...%q", i, a[lo:i+1], b[lo:i+1])
		}
	}
	t.Fatalf("reports differ in length: %d vs %d bytes", len(a), len(b))
}
