package core

import "testing"

// assertReportByteIdentical runs one experiment twice from the same seed
// and fails unless the rendered reports match byte for byte. simlint
// (cmd/simlint) enforces the determinism contract statically — no wall
// clock, no global rand, no map-order leaks — and this check enforces it
// dynamically, so a nondeterminism regression fails even if it slips past
// the static rules.
func assertReportByteIdentical(t *testing.T, id string) {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("%s not registered", id)
	}
	r1, err := e.Run(quickCfg)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	r2, err := e.Run(quickCfg)
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	a, b := r1.Format(), r2.Format()
	if a == b {
		return
	}
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			lo := i - 60
			if lo < 0 {
				lo = 0
			}
			t.Fatalf("reports diverge at byte %d:\n run1: ...%q\n run2: ...%q", i, a[lo:i+1], b[lo:i+1])
		}
	}
	t.Fatalf("reports differ in length: %d vs %d bytes", len(a), len(b))
}

// TestE4ReportByteIdentical pins the determinism contract end to end for
// the E4 latency experiment.
func TestE4ReportByteIdentical(t *testing.T) {
	assertReportByteIdentical(t, "E4")
}

// TestE14ReportByteIdentical pins it for the multi-tenant SLO experiment:
// the per-tenant breakdowns, the blame matrix, the windowed SLO verdicts,
// and the conservation line must all reproduce bit for bit from one seed.
func TestE14ReportByteIdentical(t *testing.T) {
	assertReportByteIdentical(t, "E14")
}
