package core

import (
	"testing"

	"blockhead/internal/flash"
	"blockhead/internal/ftl"
	"blockhead/internal/sim"
	"blockhead/internal/telemetry"
	"blockhead/internal/workload"
)

// checkedProbe returns a Config whose probe's attribution sink verifies, for
// every completed IO, the tentpole invariant: the charged phases sum exactly
// (zero-tick slack) to the end-to-end latency.
func checkedProbe(t *testing.T, seed int64) (Config, *telemetry.AttrSink, *int) {
	t.Helper()
	sink := telemetry.NewAttrSink()
	checked := new(int)
	sink.OnComplete = func(op telemetry.OpKind, total sim.Time, phases [telemetry.NumPhases]sim.Time) {
		*checked++
		var sum sim.Time
		for _, d := range phases {
			sum += d
		}
		if sum != total {
			t.Errorf("%s IO #%d: phases sum %d != total %d ns (diff %d)",
				op, *checked, sum, total, total-sum)
		}
		if total < 0 {
			t.Errorf("%s IO #%d: negative total %d", op, *checked, total)
		}
	}
	cfg := Config{Quick: true, Seed: seed, Probe: &telemetry.Probe{Attr: sink}}
	return cfg, sink, checked
}

// TestAttributionInvariantE4 runs both E4 stacks (conventional FTL with
// device GC; ZNS with host-scheduled resets) and asserts the per-IO sum
// invariant for every measured read and write.
func TestAttributionInvariantE4(t *testing.T) {
	cfg, sink, checked := checkedProbe(t, 7)
	if _, err := E4Conventional(cfg); err != nil {
		t.Fatal(err)
	}
	convChecked := *checked
	if convChecked == 0 {
		t.Fatal("conventional run completed no attributed IOs")
	}
	// The conventional stack must have attributed some foreground GC stall —
	// otherwise the decomposition the report prints is vacuous.
	if sink.Op(telemetry.OpWrite).PhaseSum[telemetry.PhaseGCStall] == 0 {
		t.Error("conventional writes show no gc_stall time")
	}
	zres, err := E4ZNS(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if *checked == convChecked {
		t.Fatal("zns run completed no attributed IOs")
	}
	if !zres.Device.Audited || zres.Device.AuditViolations != 0 {
		t.Fatalf("zns device audit: audited=%v violations=%d",
			zres.Device.Audited, zres.Device.AuditViolations)
	}
	if sink.Op(telemetry.OpWrite).PhaseSum[telemetry.PhaseZoneReset] == 0 {
		t.Error("zns writes show no zone_reset time")
	}
	if v := sink.Violations(); v != 0 {
		t.Fatalf("sink recorded %d violations", v)
	}
	t.Logf("E4: %d IOs attributed exactly", *checked)
}

// TestAttributionInvariantE6 covers the host-FTL stack: incremental GC,
// simple-copy relocation, and paced maintenance all run concurrently with
// the measured IOs.
func TestAttributionInvariantE6(t *testing.T) {
	cfg, sink, checked := checkedProbe(t, 11)
	if _, err := E6Conventional(cfg); err != nil {
		t.Fatal(err)
	}
	hres, err := E6HostFTL(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !hres.Device.Audited || hres.Device.AuditViolations != 0 {
		t.Fatalf("host-FTL device audit: audited=%v violations=%d",
			hres.Device.Audited, hres.Device.AuditViolations)
	}
	if *checked == 0 {
		t.Fatal("no attributed IOs")
	}
	if v := sink.Violations(); v != 0 {
		t.Fatalf("sink recorded %d violations", v)
	}
	t.Logf("E6: %d IOs attributed exactly", *checked)
}

// TestAttributionInvariantFTLChurn drives the E2-style steady-state churn
// directly, bracketing every host write by hand: heavy foreground GC with
// multi-page relocation fan-out is where suspend/resume accounting would
// break first.
func TestAttributionInvariantFTLChurn(t *testing.T) {
	geom := flash.Geometry{Channels: 2, DiesPerChan: 1, PlanesPerDie: 1,
		BlocksPerLUN: 32, PagesPerBlock: 32, PageSize: 4096}
	dev, err := ftl.NewDefault(geom, flash.LatenciesFor(flash.TLC), 0.10)
	if err != nil {
		t.Fatal(err)
	}
	sink := telemetry.NewAttrSink()
	var checked, gcStalled int
	sink.OnComplete = func(op telemetry.OpKind, total sim.Time, phases [telemetry.NumPhases]sim.Time) {
		checked++
		var sum sim.Time
		for _, d := range phases {
			sum += d
		}
		if sum != total {
			t.Errorf("write #%d: phases sum %d != total %d ns", checked, sum, total)
		}
		if phases[telemetry.PhaseGCStall] > 0 {
			gcStalled++
		}
	}
	dev.SetProbe(&telemetry.Probe{Attr: sink})
	var at sim.Time
	src := workload.NewSource(3)
	keys := workload.NewUniform(src, dev.CapacityPages())
	for lpn := int64(0); lpn < dev.CapacityPages(); lpn++ {
		if at, err = dev.WritePage(at, lpn, nil); err != nil {
			t.Fatal(err)
		}
	}
	// Churn 3x the logical space with per-IO attribution: deep into the
	// sustained-GC regime.
	for i := int64(0); i < dev.CapacityPages()*3; i++ {
		sink.Begin(telemetry.OpWrite, at)
		done, err := dev.WritePage(at, keys.Next(), nil)
		if err != nil {
			t.Fatal(err)
		}
		sink.End(done)
		at = done
	}
	if v := sink.Violations(); v != 0 {
		t.Fatalf("%d violations over %d churn writes", v, checked)
	}
	if gcStalled == 0 {
		t.Fatal("churn never hit a GC stall; test is not exercising fan-out")
	}
	t.Logf("churn: %d writes attributed exactly, %d with gc_stall", checked, gcStalled)
}
