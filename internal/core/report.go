// Package core is the experiment harness: it defines one runnable
// experiment per table, figure, or quantitative claim in the paper (E1-E12,
// plus ablations), drives the device models under the workloads those
// claims describe, and renders paper-style report tables.
//
// Every experiment is deterministic: rerunning with the same Config
// reproduces the same report bit-for-bit.
package core

import (
	"fmt"
	"sort"
	"strings"

	"blockhead/internal/flash"
	"blockhead/internal/sim"
	"blockhead/internal/telemetry"
	"blockhead/internal/telemetry/critpath"
	"blockhead/internal/telemetry/exemplar"
	"blockhead/internal/zns"
)

// Config parameterizes an experiment run.
type Config struct {
	// Quick shrinks sweeps and run lengths for tests and smoke runs;
	// full runs are used by cmd/znsbench and the benchmarks.
	Quick bool
	// Seed drives all workload randomness.
	Seed int64
	// Probe, when non-nil, is attached to the device models of the
	// experiments that support cross-layer telemetry (E2, E8, ...); the
	// caller exports its metrics and trace after the run. A nil probe is
	// the zero-overhead default.
	Probe *telemetry.Probe
	// FaultProfile names the fault.Profile driven by the experiments that
	// model NAND failures and power loss (E13). Empty selects each
	// experiment's own default; "none" disables injection entirely.
	FaultProfile string
	// Scenario, when non-nil, runs the experiments under counterfactual
	// phase scalings (znsbench -whatif): service-phase factors scale the
	// flash timing parameters, zone_reset additionally scales erase cost
	// on zoned stacks, and wp_serial scales the write-pointer
	// serialization the ZNS device exposes to the host. These runs are
	// the ground truth the what-if engine's predictions are validated
	// against (make whatif-campaign).
	Scenario *critpath.Scenario
	// Shards selects the scheduler for experiments built from independent
	// sub-simulations ("parts": one device stack + workload + telemetry
	// session each). 0 or 1 runs parts serially on the shared session —
	// today's loop, the reference implementation. N > 1 runs parts on an
	// internal/sim/shard scheduler with min(N, parts) lanes and merges at
	// the final barrier in part order; a seeded run's report is
	// byte-identical at any value (TestShardEquivalence is the gate).
	// Probe and explain runs force the serial path: both hang live state
	// (metric registries, the narrator) off one shared sink.
	Shards int
	// ExplainSeq, when nonzero, arms per-IO forensics (znsbench -explain):
	// instead of the critpath recorder and exemplar reservoir, the session
	// sink carries a narrator that records the measured IO with this
	// sequence number tick by tick. Drive it through Explain, which
	// retrieves the transcript after the run.
	ExplainSeq uint64

	// session carries per-run state shared across an experiment's stacks
	// (the attribution sink that numbers measured IOs, the narrator in
	// explain mode). register installs a fresh one per Run call, so IO
	// sequence numbers are stable per (experiment, seed) — the identity
	// `-explain <exp>:<seq>` replays.
	session *session
}

// DefaultConfig is the standard full-size run.
func DefaultConfig() Config { return Config{Seed: 42} }

// attrProbe returns a probe carrying the session's shared attribution sink,
// heatmap-source registry, flight recorder, and live publisher when
// cfg.Probe is set, or private instances otherwise. Experiments that drive
// several device stacks attach one of these to each stack instead of the
// full cfg.Probe: sharing the metric registry would let the stacks
// overwrite each other's gauges (flash/chan/N/util etc.), while the
// attribution sink, heat set (replace-by-name), and flight recorder are
// designed to be shared. The flight recorder is always present — even
// without cfg.Probe — so auditor and attribution violations inside
// experiments dump recent history.
func attrProbe(cfg Config) *telemetry.Probe {
	sink := cfg.Probe.Attribution()
	if sink == nil {
		// Share one sink across the experiment's stacks (via the per-run
		// session) so measured-IO sequence numbers are unique within the
		// run — the identity `-explain <exp>:<seq>` depends on it. The
		// aggregates tolerate sharing: experiments snapshot-delta around
		// their measured windows, exactly as in the cfg.Probe (live
		// dashboard) configuration.
		if cfg.session != nil {
			if cfg.session.sink == nil {
				cfg.session.sink = telemetry.NewAttrSink()
			}
			sink = cfg.session.sink
		} else {
			sink = telemetry.NewAttrSink()
		}
	}
	p := &telemetry.Probe{Attr: sink, HeatSrc: cfg.Probe.Heat(), FlightRec: cfg.Probe.Flight()}
	if p.FlightRec == nil {
		p.FlightRec = telemetry.NewFlight(0)
	}
	if sink.OnViolation == nil {
		fl := p.FlightRec
		sink.OnViolation = func(at sim.Time) {
			fl.Violation(at, telemetry.FlightAttrViolation, -1, "attribution_invariant", 0)
		}
	}
	if cfg.Probe != nil {
		p.Pub = cfg.Probe.Pub
	}
	// Arm the per-IO layers once per sink. Explain mode installs a
	// narrator as both the path and exemplar sink (the critpath recorder
	// and reservoir step aside; their report sections skip empty
	// snapshots gracefully). Otherwise: the critical-path recorder —
	// every experiment that attributes latency also records per-IO
	// critical paths (same charge feed, same exact-sum contract) — plus
	// the exemplar reservoir reading completed paths out of it.
	// Experiments drain both around their measured windows.
	if cfg.ExplainSeq != 0 && cfg.session != nil {
		if cfg.session.narrator == nil {
			cfg.session.narrator = exemplar.NewNarrator(cfg.ExplainSeq)
		}
		if sink.Path == nil {
			sink.Path = cfg.session.narrator
			sink.Exem = cfg.session.narrator
		}
	} else {
		if sink.Path == nil {
			critpath.Attach(sink, critpath.Options{})
		}
		if sink.Exem == nil {
			exemplar.Attach(sink, exemplar.Options{})
		}
	}
	return p
}

// Report is one experiment's rendered result.
type Report struct {
	ID         string
	Title      string
	PaperClaim string // what the paper says we should see
	Header     []string
	Rows       [][]string
	Notes      []string
	// Breakdowns are per-configuration latency-attribution sections,
	// rendered between the table and the notes.
	Breakdowns []Breakdown
	// Devices are per-configuration device-state sections (wear summary,
	// zone-state census, audit result), rendered after the breakdowns.
	Devices []DeviceState
	// Tenants are per-configuration per-tenant sections: per-tenant latency
	// and stall totals, the victim×culprit blame matrix with its exact
	// reconciliation, and SLO verdicts. Rendered after the device states.
	Tenants []TenantSection
	// Crit are per-configuration critical-path sections: phases ranked by
	// critical-path ticks (path vs total columns) and the what-if
	// predictions. Rendered after the attribution breakdowns.
	Crit []CritSection
	// Exemplars are per-configuration "slowest IOs" sections: the worst-K
	// tail exemplars with their exact phase timelines, blame, device
	// snapshots, and per-IO best counterfactual. Rendered after the
	// critical-path sections.
	Exemplars []ExemplarSection
	// Bench are the machine-readable results (znsbench -bench-json).
	Bench []BenchEntry
}

// Breakdown is one configuration's per-phase latency decomposition.
type Breakdown struct {
	Name string
	Attr telemetry.AttrDump
}

// DeviceState is one configuration's end-of-run device snapshot: flash wear
// plus, for zoned stacks, the zone-state census and the state-machine audit
// verdict.
type DeviceState struct {
	Name            string
	Wear            flash.WearSummary
	ZoneMap         string // zone census ("" for non-zoned stacks)
	Audited         bool
	AuditViolations uint64
}

// AddDeviceState appends a device-state section.
func (r *Report) AddDeviceState(ds DeviceState) {
	r.Devices = append(r.Devices, ds)
}

// deviceState snapshots a zoned stack: wear from the chip, census and audit
// verdict from the device/auditor.
func deviceState(name string, dev *zns.Device, aud *zns.Auditor) DeviceState {
	return DeviceState{
		Name:            name,
		Wear:            dev.Flash().Wear(),
		ZoneMap:         dev.StateCensus().String(),
		Audited:         aud != nil,
		AuditViolations: aud.Violations(),
	}
}

// TenantSection is one configuration's per-tenant observability block.
type TenantSection struct {
	Name string
	Snap telemetry.TenantSnapshot
	SLO  []telemetry.SLOResult
}

// AddTenants appends a per-tenant section. Snapshots with no active tenants
// are skipped, so single-tenant experiments render unchanged.
func (r *Report) AddTenants(name string, snap telemetry.TenantSnapshot, slo []telemetry.SLOResult) {
	for t := telemetry.TenantID(0); t < telemetry.MaxTenants; t++ {
		if snap.Active(t) {
			r.Tenants = append(r.Tenants, TenantSection{Name: name, Snap: snap, SLO: slo})
			return
		}
	}
}

// BenchEntry is one machine-readable benchmark result, the schema committed
// as BENCH_*.json to track the perf trajectory across PRs.
type BenchEntry struct {
	Experiment  string             `json:"experiment"`
	Name        string             `json:"name"`
	WritePPS    float64            `json:"write_pages_per_sec"`
	WriteAmp    float64            `json:"write_amp,omitempty"`
	ReadMeanUs  float64            `json:"read_mean_us"`
	ReadP50Us   float64            `json:"read_p50_us"`
	ReadP90Us   float64            `json:"read_p90_us"`
	ReadP99Us   float64            `json:"read_p99_us"`
	ReadP999Us  float64            `json:"read_p999_us"`
	WriteP99Us  float64            `json:"write_p99_us"`
	Attribution telemetry.AttrDump `json:"attribution"`
	// CritPath carries the critical-path invariant counters, top path
	// phase, and canonical what-if ratios (znsbench -bench-json; gated by
	// benchdiff at 0.1% like every other metric).
	CritPath *critpath.BenchSummary `json:"critpath,omitempty"`
	// Exemplars carries the exemplar reservoir's capture counts and worst
	// latencies (gated at 0.1% against BENCH_exemplars.json).
	Exemplars *exemplar.BenchSummary `json:"exemplars,omitempty"`
}

// AddRow appends a formatted row.
func (r *Report) AddRow(cells ...string) {
	r.Rows = append(r.Rows, cells)
}

// AddNote appends a free-form note line.
func (r *Report) AddNote(format string, args ...interface{}) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// AddBreakdown appends a latency-attribution section for one configuration.
// Snapshots with no completed IOs are skipped.
func (r *Report) AddBreakdown(name string, snap telemetry.AttrSnapshot) {
	d := snap.Dump()
	if len(d.Ops) == 0 {
		return
	}
	r.Breakdowns = append(r.Breakdowns, Breakdown{Name: name, Attr: d})
}

// Format renders the report as an aligned text table.
func (r Report) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", r.ID, r.Title)
	if r.PaperClaim != "" {
		fmt.Fprintf(&b, "paper: %s\n", r.PaperClaim)
	}
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteByte('\n')
	}
	line(r.Header)
	line(dashes(widths))
	for _, row := range r.Rows {
		line(row)
	}
	for _, bd := range r.Breakdowns {
		// The attribution table is critical-path ticks by construction
		// (suspended charges never land); the critical-path section below
		// adds the off-path ("total") view of the same phases.
		fmt.Fprintf(&b, "latency attribution — %s (critical-path ticks):\n", bd.Name)
		for _, op := range []string{"read", "write"} {
			od, ok := bd.Attr.Ops[op]
			if !ok {
				continue
			}
			fmt.Fprintf(&b, "  %-5s n=%d mean=%.1fus p50=%.1fus p99=%.1fus p999=%.1fus\n",
				op, od.Count, od.MeanUs, od.P50Us, od.P99Us, od.P999Us)
			for _, ph := range od.Phases {
				fmt.Fprintf(&b, "    %-12s mean=%8.1fus (%5.1f%%)  p99=%8.1fus  p999=%8.1fus\n",
					ph.Name, ph.MeanUs, ph.Frac*100, ph.P99Us, ph.P999Us)
			}
		}
		if bd.Attr.Violations > 0 {
			fmt.Fprintf(&b, "  WARNING: %d attribution invariant violations\n", bd.Attr.Violations)
		}
	}
	for _, cs := range r.Crit {
		formatCritSection(&b, cs)
	}
	for _, es := range r.Exemplars {
		formatExemplarSection(&b, es)
	}
	for _, ds := range r.Devices {
		fmt.Fprintf(&b, "device state — %s: wear blocks=%d bad=%d erases=%d max=%d mean=%.2f spread=%d skew=%.2f\n",
			ds.Name, ds.Wear.Blocks, ds.Wear.BadBlocks, ds.Wear.TotalErases,
			ds.Wear.MaxErase, ds.Wear.MeanErase, ds.Wear.Spread, ds.Wear.Skew)
		if ds.ZoneMap != "" {
			fmt.Fprintf(&b, "  zone map: %s\n", ds.ZoneMap)
		}
		if ds.Audited {
			if ds.AuditViolations > 0 {
				fmt.Fprintf(&b, "  WARNING: %d zone state-machine audit violations\n", ds.AuditViolations)
			} else {
				fmt.Fprintf(&b, "  zone state-machine audit: clean\n")
			}
		}
	}
	for _, ts := range r.Tenants {
		formatTenantSection(&b, ts)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// formatTenantSection renders one configuration's per-tenant block: the
// per-tenant/op latency and stall lines, the victim×culprit blame matrix,
// the exact blame-conservation reconciliation, and the SLO verdicts.
func formatTenantSection(b *strings.Builder, ts TenantSection) {
	fmt.Fprintf(b, "tenant breakdown — %s:\n", ts.Name)
	var active []telemetry.TenantID
	for t := telemetry.TenantID(0); t < telemetry.MaxTenants; t++ {
		if ts.Snap.Active(t) {
			active = append(active, t)
		}
	}
	for _, t := range active {
		for k := telemetry.OpKind(0); int(k) < telemetry.NumOps; k++ {
			oa := ts.Snap.Tenants[t].Ops[k]
			if oa.Count == 0 {
				continue
			}
			fmt.Fprintf(b, "  %-10s %-5s n=%-8d mean=%8.1fus p50=%8.1fus p99=%8.1fus stall=%8.1fus\n",
				ts.Snap.Name(t), k.String(), oa.Count,
				(sim.Time(float64(oa.TotalSum) / float64(oa.Count))).Micros(),
				oa.Total.Percentile(50).Micros(), oa.Total.Percentile(99).Micros(),
				oa.StallSum().Micros())
		}
	}
	fmt.Fprintf(b, "  blame matrix (stall us; victim rows × culprit cols):\n")
	fmt.Fprintf(b, "    %-10s", "")
	for _, c := range active {
		fmt.Fprintf(b, " %10s", ts.Snap.Name(c))
	}
	fmt.Fprintf(b, " | %10s\n", "suffered")
	var blameTot, stallTot sim.Time
	for _, v := range active {
		fmt.Fprintf(b, "    %-10s", ts.Snap.Name(v))
		for _, c := range active {
			fmt.Fprintf(b, " %10.1f", ts.Snap.Blame[v][c].Micros())
		}
		fmt.Fprintf(b, " | %10.1f\n", ts.Snap.SufferedNs(v).Micros())
		blameTot += ts.Snap.SufferedNs(v)
		stallTot += ts.Snap.StallNs(v)
	}
	fmt.Fprintf(b, "    %-10s", "blamed")
	for _, c := range active {
		fmt.Fprintf(b, " %10.1f", ts.Snap.BlamedNs(c).Micros())
	}
	fmt.Fprintf(b, " |\n")
	if reconciled := blameTot == stallTot && tenantRowsReconcile(ts.Snap, active); reconciled {
		fmt.Fprintf(b, "  blame conservation: sum(blame)=%dns == sum(stalls)=%dns (exact)\n",
			int64(blameTot), int64(stallTot))
	} else {
		fmt.Fprintf(b, "  WARNING: blame conservation broken: sum(blame)=%dns sum(stalls)=%dns\n",
			int64(blameTot), int64(stallTot))
	}
	for _, res := range ts.SLO {
		fmt.Fprintf(b, "  slo: %s\n", formatSLOResult(ts.Snap, res))
	}
}

// tenantRowsReconcile checks the per-victim conservation: each tenant's
// blame-matrix row sum equals its own stall-phase total exactly.
func tenantRowsReconcile(snap telemetry.TenantSnapshot, active []telemetry.TenantID) bool {
	for _, v := range active {
		if snap.SufferedNs(v) != snap.StallNs(v) {
			return false
		}
	}
	return true
}

// formatSLOResult renders one SLO verdict line.
func formatSLOResult(snap telemetry.TenantSnapshot, res telemetry.SLOResult) string {
	var obj []string
	if res.SLO.LatencyMax > 0 {
		obj = append(obj, fmt.Sprintf("p%g<=%.0fus", res.SLO.Pct, res.SLO.LatencyMax.Micros()))
	}
	if res.SLO.MinRate > 0 {
		obj = append(obj, fmt.Sprintf("rate>=%.0f/s", res.SLO.MinRate))
	}
	verdict := "PASS"
	if !res.OK {
		verdict = "FAIL"
	}
	return fmt.Sprintf("%-10s %-5s %-24s %s (burn=%.2f, %d/%d windows violated, worst p%g=%.1fus, worst rate=%.0f/s)",
		snap.Name(res.SLO.Tenant), res.SLO.Op.String(), strings.Join(obj, " "),
		verdict, res.BurnRate, res.Violated, res.Windows,
		res.SLO.Pct, res.WorstUs, res.WorstRate)
}

func dashes(widths []int) []string {
	out := make([]string, len(widths))
	for i, w := range widths {
		out[i] = strings.Repeat("-", w)
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Experiment is one reproducible table/figure/claim from the paper.
type Experiment struct {
	ID         string
	Title      string
	PaperClaim string
	Run        func(cfg Config) (Report, error)
}

var registry []Experiment

// register adds an experiment, wrapping its Run so every invocation gets a
// fresh per-run session (unless the caller already provided one — Explain
// does, to retrieve the narrator afterwards). The session scopes measured-IO
// sequence numbers to one (experiment, seed) run.
func register(e Experiment) {
	run := e.Run
	e.Run = func(cfg Config) (Report, error) {
		if cfg.session == nil {
			cfg.session = newSession()
		}
		return run(cfg)
	}
	registry = append(registry, e)
}

// All returns every registered experiment in numeric ID order (E1..E12,
// then ablations).
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.SliceStable(out, func(i, j int) bool { return idKey(out[i].ID) < idKey(out[j].ID) })
	return out
}

// idKey pads the numeric suffix so E2 sorts before E10, and ranks the
// paper experiments (E*) ahead of the ablations (A*).
func idKey(id string) string {
	i := 0
	for i < len(id) && (id[i] < '0' || id[i] > '9') {
		i++
	}
	rank := "1"
	if len(id) > 0 && (id[0] == 'E' || id[0] == 'e') {
		rank = "0"
	}
	return fmt.Sprintf("%s%s%06s", rank, id[:i], id[i:])
}

// ByID looks an experiment up.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if strings.EqualFold(e.ID, id) {
			return e, true
		}
	}
	return Experiment{}, false
}
