package core

import (
	"fmt"

	"blockhead/internal/flash"
	"blockhead/internal/ftl"
	"blockhead/internal/sim"
	"blockhead/internal/stats"
	"blockhead/internal/workload"
	"blockhead/internal/zkv"
	"blockhead/internal/zns"
)

func init() {
	register(Experiment{
		ID:         "E5",
		Title:      "LSM key-value store on conventional vs ZNS (RocksDB/ZenFS, §2.4)",
		PaperClaim: "WA drops 5x -> 1.2x; 2-4x lower read tail latency; 2x write throughput",
		Run:        runE5,
	})
}

// E5Result is one backend's measurement.
type E5Result struct {
	Name         string
	DeviceWA     float64
	AppWA        float64
	WriteBytesPS float64
	ReadMean     sim.Time
	ReadP99      sim.Time
	ReadP999     sim.Time
}

func e5Geometry() flash.Geometry {
	return flash.Geometry{Channels: 2, DiesPerChan: 1, PlanesPerDie: 1,
		BlocksPerLUN: 112, PagesPerBlock: 64, PageSize: 1024}
}

func e5Opts(seed int64) zkv.Options {
	return zkv.Options{MemtableBytes: 64 << 10, BaseLevelBytes: 256 << 10,
		TableTargetBytes: 32 << 10, Seed: seed}
}

// E5Run drives one backend: fill a working set that brings the device near
// full, then run an overwrite+read phase measuring read latency quantiles,
// write throughput, and end-to-end write amplification.
func E5Run(name string, backend zkv.Backend, cfg Config) (E5Result, error) {
	db := zkv.Open(backend, e5Opts(cfg.Seed))
	keys := 12000
	churn := keys
	if cfg.Quick {
		churn = keys / 2
	}
	src := workload.NewSource(cfg.Seed)
	val := make([]byte, 580)
	key := func(i int64) []byte { return []byte(fmt.Sprintf("user%08d", i)) }

	var at sim.Time
	for i := int64(0); i < int64(keys); i++ {
		var err error
		if at, err = db.Put(at, key(i), val); err != nil {
			return E5Result{}, fmt.Errorf("%s fill: %w", name, err)
		}
	}
	// Measured phase: a closed-loop overwrite writer with concurrent
	// open-loop point reads (RocksDB's readwhilewriting), so read tails
	// see compaction and device-GC interference as queueing.
	base := *backend.Counters()
	baseAt := at
	var userBytes uint64
	kg := workload.NewUniform(src, int64(keys))
	rg := workload.NewUniform(src, int64(keys))
	writesLeft := churn
	var lastWrite sim.Time
	res := RunMixed(MixedCfg{
		Writers: 1,
		Write: func(t sim.Time) (sim.Time, error) {
			if writesLeft == 0 {
				return t, ErrStopDrive // churn budget spent
			}
			writesLeft--
			userBytes += uint64(len(val) + 12)
			done, err := db.Put(t, key(kg.Next()), val)
			lastWrite = done
			return done, err
		},
		Readers: 2,
		Read: func(t sim.Time) (sim.Time, error) {
			done, _, found, err := db.Get(t, key(rg.Next()))
			if err != nil {
				return t, err
			}
			if !found {
				return t, fmt.Errorf("%s read: key missing", name)
			}
			return done, nil
		},
		Start:    at,
		Duration: sim.Hour, // the write budget, not the clock, ends the run
		Warmup:   50 * sim.Millisecond,
		Src:      src,
	})
	if res.Err != nil {
		return E5Result{}, fmt.Errorf("%s: %w", name, res.Err)
	}
	c := *backend.Counters()
	host := c.HostWritePages - base.HostWritePages
	programs := c.FlashProgramPages - base.FlashProgramPages
	wa := float64(programs) / float64(host)
	st := db.Stats()
	return E5Result{
		Name:         name,
		DeviceWA:     wa,
		AppWA:        st.AppWriteAmp(),
		WriteBytesPS: stats.Rate(userBytes, lastWrite-baseAt),
		ReadMean:     res.ReadLat.Mean,
		ReadP99:      res.ReadLat.P99,
		ReadP999:     res.ReadLat.P999,
	}, nil
}

// E5Backends builds the two calibrated backends: a trim-less conventional
// device with filesystem-style scattered allocation (the deployment the
// paper's RocksDB numbers describe) and a ZNS device with per-level zone
// streams (ZenFS-style).
func E5Backends(cfg Config) (*zkv.ConvBackend, *zkv.ZNSBackend, error) {
	convDev, err := ftl.New(ftl.Config{Geom: e5Geometry(), Lat: flash.LatenciesFor(flash.TLC),
		OPFraction: 0.03, HotColdSeparation: true, TrimSupported: false, StoreData: true})
	if err != nil {
		return nil, nil, err
	}
	cb, err := zkv.NewConvBackend(convDev, 64)
	if err != nil {
		return nil, nil, err
	}
	cb.SetAllocPolicy(zkv.ScatterFit)
	znsDev, err := zns.New(zns.Config{Geom: e5Geometry(), Lat: flash.LatenciesFor(flash.TLC),
		ZoneBlocks: 2, StoreData: true})
	if err != nil {
		return nil, nil, err
	}
	zb, err := zkv.NewZNSBackend(znsDev, 4)
	if err != nil {
		return nil, nil, err
	}
	return cb, zb, nil
}

func runE5(cfg Config) (Report, error) {
	r := Report{
		ID:         "E5",
		Title:      "LSM KV store: conventional vs ZNS backend",
		PaperClaim: "device WA 5x -> 1.2x; read tail 2-4x lower; write throughput 2x higher",
		Header: []string{"Backend", "Device WA", "App WA", "User MB/s",
			"Read mean (us)", "Read p99 (us)", "Read p999 (us)"},
	}
	cb, zb, err := E5Backends(cfg)
	if err != nil {
		return r, err
	}
	// The backends are built up front but fully independent (own devices,
	// own workload sources seeded per part), so each runs as one part.
	var conv, z E5Result
	err = runParts(cfg,
		part(&conv, func(c Config) (E5Result, error) {
			return E5Run("conventional (no trim, scattered alloc)", cb, c)
		}),
		part(&z, func(c Config) (E5Result, error) {
			return E5Run("zns (zone per level)", zb, c)
		}))
	if err != nil {
		return r, err
	}
	for _, e := range []E5Result{conv, z} {
		r.AddRow(e.Name, fmt.Sprintf("%.2f", e.DeviceWA), fmt.Sprintf("%.2f", e.AppWA),
			fmt.Sprintf("%.2f", e.WriteBytesPS/1e6),
			fmt.Sprintf("%.0f", e.ReadMean.Micros()),
			fmt.Sprintf("%.0f", e.ReadP99.Micros()),
			fmt.Sprintf("%.0f", e.ReadP999.Micros()))
	}
	r.AddNote("WA ratio %.1fx -> %.1fx; p99 ratio %.2fx; throughput ratio %.2fx",
		conv.DeviceWA, z.DeviceWA,
		float64(conv.ReadP99)/float64(z.ReadP99),
		z.WriteBytesPS/conv.WriteBytesPS)
	return r, nil
}
