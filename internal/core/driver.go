package core

import (
	"errors"

	"blockhead/internal/sim"
	"blockhead/internal/stats"
	"blockhead/internal/telemetry"
	"blockhead/internal/workload"
)

// ErrStopDrive may be returned by any OpFunc to end the drive early
// without reporting a failure (e.g. a fixed write budget is exhausted).
var ErrStopDrive = errors.New("core: stop drive")

// OpFunc issues one device operation at the given virtual time and returns
// its completion time.
type OpFunc func(at sim.Time) (done sim.Time, err error)

// MixedResult holds the measurements of a RunMixed drive.
type MixedResult struct {
	WriteOps   uint64
	WriteLat   stats.Summary
	ReadOps    uint64
	ReadLat    stats.Summary
	Elapsed    sim.Time
	WriteScale float64 // writes per virtual second
	ReadScale  float64 // reads per virtual second
	Streams    []StreamResult
	Err        error
}

// StreamCfg is one additional measured IO stream with its own tenant
// identity: every op it issues is attributed (and blamed) under Tenant.
// Exactly one of Rate (open-loop Poisson, per second) or Workers
// (closed-loop) should be set.
type StreamCfg struct {
	Name    string
	Tenant  telemetry.TenantID
	Kind    telemetry.OpKind // OpWrite or OpRead: attribution bucket
	Op      OpFunc
	Rate    float64
	Workers int
}

// StreamResult holds one stream's measurements.
type StreamResult struct {
	Name   string
	Tenant telemetry.TenantID
	Ops    uint64
	Lat    stats.Summary
	Rate   float64 // ops per virtual second
}

// MixedCfg describes a mixed open/closed-loop drive: Writers closed-loop
// workers each repeatedly issuing Write, plus an open-loop Poisson stream
// of Reads at ReadRate (per second). Latencies recorded after Warmup.
type MixedCfg struct {
	// Writers > 0 runs closed-loop writers (device-saturating).
	Writers int
	// WriteRate > 0 instead issues open-loop Poisson writes at this rate
	// per second (fixed offered load, the usual benchmark setup for tail
	// latency studies). Writers and WriteRate are mutually exclusive.
	WriteRate float64
	Write     OpFunc
	// Readers > 0 runs closed-loop readers (bounded queue even against a
	// saturating writer, like RocksDB's readwhilewriting threads);
	// ReadRate > 0 instead issues open-loop Poisson reads.
	Readers  int
	ReadRate float64
	Read     OpFunc
	// WriteTenant and ReadTenant tag the primary streams' attribution
	// records; zero (the "sys" tenant) preserves the single-tenant
	// behaviour.
	WriteTenant telemetry.TenantID
	ReadTenant  telemetry.TenantID
	// Streams are additional measured IO streams, each with its own tenant
	// identity — the noisy-neighbor setup (E14).
	Streams []StreamCfg
	// Aux is an optional unmeasured open-loop stream at AuxRate — used for
	// host maintenance work that runs on its own schedule (§4.1).
	AuxRate float64
	Aux     OpFunc
	// Start is the virtual time the drive begins (after any pre-fill);
	// Warmup and Duration are offsets from Start.
	Start    sim.Time
	Duration sim.Time
	Warmup   sim.Time
	Src      *workload.Source
	// Probe, when non-nil, is ticked from the event loop and its
	// attribution sink brackets every measured (post-warmup) read and write
	// with a per-IO latency-attribution record. Aux ops are never
	// attributed.
	Probe *telemetry.Probe
}

// RunMixed drives the workload in strict virtual-time order and returns the
// measurements. Writer latency is per-operation sojourn (issue to
// completion); read latency includes any queueing behind in-flight device
// work (the tail-latency mechanism of §2.4).
func RunMixed(cfg MixedCfg) MixedResult {
	loop := sim.NewLoop()
	res := MixedResult{}
	wLat := stats.NewDist(4096)
	rLat := stats.NewDist(4096)
	deadline := cfg.Start + cfg.Duration
	warmup := cfg.Start + cfg.Warmup
	if cfg.Probe != nil {
		loop.OnEvent = cfg.Probe.Tick
	}
	// instrument brackets each measured op with an attribution record; the
	// device layers in between charge the phases. End receives the raw
	// completion time, before the done<=now clamp below, so the sum
	// invariant is against the device's exact answer.
	attr := cfg.Probe.Attribution()
	instrument := func(op OpFunc, kind telemetry.OpKind, tenant telemetry.TenantID) OpFunc {
		if attr == nil || op == nil {
			return op
		}
		return func(at sim.Time) (sim.Time, error) {
			if at < warmup {
				return op(at)
			}
			attr.BeginTenant(kind, tenant, at)
			done, err := op(at)
			if err != nil {
				attr.Drop()
				return done, err
			}
			attr.End(done)
			return done, nil
		}
	}
	write := instrument(cfg.Write, telemetry.OpWrite, cfg.WriteTenant)
	read := instrument(cfg.Read, telemetry.OpRead, cfg.ReadTenant)
	fail := func(err error) {
		if errors.Is(err, ErrStopDrive) {
			loop.Stop()
			return
		}
		if res.Err == nil {
			res.Err = err
		}
		loop.Stop()
	}

	// Closed-loop workers (writers and readers share the machinery).
	closedLoop := func(n int, op OpFunc, ops *uint64, lat *stats.Dist) {
		for w := 0; w < n; w++ {
			var step func(now sim.Time)
			step = func(now sim.Time) {
				if now >= deadline {
					return
				}
				done, err := op(now)
				if err != nil {
					fail(err)
					return
				}
				if done <= now {
					done = now + 1
				}
				if now >= warmup {
					*ops++
					lat.Add(done - now)
				}
				loop.At(done, step)
			}
			loop.At(cfg.Start+sim.Time(w), step) // stagger starts by 1 ns each
		}
	}
	if cfg.Writers > 0 && cfg.Write != nil {
		closedLoop(cfg.Writers, write, &res.WriteOps, wLat)
	}
	if cfg.Readers > 0 && cfg.Read != nil {
		closedLoop(cfg.Readers, read, &res.ReadOps, rLat)
	}

	// Open-loop Poisson streams: each arrival event performs its op and
	// schedules the next arrival, so the queue stays O(1).
	openLoop := func(rate float64, op OpFunc, ops *uint64, lat *stats.Dist) {
		arrivals := workload.NewPoisson(cfg.Src, rate)
		var onArrival func(now sim.Time)
		schedule := func(prev sim.Time) {
			if t := arrivals.Next(prev); t < deadline {
				loop.At(t, onArrival)
			}
		}
		onArrival = func(now sim.Time) {
			schedule(now)
			done, err := op(now)
			if err != nil {
				fail(err)
				return
			}
			if now >= warmup {
				*ops++
				lat.Add(done - now)
			}
		}
		schedule(cfg.Start)
	}
	if cfg.ReadRate > 0 && cfg.Read != nil {
		openLoop(cfg.ReadRate, read, &res.ReadOps, rLat)
	}
	if cfg.WriteRate > 0 && cfg.Write != nil {
		openLoop(cfg.WriteRate, write, &res.WriteOps, wLat)
	}
	if cfg.AuxRate > 0 && cfg.Aux != nil {
		var auxOps uint64
		openLoop(cfg.AuxRate, cfg.Aux, &auxOps, stats.NewDist(16))
	}

	// Extra tenant streams share the loop machinery; each gets its own
	// counters and latency distribution.
	res.Streams = make([]StreamResult, len(cfg.Streams))
	streamLat := make([]*stats.Dist, len(cfg.Streams))
	for i, sc := range cfg.Streams {
		res.Streams[i] = StreamResult{Name: sc.Name, Tenant: sc.Tenant}
		streamLat[i] = stats.NewDist(4096)
		if sc.Op == nil {
			continue
		}
		op := instrument(sc.Op, sc.Kind, sc.Tenant)
		if sc.Workers > 0 {
			closedLoop(sc.Workers, op, &res.Streams[i].Ops, streamLat[i])
		} else if sc.Rate > 0 {
			openLoop(sc.Rate, op, &res.Streams[i].Ops, streamLat[i])
		}
	}

	loop.Run()
	res.Elapsed = cfg.Duration - cfg.Warmup
	res.WriteLat = wLat.Summary()
	res.ReadLat = rLat.Summary()
	res.WriteScale = stats.Rate(res.WriteOps, res.Elapsed)
	res.ReadScale = stats.Rate(res.ReadOps, res.Elapsed)
	for i := range res.Streams {
		res.Streams[i].Lat = streamLat[i].Summary()
		res.Streams[i].Rate = stats.Rate(res.Streams[i].Ops, res.Elapsed)
	}
	return res
}
