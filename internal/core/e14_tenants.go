package core

import (
	"fmt"

	"blockhead/internal/flash"
	"blockhead/internal/ftl"
	"blockhead/internal/hostftl"
	"blockhead/internal/sim"
	"blockhead/internal/telemetry"
	"blockhead/internal/telemetry/critpath"
	"blockhead/internal/telemetry/exemplar"
	"blockhead/internal/workload"
	"blockhead/internal/zns"
)

func init() {
	register(Experiment{
		ID:         "E14",
		Title:      "Noisy neighbor: per-tenant SLOs and blame attribution (§2.4, §4.1)",
		PaperClaim: "on a conventional SSD the churny tenant's GC is charged to its victims; host-scheduled ZNS reclamation keeps every tenant inside its SLO",
		Run:        runE14,
	})
}

// E14's cast, sharing one device. Tenant 0 stays the implicit "sys"
// tenant (prefill/aging); the measured tenants each own one third of the
// logical space.
const (
	e14Web       = telemetry.TenantID(1) // latency-sensitive point reads
	e14Analytics = telemetry.TenantID(2) // throughput reads
	e14Churn     = telemetry.TenantID(3) // skewed overwrite stream (the noisy neighbor)
)

// Offered loads (per virtual second). The churn writer is sized to force
// steady reclamation; the readers stay well under device capacity so their
// tails reflect interference, not saturation.
const (
	e14WebRate       = 1200.0
	e14AnalyticsRate = 800.0
	e14ChurnRate     = 700.0
)

// e14SLOs registers the per-tenant objectives. The thresholds are the
// experiment's point: the ZNS/host stack meets them at the same offered
// load where the conventional stack's GC blows the web tenant's tail
// budget.
func e14SLOs(eng *telemetry.SLOEngine) {
	eng.Add(telemetry.SLO{Tenant: e14Web, Op: telemetry.OpRead,
		Pct: 90, LatencyMax: 4500 * sim.Microsecond, Budget: 0.25})
	eng.Add(telemetry.SLO{Tenant: e14Analytics, Op: telemetry.OpRead,
		Pct: 90, LatencyMax: 4500 * sim.Microsecond, Budget: 0.25})
	eng.Add(telemetry.SLO{Tenant: e14Churn, Op: telemetry.OpWrite,
		Pct: 90, LatencyMax: 10 * sim.Millisecond, Budget: 0.25})
}

// E14Result is one stack's measurement.
type E14Result struct {
	Name    string
	Streams []StreamResult
	Attr    telemetry.AttrSnapshot
	Tenants telemetry.TenantSnapshot
	SLO     []telemetry.SLOResult
	// Crit is the critical-path recording over the measured window;
	// CritOpts selects the stack's replay model and enables per-tenant
	// what-if predictions (who gains if zone resets were free?).
	Crit     critpath.Snapshot
	CritOpts critpath.PredictOpts
	// Exem is the drained exemplar reservoir over the measured window (the
	// slowest IOs per tenant with full forensics); ExemNames are the tenant
	// labels at drain time.
	Exem      exemplar.Snapshot
	ExemNames [telemetry.MaxTenants]string
	Device    DeviceState
}

// rebaseSeqs shifts the result's exemplar sequence numbers after a
// parallel run, restoring the serial reference's cross-stack numbering.
func (e *E14Result) rebaseSeqs(delta uint64) { e.Exem.Rebase(delta) }

// e14Stack abstracts the two configurations for the shared drive.
type e14Stack struct {
	name     string
	write    func(at sim.Time, lpn int64) (sim.Time, error)
	read     func(at sim.Time, lpn int64) (sim.Time, error)
	maintain OpFunc
	capacity int64
	at       sim.Time
	src      *workload.Source
	probe    *telemetry.Probe
	critOpts critpath.PredictOpts
	device   func() (DeviceState, error)
}

// e14TenantOf maps an LBA to its owning tenant: thirds in tenant order,
// with the division remainder belonging to the last tenant.
func e14TenantOf(lpn, third int64) telemetry.TenantID {
	t := lpn/third + 1
	if t > 3 {
		t = 3
	}
	return telemetry.TenantID(t)
}

// e14Names labels the tenants on the sink (shared across stacks; idempotent).
func e14Names(sink *telemetry.AttrSink) {
	sink.SetTenantName(e14Web, "web")
	sink.SetTenantName(e14Analytics, "analytics")
	sink.SetTenantName(e14Churn, "churn")
}

// e14Measure drives the three tenant streams against one prepared stack and
// evaluates the SLOs over the run's windows.
func e14Measure(s e14Stack, cfg Config) (E14Result, error) {
	dur, warm := 2*sim.Second, 250*sim.Millisecond
	if cfg.Quick {
		dur, warm = 500*sim.Millisecond, 100*sim.Millisecond
	}
	sink := s.probe.Attribution()
	e14Names(sink)
	// Fresh window ring + SLO engine per stack: each stack restarts virtual
	// time, and windows must not leak across devices.
	ws := telemetry.NewWindowSet(telemetry.WindowCfg{})
	eng := telemetry.NewSLOEngine(ws)
	e14SLOs(eng)
	sink.Windows, sink.SLO = ws, eng

	third := s.capacity / 3
	base := func(t telemetry.TenantID) int64 { return int64(t-1) * third }
	webKeys := workload.NewUniform(s.src, third)
	anaKeys := workload.NewUniform(s.src, third)
	churnKeys := workload.NewHotCold(s.src, third, 0.1, 0.9)

	beforeAttr := sink.Snapshot()
	beforeTen := sink.TenantSnapshot()
	critDrain(s.probe)     // discard prefill/aging paths
	exemplarDrain(s.probe) // likewise for exemplars
	res := RunMixed(MixedCfg{
		Streams: []StreamCfg{
			{Name: "web", Tenant: e14Web, Kind: telemetry.OpRead, Rate: e14WebRate,
				Op: func(at sim.Time) (sim.Time, error) {
					return s.read(at, base(e14Web)+webKeys.Next())
				}},
			{Name: "analytics", Tenant: e14Analytics, Kind: telemetry.OpRead, Rate: e14AnalyticsRate,
				Op: func(at sim.Time) (sim.Time, error) {
					return s.read(at, base(e14Analytics)+anaKeys.Next())
				}},
			{Name: "churn", Tenant: e14Churn, Kind: telemetry.OpWrite, Rate: e14ChurnRate,
				Op: func(at sim.Time) (sim.Time, error) {
					return s.write(at, base(e14Churn)+churnKeys.Next())
				}},
		},
		AuxRate: e6MaintRate(s.maintain), Aux: s.maintain,
		Start: s.at, Duration: dur, Warmup: warm, Src: s.src,
		Probe: s.probe,
	})
	if res.Err != nil {
		return E14Result{}, res.Err
	}
	out := E14Result{
		Name:      s.name,
		Streams:   res.Streams,
		Attr:      sink.Snapshot().Delta(beforeAttr),
		Tenants:   sink.TenantSnapshot().Delta(beforeTen),
		SLO:       eng.Evaluate(),
		Crit:      critDrain(s.probe),
		CritOpts:  s.critOpts,
		Exem:      exemplarDrain(s.probe),
		ExemNames: exemplarNames(s.probe),
	}
	if s.device != nil {
		var err error
		if out.Device, err = s.device(); err != nil {
			return E14Result{}, err
		}
	}
	return out, nil
}

// E14Conventional shares a conventional SSD between the tenants: the
// device's opaque GC mixes everyone's pages and its stalls land on whoever
// is unlucky enough to be running — the blame matrix charges every stalled
// tick to a culprit tenant, exactly.
func E14Conventional(cfg Config) (E14Result, error) {
	dev, err := ftl.NewDefault(e6Geometry(), scaledLatencies(cfg, flash.LatenciesFor(flash.TLC), false), 0.11)
	if err != nil {
		return E14Result{}, err
	}
	probe := attrProbe(cfg)
	dev.SetProbe(probe)
	exemplarArm(cfg, probe, "conventional (opaque device GC)",
		critpath.PredictOpts{PerTenant: true}, convDevSnap(dev, e6Geometry()))
	sink := probe.Attribution()
	src := workload.NewSource(cfg.Seed)
	var at sim.Time
	third := dev.CapacityPages() / 3
	// Prefill and age the whole device under each page's owning tenant: the
	// conventional FTL cannot tell tenants apart, so the aged flash blocks
	// interleave everyone's pages — exactly the state that makes one
	// tenant's churn everyone's GC problem. Ownership flows through the
	// worker stack so the polluter bookkeeping is right from block 0.
	write := func(lpn int64) error {
		sink.PushWorker(e14TenantOf(lpn, third))
		var werr error
		at, werr = dev.WritePage(at, lpn, nil)
		sink.PopWorker()
		return werr
	}
	for lpn := int64(0); lpn < dev.CapacityPages(); lpn++ {
		if err := write(lpn); err != nil {
			return E14Result{}, err
		}
	}
	hcAll := workload.NewHotCold(src, dev.CapacityPages(), 0.1, 0.9)
	for i := int64(0); i < dev.CapacityPages(); i++ { // age to steady state
		if err := write(hcAll.Next()); err != nil {
			return E14Result{}, err
		}
	}
	return e14Measure(e14Stack{
		name: "conventional (opaque device GC)",
		write: func(t sim.Time, lpn int64) (sim.Time, error) {
			return dev.WritePage(t, lpn, nil)
		},
		read: func(t sim.Time, lpn int64) (sim.Time, error) {
			done, _, err := dev.ReadPage(t, lpn)
			return done, err
		},
		capacity: dev.CapacityPages(),
		at:       at,
		src:      src,
		probe:    probe,
		critOpts: critpath.PredictOpts{PerTenant: true},
		device: func() (DeviceState, error) {
			return DeviceState{Name: "conventional (opaque device GC)",
				Wear: dev.Flash().Wear()}, nil
		},
	}, cfg)
}

// E14HostFTL runs the same tenants over ZNS with a host FTL doing paced
// incremental reclamation: the host schedules erasures away from the
// readers (§4.1), so every tenant holds its SLO.
func E14HostFTL(cfg Config) (E14Result, error) {
	scaleWP, wpScale := wpSerialScale(cfg)
	dev, err := zns.New(zns.Config{Geom: e6Geometry(),
		Lat:        scaledLatencies(cfg, flash.LatenciesFor(flash.TLC), true),
		ZoneBlocks: 1, ScaleWPSerial: scaleWP, WPSerialScale: wpScale})
	if err != nil {
		return E14Result{}, err
	}
	f, err := hostftl.New(dev, hostftl.Config{
		OPFraction:     0.20,
		Streams:        2,
		ZonesPerStream: 4,
		UseSimpleCopy:  true,
		GCMode:         hostftl.GCIncremental,
		GCChunkPages:   8,
	})
	if err != nil {
		return E14Result{}, err
	}
	probe := attrProbe(cfg)
	f.SetProbe(probe)
	exemplarArm(cfg, probe, "host FTL on ZNS (paced GC + streams)",
		critpath.PredictOpts{ErasesAreResets: true, PerTenant: true},
		znsDevSnap(dev, e6Geometry(), hostReclaim(f)))
	sink := probe.Attribution()
	aud := dev.AttachAuditor()
	src := workload.NewSource(cfg.Seed)
	var at sim.Time
	third := f.CapacityPages() / 3
	// Same owner-tagged prefill and full-device hot/cold aging as the
	// conventional stack — but the host routes hot and cold writes to
	// separate streams, application knowledge the opaque device never had.
	hcAll := workload.NewHotCold(src, f.CapacityPages(), 0.1, 0.9)
	streamOf := func(lpn int64) int {
		if hcAll.IsHot(lpn) {
			return 0
		}
		return 1
	}
	write := func(lpn int64) error {
		sink.PushWorker(e14TenantOf(lpn, third))
		var werr error
		at, werr = f.WriteStream(at, lpn, streamOf(lpn), nil)
		sink.PopWorker()
		return werr
	}
	for lpn := int64(0); lpn < f.CapacityPages(); lpn++ {
		if err := write(lpn); err != nil {
			return E14Result{}, err
		}
	}
	for i := int64(0); i < f.CapacityPages(); i++ { // age to steady state
		if err := write(hcAll.Next()); err != nil {
			return E14Result{}, err
		}
	}
	return e14Measure(e14Stack{
		name: "host FTL on ZNS (paced GC + streams)",
		write: func(t sim.Time, lpn int64) (sim.Time, error) {
			return f.WriteStream(t, lpn, streamOf(lpn), nil)
		},
		read: func(t sim.Time, lpn int64) (sim.Time, error) {
			done, _, err := f.Read(t, lpn)
			return done, err
		},
		maintain: func(t sim.Time) (sim.Time, error) {
			f.MaintenanceStep(t, 2, 12)
			return t, nil
		},
		capacity: f.CapacityPages(),
		at:       at,
		src:      src,
		probe:    probe,
		critOpts: critpath.PredictOpts{ErasesAreResets: true, PerTenant: true},
		device: func() (DeviceState, error) {
			if err := aud.Check(); err != nil {
				return DeviceState{}, err
			}
			return deviceState("host FTL on ZNS (paced GC + streams)", dev, aud), nil
		},
	}, cfg)
}

func runE14(cfg Config) (Report, error) {
	r := Report{
		ID:         "E14",
		Title:      "Noisy neighbor: per-tenant SLOs and blame attribution",
		PaperClaim: "host-scheduled reclamation keeps co-tenants inside their SLOs; the blame matrix quantifies conventional-GC interference tenant by tenant",
		Header: []string{"Configuration", "Tenant", "Ops/s", "Mean (us)",
			"p50 (us)", "p99 (us)", "SLO"},
	}
	var conv, host E14Result
	if err := runParts(cfg, part(&conv, E14Conventional), part(&host, E14HostFTL)); err != nil {
		return r, err
	}
	for _, e := range []E14Result{conv, host} {
		verdictOf := func(t telemetry.TenantID) string {
			for _, res := range e.SLO {
				if res.SLO.Tenant == t {
					if res.OK {
						return "PASS"
					}
					return "FAIL"
				}
			}
			return "-"
		}
		for _, st := range e.Streams {
			r.AddRow(e.Name, st.Name, fmt.Sprintf("%.0f", st.Rate),
				fmt.Sprintf("%.0f", st.Lat.Mean.Micros()),
				fmt.Sprintf("%.0f", st.Lat.P50.Micros()),
				fmt.Sprintf("%.0f", st.Lat.P99.Micros()),
				verdictOf(st.Tenant))
		}
		r.AddBreakdown(e.Name, e.Attr)
		r.AddCrit(cfg, e.Name, e.Crit, e.CritOpts, e.Attr)
		r.AddExemplars(cfg, e.Name, e.Exem, e.CritOpts, e.ExemNames)
		r.AddTenants(e.Name, e.Tenants, e.SLO)
		r.AddDeviceState(e.Device)
		for _, st := range e.Streams {
			if st.Tenant != e14Web {
				continue
			}
			r.Bench = append(r.Bench, BenchEntry{
				Experiment: "E14", Name: e.Name + "/web",
				WritePPS:    churnRate(e.Streams),
				ReadMeanUs:  st.Lat.Mean.Micros(),
				ReadP50Us:   st.Lat.P50.Micros(),
				ReadP90Us:   st.Lat.P90.Micros(),
				ReadP99Us:   st.Lat.P99.Micros(),
				ReadP999Us:  st.Lat.P999.Micros(),
				WriteP99Us:  churnP99(e.Streams),
				Attribution: e.Attr.Dump(),
				CritPath:    critBench(e.Crit, e.CritOpts),
				Exemplars:   e.Exem.Bench(),
			})
		}
	}
	okCount := func(rs []telemetry.SLOResult) int {
		n := 0
		for _, res := range rs {
			if res.OK {
				n++
			}
		}
		return n
	}
	r.AddNote("SLOs held: conventional %d/%d, host FTL on ZNS %d/%d",
		okCount(conv.SLO), len(conv.SLO), okCount(host.SLO), len(host.SLO))
	return r, nil
}

// churnRate and churnP99 pull the churn stream's stats for the bench entry.
func churnRate(streams []StreamResult) float64 {
	for _, st := range streams {
		if st.Tenant == e14Churn {
			return st.Rate
		}
	}
	return 0
}

func churnP99(streams []StreamResult) float64 {
	for _, st := range streams {
		if st.Tenant == e14Churn {
			return st.Lat.P99.Micros()
		}
	}
	return 0
}
