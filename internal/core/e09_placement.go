package core

import (
	"fmt"

	"blockhead/internal/flash"
	"blockhead/internal/placement"
	"blockhead/internal/sim"
	"blockhead/internal/workload"
	"blockhead/internal/zns"
)

func init() {
	register(Experiment{
		ID:         "E9",
		Title:      "Lifetime-aware data placement (§4.1)",
		PaperClaim: "grouping data into zones by expected expiry minimizes copying; more application information -> lower write amplification",
		Run:        runE9,
	})
}

// e9Lifetimes: eight log-spaced lifetime classes. The workload mixes them
// uniformly, so an uninformed placement interleaves data whose deaths are
// 100x apart.
func e9Lifetimes() []sim.Time {
	out := make([]sim.Time, 8)
	l := 4 * sim.Millisecond
	for i := range out {
		out[i] = l
		l *= 2
	}
	return out
}

// E9Run measures the object store's WA under one placement policy.
// spread == 0 draws exponential lifetimes (unpredictable deaths: the class
// hint carries little information); spread > 0 draws uniform +-spread
// lifetimes (predictable deaths: the hint nearly equals the death time).
func E9Run(policy placement.Policy, spread float64, cfg Config) (float64, error) {
	dev, err := zns.New(zns.Config{
		Geom: flash.Geometry{Channels: 4, DiesPerChan: 1, PlanesPerDie: 1,
			BlocksPerLUN: 64, PagesPerBlock: 64, PageSize: 4096},
		Lat:        flash.LatenciesFor(flash.TLC),
		ZoneBlocks: 4, // 64 zones of 256 pages (64 objects per zone)
	})
	if err != nil {
		return 0, err
	}
	store, err := placement.NewStore(dev, policy)
	if err != nil {
		return 0, err
	}
	var gen *workload.ObjectGen
	if spread > 0 {
		gen = workload.NewObjectGenSpread(workload.NewSource(cfg.Seed), 4, e9Lifetimes(), spread)
	} else {
		gen = workload.NewObjectGen(workload.NewSource(cfg.Seed), 4, e9Lifetimes())
	}
	writes := 30000
	if cfg.Quick {
		writes = 8000
	}
	var at sim.Time
	for i := 0; i < writes; i++ {
		at += 44 * sim.Microsecond
		store.ExpireUpTo(at)
		if _, err := store.Put(at, gen.Next(at)); err != nil {
			return 0, fmt.Errorf("%s put %d: %w", policy.Name(), i, err)
		}
	}
	return store.WriteAmp(), nil
}

func runE9(cfg Config) (Report, error) {
	r := Report{
		ID:         "E9",
		Title:      "Write amplification vs placement information",
		PaperClaim: "WA falls as placement uses more lifetime information; the oracle bounds the benefit",
		Header:     []string{"Policy", "Information used", "WA (predictable)", "WA (exponential)"},
	}
	classes := len(e9Lifetimes())
	policies := []struct {
		p    placement.Policy
		info string
	}{
		{placement.SingleStream{}, "none (conventional-FTL equivalent)"},
		{&placement.RoundRobin{K: 4}, "none (spread only)"},
		{placement.ByClass{K: 2, Classes: classes}, "coarse app hint (2 groups)"},
		{placement.ByClass{K: 4, Classes: classes}, "app hint (4 groups)"},
		{placement.ByClass{K: classes, Classes: classes}, "full app hint (8 groups)"},
		{placement.Oracle{K: classes, Base: 8 * sim.Millisecond}, "actual death time"},
	}
	for _, pc := range policies {
		waPredict, err := E9Run(pc.p, 0.3, cfg)
		if err != nil {
			return r, err
		}
		waExp, err := E9Run(pc.p, 0, cfg)
		if err != nil {
			return r, err
		}
		r.AddRow(pc.p.Name(), pc.info, fmt.Sprintf("%.2f", waPredict), fmt.Sprintf("%.2f", waExp))
	}
	r.AddNote("objects: 4 pages, 8 lifetime classes 4ms..512ms, uniform class mix")
	r.AddNote("predictable = +-30%% uniform lifetimes: hints nearly equal death times;")
	r.AddNote("exponential = maximal intra-class variance: hints carry little information,")
	r.AddNote("and only the death-time oracle still wins — quantifying §4.1's question")
	return r, nil
}
