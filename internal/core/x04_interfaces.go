package core

import (
	"fmt"

	"blockhead/internal/flash"
	"blockhead/internal/ftl"
	"blockhead/internal/hostftl"
	"blockhead/internal/sim"
	"blockhead/internal/workload"
	"blockhead/internal/zns"
	"blockhead/internal/zonefile"
)

func init() {
	register(Experiment{
		ID:         "X4",
		Title:      "Extension: the interface-tier trade-off (§2.3, §4.1)",
		PaperClaim: "\"raw zoned storage access offers the most control over I/O and data placement; filesystems and key-value stores offer less control but are easy to use\" — each tier's cost, measured",
		Run:        runX4,
	})
}

func x4Geometry() flash.Geometry {
	return flash.Geometry{Channels: 4, DiesPerChan: 1, PlanesPerDie: 1,
		BlocksPerLUN: 64, PagesPerBlock: 64, PageSize: 4096}
}

// x4Result is one interface tier's measurement under the same append-log
// workload: sustained log-write throughput plus the resources the tier
// consumes.
type x4Result struct {
	tier        string
	pagesPS     float64
	wa          float64
	hostDRAM    string
	onboardDRAM string
	control     string
}

const x4LogWriters = 4

// x4Log drives a 4-writer append-log at high duty through writeOne, with
// the tier responsible for its own space recycling, and reports pages/s.
func x4Log(writeOne OpFunc, dur sim.Time) (float64, error) {
	res := RunMixed(MixedCfg{Writers: x4LogWriters, Write: writeOne, Duration: dur,
		Src: workload.NewSource(9)})
	if res.Err != nil {
		return 0, res.Err
	}
	return res.WriteScale, nil
}

func runX4(cfg Config) (Report, error) {
	r := Report{
		ID:         "X4",
		Title:      "One log workload through every interface tier",
		PaperClaim: "control decreases and convenience increases up the stack; the measured cost of each step",
		Header:     []string{"Interface", "Log pages/s", "WA", "Host DRAM", "On-board DRAM", "Control"},
	}
	dur := 2 * sim.Second
	if cfg.Quick {
		dur = 400 * sim.Millisecond
	}
	lat := flash.LatenciesFor(flash.TLC)
	var rows []x4Result

	// --- Tier 1: raw zones, app-managed log (most control). ---
	{
		dev, err := zns.New(zns.Config{Geom: x4Geometry(), Lat: lat, ZoneBlocks: 1})
		if err != nil {
			return r, err
		}
		// Each writer owns its own open zone (the control the tier offers).
		cur := [x4LogWriters]int{}
		for i := range cur {
			cur[i] = -1
		}
		next, w := 0, 0
		rate, err := x4Log(func(t sim.Time) (sim.Time, error) {
			me := w % x4LogWriters
			w++
			if cur[me] < 0 || dev.WP(cur[me]) >= dev.WritableCap(cur[me]) {
				z := next
				next = (next + 1) % dev.NumZones()
				done, err := dev.Reset(t, z)
				if err != nil {
					return t, err
				}
				cur[me], t = z, done
			}
			_, done, err := dev.Append(t, cur[me], nil)
			return done, err
		}, dur)
		if err != nil {
			return r, err
		}
		rows = append(rows, x4Result{"raw zones (app log)", rate, dev.Counters().WriteAmp(),
			"app-defined", "4 B/block", "placement + scheduling + reclaim"})
	}

	// --- Tier 2: ZoneFS-style zones-as-files. ---
	{
		dev, err := zns.New(zns.Config{Geom: x4Geometry(), Lat: lat, ZoneBlocks: 1})
		if err != nil {
			return r, err
		}
		fs := zonefile.New(dev)
		page := make([]byte, dev.PageSize())
		// Each writer logs into its own zone-file.
		cur := [x4LogWriters]int{}
		for i := range cur {
			cur[i] = -1
		}
		next, w := 0, 0
		rate, err := x4Log(func(t sim.Time) (sim.Time, error) {
			me := w % x4LogWriters
			w++
			if cur[me] >= 0 {
				f, _ := fs.Open(cur[me])
				if f.Size() >= f.MaxSize() {
					cur[me] = -1
				}
			}
			if cur[me] < 0 {
				z := next
				next = (next + 1) % fs.NumFiles()
				f, _ := fs.Open(z)
				done, err := f.Truncate(t, 0)
				if err != nil {
					return t, err
				}
				cur[me], t = z, done
			}
			f, _ := fs.Open(cur[me])
			_, done, err := f.Append(t, page)
			return done, err
		}, dur)
		if err != nil {
			return r, err
		}
		rows = append(rows, x4Result{"zonefs (zones as files)", rate, dev.Counters().WriteAmp(),
			"file offsets only", "4 B/block", "placement (per file); no in-place update"})
	}

	// --- Tier 3: block interface rebuilt on ZNS (hostftl). ---
	{
		dev, err := zns.New(zns.Config{Geom: x4Geometry(), Lat: lat, ZoneBlocks: 1})
		if err != nil {
			return r, err
		}
		f, err := hostftl.New(dev, hostftl.Config{ZonesPerStream: 4, UseSimpleCopy: true,
			GCMode: hostftl.GCIncremental})
		if err != nil {
			return r, err
		}
		var cursor int64
		rate, err := x4Log(func(t sim.Time) (sim.Time, error) {
			lpn := cursor % f.CapacityPages()
			cursor++
			return f.Write(t, lpn, nil)
		}, dur)
		if err != nil {
			return r, err
		}
		rows = append(rows, x4Result{"block-on-ZNS (host FTL)", rate, f.WriteAmp(),
			"8 B/page map", "4 B/block", "none (block illusion restored)"})
	}

	// --- Tier 4: open-channel-style host page FTL on raw flash. The same
	// page-mapped machinery as a conventional device, but the mapping lives
	// in host DRAM and the host sees the geometry (§2.3's predecessor). ---
	{
		dev, err := ftl.NewDefault(x4Geometry(), lat, 0.07)
		if err != nil {
			return r, err
		}
		var cursor int64
		rate, err := x4Log(func(t sim.Time) (sim.Time, error) {
			lpn := cursor % dev.CapacityPages()
			cursor++
			return dev.WritePage(t, lpn, nil)
		}, dur)
		if err != nil {
			return r, err
		}
		rows = append(rows, x4Result{"open-channel (host page FTL)", rate, dev.Counters().WriteAmp(),
			"4 B/page map + GC state", "none", "full geometry; host owns wear + GC"})
	}

	// --- Tier 5: conventional device FTL. ---
	{
		dev, err := ftl.NewDefault(x4Geometry(), lat, 0.07)
		if err != nil {
			return r, err
		}
		var cursor int64
		rate, err := x4Log(func(t sim.Time) (sim.Time, error) {
			lpn := cursor % dev.CapacityPages()
			cursor++
			return dev.WritePage(t, lpn, nil)
		}, dur)
		if err != nil {
			return r, err
		}
		rows = append(rows, x4Result{"conventional (device FTL)", rate, dev.Counters().WriteAmp(),
			"none", "4 B/page + OP flash", "none"})
	}

	for _, row := range rows {
		r.AddRow(row.tier, fmt.Sprintf("%.0f", row.pagesPS), fmt.Sprintf("%.2f", row.wa),
			row.hostDRAM, row.onboardDRAM, row.control)
	}
	r.AddNote("same 4-writer circular-log workload at every tier; sequential logs are")
	r.AddNote("kind to all tiers (WA ~1) — the tiers differ in who pays DRAM, who")
	r.AddNote("controls reclaim timing (E6), and what random-write churn later costs (E2/E5)")
	return r, nil
}
