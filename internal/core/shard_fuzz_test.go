package core

import (
	"fmt"
	"strings"
	"testing"

	"blockhead/internal/fault"
	"blockhead/internal/sim"
	"blockhead/internal/sim/shard"
)

// faultOutcome is the comparable digest of one stack's oracle-checked crash
// campaign: every field the differential harness can observe.
type faultOutcome struct {
	violations uint64
	details    string
	nextSeq    uint64
}

// runFaultOutcome drives one stack through the shared differential schedule
// and digests the oracle's verdicts.
func runFaultOutcome(cfg Config, build func(Config, fault.Profile) (e13Stack, error),
	prof fault.Profile, seed, total, crashIdx int64) (faultOutcome, error) {
	s, err := build(cfg, prof)
	if err != nil {
		return faultOutcome{}, err
	}
	oc, err := runFaultSchedule(s, seed, total, crashIdx)
	if err != nil {
		return faultOutcome{}, err
	}
	return faultOutcome{
		violations: oc.Violations(),
		details:    strings.Join(oc.Details(), "\n"),
		nextSeq:    s.nextSeq(),
	}, nil
}

// FuzzShardSchedule fuzzes the (seed, shard count, crash point) space of
// the parallel core: both fault-campaign stacks run once on the serial path
// and once as lanes of a shard scheduler, and the oracle's verdicts —
// violation count, detail text, and the recovery sequence horizon — must
// match exactly, whatever the schedule. The seed corpus pins the operating
// points the equivalence battery exercises (2/4/8 lanes) plus crash-at-zero
// and a crash in recovery-heavy steady state.
func FuzzShardSchedule(f *testing.F) {
	f.Add(int64(42), uint8(2), uint16(100))
	f.Add(int64(42), uint8(4), uint16(700))
	f.Add(int64(7), uint8(8), uint16(1100))
	f.Add(int64(99), uint8(3), uint16(0))
	f.Add(int64(1234), uint8(5), uint16(650))

	prof, _ := fault.ProfileByName("default")
	cfg := Config{Quick: true, Seed: 42}
	f.Fuzz(func(t *testing.T, seed int64, shards uint8, crashAt uint16) {
		lanes := 2 + int(shards)%7 // 2..8 lanes; 1 is the reference below
		const total = 1200
		crashIdx := int64(crashAt) % total

		ref := make([]faultOutcome, len(faultStackBuilders))
		for i, sb := range faultStackBuilders {
			out, err := runFaultOutcome(cfg, sb.build, prof, seed, total, crashIdx)
			if err != nil {
				t.Fatalf("serial %s seed=%d crash@%d: %v", sb.name, seed, crashIdx, err)
			}
			ref[i] = out
		}

		l := shard.New(lanes)
		got := make([]faultOutcome, len(faultStackBuilders))
		errs := make([]error, len(faultStackBuilders))
		for i, sb := range faultStackBuilders {
			i, sb := i, sb
			l.At(i%lanes, 0, func(sim.Time) {
				got[i], errs[i] = runFaultOutcome(cfg, sb.build, prof, seed, total, crashIdx)
			})
		}
		l.Run()

		for i, sb := range faultStackBuilders {
			label := fmt.Sprintf("%s seed=%d lanes=%d crash@%d", sb.name, seed, lanes, crashIdx)
			if errs[i] != nil {
				t.Fatalf("sharded %s: %v", label, errs[i])
			}
			if got[i] != ref[i] {
				t.Errorf("%s: sharded outcome diverged from serial:\n  serial   %+v\n  parallel %+v",
					label, ref[i], got[i])
			}
			if got[i].violations != 0 {
				t.Errorf("%s: %d oracle violations:\n%s", label, got[i].violations, got[i].details)
			}
		}
	})
}
