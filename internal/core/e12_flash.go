package core

import (
	"fmt"

	"blockhead/internal/flash"
	"blockhead/internal/sim"
)

func init() {
	register(Experiment{
		ID:         "E12",
		Title:      "Flash model calibration (§2.1 primer)",
		PaperClaim: "erase takes ~6x as long as program (TLC); parallelism across dies/planes provides throughput",
		Run:        runE12,
	})
}

// E12EraseProgramRatio reports the configured erase/program ratio per cell
// type.
func E12EraseProgramRatio(c flash.CellType) float64 {
	lat := flash.LatenciesFor(c)
	return float64(lat.EraseBlock) / float64(lat.ProgramPage)
}

// E12SequentialThroughput measures pages/s of a sequential fill on a
// device with the given LUN count — the die-parallel scaling check.
func E12SequentialThroughput(luns int) (float64, error) {
	geom := flash.Geometry{Channels: luns, DiesPerChan: 1, PlanesPerDie: 1,
		BlocksPerLUN: 8, PagesPerBlock: 128, PageSize: 4096}
	// Stream sequentially in block-interleaved order (consecutive blocks
	// alternate LUNs), issuing each page at time 0 and letting the
	// resource model pipeline them.
	dev := flash.New(geom, flash.LatenciesFor(flash.TLC))
	var last sim.Time
	pages := 0
	for i := 0; i < geom.TotalBlocks()*geom.PagesPerBlock/4; i++ {
		block := i % geom.TotalBlocks()
		page := i / geom.TotalBlocks()
		done, err := dev.ProgramPage(0, block, page)
		if err != nil {
			return 0, err
		}
		if done > last {
			last = done
		}
		pages++
	}
	return float64(pages) / last.Seconds(), nil
}

func runE12(cfg Config) (Report, error) {
	r := Report{
		ID:         "E12",
		Title:      "Flash-layer microbenchmarks",
		PaperClaim: "TLC erase/program ~6x; denser cells are slower; throughput scales with LUNs",
		Header:     []string{"Metric", "Value"},
	}
	for _, c := range []flash.CellType{flash.SLC, flash.MLC, flash.TLC, flash.QLC, flash.PLC} {
		lat := flash.LatenciesFor(c)
		r.AddRow(fmt.Sprintf("%v read/program/erase", c),
			fmt.Sprintf("%v / %v / %v us (erase/program %.1fx)",
				lat.ReadPage.Micros(), lat.ProgramPage.Micros(), lat.EraseBlock.Micros(),
				E12EraseProgramRatio(c)))
	}
	for _, luns := range []int{1, 2, 4, 8, 16, 32} {
		tput, err := E12SequentialThroughput(luns)
		if err != nil {
			return r, err
		}
		r.AddRow(fmt.Sprintf("sequential program, %d LUNs", luns),
			fmt.Sprintf("%.0f pages/s", tput))
	}
	return r, nil
}
