package core

import (
	"errors"
	"fmt"

	"blockhead/internal/flash"
	"blockhead/internal/ftl"
	"blockhead/internal/sim"
	"blockhead/internal/workload"
	"blockhead/internal/zns"
)

func init() {
	register(Experiment{
		ID:         "X1",
		Title:      "Extension: device lifetime under endurance limits (§1, §2.2)",
		PaperClaim: "\"write amplification reduces device lifetime by using excess write-and-erase cycles\" — lower WA means more host bytes before wear-out",
		Run:        runX1,
	})
}

// x1Geometry is deliberately tiny so wearing the device out is fast.
func x1Geometry() flash.Geometry {
	return flash.Geometry{Channels: 2, DiesPerChan: 1, PlanesPerDie: 1,
		BlocksPerLUN: 32, PagesPerBlock: 32, PageSize: 4096}
}

const x1Endurance = 60 // erases per block before the cell fails

// X1Conventional writes random pages until the conventional device can no
// longer accept writes, and reports host pages written (the TBW figure).
func X1Conventional(cfg Config) (hostPages uint64, err error) {
	dev, err := ftl.New(ftl.Config{
		Geom:              x1Geometry(),
		Lat:               flash.LatenciesFor(flash.TLC),
		OPFraction:        0.07,
		HotColdSeparation: true,
		TrimSupported:     true,
		Endurance:         x1Endurance,
	})
	if err != nil {
		return 0, err
	}
	keys := workload.NewUniform(workload.NewSource(cfg.Seed), dev.CapacityPages())
	var at sim.Time
	for {
		done, werr := dev.WritePage(at, keys.Next(), nil)
		if werr != nil {
			if errors.Is(werr, ftl.ErrOutOfSpace) || errors.Is(werr, flash.ErrBadBlock) ||
				errors.Is(werr, flash.ErrWornOut) {
				return dev.Counters().HostWritePages, nil
			}
			return dev.Counters().HostWritePages, werr
		}
		at = done
	}
}

// X1ZNS drives the same endurance-limited flash as a circular log of zones
// (WA = 1) until the writable capacity collapses below half, and reports
// host pages written.
func X1ZNS(cfg Config) (hostPages uint64, err error) {
	dev, err := zns.New(zns.Config{
		Geom:       x1Geometry(),
		Lat:        flash.LatenciesFor(flash.TLC),
		ZoneBlocks: 2,
		Endurance:  x1Endurance,
	})
	if err != nil {
		return 0, err
	}
	nz := dev.NumZones()
	healthyCap := int64(nz) * dev.ZonePages()
	var at sim.Time
	cur := -1
	next := 0
	for {
		if cur < 0 || dev.WP(cur) >= dev.WritableCap(cur) {
			// Advance the log head, skipping zones lost to wear. Stop when
			// less than half the capacity survives (the device is useless
			// as a log well before every block dies).
			var remaining int64
			for z := 0; z < nz; z++ {
				remaining += dev.WritableCap(z)
			}
			if remaining < healthyCap/2 {
				return dev.Counters().HostWritePages, nil
			}
			for tries := 0; ; tries++ {
				if tries > nz {
					return dev.Counters().HostWritePages, nil
				}
				z := next
				next = (next + 1) % nz
				if dev.State(z) == zns.Offline {
					continue
				}
				done, rerr := dev.Reset(at, z)
				if rerr != nil {
					continue
				}
				if dev.WritableCap(z) == 0 {
					continue
				}
				cur = z
				at = done
				break
			}
		}
		_, done, werr := dev.Append(at, cur, nil)
		if werr != nil {
			if errors.Is(werr, zns.ErrZoneFull) || errors.Is(werr, zns.ErrOffline) {
				cur = -1
				continue
			}
			return dev.Counters().HostWritePages, werr
		}
		at = done
	}
}

func runX1(cfg Config) (Report, error) {
	r := Report{
		ID:         "X1",
		Title:      "Host terabytes written before wear-out",
		PaperClaim: "host-controlled WA extends lifetime; ZNS degrades gracefully by shrinking zones",
		Header:     []string{"Device", "Host pages before wear-out", "Lifetime ratio"},
	}
	var conv, z uint64
	if err := runParts(cfg, part(&conv, X1Conventional), part(&z, X1ZNS)); err != nil {
		return r, err
	}
	r.AddRow("conventional (random writes, OP 7%)", fmt.Sprint(conv), "1.00x")
	r.AddRow("zns (circular log, WA 1)", fmt.Sprint(z), fmt.Sprintf("%.2fx", float64(z)/float64(conv)))
	r.AddNote("endurance: %d erases/block; both devices share the identical flash array", x1Endurance)
	r.AddNote("conventional dies when GC can no longer relocate; zns shrinks zone by zone (§2.1) until half the capacity is gone")
	return r, nil
}
