package core

import (
	"testing"

	"blockhead/internal/fault"
)

// FuzzFaultSchedule fuzzes the (seed, fault profile, crash point) space of
// the differential harness: whatever the schedule, both stacks must recover
// from the crash with zero oracle violations and a clean zone state-machine
// audit. The seed corpus pins the hand-picked regressions: the faults-off
// control, a crash during the first fill, a crash in GC-heavy steady state,
// a late crash under the aggressive profile, and the wear-driven profile
// that grows bad blocks mid-run.
func FuzzFaultSchedule(f *testing.F) {
	f.Add(int64(42), uint8(0), uint16(100))   // faults off, early crash
	f.Add(int64(42), uint8(1), uint16(700))   // default faults, mid-fill crash
	f.Add(int64(7), uint8(1), uint16(1400))   // default faults, steady-state crash
	f.Add(int64(1234), uint8(2), uint16(900)) // aggressive faults
	f.Add(int64(99), uint8(3), uint16(1300))  // wearout profile
	f.Add(int64(3), uint8(2), uint16(0))      // crash on the very first op

	profiles := fault.Profiles()
	cfg := Config{Quick: true, Seed: 42}
	f.Fuzz(func(t *testing.T, seed int64, profIdx uint8, crashAt uint16) {
		prof := profiles[int(profIdx)%len(profiles)]
		const total = 1500
		crashIdx := int64(crashAt) % total
		for _, sb := range faultStackBuilders {
			s, err := sb.build(cfg, prof)
			if err != nil {
				t.Fatal(err)
			}
			oc, err := runFaultSchedule(s, seed, total, crashIdx)
			if err != nil {
				t.Fatalf("%s/%s seed=%d crash@%d: %v", sb.name, prof.Name, seed, crashIdx, err)
			}
			if v := oc.Violations(); v != 0 {
				t.Fatalf("%s/%s seed=%d crash@%d: %d violations:\n%v",
					sb.name, prof.Name, seed, crashIdx, v, oc.Details())
			}
		}
	})
}
