package core

import (
	"testing"

	"blockhead/internal/sim"
	"blockhead/internal/telemetry"
)

// TestBlameConservationProperty is the blame layer's core invariant as a
// seeded property test: after a multi-tenant churn run — GC, zone resets,
// channel/LUN contention and all — every nanosecond a tenant stalled is
// charged to exactly one culprit. Three seeds, both stacks, under -race
// via `make check`. The checks are exact (==, not tolerance): blame is
// conserved by construction, so any drift is a bookkeeping bug.
func TestBlameConservationProperty(t *testing.T) {
	stacks := []struct {
		name string
		run  func(Config) (E14Result, error)
	}{
		{"conventional", E14Conventional},
		{"hostftl-zns", E14HostFTL},
	}
	for _, seed := range []int64{1, 7, 42} {
		for _, s := range stacks {
			res, err := s.run(Config{Quick: true, Seed: seed})
			if err != nil {
				t.Fatalf("%s seed %d: %v", s.name, seed, err)
			}
			snap := res.Tenants
			var stalls, suffered, blamed sim.Time
			for v := telemetry.TenantID(1); v <= 3; v++ {
				if !snap.Active(v) {
					t.Errorf("%s seed %d: tenant %s inactive; property vacuous",
						s.name, seed, snap.Name(v))
				}
			}
			for v := telemetry.TenantID(0); v < telemetry.MaxTenants; v++ {
				// Row invariant: what victim v suffered (its blame-matrix
				// row sum) equals its own stall-phase total.
				if snap.SufferedNs(v) != snap.StallNs(v) {
					t.Errorf("%s seed %d: tenant %s suffered %dns but stalled %dns",
						s.name, seed, snap.Name(v), snap.SufferedNs(v), snap.StallNs(v))
				}
				stalls += snap.StallNs(v)
				suffered += snap.SufferedNs(v)
				blamed += snap.BlamedNs(v)
			}
			// Matrix invariant: row sums and column sums both total the
			// stalled time — no tick double-charged, none dropped.
			if blamed != stalls || suffered != stalls {
				t.Errorf("%s seed %d: sum(blamed)=%dns sum(suffered)=%dns sum(stalls)=%dns",
					s.name, seed, blamed, suffered, stalls)
			}
			if res.Attr.Violations != 0 {
				t.Errorf("%s seed %d: %d attribution violations", s.name, seed, res.Attr.Violations)
			}
			if stalls == 0 {
				t.Errorf("%s seed %d: run accrued no stall time; property vacuous", s.name, seed)
			}
		}
	}
}
