package core

import (
	"strings"
	"testing"
)

// shardCounts is the equivalence table's -shards axis: the serial reference,
// two intermediate counts, and the benchmark geometry's LUN count (the
// ISSUE's shard key is the channel/LUN partition, so numLUNs is the natural
// upper operating point; counts beyond the part count clamp).
func shardCounts() []int {
	counts := []int{1, 2, 4, e4Geometry().LUNs()}
	seen := map[int]bool{}
	out := counts[:0]
	for _, n := range counts {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}

// runReportAt runs one experiment at a shard count and returns the rendered
// report — the byte-exact artifact the whole battery compares.
func runReportAt(t *testing.T, id string, seed int64, shards int) string {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %s not registered", id)
	}
	rep, err := e.Run(Config{Quick: true, Seed: seed, Shards: shards})
	if err != nil {
		t.Fatalf("%s shards=%d: %v", id, shards, err)
	}
	return rep.Format()
}

// diffAt reports the first differing byte with context, so a determinism
// regression names the exact report section that drifted.
func diffAt(t *testing.T, label, got, want string) {
	t.Helper()
	n := len(got)
	if len(want) < n {
		n = len(want)
	}
	for i := 0; i < n; i++ {
		if got[i] != want[i] {
			lo := i - 100
			if lo < 0 {
				lo = 0
			}
			hi := i + 100
			if hi > n {
				hi = n
			}
			t.Errorf("%s: first diff at byte %d:\n  got  ...%q\n  want ...%q",
				label, i, got[lo:hi], want[lo:hi])
			return
		}
	}
	t.Errorf("%s: reports differ in length: %d vs %d bytes", label, len(got), len(want))
}

// TestShardEquivalence is the gate for the parallel core: for every
// registered experiment, the full rendered report is byte-identical between
// the serial reference (-shards=1) and every parallel count, same seed.
// Everything the reports embed rides along — latency tables, attribution
// breakdowns, critical paths, exemplar sequence numbers and -explain hints,
// blame matrices with their exact conservation lines, device audits, and
// oracle verdicts.
func TestShardEquivalence(t *testing.T) {
	counts := shardCounts()
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			ref := runReportAt(t, e.ID, 42, counts[0])
			for _, n := range counts[1:] {
				if got := runReportAt(t, e.ID, 42, n); got != ref {
					diffAt(t, e.ID+" shards="+itoa(n), got, ref)
				}
			}
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestShardMetamorphic checks shard-count invariance of the semantic
// properties the reports carry, across seeds the byte-identity gate never
// sees: for 3 seeds and both stacks of the blame (E14) and fault-oracle
// (E13) experiments, the parallel run must preserve the exact
// blame-conservation line, report zero oracle violations, and stay
// byte-identical to its serial reference.
func TestShardMetamorphic(t *testing.T) {
	for _, seed := range []int64{7, 42, 99} {
		for _, id := range []string{"E13", "E14"} {
			serial := runReportAt(t, id, seed, 1)
			parallel := runReportAt(t, id, seed, 4)
			label := id + "/seed=" + itoa(int(seed))
			if parallel != serial {
				diffAt(t, label, parallel, serial)
				continue
			}
			if strings.Contains(parallel, "WARNING") {
				t.Errorf("%s: report carries a WARNING (broken invariant):\n%s", label, parallel)
			}
			switch id {
			case "E13":
				// Oracle verdicts: the violation column renders 0 for every
				// (stack, profile) row and no violation note appears.
				if strings.Contains(parallel, "ORACLE VIOLATION") {
					t.Errorf("%s: oracle violations under sharding", label)
				}
			case "E14":
				// Blame conservation (sum(blame) == sum(stalls), exact) must
				// hold in both stacks' tenant sections.
				if n := strings.Count(parallel, "blame conservation:"); n != 2 {
					t.Errorf("%s: %d exact blame-conservation lines, want 2", label, n)
				}
			}
		}
	}
}
