package core

import (
	"fmt"

	"blockhead/internal/flash"
	"blockhead/internal/sim"
	"blockhead/internal/zns"
)

func init() {
	register(Experiment{
		ID:         "E7",
		Title:      "Zone append vs write-pointer serialization (§4.2)",
		PaperClaim: "multi-writer single-zone workloads bottleneck on the write pointer; the append command lets the device serialize and restores scaling",
		Run:        runE7,
	})
}

// e7Geometry: 8 channels x 1 die so a wide zone can stripe across 8 LUNs.
func e7Geometry() flash.Geometry {
	return flash.Geometry{Channels: 8, DiesPerChan: 1, PlanesPerDie: 1,
		BlocksPerLUN: 16, PagesPerBlock: 256, PageSize: 4096}
}

func e7Device() (*zns.Device, error) {
	return zns.New(zns.Config{
		Geom:       e7Geometry(),
		Lat:        flash.LatenciesFor(flash.TLC),
		ZoneBlocks: 8, // one zone spans all 8 LUNs
	})
}

// E7Throughput measures pages/second achieved by `writers` concurrent
// writers targeting one shared zone, either with regular writes guarded by
// a host-side write-pointer lock (the spec's requirement that the write LBA
// equal the WP forces this serialization) or with device-serialized zone
// appends. The zone is reset when full; reset time is charged to the
// workload.
func E7Throughput(writers int, useAppend bool, duration sim.Time) (float64, error) {
	dev, err := e7Device()
	if err != nil {
		return 0, err
	}
	const zone = 0
	loop := sim.NewLoop()
	var ops uint64
	var lockFree sim.Time // write-pointer lock: next time the WP is free
	var opErr error

	reset := func(t sim.Time) (sim.Time, error) {
		if dev.WP(zone) >= dev.WritableCap(zone) {
			return dev.Reset(t, zone)
		}
		return t, nil
	}

	writeOne := func(t sim.Time) (sim.Time, error) {
		if useAppend {
			// The device serializes appends: no host coordination, and the
			// zone's LUN stripe absorbs concurrent programs.
			t2, err := reset(t)
			if err != nil {
				return t, err
			}
			_, done, err := dev.Append(t2, zone, nil)
			return done, err
		}
		// Regular writes: the writer must hold the zone's WP lock from
		// issue to completion, or a concurrent writer would observe a
		// stale write pointer and fail (§4.2's lock contention).
		start := sim.Max(t, lockFree)
		start, err := reset(start)
		if err != nil {
			return t, err
		}
		done, err := dev.Write(start, dev.LBA(zone, dev.WP(zone)), nil)
		if err != nil {
			return t, err
		}
		lockFree = done
		return done, nil
	}

	for w := 0; w < writers; w++ {
		var step func(now sim.Time)
		step = func(now sim.Time) {
			if now >= duration {
				return
			}
			done, err := writeOne(now)
			if err != nil {
				opErr = err
				loop.Stop()
				return
			}
			if done <= now {
				done = now + 1
			}
			ops++
			loop.At(done, step)
		}
		loop.At(sim.Time(w), step)
	}
	loop.Run()
	if opErr != nil {
		return 0, opErr
	}
	return float64(ops) / duration.Seconds(), nil
}

func runE7(cfg Config) (Report, error) {
	r := Report{
		ID:         "E7",
		Title:      "Single-zone multi-writer throughput: write vs append",
		PaperClaim: "writes serialize on the write pointer; appends scale with the zone's internal parallelism",
		Header:     []string{"Writers", "Write pages/s", "Append pages/s", "Append speedup"},
	}
	writers := []int{1, 2, 4, 8, 16, 32}
	dur := 2 * sim.Second
	if cfg.Quick {
		writers = []int{1, 4, 16}
		dur = 500 * sim.Millisecond
	}
	for _, w := range writers {
		wr, err := E7Throughput(w, false, dur)
		if err != nil {
			return r, err
		}
		ap, err := E7Throughput(w, true, dur)
		if err != nil {
			return r, err
		}
		r.AddRow(fmt.Sprint(w), fmt.Sprintf("%.0f", wr), fmt.Sprintf("%.0f", ap),
			fmt.Sprintf("%.2fx", ap/wr))
	}
	r.AddNote("zone stripes 8 LUNs; perfect append scaling saturates at 8x one writer's rate")
	return r, nil
}
