package core

import (
	"fmt"
	"sort"
	"strings"

	"blockhead/internal/flash"
	"blockhead/internal/sim"
	"blockhead/internal/telemetry"
	"blockhead/internal/telemetry/critpath"
)

// This file wires the critical-path recorder and what-if engine into the
// experiment harness: scenario-scaled timing parameters (the ground truth
// counterfactual runs the engine's predictions are validated against),
// per-stack recorder drains, and the "critical path & what-if" report
// section.

// scaledLatencies applies cfg.Scenario's service-phase factors to the
// flash timing parameters — the ground-truth counterfactual a what-if
// prediction is checked against. nand_read/nand_program/bus_xfer map to
// their parameters directly; the erase parameter takes the nand_erase
// factor and, on zoned stacks (where every erase is a zone reset), the
// zone_reset factor too. wp_serial is not a flash parameter — see
// wpSerialScale.
func scaledLatencies(cfg Config, base flash.Latencies, zoned bool) flash.Latencies {
	sc := cfg.Scenario
	if sc == nil {
		return base
	}
	scale := func(t sim.Time, f float64) sim.Time { return sim.Time(float64(t) * f) }
	out := base
	out.ReadPage = scale(base.ReadPage, sc.Factor(telemetry.PhaseNANDRead))
	out.ProgramPage = scale(base.ProgramPage, sc.Factor(telemetry.PhaseNANDProgram))
	out.XferPage = scale(base.XferPage, sc.Factor(telemetry.PhaseXfer))
	ef := sc.Factor(telemetry.PhaseNANDErase)
	if zoned {
		ef *= sc.Factor(telemetry.PhaseZoneReset)
	}
	out.EraseBlock = scale(base.EraseBlock, ef)
	return out
}

// wpSerialScale maps cfg.Scenario's wp_serial factor onto the ZNS
// early-ack knobs: factor f means the host observes only fraction f of the
// write-pointer serialization delay. The device model can only remove
// serialization, not invent more, so factors above 1 are clamped to 1
// (no change).
func wpSerialScale(cfg Config) (bool, float64) {
	if cfg.Scenario == nil {
		return false, 0
	}
	f := cfg.Scenario.Factor(telemetry.PhaseWPSerial)
	if f >= 1 {
		return false, 0
	}
	return true, f
}

// critDrain captures and resets the recorder attached to the probe's sink.
// Called once before a measured window (discarding prefill/aging paths) and
// once after (the measurement).
func critDrain(probe *telemetry.Probe) critpath.Snapshot {
	return critpath.DrainFromSink(probe.Attribution())
}

// CritSection is one configuration's critical-path block: the recorder
// snapshot over the measured window, the replay-model options for its
// stack, and the exactly measured attribution the prediction ratios are
// applied to.
type CritSection struct {
	Name string
	Snap critpath.Snapshot
	Opts critpath.PredictOpts
	Attr telemetry.AttrSnapshot
	// Scenarios are the what-if counterfactuals the section answers
	// (canonical three, plus the run's own when it is a -whatif run).
	Scenarios []critpath.Scenario
}

// AddCrit appends a critical-path section. Snapshots with no completed IOs
// are skipped, so experiments without path recording render unchanged.
func (r *Report) AddCrit(cfg Config, name string, snap critpath.Snapshot, opts critpath.PredictOpts, attr telemetry.AttrSnapshot) {
	if snap.IOs == 0 {
		return
	}
	r.Crit = append(r.Crit, CritSection{Name: name, Snap: snap, Opts: opts,
		Attr: attr, Scenarios: critScenarios(cfg)})
}

// critScenarios returns the what-if scenarios a report answers: the three
// canonical counterfactuals plus, when the run itself is counterfactual
// (znsbench -whatif), the run's own scenario — so a ground-truth run
// prints the prediction it validates.
func critScenarios(cfg Config) []critpath.Scenario {
	out := critpath.Canonical()
	if cfg.Scenario != nil {
		for _, sc := range out {
			if sc.Name == cfg.Scenario.Name {
				return out
			}
		}
		out = append(out, *cfg.Scenario)
	}
	return out
}

// formatCritSection renders one configuration's critical-path block:
// the exact-sum invariant verdict, the per-op phase ranking with separate
// critical-path vs total columns, and the what-if predictions (sampled
// ratios applied to the exactly measured base metrics).
func formatCritSection(b *strings.Builder, cs CritSection) {
	fmt.Fprintf(b, "critical path & what-if — %s:\n", cs.Name)
	if cs.Snap.Violations == 0 {
		fmt.Fprintf(b, "  path==latency: exact over %d IOs (0 violations); %d paths sampled (stride %d)\n",
			cs.Snap.IOs, len(cs.Snap.Paths), cs.Snap.Stride)
	} else {
		fmt.Fprintf(b, "  WARNING: %d critical-path invariant violations over %d IOs\n",
			cs.Snap.Violations, cs.Snap.IOs)
	}
	cd := cs.Snap.Dump(cs.Opts)
	for _, od := range cd.Ops {
		fmt.Fprintf(b, "  %-5s n=%-8d mean=%8.1fus  phases by critical-path ticks:\n",
			od.Op, od.Count, od.MeanUs)
		phases := append([]critpath.PhasePathDump(nil), od.Phases...)
		sort.SliceStable(phases, func(i, j int) bool { return phases[i].PathUs > phases[j].PathUs })
		for _, ph := range phases {
			fmt.Fprintf(b, "    %-12s path=%8.1fus (%5.1f%%)  total=%8.1fus%s\n",
				ph.Name, ph.PathUs, ph.PathFrac*100, ph.TotalUs, bindSuffix(ph))
		}
	}
	ad := cs.Attr.Dump()
	fmt.Fprintf(b, "  what-if (sampled ratio x measured base):\n")
	for _, sc := range cs.Scenarios {
		for _, p := range cs.Snap.Predict(sc, cs.Opts) {
			if p.Tenant >= 0 {
				fmt.Fprintf(b, "    %-16s %-5s [tenant %d] mean x%.3f  p99 x%.3f  p999 x%.3f (sampled base mean=%.1fus)\n",
					p.Scenario, p.Op, p.Tenant, p.MeanRatio, p.P99Ratio, p.P999Ratio, p.BaseMean)
				continue
			}
			base, ok := ad.Ops[p.Op]
			if !ok {
				continue
			}
			fmt.Fprintf(b, "    %-16s %-5s mean %8.1f -> %8.1fus (x%.3f)  p99 %8.1f -> %8.1fus (x%.3f)  p999 %8.1f -> %8.1fus (x%.3f)\n",
				p.Scenario, p.Op,
				base.MeanUs, base.MeanUs*p.MeanRatio, p.MeanRatio,
				base.P99Us, base.P99Us*p.P99Ratio, p.P99Ratio,
				base.P999Us, base.P999Us*p.P999Ratio, p.P999Ratio)
		}
	}
}

// critBench converts a snapshot to the optional bench-entry block (nil
// when the window recorded no paths, keeping older entries byte-stable).
func critBench(snap critpath.Snapshot, opts critpath.PredictOpts) *critpath.BenchSummary {
	if snap.IOs == 0 {
		return nil
	}
	b := snap.Bench(opts)
	return &b
}

// bindSuffix renders a wait phase's queued-behind split.
func bindSuffix(ph critpath.PhasePathDump) string {
	if len(ph.Binds) == 0 {
		return ""
	}
	parts := make([]string, 0, len(ph.Binds))
	for _, bd := range ph.Binds {
		parts = append(parts, fmt.Sprintf("%s %.1fus", bd.Name, bd.Us))
	}
	return "  behind: " + strings.Join(parts, ", ")
}
