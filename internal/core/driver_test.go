package core

import (
	"errors"
	"testing"

	"blockhead/internal/sim"
	"blockhead/internal/workload"
)

// A fake device: fixed service time per op on one resource.
type fakeDev struct {
	res     sim.Resource
	service sim.Time
}

func (d *fakeDev) op(at sim.Time) (sim.Time, error) {
	_, end := d.res.Acquire(at, d.service)
	return end, nil
}

func TestRunMixedClosedLoop(t *testing.T) {
	d := &fakeDev{service: sim.Millisecond}
	res := RunMixed(MixedCfg{
		Writers:  1,
		Write:    d.op,
		Duration: sim.Second,
		Src:      workload.NewSource(1),
	})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	// One closed-loop writer on a 1ms-service resource: ~1000 ops/s.
	if res.WriteOps < 950 || res.WriteOps > 1050 {
		t.Errorf("WriteOps = %d, want ~1000", res.WriteOps)
	}
	if res.WriteLat.Mean != sim.Millisecond {
		t.Errorf("mean write latency = %v, want 1ms", res.WriteLat.Mean)
	}
}

func TestRunMixedClosedLoopContention(t *testing.T) {
	d := &fakeDev{service: sim.Millisecond}
	res := RunMixed(MixedCfg{
		Writers:  4,
		Write:    d.op,
		Duration: sim.Second,
		Src:      workload.NewSource(1),
	})
	// The resource serializes: still ~1000 ops/s, but each op waits behind
	// the other three workers.
	if res.WriteOps < 950 || res.WriteOps > 1100 {
		t.Errorf("WriteOps = %d, want ~1000 (resource-bound)", res.WriteOps)
	}
	if res.WriteLat.Mean < 3*sim.Millisecond {
		t.Errorf("queueing not visible: mean = %v", res.WriteLat.Mean)
	}
}

func TestRunMixedOpenLoopReads(t *testing.T) {
	d := &fakeDev{service: 100 * sim.Microsecond}
	res := RunMixed(MixedCfg{
		ReadRate: 2000,
		Read:     d.op,
		Duration: sim.Second,
		Src:      workload.NewSource(2),
	})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	// ~2000 Poisson arrivals in 1s at 20% utilization.
	if res.ReadOps < 1700 || res.ReadOps > 2300 {
		t.Errorf("ReadOps = %d, want ~2000", res.ReadOps)
	}
	if res.ReadLat.Mean < 100*sim.Microsecond {
		t.Errorf("read latency below service time: %v", res.ReadLat.Mean)
	}
}

func TestRunMixedWarmupExcluded(t *testing.T) {
	d := &fakeDev{service: sim.Millisecond}
	res := RunMixed(MixedCfg{
		Writers:  1,
		Write:    d.op,
		Duration: sim.Second,
		Warmup:   500 * sim.Millisecond,
		Src:      workload.NewSource(3),
	})
	if res.WriteOps > 550 {
		t.Errorf("WriteOps = %d; warmup ops must be excluded", res.WriteOps)
	}
}

func TestRunMixedStartOffset(t *testing.T) {
	d := &fakeDev{service: sim.Millisecond}
	d.res.Acquire(0, 10*sim.Second) // device busy until t=10s (pre-fill)
	res := RunMixed(MixedCfg{
		Writers:  1,
		Write:    d.op,
		Start:    10 * sim.Second,
		Duration: sim.Second,
		Src:      workload.NewSource(4),
	})
	// Starting after the pre-fill, latencies are clean again.
	if res.WriteLat.Mean > 2*sim.Millisecond {
		t.Errorf("mean latency %v polluted by pre-fill backlog", res.WriteLat.Mean)
	}
}

func TestRunMixedErrorStops(t *testing.T) {
	boom := errors.New("boom")
	calls := 0
	res := RunMixed(MixedCfg{
		Writers: 1,
		Write: func(at sim.Time) (sim.Time, error) {
			calls++
			if calls >= 3 {
				return at, boom
			}
			return at + sim.Millisecond, nil
		},
		Duration: sim.Second,
		Src:      workload.NewSource(5),
	})
	if !errors.Is(res.Err, boom) {
		t.Fatalf("Err = %v, want boom", res.Err)
	}
	if calls != 3 {
		t.Errorf("calls = %d; loop must stop on error", calls)
	}
}
