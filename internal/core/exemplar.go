package core

import (
	"fmt"
	"strings"

	"blockhead/internal/flash"
	"blockhead/internal/ftl"
	"blockhead/internal/hostftl"
	"blockhead/internal/sim"
	"blockhead/internal/telemetry"
	"blockhead/internal/telemetry/critpath"
	"blockhead/internal/telemetry/exemplar"
	"blockhead/internal/zns"
)

// This file wires tail-exemplar capture and per-IO forensics into the
// experiment harness: the per-run session that scopes measured-IO sequence
// numbers, per-stack arming of the exemplar reservoir (or the -explain
// narrator), the "slowest IOs" report section, and Explain — the
// deterministic replay behind `znsbench -explain <exp>:<seq>`.

// session is per-run state shared across an experiment's device stacks:
// the attribution sink that numbers measured IOs (sequence numbers are the
// replayable identity `-explain <exp>:<seq>` resolves) and, in explain
// mode, the narrator that records the target IO tick by tick. register
// installs a fresh session for every Run call; Explain provides its own so
// it can read the narrator back after the run.
type session struct {
	sink     *telemetry.AttrSink
	narrator *exemplar.Narrator
}

func newSession() *session { return &session{} }

// exemplarArm points the per-IO forensics layers at one stack's device
// state. Normal runs give the reservoir attached to the probe's sink its
// device-snapshot source; explain runs arm the narrator with the stack
// label, the stack's what-if replay model, the snapshot source, and the
// sink's tenant labeler instead. Experiments call it once per stack, right
// after building the stack's devices.
func exemplarArm(cfg Config, probe *telemetry.Probe, stack string, opts critpath.PredictOpts, snap exemplar.SnapFunc) {
	sink := probe.Attribution()
	if cfg.session != nil && cfg.session.narrator != nil {
		cfg.session.narrator.Arm(stack, opts, snap, sink.TenantName)
		return
	}
	exemplar.FromSink(sink).SetSnap(snap)
}

// exemplarDrain captures and resets the exemplar reservoir attached to the
// probe's sink. Like critDrain: once before a measured window (discarding
// prefill exemplars) and once after (the measurement). Empty in explain
// mode (the narrator replaces the reservoir), which AddExemplars skips.
func exemplarDrain(probe *telemetry.Probe) exemplar.Snapshot {
	return exemplar.FromSink(probe.Attribution()).Drain()
}

// exemplarNames captures the sink's tenant labels for a section, so the
// rendered rows keep their names after the sink moves on.
func exemplarNames(probe *telemetry.Probe) [telemetry.MaxTenants]string {
	var out [telemetry.MaxTenants]string
	sink := probe.Attribution()
	for t := 0; t < telemetry.MaxTenants; t++ {
		out[t] = sink.TenantName(telemetry.TenantID(t))
	}
	return out
}

// convDevSnap is a conventional (device-FTL) stack's device-snapshot
// source: channel/LUN occupancy from the flash layer, GC progress and the
// free-block pool from the FTL.
func convDevSnap(dev *ftl.Device, geom flash.Geometry) exemplar.SnapFunc {
	fl := dev.Flash()
	return func(done sim.Time, s *exemplar.DevSnap) {
		s.BusyLUNs, s.TotalLUNs = int32(fl.BusyLUNs(done)), int32(geom.LUNs())
		s.BusyChans, s.TotalChans = int32(fl.BusyChans(done)), int32(geom.Channels)
		s.GCRuns = dev.GCRuns()
		s.GCActive = dev.LastGCStall() > 0
		s.Free = int64(dev.FreeBlocks())
	}
}

// znsDevSnap is a zoned stack's device-snapshot source: zone-state census
// and the busiest open zone's write pointer from the ZNS device,
// channel/LUN occupancy from the flash layer. reclaim fills the
// reclaim-state fields (host-FTL pool, or raw-device resets).
func znsDevSnap(dev *zns.Device, geom flash.Geometry, reclaim func(*exemplar.DevSnap)) exemplar.SnapFunc {
	fl := dev.Flash()
	return func(done sim.Time, s *exemplar.DevSnap) {
		s.Zoned = true
		c := dev.StateCensus()
		for i := 0; i < exemplar.NumZoneStates && i < len(c); i++ {
			s.ZoneCount[i] = int32(c[i])
		}
		s.HotZone = -1
		for z := 0; z < dev.NumZones(); z++ {
			if dev.State(z) == zns.Open && (s.HotZone < 0 || dev.WP(z) > s.HotWP) {
				s.HotZone, s.HotWP = int32(z), dev.WP(z)
			}
		}
		s.BusyLUNs, s.TotalLUNs = int32(fl.BusyLUNs(done)), int32(geom.LUNs())
		s.BusyChans, s.TotalChans = int32(fl.BusyChans(done)), int32(geom.Channels)
		reclaim(s)
	}
}

// hostReclaim reports the host FTL's reclamation state into a zoned
// snapshot: recycled zones, whether the last write stalled on reclamation,
// and the free-zone pool.
func hostReclaim(f *hostftl.FTL) func(*exemplar.DevSnap) {
	return func(s *exemplar.DevSnap) {
		s.GCRuns = f.GCResets()
		s.GCActive = f.LastStall() > 0
		s.Free = int64(f.FreeZones())
	}
}

// rawReclaim reports a raw ZNS device's reclamation state: host-scheduled
// resets are the only reclamation, and the empty-zone census is the free
// pool (ZoneCount is already filled when reclaim runs).
func rawReclaim(dev *zns.Device) func(*exemplar.DevSnap) {
	return func(s *exemplar.DevSnap) {
		s.GCRuns = dev.Resets()
		s.Free = int64(s.ZoneCount[int(zns.Empty)])
	}
}

// ExemplarSection is one configuration's "slowest IOs" block: the drained
// reservoir snapshot over the measured window, the stack's replay-model
// options for per-exemplar counterfactuals, the run's seed (for the
// -explain hint), and the tenant labels captured at drain time.
type ExemplarSection struct {
	Name  string
	ID    string
	Seed  int64
	Quick bool
	Snap  exemplar.Snapshot
	Opts  critpath.PredictOpts
	Names [telemetry.MaxTenants]string
}

// Label renders a tenant for the section ("sys"/"t<i>" unless named).
func (es ExemplarSection) Label(t telemetry.TenantID) string {
	if t >= 0 && int(t) < len(es.Names) && es.Names[t] != "" {
		return es.Names[t]
	}
	if t == 0 {
		return "sys"
	}
	return fmt.Sprintf("t%d", t)
}

// AddExemplars appends a slowest-IOs section. Empty snapshots (no captures;
// also every explain-mode drain) are skipped, so experiments without
// exemplar capture render unchanged.
func (r *Report) AddExemplars(cfg Config, name string, snap exemplar.Snapshot, opts critpath.PredictOpts, names [telemetry.MaxTenants]string) {
	if snap.Captured() == 0 && len(snap.Flagged) == 0 {
		return
	}
	r.Exemplars = append(r.Exemplars, ExemplarSection{
		Name: name, ID: r.ID, Seed: cfg.Seed, Quick: cfg.Quick, Snap: snap, Opts: opts, Names: names})
}

// exemplarShow bounds the merged worst-IO rows a section renders (each
// tenant's full worst-K stays in /exemplars.json).
const exemplarShow = 5

// phaseSum folds an exemplar's timeline; the attribution invariant says it
// equals Total exactly, and the section prints the verdict.
func phaseSum(e exemplar.Exemplar) sim.Time {
	var sum sim.Time
	for p := 0; p < telemetry.NumPhases; p++ {
		sum += e.Phases[p]
	}
	return sum
}

// formatExemplarSection renders one configuration's slowest-IOs block: the
// capture census with the exact-sum verdict, the overall worst rows (phase
// timeline, blame, queued-behind, device snapshot, best counterfactual),
// the always-kept flagged ring, and the -explain replay hint.
func formatExemplarSection(b *strings.Builder, es ExemplarSection) {
	fmt.Fprintf(b, "slowest IOs — %s:\n", es.Name)
	exact := 0
	broken := 0
	check := func(e exemplar.Exemplar) {
		if phaseSum(e) == e.Total {
			exact++
		} else {
			broken++
		}
	}
	top := es.Snap.TopK(exemplarShow)
	for _, e := range top {
		check(e)
	}
	for _, e := range es.Snap.Flagged {
		check(e)
	}
	if broken == 0 {
		fmt.Fprintf(b, "  captured %d of %d IOs (worst-%d per tenant; %d flagged); phase sums exact for all %d listed\n",
			es.Snap.Captured(), es.Snap.IOs, es.Snap.K, es.Snap.FlagSeen, exact)
	} else {
		fmt.Fprintf(b, "  WARNING: %d of %d listed exemplars have phase timelines that do not sum to their latency\n",
			broken, exact+broken)
	}
	for i, e := range top {
		formatExemplarRow(b, es, i+1, e)
	}
	if len(es.Snap.Flagged) > 0 {
		fmt.Fprintf(b, "  flagged (always kept):\n")
		for i, e := range es.Snap.Flagged {
			formatExemplarRow(b, es, i+1, e)
		}
	}
	if len(top) > 0 {
		// Sequence numbers are only meaningful under the run shape that
		// produced them, so the hint reproduces -quick too.
		quick := ""
		if es.Quick {
			quick = "-quick "
		}
		fmt.Fprintf(b, "  forensics: znsbench %s-run %s -seed %d -explain %s:%d\n",
			quick, es.ID, es.Seed, es.ID, top[0].Seq)
	}
}

// formatExemplarRow renders one exemplar: identity line, then indented
// phase/blame/queued-behind/device/what-if detail lines (empty ones
// omitted).
func formatExemplarRow(b *strings.Builder, es ExemplarSection, rank int, e exemplar.Exemplar) {
	flags := ""
	if names := e.FlagNames(); len(names) > 0 {
		flags = "  [" + strings.Join(names, ",") + "]"
	}
	fmt.Fprintf(b, "  %2d. seq=%-6d %-5s %-8s total=%9.1fus  issued=%.3fms%s\n",
		rank, e.Seq, e.Op, es.Label(e.Tenant), e.Total.Micros(), e.Start.Millis(), flags)
	var parts []string
	for p := 0; p < telemetry.NumPhases; p++ {
		if e.Phases[p] != 0 {
			parts = append(parts, fmt.Sprintf("%s %.1fus", telemetry.Phase(p), e.Phases[p].Micros()))
		}
	}
	if len(parts) > 0 {
		fmt.Fprintf(b, "      phases: %s\n", strings.Join(parts, ", "))
	}
	parts = parts[:0]
	for t := 0; t < telemetry.MaxTenants; t++ {
		if e.Blame[t] != 0 {
			parts = append(parts, fmt.Sprintf("%s %.1fus", es.Label(telemetry.TenantID(t)), e.Blame[t].Micros()))
		}
	}
	if len(parts) > 0 {
		fmt.Fprintf(b, "      blame: %s\n", strings.Join(parts, ", "))
	}
	if e.PathOK {
		if behind := exemplarBehind(e); behind != "" {
			fmt.Fprintf(b, "      queued behind: %s\n", behind)
		}
	}
	if e.Snap.Captured {
		fmt.Fprintf(b, "      device: %s\n", e.Snap)
	}
	if sc, pred, ok := exemplarBestWhatIf(e, es.Opts); ok {
		fmt.Fprintf(b, "      best what-if: %s -> %.1fus (x%.3f)\n",
			sc, pred/1e3, pred/float64(e.Total))
	}
}

// exemplarBehind renders the exemplar's queued-behind split from its
// critical-path record: wait phase -> occupant service phase.
func exemplarBehind(e exemplar.Exemplar) string {
	waitPhases := [critpath.NumWaits]telemetry.Phase{
		telemetry.PhaseWPSerial, telemetry.PhaseChanWait, telemetry.PhaseLUNWait,
	}
	bindPhases := [critpath.NumBinds]telemetry.Phase{
		telemetry.PhaseXfer, telemetry.PhaseNANDRead,
		telemetry.PhaseNANDProgram, telemetry.PhaseNANDErase,
	}
	var parts []string
	for w := 0; w < critpath.NumWaits; w++ {
		for bi := 0; bi < critpath.NumBinds; bi++ {
			if v := e.Path.WaitBy[w][bi]; v != 0 {
				parts = append(parts, fmt.Sprintf("%s<-%s %.1fus",
					waitPhases[w], bindPhases[bi], v.Micros()))
			}
		}
	}
	return strings.Join(parts, ", ")
}

// exemplarBestWhatIf replays the canonical counterfactuals against the
// exemplar's own critical-path record and returns the one predicting the
// lowest latency (the intervention that would have helped this IO most).
func exemplarBestWhatIf(e exemplar.Exemplar, opts critpath.PredictOpts) (string, float64, bool) {
	if !e.PathOK || e.Total == 0 {
		return "", 0, false
	}
	bestName := ""
	bestPred := 0.0
	for _, sc := range critpath.Canonical() {
		pred := critpath.Replay(&e.Path, sc, opts)
		if bestName == "" || pred < bestPred {
			bestName, bestPred = sc.Name, pred
		}
	}
	if bestName == "" {
		return "", 0, false
	}
	return bestName, bestPred, true
}

// Explain re-runs experiment id under the same Config the report used, with
// per-IO forensics armed on measured-IO sequence number seq, and returns
// the annotated tick-by-tick narrative. The run is the same seeded
// simulation, so the transcript is byte-identical across invocations (make
// explain-campaign pins this).
func Explain(cfg Config, id string, seq uint64) (string, error) {
	e, ok := ByID(id)
	if !ok {
		return "", fmt.Errorf("explain: unknown experiment %q", id)
	}
	if seq == 0 {
		return "", fmt.Errorf("explain: measured-IO sequence numbers are 1-based; 0 never matches")
	}
	// The narrator rides the session's shared sink; an external probe would
	// bring its own sink (live-dashboard config) and bypass the session.
	cfg.Probe = nil
	cfg.ExplainSeq = seq
	cfg.session = newSession()
	if _, err := e.Run(cfg); err != nil {
		return "", err
	}
	n := cfg.session.narrator
	if n == nil {
		return "", fmt.Errorf("explain: %s records no per-IO attribution", e.ID)
	}
	return n.Transcript(e.ID, cfg.Seed), nil
}
