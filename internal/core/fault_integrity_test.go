package core

import (
	"testing"

	"blockhead/internal/fault"
	"blockhead/internal/fault/oracle"
	"blockhead/internal/sim"
	"blockhead/internal/workload"
)

// runFaultSchedule is the differential harness core shared by the integrity
// test, the crash matrix, and the fuzzer: it drives one stack through a
// mixed, oracle-checked workload of total host ops, power-fails mid-program
// after the crashIdx'th op (crashIdx < 0 disables the crash), recovers,
// differentially verifies every logical page, resumes to the end, and
// finishes with a full live verification sweep plus the stack's own device
// audit.
func runFaultSchedule(s e13Stack, seed int64, total, crashIdx int64) (*oracle.Oracle, error) {
	oc := oracle.New(s.capacity)
	src := workload.NewSource(seed)
	wGen := workload.NewHotCold(src, s.capacity, 0.2, 0.8)
	rGen := workload.NewUniform(src, s.capacity)

	var at sim.Time
	writeOne := func() {
		lpn := wGen.Next()
		issued := at
		done, err := s.write(at, lpn)
		if err != nil {
			return // capacity lost to faults; the oracle only tracks acks
		}
		at = done
		oc.RecordWrite(lpn, issued, done)
	}
	readOne := func(lpn int64, recovered bool) {
		done, gotLPN, seq, err := s.readMeta(at, lpn)
		if err == nil {
			at = done
		}
		if recovered {
			oc.CheckRecovered(lpn, gotLPN, seq, err)
		} else {
			oc.CheckLive(lpn, gotLPN, seq, err)
		}
	}
	crash := func() error {
		// Pull the plug halfway through one more write's program, the
		// acknowledged-but-possibly-torn case.
		crashT := at
		for try := 0; try < 8; try++ {
			lpn := wGen.Next()
			issued := at
			done, err := s.write(at, lpn)
			if err != nil {
				continue
			}
			oc.RecordWrite(lpn, issued, done)
			at = done
			crashT = issued + (done-issued)/2
			break
		}
		oc.Crash(crashT)
		rep, err := s.recover(crashT)
		if err != nil {
			return err
		}
		at = rep.RecoveredAt
		for lpn := int64(0); lpn < s.capacity; lpn++ {
			readOne(lpn, true)
		}
		oc.Resync(s.nextSeq())
		return nil
	}

	for i := int64(0); i < total; i++ {
		if i%4 == 3 {
			readOne(rGen.Next(), false)
		} else {
			writeOne()
		}
		if i == crashIdx {
			if err := crash(); err != nil {
				return oc, err
			}
		}
	}
	for lpn := int64(0); lpn < s.capacity; lpn++ {
		readOne(lpn, false)
	}
	if _, err := s.device(); err != nil {
		return oc, err
	}
	return oc, nil
}

// faultStackBuilders names the two stacks the differential tests compare.
var faultStackBuilders = []struct {
	name  string
	build func(Config, fault.Profile) (e13Stack, error)
}{
	{"conventional", e13Conventional},
	{"zns", e13Host},
}

// TestFaultIntegrityDifferential is the differential property test: under
// every fault profile — including faults-off, which proves the harness
// itself is clean — both stacks run a mixed workload through the oracle,
// survive a mid-run power loss, and finish with zero integrity violations.
func TestFaultIntegrityDifferential(t *testing.T) {
	cfg := Config{Quick: true, Seed: 42}
	for _, prof := range fault.Profiles() {
		for _, sb := range faultStackBuilders {
			t.Run(prof.Name+"/"+sb.name, func(t *testing.T) {
				s, err := sb.build(cfg, prof)
				if err != nil {
					t.Fatal(err)
				}
				const total = 1600
				oc, err := runFaultSchedule(s, cfg.Seed, total, total/2)
				if err != nil {
					t.Fatal(err)
				}
				if v := oc.Violations(); v != 0 {
					t.Fatalf("%d integrity violations:\n%v", v, oc.Details())
				}
				if prof.Name == "none" && oc.LostReads() != 0 {
					t.Fatalf("faults-off run lost %d reads", oc.LostReads())
				}
			})
		}
	}
}

// TestE13ReportByteIdentical pins the acceptance bar for the fault campaign:
// the same seed and profile reproduce the full E13 report bit-for-bit,
// faults, crash, recovery and all.
func TestE13ReportByteIdentical(t *testing.T) {
	cfg := Config{Quick: true, Seed: 42, FaultProfile: "default"}
	run := func() string {
		rep, err := runE13(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Format()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("E13 report not reproducible:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
}

// TestE13RejectsUnknownProfile: a bad -faults value is a configuration
// error, not a silent fallback.
func TestE13RejectsUnknownProfile(t *testing.T) {
	if _, err := runE13(Config{Quick: true, Seed: 42, FaultProfile: "no-such"}); err == nil {
		t.Fatal("unknown fault profile accepted")
	}
}

// TestE13NoneProfileRunsControlOnly: asking for "none" must not silently
// upgrade to the default campaign profile.
func TestE13NoneProfileRunsControlOnly(t *testing.T) {
	rep, err := runE13(Config{Quick: true, Seed: 42, FaultProfile: "none"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("none-profile run produced %d rows, want 2 (one per stack)", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		if row[1] != "none" {
			t.Fatalf("none-profile run contains profile %q", row[1])
		}
	}
}
