package core

import (
	"fmt"

	"blockhead/internal/flash"
	"blockhead/internal/ftl"
	"blockhead/internal/hostftl"
	"blockhead/internal/sim"
	"blockhead/internal/stats"
	"blockhead/internal/workload"
	"blockhead/internal/zns"
)

func init() {
	register(Experiment{
		ID:         "E10",
		Title:      "Block-on-ZNS with the simple-copy command (§2.3)",
		PaperClaim: "host-built block interface over ZNS: with simple copy, relocation uses no PCIe bandwidth, enabling performance comparable to conventional SSDs",
		Run:        runE10,
	})
}

// E10Result is one configuration's measurement.
type E10Result struct {
	Name          string
	WritePagesPS  float64
	WA            float64
	PCIePerHostKB float64 // PCIe KiB moved per host KiB written
}

func e10Geometry() flash.Geometry {
	return flash.Geometry{Channels: 4, DiesPerChan: 1, PlanesPerDie: 1,
		BlocksPerLUN: 64, PagesPerBlock: 64, PageSize: 4096}
}

// E10Conv is the conventional yardstick for "performance comparable".
func E10Conv(cfg Config) (E10Result, error) {
	dev, err := ftl.NewDefault(e10Geometry(), flash.LatenciesFor(flash.TLC), 0.11)
	if err != nil {
		return E10Result{}, err
	}
	var at sim.Time
	for lpn := int64(0); lpn < dev.CapacityPages(); lpn++ {
		if at, err = dev.WritePage(at, lpn, nil); err != nil {
			return E10Result{}, err
		}
	}
	keys := workload.NewUniform(workload.NewSource(cfg.Seed), dev.CapacityPages())
	base := *dev.Counters()
	baseAt := at
	n := e10Writes(cfg)
	for i := 0; i < n; i++ {
		if at, err = dev.WritePage(at, keys.Next(), nil); err != nil {
			return E10Result{}, err
		}
	}
	c := *dev.Counters()
	host := c.HostWritePages - base.HostWritePages
	return E10Result{
		Name:         "conventional SSD",
		WritePagesPS: stats.Rate(host, at-baseAt),
		WA:           float64(c.FlashProgramPages-base.FlashProgramPages) / float64(host),
		PCIePerHostKB: float64(c.PCIeBytes-base.PCIeBytes) /
			float64(host*uint64(dev.PageSize())),
	}, nil
}

// E10HostFTL runs the same random-write block workload over the host
// translation layer, with relocation via host read+write or simple copy.
func E10HostFTL(simpleCopy bool, cfg Config) (E10Result, error) {
	dev, err := zns.New(zns.Config{Geom: e10Geometry(), Lat: flash.LatenciesFor(flash.TLC),
		ZoneBlocks: 1})
	if err != nil {
		return E10Result{}, err
	}
	f, err := hostftl.New(dev, hostftl.Config{
		OPFraction:     0.18,
		ZonesPerStream: 4,
		UseSimpleCopy:  simpleCopy,
	})
	if err != nil {
		return E10Result{}, err
	}
	var at sim.Time
	for lpn := int64(0); lpn < f.CapacityPages(); lpn++ {
		if at, err = f.Write(at, lpn, nil); err != nil {
			return E10Result{}, err
		}
	}
	keys := workload.NewUniform(workload.NewSource(cfg.Seed), f.CapacityPages())
	base := *f.Counters()
	baseHost := f.HostWrites()
	baseAt := at
	n := e10Writes(cfg)
	for i := 0; i < n; i++ {
		if at, err = f.Write(at, keys.Next(), nil); err != nil {
			return E10Result{}, err
		}
	}
	c := *f.Counters()
	host := f.HostWrites() - baseHost
	name := "block-on-ZNS (host copy)"
	if simpleCopy {
		name = "block-on-ZNS (simple copy)"
	}
	return E10Result{
		Name:         name,
		WritePagesPS: stats.Rate(host, at-baseAt),
		WA:           float64(c.FlashProgramPages-base.FlashProgramPages) / float64(host),
		PCIePerHostKB: float64(c.PCIeBytes-base.PCIeBytes) /
			float64(host*uint64(f.PageSize())),
	}, nil
}

func e10Writes(cfg Config) int {
	if cfg.Quick {
		return 20000
	}
	return 60000
}

func runE10(cfg Config) (Report, error) {
	r := Report{
		ID:         "E10",
		Title:      "Rebuilding the block interface on ZNS",
		PaperClaim: "simple copy removes relocation from the PCIe bus; performance comparable to conventional",
		Header:     []string{"Configuration", "Write pages/s", "WA", "PCIe bytes/host byte"},
	}
	var conv, hostCopy, sc E10Result
	err := runParts(cfg,
		part(&conv, E10Conv),
		part(&hostCopy, func(c Config) (E10Result, error) { return E10HostFTL(false, c) }),
		part(&sc, func(c Config) (E10Result, error) { return E10HostFTL(true, c) }))
	if err != nil {
		return r, err
	}
	for _, e := range []E10Result{conv, hostCopy, sc} {
		r.AddRow(e.Name, fmt.Sprintf("%.0f", e.WritePagesPS), fmt.Sprintf("%.2f", e.WA),
			fmt.Sprintf("%.2f", e.PCIePerHostKB))
	}
	r.AddNote("simple-copy PCIe saving vs host copy: %.0f%%; throughput vs conventional: %.2fx",
		(1-sc.PCIePerHostKB/hostCopy.PCIePerHostKB)*100,
		sc.WritePagesPS/conv.WritePagesPS)
	return r, nil
}
