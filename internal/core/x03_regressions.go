package core

import (
	"fmt"

	"blockhead/internal/flash"
	"blockhead/internal/ftl"
	"blockhead/internal/hostftl"
	"blockhead/internal/sim"
	"blockhead/internal/workload"
	"blockhead/internal/zns"
)

func init() {
	register(Experiment{
		ID:         "X3",
		Title:      "Extension: systematic search for workloads that regress on ZNS (§4.2)",
		PaperClaim: "\"Can we systematically test representative and synthetic workloads to discover if any perform worse over ZNS?\" — the known case is multi-writer single-zone, fixed by append",
		Run:        runX3,
	})
}

func x3Geometry() flash.Geometry {
	return flash.Geometry{Channels: 4, DiesPerChan: 1, PlanesPerDie: 1,
		BlocksPerLUN: 64, PagesPerBlock: 64, PageSize: 4096}
}

// x3Row is one workload's comparison: pages/s through the conventional
// device vs. the best-practice ZNS equivalent.
type x3Row struct {
	workload string
	conv     float64
	zns      float64
	note     string
}

// x3ClosedLoop drives n workers against op until the virtual deadline and
// returns pages/second.
func x3ClosedLoop(n int, op OpFunc, dur sim.Time) (float64, error) {
	res := RunMixed(MixedCfg{Writers: n, Write: op, Duration: dur,
		Src: workload.NewSource(1)})
	if res.Err != nil {
		return 0, res.Err
	}
	return res.WriteScale, nil
}

func runX3(cfg Config) (Report, error) {
	r := Report{
		ID:         "X3",
		Title:      "Workload sweep: conventional vs ZNS-native",
		PaperClaim: "most workloads match or win on ZNS; the write-pointer bottleneck is the known regression, and append removes it",
		Header:     []string{"Workload", "Conv pages/s", "ZNS pages/s", "ZNS/conv", "Verdict"},
	}
	dur := 2 * sim.Second
	if cfg.Quick {
		dur = 400 * sim.Millisecond
	}
	lat := flash.LatenciesFor(flash.TLC)
	var rows []x3Row

	// --- Sequential streaming write, 4 writers to disjoint regions. ---
	{
		conv, err := ftl.NewDefault(x3Geometry(), lat, 0.07)
		if err != nil {
			return r, err
		}
		region := conv.CapacityPages() / 4
		var next [4]int64
		w := 0
		convRate, err := x3ClosedLoop(4, func(t sim.Time) (sim.Time, error) {
			me := w % 4
			w++
			lpn := int64(me)*region + next[me]%region
			next[me]++
			return conv.WritePage(t, lpn, nil)
		}, dur)
		if err != nil {
			return r, err
		}
		zd, err := zns.New(zns.Config{Geom: x3Geometry(), Lat: lat, ZoneBlocks: 1})
		if err != nil {
			return r, err
		}
		// Each writer owns a rotating set of zones (FIFO log per writer).
		var zone [4]int
		for i := range zone {
			zone[i] = i
		}
		wz := 0
		znsRate, err := x3ClosedLoop(4, func(t sim.Time) (sim.Time, error) {
			me := wz % 4
			wz++
			if zd.WP(zone[me]) >= zd.WritableCap(zone[me]) {
				z := (zone[me] + 4) % zd.NumZones()
				done, err := zd.Reset(t, z)
				if err != nil {
					return t, err
				}
				zone[me], t = z, done
			}
			_, done, err := zd.Append(t, zone[me], nil)
			return done, err
		}, dur)
		if err != nil {
			return r, err
		}
		rows = append(rows, x3Row{"sequential streams x4", convRate, znsRate, "parity: both flash-bound"})
	}

	// --- Random 4K overwrite through a block interface (steady state). ---
	{
		convRes, err := E10Conv(cfg)
		if err != nil {
			return r, err
		}
		hostRes, err := E10HostFTL(true, cfg)
		if err != nil {
			return r, err
		}
		rows = append(rows, x3Row{"random 4K overwrite (block API)", convRes.WritePagesPS,
			hostRes.WritePagesPS, "mild regression: host FTL pays zone-granular reclaim"})
	}

	// --- Multi-writer shared log, 8 writers, one zone. ---
	{
		// Conventional: the host assigns log offsets in memory; the device
		// takes the writes in parallel. Uses the same 8-LUN geometry as the
		// E7 zone device so all three rows compare identical hardware.
		conv, err := ftl.NewDefault(e7Geometry(), lat, 0.07)
		if err != nil {
			return r, err
		}
		var cursor int64
		convRate, err := x3ClosedLoop(8, func(t sim.Time) (sim.Time, error) {
			lpn := cursor % conv.CapacityPages()
			cursor++
			return conv.WritePage(t, lpn, nil)
		}, dur)
		if err != nil {
			return r, err
		}
		wr, err := E7Throughput(8, false, dur)
		if err != nil {
			return r, err
		}
		ap, err := E7Throughput(8, true, dur)
		if err != nil {
			return r, err
		}
		rows = append(rows, x3Row{"shared log x8 (zone writes)", convRate, wr,
			"REGRESSION: write-pointer serialization (§4.2)"})
		rows = append(rows, x3Row{"shared log x8 (zone append)", convRate, ap,
			"fixed by the append command"})
	}

	// --- Random reads (no writes): pure read path. ---
	{
		conv, err := ftl.NewDefault(x3Geometry(), lat, 0.07)
		if err != nil {
			return r, err
		}
		var at sim.Time
		for lpn := int64(0); lpn < conv.CapacityPages(); lpn++ {
			if at, err = conv.WritePage(at, lpn, nil); err != nil {
				return r, err
			}
		}
		src := workload.NewSource(cfg.Seed)
		keys := workload.NewUniform(src, conv.CapacityPages())
		res := RunMixed(MixedCfg{Writers: 8, Write: func(t sim.Time) (sim.Time, error) {
			done, _, err := conv.ReadPage(sim.Max(t, at), keys.Next())
			return done, err
		}, Start: at, Duration: dur, Src: src})
		if res.Err != nil {
			return r, res.Err
		}
		convRate := res.WriteScale

		zd, err := zns.New(zns.Config{Geom: x3Geometry(), Lat: lat, ZoneBlocks: 1})
		if err != nil {
			return r, err
		}
		f, err := hostftl.New(zd, hostftl.Config{ZonesPerStream: 4})
		if err != nil {
			return r, err
		}
		at = 0
		for lpn := int64(0); lpn < f.CapacityPages(); lpn++ {
			if at, err = f.Write(at, lpn, nil); err != nil {
				return r, err
			}
		}
		zkeys := workload.NewUniform(src, f.CapacityPages())
		res = RunMixed(MixedCfg{Writers: 8, Write: func(t sim.Time) (sim.Time, error) {
			done, _, err := f.Read(sim.Max(t, at), zkeys.Next())
			return done, err
		}, Start: at, Duration: dur, Src: src})
		if res.Err != nil {
			return r, res.Err
		}
		rows = append(rows, x3Row{"random reads x8", convRate, res.WriteScale, "parity: reads bypass placement"})
	}

	for _, row := range rows {
		r.AddRow(row.workload, fmt.Sprintf("%.0f", row.conv), fmt.Sprintf("%.0f", row.zns),
			fmt.Sprintf("%.2fx", row.zns/row.conv), row.note)
	}
	r.AddNote("a ratio well below 1.00x marks a workload that performs worse over ZNS;")
	r.AddNote("the sweep rediscovers the paper's write-pointer case and its append fix")
	return r, nil
}
