package core

import (
	"fmt"

	"blockhead/internal/cost"
)

func init() {
	register(Experiment{
		ID:         "E3",
		Title:      "On-board DRAM for address translation (§2.2 estimate)",
		PaperClaim: "~1 GB per TB for a page-mapped FTL vs ~256 KB per TB for a zone FTL with 16 MB blocks",
		Run:        runE3,
	})
}

func runE3(cfg Config) (Report, error) {
	r := Report{
		ID:         "E3",
		Title:      "Mapping-table DRAM per device",
		PaperClaim: "conventional ~1 GB/TB; ZNS ~256 KB/TB (4 B entries, 4 KB pages, 16 MB blocks)",
		Header:     []string{"Device", "Capacity", "Granularity", "Mapping DRAM"},
	}
	const tb = int64(1) << 40
	for _, capTB := range []int64{1, 2, 4, 8} {
		capacity := capTB * tb
		conv := cost.ConvMappingBytes(capacity, 4096)
		zns := cost.ZNSMappingBytes(capacity, 16<<20)
		r.AddRow("conventional", fmt.Sprintf("%d TB", capTB), "4 KB page",
			fmt.Sprintf("%.0f MiB", float64(conv)/(1<<20)))
		r.AddRow("zns", fmt.Sprintf("%d TB", capTB), "16 MB block",
			fmt.Sprintf("%.0f KiB", float64(zns)/(1<<10)))
	}
	conv := cost.ConvMappingBytes(tb, 4096)
	zns := cost.ZNSMappingBytes(tb, 16<<20)
	r.AddNote("reduction at 1 TB: %dx", conv/zns)
	return r, nil
}
