package core

import (
	"fmt"

	"blockhead/internal/flash"
	"blockhead/internal/ftl"
	"blockhead/internal/sim"
	"blockhead/internal/workload"
	"blockhead/internal/zns"
)

// The ablations test the design decisions DESIGN.md calls out: GC victim
// policy, zone stripe width, the shared-flash ceiling both devices inherit,
// and trim support on the conventional baseline.

func init() {
	register(Experiment{
		ID:         "A1",
		Title:      "Ablation: GC victim policy (greedy vs cost-benefit)",
		PaperClaim: "§4.1 asks how the optimal GC algorithm changes with information; policy matters most under skew",
		Run:        runA1,
	})
	register(Experiment{
		ID:         "A2",
		Title:      "Ablation: zone stripe width",
		PaperClaim: "wide zones buy intra-zone parallelism; narrow zones buy fine-grained reclamation",
		Run:        runA2,
	})
	register(Experiment{
		ID:         "A3",
		Title:      "Ablation: shared-flash ceiling",
		PaperClaim: "both device models run on the same flash, so comparisons isolate the interface",
		Run:        runA3,
	})
	register(Experiment{
		ID:         "A4",
		Title:      "Ablation: trim support on the conventional device",
		PaperClaim: "without trim the FTL copies dead file data; even with it, the information gap remains",
		Run:        runA4,
	})
}

// runA1 compares GC victim policies under uniform and skewed churn.
func runA1(cfg Config) (Report, error) {
	r := Report{
		ID:     "A1",
		Title:  "GC policy vs workload skew",
		Header: []string{"Workload", "Greedy WA", "Cost-benefit WA"},
	}
	churn := 3
	if cfg.Quick {
		churn = 2
	}
	for _, skewed := range []bool{false, true} {
		was := make([]float64, 0, 2)
		for _, policy := range []ftl.GCPolicy{ftl.Greedy, ftl.CostBenefit} {
			dev, err := ftl.New(ftl.Config{
				Geom:              e2Geometry(),
				Lat:               flash.LatenciesFor(flash.TLC),
				OPFraction:        0.07,
				GCPolicy:          policy,
				HotColdSeparation: true,
				TrimSupported:     true,
			})
			if err != nil {
				return r, err
			}
			var at sim.Time
			for lpn := int64(0); lpn < dev.CapacityPages(); lpn++ {
				if at, err = dev.WritePage(at, lpn, nil); err != nil {
					return r, err
				}
			}
			src := workload.NewSource(cfg.Seed)
			var keys workload.KeyGen = workload.NewUniform(src, dev.CapacityPages())
			if skewed {
				keys = workload.NewHotCold(src, dev.CapacityPages(), 0.1, 0.9)
			}
			base := *dev.Counters()
			for i := int64(0); i < dev.CapacityPages()*int64(churn); i++ {
				if at, err = dev.WritePage(at, keys.Next(), nil); err != nil {
					return r, err
				}
			}
			c := *dev.Counters()
			was = append(was, float64(c.FlashProgramPages-base.FlashProgramPages)/
				float64(c.HostWritePages-base.HostWritePages))
		}
		name := "uniform"
		if skewed {
			name = "hot/cold 90/10"
		}
		r.AddRow(name, fmt.Sprintf("%.2f", was[0]), fmt.Sprintf("%.2f", was[1]))
	}
	return r, nil
}

// runA2 sweeps the zone stripe width: sequential fill throughput (wide
// wins) vs reset granularity (narrow wins).
func runA2(cfg Config) (Report, error) {
	r := Report{
		ID:     "A2",
		Title:  "Zone stripe width: parallelism vs granularity",
		Header: []string{"ZoneBlocks", "Zone size", "Fill pages/s", "Reset cost (ms)"},
	}
	for _, w := range []int{1, 2, 4, 8} {
		dev, err := zns.New(zns.Config{
			Geom: flash.Geometry{Channels: 8, DiesPerChan: 1, PlanesPerDie: 1,
				BlocksPerLUN: 8, PagesPerBlock: 64, PageSize: 4096},
			Lat:        flash.LatenciesFor(flash.TLC),
			ZoneBlocks: w,
		})
		if err != nil {
			return r, err
		}
		// Fill zone 0 at high queue depth: all appends issued immediately,
		// so the stripe's LUN parallelism shows up as overlap.
		var at sim.Time
		for o := int64(0); o < dev.ZonePages(); o++ {
			_, done, err := dev.Append(0, 0, nil)
			if err != nil {
				return r, err
			}
			at = sim.Max(at, done)
		}
		fillRate := float64(dev.ZonePages()) / at.Seconds()
		resetDone, err := dev.Reset(at, 0)
		if err != nil {
			return r, err
		}
		r.AddRow(fmt.Sprint(w),
			fmt.Sprintf("%d KiB", dev.ZonePages()*4),
			fmt.Sprintf("%.0f", fillRate),
			fmt.Sprintf("%.1f", (resetDone-at).Millis()))
	}
	r.AddNote("fill at high queue depth: throughput scales with the stripe's LUN count; reset cost is one erase regardless (erases run in parallel across the stripe)")
	return r, nil
}

// runA3 measures the raw flash ceiling and both devices' sequential
// throughput against it.
func runA3(cfg Config) (Report, error) {
	r := Report{
		ID:     "A3",
		Title:  "Shared-flash ceiling",
		Header: []string{"Layer", "Sequential write pages/s", "% of raw"},
	}
	geom := e4Geometry()
	raw, err := E12SequentialThroughput(geom.Channels)
	if err != nil {
		return r, err
	}

	// Conventional, fresh device, sequential fill at high queue depth.
	conv, err := ftl.NewDefault(geom, flash.LatenciesFor(flash.TLC), 0.07)
	if err != nil {
		return r, err
	}
	var at sim.Time
	for lpn := int64(0); lpn < conv.CapacityPages(); lpn++ {
		done, err := conv.WritePage(0, lpn, nil)
		if err != nil {
			return r, err
		}
		at = sim.Max(at, done)
	}
	convRate := float64(conv.CapacityPages()) / at.Seconds()

	// ZNS, fresh device, fill all zones round-robin at high queue depth.
	zd, err := zns.New(zns.Config{Geom: geom, Lat: flash.LatenciesFor(flash.TLC), ZoneBlocks: 4})
	if err != nil {
		return r, err
	}
	at = 0
	total := int64(zd.NumZones()) * zd.ZonePages()
	for o := int64(0); o < zd.ZonePages(); o++ {
		for z := 0; z < zd.NumZones(); z++ {
			_, done, err := zd.Append(0, z, nil)
			if err != nil {
				return r, err
			}
			at = sim.Max(at, done)
		}
	}
	znsRate := float64(total) / at.Seconds()

	r.AddRow("raw flash", fmt.Sprintf("%.0f", raw), "100%")
	r.AddRow("conventional FTL (fresh)", fmt.Sprintf("%.0f", convRate),
		fmt.Sprintf("%.0f%%", convRate/raw*100))
	r.AddRow("zns (fresh)", fmt.Sprintf("%.0f", znsRate),
		fmt.Sprintf("%.0f%%", znsRate/raw*100))
	r.AddNote("fresh sequential fills: both interfaces reach the flash ceiling; they part ways under churn (E2, E4)")
	return r, nil
}

// runA4 re-runs the E2-style churn with and without trim after deleting
// half the logical space.
func runA4(cfg Config) (Report, error) {
	r := Report{
		ID:     "A4",
		Title:  "Trim support under file churn",
		Header: []string{"Trim", "WriteAmp"},
	}
	churn := int64(3)
	if cfg.Quick {
		churn = 2
	}
	for _, trim := range []bool{true, false} {
		dev, err := ftl.New(ftl.Config{
			Geom:              e2Geometry(),
			Lat:               flash.LatenciesFor(flash.TLC),
			OPFraction:        0.07,
			HotColdSeparation: true,
			TrimSupported:     trim,
		})
		if err != nil {
			return r, err
		}
		var at sim.Time
		for lpn := int64(0); lpn < dev.CapacityPages(); lpn++ {
			if at, err = dev.WritePage(at, lpn, nil); err != nil {
				return r, err
			}
		}
		// Delete half the space (dead files), then churn the other half.
		half := dev.CapacityPages() / 2
		if err := dev.Trim(at, 0, half); err != nil {
			return r, err
		}
		src := workload.NewSource(cfg.Seed)
		keys := workload.NewUniform(src, half)
		base := *dev.Counters()
		for i := int64(0); i < half*churn; i++ {
			if at, err = dev.WritePage(at, half+keys.Next(), nil); err != nil {
				return r, err
			}
		}
		c := *dev.Counters()
		wa := float64(c.FlashProgramPages-base.FlashProgramPages) /
			float64(c.HostWritePages-base.HostWritePages)
		label := "on"
		if !trim {
			label = "off"
		}
		r.AddRow(label, fmt.Sprintf("%.2f", wa))
	}
	r.AddNote("without trim the FTL must copy pages of deleted files forward forever")
	return r, nil
}
