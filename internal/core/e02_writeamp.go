package core

import (
	"fmt"

	"blockhead/internal/flash"
	"blockhead/internal/ftl"
	"blockhead/internal/sim"
	"blockhead/internal/telemetry"
	"blockhead/internal/workload"
)

func init() {
	register(Experiment{
		ID:         "E2",
		Title:      "Write amplification vs. overprovisioning (the paper's §2.2 lab experiment)",
		PaperClaim: "random writes: WA ~15x with no OP, improving to ~2.5x at ~25% OP",
		Run:        runE2,
	})
}

// e2Geometry: 4 LUNs, 512 blocks of 64 pages (128 MiB at 4 KiB pages) —
// large enough that the fixed reserve floor (16 blocks) stays close to the
// calibrated 3.5%.
func e2Geometry() flash.Geometry {
	return flash.Geometry{Channels: 4, DiesPerChan: 1, PlanesPerDie: 1,
		BlocksPerLUN: 128, PagesPerBlock: 64, PageSize: 4096}
}

// E2Point runs the §2.2 experiment at one overprovisioning setting and
// returns the steady-state write amplification. Exposed for the benchmark
// harness and ablations.
func E2Point(op float64, churnMultiple int, seed int64) (wa float64, gcPerHostWrite float64, err error) {
	return e2Point(op, churnMultiple, seed, nil)
}

// e2Point is E2Point with an optional telemetry probe attached to the
// device, so a full run exposes write-amp and GC-stall time series.
func e2Point(op float64, churnMultiple int, seed int64, probe *telemetry.Probe) (wa float64, gcPerHostWrite float64, err error) {
	dev, err := ftl.New(ftl.Config{
		Geom: e2Geometry(),
		Lat:  flash.LatenciesFor(flash.TLC),
		// The fixed reserve is the calibration knob for the left end of the
		// sweep: 4.2% puts the no-OP point at the paper's ~15x.
		ReserveFraction:   0.042,
		OPFraction:        op,
		HotColdSeparation: true,
		TrimSupported:     true,
	})
	if err != nil {
		return 0, 0, err
	}
	if probe != nil {
		dev.SetProbe(probe)
	}
	var at sim.Time
	// Fill sequentially, then overwrite uniformly at random; measure only
	// the churn phase (steady state), as the paper's lab experiment does.
	for lpn := int64(0); lpn < dev.CapacityPages(); lpn++ {
		if at, err = dev.WritePage(at, lpn, nil); err != nil {
			return 0, 0, err
		}
	}
	base := *dev.Counters()
	keys := workload.NewUniform(workload.NewSource(seed), dev.CapacityPages())
	n := dev.CapacityPages() * int64(churnMultiple)
	for i := int64(0); i < n; i++ {
		if at, err = dev.WritePage(at, keys.Next(), nil); err != nil {
			return 0, 0, err
		}
	}
	c := *dev.Counters()
	host := c.HostWritePages - base.HostWritePages
	programs := c.FlashProgramPages - base.FlashProgramPages
	gc := c.GCCopyPages - base.GCCopyPages
	return float64(programs) / float64(host), float64(gc) / float64(host), nil
}

func runE2(cfg Config) (Report, error) {
	r := Report{
		ID:         "E2",
		Title:      "Write amplification vs. overprovisioning",
		PaperClaim: "~15x at 0% OP -> ~2.5x at ~25% OP (uniform random writes)",
		Header:     []string{"OP %", "WriteAmp", "GC copies/host write"},
	}
	ops := []float64{0, 0.07, 0.11, 0.15, 0.20, 0.25, 0.28}
	churn := 3
	if cfg.Quick {
		ops = []float64{0, 0.11, 0.25}
		churn = 2
	}
	for i, op := range ops {
		// Attach the probe to the first (0% OP) point only: it is the
		// highest-write-amp device, so its trace shows GC at its worst, and
		// one point keeps the exported series self-consistent.
		probe := cfg.Probe
		if i != 0 {
			probe = nil
		}
		wa, gc, err := e2Point(op, churn, cfg.Seed, probe)
		if err != nil {
			return r, fmt.Errorf("E2 at OP %.2f: %w", op, err)
		}
		r.AddRow(fmt.Sprintf("%.0f", op*100), fmt.Sprintf("%.2f", wa), fmt.Sprintf("%.2f", gc))
	}
	r.AddNote("greedy GC, 3.5%% fixed reserve (bad-block + GC headroom) at every point")
	return r, nil
}
