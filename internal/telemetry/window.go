package telemetry

import (
	"sort"

	"blockhead/internal/sim"
	"blockhead/internal/stats"
)

// WindowCfg parameterizes a WindowSet.
type WindowCfg struct {
	// Width is the virtual-time span of one window; 0 selects 100ms.
	Width sim.Time
	// Keep is how many windows the per-tenant ring retains; 0 selects 8.
	Keep int
}

// DefaultWindowWidth is the window span a zero WindowCfg selects.
const DefaultWindowWidth = 100 * sim.Millisecond

// DefaultWindowKeep is the ring depth a zero WindowCfg selects.
const DefaultWindowKeep = 8

// WindowOp aggregates one op kind's latency samples within one window.
type WindowOp struct {
	Count uint64
	Sum   sim.Time
	Hist  stats.Histogram
}

// MeanNs reports the window-op's exact mean latency.
func (o WindowOp) MeanNs() sim.Time {
	if o.Count == 0 {
		return 0
	}
	return o.Sum / sim.Time(o.Count)
}

// Window is one fixed virtual-time window of per-op latency histograms.
// Seq is the window's index (Start = Seq * width); Seq < 0 marks an
// unused ring slot.
type Window struct {
	Seq   int64
	Start sim.Time
	Ops   [NumOps]WindowOp
}

// WindowSet is a per-tenant ring of fixed virtual-time latency windows —
// the substrate for windowed tail tracking and SLO verdicts. Completed
// IOs land in the window their completion time falls in; a window that
// wraps past the ring depth evicts the oldest. All state is preallocated,
// so Observe never allocates, and the nil *WindowSet is a valid no-op on
// every method (the disabled path, pinned at 0 allocs/op).
type WindowSet struct {
	width sim.Time
	keep  int
	rings [MaxTenants][]Window
	late  uint64
}

// NewWindowSet returns an empty window ring per tenant.
func NewWindowSet(cfg WindowCfg) *WindowSet {
	if cfg.Width <= 0 {
		cfg.Width = DefaultWindowWidth
	}
	if cfg.Keep <= 0 {
		cfg.Keep = DefaultWindowKeep
	}
	w := &WindowSet{width: cfg.Width, keep: cfg.Keep}
	for t := range w.rings {
		ring := make([]Window, cfg.Keep)
		for i := range ring {
			ring[i].Seq = -1
		}
		w.rings[t] = ring
	}
	return w
}

// Width reports the window span (0 on a nil set).
func (w *WindowSet) Width() sim.Time {
	if w == nil {
		return 0
	}
	return w.width
}

// Keep reports the ring depth (0 on a nil set).
func (w *WindowSet) Keep() int {
	if w == nil {
		return 0
	}
	return w.keep
}

// Observe lands one completed IO — tenant t's op finishing at done with
// end-to-end latency total — in its window. An observation older than the
// ring's horizon (done before the evicting window's start) is counted in
// Late and dropped rather than corrupting a newer window.
func (w *WindowSet) Observe(t TenantID, op OpKind, done, total sim.Time) {
	if w == nil {
		return
	}
	t = clampTenant(t)
	if op < 0 || int(op) >= NumOps {
		return
	}
	seq := int64(done / w.width)
	slot := &w.rings[t][int(seq%int64(w.keep))]
	switch {
	case slot.Seq == seq:
		// Same window: accumulate.
	case slot.Seq < seq:
		*slot = Window{Seq: seq, Start: sim.Time(seq) * w.width}
	default:
		w.late++
		return
	}
	o := &slot.Ops[op]
	o.Count++
	o.Sum += total
	o.Hist.Add(total)
}

// Late reports how many observations arrived behind the ring's horizon
// and were dropped.
func (w *WindowSet) Late() uint64 {
	if w == nil {
		return 0
	}
	return w.late
}

// Snapshot returns tenant t's retained windows in ascending Seq order
// (copy; allocates — a dump-time call, not a hot-path one). Nil on a nil
// set or out-of-range tenant.
func (w *WindowSet) Snapshot(t TenantID) []Window {
	if w == nil {
		return nil
	}
	if t < 0 || t >= MaxTenants {
		return nil
	}
	out := make([]Window, 0, w.keep)
	for _, win := range w.rings[t] {
		if win.Seq >= 0 {
			out = append(out, win)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Reset clears every ring to empty, keeping the configuration. Used when
// one sink outlives an experiment phase and the next phase restarts
// virtual time (stale Seq values would otherwise shadow the new run's
// windows).
func (w *WindowSet) Reset() {
	if w == nil {
		return
	}
	for t := range w.rings {
		for i := range w.rings[t] {
			w.rings[t][i] = Window{Seq: -1}
		}
	}
	w.late = 0
}
