package telemetry

import (
	"blockhead/internal/sim"
	"blockhead/internal/stats"
)

// Phase names one component of an IO's end-to-end latency. The attribution
// layer decomposes every measured IO into these phases with a hard
// invariant: the per-phase charges sum *exactly* (zero-tick slack) to the
// end-to-end virtual-time latency. That exactness is possible because the
// simulator is a discrete-event model — sim.Resource reports the precise
// start and end of every acquisition, so each layer can charge contiguous
// sub-intervals of the IO's lifetime with nothing left over.
type Phase int

const (
	// PhaseHostQueue is time spent queued host-side before the device sees
	// the command (software queues, host-side admission).
	PhaseHostQueue Phase = iota
	// PhaseWPSerial is write-pointer serialization: a zone append waiting
	// behind the previous program to the same zone (the per-zone sequential
	// write constraint, §2.3).
	PhaseWPSerial
	// PhaseGCStall is time the host op stalled behind reclamation —
	// device-side garbage collection (internal/ftl) or host-side zone
	// reclaim (internal/hostftl).
	PhaseGCStall
	// PhaseZoneReset is an inline zone reset (stripe-wide erase) on the
	// write path, e.g. a circular log recycling its oldest zone.
	PhaseZoneReset
	// PhaseDevCopy is an inline device-side simple-copy (§2.3) on the
	// op's critical path.
	PhaseDevCopy
	// PhaseChanWait is channel-bus arbitration: waiting for the shared
	// channel to go idle before a page transfer.
	PhaseChanWait
	// PhaseXfer is the page moving over the channel bus.
	PhaseXfer
	// PhaseLUNWait is die contention: waiting for the LUN (plane) to finish
	// someone else's cell operation.
	PhaseLUNWait
	// PhaseNANDRead is the raw cell sense time.
	PhaseNANDRead
	// PhaseNANDProgram is the raw cell program time.
	PhaseNANDProgram
	// PhaseNANDErase is the raw block erase time.
	PhaseNANDErase

	// NumPhases is the number of attribution phases.
	NumPhases = int(PhaseNANDErase) + 1
)

var phaseNames = [NumPhases]string{
	"host_queue",
	"wp_serial",
	"gc_stall",
	"zone_reset",
	"dev_copy",
	"chan_wait",
	"bus_xfer",
	"lun_wait",
	"nand_read",
	"nand_program",
	"nand_erase",
}

// String returns the phase's stable wire name (used in JSON exports and
// report tables).
func (p Phase) String() string {
	if p < 0 || int(p) >= NumPhases {
		return "unknown"
	}
	return phaseNames[p]
}

// OpKind classifies an attributed IO.
type OpKind int

const (
	OpRead OpKind = iota
	OpWrite

	// NumOps is the number of op kinds.
	NumOps = int(OpWrite) + 1
)

var opNames = [NumOps]string{"read", "write"}

// String returns the op kind's stable wire name.
func (k OpKind) String() string {
	if k < 0 || int(k) >= NumOps {
		return "unknown"
	}
	return opNames[k]
}

// OpAttr aggregates attribution for one op kind. Phase means are exact
// (PhaseSum is an exact virtual-time total); the per-phase histograms give
// log-bucketed tail percentiles. Every completed IO observes into *every*
// phase histogram (zero for phases it never entered), so a phase p99 reads
// as "99% of these ops spent at most this long in this phase".
type OpAttr struct {
	Count    uint64
	TotalSum sim.Time
	Total    stats.Histogram
	PhaseSum [NumPhases]sim.Time
	Phase    [NumPhases]stats.Histogram
}

// Delta returns the aggregate accumulated since prev was captured. All
// fields of OpAttr are monotonic, so subtraction is exact (histogram maxes
// are upper bounds; see stats.Histogram.Delta).
func (a OpAttr) Delta(prev OpAttr) OpAttr {
	d := OpAttr{
		Count:    a.Count - prev.Count,
		TotalSum: a.TotalSum - prev.TotalSum,
		Total:    a.Total.Delta(prev.Total),
	}
	for p := 0; p < NumPhases; p++ {
		d.PhaseSum[p] = a.PhaseSum[p] - prev.PhaseSum[p]
		d.Phase[p] = a.Phase[p].Delta(prev.Phase[p])
	}
	return d
}

// Merge folds other into a. Every field is a commutative aggregate (counts,
// exact sums, histogram buckets), so per-shard aggregates merged at a
// barrier equal the serial aggregate exactly — the merge strategy the
// AttrSink's //simlint:shared annotation names.
func (a *OpAttr) Merge(other OpAttr) {
	if a == nil {
		return
	}
	a.Count += other.Count
	a.TotalSum += other.TotalSum
	a.Total.Merge(other.Total)
	for p := 0; p < NumPhases; p++ {
		a.PhaseSum[p] += other.PhaseSum[p]
		a.Phase[p].Merge(other.Phase[p])
	}
}

// MeanPhase reports the exact mean time per IO spent in phase p.
func (a OpAttr) MeanPhase(p Phase) sim.Time {
	if a.Count == 0 {
		return 0
	}
	return a.PhaseSum[p] / sim.Time(a.Count)
}

// AttrSnapshot is a copyable snapshot of an AttrSink's aggregates.
type AttrSnapshot struct {
	Ops        [NumOps]OpAttr
	Violations uint64
}

// Delta returns the aggregates accumulated since prev.
func (s AttrSnapshot) Delta(prev AttrSnapshot) AttrSnapshot {
	d := AttrSnapshot{Violations: s.Violations - prev.Violations}
	for k := 0; k < NumOps; k++ {
		d.Ops[k] = s.Ops[k].Delta(prev.Ops[k])
	}
	return d
}

// Merge folds other into s: the barrier-time combine for per-shard
// AttrSink snapshots. Aggregates sum exactly; sequence numbers are not part
// of a snapshot (the parallel harness rebases per-shard exemplar seqs
// separately, in shard order).
func (s *AttrSnapshot) Merge(other AttrSnapshot) {
	if s == nil {
		return
	}
	s.Violations += other.Violations
	for k := 0; k < NumOps; k++ {
		s.Ops[k].Merge(other.Ops[k])
	}
}

// AttrSink collects per-IO latency attribution. One record is active at a
// time — the simulator executes device ops synchronously, so the host
// driver brackets each measured op with Begin/End and the layers in between
// call Charge for the sub-intervals they own.
//
// The nil *AttrSink is a valid no-op on every method, and no method
// allocates: the hot path stays 0 allocs/op with telemetry disabled
// (pinned by bench_test.go) and allocation-free when enabled.
//
//simlint:shared per-IO attribution follows the IO, not the shard: brackets open and close in virtual-time order, so the parallel core gives each shard its own sink and merges at End
type AttrSink struct {
	active    bool
	suspended int
	op        OpKind
	start     sim.Time
	cur       [NumPhases]sim.Time

	// seq numbers measured IOs (1-based, incremented by BeginTenant);
	// flags carries the active record's exceptional-condition marks
	// (FlagFaultRetry, FlagAuditViolation). Together with the run's seed
	// and experiment ID, seq is the stable identity the forensic layer
	// replays to (`znsbench -explain <exp>:<seq>`).
	seq   uint64
	flags uint8

	// Tenant state (tenant.go): the active record's victim tenant, its
	// per-culprit blame charges, and the pushed-culprit ("worker") stack
	// device layers consult for resource ownership.
	tenant   TenantID
	curBlame [MaxTenants]sim.Time
	workers  [workerDepth]TenantID
	nworkers int

	ops        [NumOps]OpAttr
	violations uint64

	tenants     [MaxTenants]TenantAttr
	blame       [MaxTenants][MaxTenants]sim.Time
	tenantNames [MaxTenants]string

	// Windows, if set, receives every completed IO for windowed
	// tail-latency tracking; SLO, if set, evaluates objectives over those
	// windows (see SLOResults). Both are nil-safe, so they stay nil unless
	// a driver arms them.
	Windows *WindowSet
	SLO     *SLOEngine

	// Path, if set, receives the structured per-charge feed a critical-path
	// recorder consumes (see PathSink). Implementations must not allocate;
	// the sink forwards only while a record is open.
	Path PathSink

	// Exem, if set, receives per-IO completion records (sequence number,
	// phase timeline, blame vector, flags) so an exemplar reservoir can
	// capture worst-K latency exemplars (see ExemplarSink). EndExemplar
	// fires after Path.EndPath so the implementation can read the completed
	// critical path. Implementations must not allocate.
	Exem ExemplarSink

	// OnComplete, if set, observes every completed IO: op kind, exact
	// end-to-end latency, and the per-phase charges. Test hook for the
	// sum(phases) == total invariant; may allocate, so leave nil outside
	// tests.
	OnComplete func(op OpKind, total sim.Time, phases [NumPhases]sim.Time)

	// OnViolation, if set, observes every invariant violation as it is
	// counted. NewProbe wires it to the flight recorder so a violation dumps
	// the recent device history; the hook may allocate (violations are
	// exceptional by contract).
	OnViolation func(at sim.Time)
}

// NewAttrSink returns an empty sink.
func NewAttrSink() *AttrSink { return &AttrSink{} }

// Begin opens the attribution record for one measured IO issued at start,
// owned by the sys tenant (BeginTenant tags a specific tenant). No-op on a
// nil sink. A Begin while a record is open abandons the old record
// (counted as a violation: the driver failed to End or Drop it).
func (s *AttrSink) Begin(op OpKind, start sim.Time) {
	s.BeginTenant(op, 0, start)
}

// Charge attributes d of the active IO's latency to phase p. No-op when the
// sink is nil, no record is open (unmeasured work: prefill, warmup,
// background maintenance), the sink is suspended (parallel fan-out — the
// enclosing layer charges wall-clock instead), or d <= 0. A blame-phase
// charge with no explicit culprit (see ChargeBlamed) blames the record's
// own tenant, so blame conservation holds by construction.
func (s *AttrSink) Charge(p Phase, d sim.Time) {
	if s == nil || !s.active || d <= 0 {
		return
	}
	if s.suspended > 0 {
		s.overlap(p, d)
		return
	}
	s.cur[p] += d
	if blamePhases[p] {
		s.curBlame[s.tenant] += d
	}
	if s.Path != nil {
		s.Path.Segment(p, d)
	}
}

// overlap forwards a charge that arrived while suspended to the path sink.
// Only depth-1 charges are forwarded: work at deeper suspension levels is
// already represented by the enclosing composite charge one level up, so
// forwarding it too would double-count the same wall-clock interval.
func (s *AttrSink) overlap(p Phase, d sim.Time) {
	if s.suspended == 1 && s.Path != nil {
		s.Path.Overlap(p, d)
	}
}

// Reclassify moves up to d of the active record's charge from one phase to
// another, preserving the sum invariant. The zns layer uses it to relabel
// LUN-wait as write-pointer serialization when the wait was behind the same
// zone's previous program.
func (s *AttrSink) Reclassify(from, to Phase, d sim.Time) {
	if s == nil || !s.active || d <= 0 {
		return
	}
	if d > s.cur[from] {
		d = s.cur[from]
	}
	s.cur[from] -= d
	s.cur[to] += d
	// Keep blame conserved when the move crosses the blame-phase boundary.
	// The adjustment lands on the record's own tenant (the only culprit a
	// relabel can speak for); in-repo reclassifies stay inside the blamed
	// set (LUNWait -> WPSerial), so this is a no-op there.
	if blamePhases[from] != blamePhases[to] {
		if blamePhases[to] {
			s.curBlame[s.tenant] += d
		} else {
			s.curBlame[s.tenant] -= d
		}
	}
	if s.Path != nil {
		s.Path.Reassign(from, to, d)
	}
}

// Refund removes up to d ticks of already-charged time from phase p of the
// active record, returning the amount actually removed. Device layers call
// it when a counterfactual timing knob acknowledges the IO to the host
// before the underlying work finishes (the ZNS write-pointer early-ack in
// internal/zns): the host-visible latency shrinks, so the charged phases
// must shrink by exactly the same amount to keep sum(phases) == total.
// When p is a blame phase the refunded ticks are deducted from the
// record's blame charges too — from the record's own tenant first, then
// from culprits in ID order — so blame conservation holds exactly.
func (s *AttrSink) Refund(p Phase, d sim.Time) sim.Time {
	if s == nil || !s.active || s.suspended > 0 || d <= 0 {
		return 0
	}
	if d > s.cur[p] {
		d = s.cur[p]
	}
	if d <= 0 {
		return 0
	}
	s.cur[p] -= d
	if blamePhases[p] {
		rem := d
		if take := sim.Min(rem, s.curBlame[s.tenant]); take > 0 {
			s.curBlame[s.tenant] -= take
			rem -= take
		}
		for c := 0; c < MaxTenants && rem > 0; c++ {
			if take := sim.Min(rem, s.curBlame[c]); take > 0 {
				s.curBlame[c] -= take
				rem -= take
			}
		}
	}
	if s.Path != nil {
		s.Path.Refund(p, d)
	}
	return d
}

// Value reports the active record's current charge for phase p (0 if nil
// or no record is open). Layers use it to measure what their callees just
// charged, e.g. before a Reclassify.
func (s *AttrSink) Value(p Phase) sim.Time {
	if s == nil || !s.active {
		return 0
	}
	return s.cur[p]
}

// Suspend stops Charge from accumulating until the matching Resume. Layers
// that fan work out in parallel (GC relocations across LUNs, stripe-wide
// zone resets, simple-copy batches) suspend the sink around the fan-out and
// charge the IO one wall-clock phase instead — per-sub-op charges would
// double-count time that elapsed concurrently. Suspensions nest.
func (s *AttrSink) Suspend() {
	if s == nil {
		return
	}
	s.suspended++
}

// Resume undoes one Suspend.
func (s *AttrSink) Resume() {
	if s == nil {
		return
	}
	if s.suspended > 0 {
		s.suspended--
	}
}

// End closes the active record for an IO that completed at done, checks the
// sum invariant and the blame-conservation invariant, and folds the record
// into the per-op and per-tenant aggregates. A record whose phases do not
// sum exactly to done-start, or whose blame does not sum exactly to its
// blame-phase stalls, increments Violations (it is still aggregated, so
// the discrepancy is visible, not hidden).
func (s *AttrSink) End(done sim.Time) {
	if s == nil || !s.active {
		return
	}
	s.active = false
	total := done - s.start
	var sum, stallSum, blameSum sim.Time
	for p := 0; p < NumPhases; p++ {
		sum += s.cur[p]
		if blamePhases[p] {
			stallSum += s.cur[p]
		}
	}
	for c := 0; c < MaxTenants; c++ {
		blameSum += s.curBlame[c]
	}
	if sum != total || s.suspended != 0 || blameSum != stallSum {
		s.violations++
		if s.OnViolation != nil {
			s.OnViolation(done)
		}
	}
	a := &s.ops[s.op]
	a.Count++
	a.TotalSum += total
	a.Total.Add(total)
	for p := 0; p < NumPhases; p++ {
		a.PhaseSum[p] += s.cur[p]
		a.Phase[p].Add(s.cur[p])
	}
	ta := &s.tenants[s.tenant].Ops[s.op]
	ta.Count++
	ta.TotalSum += total
	ta.Total.Add(total)
	for p := 0; p < NumPhases; p++ {
		ta.PhaseSum[p] += s.cur[p]
	}
	for c := 0; c < MaxTenants; c++ {
		s.blame[s.tenant][c] += s.curBlame[c]
	}
	s.Windows.Observe(s.tenant, s.op, done, total)
	if s.Path != nil {
		s.Path.EndPath(done)
	}
	// Exem fires after Path.EndPath by contract: the exemplar layer reads
	// the completed critical path out of the attached recorder.
	if s.Exem != nil {
		s.Exem.EndExemplar(done, &s.cur, &s.curBlame, s.flags)
	}
	if s.OnComplete != nil {
		s.OnComplete(s.op, total, s.cur)
	}
}

// Drop abandons the active record without aggregating it — for IOs that
// fail partway (their charges are meaningless).
func (s *AttrSink) Drop() {
	if s == nil {
		return
	}
	if s.active && s.Path != nil {
		s.Path.DropPath()
	}
	if s.active && s.Exem != nil {
		s.Exem.DropExemplar()
	}
	s.active = false
	s.suspended = 0
}

// FlagIO marks the active record with an exceptional-condition flag
// (FlagFaultRetry, FlagAuditViolation). Flagged IOs bypass the exemplar
// reservoir's worst-K admission so they are always inspectable. No-op when
// the sink is nil or no record is open (an unmeasured IO tripping a fault
// has no record to flag).
func (s *AttrSink) FlagIO(f uint8) {
	if s == nil || !s.active {
		return
	}
	s.flags |= f
}

// Seq reports the sequence number of the most recently begun measured IO
// (0 before the first BeginTenant). Together with the run's seed and
// experiment ID it identifies one IO for forensic replay.
func (s *AttrSink) Seq() uint64 {
	if s == nil {
		return 0
	}
	return s.seq
}

// Active reports whether a record is open.
func (s *AttrSink) Active() bool { return s != nil && s.active }

// Violations reports how many records broke the attribution contract
// (phases not summing to total, unbalanced suspends, Begin over an open
// record). Always 0 in a correct build; the invariant test asserts it.
func (s *AttrSink) Violations() uint64 {
	if s == nil {
		return 0
	}
	return s.violations
}

// Op returns a copy of the aggregates for one op kind.
func (s *AttrSink) Op(k OpKind) OpAttr {
	if s == nil {
		return OpAttr{}
	}
	return s.ops[k]
}

// Snapshot returns a copy of all aggregates. Snapshots of a shared sink
// taken before and after an experiment Delta into that experiment's own
// breakdown.
func (s *AttrSink) Snapshot() AttrSnapshot {
	if s == nil {
		return AttrSnapshot{}
	}
	return AttrSnapshot{Ops: s.ops, Violations: s.violations}
}

// AttrDump is the JSON shape of an attribution export.
type AttrDump struct {
	Violations uint64                `json:"violations"`
	Ops        map[string]OpAttrDump `json:"ops"`
}

// OpAttrDump is the JSON shape of one op kind's attribution aggregate.
// Phases are in display order and omit phases this op never entered.
type OpAttrDump struct {
	Count  uint64      `json:"count"`
	MeanUs float64     `json:"mean_us"`
	P50Us  float64     `json:"p50_us"`
	P90Us  float64     `json:"p90_us"`
	P99Us  float64     `json:"p99_us"`
	P999Us float64     `json:"p999_us"`
	MaxUs  float64     `json:"max_us"`
	Phases []PhaseDump `json:"phases"`
}

// PhaseDump is one phase of an op's latency decomposition. MeanUs is exact;
// Frac is this phase's share of the op's total latency; the percentiles are
// log-bucket upper bounds over all IOs of the op kind (zeros included).
type PhaseDump struct {
	Name   string  `json:"name"`
	MeanUs float64 `json:"mean_us"`
	Frac   float64 `json:"frac"`
	P99Us  float64 `json:"p99_us"`
	P999Us float64 `json:"p999_us"`
	MaxUs  float64 `json:"max_us"`
}

// Dump converts the snapshot to its JSON shape.
func (s AttrSnapshot) Dump() AttrDump {
	d := AttrDump{Violations: s.Violations, Ops: map[string]OpAttrDump{}}
	for k := 0; k < NumOps; k++ {
		a := s.Ops[k]
		if a.Count == 0 {
			continue
		}
		od := OpAttrDump{
			Count:  a.Count,
			MeanUs: (a.TotalSum / sim.Time(a.Count)).Micros(),
			P50Us:  a.Total.Percentile(50).Micros(),
			P90Us:  a.Total.Percentile(90).Micros(),
			P99Us:  a.Total.Percentile(99).Micros(),
			P999Us: a.Total.Percentile(99.9).Micros(),
			MaxUs:  a.Total.Max().Micros(),
			Phases: []PhaseDump{},
		}
		for p := 0; p < NumPhases; p++ {
			if a.PhaseSum[p] == 0 {
				continue
			}
			frac := 0.0
			if a.TotalSum > 0 {
				frac = float64(a.PhaseSum[p]) / float64(a.TotalSum)
			}
			od.Phases = append(od.Phases, PhaseDump{
				Name:   Phase(p).String(),
				MeanUs: a.MeanPhase(Phase(p)).Micros(),
				Frac:   frac,
				P99Us:  a.Phase[p].Percentile(99).Micros(),
				P999Us: a.Phase[p].Percentile(99.9).Micros(),
				MaxUs:  a.Phase[p].Max().Micros(),
			})
		}
		d.Ops[opNames[k]] = od
	}
	return d
}

// Dump converts the sink's current aggregates to their JSON shape. Safe on
// a nil sink (empty dump).
func (s *AttrSink) Dump() AttrDump { return s.Snapshot().Dump() }
