package telemetry

import "blockhead/internal/sim"

// PathSink receives a structured feed of the AttrSink's per-IO charges so a
// higher layer (internal/telemetry/critpath) can reconstruct each IO's
// critical path without re-instrumenting the device models. The AttrSink
// forwards every event of the active record's lifetime:
//
//   - BeginPath / EndPath / DropPath bracket one measured IO, mirroring
//     BeginTenant / End / Drop.
//   - Segment is an on-path charge: ticks that bound the IO's completion
//     (the charge landed while the sink was not suspended).
//   - WaitSegment is an on-path charge to a resource-wait phase, annotated
//     with the culprit tenant that held the resource (SelfTenant when the
//     blame lands on the record's own tenant) and the service phase of the
//     occupant the IO waited behind (bind), so a counterfactual engine knows
//     which cost the wait tracks and a forensic narrator knows who held the
//     resource. bind < 0 means the blocker is unknown.
//   - Overlap is an off-path charge: ticks recorded while the sink was
//     suspended at depth 1 (parallel fan-out whose wall-clock the enclosing
//     layer charges as one composite phase instead). Charges at deeper
//     suspension levels are not forwarded: their time is already represented
//     by the enclosing composite charge, which itself arrives as an Overlap
//     or a Segment one level up.
//   - Reassign mirrors Reclassify (from -> to, sum-preserving).
//   - Refund mirrors AttrSink.Refund: ticks removed from the record because
//     the device acknowledged the IO early (counterfactual timing knobs).
//
// Implementations must not allocate on any call: these hooks sit on the
// simulator's per-IO hot path. The interface lives here (not in critpath)
// so the telemetry package never imports its own consumers.
type PathSink interface {
	BeginPath(op OpKind, tenant TenantID, start sim.Time)
	Segment(p Phase, d sim.Time)
	WaitSegment(p Phase, d sim.Time, culprit TenantID, bind Phase)
	Overlap(p Phase, d sim.Time)
	Reassign(from, to Phase, d sim.Time)
	Refund(p Phase, d sim.Time)
	EndPath(done sim.Time)
	DropPath()
}

// IO flags mark exceptional conditions on the active record. A flagged IO
// bypasses the exemplar reservoir's worst-K admission (always kept), so the
// forensic layer never loses the IOs the auditors and fault injectors
// complained about.
const (
	// FlagFaultRetry marks an IO that needed at least one media retry
	// (injected NAND read fault).
	FlagFaultRetry uint8 = 1 << iota
	// FlagAuditViolation marks an IO during which the zone state-machine
	// auditor flagged a violation.
	FlagAuditViolation
)

// ExemplarSink receives per-IO completion records from the AttrSink so a
// higher layer (internal/telemetry/exemplar) can capture worst-K latency
// exemplars without re-instrumenting the device models. Begin/End/Drop
// mirror BeginTenant/End/Drop; seq is the sink's monotonically increasing
// measured-IO sequence number (1-based), the stable per-run identity
// `znsbench -explain <exp>:<seq>` replays to. EndExemplar fires after the
// PathSink's EndPath, so an implementation may read the completed critical
// path from an attached recorder. The phase and blame arrays are the live
// record — implementations must copy what they keep and must not allocate
// on any call (the hooks sit on the per-IO hot path).
type ExemplarSink interface {
	BeginExemplar(seq uint64, op OpKind, tenant TenantID, start sim.Time)
	EndExemplar(done sim.Time, phases *[NumPhases]sim.Time, blame *[MaxTenants]sim.Time, flags uint8)
	DropExemplar()
}
