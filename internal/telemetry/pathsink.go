package telemetry

import "blockhead/internal/sim"

// PathSink receives a structured feed of the AttrSink's per-IO charges so a
// higher layer (internal/telemetry/critpath) can reconstruct each IO's
// critical path without re-instrumenting the device models. The AttrSink
// forwards every event of the active record's lifetime:
//
//   - BeginPath / EndPath / DropPath bracket one measured IO, mirroring
//     BeginTenant / End / Drop.
//   - Segment is an on-path charge: ticks that bound the IO's completion
//     (the charge landed while the sink was not suspended).
//   - WaitSegment is an on-path charge to a resource-wait phase, annotated
//     with the service phase of the occupant the IO waited behind (bind),
//     so a counterfactual engine knows which cost the wait tracks. bind < 0
//     means the blocker is unknown.
//   - Overlap is an off-path charge: ticks recorded while the sink was
//     suspended at depth 1 (parallel fan-out whose wall-clock the enclosing
//     layer charges as one composite phase instead). Charges at deeper
//     suspension levels are not forwarded: their time is already represented
//     by the enclosing composite charge, which itself arrives as an Overlap
//     or a Segment one level up.
//   - Reassign mirrors Reclassify (from -> to, sum-preserving).
//   - Refund mirrors AttrSink.Refund: ticks removed from the record because
//     the device acknowledged the IO early (counterfactual timing knobs).
//
// Implementations must not allocate on any call: these hooks sit on the
// simulator's per-IO hot path. The interface lives here (not in critpath)
// so the telemetry package never imports its own consumers.
type PathSink interface {
	BeginPath(op OpKind, tenant TenantID, start sim.Time)
	Segment(p Phase, d sim.Time)
	WaitSegment(p Phase, d sim.Time, bind Phase)
	Overlap(p Phase, d sim.Time)
	Reassign(from, to Phase, d sim.Time)
	Refund(p Phase, d sim.Time)
	EndPath(done sim.Time)
	DropPath()
}
