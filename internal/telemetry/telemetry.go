// Package telemetry is the cross-layer observability substrate for the
// device models: a metrics registry of hierarchically named counters,
// gauges, and log-bucketed histograms; a virtual-time time-series sampler
// that turns end-of-run aggregates into plottable curves; and a span/event
// tracer that exports Chrome trace-event JSON (chrome://tracing, Perfetto).
//
// The paper's quantitative claims — §2.2 write amplification, §2.4 tail
// latency — are all derived numbers; this package exposes where inside the
// FTL, the flash geometry, and the zone state machine they accrue.
//
// Everything is nil-safe and zero-allocation when disabled: device models
// hold handles (*Counter, *Hist, *Tracer, *Registry) that are nil on an
// un-instrumented run, and every method takes the no-op fast path on a nil
// receiver. The disabled-path benchmark in bench_test.go pins this at
// 0 allocs/op.
//
// Metric names are slash-separated hierarchies, optionally suffixed with a
// {key=value} label, e.g.:
//
//	ftl/gc/copy_pages
//	zns/zone/state_transitions{to=full}
//	flash/chan/3/util
//
// The simulator is single-threaded (one virtual-time event loop), so the
// registry does no locking; attach probes before the drive starts.
package telemetry

import (
	"sort"

	"blockhead/internal/sim"
	"blockhead/internal/stats"
)

// Counter is a monotonically increasing named metric. The nil Counter is a
// valid no-op, so device hot paths call Add/Inc unconditionally.
//
//simlint:shared commutative aggregate: increments from any shard merge by summing at barriers
type Counter struct {
	name string
	v    uint64
}

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v += n
}

// Inc increments the counter by one. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value reports the current count; 0 on a nil receiver.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Name reports the registered name; "" on a nil receiver.
func (c *Counter) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}

// Hist is a named log2-bucketed histogram of virtual-time durations,
// backed by stats.Histogram. The nil Hist is a valid no-op.
//
//simlint:shared commutative aggregate: bucket counts from any shard merge by summing at barriers
type Hist struct {
	name string
	h    stats.Histogram
}

// Observe records one duration sample. No-op on a nil receiver.
func (h *Hist) Observe(v sim.Time) {
	if h == nil {
		return
	}
	h.h.Add(v)
}

// Snapshot returns the underlying histogram; the zero histogram on a nil
// receiver.
func (h *Hist) Snapshot() stats.Histogram {
	if h == nil {
		return stats.Histogram{}
	}
	return h.h
}

// GaugeFunc computes an instantaneous value at virtual time at — the
// sampler polls it to build a time series, and the exporter polls it once
// more for the final value.
type GaugeFunc func(at sim.Time) float64

type gauge struct {
	name   string
	fn     GaugeFunc
	series []Point // samples collected by the sampler
}

// Registry holds named metrics. The nil Registry is a valid no-op: every
// method returns the zero value, so un-instrumented devices can resolve
// handles through a nil registry and get nil (no-op) handles back.
type Registry struct {
	counters map[string]*Counter
	hists    map[string]*Hist
	gauges   []*gauge
	gaugeIdx map[string]int

	sampleEvery sim.Time
	nextSample  sim.Time
	lastSample  sim.Time
	maxPoints   int
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:  make(map[string]*Counter),
		hists:     make(map[string]*Hist),
		gaugeIdx:  make(map[string]int),
		maxPoints: defaultMaxPoints,
	}
}

// Counter returns the counter registered under name, creating it on first
// use. Returns nil (a no-op handle) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{name: name}
	r.counters[name] = c
	return c
}

// Histogram returns the histogram registered under name, creating it on
// first use. Returns nil (a no-op handle) on a nil registry.
func (r *Registry) Histogram(name string) *Hist {
	if r == nil {
		return nil
	}
	if h, ok := r.hists[name]; ok {
		return h
	}
	h := &Hist{name: name}
	r.hists[name] = h
	return h
}

// Gauge registers (or replaces) a polled gauge under name. No-op on a nil
// registry. The sampler snapshots every registered gauge.
func (r *Registry) Gauge(name string, fn GaugeFunc) {
	if r == nil || fn == nil {
		return
	}
	if i, ok := r.gaugeIdx[name]; ok {
		r.gauges[i].fn = fn
		return
	}
	r.gaugeIdx[name] = len(r.gauges)
	r.gauges = append(r.gauges, &gauge{name: name, fn: fn})
}

// GaugeValue polls the gauge registered under name at virtual time at.
// Returns 0, false if the registry is nil or the gauge is unknown.
func (r *Registry) GaugeValue(name string, at sim.Time) (float64, bool) {
	if r == nil {
		return 0, false
	}
	i, ok := r.gaugeIdx[name]
	if !ok {
		return 0, false
	}
	return r.gauges[i].fn(at), true
}

// counterNames returns the registered counter names, sorted for
// deterministic export.
func (r *Registry) counterNames() []string {
	names := make([]string, 0, len(r.counters))
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// histNames returns the registered histogram names, sorted.
func (r *Registry) histNames() []string {
	names := make([]string, 0, len(r.hists))
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// gaugesSorted returns the registered gauges ordered by name.
func (r *Registry) gaugesSorted() []*gauge {
	out := append([]*gauge(nil), r.gauges...)
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
