package telemetry

import (
	"blockhead/internal/sim"
	"blockhead/internal/stats"
)

// TenantID names one isolation domain (a workload stream, a VM, a
// container) sharing the simulated device. Tenant 0 is the implicit
// "sys" tenant: prefill, warmup, and any IO the driver never tagged.
// IDs outside [0, MaxTenants) clamp to 0.
type TenantID int32

const (
	// MaxTenants bounds the tenant space so per-tenant state stays in
	// fixed arrays (no allocation on the hot path).
	MaxTenants = 8

	// SelfTenant is the sentinel culprit meaning "the active record's own
	// tenant": blame for a stall that no other tenant caused (cleaning up
	// after yourself, media retries, empty blame history).
	SelfTenant TenantID = -1
)

// blamePhases marks the stall phases that carry blame: time the victim
// lost to *someone's* competing activity. When an IO accrues ticks in one
// of these phases, the same ticks are charged to a culprit tenant, and
// End checks the conservation invariant
//
//	sum(blamed ticks) == sum(victim stall ticks)
//
// exactly, in the style of the sum(phases) == total invariant.
// PhaseWPSerial is included so the zns LUNWait→WPSerial Reclassify moves
// charge within the blamed set and conservation holds unchanged.
var blamePhases = [NumPhases]bool{
	PhaseWPSerial:  true,
	PhaseGCStall:   true,
	PhaseZoneReset: true,
	PhaseChanWait:  true,
	PhaseLUNWait:   true,
}

// BlamePhase reports whether p is a stall phase that carries blame
// (wp_serial, gc_stall, zone_reset, chan_wait, lun_wait).
func BlamePhase(p Phase) bool {
	return p >= 0 && int(p) < NumPhases && blamePhases[p]
}

// clampTenant maps out-of-range IDs (including SelfTenant) to the sys
// tenant.
func clampTenant(t TenantID) TenantID {
	if t < 0 || t >= MaxTenants {
		return 0
	}
	return t
}

// TenantOpAttr aggregates one tenant's attribution for one op kind — the
// per-tenant slice of OpAttr, without the per-phase histograms (phase
// tails stay global; per-tenant latency tails live in the window ring).
type TenantOpAttr struct {
	Count    uint64
	TotalSum sim.Time
	Total    stats.Histogram
	PhaseSum [NumPhases]sim.Time
}

// Delta returns the aggregate accumulated since prev.
func (a TenantOpAttr) Delta(prev TenantOpAttr) TenantOpAttr {
	d := TenantOpAttr{
		Count:    a.Count - prev.Count,
		TotalSum: a.TotalSum - prev.TotalSum,
		Total:    a.Total.Delta(prev.Total),
	}
	for p := 0; p < NumPhases; p++ {
		d.PhaseSum[p] = a.PhaseSum[p] - prev.PhaseSum[p]
	}
	return d
}

// StallSum reports the tenant-op's total blamed-stall time (the sum over
// blame phases) — the row total the blame matrix must reconcile with.
func (a TenantOpAttr) StallSum() sim.Time {
	var s sim.Time
	for p := 0; p < NumPhases; p++ {
		if blamePhases[p] {
			s += a.PhaseSum[p]
		}
	}
	return s
}

// TenantAttr aggregates one tenant's attribution across op kinds.
type TenantAttr struct {
	Ops [NumOps]TenantOpAttr
}

// Delta returns the aggregates accumulated since prev.
func (a TenantAttr) Delta(prev TenantAttr) TenantAttr {
	var d TenantAttr
	for k := 0; k < NumOps; k++ {
		d.Ops[k] = a.Ops[k].Delta(prev.Ops[k])
	}
	return d
}

// BeginTenant opens the attribution record for one measured IO issued at
// start by tenant t. Begin is BeginTenant with the sys tenant.
func (s *AttrSink) BeginTenant(op OpKind, t TenantID, start sim.Time) {
	if s == nil {
		return
	}
	if s.active {
		s.violations++
		if s.OnViolation != nil {
			s.OnViolation(start)
		}
	}
	s.active = true
	s.suspended = 0
	s.op = op
	s.start = start
	s.cur = [NumPhases]sim.Time{}
	s.tenant = clampTenant(t)
	s.curBlame = [MaxTenants]sim.Time{}
	s.seq++
	s.flags = 0
	// Exem learns the record identity before Path opens its record, so a
	// narrator armed on one sequence number sees its own BeginPath.
	if s.Exem != nil {
		s.Exem.BeginExemplar(s.seq, op, s.tenant, start)
	}
	if s.Path != nil {
		s.Path.BeginPath(op, s.tenant, start)
	}
}

// ChargeBlamed is Charge with an explicit culprit: d of the active IO's
// latency goes to phase p, and — when p is a blame phase — the same d is
// blamed on culprit. SelfTenant (or any out-of-range ID) blames the
// record's own tenant. Same no-op conditions as Charge.
func (s *AttrSink) ChargeBlamed(p Phase, d sim.Time, culprit TenantID) {
	if s == nil || !s.active || d <= 0 {
		return
	}
	if s.suspended > 0 {
		s.overlap(p, d)
		return
	}
	s.cur[p] += d
	if blamePhases[p] {
		if culprit < 0 || culprit >= MaxTenants {
			culprit = s.tenant
		}
		s.curBlame[culprit] += d
	}
	if s.Path != nil {
		s.Path.Segment(p, d)
	}
}

// ChargeWaitBlamed is ChargeBlamed for resource-wait phases (chan_wait,
// lun_wait), additionally telling the attached path sink which service
// phase the blocking occupant was running (bind; < 0 when unknown, e.g. a
// wait behind pre-instrumentation history). Attribution and blame
// aggregates are identical to ChargeBlamed — only the critical-path feed
// sees the culprit and bind, which a what-if engine needs to scale waits
// with the cost they queue behind and a forensic narrator needs to say who
// held the resource.
func (s *AttrSink) ChargeWaitBlamed(p Phase, d sim.Time, culprit TenantID, bind Phase) {
	if s == nil || !s.active || d <= 0 {
		return
	}
	if s.suspended > 0 {
		s.overlap(p, d)
		return
	}
	s.cur[p] += d
	resolved := culprit
	if blamePhases[p] {
		if resolved < 0 || resolved >= MaxTenants {
			resolved = s.tenant
		}
		s.curBlame[resolved] += d
	}
	if s.Path != nil {
		s.Path.WaitSegment(p, d, culprit, bind)
	}
}

// Tenant reports the active record's tenant (0 if nil or no record open).
func (s *AttrSink) Tenant() TenantID {
	if s == nil || !s.active {
		return 0
	}
	return s.tenant
}

// workerDepth bounds the culprit stack; pushes beyond it saturate (the
// counter still nests, the deeper entries alias the top).
const workerDepth = 8

// PushWorker marks the tenant on whose behalf the device layers are about
// to work — reclamation relocating a polluter's pages, a reset recycling
// a tenant's zone — so resource-ownership tracking in internal/flash
// attributes the occupancy to that culprit even while the sink is
// suspended. SelfTenant (or any out-of-range ID) resolves to the current
// worker at push time. Pushes nest; every PushWorker pairs with a
// PopWorker.
func (s *AttrSink) PushWorker(t TenantID) {
	if s == nil {
		return
	}
	if t < 0 || t >= MaxTenants {
		t = s.workerTop()
	}
	if s.nworkers < workerDepth {
		s.workers[s.nworkers] = t
	}
	s.nworkers++
}

// PopWorker undoes one PushWorker.
func (s *AttrSink) PopWorker() {
	if s == nil || s.nworkers == 0 {
		return
	}
	s.nworkers--
}

// Worker reports the tenant currently occupying the device: the top of
// the pushed-culprit stack if any, else the active record's tenant, else
// the sys tenant. Device layers stamp resource ownership with it.
func (s *AttrSink) Worker() TenantID {
	if s == nil {
		return 0
	}
	return s.workerTop()
}

func (s *AttrSink) workerTop() TenantID {
	n := s.nworkers
	if n > workerDepth {
		n = workerDepth
	}
	if n > 0 {
		return s.workers[n-1]
	}
	if s.active {
		return s.tenant
	}
	return 0
}

// SetTenantName labels a tenant for reports and JSON exports. No-op on a
// nil sink or out-of-range ID.
func (s *AttrSink) SetTenantName(t TenantID, name string) {
	if s == nil {
		return
	}
	if t < 0 || t >= MaxTenants {
		return
	}
	s.tenantNames[t] = name
}

// TenantName reports a tenant's label ("sys" for the unnamed tenant 0,
// "t<i>" otherwise).
func (s *AttrSink) TenantName(t TenantID) string {
	if s == nil {
		return defaultTenantName(clampTenant(t))
	}
	t = clampTenant(t)
	if s.tenantNames[t] != "" {
		return s.tenantNames[t]
	}
	return defaultTenantName(t)
}

func defaultTenantName(t TenantID) string {
	if t == 0 {
		return "sys"
	}
	return "t" + string(rune('0'+t))
}

// TenantSnapshot is a copyable snapshot of the per-tenant aggregates and
// the victim×culprit blame matrix. Blame[v][c] is the virtual time tenant
// v lost in blame phases that was caused by tenant c; row v sums exactly
// to tenant v's blamed-stall total (the conservation invariant).
type TenantSnapshot struct {
	Tenants [MaxTenants]TenantAttr
	Blame   [MaxTenants][MaxTenants]sim.Time
	Names   [MaxTenants]string
}

// Delta returns the aggregates accumulated since prev.
func (s TenantSnapshot) Delta(prev TenantSnapshot) TenantSnapshot {
	d := TenantSnapshot{Names: s.Names}
	for t := 0; t < MaxTenants; t++ {
		d.Tenants[t] = s.Tenants[t].Delta(prev.Tenants[t])
		for c := 0; c < MaxTenants; c++ {
			d.Blame[t][c] = s.Blame[t][c] - prev.Blame[t][c]
		}
	}
	return d
}

// Active reports whether tenant t completed any IO or appears in the
// blame matrix (as victim or culprit).
func (s TenantSnapshot) Active(t TenantID) bool {
	if t < 0 || t >= MaxTenants {
		return false
	}
	for k := 0; k < NumOps; k++ {
		if s.Tenants[t].Ops[k].Count > 0 {
			return true
		}
	}
	for o := 0; o < MaxTenants; o++ {
		if s.Blame[t][o] != 0 || s.Blame[o][t] != 0 {
			return true
		}
	}
	return false
}

// Name reports tenant t's label, falling back to the default.
func (s TenantSnapshot) Name(t TenantID) string {
	t = clampTenant(t)
	if s.Names[t] != "" {
		return s.Names[t]
	}
	return defaultTenantName(t)
}

// SufferedNs reports the total blame-phase stall time tenant t accrued as
// a victim (row total of the blame matrix).
func (s TenantSnapshot) SufferedNs(t TenantID) sim.Time {
	t = clampTenant(t)
	var sum sim.Time
	for c := 0; c < MaxTenants; c++ {
		sum += s.Blame[t][c]
	}
	return sum
}

// BlamedNs reports the total stall time charged to tenant t as a culprit
// (column total of the blame matrix).
func (s TenantSnapshot) BlamedNs(t TenantID) sim.Time {
	t = clampTenant(t)
	var sum sim.Time
	for v := 0; v < MaxTenants; v++ {
		sum += s.Blame[v][t]
	}
	return sum
}

// StallNs reports tenant t's blame-phase stall total summed over op kinds
// — the independently-accumulated figure the blame row must equal.
func (s TenantSnapshot) StallNs(t TenantID) sim.Time {
	t = clampTenant(t)
	var sum sim.Time
	for k := 0; k < NumOps; k++ {
		sum += s.Tenants[t].Ops[k].StallSum()
	}
	return sum
}

// TenantSnapshot returns a copy of the per-tenant aggregates. Safe on a
// nil sink (empty snapshot).
func (s *AttrSink) TenantSnapshot() TenantSnapshot {
	if s == nil {
		return TenantSnapshot{}
	}
	return TenantSnapshot{Tenants: s.tenants, Blame: s.blame, Names: s.tenantNames}
}

// SLOResults evaluates the attached SLO engine (nil if none is attached).
func (s *AttrSink) SLOResults() []SLOResult {
	if s == nil {
		return nil
	}
	return s.SLO.Evaluate()
}

// TenantsDumpSchema identifies the /tenants.json wire format.
const TenantsDumpSchema = "blockhead/tenants/v1"

// TenantsDump is the JSON shape of the per-tenant export (/tenants.json).
type TenantsDump struct {
	Schema  string       `json:"schema"`
	Tenants []TenantDump `json:"tenants"`
	Blame   []BlameRow   `json:"blame"`
	SLO     []SLODump    `json:"slo,omitempty"`
}

// TenantDump is one tenant's aggregate: per-op latency summary, per-phase
// stall totals, and the victim/culprit roll-ups.
type TenantDump struct {
	ID   int                     `json:"id"`
	Name string                  `json:"name"`
	Ops  map[string]TenantOpDump `json:"ops"`
	// StallUs breaks the tenant's blame-phase stall time down by phase.
	StallUs map[string]float64 `json:"stall_us"`
	// SufferedUs is the blame-matrix row total (what this tenant lost);
	// BlamedUs is the column total (what it cost everyone).
	SufferedUs float64 `json:"suffered_us"`
	BlamedUs   float64 `json:"blamed_us"`
}

// TenantOpDump is one tenant-op latency summary.
type TenantOpDump struct {
	Count  uint64  `json:"count"`
	MeanUs float64 `json:"mean_us"`
	P50Us  float64 `json:"p50_us"`
	P99Us  float64 `json:"p99_us"`
	MaxUs  float64 `json:"max_us"`
}

// BlameRow is one victim's row of the blame matrix. CulpritUs is indexed
// by culprit TenantID (full MaxTenants width, zeros included) so row and
// column sums reconcile without knowing which tenants were active.
type BlameRow struct {
	Victim    int       `json:"victim"`
	CulpritUs []float64 `json:"culprit_us"`
}

// Dump converts the snapshot to its JSON shape, including only tenants
// with activity. slo, if non-nil, carries the SLO engine's verdicts.
func (s TenantSnapshot) Dump(slo []SLOResult) TenantsDump {
	d := TenantsDump{Schema: TenantsDumpSchema, Tenants: []TenantDump{}, Blame: []BlameRow{}}
	for t := TenantID(0); t < MaxTenants; t++ {
		if !s.Active(t) {
			continue
		}
		td := TenantDump{
			ID:         int(t),
			Name:       s.Name(t),
			Ops:        map[string]TenantOpDump{},
			StallUs:    map[string]float64{},
			SufferedUs: s.SufferedNs(t).Micros(),
			BlamedUs:   s.BlamedNs(t).Micros(),
		}
		for k := 0; k < NumOps; k++ {
			a := s.Tenants[t].Ops[k]
			if a.Count == 0 {
				continue
			}
			td.Ops[opNames[k]] = TenantOpDump{
				Count:  a.Count,
				MeanUs: (a.TotalSum / sim.Time(a.Count)).Micros(),
				P50Us:  a.Total.Percentile(50).Micros(),
				P99Us:  a.Total.Percentile(99).Micros(),
				MaxUs:  a.Total.Max().Micros(),
			}
		}
		for p := 0; p < NumPhases; p++ {
			if !blamePhases[p] {
				continue
			}
			var sum sim.Time
			for k := 0; k < NumOps; k++ {
				sum += s.Tenants[t].Ops[k].PhaseSum[p]
			}
			if sum != 0 {
				td.StallUs[Phase(p).String()] = sum.Micros()
			}
		}
		row := BlameRow{Victim: int(t), CulpritUs: make([]float64, MaxTenants)}
		for c := 0; c < MaxTenants; c++ {
			row.CulpritUs[c] = s.Blame[t][c].Micros()
		}
		d.Tenants = append(d.Tenants, td)
		d.Blame = append(d.Blame, row)
	}
	for _, r := range slo {
		d.SLO = append(d.SLO, r.Dump())
	}
	return d
}

// TenantsDump converts the sink's current per-tenant aggregates and SLO
// verdicts to their JSON shape. Safe on a nil sink (empty dump).
func (s *AttrSink) TenantsDump() TenantsDump {
	if s == nil {
		return TenantSnapshot{}.Dump(nil)
	}
	return s.TenantSnapshot().Dump(s.SLOResults())
}
