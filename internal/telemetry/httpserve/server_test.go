package httpserve

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"blockhead/internal/sim"
	"blockhead/internal/telemetry"
	"blockhead/internal/telemetry/critpath"
	"blockhead/internal/telemetry/exemplar"
)

// testProbe builds a probe with deterministic contents: two counters, one
// gauge, one histogram, an attribution sink with one read and one write, two
// heatmap sources, and a flight recorder holding a short history ending in
// one violation (auto-dump discarded).
func testProbe() *telemetry.Probe {
	p := telemetry.NewProbe(telemetry.Options{SampleEvery: sim.Millisecond})
	p.Metrics.Counter("ftl/host_writes").Add(7)
	p.Metrics.Counter("flash/program_pages").Add(12)
	p.Metrics.Gauge("flash/chan/0/util", func(at sim.Time) float64 { return 0.25 })
	p.Metrics.Histogram("ftl/write_lat").Observe(80 * sim.Microsecond)
	p.Metrics.Tick(2 * sim.Millisecond)

	a := p.Attr
	critpath.Attach(a, critpath.Options{}) // /critpath.json source
	// /exemplars.json source: a small reservoir with a fixed device-state
	// snapshot so the golden pins the Device string shape too.
	res := exemplar.Attach(a, exemplar.Options{K: 4, FlagCap: 4})
	res.SetSnap(func(done sim.Time, ds *exemplar.DevSnap) {
		ds.Zoned = true
		ds.ZoneCount[1] = 1 // one open zone
		ds.HotZone, ds.HotWP = 0, 5
		ds.BusyLUNs, ds.TotalLUNs = 1, 2
		ds.BusyChans, ds.TotalChans = 0, 1
		ds.GCRuns, ds.Free = 3, 7
	})
	a.SetTenantName(1, "web")
	a.SetTenantName(2, "churn")
	ws := telemetry.NewWindowSet(telemetry.WindowCfg{Width: sim.Millisecond, Keep: 4})
	eng := telemetry.NewSLOEngine(ws)
	eng.Add(telemetry.SLO{Tenant: 1, Op: telemetry.OpRead,
		Pct: 99, LatencyMax: 100 * sim.Microsecond})
	a.Windows, a.SLO = ws, eng
	a.Begin(telemetry.OpWrite, 0)
	a.Charge(telemetry.PhaseGCStall, 3*sim.Millisecond)
	a.Charge(telemetry.PhaseNANDProgram, sim.Millisecond)
	a.End(4 * sim.Millisecond)
	a.Begin(telemetry.OpRead, 0)
	a.Charge(telemetry.PhaseNANDRead, 60*sim.Microsecond)
	a.End(60 * sim.Microsecond)
	// One tenant-tagged read whose LUN wait is blamed on tenant 2: the
	// /tenants.json golden pins the blame matrix and SLO verdict shapes.
	a.BeginTenant(telemetry.OpRead, 1, 0)
	a.ChargeBlamed(telemetry.PhaseLUNWait, 140*sim.Microsecond, 2)
	a.Charge(telemetry.PhaseNANDRead, 60*sim.Microsecond)
	a.FlagIO(telemetry.FlagAuditViolation) // lands in the flagged ring
	a.End(200 * sim.Microsecond)

	p.HeatSrc.Register("flash", func(sim.Time) telemetry.DeviceHeat {
		return telemetry.DeviceHeat{
			Wear: &telemetry.WearHeat{Blocks: 4, MaxErase: 3, MeanErase: 1.5,
				Spread: 2, Skew: 2,
				Hist: []telemetry.WearBucket{
					{Lo: 0, Hi: 1, Blocks: 2}, {Lo: 2, Hi: 3, Blocks: 2}},
				Cells: []uint32{1, 3, 0, 2}, CellBlocks: 1},
			Channels: []telemetry.UnitOcc{{ID: 0, BusyFrac: 0.5}},
			LUNs:     []telemetry.UnitOcc{{ID: 0, BusyFrac: 0.25}, {ID: 1, BusyFrac: 0.75}},
		}
	})
	p.HeatSrc.Register("zns", func(sim.Time) telemetry.DeviceHeat {
		return telemetry.DeviceHeat{Zones: []telemetry.ZoneHeat{
			{Zone: 0, State: "open", WP: 5, Cap: 16, Valid: -1},
			{Zone: 1, State: "full", WP: 16, Cap: 16, Valid: 0.5},
		}}
	})
	p.FlightRec.DumpTo = io.Discard
	p.FlightRec.Record(sim.Millisecond, telemetry.FlightTransition, 0, "empty->open", 1)
	p.FlightRec.Record(2*sim.Millisecond, telemetry.FlightReset, 1, "", 4)
	p.FlightRec.Violation(3*sim.Millisecond, telemetry.FlightAuditViolation, 1, "empty->closed", 0)
	return p
}

func startServer(t *testing.T) *Server {
	t.Helper()
	s, err := New(testProbe(), Options{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func get(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func TestEndpoints(t *testing.T) {
	s := startServer(t)
	s.Publish(4 * sim.Millisecond)

	var md telemetry.MetricsDump
	if err := json.Unmarshal(get(t, s.URL()+"/metrics.json"), &md); err != nil {
		t.Fatalf("metrics.json: %v", err)
	}
	if md.Counters["ftl/host_writes"] != 7 {
		t.Fatalf("metrics.json counters = %v", md.Counters)
	}
	if md.Gauges["flash/chan/0/util"] != 0.25 {
		t.Fatalf("metrics.json gauges = %v", md.Gauges)
	}
	if len(md.Series) == 0 || len(md.Series[0].Samples) == 0 {
		t.Fatalf("metrics.json carries no sampled series: %+v", md.Series)
	}

	var ad telemetry.AttrDump
	if err := json.Unmarshal(get(t, s.URL()+"/attribution.json"), &ad); err != nil {
		t.Fatalf("attribution.json: %v", err)
	}
	if ad.Ops["write"].Count != 1 || ad.Ops["read"].Count != 2 {
		t.Fatalf("attribution.json ops = %+v", ad.Ops)
	}
	if len(ad.Ops["write"].Phases) != 2 {
		t.Fatalf("write phases = %+v", ad.Ops["write"].Phases)
	}

	var hd telemetry.HeatmapDump
	if err := json.Unmarshal(get(t, s.URL()+"/heatmap.json"), &hd); err != nil {
		t.Fatalf("heatmap.json: %v", err)
	}
	if len(hd.Devices) != 2 || hd.Devices[0].Name != "flash" || hd.Devices[1].Name != "zns" {
		t.Fatalf("heatmap.json devices = %+v", hd.Devices)
	}
	if hd.Devices[0].Wear == nil || hd.Devices[0].Wear.MaxErase != 3 {
		t.Fatalf("heatmap.json wear = %+v", hd.Devices[0].Wear)
	}
	if len(hd.Devices[1].Zones) != 2 || hd.Devices[1].Zones[1].State != "full" {
		t.Fatalf("heatmap.json zones = %+v", hd.Devices[1].Zones)
	}

	var fd telemetry.FlightDump
	if err := json.Unmarshal(get(t, s.URL()+"/flight.json"), &fd); err != nil {
		t.Fatalf("flight.json: %v", err)
	}
	if fd.Total != 3 || fd.Violations != 1 || len(fd.Events) != 3 {
		t.Fatalf("flight.json = %+v", fd)
	}
	if fd.Events[2].Kind != "audit_violation" || fd.Events[2].Detail != "empty->closed" {
		t.Fatalf("flight.json last event = %+v", fd.Events[2])
	}

	var td telemetry.TenantsDump
	if err := json.Unmarshal(get(t, s.URL()+"/tenants.json"), &td); err != nil {
		t.Fatalf("tenants.json: %v", err)
	}
	if td.Schema != telemetry.TenantsDumpSchema {
		t.Fatalf("tenants.json schema = %q", td.Schema)
	}
	names := map[string]bool{}
	for _, tn := range td.Tenants {
		names[tn.Name] = true
	}
	if !names["sys"] || !names["web"] || !names["churn"] {
		t.Fatalf("tenants.json tenants = %+v", td.Tenants)
	}
	if len(td.Blame) != len(td.Tenants) {
		t.Fatalf("tenants.json blame rows = %d, tenants = %d", len(td.Blame), len(td.Tenants))
	}
	if len(td.SLO) != 1 || td.SLO[0].OK {
		// 140us of blamed LUN wait pushes the read past the 100us bound.
		t.Fatalf("tenants.json slo = %+v", td.SLO)
	}

	var cd critpath.Dump
	if err := json.Unmarshal(get(t, s.URL()+"/critpath.json"), &cd); err != nil {
		t.Fatalf("critpath.json: %v", err)
	}
	if cd.Schema != critpath.DumpSchema {
		t.Fatalf("critpath.json schema = %q", cd.Schema)
	}
	if cd.IOs != 3 || cd.Violations != 0 || cd.Sampled != 3 {
		t.Fatalf("critpath.json = ios %d violations %d sampled %d", cd.IOs, cd.Violations, cd.Sampled)
	}
	if len(cd.WhatIf) == 0 {
		t.Fatalf("critpath.json carries no what-if predictions")
	}

	var ed exemplar.Dump
	if err := json.Unmarshal(get(t, s.URL()+"/exemplars.json"), &ed); err != nil {
		t.Fatalf("exemplars.json: %v", err)
	}
	if ed.Schema != exemplar.DumpSchema {
		t.Fatalf("exemplars.json schema = %q", ed.Schema)
	}
	if ed.IOs != 3 || len(ed.Worst) != 3 {
		t.Fatalf("exemplars.json = ios %d worst %d", ed.IOs, len(ed.Worst))
	}
	if len(ed.Flagged) != 1 || len(ed.Flagged[0].Flags) != 1 || ed.Flagged[0].Flags[0] != "audit_violation" {
		t.Fatalf("exemplars.json flagged = %+v", ed.Flagged)
	}
	if ed.Worst[0].Op != "write" || ed.Worst[0].Device == "" {
		t.Fatalf("exemplars.json worst[0] = %+v", ed.Worst[0])
	}

	if !strings.Contains(string(get(t, s.URL()+"/")), "blockhead — live telemetry") {
		t.Fatal("dashboard HTML not served at /")
	}
}

// TestConcurrentPublishAndServe races one publisher (the "simulation thread")
// against handler reads of every endpoint and SSE clients that subscribe,
// read, and hang up mid-stream. Run under -race via `make check`.
func TestConcurrentPublishAndServe(t *testing.T) {
	s := startServer(t)
	pubDone := make(chan struct{})
	go func() {
		defer close(pubDone)
		for i := 1; i <= 60; i++ {
			s.Publish(sim.Time(i) * sim.Millisecond)
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				for _, ep := range []string{
					"/metrics.json", "/attribution.json", "/heatmap.json", "/flight.json", "/tenants.json", "/critpath.json", "/exemplars.json", "/",
				} {
					resp, err := http.Get(s.URL() + ep)
					if err != nil {
						t.Error(err)
						return
					}
					io.Copy(io.Discard, resp.Body) //nolint:errcheck
					resp.Body.Close()
				}
			}
		}()
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				ctx, cancel := context.WithCancel(context.Background())
				req, err := http.NewRequestWithContext(ctx, "GET", s.URL()+"/events", nil)
				if err != nil {
					cancel()
					t.Error(err)
					return
				}
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					cancel()
					t.Error(err)
					return
				}
				// Read the replayed sample, then hang up mid-stream: the
				// unsubscribe path races the broadcast in Publish.
				buf := make([]byte, 512)
				resp.Body.Read(buf) //nolint:errcheck
				cancel()
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	<-pubDone

	// The server must still serve a coherent final snapshot.
	var fd telemetry.FlightDump
	if err := json.Unmarshal(get(t, s.URL()+"/flight.json"), &fd); err != nil {
		t.Fatal(err)
	}
	if fd.Total == 0 {
		t.Fatal("flight snapshot empty after concurrent churn")
	}
}

func TestSSEStream(t *testing.T) {
	s := startServer(t)
	req, err := http.NewRequest("GET", s.URL()+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content-type = %q", ct)
	}

	// The publish raced with our subscribe; either the replayed snapshot or
	// the fresh event must arrive.
	go s.Publish(10 * sim.Millisecond)

	type sample struct {
		Seq    uint64             `json:"seq"`
		AtMs   float64            `json:"at_ms"`
		Gauges map[string]float64 `json:"gauges"`
		Ops    map[string]struct {
			Count uint64 `json:"count"`
		} `json:"ops"`
	}
	sc := bufio.NewScanner(resp.Body)
	var sawEvent bool
	deadline := time.After(4 * time.Second)
	got := make(chan sample, 1)
	go func() {
		for sc.Scan() {
			line := sc.Text()
			if line == "event: sample" {
				sawEvent = true
				continue
			}
			if data, ok := strings.CutPrefix(line, "data: "); ok && sawEvent {
				var ev sample
				if json.Unmarshal([]byte(data), &ev) == nil {
					got <- ev
					return
				}
			}
		}
	}()
	select {
	case ev := <-got:
		if ev.Seq == 0 {
			t.Fatalf("sample seq = 0: %+v", ev)
		}
		if ev.Ops["write"].Count != 1 {
			t.Fatalf("sample ops = %+v", ev.Ops)
		}
	case <-deadline:
		t.Fatal("no SSE sample within deadline")
	}
}

func TestMaybePublishThrottles(t *testing.T) {
	s, err := New(testProbe(), Options{
		Addr: "127.0.0.1:0", PublishEvery: time.Hour, CheckEveryTicks: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.mu.Lock()
	seq0 := s.seq
	s.mu.Unlock()
	for i := 0; i < 10_000; i++ {
		s.MaybePublish(sim.Time(i))
	}
	s.mu.Lock()
	seq1 := s.seq
	s.mu.Unlock()
	if seq1 != seq0 {
		t.Fatalf("publisher fired %d times inside the wall-clock interval", seq1-seq0)
	}
}
