package httpserve

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"blockhead/internal/sim"
	"blockhead/internal/telemetry"
)

// testProbe builds a probe with deterministic contents: two counters, one
// gauge, one histogram, and an attribution sink with one read and one write.
func testProbe() *telemetry.Probe {
	p := telemetry.NewProbe(telemetry.Options{SampleEvery: sim.Millisecond})
	p.Metrics.Counter("ftl/host_writes").Add(7)
	p.Metrics.Counter("flash/program_pages").Add(12)
	p.Metrics.Gauge("flash/chan/0/util", func(at sim.Time) float64 { return 0.25 })
	p.Metrics.Histogram("ftl/write_lat").Observe(80 * sim.Microsecond)
	p.Metrics.Tick(2 * sim.Millisecond)

	a := p.Attr
	a.Begin(telemetry.OpWrite, 0)
	a.Charge(telemetry.PhaseGCStall, 3*sim.Millisecond)
	a.Charge(telemetry.PhaseNANDProgram, sim.Millisecond)
	a.End(4 * sim.Millisecond)
	a.Begin(telemetry.OpRead, 0)
	a.Charge(telemetry.PhaseNANDRead, 60*sim.Microsecond)
	a.End(60 * sim.Microsecond)
	return p
}

func startServer(t *testing.T) *Server {
	t.Helper()
	s, err := New(testProbe(), Options{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func get(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func TestEndpoints(t *testing.T) {
	s := startServer(t)
	s.Publish(4 * sim.Millisecond)

	var md telemetry.MetricsDump
	if err := json.Unmarshal(get(t, s.URL()+"/metrics.json"), &md); err != nil {
		t.Fatalf("metrics.json: %v", err)
	}
	if md.Counters["ftl/host_writes"] != 7 {
		t.Fatalf("metrics.json counters = %v", md.Counters)
	}
	if md.Gauges["flash/chan/0/util"] != 0.25 {
		t.Fatalf("metrics.json gauges = %v", md.Gauges)
	}
	if len(md.Series) == 0 || len(md.Series[0].Samples) == 0 {
		t.Fatalf("metrics.json carries no sampled series: %+v", md.Series)
	}

	var ad telemetry.AttrDump
	if err := json.Unmarshal(get(t, s.URL()+"/attribution.json"), &ad); err != nil {
		t.Fatalf("attribution.json: %v", err)
	}
	if ad.Ops["write"].Count != 1 || ad.Ops["read"].Count != 1 {
		t.Fatalf("attribution.json ops = %+v", ad.Ops)
	}
	if len(ad.Ops["write"].Phases) != 2 {
		t.Fatalf("write phases = %+v", ad.Ops["write"].Phases)
	}

	if !strings.Contains(string(get(t, s.URL()+"/")), "blockhead — live telemetry") {
		t.Fatal("dashboard HTML not served at /")
	}
}

func TestSSEStream(t *testing.T) {
	s := startServer(t)
	req, err := http.NewRequest("GET", s.URL()+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content-type = %q", ct)
	}

	// The publish raced with our subscribe; either the replayed snapshot or
	// the fresh event must arrive.
	go s.Publish(10 * sim.Millisecond)

	type sample struct {
		Seq    uint64             `json:"seq"`
		AtMs   float64            `json:"at_ms"`
		Gauges map[string]float64 `json:"gauges"`
		Ops    map[string]struct {
			Count uint64 `json:"count"`
		} `json:"ops"`
	}
	sc := bufio.NewScanner(resp.Body)
	var sawEvent bool
	deadline := time.After(4 * time.Second)
	got := make(chan sample, 1)
	go func() {
		for sc.Scan() {
			line := sc.Text()
			if line == "event: sample" {
				sawEvent = true
				continue
			}
			if data, ok := strings.CutPrefix(line, "data: "); ok && sawEvent {
				var ev sample
				if json.Unmarshal([]byte(data), &ev) == nil {
					got <- ev
					return
				}
			}
		}
	}()
	select {
	case ev := <-got:
		if ev.Seq == 0 {
			t.Fatalf("sample seq = 0: %+v", ev)
		}
		if ev.Ops["write"].Count != 1 {
			t.Fatalf("sample ops = %+v", ev.Ops)
		}
	case <-deadline:
		t.Fatal("no SSE sample within deadline")
	}
}

func TestMaybePublishThrottles(t *testing.T) {
	s, err := New(testProbe(), Options{
		Addr: "127.0.0.1:0", PublishEvery: time.Hour, CheckEveryTicks: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.mu.Lock()
	seq0 := s.seq
	s.mu.Unlock()
	for i := 0; i < 10_000; i++ {
		s.MaybePublish(sim.Time(i))
	}
	s.mu.Lock()
	seq1 := s.seq
	s.mu.Unlock()
	if seq1 != seq0 {
		t.Fatalf("publisher fired %d times inside the wall-clock interval", seq1-seq0)
	}
}
