package httpserve

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"blockhead/internal/sim"
	"blockhead/internal/telemetry/critpath"
	"blockhead/internal/telemetry/exemplar"
)

var update = flag.Bool("update", false, "rewrite golden files")

// The JSON shapes of /metrics.json and /attribution.json are consumed by
// the dashboard and by anything scraping the endpoints, so schema drift
// must be a deliberate, reviewed change: these tests pin the exact bytes
// produced for a fixed probe. Regenerate with `go test ./... -update`.
func TestGoldenSchemas(t *testing.T) {
	p := testProbe()
	cs := critpath.FromSink(p.Attribution()).Snapshot()
	es := exemplar.FromSink(p.Attribution()).Snapshot()
	for _, tc := range []struct {
		name   string
		golden string
		dump   interface{}
	}{
		{"metrics", "metrics.golden.json", p.Registry().Dump(4 * sim.Millisecond)},
		{"attribution", "attribution.golden.json", p.Attribution().Dump()},
		{"heatmap", "heatmap.golden.json", p.HeatDump(4 * sim.Millisecond)},
		{"flight", "flight.golden.json", p.Flight().Dump()},
		{"tenants", "tenants.golden.json", p.Attribution().TenantsDump()},
		{"critpath", "critpath.golden.json", cs.Dump(critpath.PredictOpts{})},
		{"exemplars", "exemplars.golden.json", es.Dump(p.Attribution().TenantName)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got, err := json.MarshalIndent(tc.dump, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			path := filepath.Join("testdata", tc.golden)
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run `go test ./internal/telemetry/httpserve -update` to create)", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s schema drifted from golden file %s.\ngot:\n%s\nwant:\n%s",
					tc.name, path, got, want)
			}
		})
	}
}
