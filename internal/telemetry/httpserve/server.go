// Package httpserve exposes a running simulation's telemetry over HTTP:
// JSON snapshots of the metrics registry and the latency-attribution sink,
// a server-sent-events stream of live samples, and an embedded single-file
// dashboard. Everything is stdlib.
//
// The simulator is single-threaded, so the server never touches the
// registry or sink itself: the simulation thread pushes marshaled
// snapshots through Publisher.MaybePublish (wired via Probe.Pub), and the
// HTTP handlers serve those bytes under a mutex. Wall-clock throttling
// keeps the publish cost invisible to the simulation.
package httpserve

import (
	_ "embed"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"blockhead/internal/sim"
	"blockhead/internal/telemetry"
	"blockhead/internal/telemetry/critpath"
	"blockhead/internal/telemetry/exemplar"
)

//go:embed dashboard.html
var dashboardHTML []byte

// Options parameterizes New.
type Options struct {
	// Addr is the listen address, e.g. ":8080" or "127.0.0.1:0".
	Addr string
	// PublishEvery is the minimum wall-clock interval between snapshot
	// publishes; 0 selects 500ms.
	PublishEvery time.Duration
	// CheckEveryTicks is how many MaybePublish calls elapse between
	// wall-clock checks (rounded up to a power of two); 0 selects 1024.
	// The pre-check keeps the per-event cost of an armed publisher to a
	// counter increment and a mask.
	CheckEveryTicks int
}

// Server is a live telemetry endpoint. It implements telemetry.Publisher;
// attach it with probe.Pub = srv.
type Server struct {
	probe *telemetry.Probe
	ln    net.Listener
	srv   *http.Server

	interval time.Duration
	tickMask uint64
	ticks    uint64   // sim-thread only
	lastAt   sim.Time // latest virtual time seen; sim-thread only

	mu      sync.Mutex
	lastPub time.Time
	seq     uint64
	metrics []byte // marshaled telemetry.MetricsDump
	attr    []byte // marshaled telemetry.AttrDump
	heat    []byte // marshaled telemetry.HeatmapDump
	flight  []byte // marshaled telemetry.FlightDump
	tenants []byte // marshaled telemetry.TenantsDump
	crit    []byte // marshaled critpath.Dump
	exem    []byte // marshaled exemplar.Dump
	sample  []byte // marshaled sampleEvent (latest SSE payload)

	subMu sync.Mutex
	subs  map[chan []byte]struct{}
}

// sampleEvent is one SSE "sample" payload: the instantaneous gauge values
// plus a per-op attribution summary, enough for the dashboard to extend its
// live charts without refetching the full snapshots.
type sampleEvent struct {
	Seq      uint64             `json:"seq"`
	AtMillis float64            `json:"at_ms"` // virtual time
	Gauges   map[string]float64 `json:"gauges"`
	Ops      map[string]opBrief `json:"ops"`
}

// opBrief is the rolling per-op summary carried in each sample.
type opBrief struct {
	Count  uint64  `json:"count"`
	MeanUs float64 `json:"mean_us"`
	P99Us  float64 `json:"p99_us"`
}

// New starts a server listening on opts.Addr and publishes an initial
// snapshot so the endpoints are never empty. Call Close to stop it.
func New(probe *telemetry.Probe, opts Options) (*Server, error) {
	if opts.PublishEvery <= 0 {
		opts.PublishEvery = 500 * time.Millisecond
	}
	ticks := opts.CheckEveryTicks
	if ticks <= 0 {
		ticks = 1024
	}
	mask := uint64(1)
	for int(mask) < ticks {
		mask <<= 1
	}
	ln, err := net.Listen("tcp", opts.Addr)
	if err != nil {
		return nil, fmt.Errorf("httpserve: %w", err)
	}
	s := &Server{
		probe:    probe,
		ln:       ln,
		interval: opts.PublishEvery,
		tickMask: mask - 1,
		subs:     make(map[chan []byte]struct{}),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/metrics.json", s.handleMetrics)
	mux.HandleFunc("/attribution.json", s.handleAttribution)
	mux.HandleFunc("/heatmap.json", s.handleHeatmap)
	mux.HandleFunc("/flight.json", s.handleFlight)
	mux.HandleFunc("/tenants.json", s.handleTenants)
	mux.HandleFunc("/critpath.json", s.handleCritPath)
	mux.HandleFunc("/exemplars.json", s.handleExemplars)
	mux.HandleFunc("/events", s.handleEvents)
	s.srv = &http.Server{Handler: mux}
	s.Publish(0)
	go s.srv.Serve(ln) //nolint:errcheck // ErrServerClosed on Close
	return s, nil
}

// Addr reports the bound listen address (resolves ":0" to the real port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL reports the server's base URL.
func (s *Server) URL() string {
	host, port, err := net.SplitHostPort(s.Addr())
	if err != nil {
		return "http://" + s.Addr()
	}
	if ip := net.ParseIP(host); ip == nil || ip.IsUnspecified() {
		host = "localhost"
	}
	return fmt.Sprintf("http://%s:%s", host, port)
}

// MaybePublish implements telemetry.Publisher: called on every probe tick
// from the simulation thread, it republishes at most every PublishEvery of
// wall-clock time, and only consults the clock every CheckEveryTicks calls.
func (s *Server) MaybePublish(at sim.Time) {
	if at > s.lastAt {
		s.lastAt = at
	}
	s.ticks++
	if s.ticks&s.tickMask != 0 {
		return
	}
	s.mu.Lock()
	due := time.Since(s.lastPub) >= s.interval //simlint:allow determinism live-dashboard publish throttle is real wall-clock pacing; it never feeds simulation results
	s.mu.Unlock()
	if due {
		s.Publish(at)
	}
}

// Publish marshals fresh snapshots at virtual time at and broadcasts a
// sample to the SSE subscribers. It must run on the thread that owns the
// probe (the simulation loop, or its owner once the loop has stopped).
// An `at` behind the latest MaybePublish time is advanced to it, so a
// caller issuing a final end-of-run publish can pass 0.
func (s *Server) Publish(at sim.Time) {
	if s.lastAt > at {
		at = s.lastAt
	}
	md := s.probe.Registry().Dump(at)
	ad := s.probe.Attribution().Dump()
	metrics, err := json.Marshal(md)
	if err != nil {
		metrics = []byte("{}")
	}
	attr, err := json.Marshal(ad)
	if err != nil {
		attr = []byte("{}")
	}
	heat, err := json.Marshal(s.probe.HeatDump(at))
	if err != nil {
		heat = []byte("{}")
	}
	flight, err := json.Marshal(s.probe.Flight().Dump())
	if err != nil {
		flight = []byte("{}")
	}
	tenants, err := json.Marshal(s.probe.Attribution().TenantsDump())
	if err != nil {
		tenants = []byte("{}")
	}
	// The live view can't know which stack is driving the shared sink, so
	// it replays what-ifs under the conventional model (no erase/reset
	// coupling); the report sections carry the stack-correct predictions.
	// Experiments Drain the recorder when they capture their report
	// section, so an empty live snapshot usually means "between recording
	// windows" — fall back to the last completed window rather than
	// blanking the panel.
	rec := critpath.FromSink(s.probe.Attribution())
	cs := rec.Snapshot()
	if cs.IOs == 0 {
		cs = rec.LastDrained()
	}
	crit, err := json.Marshal(cs.Dump(critpath.PredictOpts{}))
	if err != nil {
		crit = []byte("{}")
	}
	// Same window-fallback story for the exemplar reservoir: an empty live
	// snapshot means "between recording windows", so serve the last drained
	// one. Tenant labels come straight from the (live) sink.
	res := exemplar.FromSink(s.probe.Attribution())
	es := res.Snapshot()
	if es.IOs == 0 {
		es = res.LastDrained()
	}
	exem, err := json.Marshal(es.Dump(s.probe.Attribution().TenantName))
	if err != nil {
		exem = []byte("{}")
	}

	s.mu.Lock()
	s.seq++
	ev := sampleEvent{Seq: s.seq, AtMillis: at.Millis(), Gauges: md.Gauges,
		Ops: make(map[string]opBrief, len(ad.Ops))}
	for op, od := range ad.Ops {
		ev.Ops[op] = opBrief{Count: od.Count, MeanUs: od.MeanUs, P99Us: od.P99Us}
	}
	sample, err := json.Marshal(ev)
	if err != nil {
		sample = []byte("{}")
	}
	s.metrics, s.attr, s.sample = metrics, attr, sample
	s.heat, s.flight, s.tenants, s.crit, s.exem = heat, flight, tenants, crit, exem
	s.lastPub = time.Now() //simlint:allow determinism wall-clock bookkeeping for the publish throttle; it never feeds simulation results
	s.mu.Unlock()

	s.subMu.Lock()
	for ch := range s.subs {
		select {
		case ch <- sample:
		default: // slow subscriber: drop, the next sample supersedes this one
		}
	}
	s.subMu.Unlock()
}

// Close stops accepting connections and shuts the server down.
func (s *Server) Close() error { return s.srv.Close() }

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Write(dashboardHTML) //nolint:errcheck
}

func (s *Server) serveJSON(w http.ResponseWriter, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Access-Control-Allow-Origin", "*")
	if body == nil {
		body = []byte("{}")
	}
	w.Write(body) //nolint:errcheck
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	body := s.metrics
	s.mu.Unlock()
	s.serveJSON(w, body)
}

func (s *Server) handleAttribution(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	body := s.attr
	s.mu.Unlock()
	s.serveJSON(w, body)
}

func (s *Server) handleHeatmap(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	body := s.heat
	s.mu.Unlock()
	s.serveJSON(w, body)
}

func (s *Server) handleFlight(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	body := s.flight
	s.mu.Unlock()
	s.serveJSON(w, body)
}

func (s *Server) handleTenants(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	body := s.tenants
	s.mu.Unlock()
	s.serveJSON(w, body)
}

func (s *Server) handleCritPath(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	body := s.crit
	s.mu.Unlock()
	s.serveJSON(w, body)
}

func (s *Server) handleExemplars(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	body := s.exem
	s.mu.Unlock()
	s.serveJSON(w, body)
}

// handleEvents streams SSE: one "sample" event per publish. The current
// sample is replayed on connect so a fresh dashboard paints immediately.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Access-Control-Allow-Origin", "*")

	ch := make(chan []byte, 8)
	s.subMu.Lock()
	s.subs[ch] = struct{}{}
	s.subMu.Unlock()
	defer func() {
		s.subMu.Lock()
		delete(s.subs, ch)
		s.subMu.Unlock()
	}()

	s.mu.Lock()
	cur := s.sample
	s.mu.Unlock()
	if cur != nil {
		writeSSE(w, cur)
		fl.Flush()
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case p := <-ch:
			writeSSE(w, p)
			fl.Flush()
		}
	}
}

func writeSSE(w http.ResponseWriter, data []byte) {
	fmt.Fprintf(w, "event: sample\ndata: %s\n\n", data) //nolint:errcheck
}
