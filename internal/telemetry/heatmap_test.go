package telemetry

import (
	"testing"

	"blockhead/internal/sim"
)

func TestHeatSetRegistrationOrderAndReplace(t *testing.T) {
	h := NewHeatSet()
	h.Register("flash", func(sim.Time) DeviceHeat { return DeviceHeat{Channels: []UnitOcc{{ID: 1}}} })
	h.Register("zns", func(sim.Time) DeviceHeat { return DeviceHeat{} })
	// Re-registering replaces the function but keeps the position — a second
	// experiment stack shadows the first instead of appending a dead device.
	h.Register("flash", func(sim.Time) DeviceHeat { return DeviceHeat{Channels: []UnitOcc{{ID: 2}}} })
	d := h.Dump(3 * sim.Millisecond)
	if d.AtMillis != 3 {
		t.Errorf("AtMillis = %v", d.AtMillis)
	}
	if len(d.Devices) != 2 || d.Devices[0].Name != "flash" || d.Devices[1].Name != "zns" {
		t.Fatalf("devices = %+v", d.Devices)
	}
	if d.Devices[0].Channels[0].ID != 2 {
		t.Error("re-registration did not replace the source")
	}
}

func TestHeatSetNilSafe(t *testing.T) {
	var h *HeatSet
	h.Register("x", func(sim.Time) DeviceHeat { return DeviceHeat{} })
	d := h.Dump(0)
	if d.Devices == nil || len(d.Devices) != 0 {
		t.Fatalf("nil set dump = %+v", d)
	}
	var p *Probe
	if got := p.HeatDump(0); len(got.Devices) != 0 {
		t.Fatal("nil probe HeatDump not empty")
	}
}

func TestHeatCellsU32(t *testing.T) {
	// Small inputs pass through one block per cell.
	cells, stride := HeatCellsU32([]uint32{3, 1, 4})
	if stride != 1 || len(cells) != 3 || cells[2] != 4 {
		t.Fatalf("cells=%v stride=%d", cells, stride)
	}
	// Large inputs downsample to <= maxHeatCells, keeping the per-cell max
	// so an isolated hot block stays visible.
	vals := make([]uint32, 3000)
	vals[2999] = 77
	cells, stride = HeatCellsU32(vals)
	if len(cells) > maxHeatCells || stride != 3 {
		t.Fatalf("len=%d stride=%d", len(cells), stride)
	}
	if cells[len(cells)-1] != 77 {
		t.Error("downsampling lost the hot block")
	}
	if cells, stride = HeatCellsU32(nil); len(cells) != 0 || stride != 1 {
		t.Fatalf("empty input: cells=%v stride=%d", cells, stride)
	}
}

func TestHeatCellsFrac(t *testing.T) {
	cells, stride := HeatCellsFrac([]float64{1, 0, 0.5})
	if stride != 1 || len(cells) != 3 || cells[0] != 1 {
		t.Fatalf("cells=%v stride=%d", cells, stride)
	}
	// 2048 values -> stride 2, cells are per-pair means.
	vals := make([]float64, 2048)
	for i := range vals {
		vals[i] = float64(i % 2) // alternating 0,1 -> every cell mean 0.5
	}
	cells, stride = HeatCellsFrac(vals)
	if stride != 2 || len(cells) != 1024 {
		t.Fatalf("len=%d stride=%d", len(cells), stride)
	}
	for _, c := range cells {
		if c != 0.5 {
			t.Fatalf("cell mean = %v, want 0.5", c)
		}
	}
}
