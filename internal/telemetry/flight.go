package telemetry

import (
	"fmt"
	"io"
	"os"

	"blockhead/internal/sim"
)

// FlightKind classifies one flight-recorder event. The recorder keeps the
// recent history of exactly the events a post-mortem needs: zone
// state-machine activity, reclamation decisions, erases, and the violations
// that trigger an automatic dump.
type FlightKind uint8

const (
	// FlightTransition is a zone state-machine transition (zns).
	FlightTransition FlightKind = iota
	// FlightReset is a completed zone reset (zns).
	FlightReset
	// FlightErase is a block erase, including endurance failures (flash).
	FlightErase
	// FlightWPConflict is a rejected write that missed the write pointer (zns).
	FlightWPConflict
	// FlightGCVictim is a device-side GC victim selection (ftl).
	FlightGCVictim
	// FlightReclaim is a host-side reclamation victim (hostftl).
	FlightReclaim
	// FlightAuditViolation is a zone state-machine auditor violation.
	FlightAuditViolation
	// FlightAttrViolation is a latency-attribution invariant violation.
	FlightAttrViolation
	// FlightFault is an injected media fault (flash): an uncorrectable read,
	// a failed program, or a failed erase.
	FlightFault
	// FlightCrash is a power-loss event (flash.CrashAt).
	FlightCrash
	// FlightRecover is a completed crash recovery (ftl/zns/hostftl).
	FlightRecover

	numFlightKinds = int(FlightRecover) + 1
)

var flightKindNames = [numFlightKinds]string{
	"transition",
	"reset",
	"erase",
	"wp_conflict",
	"gc_victim",
	"reclaim",
	"audit_violation",
	"attr_violation",
	"fault",
	"crash",
	"recover",
}

// String returns the kind's stable wire name.
func (k FlightKind) String() string {
	if int(k) >= numFlightKinds {
		return "unknown"
	}
	return flightKindNames[k]
}

// FlightEvent is one recorded event. Unit is the zone or block the event is
// about (-1 when not applicable); Detail is a static, preallocated label
// (e.g. "empty->open"); Arg is a kind-specific integer (write pointer,
// erase count, valid pages, ...).
type FlightEvent struct {
	At     sim.Time
	Kind   FlightKind
	Unit   int32
	Detail string
	Arg    int64
}

// DefaultFlightEvents is the default ring capacity.
const DefaultFlightEvents = 1024

// flightMaxAutoDumps caps how many automatic violation dumps one recorder
// writes, so a violation storm cannot flood the output.
const flightMaxAutoDumps = 3

// Flight is a bounded ring of recent device events — a flight recorder.
// Recording is allocation-free and the nil *Flight is a valid no-op on
// every method, so device models record unconditionally on their hot paths.
//
// On a Violation the recorder dumps its contents (text) to DumpTo
// automatically, at most flightMaxAutoDumps times; on-demand dumps go
// through WriteText (text) and Dump (JSON).
//
//simlint:shared bounded event ring ordered by virtual time: shards record locally and the rings interleave-merge by timestamp at barriers
type Flight struct {
	ring  []FlightEvent
	next  int
	total uint64

	violations uint64
	autoDumps  int

	// DumpTo receives the automatic text dump written when a Violation is
	// recorded. NewFlight sets it to os.Stderr; tests redirect it, and nil
	// disables automatic dumps entirely.
	DumpTo io.Writer
}

// NewFlight returns a recorder with the given ring capacity
// (DefaultFlightEvents if n <= 0), auto-dumping to os.Stderr.
func NewFlight(n int) *Flight {
	if n <= 0 {
		n = DefaultFlightEvents
	}
	return &Flight{ring: make([]FlightEvent, n), DumpTo: os.Stderr}
}

// Record appends one event, overwriting the oldest once the ring is full.
// No-op on a nil recorder; never allocates.
func (f *Flight) Record(at sim.Time, kind FlightKind, unit int32, detail string, arg int64) {
	if f == nil {
		return
	}
	f.ring[f.next] = FlightEvent{At: at, Kind: kind, Unit: unit, Detail: detail, Arg: arg}
	f.next++
	if f.next == len(f.ring) {
		f.next = 0
	}
	f.total++
}

// Violation records an event and triggers the automatic dump: the recorder's
// whole ring is written to DumpTo (at most flightMaxAutoDumps times per
// recorder) with the violating event as the last entry. The dump path may
// allocate; violations are exceptional by contract.
func (f *Flight) Violation(at sim.Time, kind FlightKind, unit int32, detail string, arg int64) {
	if f == nil {
		return
	}
	f.Record(at, kind, unit, detail, arg)
	f.violations++
	if f.DumpTo == nil || f.autoDumps >= flightMaxAutoDumps {
		return
	}
	f.autoDumps++
	fmt.Fprintf(f.DumpTo, "flight recorder: %s at %.3fms (unit %d %s): dumping last %d events\n",
		kind, at.Millis(), unit, detail, f.Len())
	f.WriteText(f.DumpTo) //nolint:errcheck // best-effort diagnostic output
}

// Len reports how many events the ring currently holds.
func (f *Flight) Len() int {
	if f == nil {
		return 0
	}
	if f.total < uint64(len(f.ring)) {
		return int(f.total)
	}
	return len(f.ring)
}

// Total reports how many events were ever recorded (including overwritten).
func (f *Flight) Total() uint64 {
	if f == nil {
		return 0
	}
	return f.total
}

// Dropped reports how many events were overwritten by newer ones.
func (f *Flight) Dropped() uint64 {
	if f == nil {
		return 0
	}
	return f.total - uint64(f.Len())
}

// Violations reports how many violation events were recorded.
func (f *Flight) Violations() uint64 {
	if f == nil {
		return 0
	}
	return f.violations
}

// Events returns the recorded events, oldest first. Nil-safe (empty slice).
func (f *Flight) Events() []FlightEvent {
	if f == nil {
		return []FlightEvent{}
	}
	out := make([]FlightEvent, 0, f.Len())
	if f.total >= uint64(len(f.ring)) {
		out = append(out, f.ring[f.next:]...)
	}
	out = append(out, f.ring[:f.next]...)
	return out
}

// WriteText writes a human-readable dump, oldest event first.
func (f *Flight) WriteText(w io.Writer) error {
	if f == nil {
		_, err := fmt.Fprintf(w, "flight recorder: 0 events (0 recorded, 0 dropped, 0 violations)\n")
		return err
	}
	events := f.Events()
	if _, err := fmt.Fprintf(w, "flight recorder: %d events (%d recorded, %d dropped, %d violations)\n",
		len(events), f.Total(), f.Dropped(), f.Violations()); err != nil {
		return err
	}
	for _, ev := range events {
		if _, err := fmt.Fprintf(w, "  %12.3fms  %-15s unit=%-6d arg=%-8d %s\n",
			ev.At.Millis(), ev.Kind, ev.Unit, ev.Arg, ev.Detail); err != nil {
			return err
		}
	}
	return nil
}

// FlightDump is the JSON shape of a flight-recorder export (/flight.json).
type FlightDump struct {
	Total      uint64            `json:"total"`
	Dropped    uint64            `json:"dropped"`
	Violations uint64            `json:"violations"`
	Events     []FlightEventDump `json:"events"`
}

// FlightEventDump is one event of a flight-recorder export.
type FlightEventDump struct {
	AtMillis float64 `json:"at_ms"`
	Kind     string  `json:"kind"`
	Unit     int32   `json:"unit"`
	Detail   string  `json:"detail,omitempty"`
	Arg      int64   `json:"arg"`
}

// Dump converts the recorder's contents to their JSON shape. Safe on a nil
// recorder (empty dump).
func (f *Flight) Dump() FlightDump {
	if f == nil {
		return FlightDump{Events: []FlightEventDump{}}
	}
	events := f.Events()
	d := FlightDump{
		Total:      f.Total(),
		Dropped:    f.Dropped(),
		Violations: f.Violations(),
		Events:     make([]FlightEventDump, len(events)),
	}
	for i, ev := range events {
		d.Events[i] = FlightEventDump{
			AtMillis: ev.At.Millis(),
			Kind:     ev.Kind.String(),
			Unit:     ev.Unit,
			Detail:   ev.Detail,
			Arg:      ev.Arg,
		}
	}
	return d
}
