package telemetry

import (
	"testing"

	"blockhead/internal/sim"
)

func TestWindowSetObserve(t *testing.T) {
	w := NewWindowSet(WindowCfg{Width: sim.Millisecond, Keep: 4})
	if w.Width() != sim.Millisecond || w.Keep() != 4 {
		t.Fatalf("cfg not applied: width=%v keep=%d", w.Width(), w.Keep())
	}

	// Two ops in window 0, one in window 2; tenant 2 untouched.
	w.Observe(1, OpRead, 100*sim.Microsecond, 50*sim.Microsecond)
	w.Observe(1, OpRead, 900*sim.Microsecond, 150*sim.Microsecond)
	w.Observe(1, OpWrite, 2500*sim.Microsecond, 70*sim.Microsecond)

	wins := w.Snapshot(1)
	if len(wins) != 2 {
		t.Fatalf("snapshot windows = %d, want 2", len(wins))
	}
	if wins[0].Seq != 0 || wins[1].Seq != 2 {
		t.Fatalf("seqs = %d,%d, want 0,2", wins[0].Seq, wins[1].Seq)
	}
	if wins[1].Start != 2*sim.Millisecond {
		t.Fatalf("window 2 start = %v", wins[1].Start)
	}
	rd := wins[0].Ops[OpRead]
	if rd.Count != 2 || rd.Sum != 200*sim.Microsecond || rd.MeanNs() != 100*sim.Microsecond {
		t.Fatalf("window 0 read: count=%d sum=%v mean=%v", rd.Count, rd.Sum, rd.MeanNs())
	}
	if wins[1].Ops[OpWrite].Count != 1 {
		t.Fatalf("window 2 write count = %d", wins[1].Ops[OpWrite].Count)
	}
	if got := w.Snapshot(2); len(got) != 0 {
		t.Fatalf("untouched tenant has %d windows", len(got))
	}
}

func TestWindowSetEvictionAndLate(t *testing.T) {
	w := NewWindowSet(WindowCfg{Width: sim.Millisecond, Keep: 4})
	// Fill windows 0..5; the ring keeps only the last 4 (2..5).
	for seq := int64(0); seq < 6; seq++ {
		done := sim.Time(seq)*sim.Millisecond + 10*sim.Microsecond
		w.Observe(1, OpRead, done, 25*sim.Microsecond)
	}
	wins := w.Snapshot(1)
	if len(wins) != 4 || wins[0].Seq != 2 || wins[3].Seq != 5 {
		t.Fatalf("retained seqs wrong: %+v", wins)
	}
	// An observation landing in an evicted window must be dropped as
	// late, not smeared into a newer window's histogram.
	w.Observe(1, OpRead, 1500*sim.Microsecond, 25*sim.Microsecond)
	if w.Late() != 1 {
		t.Fatalf("late = %d, want 1", w.Late())
	}
	if got := w.Snapshot(1); len(got) != 4 || got[0].Ops[OpRead].Count != 1 {
		t.Fatalf("late observation mutated the ring: %+v", got)
	}

	w.Reset()
	if w.Late() != 0 || len(w.Snapshot(1)) != 0 {
		t.Fatal("Reset did not clear the ring")
	}
	// After a virtual-time restart, window 0 must be usable again.
	w.Observe(1, OpRead, 10*sim.Microsecond, 25*sim.Microsecond)
	if got := w.Snapshot(1); len(got) != 1 || got[0].Seq != 0 {
		t.Fatalf("post-Reset observe: %+v", got)
	}
}

func TestWindowSetDefaultsAndClamp(t *testing.T) {
	w := NewWindowSet(WindowCfg{})
	if w.Width() != DefaultWindowWidth || w.Keep() != DefaultWindowKeep {
		t.Fatalf("defaults: width=%v keep=%d", w.Width(), w.Keep())
	}
	// Out-of-range tenants clamp to 0; out-of-range ops are dropped.
	w.Observe(-3, OpRead, 0, sim.Microsecond)
	w.Observe(MaxTenants+5, OpRead, 0, sim.Microsecond)
	w.Observe(1, OpKind(-1), 0, sim.Microsecond)
	w.Observe(1, OpKind(NumOps), 0, sim.Microsecond)
	if got := w.Snapshot(0); len(got) != 1 || got[0].Ops[OpRead].Count != 2 {
		t.Fatalf("clamped observations: %+v", got)
	}
	if len(w.Snapshot(1)) != 0 {
		t.Fatal("invalid op kinds must be dropped")
	}
	if w.Snapshot(-1) != nil || w.Snapshot(MaxTenants) != nil {
		t.Fatal("out-of-range Snapshot must be nil")
	}
}

func TestWindowSetNil(t *testing.T) {
	var w *WindowSet
	w.Observe(1, OpRead, 0, sim.Microsecond) // must not panic
	w.Reset()
	if w.Width() != 0 || w.Keep() != 0 || w.Late() != 0 || w.Snapshot(1) != nil {
		t.Fatal("nil WindowSet must be a zero no-op")
	}
}
