// Package exemplar captures worst-K tail exemplars: for each measured IO
// that lands in the latency tail (or trips an auditor violation or fault
// retry), it records the full per-phase timeline from the AttrSink charge
// stream, the critical-path split and queued-behind identities from the
// attached critpath recorder, the culprit-tenant blame vector, and a
// compact device-state snapshot at completion. The aggregate layers say
// how much tail there is; this layer says which IOs sat in it and what
// exactly they queued behind.
//
// The package inherits the telemetry contract wholesale:
//
//   - The nil *Reservoir is a valid no-op on every method.
//   - No hot-path method allocates: per-tenant heaps and the flagged ring
//     are preallocated, and the admission test runs before any capture
//     work, so the common (fast) IO costs one comparison.
//   - Everything is deterministic: admission is a pure function of the
//     (deterministic) latency stream, so the same seed yields the same
//     exemplar set byte-for-byte.
//
// Every exemplar carries the sink's measured-IO sequence number; together
// with the run's seed and experiment ID it identifies one IO for
// deterministic forensic replay (`znsbench -explain <exp>:<seq>`,
// narrate.go).
package exemplar

import (
	"fmt"
	"sort"

	"blockhead/internal/sim"
	"blockhead/internal/telemetry"
	"blockhead/internal/telemetry/critpath"
)

// NumZoneStates is the width of the zone-state census in a DevSnap,
// matching the ZNS zone state machine (internal/zns).
const NumZoneStates = 6

// zoneStateNames is the census display order (the zns ZoneState order).
var zoneStateNames = [NumZoneStates]string{
	"empty", "open", "closed", "full", "read_only", "offline",
}

// DevSnap is a compact device-state snapshot taken at IO completion. The
// experiment wires a SnapFunc per stack (SetSnap); a zero DevSnap
// (Captured false) means no snapshot source was armed.
type DevSnap struct {
	Captured bool

	// Zoned-stack state: the zone census by state (zns order: empty,
	// open, closed, full, read_only, offline), plus the busiest open zone
	// (highest write pointer) and its WP. HotZone is -1 when unknown.
	Zoned     bool
	ZoneCount [NumZoneStates]int32
	HotZone   int32
	HotWP     int64

	// Channel/LUN occupancy: how many of the chip's resources were still
	// busy (acquired past the completion instant).
	BusyLUNs, TotalLUNs   int32
	BusyChans, TotalChans int32

	// Reclaim state: cumulative GC/reclaim passes (device-FTL GC runs or
	// host-FTL zone resets), whether reclamation was in flight at
	// completion, and the free-capacity backlog (free blocks for the
	// device FTL, free zones for the host FTL).
	GCRuns   uint64
	GCActive bool
	Free     int64
}

// String renders the snapshot as one report line.
func (s DevSnap) String() string {
	if !s.Captured {
		return "(not captured)"
	}
	out := ""
	if s.Zoned {
		out += "zones:"
		for i := 0; i < NumZoneStates; i++ {
			if s.ZoneCount[i] != 0 {
				out += fmt.Sprintf(" %s=%d", zoneStateNames[i], s.ZoneCount[i])
			}
		}
		if s.HotZone >= 0 {
			out += fmt.Sprintf(" | wp(z%d)=%d", s.HotZone, s.HotWP)
		}
		out += " | "
	}
	out += fmt.Sprintf("luns busy %d/%d | chans busy %d/%d | gc: %d runs",
		s.BusyLUNs, s.TotalLUNs, s.BusyChans, s.TotalChans, s.GCRuns)
	if s.GCActive {
		out += " (in flight)"
	}
	out += fmt.Sprintf(", free=%d", s.Free)
	return out
}

// SnapFunc fills a device-state snapshot for an IO that completed at done.
// It runs only for admitted exemplars, on the simulation thread.
type SnapFunc func(done sim.Time, s *DevSnap)

// Exemplar is one captured IO: identity, exact phase timeline (sums to
// Total by the attribution invariant), blame vector, critical-path split
// with queued-behind identities, and the device snapshot at completion.
type Exemplar struct {
	Seq    uint64
	Op     telemetry.OpKind
	Tenant telemetry.TenantID
	Start  sim.Time
	Total  sim.Time
	Flags  uint8
	Phases [telemetry.NumPhases]sim.Time
	Blame  [telemetry.MaxTenants]sim.Time
	Path   critpath.PathRec
	PathOK bool
	Snap   DevSnap
}

// FlagNames renders the exemplar's flag bits as stable wire names.
func (e Exemplar) FlagNames() []string {
	var out []string
	if e.Flags&telemetry.FlagFaultRetry != 0 {
		out = append(out, "fault_retry")
	}
	if e.Flags&telemetry.FlagAuditViolation != 0 {
		out = append(out, "audit_violation")
	}
	return out
}

// TopPhase reports the phase holding the largest share of the exemplar's
// latency (ties: earliest phase in display order).
func (e Exemplar) TopPhase() telemetry.Phase {
	best := telemetry.Phase(0)
	var bestV sim.Time
	for p := 0; p < telemetry.NumPhases; p++ {
		if e.Phases[p] > bestV {
			bestV = e.Phases[p]
			best = telemetry.Phase(p)
		}
	}
	return best
}

// worse is the admission order: a is kept over b when a's latency is
// higher, ties broken toward the earlier sequence number (first
// occurrence). Deterministic total order, so the retained set is a pure
// function of the IO stream.
func worse(aTotal sim.Time, aSeq uint64, bTotal sim.Time, bSeq uint64) bool {
	if aTotal != bTotal {
		return aTotal > bTotal
	}
	return aSeq < bSeq
}

// Options configures a Reservoir.
type Options struct {
	// K bounds the per-tenant worst-K heap (default DefaultK).
	K int
	// FlagCap bounds the always-keep ring for flagged IOs (default
	// DefaultFlagCap); once full, the oldest flagged exemplar is
	// overwritten, so the ring holds the most recent flagged IOs.
	FlagCap int
}

// DefaultK is the per-tenant worst-K capacity when Options.K is 0.
const DefaultK = 8

// DefaultFlagCap is the flagged-ring capacity when Options.FlagCap is 0.
const DefaultFlagCap = 16

// Reservoir implements telemetry.ExemplarSink: a fixed-capacity min-heap
// of worst-K exemplars per tenant, keyed by end-to-end latency, plus an
// always-keep ring for flagged IOs (auditor violations, fault retries).
// The nil *Reservoir is a valid no-op on every method and no hot-path
// method allocates (see the package comment).
//
//simlint:nilsafe
type Reservoir struct {
	k        int
	heaps    [telemetry.MaxTenants][]Exemplar
	flagged  []Exemplar
	flagNext int
	flagSeen uint64
	ios      uint64

	// pending header of the open record (BeginExemplar..EndExemplar).
	active bool
	seq    uint64
	op     telemetry.OpKind
	tenant telemetry.TenantID
	start  sim.Time

	// path is the critical-path source read at completion; snap fills the
	// device-state snapshot. Both optional; SetSnap re-arms snap per stack.
	path *critpath.Recorder
	snap SnapFunc

	// drained is the most recent non-empty Drain result, kept so the live
	// dashboard can keep serving the last completed recording window.
	drained Snapshot
}

// New returns an empty reservoir with preallocated storage.
func New(opts Options) *Reservoir {
	k := opts.K
	if k <= 0 {
		k = DefaultK
	}
	fc := opts.FlagCap
	if fc <= 0 {
		fc = DefaultFlagCap
	}
	r := &Reservoir{k: k, flagged: make([]Exemplar, 0, fc)}
	for t := 0; t < telemetry.MaxTenants; t++ {
		r.heaps[t] = make([]Exemplar, 0, k)
	}
	return r
}

// Attach creates a reservoir and installs it as sink's exemplar sink,
// reading critical paths from the recorder already attached to the sink
// (if any). Returns nil (a valid no-op) when sink is nil.
func Attach(sink *telemetry.AttrSink, opts Options) *Reservoir {
	if sink == nil {
		return nil
	}
	r := New(opts)
	r.path = critpath.FromSink(sink)
	sink.Exem = r
	return r
}

// FromSink returns the reservoir attached to sink, or nil if sink is nil
// or carries no reservoir.
func FromSink(sink *telemetry.AttrSink) *Reservoir {
	if sink == nil {
		return nil
	}
	r, _ := sink.Exem.(*Reservoir)
	return r
}

// SetSnap arms (or replaces) the device-state snapshot source. Experiments
// re-arm it per stack, right before the stack's measured window. Nil-safe.
func (r *Reservoir) SetSnap(fn SnapFunc) {
	if r == nil {
		return
	}
	r.snap = fn
}

// BeginExemplar opens the record for one measured IO (telemetry.ExemplarSink).
func (r *Reservoir) BeginExemplar(seq uint64, op telemetry.OpKind, tenant telemetry.TenantID, start sim.Time) {
	if r == nil {
		return
	}
	r.active = true
	r.seq = seq
	r.op = op
	r.tenant = tenant
	r.start = start
}

// EndExemplar completes the record (telemetry.ExemplarSink): the admission
// test runs first, so the common IO pays one comparison and no capture
// work. Admitted IOs copy the phase timeline and blame vector, read the
// completed critical path out of the attached recorder, and take a device
// snapshot.
func (r *Reservoir) EndExemplar(done sim.Time, phases *[telemetry.NumPhases]sim.Time, blame *[telemetry.MaxTenants]sim.Time, flags uint8) {
	if r == nil || !r.active {
		return
	}
	r.active = false
	r.ios++
	total := done - r.start
	heap := r.heaps[r.tenant]
	admitHeap := len(heap) < cap(heap) || worse(total, r.seq, heap[0].Total, heap[0].Seq)
	admitFlag := flags != 0
	if !admitHeap && !admitFlag {
		return
	}
	ex := Exemplar{
		Seq:    r.seq,
		Op:     r.op,
		Tenant: r.tenant,
		Start:  r.start,
		Total:  total,
		Flags:  flags,
		Phases: *phases,
		Blame:  *blame,
	}
	if rec, ok := r.path.Last(); ok {
		ex.Path = rec
		ex.PathOK = true
	}
	if r.snap != nil {
		r.snap(done, &ex.Snap)
		ex.Snap.Captured = true
	}
	if admitHeap {
		r.admit(ex)
	}
	if admitFlag {
		r.flagSeen++
		if len(r.flagged) < cap(r.flagged) {
			r.flagged = append(r.flagged, ex)
		} else {
			r.flagged[r.flagNext] = ex
			r.flagNext = (r.flagNext + 1) % cap(r.flagged)
		}
	}
}

// admit pushes ex into its tenant's worst-K min-heap (replacing the least
// worst exemplar when full). Manual sift on the preallocated array — no
// interface boxing, no allocation.
func (r *Reservoir) admit(ex Exemplar) {
	h := r.heaps[ex.Tenant]
	if len(h) < cap(h) {
		h = append(h, ex)
		r.heaps[ex.Tenant] = h
		// sift up
		i := len(h) - 1
		for i > 0 {
			parent := (i - 1) / 2
			if !worse(h[parent].Total, h[parent].Seq, h[i].Total, h[i].Seq) {
				break
			}
			h[parent], h[i] = h[i], h[parent]
			i = parent
		}
		return
	}
	// replace root (the least worst retained exemplar), sift down
	h[0] = ex
	i := 0
	for {
		l, rr := 2*i+1, 2*i+2
		least := i
		if l < len(h) && worse(h[least].Total, h[least].Seq, h[l].Total, h[l].Seq) {
			least = l
		}
		if rr < len(h) && worse(h[least].Total, h[least].Seq, h[rr].Total, h[rr].Seq) {
			least = rr
		}
		if least == i {
			break
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
}

// DropExemplar abandons the open record (telemetry.ExemplarSink).
func (r *Reservoir) DropExemplar() {
	if r == nil {
		return
	}
	r.active = false
}

// IOs reports how many measured IOs completed since the last Drain.
func (r *Reservoir) IOs() uint64 {
	if r == nil {
		return 0
	}
	return r.ios
}

// Snapshot is a copyable capture of a reservoir's retained exemplars.
// Tenants[t] is tenant t's worst-K sorted worst-first; Flagged is the
// always-keep ring in sequence order; FlagSeen counts every flagged IO
// observed, including those the ring has since overwritten.
type Snapshot struct {
	IOs      uint64
	K        int
	Tenants  [telemetry.MaxTenants][]Exemplar
	Flagged  []Exemplar
	FlagSeen uint64
}

// Snapshot returns a sorted copy of the reservoir's state since the last
// Drain. It allocates, so it is for publish/report time, not the per-IO
// path.
func (r *Reservoir) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	s := Snapshot{IOs: r.ios, K: r.k, FlagSeen: r.flagSeen}
	for t := 0; t < telemetry.MaxTenants; t++ {
		if len(r.heaps[t]) == 0 {
			continue
		}
		ex := make([]Exemplar, len(r.heaps[t]))
		copy(ex, r.heaps[t])
		sortWorstFirst(ex)
		s.Tenants[t] = ex
	}
	if len(r.flagged) > 0 {
		s.Flagged = make([]Exemplar, len(r.flagged))
		copy(s.Flagged, r.flagged)
		sort.Slice(s.Flagged, func(i, j int) bool { return s.Flagged[i].Seq < s.Flagged[j].Seq })
	}
	return s
}

// Rebase shifts every retained exemplar's sequence number by delta. The
// parallel harness runs each shard's stack against its own sink, whose
// measured-IO numbering starts at 1; rebasing by the total measured-IO
// count of the preceding shards (in shard order) reproduces the serial
// reference's numbering exactly, so `-explain <exp>:<seq>` hints stay valid
// at any shard count. A constant offset preserves the reservoir's
// worst-K tie-break order (older wins), so only the labels change.
func (s *Snapshot) Rebase(delta uint64) {
	if delta == 0 {
		return
	}
	for t := range s.Tenants {
		for i := range s.Tenants[t] {
			s.Tenants[t][i].Seq += delta
		}
	}
	for i := range s.Flagged {
		s.Flagged[i].Seq += delta
	}
}

// Drain returns a snapshot of everything captured since the previous Drain
// and resets the reservoir, so one reservoir shared across stacks yields
// per-stack sections the way AttrSnapshot deltas do. The snapshot source
// (SetSnap) is left armed.
func (r *Reservoir) Drain() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	s := r.Snapshot()
	if s.IOs > 0 {
		r.drained = s
	}
	r.ios = 0
	r.flagSeen = 0
	r.flagNext = 0
	r.flagged = r.flagged[:0]
	for t := 0; t < telemetry.MaxTenants; t++ {
		r.heaps[t] = r.heaps[t][:0]
	}
	return s
}

// LastDrained returns the most recent non-empty snapshot taken by Drain —
// the last completed recording window — or the zero Snapshot.
func (r *Reservoir) LastDrained() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	return r.drained
}

// sortWorstFirst orders exemplars by descending latency, ascending seq.
func sortWorstFirst(ex []Exemplar) {
	sort.Slice(ex, func(i, j int) bool {
		return worse(ex[i].Total, ex[i].Seq, ex[j].Total, ex[j].Seq)
	})
}

// TopK merges every tenant's worst-K and returns the overall worst n
// exemplars (all retained exemplars when n <= 0), worst-first.
func (s Snapshot) TopK(n int) []Exemplar {
	var all []Exemplar
	for t := 0; t < telemetry.MaxTenants; t++ {
		all = append(all, s.Tenants[t]...)
	}
	sortWorstFirst(all)
	if n > 0 && len(all) > n {
		all = all[:n]
	}
	return all
}

// Captured reports how many exemplars the snapshot retains across tenants
// (the flagged ring not included).
func (s Snapshot) Captured() int {
	n := 0
	for t := 0; t < telemetry.MaxTenants; t++ {
		n += len(s.Tenants[t])
	}
	return n
}

// DumpSchema identifies the /exemplars.json wire format.
const DumpSchema = "blockhead/exemplars/v1"

// Dump is the JSON shape of an exemplar export (/exemplars.json).
type Dump struct {
	Schema   string         `json:"schema"`
	IOs      uint64         `json:"ios"`
	K        int            `json:"k"`
	Worst    []ExemplarDump `json:"worst"`
	Flagged  []ExemplarDump `json:"flagged,omitempty"`
	FlagSeen uint64         `json:"flag_seen,omitempty"`
}

// ExemplarDump is one exemplar's JSON shape. Phases lists the nonzero
// phases in display order; their microseconds sum to TotalUs exactly (the
// attribution invariant, carried through to the wire).
type ExemplarDump struct {
	Seq      uint64       `json:"seq"`
	Op       string       `json:"op"`
	Tenant   string       `json:"tenant"`
	StartMs  float64      `json:"start_ms"`
	TotalUs  float64      `json:"total_us"`
	TopPhase string       `json:"top_phase"`
	Flags    []string     `json:"flags,omitempty"`
	Phases   []PhaseUs    `json:"phases"`
	Blame    []BlameUs    `json:"blame,omitempty"`
	Device   string       `json:"device,omitempty"`
	WaitedOn []WaitedDump `json:"waited_on,omitempty"`
}

// PhaseUs is one nonzero phase of an exemplar's timeline.
type PhaseUs struct {
	Name string  `json:"name"`
	Us   float64 `json:"us"`
}

// BlameUs is one culprit's share of the exemplar's blamed stall time.
type BlameUs struct {
	Tenant string  `json:"tenant"`
	Us     float64 `json:"us"`
}

// WaitedDump is one wait phase's queued-behind split from the critical
// path: how long the IO waited in the phase behind each occupant service.
type WaitedDump struct {
	Phase  string  `json:"phase"`
	Behind string  `json:"behind"`
	Us     float64 `json:"us"`
}

// waitPhases maps critpath wait slots back to attribution phases, in the
// critpath wait order.
var waitPhases = [critpath.NumWaits]telemetry.Phase{
	telemetry.PhaseWPSerial, telemetry.PhaseChanWait, telemetry.PhaseLUNWait,
}

// bindNames maps critpath bind slots to service-phase names, in the
// critpath bind order.
var bindNames = [critpath.NumBinds]string{
	telemetry.PhaseXfer.String(), telemetry.PhaseNANDRead.String(),
	telemetry.PhaseNANDProgram.String(), telemetry.PhaseNANDErase.String(),
}

// DumpOne converts one exemplar to its JSON shape. name labels tenants
// (nil uses "t<i>"/"sys" defaults).
func DumpOne(e Exemplar, name func(telemetry.TenantID) string) ExemplarDump {
	d := ExemplarDump{
		Seq:      e.Seq,
		Op:       e.Op.String(),
		Tenant:   tenantLabel(e.Tenant, name),
		StartMs:  e.Start.Millis(),
		TotalUs:  e.Total.Micros(),
		TopPhase: e.TopPhase().String(),
		Flags:    e.FlagNames(),
		Phases:   []PhaseUs{},
	}
	for p := 0; p < telemetry.NumPhases; p++ {
		if e.Phases[p] != 0 {
			d.Phases = append(d.Phases, PhaseUs{Name: telemetry.Phase(p).String(), Us: e.Phases[p].Micros()})
		}
	}
	for t := 0; t < telemetry.MaxTenants; t++ {
		if e.Blame[t] != 0 {
			d.Blame = append(d.Blame, BlameUs{Tenant: tenantLabel(telemetry.TenantID(t), name), Us: e.Blame[t].Micros()})
		}
	}
	if e.PathOK {
		for w := 0; w < critpath.NumWaits; w++ {
			for b := 0; b < critpath.NumBinds; b++ {
				if v := e.Path.WaitBy[w][b]; v != 0 {
					d.WaitedOn = append(d.WaitedOn, WaitedDump{
						Phase: waitPhases[w].String(), Behind: bindNames[b], Us: v.Micros(),
					})
				}
			}
		}
	}
	if e.Snap.Captured {
		d.Device = e.Snap.String()
	}
	return d
}

func tenantLabel(t telemetry.TenantID, name func(telemetry.TenantID) string) string {
	if name != nil {
		return name(t)
	}
	if t == 0 {
		return "sys"
	}
	return fmt.Sprintf("t%d", t)
}

// Dump converts the snapshot to its JSON shape: the overall worst
// exemplars (merged across tenants) plus the flagged ring.
func (s Snapshot) Dump(name func(telemetry.TenantID) string) Dump {
	d := Dump{Schema: DumpSchema, IOs: s.IOs, K: s.K, Worst: []ExemplarDump{}, FlagSeen: s.FlagSeen}
	for _, e := range s.TopK(0) {
		d.Worst = append(d.Worst, DumpOne(e, name))
	}
	for _, e := range s.Flagged {
		d.Flagged = append(d.Flagged, DumpOne(e, name))
	}
	return d
}

// BenchSummary is the -bench-json exemplar block: enough numeric columns
// for benchdiff to pin the exemplar layer (worst latencies and capture
// counts) against the committed BENCH_exemplars.json baseline.
type BenchSummary struct {
	IOs          uint64  `json:"ios"`
	Captured     int     `json:"captured"`
	Flagged      uint64  `json:"flagged"`
	WorstReadUs  float64 `json:"worst_read_us"`
	WorstWriteUs float64 `json:"worst_write_us"`
	SumTopUs     float64 `json:"sum_top_us"`
}

// Bench summarizes the snapshot for -bench-json (nil when the snapshot is
// empty, so entries predating exemplar capture compare as "no baseline").
func (s Snapshot) Bench() *BenchSummary {
	if s.IOs == 0 {
		return nil
	}
	b := &BenchSummary{IOs: s.IOs, Captured: s.Captured(), Flagged: s.FlagSeen}
	for _, e := range s.TopK(0) {
		b.SumTopUs += e.Total.Micros()
		switch e.Op {
		case telemetry.OpRead:
			if us := e.Total.Micros(); us > b.WorstReadUs {
				b.WorstReadUs = us
			}
		case telemetry.OpWrite:
			if us := e.Total.Micros(); us > b.WorstWriteUs {
				b.WorstWriteUs = us
			}
		}
	}
	return b
}
