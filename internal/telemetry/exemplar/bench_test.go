package exemplar

import (
	"testing"

	"blockhead/internal/sim"
	"blockhead/internal/telemetry"
	"blockhead/internal/telemetry/critpath"
)

// The package inherits the telemetry layer's core contract: a nil
// *Reservoir and a nil *Narrator are no-ops on every method, and the
// disabled path is 0 allocs/op (make bench-telemetry pins it alongside
// the other probes).
func BenchmarkProbeDisabledExemplar(b *testing.B) {
	var (
		r *Reservoir
		n *Narrator
		a *telemetry.AttrSink
	)
	phases := [telemetry.NumPhases]sim.Time{}
	blame := [telemetry.MaxTenants]sim.Time{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		at := sim.Time(i)
		r.BeginExemplar(uint64(i), telemetry.OpRead, 1, at)
		r.EndExemplar(at+sim.Microsecond, &phases, &blame, 0)
		r.DropExemplar()
		r.SetSnap(nil)
		_ = r.IOs()
		n.BeginExemplar(uint64(i), telemetry.OpRead, 1, at)
		n.EndExemplar(at+sim.Microsecond, &phases, &blame, 0)
		n.DropExemplar()
		n.Arm("stack", critpath.PredictOpts{}, nil, nil)
		_ = n.Done()
		// The sink-side flag bit shares the contract: nil sink, no-op.
		a.FlagIO(telemetry.FlagFaultRetry)
	}
}

// The enabled path must not allocate either: the per-tenant heaps and the
// flagged ring are preallocated, so capturing an exemplar — including a
// flagged one once the ring has wrapped — costs no allocations per IO.
func BenchmarkReservoirEnabled(b *testing.B) {
	sink := telemetry.NewAttrSink()
	critpath.Attach(sink, critpath.Options{SampleCap: 1024})
	res := Attach(sink, Options{K: 8, FlagCap: 8})
	res.SetSnap(func(done sim.Time, s *DevSnap) {
		s.Zoned = true
		s.ZoneCount[1] = 3
		s.BusyLUNs, s.TotalLUNs = 1, 4
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at := sim.Time(i) * sim.Microsecond
		sink.BeginTenant(telemetry.OpWrite, telemetry.TenantID(i%3), at)
		sink.Charge(telemetry.PhaseNANDProgram, sim.Time(700+i%100)*sim.Microsecond)
		if i%7 == 0 {
			sink.FlagIO(telemetry.FlagAuditViolation)
		}
		sink.End(at + sim.Time(700+i%100)*sim.Microsecond)
	}
}

// TestDisabledExemplarZeroAllocs pins the benchmark's claim in a normal
// test run, extending the telemetry 0-allocs pin to the nil reservoir and
// the nil narrator.
func TestDisabledExemplarZeroAllocs(t *testing.T) {
	var (
		r *Reservoir
		n *Narrator
		a *telemetry.AttrSink
	)
	phases := [telemetry.NumPhases]sim.Time{}
	blame := [telemetry.MaxTenants]sim.Time{}
	allocs := testing.AllocsPerRun(1000, func() {
		r.BeginExemplar(1, telemetry.OpWrite, 0, 0)
		r.EndExemplar(sim.Millisecond, &phases, &blame, 0)
		r.DropExemplar()
		r.SetSnap(nil)
		_ = r.IOs()
		n.BeginExemplar(1, telemetry.OpWrite, 0, 0)
		n.EndExemplar(sim.Millisecond, &phases, &blame, 0)
		n.DropExemplar()
		n.Arm("stack", critpath.PredictOpts{}, nil, nil)
		_ = n.Done()
		a.FlagIO(telemetry.FlagAuditViolation)
	})
	if allocs != 0 {
		t.Fatalf("disabled exemplar capture allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestEnabledReservoirZeroAllocs pins the enabled hot path too: recording
// an IO into an attached reservoir — admission test, heap replacement,
// flagged-ring wrap, and device snapshot included — performs no
// allocations.
func TestEnabledReservoirZeroAllocs(t *testing.T) {
	sink := telemetry.NewAttrSink()
	critpath.Attach(sink, critpath.Options{SampleCap: 2048})
	res := Attach(sink, Options{K: 4, FlagCap: 2})
	res.SetSnap(func(done sim.Time, s *DevSnap) { s.GCRuns = 1 })
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		at := sim.Time(i) * sim.Microsecond
		i++
		sink.BeginTenant(telemetry.OpRead, telemetry.TenantID(i%2), at)
		sink.Charge(telemetry.PhaseNANDRead, sim.Time(60+i%40)*sim.Microsecond)
		if i%3 == 0 {
			sink.FlagIO(telemetry.FlagFaultRetry)
		}
		sink.End(at + sim.Time(60+i%40)*sim.Microsecond)
	})
	if allocs != 0 {
		t.Fatalf("enabled exemplar capture allocates %.1f allocs/op, want 0", allocs)
	}
}
