// Deterministic replay-to-IO forensics: a Narrator armed on one measured-IO
// sequence number rides the same AttrSink hooks as the reservoir, records
// the target IO's full charge stream event by event, and renders an
// annotated tick-by-tick narrative — what the IO waited on, who held the
// resource, which counterfactual from the what-if engine would have helped
// most. Because the simulator is deterministic, re-running the seeded
// experiment reproduces the narrative byte-for-byte (`make explain-campaign`
// pins this).

package exemplar

import (
	"fmt"
	"strings"

	"blockhead/internal/sim"
	"blockhead/internal/telemetry"
	"blockhead/internal/telemetry/critpath"
)

// event kinds recorded by the narrator, in PathSink vocabulary.
const (
	evSegment uint8 = iota
	evWait
	evOverlap
	evReassign
	evRefund
)

// event is one recorded charge of the target IO's lifetime.
type event struct {
	kind    uint8
	p       telemetry.Phase
	to      telemetry.Phase // reassign target; wait bind
	culprit telemetry.TenantID
	d       sim.Time
}

// narratorEventCap bounds the per-IO event buffer. A single IO sees a few
// dozen events at most (a stripe-wide reset fans out one overlap per page
// program); overflow is counted and disclosed, never silently dropped.
const narratorEventCap = 4096

// Narrator implements telemetry.PathSink and telemetry.ExemplarSink at
// once: the ExemplarSink hooks tell it which record is the target, the
// PathSink hooks feed it the target's charge stream. It forwards the
// target's stream to a private critpath recorder so the final narrative
// can replay the recorded path under the canonical what-if scenarios. The
// nil *Narrator is a valid no-op on every method, and no hot-path method
// allocates (the event buffer is preallocated).
//
//simlint:nilsafe
type Narrator struct {
	target uint64
	rec    *critpath.Recorder

	recording bool
	done      bool
	dropped   bool

	events []event
	lost   int

	// completion capture
	op         telemetry.OpKind
	tenant     telemetry.TenantID
	start, end sim.Time
	phases     [telemetry.NumPhases]sim.Time
	blame      [telemetry.MaxTenants]sim.Time
	flags      uint8
	path       critpath.PathRec
	pathOK     bool
	snap       DevSnap

	// stack context, re-armed per stack (Arm): the display name, the
	// replay model for what-if ranking, the device snapshot source, and
	// the tenant labeler.
	stack  string
	opts   critpath.PredictOpts
	snapFn SnapFunc
	name   func(telemetry.TenantID) string
}

// NewNarrator returns a narrator armed on one measured-IO sequence number.
func NewNarrator(target uint64) *Narrator {
	return &Narrator{
		target: target,
		rec:    critpath.New(critpath.Options{SampleCap: 1}),
		events: make([]event, 0, narratorEventCap),
	}
}

// Arm sets the stack context the narrative renders under: the stack's
// display name, the what-if replay model, the device snapshot source, and
// the tenant labeler. Experiments re-arm per stack; the values captured at
// the target's completion win. Nil-safe.
func (n *Narrator) Arm(stack string, opts critpath.PredictOpts, snap SnapFunc, name func(telemetry.TenantID) string) {
	if n == nil || n.done {
		return
	}
	n.stack = stack
	n.opts = opts
	n.snapFn = snap
	n.name = name
}

// Done reports whether the target IO completed (or was dropped).
func (n *Narrator) Done() bool { return n != nil && n.done }

// BeginExemplar arms recording when seq is the target (telemetry.ExemplarSink).
func (n *Narrator) BeginExemplar(seq uint64, op telemetry.OpKind, tenant telemetry.TenantID, start sim.Time) {
	if n == nil || n.done {
		return
	}
	if seq != n.target {
		n.recording = false
		return
	}
	n.recording = true
	n.op = op
	n.tenant = tenant
	n.start = start
}

// EndExemplar captures the target's completion state (telemetry.ExemplarSink).
func (n *Narrator) EndExemplar(done sim.Time, phases *[telemetry.NumPhases]sim.Time, blame *[telemetry.MaxTenants]sim.Time, flags uint8) {
	if n == nil || !n.recording {
		return
	}
	n.recording = false
	n.done = true
	n.end = done
	n.phases = *phases
	n.blame = *blame
	n.flags = flags
	if rec, ok := n.rec.Last(); ok {
		n.path = rec
		n.pathOK = true
	}
	if n.snapFn != nil {
		n.snapFn(done, &n.snap)
		n.snap.Captured = true
	}
}

// DropExemplar marks a dropped (failed) target (telemetry.ExemplarSink).
func (n *Narrator) DropExemplar() {
	if n == nil || !n.recording {
		return
	}
	n.recording = false
	n.done = true
	n.dropped = true
}

// record appends one event of the target's stream.
func (n *Narrator) record(ev event) {
	if len(n.events) < cap(n.events) {
		n.events = append(n.events, ev)
	} else {
		n.lost++
	}
}

// BeginPath forwards the target's open to the private recorder
// (telemetry.PathSink).
func (n *Narrator) BeginPath(op telemetry.OpKind, tenant telemetry.TenantID, start sim.Time) {
	if n == nil || !n.recording {
		return
	}
	n.rec.BeginPath(op, tenant, start)
}

// Segment records an on-path charge (telemetry.PathSink).
func (n *Narrator) Segment(p telemetry.Phase, d sim.Time) {
	if n == nil || !n.recording {
		return
	}
	n.record(event{kind: evSegment, p: p, d: d})
	n.rec.Segment(p, d)
}

// WaitSegment records an on-path wait with its culprit and bind
// (telemetry.PathSink).
func (n *Narrator) WaitSegment(p telemetry.Phase, d sim.Time, culprit telemetry.TenantID, bind telemetry.Phase) {
	if n == nil || !n.recording {
		return
	}
	n.record(event{kind: evWait, p: p, to: bind, culprit: culprit, d: d})
	n.rec.WaitSegment(p, d, culprit, bind)
}

// Overlap records an off-path (concurrent) charge (telemetry.PathSink).
func (n *Narrator) Overlap(p telemetry.Phase, d sim.Time) {
	if n == nil || !n.recording {
		return
	}
	n.record(event{kind: evOverlap, p: p, d: d})
	n.rec.Overlap(p, d)
}

// Reassign records a phase relabel (telemetry.PathSink).
func (n *Narrator) Reassign(from, to telemetry.Phase, d sim.Time) {
	if n == nil || !n.recording {
		return
	}
	n.record(event{kind: evReassign, p: from, to: to, d: d})
	n.rec.Reassign(from, to, d)
}

// Refund records an early-ack refund (telemetry.PathSink).
func (n *Narrator) Refund(p telemetry.Phase, d sim.Time) {
	if n == nil || !n.recording {
		return
	}
	n.record(event{kind: evRefund, p: p, d: d})
	n.rec.Refund(p, d)
}

// EndPath forwards the target's completion to the private recorder
// (telemetry.PathSink). The completion capture itself happens in
// EndExemplar, which the AttrSink fires right after.
func (n *Narrator) EndPath(done sim.Time) {
	if n == nil || !n.recording {
		return
	}
	n.rec.EndPath(done)
}

// DropPath abandons the private recorder's open record (telemetry.PathSink).
func (n *Narrator) DropPath() {
	if n == nil || !n.recording {
		return
	}
	n.rec.DropPath()
}

func (n *Narrator) label(t telemetry.TenantID) string {
	return tenantLabel(t, n.name)
}

// Transcript renders the annotated tick-by-tick narrative. Deterministic:
// it reads only virtual-time state, so the same seed and experiment
// reproduce it byte-for-byte. Call after Done reports true.
func (n *Narrator) Transcript(experiment string, seed int64) string {
	if n == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "=== explain %s:%d (seed %d) ===\n", experiment, n.target, seed)
	if !n.done {
		fmt.Fprintf(&b, "io seq=%d never completed in this run (fewer measured IOs than the requested sequence number)\n", n.target)
		return b.String()
	}
	if n.dropped {
		fmt.Fprintf(&b, "io: %s seq=%d tenant=%s issued t=%.3fms — dropped (the IO failed partway; no charges to narrate)\n",
			n.op.String(), n.target, n.label(n.tenant), n.start.Millis())
		return b.String()
	}
	total := n.end - n.start
	fmt.Fprintf(&b, "io: %s seq=%d tenant=%s issued t=%.3fms completed t=%.3fms total=%.1fus\n",
		n.op.String(), n.target, n.label(n.tenant), n.start.Millis(), n.end.Millis(), total.Micros())
	if n.stack != "" {
		fmt.Fprintf(&b, "stack: %s\n", n.stack)
	}
	if names := (Exemplar{Flags: n.flags}).FlagNames(); len(names) > 0 {
		fmt.Fprintf(&b, "flags: %s\n", strings.Join(names, ","))
	}

	n.timeline(&b)
	n.phaseTotals(&b, total)
	n.blameLines(&b)
	if n.snap.Captured {
		fmt.Fprintf(&b, "device state at completion: %s\n", n.snap.String())
	}
	n.whatIf(&b, total)
	return b.String()
}

// timeline renders the event stream as a virtual-time walk: each on-path
// charge advances the cursor; overlapped work prints beneath the composite
// that hid it; relabels and refunds print as annotations.
func (n *Narrator) timeline(b *strings.Builder) {
	fmt.Fprintf(b, "timeline (offsets relative to issue):\n")
	var cursor sim.Time
	pendingOverlap := false
	for _, ev := range n.events {
		switch ev.kind {
		case evSegment:
			fmt.Fprintf(b, "  +%-11s %-12s %10.1fus\n", usOffset(cursor), ev.p.String(), ev.d.Micros())
			cursor += ev.d
			pendingOverlap = false
		case evWait:
			who := "unknown occupant"
			if ev.to >= 0 {
				if ev.culprit >= 0 {
					who = fmt.Sprintf("queued behind %s's %s", n.label(ev.culprit), ev.to.String())
				} else {
					who = fmt.Sprintf("queued behind own %s", ev.to.String())
				}
			} else if ev.culprit >= 0 {
				who = fmt.Sprintf("queued behind %s (pre-history)", n.label(ev.culprit))
			}
			fmt.Fprintf(b, "  +%-11s %-12s %10.1fus  %s\n", usOffset(cursor), ev.p.String(), ev.d.Micros(), who)
			cursor += ev.d
			pendingOverlap = false
		case evOverlap:
			if !pendingOverlap {
				fmt.Fprintf(b, "    (concurrent device work hidden under the next composite stall:)\n")
				pendingOverlap = true
			}
			fmt.Fprintf(b, "      ~ %-12s %10.1fus (off-path)\n", ev.p.String(), ev.d.Micros())
		case evReassign:
			fmt.Fprintf(b, "    note: reclassified %.1fus %s -> %s\n", ev.d.Micros(), ev.p.String(), ev.to.String())
		case evRefund:
			fmt.Fprintf(b, "    note: refunded %.1fus of %s (early ack: host saw completion before the device finished)\n",
				ev.d.Micros(), ev.p.String())
			cursor -= ev.d
		}
	}
	if n.lost > 0 {
		fmt.Fprintf(b, "  (%d further events beyond the %d-event buffer not shown; totals below remain exact)\n",
			n.lost, narratorEventCap)
	}
}

// phaseTotals renders the exact per-phase decomposition and its sum check.
func (n *Narrator) phaseTotals(b *strings.Builder, total sim.Time) {
	var sum sim.Time
	var parts []string
	for p := 0; p < telemetry.NumPhases; p++ {
		sum += n.phases[p]
		if n.phases[p] != 0 {
			parts = append(parts, fmt.Sprintf("%s %.1fus", telemetry.Phase(p).String(), n.phases[p].Micros()))
		}
	}
	verdict := "exact"
	if sum != total {
		verdict = fmt.Sprintf("BROKEN: phases sum to %.1fus", sum.Micros())
	}
	fmt.Fprintf(b, "phase totals: %s | total %.1fus (sum==end-to-end: %s)\n",
		strings.Join(parts, "; "), total.Micros(), verdict)
}

// blameLines renders the culprit-tenant blame vector.
func (n *Narrator) blameLines(b *strings.Builder) {
	var parts []string
	for t := 0; t < telemetry.MaxTenants; t++ {
		if n.blame[t] != 0 {
			parts = append(parts, fmt.Sprintf("%s %.1fus", n.label(telemetry.TenantID(t)), n.blame[t].Micros()))
		}
	}
	if len(parts) > 0 {
		fmt.Fprintf(b, "blame: %s\n", strings.Join(parts, ", "))
	}
}

// whatIf replays the recorded critical path under the canonical scenarios
// and names the one that would have helped this IO most.
func (n *Narrator) whatIf(b *strings.Builder, total sim.Time) {
	if !n.pathOK || total <= 0 {
		return
	}
	fmt.Fprintf(b, "what-if (counterfactual replay of this IO's critical path):\n")
	bestIdx, bestNs := -1, float64(total)
	scenarios := critpath.Canonical()
	for i, sc := range scenarios {
		pred := critpath.Replay(&n.path, sc, n.opts)
		ratio := pred / float64(total)
		fmt.Fprintf(b, "  %-18s -> %10.1fus (x%.2f)\n", sc.Name, pred/1e3, ratio)
		if pred < bestNs {
			bestNs = pred
			bestIdx = i
		}
	}
	if bestIdx >= 0 {
		fmt.Fprintf(b, "verdict: %s helps most: predicted %.1fus instead of %.1fus (saves %.1fus)\n",
			scenarios[bestIdx].Name, bestNs/1e3, total.Micros(), total.Micros()-bestNs/1e3)
	} else {
		fmt.Fprintf(b, "verdict: no canonical counterfactual improves this IO\n")
	}
}

// usOffset renders a virtual-time offset as a fixed-width microsecond
// string.
func usOffset(t sim.Time) string {
	return fmt.Sprintf("%.1fus", t.Micros())
}
