package exemplar

import (
	"testing"

	"blockhead/internal/sim"
	"blockhead/internal/telemetry"
)

// record drives one complete measured IO through an attached sink with a
// single known-duration phase, so its end-to-end latency is exact by
// construction.
func record(sink *telemetry.AttrSink, tenant telemetry.TenantID, us int, flag uint8) {
	d := sim.Time(us) * sim.Microsecond
	sink.BeginTenant(telemetry.OpRead, tenant, 0)
	sink.Charge(telemetry.PhaseNANDRead, d)
	if flag != 0 {
		sink.FlagIO(flag)
	}
	sink.End(d)
}

// TestWorstKAdmission pins the reservoir policy: each tenant keeps its K
// highest-latency IOs, the snapshot orders them worst-first, and the
// least-worst retained exemplar is the one evicted when a slower IO
// arrives.
func TestWorstKAdmission(t *testing.T) {
	sink := telemetry.NewAttrSink()
	res := Attach(sink, Options{K: 2, FlagCap: 4})
	for _, us := range []int{10, 50, 20, 40, 30} {
		record(sink, 0, us, 0)
	}
	s := res.Snapshot()
	if s.IOs != 5 || s.Captured() != 2 {
		t.Fatalf("ios=%d captured=%d, want 5 measured, 2 retained", s.IOs, s.Captured())
	}
	top := s.TopK(0)
	if len(top) != 2 || top[0].Total != 50*sim.Microsecond || top[1].Total != 40*sim.Microsecond {
		t.Fatalf("worst-2 = %v, want [50us 40us]", top)
	}
	if sum := top[0].Phases[telemetry.PhaseNANDRead]; sum != top[0].Total {
		t.Fatalf("phase timeline %v != end-to-end %v", sum, top[0].Total)
	}
}

// TestTieBreakPrefersEarlierIO pins the deterministic tie order: equal
// latencies rank by ascending sequence number, so reports and goldens
// cannot flap between equally slow IOs.
func TestTieBreakPrefersEarlierIO(t *testing.T) {
	sink := telemetry.NewAttrSink()
	res := Attach(sink, Options{K: 2})
	for i := 0; i < 4; i++ {
		record(sink, 0, 25, 0) // seqs 1..4, all 25us
	}
	top := res.Snapshot().TopK(0)
	if len(top) != 2 || top[0].Seq != 1 || top[1].Seq != 2 {
		t.Fatalf("tied worst-2 seqs = %d,%d, want 1,2", top[0].Seq, top[1].Seq)
	}
}

// TestTenantsIsolated pins per-tenant reservoirs: one tenant's slow IOs
// cannot evict another tenant's worst-K.
func TestTenantsIsolated(t *testing.T) {
	sink := telemetry.NewAttrSink()
	res := Attach(sink, Options{K: 1})
	record(sink, 0, 10, 0)
	record(sink, 1, 1000, 0)
	record(sink, 1, 2000, 0)
	s := res.Snapshot()
	if len(s.Tenants[0]) != 1 || s.Tenants[0][0].Total != 10*sim.Microsecond {
		t.Fatalf("tenant 0 lost its exemplar to tenant 1: %v", s.Tenants[0])
	}
	if len(s.Tenants[1]) != 1 || s.Tenants[1][0].Total != 2000*sim.Microsecond {
		t.Fatalf("tenant 1 worst = %v, want 2000us", s.Tenants[1])
	}
}

// TestFlaggedRingAlwaysKeeps pins the always-keep ring: flagged IOs are
// retained regardless of latency, FlagSeen counts every flagged IO even
// after the ring wraps, and the ring keeps the newest entries.
func TestFlaggedRingAlwaysKeeps(t *testing.T) {
	sink := telemetry.NewAttrSink()
	res := Attach(sink, Options{K: 1, FlagCap: 2})
	record(sink, 0, 9999, 0)                         // seq 1: slowest, unflagged
	record(sink, 0, 1, telemetry.FlagFaultRetry)     // seq 2: fast but flagged
	record(sink, 0, 2, telemetry.FlagAuditViolation) // seq 3
	record(sink, 0, 3, telemetry.FlagAuditViolation) // seq 4: wraps the ring
	s := res.Snapshot()
	if s.FlagSeen != 3 {
		t.Fatalf("FlagSeen = %d, want 3", s.FlagSeen)
	}
	if len(s.Flagged) != 2 || s.Flagged[0].Seq != 3 || s.Flagged[1].Seq != 4 {
		t.Fatalf("flagged ring = %+v, want seqs 3,4 (oldest overwritten)", s.Flagged)
	}
	if top := s.TopK(0); len(top) != 1 || top[0].Seq != 1 {
		t.Fatalf("worst-K = %+v, want only seq 1", top)
	}
}

// TestDrainResetsWindow pins the per-stack windowing contract: Drain
// returns everything since the previous Drain, resets the reservoir, and
// LastDrained keeps serving the last completed window.
func TestDrainResetsWindow(t *testing.T) {
	sink := telemetry.NewAttrSink()
	res := Attach(sink, Options{K: 2})
	record(sink, 0, 100, telemetry.FlagFaultRetry)
	first := res.Drain()
	if first.IOs != 1 || first.Captured() != 1 || len(first.Flagged) != 1 {
		t.Fatalf("first window = %+v, want 1 IO, 1 retained, 1 flagged", first)
	}
	if s := res.Snapshot(); s.IOs != 0 || s.Captured() != 0 || len(s.Flagged) != 0 {
		t.Fatalf("reservoir not reset by Drain: %+v", s)
	}
	if ld := res.LastDrained(); ld.IOs != 1 || ld.Captured() != 1 {
		t.Fatalf("LastDrained = %+v, want the first window", ld)
	}
	record(sink, 0, 7, 0)
	second := res.Drain()
	if second.IOs != 1 || second.TopK(0)[0].Total != 7*sim.Microsecond {
		t.Fatalf("second window = %+v, want just the 7us IO", second)
	}
}

// TestDumpPhaseSumsExact pins the wire-format invariant: every dumped
// exemplar's phase microseconds sum exactly to its total.
func TestDumpPhaseSumsExact(t *testing.T) {
	sink := telemetry.NewAttrSink()
	res := Attach(sink, Options{K: 4})
	sink.BeginTenant(telemetry.OpWrite, 1, 0)
	sink.Charge(telemetry.PhaseChanWait, 3*sim.Microsecond)
	sink.Charge(telemetry.PhaseXfer, 7*sim.Microsecond)
	sink.Charge(telemetry.PhaseNANDProgram, 690*sim.Microsecond)
	sink.End(700 * sim.Microsecond)
	d := res.Snapshot().Dump(nil)
	if d.Schema != DumpSchema || len(d.Worst) != 1 {
		t.Fatalf("dump = %+v", d)
	}
	var sum float64
	for _, p := range d.Worst[0].Phases {
		sum += p.Us
	}
	if sum != d.Worst[0].TotalUs {
		t.Fatalf("dumped phases sum to %.3fus, total is %.3fus", sum, d.Worst[0].TotalUs)
	}
}
