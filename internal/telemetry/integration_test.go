// Integration: attach one probe across a conventional FTL run and a ZNS
// run (the way cmd/znsbench shares a probe across experiments), then parse
// the Chrome trace export and the metrics dump the way a trace viewer
// would. Lives in an external test package because the device models import
// telemetry.
package telemetry_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"blockhead/internal/flash"
	"blockhead/internal/ftl"
	"blockhead/internal/sim"
	"blockhead/internal/telemetry"
	"blockhead/internal/workload"
	"blockhead/internal/zns"
)

func runProbedWorkloads(t *testing.T) *telemetry.Probe {
	t.Helper()
	probe := telemetry.NewProbe(telemetry.Options{
		SampleEvery: 50 * sim.Microsecond,
		TraceEvents: 1 << 14,
	})

	// Conventional FTL: fill, then churn enough to force garbage collection,
	// so ftl/write_amp climbs above 1 and GC spans appear.
	fdev, err := ftl.New(ftl.Config{
		Geom: flash.Geometry{Channels: 2, DiesPerChan: 2, PlanesPerDie: 1,
			BlocksPerLUN: 16, PagesPerBlock: 32, PageSize: 4096},
		Lat:             flash.LatenciesFor(flash.TLC),
		ReserveFraction: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	fdev.SetProbe(probe)
	var at sim.Time
	for lpn := int64(0); lpn < fdev.CapacityPages(); lpn++ {
		if at, err = fdev.WritePage(at, lpn, nil); err != nil {
			t.Fatal(err)
		}
	}
	keys := workload.NewUniform(workload.NewSource(1), fdev.CapacityPages())
	for i := int64(0); i < 2*fdev.CapacityPages(); i++ {
		if at, err = fdev.WritePage(at, keys.Next(), nil); err != nil {
			t.Fatal(err)
		}
	}

	// ZNS device on its own timeline (virtual time restarts at 0, as between
	// znsbench experiments): open, append, finish, and reset several zones so
	// per-zone tracks and the active-zone series get data.
	zdev, err := zns.New(zns.Config{
		Geom: flash.Geometry{Channels: 4, DiesPerChan: 1, PlanesPerDie: 1,
			BlocksPerLUN: 4, PagesPerBlock: 32, PageSize: 4096},
		Lat:        flash.LatenciesFor(flash.TLC),
		ZoneBlocks: 1,
		MaxActive:  8,
	})
	if err != nil {
		t.Fatal(err)
	}
	zdev.SetProbe(probe)
	var zat sim.Time
	for z := 0; z < 4; z++ {
		if err := zdev.Open(zat, z); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 8; i++ {
			_, done, err := zdev.Append(zat, z, nil)
			if err != nil {
				t.Fatal(err)
			}
			zat = done
		}
		if err := zdev.Finish(zat, z); err != nil {
			t.Fatal(err)
		}
	}
	if done, err := zdev.Reset(zat, 0); err != nil {
		t.Fatal(err)
	} else {
		zat = done
	}
	return probe
}

// chromeDoc is the viewer-side shape of the export.
type chromeDoc struct {
	TraceEvents []struct {
		Name string                 `json:"name"`
		Ph   string                 `json:"ph"`
		PID  int32                  `json:"pid"`
		TID  int32                  `json:"tid"`
		TS   float64                `json:"ts"`
		Dur  float64                `json:"dur"`
		S    string                 `json:"s"`
		Args map[string]interface{} `json:"args"`
	} `json:"traceEvents"`
}

func TestChromeTraceHasPerUnitTracks(t *testing.T) {
	probe := runProbedWorkloads(t)
	var buf bytes.Buffer
	if err := probe.Trace.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace export is not valid JSON: %v", err)
	}

	procNames := map[int32]string{}
	tracks := map[int32]map[int32]bool{} // pid -> set of tids with real events
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			if e.Name == "process_name" {
				procNames[e.PID] = e.Args["name"].(string)
			}
		case "X", "i":
			if tracks[e.PID] == nil {
				tracks[e.PID] = map[int32]bool{}
			}
			tracks[e.PID][e.TID] = true
			if e.Ph == "X" && e.Dur < 0 {
				t.Errorf("span with negative duration: %+v", e)
			}
			if e.Ph == "i" && e.S != "t" {
				t.Errorf("instant without scope: %+v", e)
			}
		}
	}

	for _, pid := range []int32{telemetry.ProcFlashChan, telemetry.ProcFlashLUN,
		telemetry.ProcFTL, telemetry.ProcZone} {
		if procNames[pid] == "" {
			t.Errorf("process %d has no process_name metadata", pid)
		}
	}
	// Per-channel and per-die (LUN) tracks: the FTL geometry has 2 channels
	// and 4 LUNs, the ZNS geometry 4 channels; multiple distinct tids must
	// carry events.
	if len(tracks[telemetry.ProcFlashChan]) < 2 {
		t.Errorf("want >=2 channel tracks, got %d", len(tracks[telemetry.ProcFlashChan]))
	}
	if len(tracks[telemetry.ProcFlashLUN]) < 2 {
		t.Errorf("want >=2 LUN (die) tracks, got %d", len(tracks[telemetry.ProcFlashLUN]))
	}
	// Per-zone tracks: we touched 4 zones.
	if len(tracks[telemetry.ProcZone]) < 4 {
		t.Errorf("want >=4 zone tracks, got %d", len(tracks[telemetry.ProcZone]))
	}
	// The churn phase over a 10%-reserve device must show GC activity.
	if len(tracks[telemetry.ProcFTL]) == 0 {
		t.Error("no FTL GC events in trace")
	}
}

func TestMetricsDumpHasTimeSeries(t *testing.T) {
	probe := runProbedWorkloads(t)
	var buf bytes.Buffer
	if err := probe.Metrics.WriteJSON(&buf, sim.Second); err != nil {
		t.Fatal(err)
	}
	var d telemetry.MetricsDump
	if err := json.Unmarshal(buf.Bytes(), &d); err != nil {
		t.Fatalf("metrics dump is not valid JSON: %v", err)
	}

	series := map[string]int{}
	for _, s := range d.Series {
		series[s.Name] = len(s.Samples)
	}
	// The two curves the paper's argument turns on.
	if series["ftl/write_amp"] < 2 {
		t.Errorf("ftl/write_amp series has %d samples, want >=2", series["ftl/write_amp"])
	}
	if series["zns/active_zones"] < 2 {
		t.Errorf("zns/active_zones series has %d samples, want >=2", series["zns/active_zones"])
	}

	if d.Counters["flash/program_pages"] == 0 {
		t.Error("flash/program_pages counter is zero")
	}
	if d.Counters["ftl/gc/copy_pages"] == 0 {
		t.Error("churn over a 10%-reserve FTL did no GC copies")
	}
	if d.Counters["zns/zone/resets"] != 1 {
		t.Errorf("zns/zone/resets = %d, want 1", d.Counters["zns/zone/resets"])
	}
	if got := d.Counters["zns/zone/state_transitions{to=full}"]; got != 4 {
		t.Errorf("transitions to full = %d, want 4 (finished zones)", got)
	}
	if d.Gauges["ftl/write_amp"] <= 1.0 {
		t.Errorf("final ftl/write_amp = %v, want > 1 after churn", d.Gauges["ftl/write_amp"])
	}
}
