package telemetry

import (
	"testing"

	"blockhead/internal/sim"
)

// The package's core contract: with no probe attached, every instrument is
// a nil handle and the hot path must not allocate. This is what lets the
// device models call telemetry unconditionally on every simulated I/O.
func BenchmarkProbeDisabled(b *testing.B) {
	var (
		c  *Counter
		h  *Hist
		tr *Tracer
		r  *Registry
		p  *Probe
		a  *AttrSink
		fl *Flight
	)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		at := sim.Time(i)
		c.Inc()
		c.Add(4)
		h.Observe(at)
		tr.Span(ProcFlashLUN, 3, "flash", "read", at, at+40*sim.Microsecond)
		tr.InstantArg(ProcZone, 9, "zone", "->open", at, "zone", 9)
		r.Tick(at)
		p.Tick(at)
		a.Begin(OpRead, at)
		a.Charge(PhaseNANDRead, 40*sim.Microsecond)
		a.Suspend()
		a.Resume()
		a.End(at + 40*sim.Microsecond)
		a.BeginTenant(OpRead, 2, at)
		a.ChargeBlamed(PhaseLUNWait, 10*sim.Microsecond, 3)
		a.PushWorker(1)
		_ = a.Worker()
		a.PopWorker()
		a.End(at + 50*sim.Microsecond)
		fl.Record(at, FlightTransition, 3, "empty->open", 0)
		fl.Violation(at, FlightAuditViolation, 3, "illegal", 0)
		if p.Flight() != nil || p.Heat() != nil {
			b.Fatal("nil probe must resolve nil handles")
		}
	}
}

// The windowed-SLO layer follows the same contract: a nil WindowSet and a
// nil SLOEngine are valid no-ops, so stacks that never configure SLOs pay
// nothing per IO.
func BenchmarkProbeDisabledSLO(b *testing.B) {
	var (
		w *WindowSet
		e *SLOEngine
	)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		at := sim.Time(i)
		w.Observe(2, OpRead, at, 40*sim.Microsecond)
		_ = w.Width()
		_ = w.Late()
		e.Add(SLO{Tenant: 2, Op: OpRead})
		_ = e.Objectives()
		if e.Evaluate() != nil {
			b.Fatal("nil engine must evaluate to nil")
		}
	}
}

// The enabled WindowSet path: Observe into the preallocated ring is
// allocation-free too, so windowed tail tracking can stay on for every
// tenant-tagged IO.
func BenchmarkWindowObserveEnabled(b *testing.B) {
	w := NewWindowSet(WindowCfg{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at := sim.Time(i) * sim.Microsecond
		w.Observe(2, OpRead, at, 40*sim.Microsecond)
	}
}

// The enabled path for comparison: counters and spans on a live probe.
// Spans into a pre-sized ring are allocation-free too; only gauge samples
// (append into a series) amortize allocations.
func BenchmarkProbeEnabled(b *testing.B) {
	p := NewProbe(Options{TraceEvents: 1 << 10})
	c := p.Metrics.Counter("bench/ops")
	h := p.Metrics.Histogram("bench/lat")
	tr := p.Trace
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at := sim.Time(i)
		c.Inc()
		c.Add(4)
		h.Observe(at)
		tr.Span(ProcFlashLUN, 3, "flash", "read", at, at+40*sim.Microsecond)
		tr.InstantArg(ProcZone, 9, "zone", "->open", at, "zone", 9)
		p.Tick(at)
	}
}

// TestDisabledPathZeroAllocs pins the benchmark's claim in a normal test
// run, so `go test` alone catches a regression.
func TestDisabledPathZeroAllocs(t *testing.T) {
	var (
		c  *Counter
		tr *Tracer
		r  *Registry
		a  *AttrSink
		fl *Flight
		p  *Probe
		w  *WindowSet
		e  *SLOEngine
	)
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		tr.Span(ProcFTL, 0, "ftl", "gc", 0, sim.Millisecond)
		tr.Instant(ProcZone, 1, "zone", "->open", 0)
		r.Tick(sim.Second)
		a.Begin(OpWrite, 0)
		a.Charge(PhaseGCStall, sim.Millisecond)
		a.End(sim.Millisecond)
		a.BeginTenant(OpRead, 1, 0)
		a.ChargeBlamed(PhaseZoneReset, sim.Millisecond, 3)
		a.PushWorker(2)
		_ = a.Worker()
		a.PopWorker()
		a.SetTenantName(1, "web")
		a.End(sim.Millisecond)
		w.Observe(1, OpRead, sim.Millisecond, sim.Microsecond)
		w.Reset()
		e.Add(SLO{Tenant: 1, Op: OpRead})
		_ = e.Evaluate()
		fl.Record(0, FlightErase, 7, "worn_out", 3)
		fl.Violation(0, FlightAttrViolation, -1, "attribution_invariant", 0)
		_ = p.Flight()
		_ = p.Heat()
	})
	if allocs != 0 {
		t.Fatalf("disabled path allocates %.1f allocs/op, want 0", allocs)
	}
}
