package telemetry

import (
	"encoding/json"
	"testing"

	"blockhead/internal/sim"
)

func TestAttrSinkNilSafe(t *testing.T) {
	var s *AttrSink
	s.Begin(OpWrite, 0)
	s.Charge(PhaseGCStall, sim.Millisecond)
	s.Reclassify(PhaseLUNWait, PhaseWPSerial, sim.Microsecond)
	s.Suspend()
	s.Resume()
	s.End(sim.Second)
	s.Drop()
	if s.Active() || s.Violations() != 0 || s.Value(PhaseGCStall) != 0 {
		t.Fatal("nil sink must report zero state")
	}
	if got := s.Snapshot(); got.Ops[OpWrite].Count != 0 {
		t.Fatal("nil sink snapshot must be empty")
	}
	if d := s.Dump(); len(d.Ops) != 0 {
		t.Fatal("nil sink dump must be empty")
	}
}

func TestAttrSumInvariant(t *testing.T) {
	s := NewAttrSink()
	var seen int
	s.OnComplete = func(op OpKind, total sim.Time, phases [NumPhases]sim.Time) {
		seen++
		var sum sim.Time
		for _, d := range phases {
			sum += d
		}
		if sum != total {
			t.Fatalf("phases sum %v != total %v", sum, total)
		}
	}
	s.Begin(OpWrite, 100)
	s.Charge(PhaseGCStall, 40)
	s.Charge(PhaseNANDProgram, 60)
	s.End(200)
	if seen != 1 {
		t.Fatalf("OnComplete saw %d records, want 1", seen)
	}
	if v := s.Violations(); v != 0 {
		t.Fatalf("violations = %d, want 0", v)
	}
	a := s.Op(OpWrite)
	if a.Count != 1 || a.TotalSum != 100 || a.PhaseSum[PhaseGCStall] != 40 {
		t.Fatalf("bad aggregate: %+v", a)
	}

	// A record that does not cover the total must count as a violation.
	s.OnComplete = nil
	s.Begin(OpRead, 0)
	s.Charge(PhaseNANDRead, 10)
	s.End(50) // 40 ticks unattributed
	if v := s.Violations(); v != 1 {
		t.Fatalf("violations = %d, want 1", v)
	}
}

func TestAttrChargeOutsideRecord(t *testing.T) {
	s := NewAttrSink()
	s.Charge(PhaseGCStall, sim.Second) // no Begin: prefill-style traffic
	s.Begin(OpWrite, 0)
	s.End(0)
	if got := s.Op(OpWrite).PhaseSum[PhaseGCStall]; got != 0 {
		t.Fatalf("charge outside a record leaked: %v", got)
	}
	if s.Violations() != 0 {
		t.Fatalf("zero-latency op is not a violation")
	}
}

func TestAttrSuspendResume(t *testing.T) {
	s := NewAttrSink()
	s.Begin(OpWrite, 0)
	s.Suspend()
	s.Suspend()
	s.Charge(PhaseNANDProgram, 100) // suppressed (fan-out work)
	s.Resume()
	s.Charge(PhaseNANDProgram, 100) // still suppressed: one level left
	s.Resume()
	s.Charge(PhaseGCStall, 70)
	s.End(70)
	if v := s.Violations(); v != 0 {
		t.Fatalf("violations = %d, want 0", v)
	}
	if got := s.Op(OpWrite).PhaseSum[PhaseNANDProgram]; got != 0 {
		t.Fatalf("suspended charges leaked: %v", got)
	}
}

func TestAttrReclassifyClamps(t *testing.T) {
	s := NewAttrSink()
	s.Begin(OpWrite, 0)
	s.Charge(PhaseLUNWait, 30)
	s.Reclassify(PhaseLUNWait, PhaseWPSerial, 100) // more than charged
	if got := s.Value(PhaseWPSerial); got != 30 {
		t.Fatalf("reclassified %v, want clamp to 30", got)
	}
	if got := s.Value(PhaseLUNWait); got != 0 {
		t.Fatalf("lun_wait left %v, want 0", got)
	}
	s.End(30)
	if s.Violations() != 0 {
		t.Fatal("reclassify must preserve the sum")
	}
}

func TestAttrBeginOverOpenRecord(t *testing.T) {
	s := NewAttrSink()
	s.Begin(OpWrite, 0)
	s.Begin(OpRead, 10) // driver bug: previous record neither ended nor dropped
	s.End(10)
	if s.Violations() != 1 {
		t.Fatalf("violations = %d, want 1", s.Violations())
	}
}

func TestAttrSnapshotDelta(t *testing.T) {
	s := NewAttrSink()
	record := func(total sim.Time) {
		s.Begin(OpRead, 0)
		s.Charge(PhaseNANDRead, total)
		s.End(total)
	}
	record(10)
	record(20)
	before := s.Snapshot()
	record(40)
	d := s.Snapshot().Delta(before)
	if d.Ops[OpRead].Count != 1 || d.Ops[OpRead].TotalSum != 40 {
		t.Fatalf("delta = %+v, want 1 op totaling 40", d.Ops[OpRead])
	}
	if d.Ops[OpRead].Total.Count() != 1 {
		t.Fatalf("delta histogram count = %d, want 1", d.Ops[OpRead].Total.Count())
	}
}

func TestAttrDumpShape(t *testing.T) {
	s := NewAttrSink()
	s.Begin(OpWrite, 0)
	s.Charge(PhaseGCStall, 3*sim.Millisecond)
	s.Charge(PhaseNANDProgram, 700*sim.Microsecond)
	s.End(3*sim.Millisecond + 700*sim.Microsecond)
	raw, err := json.Marshal(s.Dump())
	if err != nil {
		t.Fatal(err)
	}
	var d AttrDump
	if err := json.Unmarshal(raw, &d); err != nil {
		t.Fatal(err)
	}
	od, ok := d.Ops["write"]
	if !ok {
		t.Fatalf("dump missing write op: %s", raw)
	}
	if od.Count != 1 || len(od.Phases) != 2 {
		t.Fatalf("dump = %+v, want 1 op with 2 phases", od)
	}
	var frac float64
	for _, ph := range od.Phases {
		frac += ph.Frac
	}
	if frac < 0.999 || frac > 1.001 {
		t.Fatalf("phase fractions sum to %v, want 1", frac)
	}
}

// The attribution hot path must not allocate, enabled or disabled.
func TestAttrZeroAllocs(t *testing.T) {
	var nilSink *AttrSink
	if allocs := testing.AllocsPerRun(1000, func() {
		nilSink.Begin(OpWrite, 0)
		nilSink.Charge(PhaseGCStall, 10)
		nilSink.Suspend()
		nilSink.Resume()
		nilSink.End(10)
	}); allocs != 0 {
		t.Fatalf("nil sink allocates %.1f allocs/op, want 0", allocs)
	}
	s := NewAttrSink()
	if allocs := testing.AllocsPerRun(1000, func() {
		s.Begin(OpWrite, 0)
		s.Charge(PhaseGCStall, 10)
		s.Reclassify(PhaseGCStall, PhaseWPSerial, 5)
		s.End(10)
	}); allocs != 0 {
		t.Fatalf("live sink allocates %.1f allocs/op, want 0", allocs)
	}
}
