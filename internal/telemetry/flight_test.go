package telemetry

import (
	"bytes"
	"strings"
	"testing"

	"blockhead/internal/sim"
)

func TestFlightRingWraparound(t *testing.T) {
	f := NewFlight(4)
	f.DumpTo = nil
	for i := 0; i < 10; i++ {
		f.Record(sim.Time(i), FlightTransition, int32(i), "empty->open", int64(i))
	}
	if f.Len() != 4 || f.Total() != 10 || f.Dropped() != 6 {
		t.Fatalf("len=%d total=%d dropped=%d", f.Len(), f.Total(), f.Dropped())
	}
	ev := f.Events()
	if len(ev) != 4 {
		t.Fatalf("Events len = %d", len(ev))
	}
	// Oldest first: events 6..9 survive.
	for i, e := range ev {
		if e.Unit != int32(6+i) {
			t.Errorf("event %d unit = %d, want %d", i, e.Unit, 6+i)
		}
	}
}

func TestFlightPartialRing(t *testing.T) {
	f := NewFlight(8)
	f.Record(sim.Millisecond, FlightReset, 2, "", 4)
	f.Record(2*sim.Millisecond, FlightErase, 9, "", 1)
	if f.Len() != 2 || f.Dropped() != 0 {
		t.Fatalf("len=%d dropped=%d", f.Len(), f.Dropped())
	}
	ev := f.Events()
	if ev[0].Kind != FlightReset || ev[1].Kind != FlightErase {
		t.Fatalf("order wrong: %v %v", ev[0].Kind, ev[1].Kind)
	}
}

func TestFlightViolationAutoDumpCapped(t *testing.T) {
	var buf bytes.Buffer
	f := NewFlight(8)
	f.DumpTo = &buf
	for i := 0; i < 10; i++ {
		f.Violation(sim.Time(i), FlightAuditViolation, 1, "illegal", 0)
	}
	if f.Violations() != 10 {
		t.Fatalf("Violations = %d", f.Violations())
	}
	// A violation storm must not flood the output: at most 3 auto dumps.
	if n := strings.Count(buf.String(), "flight recorder:"); n < 3 {
		t.Fatalf("auto dumps = %d, want 3 (plus their headers)", n)
	}
	dumps := strings.Count(buf.String(), "dumping last")
	if dumps != 3 {
		t.Fatalf("auto dumps = %d, want exactly 3", dumps)
	}
	// nil DumpTo disables auto dumps without losing the count.
	f2 := NewFlight(4)
	f2.DumpTo = nil
	f2.Violation(0, FlightAttrViolation, -1, "x", 0)
	if f2.Violations() != 1 {
		t.Fatal("violation not counted with dumps disabled")
	}
}

func TestFlightDumpJSONShape(t *testing.T) {
	f := NewFlight(4)
	f.DumpTo = nil
	f.Record(1500*sim.Microsecond, FlightGCVictim, 7, "incremental", 12)
	d := f.Dump()
	if d.Total != 1 || d.Violations != 0 || len(d.Events) != 1 {
		t.Fatalf("dump = %+v", d)
	}
	e := d.Events[0]
	if e.AtMillis != 1.5 || e.Kind != "gc_victim" || e.Unit != 7 || e.Detail != "incremental" || e.Arg != 12 {
		t.Fatalf("event = %+v", e)
	}
}

func TestFlightNilSafe(t *testing.T) {
	var f *Flight
	f.Record(0, FlightErase, 0, "", 0)
	f.Violation(0, FlightAuditViolation, 0, "", 0)
	if f.Len() != 0 || f.Total() != 0 || f.Dropped() != 0 || f.Violations() != 0 {
		t.Fatal("nil recorder reported state")
	}
	if ev := f.Events(); len(ev) != 0 {
		t.Fatal("nil recorder returned events")
	}
	d := f.Dump()
	if d.Total != 0 || len(d.Events) != 0 {
		t.Fatal("nil recorder dumped events")
	}
	var buf bytes.Buffer
	if err := f.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestFlightKindStrings(t *testing.T) {
	want := map[FlightKind]string{
		FlightTransition: "transition", FlightReset: "reset",
		FlightErase: "erase", FlightWPConflict: "wp_conflict",
		FlightGCVictim: "gc_victim", FlightReclaim: "reclaim",
		FlightAuditViolation: "audit_violation", FlightAttrViolation: "attr_violation",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
	if FlightKind(200).String() != "unknown" {
		t.Error("out-of-range kind")
	}
}
