package telemetry

import "blockhead/internal/sim"

// Probe bundles a metrics registry, a tracer, and a latency-attribution
// sink into the single handle device models accept. A nil *Probe means
// "telemetry off": devices resolve nil metric handles through it and take
// the zero-cost path on every op.
type Probe struct {
	Metrics *Registry
	Trace   *Tracer
	Attr    *AttrSink

	// HeatSrc collects the spatial (heatmap) snapshot sources registered by
	// device models; FlightRec is the shared flight recorder they append to.
	HeatSrc   *HeatSet
	FlightRec *Flight

	// Pub, if set, is poked from Tick so a live exporter (the HTTP
	// monitoring server) can publish fresh snapshots while the simulation
	// runs. Implementations throttle internally.
	Pub Publisher
}

// Publisher is a live snapshot consumer driven from the simulation thread.
// MaybePublish is called on every probe tick; implementations must be cheap
// when no publish is due.
type Publisher interface {
	MaybePublish(at sim.Time)
}

// Options parameterizes NewProbe.
type Options struct {
	// SampleEvery arms the time-series sampler at this virtual-time
	// interval; 0 leaves sampling off (aggregates only).
	SampleEvery sim.Time
	// TraceEvents is the trace ring capacity; 0 selects DefaultTraceEvents.
	TraceEvents int
}

// NewProbe builds an armed probe. The attribution sink's violation hook is
// pre-wired to the flight recorder, so any attribution-invariant violation
// dumps the recent device history automatically.
func NewProbe(opts Options) *Probe {
	reg := NewRegistry()
	reg.SampleEvery(opts.SampleEvery)
	p := &Probe{
		Metrics:   reg,
		Trace:     NewTracer(opts.TraceEvents),
		Attr:      NewAttrSink(),
		HeatSrc:   NewHeatSet(),
		FlightRec: NewFlight(0),
	}
	p.Attr.OnViolation = func(at sim.Time) {
		p.FlightRec.Violation(at, FlightAttrViolation, -1, "attribution_invariant", 0)
	}
	return p
}

// Registry returns the metrics registry, or nil on a nil probe — the
// nil-safe accessor device SetProbe implementations use.
func (p *Probe) Registry() *Registry {
	if p == nil {
		return nil
	}
	return p.Metrics
}

// Tracer returns the tracer, or nil on a nil probe.
func (p *Probe) Tracer() *Tracer {
	if p == nil {
		return nil
	}
	return p.Trace
}

// Attribution returns the latency-attribution sink, or nil on a nil probe —
// the nil-safe accessor device SetProbe implementations use.
func (p *Probe) Attribution() *AttrSink {
	if p == nil {
		return nil
	}
	return p.Attr
}

// Heat returns the heatmap-source registry, or nil on a nil probe.
func (p *Probe) Heat() *HeatSet {
	if p == nil {
		return nil
	}
	return p.HeatSrc
}

// Flight returns the flight recorder, or nil on a nil probe.
func (p *Probe) Flight() *Flight {
	if p == nil {
		return nil
	}
	return p.FlightRec
}

// HeatDump snapshots every registered heatmap source; safe on a nil probe
// (empty dump).
func (p *Probe) HeatDump(at sim.Time) HeatmapDump {
	return p.Heat().Dump(at)
}

// Tick advances the sampler and pokes the live publisher; nil-safe, so it
// can be handed to sim.Loop.OnEvent or called from device op paths
// unconditionally.
func (p *Probe) Tick(at sim.Time) {
	if p == nil {
		return
	}
	p.Metrics.Tick(at)
	if p.Pub != nil {
		p.Pub.MaybePublish(at)
	}
}
