package telemetry

import (
	"math"
	"testing"

	"blockhead/internal/sim"
)

// fillWindow lands n reads for tenant t in window seq, each with the given
// latency (1ms windows).
func fillWindow(w *WindowSet, t TenantID, seq int64, n int, lat sim.Time) {
	for i := 0; i < n; i++ {
		done := sim.Time(seq)*sim.Millisecond + sim.Time(i+1)*sim.Microsecond
		w.Observe(t, OpRead, done, lat)
	}
}

func TestSLOLatencyObjective(t *testing.T) {
	w := NewWindowSet(WindowCfg{Width: sim.Millisecond, Keep: 8})
	fillWindow(w, 1, 0, 10, 100*sim.Microsecond)
	fillWindow(w, 1, 1, 10, 100*sim.Microsecond)
	fillWindow(w, 1, 2, 10, 2*sim.Millisecond) // the bad window

	eng := NewSLOEngine(w)
	eng.Add(SLO{Tenant: 1, Op: OpRead, LatencyMax: 200 * sim.Microsecond})
	if eng.Objectives() != 1 {
		t.Fatalf("objectives = %d", eng.Objectives())
	}
	res := eng.Evaluate()
	if len(res) != 1 {
		t.Fatalf("results = %d", len(res))
	}
	r := res[0]
	if r.SLO.Pct != 99 || r.SLO.Budget != 0.05 {
		t.Fatalf("defaults not applied: %+v", r.SLO)
	}
	if r.Windows != 3 || r.Violated != 1 {
		t.Fatalf("windows=%d violated=%d, want 3/1", r.Windows, r.Violated)
	}
	wantBurn := (1.0 / 3.0) / 0.05
	if math.Abs(r.BurnRate-wantBurn) > 1e-9 || r.OK {
		t.Fatalf("burn=%v ok=%v, want %v/false", r.BurnRate, r.OK, wantBurn)
	}
	// The worst per-window percentile is the bad window's (log-bucket
	// upper edge of 2ms).
	if r.WorstUs < 2000 {
		t.Fatalf("worstUs = %v, want >= 2000", r.WorstUs)
	}
}

func TestSLOThroughputObjective(t *testing.T) {
	w := NewWindowSet(WindowCfg{Width: sim.Millisecond, Keep: 8})
	fillWindow(w, 1, 0, 10, 50*sim.Microsecond) // 10000 ops/s
	fillWindow(w, 1, 1, 2, 50*sim.Microsecond)  // 2000 ops/s: violates

	eng := NewSLOEngine(w)
	eng.Add(SLO{Tenant: 1, Op: OpRead, MinRate: 5000, Budget: 0.75})
	r := eng.Evaluate()[0]
	if r.Windows != 2 || r.Violated != 1 {
		t.Fatalf("windows=%d violated=%d, want 2/1", r.Windows, r.Violated)
	}
	if r.WorstRate != 2000 {
		t.Fatalf("worstRate = %v, want 2000", r.WorstRate)
	}
	if !r.OK { // 0.5 violated fraction inside a 0.75 budget
		t.Fatalf("burn=%v should be within budget", r.BurnRate)
	}
}

func TestSLOSkipsUntouchedWindows(t *testing.T) {
	w := NewWindowSet(WindowCfg{Width: sim.Millisecond, Keep: 8})
	fillWindow(w, 1, 0, 5, 50*sim.Microsecond)
	// Tenant 1 also wrote in window 3, so a read window 3 exists with
	// Count 0 — a latency-only objective must not judge it.
	w.Observe(1, OpWrite, 3*sim.Millisecond, 80*sim.Microsecond)

	eng := NewSLOEngine(w)
	eng.Add(SLO{Tenant: 1, Op: OpRead, LatencyMax: sim.Millisecond})
	if r := eng.Evaluate()[0]; r.Windows != 1 || r.Violated != 0 || !r.OK {
		t.Fatalf("latency-only: %+v", r)
	}
	// A throughput objective judges every active window: the read-less
	// window 3 is a rate violation.
	eng2 := NewSLOEngine(w)
	eng2.Add(SLO{Tenant: 1, Op: OpRead, MinRate: 1000})
	if r := eng2.Evaluate()[0]; r.Windows != 2 || r.Violated != 1 {
		t.Fatalf("throughput: %+v", r)
	}
}

func TestSLODump(t *testing.T) {
	r := SLOResult{
		SLO:     SLO{Tenant: 2, Op: OpWrite, Pct: 90, LatencyMax: sim.Millisecond, MinRate: 100, Budget: 0.1},
		Windows: 4, Violated: 1, BurnRate: 2.5, WorstUs: 1234.5, WorstRate: 99,
	}
	d := r.Dump()
	if d.Tenant != 2 || d.Op != "write" || d.Pct != 90 || d.LatencyMaxUs != 1000 ||
		d.MinRate != 100 || d.Windows != 4 || d.Violated != 1 || d.BurnRate != 2.5 ||
		d.WorstPctUs != 1234.5 || d.WorstRate != 99 || d.OK {
		t.Fatalf("dump = %+v", d)
	}
}

func TestSLONil(t *testing.T) {
	var eng *SLOEngine
	eng.Add(SLO{Tenant: 1, Op: OpRead}) // must not panic
	if eng.Objectives() != 0 || eng.Evaluate() != nil {
		t.Fatal("nil SLOEngine must be a zero no-op")
	}
	// An engine over a nil WindowSet evaluates to zero-window verdicts.
	live := NewSLOEngine(nil)
	live.Add(SLO{Tenant: 1, Op: OpRead, LatencyMax: sim.Millisecond})
	if r := live.Evaluate()[0]; r.Windows != 0 || !r.OK {
		t.Fatalf("nil-window evaluate: %+v", r)
	}
}
