package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"blockhead/internal/sim"
)

// chromeEvent is one entry of the Chrome trace-event JSON format
// (the "JSON Array Format" consumed by chrome://tracing and Perfetto).
// Timestamps and durations are in microseconds.
type chromeEvent struct {
	Name string                 `json:"name"`
	Cat  string                 `json:"cat,omitempty"`
	Ph   string                 `json:"ph"`
	TS   float64                `json:"ts"`
	Dur  *float64               `json:"dur,omitempty"`
	PID  int32                  `json:"pid"`
	TID  int32                  `json:"tid"`
	S    string                 `json:"s,omitempty"`
	Args map[string]interface{} `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace exports the retained events as Chrome trace-event JSON:
// one process per hardware layer, one thread per channel/LUN/zone, complete
// ("X") events for spans and instant ("i") events for markers. Open the file
// at chrome://tracing or https://ui.perfetto.dev. Writes an empty trace on a
// nil receiver.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		return json.NewEncoder(w).Encode(chromeTrace{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ns"})
	}
	trace := chromeTrace{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ns"}
	events := t.Events()

	// Metadata: name every known process and every track that either was
	// named explicitly or carries events.
	pids := make([]int32, 0, len(t.procs))
	for pid := range t.procs {
		pids = append(pids, pid)
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
	for _, pid := range pids {
		trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", PID: pid,
			Args: map[string]interface{}{"name": t.procs[pid]},
		})
	}
	keys := make([]int64, 0, len(t.tracks))
	for k := range t.tracks {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		pid, tid := int32(k>>32), int32(uint32(k))
		trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", PID: pid, TID: tid,
			Args: map[string]interface{}{"name": t.tracks[k]},
		})
	}

	for _, e := range events {
		ce := chromeEvent{
			Name: e.Name, Cat: e.Cat, TS: e.Start.Micros(), PID: e.PID, TID: e.TID,
		}
		if e.Instant() {
			ce.Ph, ce.S = "i", "t"
		} else {
			ce.Ph = "X"
			dur := e.Dur.Micros()
			ce.Dur = &dur
		}
		if e.ArgName != "" {
			ce.Args = map[string]interface{}{e.ArgName: e.Arg}
		}
		trace.TraceEvents = append(trace.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(trace)
}

// WriteText dumps the retained events as one line per event, oldest first —
// the quick-look format for grepping a run without a trace viewer.
func (t *Tracer) WriteText(w io.Writer) error {
	if t == nil {
		return nil
	}
	for _, e := range t.Events() {
		proc := t.procs[e.PID]
		if proc == "" {
			proc = fmt.Sprintf("pid%d", e.PID)
		}
		track := t.tracks[trackKey(e.PID, e.TID)]
		if track == "" {
			track = fmt.Sprintf("%d", e.TID)
		}
		var err error
		if e.Instant() {
			_, err = fmt.Fprintf(w, "%12.3fus %s/%s %s", e.Start.Micros(), proc, track, e.Name)
		} else {
			_, err = fmt.Fprintf(w, "%12.3fus %s/%s %s dur=%.3fus",
				e.Start.Micros(), proc, track, e.Name, e.Dur.Micros())
		}
		if err != nil {
			return err
		}
		if e.ArgName != "" {
			if _, err := fmt.Fprintf(w, " %s=%d", e.ArgName, e.Arg); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	if d := t.Dropped(); d > 0 {
		if _, err := fmt.Fprintf(w, "... %d older events dropped (ring capacity %d)\n",
			d, cap(t.ring)); err != nil {
			return err
		}
	}
	return nil
}

// MetricsDump is the JSON shape of a metrics export: final aggregates for
// every counter, gauge, and histogram, plus the sampled time series.
type MetricsDump struct {
	AtMillis   float64             `json:"at_ms"` // virtual time of the dump
	Counters   map[string]uint64   `json:"counters"`
	Gauges     map[string]float64  `json:"gauges"`
	Histograms map[string]HistDump `json:"histograms"`
	Series     []SeriesDump        `json:"series"`
}

// HistDump summarizes one histogram.
type HistDump struct {
	Count  uint64  `json:"count"`
	MeanUs float64 `json:"mean_us"`
	P50Us  float64 `json:"p50_us"`
	P99Us  float64 `json:"p99_us"`
	P999Us float64 `json:"p999_us"`
	MaxUs  float64 `json:"max_us"`
}

// SeriesDump is one sampled time series.
type SeriesDump struct {
	Name    string      `json:"name"`
	Samples []PointDump `json:"samples"`
}

// PointDump is one sample of a series.
type PointDump struct {
	TMillis float64 `json:"t_ms"`
	V       float64 `json:"v"`
}

// Dump assembles the exportable snapshot of the registry at virtual time
// at: every counter and histogram aggregate, every gauge polled one final
// time, and the sampled series. Returns an empty dump on a nil registry.
func (r *Registry) Dump(at sim.Time) MetricsDump {
	if r == nil {
		return emptyMetricsDump(at)
	}
	d := emptyMetricsDump(at)
	for _, n := range r.counterNames() {
		d.Counters[n] = r.counters[n].Value()
	}
	for _, g := range r.gaugesSorted() {
		d.Gauges[g.name] = g.fn(at)
	}
	for _, n := range r.histNames() {
		h := r.hists[n].Snapshot()
		d.Histograms[n] = HistDump{
			Count:  h.Count(),
			MeanUs: h.Mean().Micros(),
			P50Us:  h.Percentile(50).Micros(),
			P99Us:  h.Percentile(99).Micros(),
			P999Us: h.Percentile(99.9).Micros(),
			MaxUs:  h.Max().Micros(),
		}
	}
	for _, s := range r.SeriesSnapshot() {
		sd := SeriesDump{Name: s.Name, Samples: make([]PointDump, 0, len(s.Points))}
		for _, p := range s.Points {
			sd.Samples = append(sd.Samples, PointDump{TMillis: p.At.Millis(), V: p.V})
		}
		d.Series = append(d.Series, sd)
	}
	return d
}

// emptyMetricsDump is the dump skeleton: what a nil registry exports, and
// what Dump fills in.
func emptyMetricsDump(at sim.Time) MetricsDump {
	return MetricsDump{
		AtMillis:   at.Millis(),
		Counters:   map[string]uint64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistDump{},
		Series:     []SeriesDump{},
	}
}

// WriteJSON writes the metrics dump as indented JSON.
func (r *Registry) WriteJSON(w io.Writer, at sim.Time) error {
	if r == nil {
		return writeIndentedJSON(w, emptyMetricsDump(at))
	}
	return writeIndentedJSON(w, r.Dump(at))
}

func writeIndentedJSON(w io.Writer, v interface{}) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
