package critpath

import (
	"testing"

	"blockhead/internal/sim"
	"blockhead/internal/telemetry"
)

const us = sim.Microsecond

// TestRecorderThroughSink drives a recorder through a real AttrSink the way
// the device models do and checks every recorded quantity: exact path sum,
// wait binds, composite composition, off-path totals.
func TestRecorderThroughSink(t *testing.T) {
	sink := telemetry.NewAttrSink()
	rec := Attach(sink, Options{SampleCap: 16})
	if FromSink(sink) != rec {
		t.Fatal("FromSink did not return the attached recorder")
	}

	// A write: queue, wait behind a program, transfer, program, then a
	// composite GC stall hiding a read+program fan-out.
	sink.BeginTenant(telemetry.OpWrite, 2, 0)
	sink.Charge(telemetry.PhaseHostQueue, 5*us)
	sink.ChargeWaitBlamed(telemetry.PhaseLUNWait, 100*us, 3, telemetry.PhaseNANDProgram)
	sink.Charge(telemetry.PhaseXfer, 3*us)
	sink.Charge(telemetry.PhaseNANDProgram, 700*us)
	sink.Suspend()
	sink.Charge(telemetry.PhaseNANDRead, 60*us)
	sink.Charge(telemetry.PhaseNANDProgram, 700*us)
	sink.Resume()
	sink.ChargeBlamed(telemetry.PhaseGCStall, 400*us, 1)
	sink.End(1208 * us)

	if v := rec.Violations(); v != 0 {
		t.Fatalf("violations = %d, want 0", v)
	}
	if rec.IOs() != 1 {
		t.Fatalf("ios = %d, want 1", rec.IOs())
	}
	snap := rec.Snapshot()
	a := snap.Ops[telemetry.OpWrite]
	if a.Count != 1 || a.TotalSum != 1208*us {
		t.Fatalf("write agg count=%d total=%v", a.Count, a.TotalSum)
	}
	var pathSum sim.Time
	for p := 0; p < telemetry.NumPhases; p++ {
		pathSum += a.Path[p]
	}
	if pathSum != 1208*us {
		t.Fatalf("path sum %v != total %v", pathSum, 1208*us)
	}
	if got := a.WaitBy[WaitLUN][BindProgram]; got != 100*us {
		t.Fatalf("lun_wait program-bound = %v, want %v", got, 100*us)
	}
	if got := a.Off[telemetry.PhaseNANDRead]; got != 60*us {
		t.Fatalf("off-path nand_read = %v, want %v", got, 60*us)
	}
	if got := a.Off[telemetry.PhaseNANDProgram]; got != 700*us {
		t.Fatalf("off-path nand_program = %v, want %v", got, 700*us)
	}
	if len(snap.Paths) != 1 {
		t.Fatalf("sampled %d paths, want 1", len(snap.Paths))
	}
	pr := snap.Paths[0]
	if pr.Op != telemetry.OpWrite || pr.Tenant != 2 || pr.Total != 1208*us {
		t.Fatalf("sampled path = %+v", pr)
	}
	if got := pr.Comp[CompGCStall][telemetry.PhaseNANDProgram]; got != 700*us {
		t.Fatalf("gc_stall composition program = %v, want %v", got, 700*us)
	}
	if got := pr.Comp[CompGCStall][telemetry.PhaseNANDRead]; got != 60*us {
		t.Fatalf("gc_stall composition read = %v, want %v", got, 60*us)
	}
}

// TestRecorderDeepSuspension checks that charges at suspension depth >= 2
// are not recorded (their wall-clock is represented by the enclosing
// composite one level up), while the depth-1 composite charge is.
func TestRecorderDeepSuspension(t *testing.T) {
	sink := telemetry.NewAttrSink()
	rec := Attach(sink, Options{})
	sink.Begin(telemetry.OpWrite, 0)
	sink.Suspend() // depth 1: host reclaim
	sink.Charge(telemetry.PhaseNANDRead, 60*us)
	sink.Suspend() // depth 2: nested stripe reset
	sink.Charge(telemetry.PhaseNANDErase, 4200*us)
	sink.Resume()
	sink.Charge(telemetry.PhaseZoneReset, 4200*us) // depth-1 wall of the nested reset
	sink.Resume()
	sink.Charge(telemetry.PhaseGCStall, 5000*us)
	sink.End(5000 * us)

	snap := rec.Snapshot()
	a := snap.Ops[telemetry.OpWrite]
	if got := a.Off[telemetry.PhaseNANDErase]; got != 0 {
		t.Fatalf("depth-2 erase recorded off-path: %v", got)
	}
	if got := a.Off[telemetry.PhaseZoneReset]; got != 4200*us {
		t.Fatalf("nested reset wall = %v, want %v", got, 4200*us)
	}
	pr := snap.Paths[0]
	if got := pr.Comp[CompGCStall][telemetry.PhaseZoneReset]; got != 4200*us {
		t.Fatalf("gc_stall composition zone_reset = %v, want %v", got, 4200*us)
	}
	if rec.Violations() != 0 {
		t.Fatalf("violations = %d", rec.Violations())
	}
}

// TestReassignMovesBinds mirrors the zns lun_wait -> wp_serial reclassify:
// the moved ticks keep their program bind under the new phase.
func TestReassignMovesBinds(t *testing.T) {
	sink := telemetry.NewAttrSink()
	rec := Attach(sink, Options{})
	sink.Begin(telemetry.OpWrite, 0)
	sink.ChargeWaitBlamed(telemetry.PhaseLUNWait, 100*us, telemetry.SelfTenant, telemetry.PhaseNANDProgram)
	sink.Charge(telemetry.PhaseNANDProgram, 700*us)
	sink.Reclassify(telemetry.PhaseLUNWait, telemetry.PhaseWPSerial, 80*us)
	sink.End(800 * us)

	snap := rec.Snapshot()
	a := snap.Ops[telemetry.OpWrite]
	if got := a.Path[telemetry.PhaseWPSerial]; got != 80*us {
		t.Fatalf("wp_serial path = %v, want %v", got, 80*us)
	}
	if got := a.WaitBy[WaitWPSerial][BindProgram]; got != 80*us {
		t.Fatalf("wp_serial program-bound = %v, want %v", got, 80*us)
	}
	if got := a.WaitBy[WaitLUN][BindProgram]; got != 20*us {
		t.Fatalf("lun_wait program-bound = %v, want %v", got, 20*us)
	}
	if rec.Violations() != 0 {
		t.Fatalf("violations = %d", rec.Violations())
	}
}

// TestRefundKeepsInvariant mirrors the wp_serial early-ack: refunded ticks
// leave both the sink and the recorder summing exactly to the (earlier)
// host-visible completion.
func TestRefundKeepsInvariant(t *testing.T) {
	sink := telemetry.NewAttrSink()
	rec := Attach(sink, Options{})
	sink.BeginTenant(telemetry.OpWrite, 1, 0)
	sink.ChargeWaitBlamed(telemetry.PhaseLUNWait, 100*us, 2, telemetry.PhaseNANDProgram)
	sink.Charge(telemetry.PhaseNANDProgram, 700*us)
	sink.Reclassify(telemetry.PhaseLUNWait, telemetry.PhaseWPSerial, 100*us)
	if got := sink.Refund(telemetry.PhaseWPSerial, 100*us); got != 100*us {
		t.Fatalf("refund = %v, want %v", got, 100*us)
	}
	sink.End(700 * us)

	if sink.Violations() != 0 {
		t.Fatalf("sink violations = %d", sink.Violations())
	}
	if rec.Violations() != 0 {
		t.Fatalf("recorder violations = %d", rec.Violations())
	}
	snap := rec.Snapshot()
	a := snap.Ops[telemetry.OpWrite]
	if got := a.Path[telemetry.PhaseWPSerial]; got != 0 {
		t.Fatalf("wp_serial after refund = %v, want 0", got)
	}
	if got := a.WaitBy[WaitWPSerial][BindProgram]; got != 0 {
		t.Fatalf("wp_serial bind after refund = %v, want 0", got)
	}
}

// TestViolationCounted: a path that does not sum to end-to-end increments
// the counter and fires the hook, but is still aggregated.
func TestViolationCounted(t *testing.T) {
	sink := telemetry.NewAttrSink()
	rec := Attach(sink, Options{})
	fired := 0
	rec.OnViolation = func(sim.Time) { fired++ }
	sink.Begin(telemetry.OpRead, 0)
	sink.Charge(telemetry.PhaseNANDRead, 60*us)
	sink.End(100 * us) // 40us unaccounted
	if rec.Violations() != 1 || fired != 1 {
		t.Fatalf("violations=%d fired=%d, want 1/1", rec.Violations(), fired)
	}
	if rec.Snapshot().Ops[telemetry.OpRead].Count != 1 {
		t.Fatal("violating record was not aggregated")
	}
}

// TestDecimationDeterministic fills a small reservoir far past capacity and
// checks the stride-doubling invariants: bounded size, evenly spaced
// retained sequence, identical across runs.
func TestDecimationDeterministic(t *testing.T) {
	run := func() Snapshot {
		sink := telemetry.NewAttrSink()
		rec := Attach(sink, Options{SampleCap: 16})
		for i := 0; i < 1000; i++ {
			at := sim.Time(i) * 1000 * us
			sink.Begin(telemetry.OpRead, at)
			sink.Charge(telemetry.PhaseNANDRead, sim.Time(i+1)*us)
			sink.End(at + sim.Time(i+1)*us)
		}
		return rec.Snapshot()
	}
	a, b := run(), run()
	if len(a.Paths) == 0 || len(a.Paths) > 16 {
		t.Fatalf("reservoir size %d, want 1..16", len(a.Paths))
	}
	if a.Stride != b.Stride || len(a.Paths) != len(b.Paths) {
		t.Fatalf("runs disagree: stride %d/%d, size %d/%d", a.Stride, b.Stride, len(a.Paths), len(b.Paths))
	}
	for i := range a.Paths {
		if a.Paths[i] != b.Paths[i] {
			t.Fatalf("path %d differs between identical runs", i)
		}
		// Totals encode the IO index, so spacing is checkable: retained
		// records must be exactly stride apart.
		if i > 0 {
			gap := a.Paths[i].Total - a.Paths[i-1].Total
			if gap != sim.Time(a.Stride)*us {
				t.Fatalf("retained records %d apart at %d, want stride %d", gap/us, i, a.Stride)
			}
		}
	}
}

// TestDrainResets: Drain returns the accumulated state and leaves the
// recorder empty for the next experiment's section.
func TestDrainResets(t *testing.T) {
	sink := telemetry.NewAttrSink()
	rec := Attach(sink, Options{SampleCap: 8})
	sink.Begin(telemetry.OpRead, 0)
	sink.Charge(telemetry.PhaseNANDRead, 60*us)
	sink.End(60 * us)
	snap := DrainFromSink(sink)
	if snap.IOs != 1 || len(snap.Paths) != 1 {
		t.Fatalf("drained ios=%d sampled=%d", snap.IOs, len(snap.Paths))
	}
	after := rec.Snapshot()
	if after.IOs != 0 || len(after.Paths) != 0 || after.Stride != 1 {
		t.Fatalf("recorder not reset: %+v", after)
	}
}

// TestNilSafe: every method of the nil recorder and nil-sink helpers is a
// no-op.
func TestNilSafe(t *testing.T) {
	var r *Recorder
	r.BeginPath(telemetry.OpRead, 0, 0)
	r.Segment(telemetry.PhaseNANDRead, us)
	r.WaitSegment(telemetry.PhaseLUNWait, us, telemetry.SelfTenant, telemetry.PhaseNANDProgram)
	r.Overlap(telemetry.PhaseNANDRead, us)
	r.Reassign(telemetry.PhaseLUNWait, telemetry.PhaseWPSerial, us)
	r.Refund(telemetry.PhaseWPSerial, us)
	r.EndPath(us)
	r.DropPath()
	if r.IOs() != 0 || r.Violations() != 0 {
		t.Fatal("nil recorder reported state")
	}
	if s := r.Snapshot(); s.IOs != 0 {
		t.Fatal("nil snapshot not empty")
	}
	if s := r.Drain(); s.IOs != 0 {
		t.Fatal("nil drain not empty")
	}
	if Attach(nil, Options{}) != nil {
		t.Fatal("Attach(nil) must return nil")
	}
	if FromSink(nil) != nil {
		t.Fatal("FromSink(nil) must return nil")
	}
	if s := DrainFromSink(nil); s.IOs != 0 {
		t.Fatal("DrainFromSink(nil) not empty")
	}
}

// TestDumpShape sanity-checks the JSON export fields on a small recording.
func TestDumpShape(t *testing.T) {
	sink := telemetry.NewAttrSink()
	rec := Attach(sink, Options{SampleCap: 8})
	sink.Begin(telemetry.OpRead, 0)
	sink.ChargeWaitBlamed(telemetry.PhaseLUNWait, 40*us, telemetry.SelfTenant, telemetry.PhaseNANDProgram)
	sink.Charge(telemetry.PhaseNANDRead, 60*us)
	sink.End(100 * us)
	snap := rec.Snapshot()
	d := snap.Dump(PredictOpts{})
	if d.Schema != DumpSchema || d.IOs != 1 || d.Violations != 0 {
		t.Fatalf("dump header: %+v", d)
	}
	if len(d.Ops) != 1 || d.Ops[0].Op != "read" {
		t.Fatalf("dump ops: %+v", d.Ops)
	}
	var sawWait bool
	for _, p := range d.Ops[0].Phases {
		if p.Name == "lun_wait" {
			sawWait = true
			if len(p.Binds) != 1 || p.Binds[0].Name != "nand_program" {
				t.Fatalf("lun_wait binds: %+v", p.Binds)
			}
		}
	}
	if !sawWait {
		t.Fatal("dump omitted lun_wait")
	}
	if len(d.WhatIf) != len(Canonical()) {
		t.Fatalf("whatif entries: %d, want %d", len(d.WhatIf), len(Canonical()))
	}
	b := snap.Bench(PredictOpts{})
	if b.IOs != 1 || b.TopPhase != "nand_read" {
		t.Fatalf("bench summary: %+v", b)
	}
}
