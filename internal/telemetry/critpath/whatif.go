package critpath

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"blockhead/internal/sim"
	"blockhead/internal/telemetry"
)

// Scale is one counterfactual phase scaling: the phase's cost multiplied
// by Factor (0.5 = twice as fast, 0 = free, 2 = twice as slow).
type Scale struct {
	Phase  telemetry.Phase
	Factor float64
}

// Scenario is a named set of counterfactual phase scalings. The zero
// Scenario is the identity (no phase scaled).
type Scenario struct {
	Name   string
	Scales []Scale
}

// Factor reports the scenario's multiplier for phase p (1 when unscaled).
func (sc Scenario) Factor(p telemetry.Phase) float64 {
	for _, s := range sc.Scales {
		if s.Phase == p {
			return s.Factor
		}
	}
	return 1
}

// ParseScenario parses the CLI/spec form "phase:factor[,phase:factor...]",
// e.g. "nand_program:0.5" or "zone_reset:0,wp_serial:0". Phase names are
// the attribution wire names; factors must be finite and >= 0.
func ParseScenario(spec string) (Scenario, error) {
	sc := Scenario{Name: spec}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		i := strings.IndexByte(part, ':')
		if i < 0 {
			return Scenario{}, fmt.Errorf("critpath: scenario term %q: want phase:factor", part)
		}
		name, factorStr := part[:i], part[i+1:]
		p := telemetry.Phase(-1)
		for q := 0; q < telemetry.NumPhases; q++ {
			if telemetry.Phase(q).String() == name {
				p = telemetry.Phase(q)
				break
			}
		}
		if p < 0 {
			return Scenario{}, fmt.Errorf("critpath: unknown phase %q in scenario %q", name, spec)
		}
		f, err := strconv.ParseFloat(factorStr, 64)
		if err != nil || f < 0 || f > 1e6 {
			return Scenario{}, fmt.Errorf("critpath: bad factor %q for phase %s", factorStr, name)
		}
		sc.Scales = append(sc.Scales, Scale{Phase: p, Factor: f})
	}
	if len(sc.Scales) == 0 {
		return Scenario{}, fmt.Errorf("critpath: empty scenario %q", spec)
	}
	return sc, nil
}

// MustScenario is ParseScenario for known-good literals; it panics on
// error (programming mistake, not input).
func MustScenario(spec string) Scenario {
	sc, err := ParseScenario(spec)
	if err != nil {
		panic(err)
	}
	return sc
}

// Canonical returns the three counterfactuals every report answers: the
// NAND program twice as fast, zone resets free, and write-pointer
// serialization removed — the paper's "what does zone management really
// cost" questions (PAPERS.md: Doekemeijer et al.; Bagashvili & Papon).
func Canonical() []Scenario {
	return []Scenario{
		MustScenario("nand_program:0.5"),
		MustScenario("zone_reset:0"),
		MustScenario("wp_serial:0"),
	}
}

// PredictOpts tunes the replay model.
type PredictOpts struct {
	// ErasesAreResets marks stacks where every erase is a zone reset
	// (ZNS/host-FTL): a zone_reset scaling then also scales erase-bound
	// waits and erase constituents inside composites, matching the ground
	// truth of scaling the erase timing parameter itself.
	ErasesAreResets bool
	// PerTenant adds per-tenant predictions for tenants with samples.
	PerTenant bool
}

// Prediction is the predicted latency change for one op kind (and
// optionally one tenant) under a scenario. Base values summarize the
// replayed sample at factor 1; the ratios are the engine's prediction
// proper — apply them to exactly measured base metrics to get predicted
// values with the sampling bias cancelled.
type Prediction struct {
	Scenario string  `json:"scenario"`
	Op       string  `json:"op"`
	Tenant   int     `json:"tenant"` // -1 = all tenants
	Count    int     `json:"count"`
	BaseMean float64 `json:"base_mean_us"`
	BaseP99  float64 `json:"base_p99_us"`
	BaseP999 float64 `json:"base_p999_us"`
	Mean     float64 `json:"mean_us"`
	P99      float64 `json:"p99_us"`
	P999     float64 `json:"p999_us"`
	// Ratios are predicted/base (1 = no change); guard: 1 when the base
	// metric is 0.
	MeanRatio float64 `json:"mean_ratio"`
	P99Ratio  float64 `json:"p99_ratio"`
	P999Ratio float64 `json:"p999_ratio"`
}

// Replay computes one recorded path's counterfactual latency (in ns, as a
// float) under sc:
//
//   - direct phases scale by their own factor;
//   - wait phases scale by their own factor times the factor of the
//     service phase they queued behind (a wait behind a program shrinks
//     when programs speed up);
//   - composite phases scale by their own factor times the blend of their
//     recorded composition's factors (a GC stall shrinks in proportion to
//     how much of the work hidden under it got cheaper).
func Replay(rec *PathRec, sc Scenario, opts PredictOpts) float64 {
	total := 0.0
	for p := 0; p < telemetry.NumPhases; p++ {
		t := rec.Path[p]
		if t == 0 {
			continue
		}
		f := sc.Factor(telemetry.Phase(p))
		switch {
		case waitIdx(telemetry.Phase(p)) >= 0:
			wi := waitIdx(telemetry.Phase(p))
			rem := t
			for b := 0; b < NumBinds; b++ {
				w := rec.WaitBy[wi][b]
				if w == 0 {
					continue
				}
				rem -= w
				total += float64(w) * f * bindFactor(sc, b, opts)
			}
			total += float64(rem) * f
		case compIdx(telemetry.Phase(p)) >= 0:
			total += float64(t) * f * blend(&rec.Comp[compIdx(telemetry.Phase(p))], sc, opts)
		default:
			total += float64(t) * f
		}
	}
	return total
}

// bindFactor is the scenario's multiplier for service-bind slot b.
func bindFactor(sc Scenario, b int, opts PredictOpts) float64 {
	p := bindPhase(b)
	f := sc.Factor(p)
	if opts.ErasesAreResets && p == telemetry.PhaseNANDErase {
		f *= sc.Factor(telemetry.PhaseZoneReset)
	}
	return f
}

// blend is the composition-weighted scaling of one composite charge: the
// factor the hidden work's wall-clock shrinks by. Service constituents
// scale by their own factor; wait constituents additionally track the
// service blend (a wait inside a GC fan-out queues behind the fan-out's
// own reads and programs); a nested composite constituent (a zone reset
// hidden under a host reclaim stall) scales by its own factor times its
// erase cost. Only one level of composition is recorded, so constituents
// of a nested composite's own fan-out scale with that composite's factor,
// not individually — a documented source of prediction error.
func blend(comp *[telemetry.NumPhases]sim.Time, sc Scenario, opts PredictOpts) float64 {
	var snum, sden float64
	for b := 0; b < NumBinds; b++ {
		c := comp[bindPhase(b)]
		if c == 0 {
			continue
		}
		snum += float64(c) * bindFactor(sc, b, opts)
		sden += float64(c)
	}
	sblend := 1.0
	if sden > 0 {
		sblend = snum / sden
	}
	var num, den float64
	for q := 0; q < telemetry.NumPhases; q++ {
		c := comp[q]
		if c == 0 {
			continue
		}
		p := telemetry.Phase(q)
		fq := sc.Factor(p)
		switch {
		case bindIdx(p) >= 0:
			fq = bindFactor(sc, bindIdx(p), opts)
		case waitIdx(p) >= 0:
			fq *= sblend
		case p == telemetry.PhaseZoneReset:
			// A nested reset's cost is its erases. bindFactor already
			// folds the zone_reset factor into erases when
			// ErasesAreResets, so using it directly avoids applying
			// f(zone_reset) twice; otherwise both factors apply.
			fq = bindFactor(sc, BindErase, opts)
			if !opts.ErasesAreResets {
				fq = sc.Factor(p) * sc.Factor(telemetry.PhaseNANDErase)
			}
		}
		num += float64(c) * fq
		den += float64(c)
	}
	if den == 0 {
		return 1
	}
	return num / den
}

// Predict replays every sampled path under sc and summarizes the predicted
// distribution per op kind (Tenant -1), plus per tenant when opts.PerTenant
// is set. Results are deterministic: fixed iteration order, exact
// nearest-rank percentiles over sorted copies.
func (s *Snapshot) Predict(sc Scenario, opts PredictOpts) []Prediction {
	var out []Prediction
	for k := 0; k < telemetry.NumOps; k++ {
		if p, ok := s.predictGroup(sc, opts, telemetry.OpKind(k), -1); ok {
			out = append(out, p)
		}
	}
	if opts.PerTenant {
		for t := 0; t < telemetry.MaxTenants; t++ {
			for k := 0; k < telemetry.NumOps; k++ {
				if s.Tenants[t].Count[k] == 0 {
					continue
				}
				if p, ok := s.predictGroup(sc, opts, telemetry.OpKind(k), telemetry.TenantID(t)); ok {
					out = append(out, p)
				}
			}
		}
	}
	return out
}

// predictGroup replays the sampled paths of one (op, tenant) group.
// tenant -1 selects all tenants.
func (s *Snapshot) predictGroup(sc Scenario, opts PredictOpts, op telemetry.OpKind, tenant telemetry.TenantID) (Prediction, bool) {
	var base, pred []float64
	for i := range s.Paths {
		rec := &s.Paths[i]
		if rec.Op != op || (tenant >= 0 && rec.Tenant != tenant) {
			continue
		}
		base = append(base, float64(rec.Total))
		pred = append(pred, Replay(rec, sc, opts))
	}
	if len(base) == 0 {
		return Prediction{}, false
	}
	p := Prediction{
		Scenario: sc.Name,
		Op:       op.String(),
		Tenant:   int(tenant),
		Count:    len(base),
		BaseMean: meanUs(base),
		BaseP99:  pctUs(base, 99),
		BaseP999: pctUs(base, 99.9),
		Mean:     meanUs(pred),
		P99:      pctUs(pred, 99),
		P999:     pctUs(pred, 99.9),
	}
	p.MeanRatio = ratio(p.Mean, p.BaseMean)
	p.P99Ratio = ratio(p.P99, p.BaseP99)
	p.P999Ratio = ratio(p.P999, p.BaseP999)
	return p, true
}

func ratio(pred, base float64) float64 {
	if base <= 0 {
		return 1
	}
	return pred / base
}

func meanUs(v []float64) float64 {
	sum := 0.0
	for _, x := range v {
		sum += x
	}
	return sum / float64(len(v)) / 1e3
}

// pctUs is the exact nearest-rank percentile of v, in microseconds. It
// sorts a copy; v itself is left in recording order.
func pctUs(v []float64, q float64) float64 {
	sorted := append([]float64(nil), v...)
	sort.Float64s(sorted)
	idx := int(float64(len(sorted))*q/100+0.999999) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx] / 1e3
}
