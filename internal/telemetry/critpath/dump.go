package critpath

import (
	"blockhead/internal/sim"
	"blockhead/internal/telemetry"
)

// DumpSchema identifies the /critpath.json wire format.
const DumpSchema = "blockhead/critpath/v1"

// Dump is the JSON shape of a critical-path export: per-op path/total
// decompositions plus the canonical what-if predictions. All collections
// are ordered slices (never maps), so the bytes are deterministic.
type Dump struct {
	Schema     string       `json:"schema"`
	IOs        uint64       `json:"ios"`
	Violations uint64       `json:"violations"`
	Sampled    int          `json:"sampled"`
	Stride     uint64       `json:"stride"`
	Ops        []OpDump     `json:"ops"`
	WhatIf     []Prediction `json:"whatif"`
}

// OpDump is one op kind's critical-path decomposition.
type OpDump struct {
	Op     string          `json:"op"`
	Count  uint64          `json:"count"`
	MeanUs float64         `json:"mean_us"`
	Phases []PhasePathDump `json:"phases"`
}

// PhasePathDump is one phase of an op's decomposition. PathUs is the mean
// per-IO time this phase spent *on* the critical path (bounding
// completion); TotalUs adds the off-path ticks — the same phase's work
// that ran concurrently under a composite stall. PathFrac is the phase's
// share of the op's end-to-end latency. Binds splits a wait phase's
// on-path ticks by the service phase waited behind.
type PhasePathDump struct {
	Name     string     `json:"name"`
	PathUs   float64    `json:"path_us"`
	TotalUs  float64    `json:"total_us"`
	PathFrac float64    `json:"path_frac"`
	Binds    []BindDump `json:"binds,omitempty"`
}

// BindDump is one bound slice of a wait phase.
type BindDump struct {
	Name string  `json:"name"`
	Us   float64 `json:"us"`
}

// Dump converts the snapshot to its JSON shape. opts selects the replay
// model for the canonical what-if predictions; ops with no completed IOs
// are omitted.
func (s *Snapshot) Dump(opts PredictOpts) Dump {
	d := Dump{
		Schema:     DumpSchema,
		IOs:        s.IOs,
		Violations: s.Violations,
		Sampled:    len(s.Paths),
		Stride:     s.Stride,
		Ops:        []OpDump{},
		WhatIf:     []Prediction{},
	}
	for k := 0; k < telemetry.NumOps; k++ {
		a := s.Ops[k]
		if a.Count == 0 {
			continue
		}
		od := OpDump{
			Op:     telemetry.OpKind(k).String(),
			Count:  a.Count,
			MeanUs: (a.TotalSum / sim.Time(a.Count)).Micros(),
			Phases: []PhasePathDump{},
		}
		n := sim.Time(a.Count)
		for p := 0; p < telemetry.NumPhases; p++ {
			if a.Path[p] == 0 && a.Off[p] == 0 {
				continue
			}
			pd := PhasePathDump{
				Name:    telemetry.Phase(p).String(),
				PathUs:  (a.Path[p] / n).Micros(),
				TotalUs: ((a.Path[p] + a.Off[p]) / n).Micros(),
			}
			if a.TotalSum > 0 {
				pd.PathFrac = float64(a.Path[p]) / float64(a.TotalSum)
			}
			if wi := waitIdx(telemetry.Phase(p)); wi >= 0 {
				for b := 0; b < NumBinds; b++ {
					w := a.WaitBy[wi][b]
					if w == 0 {
						continue
					}
					pd.Binds = append(pd.Binds, BindDump{
						Name: bindPhase(b).String(),
						Us:   (w / n).Micros(),
					})
				}
			}
			od.Phases = append(od.Phases, pd)
		}
		d.Ops = append(d.Ops, od)
	}
	for _, sc := range Canonical() {
		d.WhatIf = append(d.WhatIf, s.Predict(sc, opts)...)
	}
	return d
}

// BenchSummary is the critpath block of a core.BenchEntry: the headline
// invariant counters, the top critical-path phase, and the canonical
// what-if ratios — enough for benchdiff to pin prediction drift at 0.1%.
type BenchSummary struct {
	IOs         uint64        `json:"ios"`
	Violations  uint64        `json:"violations"`
	Sampled     int           `json:"sampled"`
	TopPhase    string        `json:"top_phase"`
	TopPathFrac float64       `json:"top_path_frac"`
	WhatIf      []WhatIfBench `json:"whatif"`
}

// WhatIfBench is one canonical scenario's headline prediction ratios
// (predicted/base; 1 = no change).
type WhatIfBench struct {
	Scenario       string  `json:"scenario"`
	ReadMeanRatio  float64 `json:"read_mean_ratio"`
	ReadP99Ratio   float64 `json:"read_p99_ratio"`
	WriteMeanRatio float64 `json:"write_mean_ratio"`
	WriteP99Ratio  float64 `json:"write_p99_ratio"`
}

// Bench summarizes the snapshot for a benchmark entry. The top phase
// excludes host_queue (admission backlog is a workload property, not a
// device optimization target) and ranks by on-path ticks summed over ops.
func (s *Snapshot) Bench(opts PredictOpts) BenchSummary {
	b := BenchSummary{
		IOs:        s.IOs,
		Violations: s.Violations,
		Sampled:    len(s.Paths),
	}
	var totalSum sim.Time
	var pathSum [telemetry.NumPhases]sim.Time
	for k := 0; k < telemetry.NumOps; k++ {
		totalSum += s.Ops[k].TotalSum
		for p := 0; p < telemetry.NumPhases; p++ {
			pathSum[p] += s.Ops[k].Path[p]
		}
	}
	top, topTicks := telemetry.Phase(-1), sim.Time(0)
	for p := 0; p < telemetry.NumPhases; p++ {
		if telemetry.Phase(p) == telemetry.PhaseHostQueue {
			continue
		}
		if pathSum[p] > topTicks {
			top, topTicks = telemetry.Phase(p), pathSum[p]
		}
	}
	if top >= 0 {
		b.TopPhase = top.String()
		if totalSum > 0 {
			b.TopPathFrac = float64(topTicks) / float64(totalSum)
		}
	}
	for _, sc := range Canonical() {
		wb := WhatIfBench{Scenario: sc.Name, ReadMeanRatio: 1, ReadP99Ratio: 1, WriteMeanRatio: 1, WriteP99Ratio: 1}
		for _, p := range s.Predict(sc, PredictOpts{ErasesAreResets: opts.ErasesAreResets}) {
			switch p.Op {
			case "read":
				wb.ReadMeanRatio, wb.ReadP99Ratio = p.MeanRatio, p.P99Ratio
			case "write":
				wb.WriteMeanRatio, wb.WriteP99Ratio = p.MeanRatio, p.P99Ratio
			}
		}
		b.WhatIf = append(b.WhatIf, wb)
	}
	return b
}

// WhatIfRatio reports one scenario's ratio column from a BenchSummary
// (1 when absent) — the lookup benchdiff's metric getters use.
func (b BenchSummary) WhatIfRatio(scenario string, col func(WhatIfBench) float64) float64 {
	for _, w := range b.WhatIf {
		if w.Scenario == scenario {
			return col(w)
		}
	}
	return 1
}
