package critpath

import (
	"testing"

	"blockhead/internal/sim"
	"blockhead/internal/telemetry"
)

// The package inherits the telemetry layer's core contract: a nil
// *Recorder is a no-op on every method and the disabled path is 0
// allocs/op (make bench-telemetry pins it alongside the other probes).
func BenchmarkProbeDisabledCritPath(b *testing.B) {
	var (
		r *Recorder
		a *telemetry.AttrSink
	)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		at := sim.Time(i)
		r.BeginPath(telemetry.OpRead, 1, at)
		r.Segment(telemetry.PhaseNANDRead, 60*sim.Microsecond)
		r.WaitSegment(telemetry.PhaseLUNWait, sim.Microsecond, telemetry.SelfTenant, telemetry.PhaseNANDProgram)
		r.Overlap(telemetry.PhaseNANDProgram, sim.Microsecond)
		r.Reassign(telemetry.PhaseLUNWait, telemetry.PhaseWPSerial, sim.Microsecond)
		r.Refund(telemetry.PhaseWPSerial, sim.Microsecond)
		r.EndPath(at + 61*sim.Microsecond)
		r.DropPath()
		_ = r.IOs()
		_ = r.Violations()
		// The sink-side additions share the contract: nil sink, no-ops.
		a.ChargeWaitBlamed(telemetry.PhaseLUNWait, sim.Microsecond, 2, telemetry.PhaseNANDProgram)
		_ = a.Refund(telemetry.PhaseWPSerial, sim.Microsecond)
	}
}

// The enabled path must not allocate either: the reservoir is
// preallocated, so attaching a recorder costs no allocations per IO.
func BenchmarkRecorderEnabled(b *testing.B) {
	sink := telemetry.NewAttrSink()
	Attach(sink, Options{SampleCap: 1024})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at := sim.Time(i) * sim.Microsecond
		sink.BeginTenant(telemetry.OpWrite, 1, at)
		sink.ChargeWaitBlamed(telemetry.PhaseLUNWait, 10*sim.Microsecond, 2, telemetry.PhaseNANDProgram)
		sink.Charge(telemetry.PhaseXfer, 3*sim.Microsecond)
		sink.Charge(telemetry.PhaseNANDProgram, 700*sim.Microsecond)
		sink.Suspend()
		sink.Charge(telemetry.PhaseNANDRead, 60*sim.Microsecond)
		sink.Resume()
		sink.Charge(telemetry.PhaseGCStall, 100*sim.Microsecond)
		sink.End(at + 813*sim.Microsecond)
	}
}

// TestDisabledCritPathZeroAllocs pins the benchmark's claim in a normal
// test run, extending the telemetry 0-allocs pin to the nil recorder.
func TestDisabledCritPathZeroAllocs(t *testing.T) {
	var (
		r *Recorder
		a *telemetry.AttrSink
	)
	allocs := testing.AllocsPerRun(1000, func() {
		r.BeginPath(telemetry.OpWrite, 0, 0)
		r.Segment(telemetry.PhaseNANDProgram, sim.Millisecond)
		r.WaitSegment(telemetry.PhaseLUNWait, sim.Microsecond, telemetry.SelfTenant, telemetry.PhaseNANDProgram)
		r.Overlap(telemetry.PhaseNANDRead, sim.Microsecond)
		r.Reassign(telemetry.PhaseLUNWait, telemetry.PhaseWPSerial, sim.Microsecond)
		r.Refund(telemetry.PhaseWPSerial, sim.Microsecond)
		r.EndPath(sim.Millisecond)
		r.DropPath()
		a.ChargeWaitBlamed(telemetry.PhaseLUNWait, sim.Microsecond, 2, telemetry.PhaseNANDProgram)
		_ = a.Refund(telemetry.PhaseWPSerial, sim.Microsecond)
	})
	if allocs != 0 {
		t.Fatalf("disabled critpath allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestEnabledRecorderZeroAllocs pins the enabled hot path too: recording a
// full IO into an attached recorder performs no allocations.
func TestEnabledRecorderZeroAllocs(t *testing.T) {
	sink := telemetry.NewAttrSink()
	Attach(sink, Options{SampleCap: 2048})
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		at := sim.Time(i) * sim.Microsecond
		i++
		sink.BeginTenant(telemetry.OpWrite, 1, at)
		sink.ChargeWaitBlamed(telemetry.PhaseLUNWait, 10*sim.Microsecond, 2, telemetry.PhaseNANDProgram)
		sink.Charge(telemetry.PhaseNANDProgram, 700*sim.Microsecond)
		sink.Suspend()
		sink.Charge(telemetry.PhaseNANDRead, 60*sim.Microsecond)
		sink.Resume()
		sink.Charge(telemetry.PhaseGCStall, 50*sim.Microsecond)
		sink.End(at + 760*sim.Microsecond)
	})
	if allocs != 0 {
		t.Fatalf("enabled critpath allocates %.1f allocs/op, want 0", allocs)
	}
}
