// Package critpath records, for every completed IO, the critical path of
// its end-to-end latency: which attribution phases actually bound
// completion time (on-path ticks) versus device work that ran concurrently
// underneath a composite stall (off-path ticks). It layers on the AttrSink
// charge stream via telemetry.PathSink — the device models need no new
// instrumentation beyond the wait-bind annotation in internal/flash.
//
// The recorder inherits the attribution layer's contract wholesale:
//
//   - Hard invariant: the recorded critical-path ticks of an IO sum
//     *exactly* (zero-tick slack) to its end-to-end latency. Violations
//     are counted, never hidden.
//   - The nil *Recorder is a valid no-op on every method.
//   - No method allocates: the reservoir is preallocated, so the hot path
//     stays 0 allocs/op whether the recorder is attached or not.
//
// On top of the recorded paths, whatif.go replays them under counterfactual
// phase scalings and predicts the resulting latency distribution.
package critpath

import (
	"blockhead/internal/sim"
	"blockhead/internal/telemetry"
)

// Wait phases queue behind another occupant's service; the recorder keeps,
// per wait phase, how many ticks were spent behind each service ("bind")
// phase, so the what-if engine can scale a wait with the cost it tracks.
const (
	WaitWPSerial = iota
	WaitChan
	WaitLUN

	// NumWaits is the number of resource-wait phases.
	NumWaits
)

// Bind phases are the service phases a wait can queue behind.
const (
	BindXfer = iota
	BindRead
	BindProgram
	BindErase

	// NumBinds is the number of bind phases.
	NumBinds
)

// Composite phases charge the wall-clock of a suspended parallel fan-out
// (GC relocations, stripe-wide resets, simple-copy batches). The recorder
// keeps each composite charge's composition: the off-path ticks that
// arrived while the sink was suspended, attached to the next composite
// charge.
const (
	CompGCStall = iota
	CompZoneReset
	CompDevCopy

	// NumComposites is the number of composite phases.
	NumComposites
)

// waitIdx maps a phase to its wait slot (-1 if not a wait phase).
func waitIdx(p telemetry.Phase) int {
	switch p {
	case telemetry.PhaseWPSerial:
		return WaitWPSerial
	case telemetry.PhaseChanWait:
		return WaitChan
	case telemetry.PhaseLUNWait:
		return WaitLUN
	}
	return -1
}

// bindIdx maps a phase to its bind slot (-1 if not a service phase).
func bindIdx(p telemetry.Phase) int {
	switch p {
	case telemetry.PhaseXfer:
		return BindXfer
	case telemetry.PhaseNANDRead:
		return BindRead
	case telemetry.PhaseNANDProgram:
		return BindProgram
	case telemetry.PhaseNANDErase:
		return BindErase
	}
	return -1
}

// bindPhase is the inverse of bindIdx.
func bindPhase(b int) telemetry.Phase {
	switch b {
	case BindXfer:
		return telemetry.PhaseXfer
	case BindRead:
		return telemetry.PhaseNANDRead
	case BindProgram:
		return telemetry.PhaseNANDProgram
	case BindErase:
		return telemetry.PhaseNANDErase
	}
	return -1
}

// compIdx maps a phase to its composite slot (-1 if not composite).
func compIdx(p telemetry.Phase) int {
	switch p {
	case telemetry.PhaseGCStall:
		return CompGCStall
	case telemetry.PhaseZoneReset:
		return CompZoneReset
	case telemetry.PhaseDevCopy:
		return CompDevCopy
	}
	return -1
}

// reassignBindOrder is the deterministic order Reassign and Refund deduct
// bound wait ticks in. Program first: the only in-repo reclassify
// (lun_wait -> wp_serial) and the only in-repo refund (wp_serial early
// ack) both concern waits behind a same-zone program by construction.
var reassignBindOrder = [NumBinds]int{BindProgram, BindErase, BindRead, BindXfer}

// PathRec is one IO's recorded critical path. Path holds the on-path ticks
// per phase and sums exactly to Total; WaitBy splits each wait phase's
// ticks by the service phase of the occupant waited behind (the remainder
// up to Path[wait] queued behind an unknown blocker); Comp holds each
// composite phase's composition — the depth-1 off-path charges that were
// hidden under its wall-clock.
type PathRec struct {
	Op     telemetry.OpKind
	Tenant telemetry.TenantID
	Total  sim.Time
	Path   [telemetry.NumPhases]sim.Time
	WaitBy [NumWaits][NumBinds]sim.Time
	Comp   [NumComposites][telemetry.NumPhases]sim.Time
}

// OpAgg aggregates recorded paths for one op kind. Path is the exact
// on-path (completion-bounding) tick total per phase; Off is the off-path
// total — device work that ran concurrently under a composite stall and
// did NOT bound completion. Path+Off is the "total ticks" column of the
// report tables; Path alone ranks optimization targets.
type OpAgg struct {
	Count    uint64
	TotalSum sim.Time
	Path     [telemetry.NumPhases]sim.Time
	Off      [telemetry.NumPhases]sim.Time
	WaitBy   [NumWaits][NumBinds]sim.Time
}

// TenantAgg aggregates recorded paths for one tenant across op kinds.
type TenantAgg struct {
	Count    [telemetry.NumOps]uint64
	TotalSum [telemetry.NumOps]sim.Time
	Path     [telemetry.NumPhases]sim.Time
}

// Options configures a Recorder.
type Options struct {
	// SampleCap bounds the path reservoir (default 4096 records). The
	// reservoir decimates deterministically: when full it keeps every
	// second record and doubles its admission stride, so it always holds
	// an evenly spaced sample of the run with no random state.
	SampleCap int
}

// DefaultSampleCap is the reservoir bound when Options.SampleCap is 0.
const DefaultSampleCap = 4096

// Recorder implements telemetry.PathSink: it reconstructs one PathRec per
// measured IO from the AttrSink's charge feed, maintains per-op and
// per-tenant aggregates, and retains a deterministic sample of full paths
// for the what-if engine. The nil *Recorder is a valid no-op on every
// method and no method allocates (see the package comment).
//
//simlint:nilsafe
type Recorder struct {
	active   bool
	start    sim.Time
	rec      PathRec
	haveLast bool
	pend     [telemetry.NumPhases]sim.Time
	pendAny  bool
	off      [telemetry.NumPhases]sim.Time

	ios        uint64
	violations uint64
	ops        [telemetry.NumOps]OpAgg
	tenants    [telemetry.MaxTenants]TenantAgg

	paths  []PathRec
	stride uint64
	seq    uint64

	// drained is the most recent non-empty Drain result, kept so the live
	// dashboard can keep serving the last completed recording window after
	// an experiment captures (and thereby resets) the recorder.
	drained Snapshot

	// OnViolation, if set, observes every path invariant violation (the
	// path ticks of a completed IO not summing exactly to its end-to-end
	// latency). May allocate; violations are exceptional by contract.
	OnViolation func(at sim.Time)
}

// New returns an empty recorder with a preallocated reservoir.
func New(opts Options) *Recorder {
	cap_ := opts.SampleCap
	if cap_ <= 0 {
		cap_ = DefaultSampleCap
	}
	return &Recorder{paths: make([]PathRec, 0, cap_), stride: 1}
}

// Attach creates a recorder and installs it as sink's path sink. Returns
// nil (a valid no-op recorder) when sink is nil.
func Attach(sink *telemetry.AttrSink, opts Options) *Recorder {
	if sink == nil {
		return nil
	}
	r := New(opts)
	sink.Path = r
	return r
}

// FromSink returns the recorder attached to sink, or nil if sink is nil or
// carries no recorder.
func FromSink(sink *telemetry.AttrSink) *Recorder {
	if sink == nil {
		return nil
	}
	r, _ := sink.Path.(*Recorder)
	return r
}

// BeginPath opens the path record for one measured IO (telemetry.PathSink).
// A begin over an open record abandons the old one and counts a violation,
// mirroring the AttrSink.
func (r *Recorder) BeginPath(op telemetry.OpKind, tenant telemetry.TenantID, start sim.Time) {
	if r == nil {
		return
	}
	if r.active {
		r.violations++
		if r.OnViolation != nil {
			r.OnViolation(start)
		}
	}
	r.active = true
	r.start = start
	r.rec = PathRec{Op: op, Tenant: tenant}
	r.haveLast = false
	r.pend = [telemetry.NumPhases]sim.Time{}
	r.pendAny = false
	r.off = [telemetry.NumPhases]sim.Time{}
}

// Segment records an on-path charge (telemetry.PathSink). A charge to a
// composite phase adopts the pending off-path ticks as its composition.
func (r *Recorder) Segment(p telemetry.Phase, d sim.Time) {
	if r == nil || !r.active {
		return
	}
	r.rec.Path[p] += d
	if ci := compIdx(p); ci >= 0 && r.pendAny {
		for q := 0; q < telemetry.NumPhases; q++ {
			r.rec.Comp[ci][q] += r.pend[q]
		}
		r.pend = [telemetry.NumPhases]sim.Time{}
		r.pendAny = false
	}
}

// WaitSegment records an on-path wait charge with the service phase it
// queued behind (telemetry.PathSink). The culprit tenant is not aggregated
// here — the blame matrix already carries it — so only the bind is kept.
func (r *Recorder) WaitSegment(p telemetry.Phase, d sim.Time, _ telemetry.TenantID, bind telemetry.Phase) {
	if r == nil || !r.active {
		return
	}
	r.rec.Path[p] += d
	if wi := waitIdx(p); wi >= 0 {
		if bi := bindIdx(bind); bi >= 0 {
			r.rec.WaitBy[wi][bi] += d
		}
	}
}

// Overlap records an off-path charge: work that ran while the sink was
// suspended at depth 1 (telemetry.PathSink). The ticks are held pending
// and attached to the next composite charge's composition; they also
// accumulate into the op's off-path totals either way.
func (r *Recorder) Overlap(p telemetry.Phase, d sim.Time) {
	if r == nil || !r.active {
		return
	}
	r.pend[p] += d
	r.pendAny = true
	r.off[p] += d
}

// Reassign moves up to d ticks from one phase to another, mirroring
// AttrSink.Reclassify (telemetry.PathSink). Bound wait ticks move with the
// charge, program-bound first (see reassignBindOrder).
func (r *Recorder) Reassign(from, to telemetry.Phase, d sim.Time) {
	if r == nil || !r.active || d <= 0 {
		return
	}
	if d > r.rec.Path[from] {
		d = r.rec.Path[from]
	}
	r.rec.Path[from] -= d
	r.rec.Path[to] += d
	fi, ti := waitIdx(from), waitIdx(to)
	if fi < 0 {
		return
	}
	rem := d
	for _, b := range reassignBindOrder {
		take := sim.Min(rem, r.rec.WaitBy[fi][b])
		if take <= 0 {
			continue
		}
		r.rec.WaitBy[fi][b] -= take
		if ti >= 0 {
			r.rec.WaitBy[ti][b] += take
		}
		rem -= take
		if rem == 0 {
			break
		}
	}
}

// Refund removes up to d ticks from phase p, mirroring AttrSink.Refund
// (telemetry.PathSink). Bound wait ticks are deducted program-bound first.
func (r *Recorder) Refund(p telemetry.Phase, d sim.Time) {
	if r == nil || !r.active || d <= 0 {
		return
	}
	if d > r.rec.Path[p] {
		d = r.rec.Path[p]
	}
	r.rec.Path[p] -= d
	wi := waitIdx(p)
	if wi < 0 {
		return
	}
	rem := d
	for _, b := range reassignBindOrder {
		take := sim.Min(rem, r.rec.WaitBy[wi][b])
		if take <= 0 {
			continue
		}
		r.rec.WaitBy[wi][b] -= take
		rem -= take
		if rem == 0 {
			break
		}
	}
}

// EndPath closes the path record for an IO that completed at done
// (telemetry.PathSink): checks the exact-sum invariant, folds the record
// into the aggregates, and admits it to the reservoir.
func (r *Recorder) EndPath(done sim.Time) {
	if r == nil || !r.active {
		return
	}
	r.active = false
	total := done - r.start
	r.rec.Total = total
	var sum sim.Time
	for p := 0; p < telemetry.NumPhases; p++ {
		sum += r.rec.Path[p]
	}
	if sum != total {
		r.violations++
		if r.OnViolation != nil {
			r.OnViolation(done)
		}
	}
	r.ios++
	a := &r.ops[r.rec.Op]
	a.Count++
	a.TotalSum += total
	for p := 0; p < telemetry.NumPhases; p++ {
		a.Path[p] += r.rec.Path[p]
		a.Off[p] += r.off[p]
	}
	for w := 0; w < NumWaits; w++ {
		for b := 0; b < NumBinds; b++ {
			a.WaitBy[w][b] += r.rec.WaitBy[w][b]
		}
	}
	ta := &r.tenants[r.rec.Tenant]
	ta.Count[r.rec.Op]++
	ta.TotalSum[r.rec.Op] += total
	for p := 0; p < telemetry.NumPhases; p++ {
		ta.Path[p] += r.rec.Path[p]
	}
	r.haveLast = true
	r.admit()
}

// Last returns a copy of the most recently completed path record, valid
// from EndPath until the next BeginPath. The exemplar layer reads it inside
// ExemplarSink.EndExemplar (which the AttrSink fires right after EndPath)
// to capture the completed IO's critical-path split. Nil-safe.
func (r *Recorder) Last() (PathRec, bool) {
	if r == nil || !r.haveLast {
		return PathRec{}, false
	}
	return r.rec, true
}

// admit applies deterministic stride decimation: every stride'th completed
// IO enters the reservoir; when the reservoir fills, every second retained
// record is dropped and the stride doubles. The retained set is always an
// evenly spaced subsample of the run — no random state, so same seed means
// same sample.
func (r *Recorder) admit() {
	if r.seq%r.stride == 0 {
		if len(r.paths) == cap(r.paths) {
			keep := 0
			for i := 0; i < len(r.paths); i += 2 {
				r.paths[keep] = r.paths[i]
				keep++
			}
			r.paths = r.paths[:keep]
			r.stride *= 2
		}
		if r.seq%r.stride == 0 && len(r.paths) < cap(r.paths) {
			r.paths = append(r.paths, r.rec)
		}
	}
	r.seq++
}

// DropPath abandons the open path record (telemetry.PathSink).
func (r *Recorder) DropPath() {
	if r == nil {
		return
	}
	r.active = false
	r.haveLast = false
}

// IOs reports how many paths completed since the last Drain.
func (r *Recorder) IOs() uint64 {
	if r == nil {
		return 0
	}
	return r.ios
}

// Violations reports how many records broke the path contract since the
// last Drain (path ticks not summing to end-to-end, begin over an open
// record). Always 0 in a correct build.
func (r *Recorder) Violations() uint64 {
	if r == nil {
		return 0
	}
	return r.violations
}

// Snapshot is a copyable capture of a recorder's aggregates and sampled
// paths. The what-if engine replays Paths; the report tables read Ops.
type Snapshot struct {
	IOs        uint64
	Violations uint64
	Ops        [telemetry.NumOps]OpAgg
	Tenants    [telemetry.MaxTenants]TenantAgg
	Paths      []PathRec
	Stride     uint64
}

// Snapshot returns a copy of the recorder's state since the last Drain.
// It allocates (copies the reservoir), so it is for publish/report time,
// not the per-IO path.
func (r *Recorder) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	s := Snapshot{
		IOs:        r.ios,
		Violations: r.violations,
		Ops:        r.ops,
		Tenants:    r.tenants,
		Stride:     r.stride,
		Paths:      make([]PathRec, len(r.paths)),
	}
	copy(s.Paths, r.paths)
	return s
}

// Drain returns a snapshot of everything recorded since the previous Drain
// and resets the recorder, so one recorder shared across experiments (the
// live-dashboard configuration) yields per-experiment sections the way
// AttrSnapshot deltas do.
func (r *Recorder) Drain() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	s := r.Snapshot()
	if s.IOs > 0 {
		r.drained = s
	}
	r.ios = 0
	r.violations = 0
	r.ops = [telemetry.NumOps]OpAgg{}
	r.tenants = [telemetry.MaxTenants]TenantAgg{}
	r.paths = r.paths[:0]
	r.stride = 1
	r.seq = 0
	return s
}

// LastDrained returns the most recent non-empty snapshot taken by Drain —
// the last completed recording window — or the zero Snapshot if nothing
// has been drained yet.
func (r *Recorder) LastDrained() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	return r.drained
}

// DrainFromSink drains the recorder attached to sink (no-op empty snapshot
// when none is attached).
func DrainFromSink(sink *telemetry.AttrSink) Snapshot {
	return FromSink(sink).Drain()
}
